# Local targets mirror the CI pipeline (.github/workflows/ci.yml)
# step for step, so a green `make ci` means a green CI run.

GO ?= go

.PHONY: build test bench repro-quick fmt vet race ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

repro-quick:
	$(GO) run ./cmd/repro -quick

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

ci: fmt vet build race repro-quick bench
