# Local targets mirror the CI pipeline (.github/workflows/ci.yml)
# step for step, so a green `make ci` means a green CI run.

GO ?= go

.PHONY: build test bench bench-json bench-gate bench-baseline fuzz-smoke mem-smoke terasort-scale repro-quick fmt vet lint hetlint race docs ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# bench-json mirrors the CI benchmark lane: every benchmark once,
# parsed into the machine-readable perf artifact. The name is derived
# from HEAD like the CI lane derives it from the PR number — no stale
# hardcoded artifact names. The intermediate file (not a pipe) keeps a
# benchmark failure fatal.
BENCH_ARTIFACT ?= BENCH_$(shell git rev-parse --short=12 HEAD 2>/dev/null || echo LOCAL)
bench-json:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... > bench.out
	$(GO) run ./cmd/benchjson -o $(BENCH_ARTIFACT).json < bench.out
	@rm -f bench.out
	@echo "wrote $(BENCH_ARTIFACT).json"

# bench-gate mirrors the CI regression gate: rerun the rpcnet wire
# benchmarks plus the 100 MB range-partitioned terasort (MB/s and
# peak_heap_MB) and fail on any >15% direction-aware regression
# against the committed baseline.
bench-gate:
	$(GO) test -bench=. -benchtime=0.3s -count=5 -run='^$$' ./internal/rpcnet > gate.out
	$(GO) test -bench='TerasortPeakMemory/net/100MB' -benchtime=1x -count=3 -run='^$$' -timeout 30m ./internal/engine >> gate.out
	$(GO) run ./cmd/benchjson -o BENCH_GATE.json < gate.out
	@rm -f gate.out
	$(GO) run ./cmd/benchdiff -baseline BENCH_BASELINE.json -new BENCH_GATE.json -threshold 0.15
	@rm -f BENCH_GATE.json

# bench-baseline refreshes the committed gate baseline — run it (and
# commit the result) when a PR legitimately moves the rpcnet or
# terasort numbers.
bench-baseline:
	$(GO) test -bench=. -benchtime=0.3s -count=5 -run='^$$' ./internal/rpcnet > gate.out
	$(GO) test -bench='TerasortPeakMemory/net/100MB' -benchtime=1x -count=3 -run='^$$' -timeout 30m ./internal/engine >> gate.out
	$(GO) run ./cmd/benchjson -o BENCH_BASELINE.json < gate.out
	@rm -f gate.out
	@echo "wrote BENCH_BASELINE.json"

# fuzz-smoke mirrors the CI fuzz lane: short coverage-led mutation
# over the rpcnet wire decoders and the snap codec.
fuzz-smoke:
	$(GO) test ./internal/rpcnet -run='^$$' -fuzz FuzzReadFrame -fuzztime 10s
	$(GO) test ./internal/rpcnet -run='^$$' -fuzz FuzzReadHello -fuzztime 5s
	$(GO) test ./internal/rpcnet -run='^$$' -fuzz FuzzServeConn -fuzztime 10s
	$(GO) test ./internal/spill -run='^$$' -fuzz FuzzSnapRoundTrip -fuzztime 10s
	$(GO) test ./internal/spill -run='^$$' -fuzz FuzzSnapDecode -fuzztime 10s

# mem-smoke mirrors the CI bounded-memory lane: above-watermark
# synthetic datasets streamed through the live and net backends under
# a hard runtime memory limit, including the range-partitioned
# terasort smoke (the -run prefix matches both). The 1 GB scale gate
# (TestTerasortScaleFlatHeap) is opt-in: make terasort-scale.
mem-smoke:
	GOMEMLIMIT=256MiB $(GO) test -v -run TestBoundedMemoryStreaming ./internal/engine/

# terasort-scale mirrors the CI at-scale gate: a full 1 GB net
# terasort whose peak live heap must stay within 1.5x of the 100 MB
# run's. Takes a few minutes.
terasort-scale:
	GOMEMLIMIT=768MiB HETMR_TERASORT_SCALE=1 $(GO) test -v -timeout 30m -run TestTerasortScaleFlatHeap ./internal/engine/

repro-quick:
	$(GO) run ./cmd/repro -quick

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint mirrors the CI lint lane; staticcheck is skipped gracefully
# when not installed (CI installs honnef.co/go/tools pinned).
lint: vet hetlint
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# hetlint runs the project-invariant analyzer suite (lockheldcall,
# gobreg, configdrop, mustclose) over the whole module. It mirrors the
# CI lint-custom lane and needs nothing beyond the Go toolchain.
hetlint:
	$(GO) run ./cmd/hetlint ./...

# docs mirrors the CI docs lane: godoc coverage over the core
# packages plus the ARCHITECTURE.md link check.
docs:
	$(GO) run ./cmd/docscheck

ci: fmt lint docs build race mem-smoke repro-quick bench bench-gate
