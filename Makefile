# Local targets mirror the CI pipeline (.github/workflows/ci.yml)
# step for step, so a green `make ci` means a green CI run.

GO ?= go

.PHONY: build test bench bench-json mem-smoke repro-quick fmt vet lint race docs ci

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

bench:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./...

# bench-json mirrors the CI benchmark lane: every benchmark once,
# parsed into the machine-readable perf artifact (name parameterized
# like the CI lane's BENCH_ARTIFACT). The intermediate file (not a
# pipe) keeps a benchmark failure fatal.
BENCH_ARTIFACT ?= BENCH_PR6
bench-json:
	$(GO) test -bench=. -benchtime=1x -run='^$$' ./... > bench.out
	$(GO) run ./cmd/benchjson -o $(BENCH_ARTIFACT).json < bench.out
	@rm -f bench.out
	@echo "wrote $(BENCH_ARTIFACT).json"

# mem-smoke mirrors the CI bounded-memory lane: above-watermark
# synthetic datasets streamed through the live and net backends under
# a hard runtime memory limit.
mem-smoke:
	GOMEMLIMIT=256MiB $(GO) test -v -run TestBoundedMemoryStreaming ./internal/engine/

repro-quick:
	$(GO) run ./cmd/repro -quick

fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "files need gofmt:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

# lint mirrors the CI lint lane; staticcheck is skipped gracefully
# when not installed (CI installs honnef.co/go/tools pinned).
lint: vet
	@if command -v staticcheck >/dev/null 2>&1; then \
		staticcheck ./...; \
	else \
		echo "staticcheck not installed; skipping (CI runs it)"; \
	fi

# docs mirrors the CI docs lane: godoc coverage over the five core
# packages plus the ARCHITECTURE.md link check.
docs:
	$(GO) run ./cmd/docscheck

ci: fmt lint docs build race mem-smoke repro-quick bench
