// Package hetmr_test holds the top-level benchmark harness: one
// testing.B benchmark per figure of the paper's evaluation section.
// Each benchmark regenerates its figure (reduced sweeps keep -bench
// runs tractable; `cmd/repro` produces the full versions) and reports
// the figure's headline quantity as a custom metric, so `go test
// -bench=.` re-derives the paper's results end to end.
package hetmr_test

import (
	"testing"

	"hetmr/internal/experiments"
	"hetmr/internal/metrics"
)

// benchY extracts a y value or fails the benchmark.
func benchY(b *testing.B, fig *metrics.Figure, series string, x float64) float64 {
	b.Helper()
	s := fig.FindSeries(series)
	if s == nil {
		b.Fatalf("missing series %q", series)
	}
	return s.Y(x)
}

// BenchmarkFig2RawEncryption regenerates Figure 2 (single-node
// encryption bandwidth, four configurations) and reports the Cell
// chip's asymptotic MB/s.
func BenchmarkFig2RawEncryption(b *testing.B) {
	var fig metrics.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Fig2RawEncryption()
	}
	b.ReportMetric(benchY(b, &fig, "Cell BE", 1024), "cell-MB/s")
	b.ReportMetric(benchY(b, &fig, "Power 6", 1024), "power6-MB/s")
}

// BenchmarkFig4ProportionalEncryption regenerates Figure 4
// (distributed encryption, 1 GB per mapper) on a reduced node sweep
// and reports the Java/Cell makespan ratio — the paper's headline
// "very similar performance".
func BenchmarkFig4ProportionalEncryption(b *testing.B) {
	nodes := []int{12, 24}
	var fig metrics.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.Fig4ProportionalEncryption(nodes)
		if err != nil {
			b.Fatal(err)
		}
	}
	java := benchY(b, &fig, "Java Mapper", 12)
	cell := benchY(b, &fig, "Cell BE Mapper", 12)
	b.ReportMetric(java, "java-s")
	b.ReportMetric(cell, "cell-s")
	b.ReportMetric(java/cell, "java/cell")
}

// BenchmarkFig5FixedEncryption regenerates Figure 5 (120 GB fixed data
// set) on a reduced sweep and reports the Java-over-Empty overhead
// ratio — the paper's "really small" compute contribution.
func BenchmarkFig5FixedEncryption(b *testing.B) {
	nodes := []int{4, 16}
	var fig metrics.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.Fig5FixedEncryption(nodes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(benchY(b, &fig, "Empty Mapper", 16), "empty-s")
	b.ReportMetric(benchY(b, &fig, "Java Mapper", 16)/benchY(b, &fig, "Empty Mapper", 16),
		"java/empty")
}

// BenchmarkFig6RawPi regenerates Figure 6 (single-node Pi throughput)
// and reports the Cell-over-Power6 speedup at 1e9 samples.
func BenchmarkFig6RawPi(b *testing.B) {
	var fig metrics.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.Fig6RawPi()
	}
	b.ReportMetric(benchY(b, &fig, "Cell BE", 1e9)/benchY(b, &fig, "Power 6", 1e9),
		"cell/power6")
}

// BenchmarkFig7DistributedPiSweep regenerates Figure 7 (Pi sample
// sweep on a fixed cluster; 10 nodes here, 50 in the full run) and
// reports the Java-over-Cell ratio at the largest sweep point.
func BenchmarkFig7DistributedPiSweep(b *testing.B) {
	samples := []int64{1e6, 1e9, 1e11}
	var fig metrics.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.Fig7DistributedPiSweep(10, samples)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(benchY(b, &fig, "Java Mapper", 1e11)/benchY(b, &fig, "Cell BE Mapper", 1e11),
		"java/cell@1e11")
	b.ReportMetric(benchY(b, &fig, "Cell BE Mapper", 1e6), "floor-s")
}

// BenchmarkFig8DistributedPiScaling regenerates Figure 8 (1e11-sample
// Pi versus node count) on a reduced sweep and reports where the Cell
// mapper's scaling stalls.
func BenchmarkFig8DistributedPiScaling(b *testing.B) {
	nodes := []int{4, 16, 64}
	var fig metrics.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.Fig8DistributedPiScaling(nodes)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(benchY(b, &fig, "Java Mapper", 4)/benchY(b, &fig, "Cell BE Mapper", 4),
		"java/cell@4")
	b.ReportMetric(benchY(b, &fig, "Cell BE Mapper", 16)/benchY(b, &fig, "Cell BE Mapper", 64),
		"cell-16v64")
}
