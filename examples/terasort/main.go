// TeraSort example: the paper's §IV-A aside analyzes the Terasort
// contest to show MapReduce mappers are bound by record delivery, not
// by sorting speed. This example runs the workload itself on the live
// cluster — generate records, sort each DFS block on the node holding
// it, merge the runs — and then reproduces the paper's delivery-bound
// analysis on the simulated testbed.
//
//	go run ./examples/terasort
package main

import (
	"fmt"
	"log"

	"hetmr/internal/core"
	"hetmr/internal/experiments"
	"hetmr/internal/kernels"
)

func main() {
	// Live distributed sort.
	clus, err := core.NewLiveCluster(4, core.WithBlockSize(50_000)) // 500 records per block
	if err != nil {
		log.Fatal(err)
	}
	const nRecords = 20_000
	data := kernels.GenerateSortRecords(2009, nRecords)
	if err := clus.FS.WriteFile("/teragen", data, ""); err != nil {
		log.Fatal(err)
	}
	if err := clus.RunSort("/teragen", "/terasort-out"); err != nil {
		log.Fatal(err)
	}
	out, err := clus.FS.ReadFile("/terasort-out")
	if err != nil {
		log.Fatal(err)
	}
	sorted, err := kernels.RecordsSorted(out)
	if err != nil {
		log.Fatal(err)
	}
	if !sorted || len(out) != len(data) {
		log.Fatal("terasort output invalid")
	}
	fmt.Printf("live: sorted %d records (%d bytes) across %d nodes; output verified\n\n",
		nRecords, len(out), len(clus.Nodes))

	// The paper's analysis: "the testbed is sorting 5.5MB/s [per
	// node] ... what seems to point out that the effective data
	// bandwidth at which data can be sent to the mappers was also the
	// limiting factor, since the sorting capacity of a high-end
	// processor may be well above that value."
	fmt.Println("sim: per-node sorting rate vs. in-memory sort kernel speed (8 nodes, 64GB):")
	for _, sortMBps := range []float64{25, 50, 500} {
		perNode, err := experiments.TerasortAnalysis(8, 64, sortMBps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", experiments.TerasortSummary(8, 64, sortMBps, perNode))
	}
	fmt.Println("\na 20x faster sort kernel barely moves the per-node rate: record")
	fmt.Println("delivery, not sorting, is the bottleneck — the paper's conclusion.")
}
