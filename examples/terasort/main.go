// TeraSort example: the paper's §IV-A aside analyzes the Terasort
// contest to show MapReduce mappers are bound by record delivery, not
// by sorting speed. This example runs the workload itself through the
// engine — generate records, sort each DFS block on the node holding
// it, merge the runs — on a chosen backend, then reproduces the
// paper's delivery-bound analysis on the simulated testbed.
//
//	go run ./examples/terasort
//	go run ./examples/terasort -backend net
//	go run ./examples/terasort -input records.dat   # streamed from disk, spilled past 32 MB
package main

import (
	"bufio"
	"bytes"
	"flag"
	"fmt"
	"io"
	"log"
	"os"

	"hetmr/internal/engine"
	"hetmr/internal/experiments"
	"hetmr/internal/kernels"
)

// verifySortedFile scans a record file once, holding two records at a
// time — the O(1)-memory sortedness check for outputs beyond RAM.
func verifySortedFile(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	r := bufio.NewReaderSize(f, 1<<20)
	var prev, cur [kernels.SortRecordBytes]byte
	first := true
	for i := 0; ; i++ {
		if _, err := io.ReadFull(r, cur[:]); err == io.EOF {
			return nil
		} else if err != nil {
			return fmt.Errorf("record %d: %w", i, err)
		}
		if !first && bytes.Compare(prev[:kernels.SortKeyBytes], cur[:kernels.SortKeyBytes]) > 0 {
			return fmt.Errorf("record %d out of order", i)
		}
		prev, first = cur, false
	}
}

func main() {
	backend := flag.String("backend", "live",
		fmt.Sprintf("execution backend %v", engine.Backends()))
	input := flag.String("input", "",
		"sort this file of 100-byte records, streamed from disk through Job.Source (default: 20000 generated records)")
	flag.Parse()

	// Distributed sort: 500 records per 50 KB block.
	cfg := engine.Config{Workers: 4, BlockSize: 50_000}
	job := &engine.Job{Kind: engine.Sort}
	nRecords := 20_000
	if *input != "" {
		// Fully streamed: the dataset arrives through Job.Source, the
		// sorted result leaves through Job.Sink to <input>.sorted, and
		// resident memory is bounded by the spill watermark — a file
		// beyond RAM sorts through the disk, never through the heap.
		f, err := os.Open(*input)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		out, err := os.Create(*input + ".sorted")
		if err != nil {
			log.Fatal(err)
		}
		job.Source = f
		job.Sink = out
		cfg.SpillMemBytes = 32 << 20
		res, err := engine.RunOnce(*backend, cfg, job)
		if err != nil {
			log.Fatal(err)
		}
		if err := out.Close(); err != nil {
			log.Fatal(err)
		}
		if err := verifySortedFile(*input + ".sorted"); err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%s: sorted %d records (%d bytes) across 4 nodes in %v; wrote %s.sorted, verified streamwise\n\n",
			res.Backend, res.OutputBytes/kernels.SortRecordBytes, res.OutputBytes, res.Elapsed, *input)
	} else {
		job.Input = kernels.GenerateSortRecords(2009, nRecords)
		res, err := engine.RunOnce(*backend, cfg, job)
		if err != nil {
			log.Fatal(err)
		}
		sorted, err := kernels.RecordsSorted(res.Bytes)
		if err != nil {
			log.Fatal(err)
		}
		if !sorted || len(res.Bytes) != nRecords*kernels.SortRecordBytes {
			log.Fatal("terasort output invalid")
		}
		fmt.Printf("%s: sorted %d records (%d bytes) across 4 nodes in %v; output verified\n\n",
			res.Backend, nRecords, len(res.Bytes), res.Elapsed)
	}

	// The paper's analysis: "the testbed is sorting 5.5MB/s [per
	// node] ... what seems to point out that the effective data
	// bandwidth at which data can be sent to the mappers was also the
	// limiting factor, since the sorting capacity of a high-end
	// processor may be well above that value."
	fmt.Println("sim: per-node sorting rate vs. in-memory sort kernel speed (8 nodes, 64GB):")
	for _, sortMBps := range []float64{25, 50, 500} {
		perNode, err := experiments.TerasortAnalysis(8, 64, sortMBps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", experiments.TerasortSummary(8, 64, sortMBps, perNode))
	}
	fmt.Println("\na 20x faster sort kernel barely moves the per-node rate: record")
	fmt.Println("delivery, not sorting, is the bottleneck — the paper's conclusion.")
}
