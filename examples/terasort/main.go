// TeraSort example: the paper's §IV-A aside analyzes the Terasort
// contest to show MapReduce mappers are bound by record delivery, not
// by sorting speed. This example runs the workload itself through the
// engine — generate records, sort each DFS block on the node holding
// it, merge the runs — on a chosen backend, then reproduces the
// paper's delivery-bound analysis on the simulated testbed.
//
//	go run ./examples/terasort
//	go run ./examples/terasort -backend net
package main

import (
	"flag"
	"fmt"
	"log"

	"hetmr/internal/engine"
	"hetmr/internal/experiments"
	"hetmr/internal/kernels"
)

func main() {
	backend := flag.String("backend", "live",
		fmt.Sprintf("execution backend %v", engine.Backends()))
	flag.Parse()

	// Distributed sort: 500 records per 50 KB block.
	const nRecords = 20_000
	data := kernels.GenerateSortRecords(2009, nRecords)
	res, err := engine.RunOnce(*backend, engine.Config{Workers: 4, BlockSize: 50_000},
		&engine.Job{Kind: engine.Sort, Input: data})
	if err != nil {
		log.Fatal(err)
	}
	sorted, err := kernels.RecordsSorted(res.Bytes)
	if err != nil {
		log.Fatal(err)
	}
	if !sorted || len(res.Bytes) != len(data) {
		log.Fatal("terasort output invalid")
	}
	fmt.Printf("%s: sorted %d records (%d bytes) across 4 nodes in %v; output verified\n\n",
		res.Backend, nRecords, len(res.Bytes), res.Elapsed)

	// The paper's analysis: "the testbed is sorting 5.5MB/s [per
	// node] ... what seems to point out that the effective data
	// bandwidth at which data can be sent to the mappers was also the
	// limiting factor, since the sorting capacity of a high-end
	// processor may be well above that value."
	fmt.Println("sim: per-node sorting rate vs. in-memory sort kernel speed (8 nodes, 64GB):")
	for _, sortMBps := range []float64{25, 50, 500} {
		perNode, err := experiments.TerasortAnalysis(8, 64, sortMBps)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s\n", experiments.TerasortSummary(8, 64, sortMBps, perNode))
	}
	fmt.Println("\na 20x faster sort kernel barely moves the per-node rate: record")
	fmt.Println("delivery, not sorting, is the bottleneck — the paper's conclusion.")
}
