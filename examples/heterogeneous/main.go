// Heterogeneous-cluster example: the paper's §V open issue — "clusters
// with an increasing level of heterogeneity, involving a dynamically
// variable number of both nodes enabled with hardware accelerators and
// general purpose nodes".
//
// Part 1 runs a real encryption job through the engine on a live
// cluster where only half the nodes have SPEs. The cluster's speed
// hints come from the engine's HeterogeneousSpeedHints — perfmodel's
// calibrated Cell/PPE ratio, not hard-coded numbers — the plain nodes'
// slowness is enacted with the engine's fault-delay knob (one real CPU
// backs every goroutine node), and the per-worker task counts printed
// at the end make the scheduler's resulting imbalance visible. Blocks
// on plain nodes transparently use the host kernel: the programming
// model is unchanged.
//
// Part 2 sweeps the accelerated fraction on the simulated 32-node
// testbed — same engine API, backend "sim" — and prints how the
// CPU-intensive job's makespan responds: the accelerator-aware mapper
// fallback at work.
//
// Part 3 runs the same heterogeneity on the distributed runtime: a
// TCP-backed net cluster where half the trackers carry a per-node Cell
// device and the JobTracker's device-affinity pass steers accelerated
// map tasks toward them. The per-tracker counts print with each
// tracker's device kind; the plain trackers' slowness is enacted with
// the same fault-delay knob as part 1, since one real CPU backs every
// daemon.
//
//	go run ./examples/heterogeneous
package main

import (
	"bytes"
	"fmt"
	"log"
	"sort"
	"time"

	"hetmr/internal/engine"
	"hetmr/internal/kernels"
)

func main() {
	livePart()
	simPart()
	netPart()
}

// livePart: correctness and load balance on a half-accelerated
// functional cluster.
func livePart() {
	const workers = 4
	const accelFraction = 0.5
	plain := make([]byte, 16<<20)
	for i := range plain {
		plain[i] = byte(i * 131)
	}
	key := []byte("heterogeneous-ke")
	iv := make([]byte, 16)
	hints := engine.HeterogeneousSpeedHints(workers, accelFraction)
	// Every live node's goroutines share one real CPU, so the plain
	// nodes' slowness is emulated with the engine's fault-delay knob —
	// the speed hints then tell the scheduler what the delays enact.
	delays := make([]time.Duration, workers)
	for i := int(accelFraction * workers); i < workers; i++ {
		delays[i] = 10 * time.Millisecond
	}
	res, err := engine.RunOnce("live", engine.Config{
		Workers:       workers,
		BlockSize:     128 << 10,
		AccelFraction: accelFraction,
		SpeedHints:    hints,
		FaultDelays:   delays,
		Speculative:   true,
	}, &engine.Job{Kind: engine.Encrypt, Input: plain, Key: key, IV: iv})
	if err != nil {
		log.Fatal(err)
	}
	cipher, err := kernels.NewCipher(key)
	if err != nil {
		log.Fatal(err)
	}
	want := make([]byte, len(plain))
	kernels.CTRStream(cipher, iv, 0, want, plain)
	if !bytes.Equal(res.Bytes, want) {
		log.Fatal("heterogeneous ciphertext mismatch")
	}
	fmt.Printf("live: %d/%d accelerated nodes (speed hint %.1fx from perfmodel), ciphertext correct\n",
		int(accelFraction*workers), workers, hints[0])
	fmt.Println("per-worker task counts (dynamic scheduler, speculation on):")
	var names []string
	for name := range res.TaskCounts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %s  %3d tasks\n", name, res.TaskCounts[name])
	}
	fmt.Println()
}

// simPart: performance of the Pi job as the accelerated fraction grows.
func simPart() {
	const nodes = 32
	const samples = int64(2e10)
	// Fine-grained tasks (4 maps per node instead of the paper's 2)
	// let accelerated nodes finish early and pull extra work from the
	// JobTracker — dynamic load balancing is what makes partial
	// acceleration pay off.
	const maps = nodes * 4
	fmt.Printf("sim: Pi estimation, %d nodes, %.0g samples, %d maps, accelerator-aware scheduling\n",
		nodes, float64(samples), maps)
	fmt.Println("accel-fraction  time(s)  time(s) with speculation")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		var times [2]float64
		for i, spec := range []bool{false, true} {
			accel := frac
			if accel == 0 {
				accel = engine.NoAcceleration
			}
			cfg := engine.Config{
				Workers:       nodes,
				Mapper:        "cell",
				AccelFraction: accel,
				Speculative:   spec,
			}
			res, err := engine.RunOnce("sim", cfg, &engine.Job{
				Kind: engine.Pi, Samples: samples, Tasks: maps,
			})
			if err != nil {
				log.Fatal(err)
			}
			times[i] = res.Sim.MakespanSeconds
		}
		fmt.Printf("%14.2f  %7.1f  %24.1f\n", frac, times[0], times[1])
	}
	fmt.Println("\nadding accelerated nodes speeds the job up, but mixed clusters are")
	fmt.Println("straggler-bound: the last tasks sit on slow PPE-only nodes. Speculative")
	fmt.Println("execution re-runs those stragglers on idle accelerated nodes — the")
	fmt.Println("combination delivers the §V heterogeneous-cluster win without changing")
	fmt.Println("the programming model or the job definition.")
	fmt.Println()
}

// netPart: the same heterogeneity on the distributed (TCP) runtime —
// per-tracker Cell devices, real offload with host fallback, and the
// scheduler's device-affinity pass visible in the completion counts.
func netPart() {
	const workers = 4
	const accelFraction = 0.5
	// The host trackers' Java-path slowness is enacted with the
	// fault-delay knob (one real CPU backs every daemon); the device
	// profile itself comes from AccelFraction, exactly as on live/sim.
	// The delay spans several heartbeat intervals so the rate gap is
	// visible through the pull cadence.
	delays := make([]time.Duration, workers)
	for i := int(accelFraction * workers); i < workers; i++ {
		delays[i] = 80 * time.Millisecond
	}
	res, err := engine.RunOnce("net", engine.Config{
		Workers:       workers,
		AccelFraction: accelFraction,
		FaultDelays:   delays,
	}, &engine.Job{Kind: engine.Pi, Samples: 4_000_000, Tasks: 24})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("net: Pi = %.6f over %d samples on a %d-node TCP cluster, %.0f%% accelerated\n",
		res.Pi, res.Total, workers, accelFraction*100)
	fmt.Println("per-tracker task counts (device-affinity pass + host fallback):")
	var names []string
	for name := range res.TaskCounts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		fmt.Printf("  %s (%s)  %3d tasks\n", name, res.Devices[name], res.TaskCounts[name])
	}
	fmt.Println("\naccelerated trackers offload each map task to their Cell device and")
	fmt.Println("pull proportionally more work; the plain trackers run the identical")
	fmt.Println("host kernel, so the estimate is bit-identical at any fraction.")
}
