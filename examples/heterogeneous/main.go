// Heterogeneous-cluster example: the paper's §V open issue — "clusters
// with an increasing level of heterogeneity, involving a dynamically
// variable number of both nodes enabled with hardware accelerators and
// general purpose nodes".
//
// Part 1 runs a real encryption job on a live cluster where only half
// the nodes have SPEs (blocks on plain nodes transparently use the
// host kernel), proving the programming model is unchanged.
//
// Part 2 sweeps the accelerated fraction on the simulated 32-node
// testbed and prints how the CPU-intensive job's makespan responds —
// the accelerator-aware mapper fallback at work.
//
//	go run ./examples/heterogeneous
package main

import (
	"bytes"
	"fmt"
	"log"

	"hetmr/internal/cluster"
	"hetmr/internal/core"
	"hetmr/internal/experiments"
	"hetmr/internal/hadoop"
	"hetmr/internal/hdfs"
	"hetmr/internal/kernels"
	"hetmr/internal/spurt"
)

func main() {
	livePart()
	simPart()
}

// livePart: correctness on a half-accelerated functional cluster.
func livePart() {
	clus, err := core.NewLiveCluster(4,
		core.WithBlockSize(32<<10),
		core.WithAcceleratedNodes(2))
	if err != nil {
		log.Fatal(err)
	}
	plain := make([]byte, 256<<10)
	for i := range plain {
		plain[i] = byte(i * 131)
	}
	if err := clus.FS.WriteFile("/data", plain, ""); err != nil {
		log.Fatal(err)
	}
	cipher, err := kernels.NewCipher([]byte("heterogeneous-ke"))
	if err != nil {
		log.Fatal(err)
	}
	iv := make([]byte, 16)
	kern := spurt.KernelFunc{KernelName: "aes-ctr", Fn: kernels.CTRBlockFunc(cipher, iv)}
	if _, err := clus.RunStream(&core.StreamJob{
		Name: "het-enc", Input: "/data", Output: "/data.aes",
		Kernel: kern, Accelerated: true,
	}); err != nil {
		log.Fatal(err)
	}
	got, _ := clus.FS.ReadFile("/data.aes")
	want := make([]byte, len(plain))
	kernels.CTRStream(cipher, iv, 0, want, plain)
	if !bytes.Equal(got, want) {
		log.Fatal("heterogeneous ciphertext mismatch")
	}
	fmt.Printf("live: %d/%d accelerated nodes, ciphertext correct with transparent host fallback\n\n",
		clus.AcceleratedCount(), len(clus.Nodes))
}

// simPart: performance of the Pi job as the accelerated fraction grows.
func simPart() {
	const nodes = 32
	const samples = int64(2e10)
	// Fine-grained tasks (8 maps per node instead of the paper's 2)
	// let accelerated nodes finish early and pull extra work from the
	// JobTracker — dynamic load balancing is what makes partial
	// acceleration pay off.
	const maps = nodes * 4
	fmt.Printf("sim: Pi estimation, %d nodes, %.0g samples, %d maps, accelerator-aware scheduling\n",
		nodes, float64(samples), maps)
	fmt.Println("accel-fraction  time(s)  time(s) with speculation")
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		var times [2]float64
		for i, spec := range []bool{false, true} {
			cfg := hadoop.DefaultConfig()
			cfg.Speculative = spec
			run, err := experiments.RunDistributed(nodes, cfg,
				func(nn *hdfs.NameNode, _ []string) ([]hadoop.Split, error) {
					return core.PiSplits(samples, maps)
				},
				hadoop.AcceleratedMapperFor(hadoop.CellPiMapper{}, hadoop.JavaPiMapper{}),
				cluster.WithAcceleratedFraction(frac))
			if err != nil {
				log.Fatal(err)
			}
			times[i] = run.Seconds
		}
		fmt.Printf("%14.2f  %7.1f  %24.1f\n", frac, times[0], times[1])
	}
	fmt.Println("\nadding accelerated nodes speeds the job up, but mixed clusters are")
	fmt.Println("straggler-bound: the last tasks sit on slow PPE-only nodes. Speculative")
	fmt.Println("execution re-runs those stragglers on idle accelerated nodes — the")
	fmt.Println("combination delivers the §V heterogeneous-cluster win without changing")
	fmt.Println("the programming model or the job definition.")
}
