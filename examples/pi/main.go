// Pi example: the paper's CPU-intensive workload (§IV-B) run for real
// on the live cluster — Monte Carlo Pi estimation distributed over
// nodes and mappers, on the host path and on the SPE-offloaded path,
// demonstrating the O(1/sqrt(N)) accuracy the paper quotes.
//
//	go run ./examples/pi
package main

import (
	"fmt"
	"log"
	"math"

	"hetmr/internal/core"
	"hetmr/internal/kernels"
)

func main() {
	clus, err := core.NewLiveCluster(4)
	if err != nil {
		log.Fatal(err)
	}

	for _, samples := range []int64{10_000, 1_000_000, 100_000_000} {
		hostPi, _, err := clus.EstimatePi(samples, false, 2009)
		if err != nil {
			log.Fatal(err)
		}
		cellPi, total, err := clus.EstimatePi(samples, true, 2009)
		if err != nil {
			log.Fatal(err)
		}
		bound := kernels.PiErrorBound(samples)
		fmt.Printf("samples=%-12d host pi=%.6f (err %.2e)  cell pi=%.6f (err %.2e)  O(1/sqrt N)=%.2e  [%d drawn]\n",
			samples,
			hostPi, math.Abs(hostPi-math.Pi),
			cellPi, math.Abs(cellPi-math.Pi),
			bound, total)
	}
	fmt.Println("\nthe paper: \"estimating Pi with 100,000,000 samples produces an actual")
	fmt.Println("accuracy of approximately 4 digits\" — the error column above confirms it.")
}
