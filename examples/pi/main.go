// Pi example: the paper's CPU-intensive workload (§IV-B) — Monte
// Carlo Pi estimation distributed over nodes and mappers. The engine
// runs the identical canonical job on every backend (the estimates
// agree bit-for-bit), and the live cluster additionally demonstrates
// the SPE-offloaded path against the host path, confirming the
// O(1/sqrt(N)) accuracy the paper quotes.
//
//	go run ./examples/pi
package main

import (
	"fmt"
	"log"
	"math"

	"hetmr/internal/core"
	"hetmr/internal/engine"
	"hetmr/internal/kernels"
)

func main() {
	// One canonical job, every backend: the engine hands each runner
	// the same task decomposition, so the estimates are identical.
	const samples = 1_000_000
	fmt.Printf("engine: pi with %d samples, identical job on every backend\n", samples)
	for _, backend := range []string{"live", "sim", "net"} {
		res, err := engine.RunOnce(backend, engine.Config{Workers: 4},
			&engine.Job{Kind: engine.Pi, Samples: samples})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %-5s pi=%.6f (err %.2e) in %v\n",
			backend, res.Pi, math.Abs(res.Pi-math.Pi), res.Elapsed)
	}

	// The live cluster's two paths at growing sample counts.
	clus, err := core.NewLiveCluster(4)
	if err != nil {
		log.Fatal(err)
	}
	defer clus.Close()
	fmt.Println("\nlive cluster, host path vs SPE-offloaded path:")
	for _, samples := range []int64{10_000, 1_000_000, 100_000_000} {
		hostPi, _, err := clus.EstimatePi(samples, false, 2009)
		if err != nil {
			log.Fatal(err)
		}
		cellPi, total, err := clus.EstimatePi(samples, true, 2009)
		if err != nil {
			log.Fatal(err)
		}
		bound := kernels.PiErrorBound(samples)
		fmt.Printf("samples=%-12d host pi=%.6f (err %.2e)  cell pi=%.6f (err %.2e)  O(1/sqrt N)=%.2e  [%d drawn]\n",
			samples,
			hostPi, math.Abs(hostPi-math.Pi),
			cellPi, math.Abs(cellPi-math.Pi),
			bound, total)
	}
	fmt.Println("\nthe paper: \"estimating Pi with 100,000,000 samples produces an actual")
	fmt.Println("accuracy of approximately 4 digits\" — the error column above confirms it.")
}
