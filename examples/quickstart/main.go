// Quickstart: run a word-count MapReduce job — the classic first
// program of the MapReduce model the paper builds on (§II-A) — on any
// registered backend through the engine API. The same Job runs
// unchanged on the live two-level cluster, the calibrated simulator or
// the TCP-backed distributed runtime.
//
//	go run ./examples/quickstart
//	go run ./examples/quickstart -backend net
package main

import (
	"flag"
	"fmt"
	"log"
	"strconv"
	"strings"

	"hetmr/internal/engine"
)

const corpus = `
MapReduce is a programming model proposed by Google to facilitate the
implementation of massively parallel applications that process large
data sets. The programmer only has to implement the map function and
the reduce function. The runtime distributes the work and the data
across the nodes of the cluster and collects the partial results.
`

func main() {
	backend := flag.String("backend", "live",
		fmt.Sprintf("execution backend %v", engine.Backends()))
	flag.Parse()

	// A 3-node cluster with small DFS blocks so the tiny corpus still
	// spans several blocks and nodes.
	cfg := engine.Config{Workers: 3, BlockSize: 128}
	res, err := engine.RunOnce(*backend, cfg, &engine.Job{
		Kind:  engine.Wordcount,
		Input: []byte(corpus),
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("word count on backend %q over %d nodes: %d distinct words in %v\n",
		res.Backend, cfg.Workers, len(res.Pairs), res.Elapsed)
	// Show the most frequent word.
	top := ""
	best := 0
	for _, kv := range res.Pairs {
		n, _ := strconv.Atoi(kv.Value)
		if n > best || (n == best && kv.Key < top) {
			best, top = n, kv.Key
		}
	}
	fmt.Printf("most frequent word: %q (%d times)\n", top, best)
	var sample []string
	for _, kv := range res.Pairs[:min(8, len(res.Pairs))] {
		sample = append(sample, kv.Key+"="+kv.Value)
	}
	fmt.Println("first keys:", strings.Join(sample, " "))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
