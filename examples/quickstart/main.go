// Quickstart: run a word-count MapReduce job on the live two-level
// cluster — the classic first program of the MapReduce model the paper
// builds on (§II-A).
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"strconv"
	"strings"

	"hetmr/internal/core"
	"hetmr/internal/kernels"
)

const corpus = `
MapReduce is a programming model proposed by Google to facilitate the
implementation of massively parallel applications that process large
data sets. The programmer only has to implement the map function and
the reduce function. The runtime distributes the work and the data
across the nodes of the cluster and collects the partial results.
`

func main() {
	// A 3-node functional cluster with small DFS blocks so the tiny
	// corpus still spans several blocks and nodes.
	clus, err := core.NewLiveCluster(3, core.WithBlockSize(128))
	if err != nil {
		log.Fatal(err)
	}
	if err := clus.FS.WriteFile("/corpus.txt", []byte(corpus), ""); err != nil {
		log.Fatal(err)
	}

	job := &core.KVJob{
		Name:  "wordcount",
		Input: "/corpus.txt",
		Map: func(record []byte, _ int64, emit func(k, v string)) error {
			kernels.Words(record, func(w []byte) { emit(string(w), "1") })
			return nil
		},
		Reduce: func(_ string, values []string) (string, error) {
			total := 0
			for _, v := range values {
				n, err := strconv.Atoi(v)
				if err != nil {
					return "", err
				}
				total += n
			}
			return strconv.Itoa(total), nil
		},
	}

	results, err := clus.RunKV(job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("word count over %d nodes, %d distinct words\n",
		len(clus.Nodes), len(results))
	// Show the most frequent words.
	top := ""
	best := 0
	for _, kv := range results {
		n, _ := strconv.Atoi(kv.Value)
		if n > best || (n == best && kv.Key < top) {
			best, top = n, kv.Key
		}
	}
	fmt.Printf("most frequent word: %q (%d times)\n", top, best)
	var sample []string
	for _, kv := range results[:min(8, len(results))] {
		sample = append(sample, kv.Key+"="+kv.Value)
	}
	fmt.Println("first keys:", strings.Join(sample, " "))
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
