// Encryption example: the paper's data-intensive workload (§IV-A) run
// for real through the engine — AES-128/CTR over a distributed
// dataset, once with Cell-accelerated mappers (SPE offload in 4 KB
// blocks) and once on the host path ("Java mapper") — verified
// byte-identical and decrypted back (CTR is an involution).
//
//	go run ./examples/encryption
package main

import (
	"bytes"
	"fmt"
	"log"

	"hetmr/internal/engine"
)

func main() {
	// A 1 MB "large working set" of compressible enterprise-looking
	// data, spread over the cluster in 64 KB blocks.
	plain := make([]byte, 1<<20)
	pattern := []byte("confidential-record-")
	for i := range plain {
		plain[i] = pattern[i%len(pattern)] + byte(i>>10)
	}
	key := []byte("128-bit-aes-key!")
	iv := []byte("hetmr-example-iv")
	job := &engine.Job{Kind: engine.Encrypt, Input: plain, Key: key, IV: iv}
	base := engine.Config{Workers: 4, BlockSize: 64 << 10}

	// Cell-accelerated pass.
	cellCfg := base
	cellCfg.Mapper = "cell"
	cell, err := engine.RunOnce("live", cellCfg, job)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cell-accelerated mappers encrypted %d bytes across %d nodes in %v\n",
		len(cell.Bytes), base.Workers, cell.Elapsed)

	// Host ("Java") pass.
	javaCfg := base
	javaCfg.Mapper = "java"
	java, err := engine.RunOnce("live", javaCfg, job)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(cell.Bytes, java.Bytes) {
		log.Fatal("accelerated and host ciphertexts differ")
	}
	fmt.Println("host and SPE-offloaded ciphertexts are byte-identical")

	// The single-node Cell framework (the paper's second native
	// library) computes the same bytes through its own staging path.
	fw, err := engine.RunOnce("cellmr", engine.Config{}, job)
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(fw.Bytes, cell.Bytes) {
		log.Fatal("cellmr framework ciphertext differs")
	}
	fmt.Println("node-level cellmr framework agrees byte-for-byte")

	// CTR is an involution: stream the ciphertext again to decrypt.
	back, err := engine.RunOnce("live", cellCfg, &engine.Job{
		Kind: engine.Encrypt, Input: cell.Bytes, Key: key, IV: iv,
	})
	if err != nil {
		log.Fatal(err)
	}
	if !bytes.Equal(back.Bytes, plain) {
		log.Fatal("decryption failed")
	}
	fmt.Println("decryption restored the original dataset")
}
