// Encryption example: the paper's data-intensive workload (§IV-A) run
// for real on the live cluster — AES-128/CTR over a DFS file, once on
// the host path ("Java mapper") and once offloaded to the Cell SPEs in
// 4 KB blocks ("Cell mapper") — then verified byte-identical and
// decrypted back.
//
//	go run ./examples/encryption
package main

import (
	"bytes"
	"fmt"
	"log"

	"hetmr/internal/core"
	"hetmr/internal/kernels"
	"hetmr/internal/spurt"
)

func main() {
	clus, err := core.NewLiveCluster(4, core.WithBlockSize(64<<10))
	if err != nil {
		log.Fatal(err)
	}

	// A 1 MB "large working set" of compressible enterprise-looking
	// data, spread over the cluster.
	plain := make([]byte, 1<<20)
	pattern := []byte("confidential-record-")
	for i := range plain {
		plain[i] = pattern[i%len(pattern)] + byte(i>>10)
	}
	if err := clus.FS.WriteFile("/dataset", plain, ""); err != nil {
		log.Fatal(err)
	}

	cipher, err := kernels.NewCipher([]byte("128-bit-aes-key!"))
	if err != nil {
		log.Fatal(err)
	}
	iv := []byte("hetmr-example-iv")
	kern := spurt.KernelFunc{KernelName: "aes-ctr", Fn: kernels.CTRBlockFunc(cipher, iv)}

	// Cell-accelerated pass.
	n, err := clus.RunStream(&core.StreamJob{
		Name: "encrypt-cell", Input: "/dataset", Output: "/dataset.aes.cell",
		Kernel: kern, Accelerated: true,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("cell-accelerated mappers encrypted %d bytes across %d nodes\n",
		n, len(clus.Nodes))

	// Host ("Java") pass.
	if _, err := clus.RunStream(&core.StreamJob{
		Name: "encrypt-java", Input: "/dataset", Output: "/dataset.aes.java",
		Kernel: kern, Accelerated: false,
	}); err != nil {
		log.Fatal(err)
	}

	cell, _ := clus.FS.ReadFile("/dataset.aes.cell")
	java, _ := clus.FS.ReadFile("/dataset.aes.java")
	if !bytes.Equal(cell, java) {
		log.Fatal("accelerated and host ciphertexts differ")
	}
	fmt.Println("host and SPE-offloaded ciphertexts are byte-identical")

	// CTR is an involution: stream the ciphertext again to decrypt.
	if _, err := clus.RunStream(&core.StreamJob{
		Name: "decrypt", Input: "/dataset.aes.cell", Output: "/dataset.plain",
		Kernel: kern, Accelerated: true,
	}); err != nil {
		log.Fatal(err)
	}
	back, _ := clus.FS.ReadFile("/dataset.plain")
	if !bytes.Equal(back, plain) {
		log.Fatal("decryption failed")
	}
	fmt.Println("decryption restored the original dataset")

	// DMA accounting from the functional Cell model.
	var dma int64
	for _, node := range clus.Nodes {
		for _, chip := range node.Blade.Chips {
			dma += chip.TotalDMABytes()
		}
	}
	fmt.Printf("total bytes moved through SPE local stores (DMA): %d\n", dma)
}
