// TCP cluster example: the paper's architecture over real sockets.
// Boots a NameNode, DataNodes, a JobTracker and TaskTrackers as TCP
// daemons on loopback, stores a dataset in the distributed FS, and
// runs the paper's two workloads as real distributed jobs — AES
// encryption of the stored blocks and a Monte Carlo Pi estimation —
// with block data genuinely crossing the network stack.
//
//	go run ./examples/tcpcluster
package main

import (
	"bytes"
	"fmt"
	"log"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/netmr"
	"hetmr/internal/rpcnet"
)

func main() {
	const blockSize = 64 << 10
	clus, err := netmr.StartCluster(4, 2, blockSize, 50*time.Millisecond)
	if err != nil {
		log.Fatal(err)
	}
	defer clus.Shutdown()
	fmt.Printf("daemons up: NameNode %s, JobTracker %s, %d DataNodes, %d TaskTrackers\n",
		clus.NN.Addr(), clus.JT.Addr(), len(clus.DNs), len(clus.TTs))

	// Store a working set in the DFS.
	plain := make([]byte, 1<<20)
	for i := range plain {
		plain[i] = byte(i * 131)
	}
	if err := clus.Client.WriteFile("/dataset", plain, ""); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("stored /dataset: %d bytes in %d-byte blocks across the DataNodes\n",
		len(plain), blockSize)

	// Distributed AES encryption (data-intensive workload).
	key := []byte("tcp-cluster-key!")
	iv := []byte("tcp-cluster-iv!!")
	args, err := rpcnet.Marshal(netmr.AESArgs{Key: key, IV: iv, BlockBytes: blockSize})
	if err != nil {
		log.Fatal(err)
	}
	start := time.Now()
	result, err := clus.Client.SubmitAndWait(netmr.JobSpec{
		Name: "encrypt", Kernel: "aes-ctr", Input: "/dataset", Args: args,
	}, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	var cipherText []byte
	if err := rpcnet.Unmarshal(result, &cipherText); err != nil {
		log.Fatal(err)
	}
	cip, _ := kernels.NewCipher(key)
	want := make([]byte, len(plain))
	kernels.CTRStream(cip, iv, 0, want, plain)
	if !bytes.Equal(cipherText, want) {
		log.Fatal("ciphertext mismatch")
	}
	fmt.Printf("aes-ctr job: %d bytes encrypted by the TaskTrackers in %v; verified\n",
		len(cipherText), time.Since(start).Round(time.Millisecond))

	// Distributed Pi estimation (CPU-intensive workload).
	start = time.Now()
	result, err = clus.Client.SubmitAndWait(netmr.JobSpec{
		Name: "pi", Kernel: "pi", Samples: 8_000_000, NumTasks: 8,
	}, 30*time.Second)
	if err != nil {
		log.Fatal(err)
	}
	var pi netmr.PiResult
	if err := rpcnet.Unmarshal(result, &pi); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pi job: %d samples over 8 tasks in %v -> pi ~= %.6f\n",
		pi.Total, time.Since(start).Round(time.Millisecond), pi.Pi)
}
