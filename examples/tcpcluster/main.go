// TCP cluster example: the paper's architecture over real sockets,
// driven through the engine's "net" backend. Booting the backend
// starts a NameNode, DataNodes, a JobTracker and TaskTrackers as TCP
// daemons on loopback; the example then runs the paper's two workloads
// as real distributed jobs — AES encryption of the stored blocks and a
// Monte Carlo Pi estimation — with block data genuinely crossing the
// network stack.
//
//	go run ./examples/tcpcluster
package main

import (
	"bytes"
	"fmt"
	"log"

	"hetmr/internal/engine"
	"hetmr/internal/kernels"
	"hetmr/internal/netmr"
)

func main() {
	const blockSize = 64 << 10
	runner, err := engine.New("net", engine.Config{Workers: 4, BlockSize: blockSize})
	if err != nil {
		log.Fatal(err)
	}
	defer runner.Close()
	// The net backend exposes its deployment for daemon-level detail.
	if nr, ok := runner.(interface{ Cluster() *netmr.Cluster }); ok {
		clus := nr.Cluster()
		fmt.Printf("daemons up: NameNode %s, JobTracker %s, %d DataNodes, %d TaskTrackers\n",
			clus.NN.Addr(), clus.JT.Addr(), len(clus.DNs), len(clus.TTs))
	}

	// A 1 MB working set, stored block by block across the DataNodes.
	plain := make([]byte, 1<<20)
	for i := range plain {
		plain[i] = byte(i * 131)
	}
	key := []byte("tcp-cluster-key!")
	iv := []byte("tcp-cluster-iv!!")

	// Distributed AES encryption (data-intensive workload).
	enc, err := runner.Run(&engine.Job{
		Kind: engine.Encrypt, Input: plain, Key: key, IV: iv,
	})
	if err != nil {
		log.Fatal(err)
	}
	cip, _ := kernels.NewCipher(key)
	want := make([]byte, len(plain))
	kernels.CTRStream(cip, iv, 0, want, plain)
	if !bytes.Equal(enc.Bytes, want) {
		log.Fatal("ciphertext mismatch")
	}
	fmt.Printf("aes-ctr job: %d bytes encrypted by the TaskTrackers in %v; verified\n",
		len(enc.Bytes), enc.Elapsed)

	// Distributed Pi estimation (CPU-intensive workload).
	pi, err := runner.Run(&engine.Job{
		Kind: engine.Pi, Samples: 8_000_000, Tasks: 8,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("pi job: %d samples over 8 tasks in %v -> pi ~= %.6f\n",
		pi.Total, pi.Elapsed, pi.Pi)
}
