// Command mrsim runs ad-hoc jobs on any registered MapReduce backend:
// pick a backend, a workload, a mapper variant and a cluster size, and
// get either the calibrated model's makespan and runtime statistics
// (backend sim) or a real execution's results (backends live, net,
// cellmr).
//
//	mrsim -nodes 16 -workload enc -mapper cell -gb-per-mapper 1
//	mrsim -nodes 50 -workload pi -mapper java -samples 1e11
//	mrsim -nodes 32 -workload pi -mapper cell -samples 1e11 -accel-fraction 0.5 -speculative
//	mrsim -backend live -nodes 4 -workload wc -mb 4
//	mrsim -backend net -nodes 4 -workload pi -samples 1e7
//	mrsim -backend live -workload sort -input big.dat -output sorted.dat -spill-mem 33554432
//
// It can also run as a long-lived multi-tenant job service, or submit
// against one:
//
//	mrsim -serve -nodes 4 -quotas alice=3,bob=1:2
//	mrsim -nn 127.0.0.1:40001 -jt 127.0.0.1:40003 -tenant alice -workload pi -samples 1e7
package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	"hetmr/internal/engine"
)

func main() {
	backend := flag.String("backend", "sim", fmt.Sprintf("execution backend %v", engine.Backends()))
	nodes := flag.Int("nodes", 16, "worker node count")
	wl := flag.String("workload", "pi", "enc, pi, wc or sort")
	mapper := flag.String("mapper", "cell", "java, cell or empty")
	gbPerMapper := flag.Float64("gb-per-mapper", 1, "modelled input GB per mapper (backend sim data workloads)")
	mb := flag.Float64("mb", 1, "materialized input MB (functional backends' data workloads)")
	samples := flag.Float64("samples", 1e11, "total samples (pi)")
	maps := flag.Int("maps", 0, "map task count (pi; default 2 per node)")
	accelFraction := flag.Float64("accel-fraction", 1.0, "fraction of nodes with accelerators")
	speculative := flag.Bool("speculative", false, "enable speculative execution (sim, live and net)")
	maxAttempts := flag.Int("max-attempts", 0, "per-task attempt cap, 0 = scheduler default (live and net)")
	speedHints := flag.Bool("speed-hints", false, "seed the scheduler with perfmodel's Cell/PPE speed ratio for the accelerated fraction (live; on net this also sets the device profile)")
	jobTimeout := flag.Duration("job-timeout", 0, "per-job deadline, 0 = engine default (net)")
	timeline := flag.Bool("timeline", false, "print a task-attempt Gantt chart (sim)")
	input := flag.String("input", "", "stream this file from disk through Job.Source instead of a synthetic dataset (data workloads)")
	output := flag.String("output", "", "stream the job's output to this file through Job.Sink (sort and enc)")
	spillMem := flag.Int64("spill-mem", 0, "data-plane spill watermark in bytes: 0 keeps everything in memory, -1 spills every payload (live and net)")
	spillCompress := flag.Bool("spill-compress", false, "frame-compress spilled payloads")
	codec := flag.String("codec", "", "data-plane compression codec (snap or flate): negotiated on the wire for net backends and remote submission, and used for -spill-compress frames")
	serveMode := flag.Bool("serve", false, "run a long-lived multi-tenant job service instead of one job; print its addresses and block until interrupted")
	quotas := flag.String("quotas", "", "per-tenant quotas for -serve: tenant=weight[:maxJobs[:maxTrackers[:spillBytes[:maxQueued]]]],...")
	slots := flag.Int("slots", 2, "task slots per worker (-serve)")
	blockSize := flag.Int64("block-size", 64_000, "DFS block size in bytes (-serve and remote submission)")
	nn := flag.String("nn", "", "NameNode address of a running job service (remote submission and admin)")
	jt := flag.String("jt", "", "JobTracker address of a running job service (remote submission and admin)")
	tenant := flag.String("tenant", "", "tenant to submit as against a running job service")
	racks := flag.Int("racks", 0, "spread workers over this many racks (net, live and -serve); 0 or 1 = flat topology")
	rangePartition := flag.Bool("range-partition", false, "route net-backend sort through the sampled range partitioner: output streams back in key order with no client-side merge")
	listNodes := flag.Bool("list-nodes", false, "admin: print a running service's tracker and datanode membership (-nn/-jt)")
	decommTracker := flag.String("decommission-tracker", "", "admin: drain the named TaskTracker on a running service (-jt)")
	decommDN := flag.String("decommission-dn", "", "admin: re-replicate and retire the DataNode at this address on a running service (-nn)")
	flag.Parse()

	if *serveMode {
		if err := serve(*nodes, *slots, *blockSize, *quotas, *spillMem, *spillCompress, *codec, *racks); err != nil {
			fmt.Fprintln(os.Stderr, "mrsim:", err)
			os.Exit(1)
		}
		return
	}
	if *listNodes || *decommTracker != "" || *decommDN != "" {
		err := runAdmin(*nn, *jt, *blockSize, *listNodes, *decommTracker, *decommDN)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrsim:", err)
			os.Exit(1)
		}
		return
	}
	if *nn != "" || *jt != "" {
		if *nn == "" || *jt == "" {
			fmt.Fprintln(os.Stderr, "mrsim: remote submission needs both -nn and -jt")
			os.Exit(1)
		}
		err := runRemote(*nn, *jt, *tenant, *wl, *blockSize, *mb, int64(*samples), *maps, *jobTimeout, *codec)
		if err != nil {
			fmt.Fprintln(os.Stderr, "mrsim:", err)
			os.Exit(1)
		}
		return
	}

	accel := *accelFraction
	if accel == 0 {
		accel = engine.NoAcceleration
	}
	// Any negative flag value selects spill-everything, independent of
	// what numeric value engine.SpillAll happens to be.
	spill := *spillMem
	if spill < 0 {
		spill = engine.SpillAll
	}
	cfg := engine.Config{
		Workers:        *nodes,
		Mapper:         *mapper,
		AccelFraction:  accel,
		Speculative:    *speculative,
		MaxAttempts:    *maxAttempts,
		JobTimeout:     *jobTimeout,
		Timeline:       *timeline,
		SpillMemBytes:  spill,
		SpillCompress:  *spillCompress,
		Codec:          *codec,
		Racks:          *racks,
		RangePartition: *rangePartition,
	}
	if *speedHints {
		// accel already follows the Config convention the shared
		// resolver expects (0 -> NoAcceleration happened above).
		cfg.SpeedHints = engine.HeterogeneousSpeedHints(*nodes, accel)
	}
	job, err := buildJob(*backend, *wl, cfg, *gbPerMapper, *mb, int64(*samples), *maps)
	if err == nil {
		err = wireStreams(job, *input, *output, func(job *engine.Job) error {
			return run(*backend, cfg, job)
		})
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "mrsim:", err)
		os.Exit(1)
	}
}

// wireStreams attaches the -input file as Job.Source and the -output
// file as Job.Sink (both streamed, never slurped), then runs the job
// and closes the files.
func wireStreams(job *engine.Job, input, output string, run func(*engine.Job) error) error {
	if input != "" {
		f, err := os.Open(input)
		if err != nil {
			return err
		}
		defer f.Close()
		job.Source = f
		job.Input = nil
		job.InputBytes = 0
	}
	if output != "" {
		f, err := os.Create(output)
		if err != nil {
			return err
		}
		job.Sink = f
		if err := run(job); err != nil {
			f.Close()
			return err
		}
		return f.Close()
	}
	return run(job)
}

// buildJob translates the CLI workload flags into an engine job.
func buildJob(backend, wl string, cfg engine.Config, gbPerMapper, mb float64,
	samples int64, maps int) (*engine.Job, error) {
	var kind engine.Kind
	switch wl {
	case "enc":
		kind = engine.Encrypt
	case "pi":
		kind = engine.Pi
	case "wc":
		kind = engine.Wordcount
	case "sort":
		kind = engine.Sort
	default:
		return nil, fmt.Errorf("unknown workload %q (enc|pi|wc|sort)", wl)
	}
	job := &engine.Job{Kind: kind}
	switch kind {
	case engine.Pi:
		job.Samples = samples
		job.Tasks = maps
	default:
		if backend == "sim" {
			// Modelled size: the paper's GB-scale working sets.
			job.InputBytes = int64(gbPerMapper * float64(int64(1)<<30) * float64(cfg.Workers*2))
		} else {
			// Real bytes on functional backends.
			job.InputBytes = int64(mb * float64(int64(1)<<20))
			if kind == engine.Sort {
				job.InputBytes -= job.InputBytes % 100 // whole records
			}
		}
		if kind == engine.Encrypt {
			job.Key = []byte("mrsim-aes-key-16")
		}
	}
	return job, nil
}

func run(backend string, cfg engine.Config, job *engine.Job) error {
	res, err := engine.RunOnce(backend, cfg, job)
	if err != nil {
		return err
	}
	accel := cfg.AccelFraction
	if accel == engine.NoAcceleration {
		accel = 0
	}
	fmt.Printf("backend=%s workload=%s mapper=%s nodes=%d accel=%.0f%% speculative=%v\n",
		backend, job.Kind, cfg.Mapper, cfg.Workers, accel*100, cfg.Speculative)
	if res.Sim != nil {
		s := res.Sim
		fmt.Printf("  makespan        %.2f s (setup-adjusted: %.2f s)\n",
			s.MakespanSeconds, s.SetupAdjustedSeconds)
		fmt.Printf("  tasks           %d completed reports, %d attempts launched\n",
			s.Tasks, s.Attempts)
		if s.InputBytes > 0 {
			fmt.Printf("  input           %.2f GB (%d local reads, %d remote)\n",
				float64(s.InputBytes)/(1<<30), s.LocalReads, s.RemoteReads)
		}
		fmt.Printf("  energy          %.1f kJ (%.4f kWh)\n",
			s.EnergyJoules/1e3, s.EnergyJoules/3.6e6)
		fmt.Printf("  slot use        %.0f%% of map-slot time\n", 100*s.SlotUtilization)
		if s.Timeline != "" {
			fmt.Println()
			fmt.Print(s.Timeline)
		}
	} else {
		fmt.Printf("  wall time       %v\n", res.Elapsed)
		if len(res.TaskCounts) > 0 {
			fmt.Printf("  task counts    ")
			for _, name := range sortedKeys(res.TaskCounts) {
				// The net backend reports each tracker's device kind;
				// print it next to the count so the heterogeneous skew
				// is visible at a glance.
				if kind := res.Devices[name]; kind != "" {
					fmt.Printf(" %s(%s)=%d", name, kind, res.TaskCounts[name])
				} else {
					fmt.Printf(" %s=%d", name, res.TaskCounts[name])
				}
			}
			fmt.Println()
		}
	}
	switch job.Kind {
	case engine.Pi:
		if res.Total > 0 {
			fmt.Printf("  pi              %.6f (%d of %d samples inside)\n",
				res.Pi, res.Inside, res.Total)
		}
	case engine.Wordcount:
		if res.Pairs != nil {
			fmt.Printf("  distinct words  %d\n", len(res.Pairs))
		}
	case engine.Sort, engine.Encrypt:
		if res.Bytes != nil {
			fmt.Printf("  output          %d bytes\n", len(res.Bytes))
		}
		if res.OutputBytes > 0 {
			fmt.Printf("  output          %d bytes streamed to sink\n", res.OutputBytes)
		}
	}
	return nil
}

// sortedKeys returns the map's keys in sorted order.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
