// Command mrsim runs ad-hoc jobs on the simulated heterogeneous
// cluster: pick a workload, mapper variant, cluster size and options,
// and get the modelled makespan plus runtime statistics (locality,
// attempts, energy).
//
//	mrsim -nodes 16 -workload enc -mapper cell -gb-per-mapper 1
//	mrsim -nodes 50 -workload pi -mapper java -samples 1e11
//	mrsim -nodes 32 -workload pi -mapper cell -samples 1e11 -accel-fraction 0.5 -speculative
package main

import (
	"flag"
	"fmt"
	"os"

	"hetmr/internal/cluster"
	"hetmr/internal/core"
	"hetmr/internal/experiments"
	"hetmr/internal/hadoop"
	"hetmr/internal/hdfs"
	"hetmr/internal/perfmodel"
	"hetmr/internal/workload"
)

func main() {
	nodes := flag.Int("nodes", 16, "worker node count")
	wl := flag.String("workload", "pi", "enc or pi")
	mapper := flag.String("mapper", "cell", "java, cell or empty")
	gbPerMapper := flag.Float64("gb-per-mapper", 1, "input GB per mapper (enc)")
	samples := flag.Float64("samples", 1e11, "total samples (pi)")
	maps := flag.Int("maps", 0, "map task count (pi; default 2 per node)")
	accelFraction := flag.Float64("accel-fraction", 1.0, "fraction of nodes with accelerators")
	speculative := flag.Bool("speculative", false, "enable speculative execution")
	timeline := flag.Bool("timeline", false, "print a task-attempt Gantt chart")
	flag.Parse()

	if err := run(*nodes, *wl, *mapper, *gbPerMapper, int64(*samples), *maps,
		*accelFraction, *speculative, *timeline); err != nil {
		fmt.Fprintln(os.Stderr, "mrsim:", err)
		os.Exit(1)
	}
}

func run(nodes int, wl, mapper string, gbPerMapper float64, samples int64,
	maps int, accelFraction float64, speculative, timeline bool) error {
	cfg := hadoop.DefaultConfig()
	cfg.Speculative = speculative
	if maps <= 0 {
		maps = nodes * perfmodel.MapSlotsPerNode
	}

	var mapperFor func(*cluster.Node) hadoop.Mapper
	var buildSplits func(*hdfs.NameNode, []string) ([]hadoop.Split, error)
	switch wl {
	case "enc":
		perMapper := int64(gbPerMapper * float64(1<<30))
		buildSplits = func(nn *hdfs.NameNode, nodeNames []string) ([]hadoop.Split, error) {
			return workload.EncryptionDataset(nn, nodeNames, perfmodel.MapSlotsPerNode, perMapper)
		}
		switch mapper {
		case "java":
			mapperFor = hadoop.StaticMapperFor(hadoop.JavaAESMapper{})
		case "cell":
			mapperFor = hadoop.AcceleratedMapperFor(hadoop.CellAESMapper{}, hadoop.JavaAESMapper{})
		case "empty":
			mapperFor = hadoop.StaticMapperFor(hadoop.EmptyMapper{})
		default:
			return fmt.Errorf("unknown mapper %q", mapper)
		}
	case "pi":
		buildSplits = func(*hdfs.NameNode, []string) ([]hadoop.Split, error) {
			return core.PiSplits(samples, maps)
		}
		switch mapper {
		case "java":
			mapperFor = hadoop.StaticMapperFor(hadoop.JavaPiMapper{})
		case "cell":
			mapperFor = hadoop.AcceleratedMapperFor(hadoop.CellPiMapper{}, hadoop.JavaPiMapper{})
		case "empty":
			mapperFor = hadoop.StaticMapperFor(hadoop.EmptyMapper{})
		default:
			return fmt.Errorf("unknown mapper %q", mapper)
		}
	default:
		return fmt.Errorf("unknown workload %q (enc|pi)", wl)
	}

	run, err := experiments.RunDistributed(nodes, cfg, buildSplits, mapperFor,
		cluster.WithAcceleratedFraction(accelFraction))
	if err != nil {
		return err
	}
	res := run.Result
	fmt.Printf("workload=%s mapper=%s nodes=%d accel=%.0f%% speculative=%v\n",
		wl, mapper, nodes, accelFraction*100, speculative)
	fmt.Printf("  makespan        %.2f s (setup-adjusted: %.2f s)\n",
		res.Duration().Seconds(), (res.Finished - res.Started).Seconds())
	fmt.Printf("  tasks           %d completed reports, %d attempts launched\n",
		len(res.Tasks), res.Attempts)
	if res.InputBytes > 0 {
		fmt.Printf("  input           %.2f GB (%d local reads, %d remote)\n",
			float64(res.InputBytes)/(1<<30), res.LocalReads, res.RemoteReads)
	}
	fmt.Printf("  energy          %.1f kJ (%.4f kWh)\n",
		res.EnergyJoules/1e3, res.EnergyJoules/3.6e6)
	fmt.Printf("  slot use        %.0f%% of map-slot time\n",
		100*hadoop.SlotUtilization(res, nodes, perfmodel.MapSlotsPerNode))
	if timeline {
		fmt.Println()
		fmt.Print(hadoop.RenderTimeline(res, 100))
	}
	return nil
}
