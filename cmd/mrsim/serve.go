package main

import (
	"fmt"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"strings"
	"syscall"
	"time"

	"hetmr/internal/engine"
	"hetmr/internal/netmr"
	"hetmr/internal/rpcnet"
	"hetmr/internal/spill"
)

// serve boots a long-running multi-tenant job service and blocks until
// interrupted: the printed NameNode/JobTracker addresses are what
// client invocations (-nn/-jt) dial to submit jobs against the shared
// fleet.
func serve(nodes, slots int, blockSize int64, quotaSpec string, spillMem int64, spillCompress bool, codecName string, racks int) error {
	quotas, err := parseQuotas(quotaSpec)
	if err != nil {
		return err
	}
	if codecName != "" {
		if _, ok := spill.CodecByName(codecName); !ok {
			return fmt.Errorf("unknown codec %q (have %v)", codecName, spill.CodecNames())
		}
	}
	opts := []netmr.ClusterOption{netmr.WithQuotas(quotas)}
	if spillMem != 0 {
		mem := spillMem
		if mem < 0 {
			mem = 0 // spill everything
		}
		var codec spill.Codec
		if spillCompress {
			codec = spill.Flate()
			if codecName != "" {
				codec, _ = spill.CodecByName(codecName) // validated above
			}
		}
		opts = append(opts, netmr.WithSpill("", mem, codec))
	}
	if codecName != "" {
		opts = append(opts, netmr.WithWireCodec(codecName))
	}
	if racks >= 2 {
		opts = append(opts, netmr.WithRacks(racks))
	}
	svc, err := netmr.StartService(nodes, slots, blockSize, 20*time.Millisecond, opts...)
	if err != nil {
		return err
	}
	defer svc.Close()
	fmt.Printf("mrsim job service up: %d workers x %d slots, block size %d\n", nodes, slots, blockSize)
	fmt.Printf("  namenode    %s\n", svc.NameNodeAddr())
	fmt.Printf("  jobtracker  %s\n", svc.JobTrackerAddr())
	for _, tenant := range sortedQuotaTenants(quotas) {
		q := quotas[tenant]
		fmt.Printf("  tenant %-12s weight=%g maxJobs=%d maxTrackers=%d spillBytes=%d\n",
			tenant, q.Weight, q.MaxJobs, q.MaxTrackers, q.SpillBytes)
	}
	fmt.Println("submit with: mrsim -nn <addr> -jt <addr> -tenant <name> -workload ...")
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("\nmrsim: shutting the service down")
	return nil
}

// parseQuotas reads the -quotas syntax: a comma-separated list of
// tenant=weight[:maxJobs[:maxTrackers[:spillBytes[:maxQueued]]]]
// entries, e.g. "alice=3,bob=1:2" (bob at weight 1, at most 2
// concurrent jobs).
func parseQuotas(spec string) (map[string]netmr.Quota, error) {
	quotas := make(map[string]netmr.Quota)
	if spec == "" {
		return quotas, nil
	}
	for _, entry := range strings.Split(spec, ",") {
		name, rest, ok := strings.Cut(strings.TrimSpace(entry), "=")
		if !ok || name == "" {
			return nil, fmt.Errorf("quota entry %q: want tenant=weight[:maxJobs[:maxTrackers[:spillBytes[:maxQueued]]]]", entry)
		}
		parts := strings.Split(rest, ":")
		if len(parts) > 5 {
			return nil, fmt.Errorf("quota entry %q has %d fields, at most 5", entry, len(parts))
		}
		var q netmr.Quota
		if w, err := strconv.ParseFloat(parts[0], 64); err != nil {
			return nil, fmt.Errorf("quota entry %q: weight: %v", entry, err)
		} else {
			q.Weight = w
		}
		ints := []*int{nil, &q.MaxJobs, &q.MaxTrackers, nil, &q.MaxQueued}
		for i := 1; i < len(parts); i++ {
			if i == 3 {
				n, err := strconv.ParseInt(parts[3], 10, 64)
				if err != nil {
					return nil, fmt.Errorf("quota entry %q: spillBytes: %v", entry, err)
				}
				q.SpillBytes = n
				continue
			}
			n, err := strconv.Atoi(parts[i])
			if err != nil {
				return nil, fmt.Errorf("quota entry %q: field %d: %v", entry, i, err)
			}
			*ints[i] = n
		}
		quotas[name] = q
	}
	return quotas, nil
}

// runAdmin executes the cluster-membership admin verbs against a
// running job service: list the membership view, drain a tracker, or
// re-replicate and retire a DataNode.
func runAdmin(nnAddr, jtAddr string, blockSize int64, list bool, decommTracker, decommDN string) error {
	if nnAddr == "" || jtAddr == "" {
		return fmt.Errorf("admin commands need both -nn and -jt")
	}
	c, err := netmr.NewClient(nnAddr, jtAddr, blockSize)
	if err != nil {
		return err
	}
	defer c.Close()
	if decommTracker != "" {
		if err := c.DecommissionTracker(decommTracker); err != nil {
			return err
		}
		fmt.Printf("tracker %s draining: no new work; it exits once in-flight tasks and held shuffle state clear\n", decommTracker)
	}
	if decommDN != "" {
		if err := c.DecommissionDataNode(decommDN); err != nil {
			return err
		}
		fmt.Printf("datanode %s decommissioned: blocks re-replicated and node dropped from placement\n", decommDN)
		fmt.Println("stop the daemon to finish retirement — left running, it rejoins as an empty member on its next heartbeat")
	}
	if list {
		trackers, err := c.ListTrackers()
		if err != nil {
			return err
		}
		fmt.Printf("trackers (%d):\n", len(trackers))
		for _, t := range trackers {
			fmt.Printf("  %-16s rack=%-8s device=%-5s state=%s\n", t.ID, t.Rack, t.Device, t.State)
		}
		nodes, err := c.ListDataNodes()
		if err != nil {
			return err
		}
		fmt.Printf("datanodes (%d):\n", len(nodes))
		for _, d := range nodes {
			fmt.Printf("  %-22s rack=%-8s blocks=%-5d state=%s\n", d.Addr, d.Rack, d.Blocks, d.State)
		}
	}
	return nil
}

// sortedQuotaTenants orders tenant names for stable output.
func sortedQuotaTenants(quotas map[string]netmr.Quota) []string {
	names := make([]string, 0, len(quotas))
	for name := range quotas {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// runRemote submits one workload to an already-running job service as
// the given tenant, waits for it and prints the result — the client
// half of -serve.
func runRemote(nnAddr, jtAddr, tenant, wl string, blockSize int64, mb float64, samples int64, maps int, timeout time.Duration, codecName string) error {
	var copts []netmr.ClientOption
	if codecName != "" {
		copts = append(copts, netmr.WithClientWireCodec(codecName))
	}
	tc, err := netmr.NewTenantClient(nnAddr, jtAddr, blockSize, tenant, copts...)
	if err != nil {
		return err
	}
	defer tc.Close()
	if timeout == 0 {
		timeout = engine.DefaultJobTimeout
	}
	inputBytes := int64(mb * float64(int64(1)<<20))
	spec := netmr.JobSpec{Name: fmt.Sprintf("%s-%s", tenant, wl)}
	switch wl {
	case "pi":
		spec.Kernel = "pi"
		spec.Samples = samples
		spec.NumTasks = maps
	case "wc", "sort", "enc":
		if wl == "sort" {
			inputBytes -= inputBytes % 100 // whole records
		}
		path := fmt.Sprintf("/mrsim/%s-%d", wl, time.Now().UnixNano())
		if _, err := tc.WriteFrom(path, engine.SyntheticReader(inputBytes), ""); err != nil {
			return fmt.Errorf("staging %d input bytes: %w", inputBytes, err)
		}
		spec.Input = path
		switch wl {
		case "wc":
			spec.Kernel = "wordcount"
			spec.NumReducers = 3
		case "sort":
			spec.Kernel = "sort"
			spec.NumReducers = 3
		case "enc":
			spec.Kernel = "aes-ctr"
			args, err := rpcnet.Marshal(netmr.AESArgs{
				Key: []byte("mrsim-aes-key-16"), IV: make([]byte, 16), BlockBytes: blockSize,
			})
			if err != nil {
				return err
			}
			spec.Args = args
		}
	default:
		return fmt.Errorf("unknown workload %q for remote submission (enc|pi|wc|sort)", wl)
	}
	start := time.Now()
	id, err := tc.Submit(spec)
	if err != nil {
		return err
	}
	fmt.Printf("tenant=%s job=%d workload=%s submitted to %s\n", tenant, id, wl, jtAddr)
	raw, err := tc.Wait(id, timeout)
	if err != nil {
		return err
	}
	st, err := tc.Status(id)
	if err != nil {
		return err
	}
	fmt.Printf("  wall time       %v\n", time.Since(start))
	fmt.Printf("  tasks           %d of %d completed\n", st.Completed, st.Total)
	switch wl {
	case "pi":
		var pi netmr.PiResult
		if err := rpcnet.Unmarshal(raw, &pi); err != nil {
			return err
		}
		fmt.Printf("  pi              %.6f (%d of %d samples inside)\n", pi.Pi, pi.Inside, pi.Total)
	case "wc":
		var counts map[string]int64
		if err := rpcnet.Unmarshal(raw, &counts); err != nil {
			return err
		}
		fmt.Printf("  distinct words  %d\n", len(counts))
	case "sort", "enc":
		var out []byte
		if err := rpcnet.Unmarshal(raw, &out); err != nil {
			return err
		}
		fmt.Printf("  output          %d bytes\n", len(out))
	}
	return nil
}
