package main

import "testing"

func bench(pkg, name string, ns float64, m map[string]float64) Benchmark {
	return Benchmark{Pkg: pkg, Name: name, NsPerOp: ns, Metrics: m}
}

// TestSyntheticRegressionTripsGate is the gate's own acceptance test:
// a fabricated 50% throughput drop and a fabricated 50% latency rise
// must both register as regressions at a 15% threshold, while the
// direction-correct improvements must not.
func TestSyntheticRegressionTripsGate(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		bench("hetmr/internal/rpcnet", "BenchmarkCallBlock64K", 1_000_000, map[string]float64{"MB/s": 300}),
		bench("hetmr/internal/rpcnet", "BenchmarkCallSmall", 50_000, nil),
	}}
	fresh := Report{Benchmarks: []Benchmark{
		bench("hetmr/internal/rpcnet", "BenchmarkCallBlock64K", 900_000, map[string]float64{"MB/s": 150}), // MB/s halved: regression
		bench("hetmr/internal/rpcnet", "BenchmarkCallSmall", 75_000, nil),                                 // ns/op +50%: regression
	}}
	deltas, _, _ := Diff(base, fresh, 0.15)
	regressed := map[string]bool{}
	for _, d := range deltas {
		if d.Regressed {
			regressed[d.Bench+" "+d.Unit] = true
		}
	}
	if !regressed["hetmr/internal/rpcnet.BenchmarkCallBlock64K MB/s"] {
		t.Error("halved MB/s did not register as a regression")
	}
	if !regressed["hetmr/internal/rpcnet.BenchmarkCallSmall ns/op"] {
		t.Error("+50% ns/op did not register as a regression")
	}
	// The block benchmark's ns/op *improved* (1ms -> 0.9ms); a
	// direction-blind diff would flag it.
	if regressed["hetmr/internal/rpcnet.BenchmarkCallBlock64K ns/op"] {
		t.Error("improved ns/op flagged as a regression")
	}
}

// TestImprovementsAndNoisePass pins the quiet path: moves inside the
// threshold and moves in the good direction never trip the gate.
func TestImprovementsAndNoisePass(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		bench("p", "BenchmarkA", 100, map[string]float64{"MB/s": 100, "B/op": 512}),
	}}
	fresh := Report{Benchmarks: []Benchmark{
		bench("p", "BenchmarkA", 110, map[string]float64{"MB/s": 95, "B/op": 256}), // +10% ns, -5% MB/s, halved allocs
	}}
	deltas, _, _ := Diff(base, fresh, 0.15)
	for _, d := range deltas {
		if d.Regressed {
			t.Errorf("%s %s flagged at %.0f%% with a 15%% threshold", d.Bench, d.Unit, 100*d.Change)
		}
	}
}

// TestUnmatchedBenchmarksNeverFail pins that appearing or disappearing
// benchmarks are reported, not gated.
func TestUnmatchedBenchmarksNeverFail(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{bench("p", "BenchmarkOld", 100, nil)}}
	fresh := Report{Benchmarks: []Benchmark{bench("p", "BenchmarkNew", 100, nil)}}
	deltas, onlyBase, onlyNew := Diff(base, fresh, 0.15)
	if len(deltas) != 0 {
		t.Errorf("unmatched benchmarks produced %d deltas", len(deltas))
	}
	if len(onlyBase) != 1 || onlyBase[0] != "p.BenchmarkOld" {
		t.Errorf("onlyBase = %v", onlyBase)
	}
	if len(onlyNew) != 1 || onlyNew[0] != "p.BenchmarkNew" {
		t.Errorf("onlyNew = %v", onlyNew)
	}
}

// TestBestOfNCollapse pins the -count N merge: repeated entries for
// one benchmark keep the best value per metric, direction-aware, so
// one noisy repetition cannot trip (or mask) the gate.
func TestBestOfNCollapse(t *testing.T) {
	base := Report{Benchmarks: []Benchmark{
		bench("p", "BenchmarkA", 100, map[string]float64{"MB/s": 300}),
	}}
	fresh := Report{Benchmarks: []Benchmark{
		bench("p", "BenchmarkA", 250, map[string]float64{"MB/s": 120}), // contended repetition
		bench("p", "BenchmarkA", 105, map[string]float64{"MB/s": 290}), // clean repetition
		bench("p", "BenchmarkA", 180, map[string]float64{"MB/s": 200}),
	}}
	deltas, _, _ := Diff(base, fresh, 0.15)
	if len(deltas) != 2 {
		t.Fatalf("got %d deltas, want 2", len(deltas))
	}
	for _, d := range deltas {
		if d.Regressed {
			t.Errorf("%s %s: best-of-N %v vs %v flagged as regression", d.Bench, d.Unit, d.New, d.Base)
		}
		switch d.Unit {
		case "ns/op":
			if d.New != 105 {
				t.Errorf("ns/op collapsed to %v, want min 105", d.New)
			}
		case "MB/s":
			if d.New != 290 {
				t.Errorf("MB/s collapsed to %v, want max 290", d.New)
			}
		}
	}
}

// TestDirectionTable pins the unit classifier itself.
func TestDirectionTable(t *testing.T) {
	for unit, higher := range map[string]bool{
		"ns/op": false, "B/op": false, "allocs/op": false,
		"MB/s": true, "ops/s": true, "speedup": true, "x-speedup": true,
	} {
		if got := higherIsBetter(unit); got != higher {
			t.Errorf("higherIsBetter(%q) = %v, want %v", unit, got, higher)
		}
	}
}
