// benchdiff compares a fresh benchjson report against a committed
// baseline and exits nonzero when any shared metric regressed past the
// threshold — the CI bench lane's regression gate.
//
//	benchdiff -baseline BENCH_BASELINE.json -new BENCH_PR7.json -threshold 0.15
//
// Comparison is direction-aware per metric unit: throughput-style
// units (MB/s, anything per second, speedup) regress when they drop,
// cost-style units (ns/op, B/op, allocs/op) regress when they rise.
// Benchmarks present on only one side are reported but never fail the
// gate — new benchmarks land without a baseline and retired ones
// leave — so the gate only ever compares like with like.
//
// Run the benchmarks with `-count N`: repeated entries collapse
// best-of-N (min cost, max rate) before diffing, which filters the
// scheduler-contention noise that single runs on shared CI runners
// carry.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"strings"
)

// Benchmark mirrors one benchjson result entry.
type Benchmark struct {
	Pkg     string             `json:"pkg,omitempty"`
	Name    string             `json:"name"`
	NsPerOp float64            `json:"ns_per_op"`
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Report mirrors the benchjson document.
type Report struct {
	Benchmarks []Benchmark `json:"benchmarks"`
}

// Delta is one metric compared across the two reports. Change is the
// signed fractional move relative to the baseline; Regressed is true
// when the move is in the metric's bad direction by more than the
// threshold.
type Delta struct {
	Bench     string // pkg-qualified benchmark name
	Unit      string // metric unit ("ns/op", "MB/s", ...)
	Base, New float64
	Change    float64
	Regressed bool
}

// higherIsBetter classifies a metric unit's good direction: rates
// (anything per second) and speedups go up, costs (time, bytes,
// allocations per op) go down.
func higherIsBetter(unit string) bool {
	return strings.HasSuffix(unit, "/s") || strings.Contains(unit, "speedup")
}

// key identifies a benchmark across reports. Procs is deliberately
// excluded: the baseline machine and the CI runner may differ in
// GOMAXPROCS, and the gate compares the benchmark, not the box.
func key(b Benchmark) string {
	if b.Pkg == "" {
		return b.Name
	}
	return b.Pkg + "." + b.Name
}

// metrics flattens a benchmark into unit→value, folding ns/op in with
// the extra metrics so one loop compares everything.
func metrics(b Benchmark) map[string]float64 {
	m := make(map[string]float64, len(b.Metrics)+1)
	if b.NsPerOp > 0 {
		m["ns/op"] = b.NsPerOp
	}
	for unit, v := range b.Metrics {
		m[unit] = v
	}
	return m
}

// collapse folds a report into key → unit → value. Repeated entries
// for one benchmark (a `go test -count N` run) merge best-of-N,
// direction-aware: the minimum for cost metrics, the maximum for
// rates. Best-of is the noise floor of the machine, which is what a
// regression gate should compare — medians still wobble with
// scheduler contention on shared runners.
func collapse(r Report) map[string]map[string]float64 {
	out := make(map[string]map[string]float64, len(r.Benchmarks))
	for _, b := range r.Benchmarks {
		k := key(b)
		m := out[k]
		if m == nil {
			m = make(map[string]float64)
			out[k] = m
		}
		for unit, v := range metrics(b) {
			prev, seen := m[unit]
			better := !seen || (higherIsBetter(unit) && v > prev) || (!higherIsBetter(unit) && v < prev)
			if better {
				m[unit] = v
			}
		}
	}
	return out
}

// Diff compares every metric shared by both reports (each collapsed
// best-of-N first). It returns the per-metric deltas (sorted by
// benchmark, then unit) plus the names of benchmarks found on only
// one side.
func Diff(base, fresh Report, threshold float64) (deltas []Delta, onlyBase, onlyNew []string) {
	baseBy, freshBy := collapse(base), collapse(fresh)
	for k, nm := range freshBy {
		bm, ok := baseBy[k]
		if !ok {
			onlyNew = append(onlyNew, k)
			continue
		}
		for unit, bv := range bm {
			nv, ok := nm[unit]
			if !ok || bv == 0 {
				continue
			}
			d := Delta{Bench: k, Unit: unit, Base: bv, New: nv, Change: (nv - bv) / bv}
			if higherIsBetter(unit) {
				d.Regressed = d.Change < -threshold
			} else {
				d.Regressed = d.Change > threshold
			}
			deltas = append(deltas, d)
		}
	}
	for k := range baseBy {
		if _, ok := freshBy[k]; !ok {
			onlyBase = append(onlyBase, k)
		}
	}
	sort.Slice(deltas, func(i, j int) bool {
		if deltas[i].Bench != deltas[j].Bench {
			return deltas[i].Bench < deltas[j].Bench
		}
		return deltas[i].Unit < deltas[j].Unit
	})
	sort.Strings(onlyBase)
	sort.Strings(onlyNew)
	return deltas, onlyBase, onlyNew
}

func readReport(path string) (Report, error) {
	var r Report
	data, err := os.ReadFile(path)
	if err != nil {
		return r, err
	}
	if err := json.Unmarshal(data, &r); err != nil {
		return r, fmt.Errorf("%s: %w", path, err)
	}
	return r, nil
}

func main() {
	basePath := flag.String("baseline", "BENCH_BASELINE.json", "committed benchjson baseline")
	newPath := flag.String("new", "", "fresh benchjson report to gate")
	threshold := flag.Float64("threshold", 0.15, "allowed fractional regression per metric (0.15 = 15%)")
	flag.Parse()
	if *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -new is required")
		os.Exit(2)
	}
	base, err := readReport(*basePath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	fresh, err := readReport(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(2)
	}
	deltas, onlyBase, onlyNew := Diff(base, fresh, *threshold)
	regressed := 0
	for _, d := range deltas {
		mark := "  "
		if d.Regressed {
			mark = "✗ "
			regressed++
		}
		fmt.Printf("%s%-60s %-10s %12.2f -> %12.2f  %+6.1f%%\n",
			mark, d.Bench, d.Unit, d.Base, d.New, 100*d.Change)
	}
	for _, k := range onlyNew {
		fmt.Printf("  %-60s (new, no baseline)\n", k)
	}
	for _, k := range onlyBase {
		fmt.Printf("  %-60s (baseline only, not run)\n", k)
	}
	if regressed > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d metric(s) regressed past %.0f%%\n", regressed, 100**threshold)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: %d metric(s) within %.0f%% of baseline\n", len(deltas), 100**threshold)
}
