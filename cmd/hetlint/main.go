// Command hetlint runs the project-invariant analyzer suite
// (internal/analysis) over the module: lockheldcall, gobreg,
// configdrop and mustclose. It loads and type-checks the module from
// source — no module downloads, no build cache — and prints findings
// as file:line:col: [analyzer] message, exiting non-zero when any
// survive the //hetlint:ignore directives.
//
// Usage:
//
//	hetlint [-list] [packages]
//
// Packages are module-relative directories ("internal/rpcnet") or the
// default "./..." for the whole module.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"hetmr/internal/analysis"
)

func main() {
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: hetlint [-list] [packages]\n\nhetlint checks hetmr's project invariants. Default package pattern: ./...\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	analyzers := analysis.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	wd, err := os.Getwd()
	if err != nil {
		fatal(err)
	}
	prog, err := analysis.LoadModule(wd, patterns...)
	if err != nil {
		fatal(err)
	}
	diags, err := analysis.Run(prog, analyzers)
	if err != nil {
		fatal(err)
	}
	for _, d := range diags {
		// Print module-relative paths: stable across checkouts, and
		// clickable from the repo root.
		if rel, err := filepath.Rel(prog.Root, d.Pos.Filename); err == nil && !strings.HasPrefix(rel, "..") {
			d.Pos.Filename = rel
		}
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "hetlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hetlint:", err)
	os.Exit(2)
}
