// Command docscheck is the CI docs gate: it fails when an exported
// identifier in the core packages lacks a doc comment, when a core
// package lacks a package comment, or when ARCHITECTURE.md links to a
// file that does not exist. It uses only the standard library so the
// lint lane needs no external tools.
//
//	go run ./cmd/docscheck
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"regexp"
	"strings"
)

// corePackages are the documented-API surface the docs lane enforces.
var corePackages = []string{
	"internal/engine",
	"internal/sched",
	"internal/netmr",
	"internal/spill",
	"internal/flow",
	"internal/hdfs",
	"internal/rpcnet",
	"internal/analysis",
	"internal/testutil",
	"internal/topo",
}

func main() {
	root := "."
	if len(os.Args) > 1 {
		root = os.Args[1]
	}
	var problems []string
	for _, pkg := range corePackages {
		probs, err := checkPackage(filepath.Join(root, pkg))
		if err != nil {
			fmt.Fprintf(os.Stderr, "docscheck: %s: %v\n", pkg, err)
			os.Exit(2)
		}
		problems = append(problems, probs...)
	}
	probs, err := checkLinks(root, "ARCHITECTURE.md")
	if err != nil {
		fmt.Fprintf(os.Stderr, "docscheck: %v\n", err)
		os.Exit(2)
	}
	problems = append(problems, probs...)
	if len(problems) > 0 {
		for _, p := range problems {
			fmt.Println(p)
		}
		fmt.Printf("docscheck: %d problem(s)\n", len(problems))
		os.Exit(1)
	}
	fmt.Println("docscheck: ok")
}

// checkPackage reports exported identifiers without doc comments and a
// missing package comment in one package directory (test files are
// exempt).
func checkPackage(dir string) ([]string, error) {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	var problems []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil {
				hasPkgDoc = true
			}
			problems = append(problems, checkFile(fset, f)...)
		}
		if !hasPkgDoc {
			problems = append(problems, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
	}
	return problems, nil
}

// checkFile reports one file's undocumented exported declarations.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var problems []string
	report := func(pos token.Pos, what, name string) {
		p := fset.Position(pos)
		problems = append(problems, fmt.Sprintf("%s:%d: exported %s %s has no doc comment", p.Filename, p.Line, what, name))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods on unexported receivers are internal API.
			if d.Recv != nil && !exportedReceiver(d.Recv) {
				continue
			}
			what := "function"
			if d.Recv != nil {
				what = "method"
			}
			report(d.Pos(), what, d.Name.Name)
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				switch s := spec.(type) {
				case *ast.TypeSpec:
					if s.Name.IsExported() && d.Doc == nil && s.Doc == nil {
						report(s.Pos(), "type", s.Name.Name)
					}
				case *ast.ValueSpec:
					// A doc comment on the grouped decl covers the group.
					if d.Doc != nil || s.Doc != nil {
						continue
					}
					for _, name := range s.Names {
						if name.IsExported() {
							report(s.Pos(), strings.ToLower(d.Tok.String()), name.Name)
						}
					}
				}
			}
		}
	}
	return problems
}

// exportedReceiver reports whether a method's receiver type is
// exported.
func exportedReceiver(recv *ast.FieldList) bool {
	if len(recv.List) == 0 {
		return false
	}
	t := recv.List[0].Type
	if star, ok := t.(*ast.StarExpr); ok {
		t = star.X
	}
	if gen, ok := t.(*ast.IndexExpr); ok { // generic receiver
		t = gen.X
	}
	id, ok := t.(*ast.Ident)
	return ok && id.IsExported()
}

// linkPattern matches inline markdown links; the destination is
// captured.
var linkPattern = regexp.MustCompile(`\]\(([^)\s]+)\)`)

// checkLinks verifies that every relative link destination in the
// given markdown file points at an existing file or directory.
// External links (scheme-prefixed) and pure anchors are skipped;
// anchors and :line suffixes on file links are stripped before the
// existence check.
func checkLinks(root, name string) ([]string, error) {
	path := filepath.Join(root, name)
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("%s: %w (the docs lane requires it)", name, err)
	}
	var problems []string
	for _, m := range linkPattern.FindAllStringSubmatch(string(data), -1) {
		dest := m[1]
		if strings.Contains(dest, "://") || strings.HasPrefix(dest, "#") || strings.HasPrefix(dest, "mailto:") {
			continue
		}
		dest, _, _ = strings.Cut(dest, "#")
		// Tolerate file.go:123-style pointers.
		if i := strings.LastIndex(dest, ":"); i > 0 {
			if _, err := fmt.Sscanf(dest[i+1:], "%d", new(int)); err == nil {
				dest = dest[:i]
			}
		}
		if dest == "" {
			continue
		}
		if _, err := os.Stat(filepath.Join(root, dest)); err != nil {
			problems = append(problems, fmt.Sprintf("%s: broken link %q", name, m[1]))
		}
	}
	return problems, nil
}
