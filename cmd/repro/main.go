// Command repro regenerates every figure of Becerra et al., "Speeding
// Up Distributed MapReduce Applications Using Hardware Accelerators"
// (ICPP 2009), printing each figure's data series as a text table and
// optionally writing TSV files for plotting.
//
// Usage:
//
//	repro              # all figures
//	repro -fig 5       # one figure
//	repro -tsv out/    # also write out/figN.tsv
//	repro -quick       # reduced sweeps (CI-sized) + backend conformance check
//	repro -conformance # only the cross-backend conformance check
package main

import (
	"bytes"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"hetmr/internal/engine"
	"hetmr/internal/experiments"
	"hetmr/internal/kernels"
	"hetmr/internal/metrics"
)

func main() {
	fig := flag.Int("fig", 0, "figure to regenerate (2,4,5,6,7,8); 0 = all")
	tsvDir := flag.String("tsv", "", "directory to write per-figure TSV files")
	quick := flag.Bool("quick", false, "reduced sweeps for quick runs")
	conformance := flag.Bool("conformance", false, "run only the cross-backend conformance check")
	flag.Parse()

	if *quick || *conformance {
		if err := checkConformance(); err != nil {
			fmt.Fprintln(os.Stderr, "repro:", err)
			os.Exit(1)
		}
		if *conformance {
			return
		}
		fmt.Println()
	}
	if err := run(*fig, *tsvDir, *quick); err != nil {
		fmt.Fprintln(os.Stderr, "repro:", err)
		os.Exit(1)
	}
}

// checkConformance runs the same wordcount, sort and pi jobs on every
// full backend through the engine registry and verifies the results
// agree — the figures below are only trustworthy if the runners they
// are drawn from compute the same thing.
func checkConformance() error {
	cfg := engine.Config{Workers: 3, BlockSize: 5_000}
	var corpus bytes.Buffer
	for i := 0; i < 2_000; i++ {
		fmt.Fprintf(&corpus, "speedup mapreduce accelerator word%03d cell ", i%89)
	}
	jobs := []*engine.Job{
		{Kind: engine.Wordcount, Input: corpus.Bytes()},
		{Kind: engine.Sort, Input: kernels.GenerateSortRecords(2009, 800)},
		{Kind: engine.Pi, Samples: 200_000, Tasks: 6},
		{
			Kind:  engine.Encrypt,
			Input: corpus.Bytes()[:10_000],
			Key:   []byte("repro-conf-key!!"),
		},
	}
	backends := []string{"live", "sim", "net"}
	fmt.Printf("cross-backend conformance (%v):\n", backends)
	// One booted cluster per backend, reused for every job.
	results := make(map[string][]*engine.Result)
	for _, backend := range backends {
		r, err := engine.New(backend, cfg)
		if err != nil {
			return fmt.Errorf("conformance: boot %s: %w", backend, err)
		}
		for _, job := range jobs {
			res, err := r.Run(job)
			if err != nil {
				r.Close()
				return fmt.Errorf("conformance %s on %s: %w", job.Kind, backend, err)
			}
			results[backend] = append(results[backend], res)
		}
		if err := r.Close(); err != nil {
			return fmt.Errorf("conformance: close %s: %w", backend, err)
		}
	}
	for i, job := range jobs {
		ref := results[backends[0]][i]
		for _, backend := range backends[1:] {
			if err := engine.SameResult(job.Kind, ref, results[backend][i]); err != nil {
				return fmt.Errorf("conformance %s: %s vs %s: %w", job.Kind, ref.Backend, backend, err)
			}
		}
		fmt.Printf("  %-10s identical on all backends\n", job.Kind)
	}
	return nil
}

func run(figNum int, tsvDir string, quick bool) error {
	fig4Nodes := experiments.Fig4Nodes
	fig5Nodes := experiments.Fig5Nodes
	fig7Samples := experiments.Fig7Samples
	fig7Nodes := experiments.Fig7NodeCount
	fig8Nodes := experiments.Fig8Nodes
	if quick {
		fig4Nodes = []int{12, 24}
		fig5Nodes = []int{4, 16}
		fig7Samples = []int64{1e6, 1e9, 1e11}
		fig7Nodes = 10
		fig8Nodes = []int{4, 16}
	}

	type genFn func() (metrics.Figure, error)
	gens := map[int]genFn{
		2: func() (metrics.Figure, error) { return experiments.Fig2RawEncryption(), nil },
		4: func() (metrics.Figure, error) { return experiments.Fig4ProportionalEncryption(fig4Nodes) },
		5: func() (metrics.Figure, error) { return experiments.Fig5FixedEncryption(fig5Nodes) },
		6: func() (metrics.Figure, error) { return experiments.Fig6RawPi(), nil },
		7: func() (metrics.Figure, error) { return experiments.Fig7DistributedPiSweep(fig7Nodes, fig7Samples) },
		8: func() (metrics.Figure, error) { return experiments.Fig8DistributedPiScaling(fig8Nodes) },
	}
	order := []int{2, 4, 5, 6, 7, 8}
	if figNum != 0 {
		if _, ok := gens[figNum]; !ok {
			return fmt.Errorf("unknown figure %d (have 2,4,5,6,7,8)", figNum)
		}
		order = []int{figNum}
	}
	for _, n := range order {
		fig, err := gens[n]()
		if err != nil {
			return fmt.Errorf("figure %d: %w", n, err)
		}
		if err := fig.Render(os.Stdout); err != nil {
			return err
		}
		fmt.Println()
		if tsvDir != "" {
			if err := os.MkdirAll(tsvDir, 0o755); err != nil {
				return err
			}
			path := filepath.Join(tsvDir, fig.ID+".tsv")
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := fig.WriteTSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("wrote %s\n\n", path)
		}
	}
	return nil
}
