// benchjson converts `go test -bench` output on stdin into a JSON
// document on stdout — or into the file named by -o, so the CI bench
// lane parameterizes the artifact name (BENCH_PR<N>.json) in one place
// instead of a shell redirect per pipeline.
//
//	go test -bench . -benchtime 1x -run '^$' ./... | benchjson -o BENCH.json
//
// Each benchmark line becomes one entry carrying the package under
// test, the benchmark name (with its -cpu suffix split off), the
// iteration count, ns/op, and any additional metric pairs the
// benchmark reported (B/op, allocs/op, custom ReportMetric units).
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	Pkg        string             `json:"pkg,omitempty"`
	Name       string             `json:"name"`
	Procs      int                `json:"procs,omitempty"`
	Iterations int64              `json:"iterations"`
	NsPerOp    float64            `json:"ns_per_op"`
	Metrics    map[string]float64 `json:"metrics,omitempty"`
}

// Report is the emitted document.
type Report struct {
	GoVersion  string      `json:"go"`
	Generated  string      `json:"generated"`
	Benchmarks []Benchmark `json:"benchmarks"`
}

func main() {
	outPath := flag.String("o", "", "write the JSON document to this file instead of stdout")
	flag.Parse()
	var out io.Writer = os.Stdout
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		defer func() {
			if err := f.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "benchjson:", err)
				os.Exit(1)
			}
		}()
		out = f
	}
	report := Report{
		GoVersion:  runtime.Version(),
		Generated:  time.Now().UTC().Format(time.RFC3339),
		Benchmarks: []Benchmark{},
	}
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if rest, ok := strings.CutPrefix(line, "pkg:"); ok {
			pkg = strings.TrimSpace(rest)
			continue
		}
		if b, ok := parseLine(pkg, line); ok {
			report.Benchmarks = append(report.Benchmarks, b)
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(out)
	enc.SetIndent("", "  ")
	if err := enc.Encode(report); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// parseLine parses one "BenchmarkName-8  10  123 ns/op  4 B/op ..."
// result line.
func parseLine(pkg, line string) (Benchmark, bool) {
	if !strings.HasPrefix(line, "Benchmark") {
		return Benchmark{}, false
	}
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	b := Benchmark{Pkg: pkg, Name: fields[0]}
	if i := strings.LastIndex(b.Name, "-"); i > 0 {
		if procs, err := strconv.Atoi(b.Name[i+1:]); err == nil {
			b.Name, b.Procs = b.Name[:i], procs
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b.Iterations = iters
	// The remainder alternates value/unit pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		unit := fields[i+1]
		if unit == "ns/op" {
			b.NsPerOp = v
			continue
		}
		if b.Metrics == nil {
			b.Metrics = make(map[string]float64)
		}
		b.Metrics[unit] = v
	}
	if b.NsPerOp == 0 && b.Metrics == nil {
		return Benchmark{}, false
	}
	return b, true
}
