// Command cellbench runs the paper's single-node "raw" experiments
// (Figures 2 and 6): the potential of the Cell-accelerated kernels
// with no distributed middleware involved. It reports the calibrated
// model's numbers and, with -live, also executes the kernel for real
// on the functional Cell model to verify correctness and show the DMA
// traffic.
//
//	cellbench -workload enc -size 64
//	cellbench -workload pi -samples 100000000
//	cellbench -workload enc -size 1 -live
package main

import (
	"bytes"
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"hetmr/internal/cellbe"
	"hetmr/internal/cellmr"
	"hetmr/internal/engine"
	"hetmr/internal/kernels"
	"hetmr/internal/perfmodel"
	"hetmr/internal/spurt"
)

func main() {
	workload := flag.String("workload", "enc", "enc or pi")
	sizeMB := flag.Int64("size", 64, "working set size in MB (enc)")
	samples := flag.Int64("samples", 1e8, "sample count (pi)")
	live := flag.Bool("live", false, "also execute the kernel for real on the functional Cell model")
	flag.Parse()

	switch *workload {
	case "enc":
		encBench(*sizeMB, *live)
	case "pi":
		piBench(*samples, *live)
	default:
		fmt.Fprintf(os.Stderr, "cellbench: unknown workload %q (enc|pi)\n", *workload)
		os.Exit(2)
	}
}

func encBench(sizeMB int64, live bool) {
	bytesN := sizeMB << 20
	fmt.Printf("AES-128 encryption of %d MB — modelled single-node configurations:\n\n", sizeMB)
	direct := cellbe.StreamOffloadTime(bytesN, perfmodel.SPEsPerCell,
		perfmodel.SPEBlockBytes, perfmodel.AESSPEBytesPerSec)
	chip := cellbe.NewChip(0)
	fw, err := cellmr.New(chip, perfmodel.SPEsPerCell, perfmodel.SPEBlockBytes)
	if err != nil {
		log.Fatal(err)
	}
	rows := []struct {
		name string
		sec  float64
	}{
		{"Cell BE (direct SPE runtime)", direct.TotalSeconds},
		{"MapReduce Cell (framework)", fw.EstimateStreamTime(bytesN, perfmodel.AESSPEBytesPerSec)},
		{"PPC (Java on Cell PPE)", cellbe.HostComputeTime(bytesN, perfmodel.AESPPEBytesPerSec)},
		{"Power 6 (Java)", cellbe.HostComputeTime(bytesN, perfmodel.AESPower6BytesPerSec)},
	}
	for _, r := range rows {
		fmt.Printf("  %-32s %6.2f MB/s  (%.3f s)\n",
			r.name, float64(bytesN)/(1<<20)/r.sec, r.sec)
	}
	fmt.Printf("\n  direct offload breakdown: init %.1f ms, compute %.3f s, DMA %.3f s (overlapped)\n",
		direct.InitSeconds*1e3, direct.ComputeSeconds, direct.DMASeconds)

	if !live {
		return
	}
	if sizeMB > 64 {
		log.Fatal("cellbench: -live supports sizes up to 64 MB")
	}
	fmt.Println("\nlive functional run (real AES through the Cell MapReduce framework):")
	key := []byte("cellbench-aeskey")
	iv := make([]byte, 16)
	input := make([]byte, bytesN)
	for i := range input {
		input[i] = byte(i * 31)
	}
	// The engine's cellmr backend is the framework configuration of
	// the figure above: PPE staging copy, SPE map workers.
	res, err := engine.RunOnce("cellmr", engine.Config{}, &engine.Job{
		Kind: engine.Encrypt, Input: input, Key: key, IV: iv,
	})
	if err != nil {
		log.Fatal(err)
	}
	cipher, err := kernels.NewCipher(key)
	if err != nil {
		log.Fatal(err)
	}
	want := make([]byte, bytesN)
	kernels.CTRStream(cipher, iv, 0, want, input)
	if !bytes.Equal(res.Bytes, want) {
		log.Fatal("cellbench: SPE output does not match sequential reference")
	}
	fmt.Printf("  %d bytes encrypted on %d SPE workers in %v, output verified against sequential AES\n",
		bytesN, perfmodel.SPEsPerCell, res.Elapsed.Round(time.Millisecond))
}

func piBench(samples int64, live bool) {
	fmt.Printf("Monte Carlo Pi estimation, %d samples — modelled single-node configurations:\n\n", samples)
	cell := cellbe.ComputeOffloadTime(samples, perfmodel.SPEsPerCell, perfmodel.PiSPESamplesPerSec)
	rows := []struct {
		name string
		sec  float64
	}{
		{"Cell BE (8 SPEs)", cell.TotalSeconds},
		{"PPC (Java on Cell PPE)", cellbe.HostComputeTime(samples, perfmodel.PiPPESamplesPerSec)},
		{"Power 6 (Java)", cellbe.HostComputeTime(samples, perfmodel.PiPower6SamplesPerSec)},
	}
	for _, r := range rows {
		fmt.Printf("  %-26s %12.0f samples/s  (%.4f s)\n", r.name, float64(samples)/r.sec, r.sec)
	}
	fmt.Printf("\n  expected estimate error O(1/sqrt(N)) = %.2e\n", kernels.PiErrorBound(samples))

	if !live {
		return
	}
	if samples > 2e8 {
		log.Fatal("cellbench: -live supports up to 2e8 samples")
	}
	rt, err := spurt.New(cellbe.NewChip(0), perfmodel.SPEsPerCell, perfmodel.SPEBlockBytes)
	if err != nil {
		log.Fatal(err)
	}
	per := samples / int64(perfmodel.SPEsPerCell)
	results, err := rt.Compute(kernels.PiWorkerFunc(2009, per))
	if err != nil {
		log.Fatal(err)
	}
	var inside, total int64
	for _, r := range results {
		inside += r.Value
		total += per
	}
	fmt.Printf("\nlive functional run: pi = %.6f from %d real samples on 8 SPE workers\n",
		kernels.EstimatePi(inside, total), total)
}
