module hetmr

go 1.22
