package hetmr_test

import (
	"testing"

	"hetmr/internal/experiments"
	"hetmr/internal/metrics"
)

// Ablation benchmarks: each sweeps one design parameter DESIGN.md §5
// calls out and reports how the paper's conclusion responds.

// BenchmarkAblationLoopbackRate shows the data-intensive conclusion
// (Fig. 4/5: acceleration hidden) is a property of the record delivery
// path: as the effective delivery rate rises, the Java/Cell gap opens.
func BenchmarkAblationLoopbackRate(b *testing.B) {
	rates := []float64{8, 16, 45, 117}
	var fig metrics.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.AblationLoopbackRate(rates)
		if err != nil {
			b.Fatal(err)
		}
	}
	gap := fig.FindSeries("Java/Cell")
	b.ReportMetric(gap.Y(8), "gap@8MB/s")
	b.ReportMetric(gap.Y(117), "gap@117MB/s")
}

// BenchmarkAblationHeartbeat quantifies how much of the Hadoop floor
// is heartbeat quantization (one task per heartbeat).
func BenchmarkAblationHeartbeat(b *testing.B) {
	intervals := []float64{1, 3, 10}
	var fig metrics.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.AblationHeartbeat(intervals)
		if err != nil {
			b.Fatal(err)
		}
	}
	s := fig.FindSeries("Cell Mapper")
	b.ReportMetric(s.Y(1), "floor@1s")
	b.ReportMetric(s.Y(10), "floor@10s")
}

// BenchmarkAblationHousekeeping quantifies the JobTracker's serialized
// per-task bookkeeping — the Fig. 8 scaling-stall driver.
func BenchmarkAblationHousekeeping(b *testing.B) {
	costs := []float64{0.1, 0.9, 2.7}
	var fig metrics.Figure
	for i := 0; i < b.N; i++ {
		var err error
		fig, err = experiments.AblationHousekeeping(costs)
		if err != nil {
			b.Fatal(err)
		}
	}
	s := fig.FindSeries("Cell Mapper")
	b.ReportMetric(s.Y(0.1), "t@0.1s")
	b.ReportMetric(s.Y(2.7), "t@2.7s")
}

// BenchmarkAblationSPEBlockSize sweeps the paper's 4 KB SPE block
// choice.
func BenchmarkAblationSPEBlockSize(b *testing.B) {
	blocks := []int{1 << 10, 4 << 10, 16 << 10, 64 << 10}
	var fig metrics.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.AblationSPEBlockSize(blocks)
	}
	s := fig.FindSeries("Cell BE")
	b.ReportMetric(s.Y(4096), "MB/s@4K")
	b.ReportMetric(s.Y(65536), "MB/s@64K")
}

// BenchmarkAblationSPECount verifies near-linear SPE scaling of the
// offloaded kernel.
func BenchmarkAblationSPECount(b *testing.B) {
	var fig metrics.Figure
	for i := 0; i < b.N; i++ {
		fig = experiments.AblationSPECount()
	}
	s := fig.FindSeries("Cell BE")
	b.ReportMetric(s.Y(8)/s.Y(1), "speedup-8spe")
}

// BenchmarkTerasortDeliveryBound reproduces the paper's §IV-A Terasort
// aside: per-node sorting rate collapses to the delivery rate no
// matter how fast the sort kernel is.
func BenchmarkTerasortDeliveryBound(b *testing.B) {
	var slow, fast float64
	for i := 0; i < b.N; i++ {
		var err error
		// A 50 MB/s sort kernel and a 10x faster one...
		slow, err = experiments.TerasortAnalysis(8, 64, 50)
		if err != nil {
			b.Fatal(err)
		}
		fast, err = experiments.TerasortAnalysis(8, 64, 500)
		if err != nil {
			b.Fatal(err)
		}
	}
	// ...deliver nearly the same per-node rate: both delivery-bound.
	b.ReportMetric(slow, "MB/s/node-slowsort")
	b.ReportMetric(fast, "MB/s/node-fastsort")
}
