package cellmr

import (
	"bytes"
	"encoding/binary"
	"errors"
	"sort"
	"testing"
	"testing/quick"

	"hetmr/internal/cellbe"
	"hetmr/internal/kernels"
	"hetmr/internal/perfmodel"
)

func newFW(t testing.TB, nSPEs, block int) *Framework {
	t.Helper()
	f, err := New(cellbe.NewChip(0), nSPEs, block)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

func TestNewValidation(t *testing.T) {
	chip := cellbe.NewChip(0)
	bad := []struct{ n, b int }{
		{0, 4096}, {9, 4096}, {4, 0}, {4, 100}, {4, perfmodel.LocalStoreBytes},
	}
	for _, c := range bad {
		if _, err := New(chip, c.n, c.b); err == nil {
			t.Errorf("New(%d,%d) should fail", c.n, c.b)
		}
	}
	if _, err := New(nil, 4, 4096); err == nil {
		t.Error("nil chip should fail")
	}
}

// byteHistogram is a tiny MapReduce: count occurrences of each byte
// value in the input.
func byteHistogram(block []byte, _ int64, emit func(uint64, int64)) error {
	for _, b := range block {
		emit(uint64(b), 1)
	}
	return nil
}

func sumReduce(_ uint64, vals []int64) int64 {
	var s int64
	for _, v := range vals {
		s += v
	}
	return s
}

func TestRunByteHistogram(t *testing.T) {
	f := newFW(t, 8, 4096)
	input := make([]byte, 50000)
	want := make(map[uint64]int64)
	for i := range input {
		input[i] = byte(i % 7)
		want[uint64(input[i])]++
	}
	out, err := f.Run(input, byteHistogram, sumReduce)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 7 {
		t.Fatalf("got %d keys, want 7", len(out))
	}
	if !sort.SliceIsSorted(out, func(i, j int) bool { return out[i].Key < out[j].Key }) {
		t.Error("result not sorted by key")
	}
	for _, kv := range out {
		if want[kv.Key] != kv.Val {
			t.Errorf("key %d: count %d, want %d", kv.Key, kv.Val, want[kv.Key])
		}
	}
	if f.StagedBytes() != int64(len(input)) {
		t.Errorf("staged %d bytes, want %d (the PPE copy overhead)", f.StagedBytes(), len(input))
	}
}

func TestRunEmptyInput(t *testing.T) {
	f := newFW(t, 4, 4096)
	out, err := f.Run(nil, byteHistogram, sumReduce)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 0 {
		t.Errorf("empty input produced %d pairs", len(out))
	}
}

func TestRunNilFuncs(t *testing.T) {
	f := newFW(t, 4, 4096)
	if _, err := f.Run(nil, nil, sumReduce); err == nil {
		t.Error("nil map should fail")
	}
	if _, err := f.Run(nil, byteHistogram, nil); err == nil {
		t.Error("nil reduce should fail")
	}
}

func TestRunMapErrorPropagates(t *testing.T) {
	f := newFW(t, 2, 1024)
	boom := errors.New("map fault")
	_, err := f.Run(make([]byte, 4096), func([]byte, int64, func(uint64, int64)) error {
		return boom
	}, sumReduce)
	if !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestEmitBufferSpills(t *testing.T) {
	// Emit far more pairs than one emit buffer holds; all must survive.
	f := newFW(t, 2, 4096)
	input := make([]byte, 64*1024)
	out, err := f.Run(input, byteHistogram, sumReduce)
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != 1 || out[0].Key != 0 || out[0].Val != int64(len(input)) {
		t.Fatalf("out = %v, want [{0 %d}]", out, len(input))
	}
	if f.SpilledPairs() != int64(len(input)) {
		t.Errorf("spilled %d pairs, want %d", f.SpilledPairs(), len(input))
	}
}

// Property: word-length histogram via the framework equals a direct
// sequential computation, for any input.
func TestRunMatchesSequentialProperty(t *testing.T) {
	f := func(raw []byte) bool {
		fw, err := New(cellbe.NewChip(0), 8, 1024)
		if err != nil {
			return false
		}
		// Map: per 8-byte group, key = value of first byte, val = 1.
		mapper := func(block []byte, off int64, emit func(uint64, int64)) error {
			for i := 0; i < len(block); i += 8 {
				emit(uint64(block[i])%16, 1)
			}
			return nil
		}
		got, err := fw.Run(raw, mapper, sumReduce)
		if err != nil {
			return false
		}
		want := make(map[uint64]int64)
		for i := 0; i < len(raw); i += 1024 {
			end := i + 1024
			if end > len(raw) {
				end = len(raw)
			}
			for j := i; j < end; j += 8 {
				want[uint64(raw[j])%16]++
			}
		}
		if len(got) != len(want) {
			return false
		}
		for _, kv := range got {
			if want[kv.Key] != kv.Val {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestRunStreamAES(t *testing.T) {
	c, _ := kernels.NewCipher([]byte("fedcba9876543210"))
	iv := []byte("0123456789abcdef")
	input := make([]byte, 33000)
	for i := range input {
		input[i] = byte(i * 3)
	}
	want := make([]byte, len(input))
	kernels.CTRStream(c, iv, 0, want, input)

	f := newFW(t, 8, perfmodel.SPEBlockBytes)
	got := make([]byte, len(input))
	if err := f.RunStream(kernels.CTRBlockFunc(c, iv), input, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("framework stream differs from sequential CTR")
	}
	if f.StagedBytes() != int64(len(input)) {
		t.Error("staging copy not accounted")
	}
}

func TestRunStreamShortOutput(t *testing.T) {
	f := newFW(t, 2, 4096)
	if err := f.RunStream(func([]byte, int64) error { return nil },
		make([]byte, 10), make([]byte, 5)); err == nil {
		t.Error("short output should fail")
	}
}

func TestEstimateStreamTimeSlowerThanDirect(t *testing.T) {
	// Fig. 2's ordering: the framework must be slower than the direct
	// runtime (staging copy + init) but still far faster than the
	// host CPUs at scale.
	f := newFW(t, 8, perfmodel.SPEBlockBytes)
	const size = 256 << 20
	fw := f.EstimateStreamTime(size, perfmodel.AESSPEBytesPerSec)
	direct := cellbe.StreamOffloadTime(size, 8, perfmodel.SPEBlockBytes, perfmodel.AESSPEBytesPerSec).TotalSeconds
	if fw <= direct {
		t.Errorf("framework (%g s) should be slower than direct (%g s)", fw, direct)
	}
	power6 := float64(size) / perfmodel.AESPower6BytesPerSec
	if fw >= power6 {
		t.Errorf("framework (%g s) should still beat Power6 Java (%g s)", fw, power6)
	}
}

func TestHash64Distributes(t *testing.T) {
	buckets := make([]int, 8)
	for i := uint64(0); i < 8000; i++ {
		buckets[hash64(i)%8]++
	}
	for i, c := range buckets {
		if c < 800 || c > 1200 {
			t.Errorf("bucket %d has %d of 8000 (poor distribution)", i, c)
		}
	}
}

func TestKVSerializedSize(t *testing.T) {
	// The emit-buffer budget assumes 16-byte pairs; keep the struct
	// honest.
	var kv KV
	if binary.Size(kv) != kvBytes {
		t.Errorf("KV serialized size = %d, want %d", binary.Size(kv), kvBytes)
	}
}
