// Package cellmr is a node-level MapReduce framework for the Cell BE,
// modelled on de Kruijf & Sankaralingam's "MapReduce for the Cell B.E.
// Architecture" (UW-Madison TR1625), the second native library in the
// paper's prototype (§III-B). Its defining behaviour — and the reason
// it loses to the direct spurt runtime in Figure 2 — is that the PPE
// must first copy the application's input into framework-managed,
// aligned buffers before SPEs can map over it: "the original input
// data must be copied again to internal buffers managed by the
// framework".
//
// The framework executes the classic five stages on real data:
// map (SPEs) -> partition (by key hash) -> sort (per-partition) ->
// reduce -> merge (PPE).
package cellmr

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"hetmr/internal/cellbe"
	"hetmr/internal/perfmodel"
)

// KV is a fixed-size key/value pair. Fixed-size records are what let
// the real framework reason about local-store budgets; we keep that
// restriction.
type KV struct {
	Key uint64
	Val int64
}

// kvBytes is the serialized size of a KV in an SPE emit buffer.
const kvBytes = 16

// MapFunc is the map stage: it consumes one input block (local-store
// resident) at a stream offset and emits key/value pairs. emit may be
// called any number of times; the framework spills full emit buffers
// to main memory via DMA.
type MapFunc func(block []byte, offset int64, emit func(k uint64, v int64)) error

// ReduceFunc folds all values of one key into a single value.
type ReduceFunc func(key uint64, vals []int64) int64

// Framework is one Cell chip's MapReduce runtime instance.
type Framework struct {
	chip       *cellbe.Chip
	nSPEs      int
	blockBytes int
	emitCap    int // KVs per SPE emit buffer

	// stats
	stagedBytes  int64
	spilledPairs int64
}

// New creates a framework on the chip using nSPEs workers and the
// given input block size.
func New(chip *cellbe.Chip, nSPEs, blockBytes int) (*Framework, error) {
	if chip == nil {
		return nil, errors.New("cellmr: nil chip")
	}
	if nSPEs <= 0 || nSPEs > len(chip.SPEs) {
		return nil, fmt.Errorf("cellmr: %d SPEs requested, chip has %d", nSPEs, len(chip.SPEs))
	}
	if blockBytes <= 0 || blockBytes%perfmodel.DMAAlignment != 0 {
		return nil, fmt.Errorf("cellmr: block size %d must be positive and 16-byte aligned", blockBytes)
	}
	// Input block + emit buffer must both fit in the local store with
	// headroom for the kernel.
	emitBufBytes := perfmodel.DMAMaxRequestBytes // one DMA-able spill unit
	if blockBytes+emitBufBytes > perfmodel.LocalStoreBytes/2 {
		return nil, fmt.Errorf("cellmr: block size %d leaves no local store headroom", blockBytes)
	}
	return &Framework{
		chip:       chip,
		nSPEs:      nSPEs,
		blockBytes: blockBytes,
		emitCap:    emitBufBytes / kvBytes,
	}, nil
}

// StagedBytes reports how many input bytes the PPE staging copy has
// moved (the framework's signature overhead).
func (f *Framework) StagedBytes() int64 { return f.stagedBytes }

// SpilledPairs reports how many KVs were DMA-spilled from SPE emit
// buffers to main memory.
func (f *Framework) SpilledPairs() int64 { return f.spilledPairs }

// stage performs the PPE input copy into a framework-managed buffer.
func (f *Framework) stage(input []byte) []byte {
	staged := make([]byte, len(input))
	copy(staged, input) // the PPE memcpy the paper calls out
	f.stagedBytes += int64(len(input))
	return staged
}

// Run executes a full map/partition/sort/reduce/merge job over input.
// The result is sorted by key (the merge stage's output order).
func (f *Framework) Run(input []byte, mapFn MapFunc, reduceFn ReduceFunc) ([]KV, error) {
	if mapFn == nil || reduceFn == nil {
		return nil, errors.New("cellmr: nil map or reduce function")
	}
	staged := f.stage(input)

	nBlocks := (len(staged) + f.blockBytes - 1) / f.blockBytes
	// Spill regions: one per SPE, grown as needed, guarded because
	// spills from concurrent SPEs append to per-SPE regions only.
	spills := make([][]KV, f.nSPEs)
	var spillMu sync.Mutex

	// Dynamic block claiming.
	var claimMu sync.Mutex
	nextBlock := 0
	take := func() (start, end int, ok bool) {
		claimMu.Lock()
		defer claimMu.Unlock()
		if nextBlock >= nBlocks {
			return 0, 0, false
		}
		start = nextBlock * f.blockBytes
		nextBlock++
		end = start + f.blockBytes
		if end > len(staged) {
			end = len(staged)
		}
		return start, end, true
	}

	if nBlocks > 0 {
		err := f.chip.RunOnSPEs(f.nSPEs, func(spe *cellbe.SPE, worker int) error {
			inBuf, err := spe.LS.Alloc(f.blockBytes)
			if err != nil {
				return fmt.Errorf("cellmr: %v: %w", spe, err)
			}
			defer spe.LS.Free(inBuf)
			emitBuf, err := spe.LS.Alloc(f.emitCap * kvBytes)
			if err != nil {
				return fmt.Errorf("cellmr: %v: %w", spe, err)
			}
			defer spe.LS.Free(emitBuf)

			// Local emit buffer bounded by its LS allocation; spill
			// to main memory when full (modelling the DMA-out of the
			// real framework).
			local := make([]KV, 0, f.emitCap)
			flush := func() {
				if len(local) == 0 {
					return
				}
				spillMu.Lock()
				spills[worker] = append(spills[worker], local...)
				f.spilledPairs += int64(len(local))
				spillMu.Unlock()
				local = local[:0]
			}
			emit := func(k uint64, v int64) {
				if len(local) == cap(local) {
					flush()
				}
				local = append(local, KV{k, v})
			}

			for {
				start, end, ok := take()
				if !ok {
					break
				}
				if err := spe.MFC.GetLarge(inBuf, 0, staged[start:end], 0); err != nil {
					return fmt.Errorf("cellmr: dma in: %w", err)
				}
				spe.MFC.WaitTag(0)
				if err := mapFn(inBuf.Bytes()[:end-start], int64(start), emit); err != nil {
					return fmt.Errorf("cellmr: map at offset %d: %w", start, err)
				}
			}
			flush()
			return nil
		})
		if err != nil {
			return nil, err
		}
	}

	return f.shuffleReduce(spills, reduceFn), nil
}

// shuffleReduce partitions spilled pairs by key hash, sorts each
// partition, reduces runs of equal keys, and merges the sorted
// partitions into one sorted result. The partition stage fans the
// per-SPE spill regions out concurrently — one lock-free worker per
// spill hashing into its own sub-buckets, gathered in worker order so
// partition contents stay deterministic — the PPE-side analogue of
// the partitioned shuffle the distributed runner uses at node level.
func (f *Framework) shuffleReduce(spills [][]KV, reduceFn ReduceFunc) []KV {
	nPart := f.nSPEs
	// Hash each spill region into per-worker sub-buckets concurrently,
	// then gather in worker order so the partition contents stay
	// deterministic.
	sub := make([][][]KV, len(spills))
	var pwg sync.WaitGroup
	for w, spill := range spills {
		if len(spill) == 0 {
			continue
		}
		pwg.Add(1)
		go func(w int, spill []KV) {
			defer pwg.Done()
			buckets := make([][]KV, nPart)
			for _, kv := range spill {
				p := int(hash64(kv.Key) % uint64(nPart))
				buckets[p] = append(buckets[p], kv)
			}
			sub[w] = buckets
		}(w, spill)
	}
	pwg.Wait()
	parts := make([][]KV, nPart)
	for _, buckets := range sub {
		for p, b := range buckets {
			parts[p] = append(parts[p], b...)
		}
	}
	// Sort + reduce each partition (the framework runs these stages
	// on the SPEs; partition contents are independent so we use the
	// same worker parallelism).
	reduced := make([][]KV, nPart)
	var wg sync.WaitGroup
	for p := range parts {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			part := parts[p]
			sort.Slice(part, func(i, j int) bool { return part[i].Key < part[j].Key })
			var out []KV
			for i := 0; i < len(part); {
				j := i
				var vals []int64
				for ; j < len(part) && part[j].Key == part[i].Key; j++ {
					vals = append(vals, part[j].Val)
				}
				out = append(out, KV{part[i].Key, reduceFn(part[i].Key, vals)})
				i = j
			}
			reduced[p] = out
		}(p)
	}
	wg.Wait()
	// Merge: partitions are sorted and key-disjoint, so concatenate
	// and do a final merge sort by key.
	var merged []KV
	for _, r := range reduced {
		merged = append(merged, r...)
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].Key < merged[j].Key })
	return merged
}

// hash64 is a simple 64-bit mix (splitmix64 finalizer) used for
// partitioning.
func hash64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// RunStream executes a pure block-transform (no key/value semantics)
// through the framework: input is staged (the PPE copy), transformed
// block-by-block on the SPEs, and written to output. This is the mode
// the paper's single-node AES experiment uses for the "MapReduce Cell"
// configuration of Figure 2.
func (f *Framework) RunStream(kernel func(block []byte, offset int64) error, input, output []byte) error {
	if len(output) < len(input) {
		return fmt.Errorf("cellmr: output %d bytes < input %d bytes", len(output), len(input))
	}
	staged := f.stage(input)

	nBlocks := (len(staged) + f.blockBytes - 1) / f.blockBytes
	if nBlocks == 0 {
		return nil
	}
	var claimMu sync.Mutex
	nextBlock := 0
	take := func() (start, end int, ok bool) {
		claimMu.Lock()
		defer claimMu.Unlock()
		if nextBlock >= nBlocks {
			return 0, 0, false
		}
		start = nextBlock * f.blockBytes
		nextBlock++
		end = start + f.blockBytes
		if end > len(staged) {
			end = len(staged)
		}
		return start, end, true
	}
	return f.chip.RunOnSPEs(f.nSPEs, func(spe *cellbe.SPE, worker int) error {
		buf, err := spe.LS.Alloc(f.blockBytes)
		if err != nil {
			return err
		}
		defer spe.LS.Free(buf)
		for {
			start, end, ok := take()
			if !ok {
				return nil
			}
			if err := spe.MFC.GetLarge(buf, 0, staged[start:end], 0); err != nil {
				return err
			}
			spe.MFC.WaitTag(0)
			if err := kernel(buf.Bytes()[:end-start], int64(start)); err != nil {
				return err
			}
			if err := spe.MFC.PutLarge(buf, 0, output[start:end], 0); err != nil {
				return err
			}
			spe.MFC.WaitTag(0)
		}
	})
}

// EstimateStreamTime models RunStream's wall time: framework init,
// the PPE staging copy, then the SPE streaming pipeline. This is the
// "MapReduce Cell" curve of Figure 2.
func (f *Framework) EstimateStreamTime(bytes int64, perSPERate float64) float64 {
	stagingCopy := float64(bytes) / perfmodel.CellMRStagingBytesPerSec
	stream := cellbe.StreamOffloadTime(bytes, f.nSPEs, f.blockBytes, perSPERate)
	return perfmodel.CellMRFrameworkInitSeconds + stagingCopy + stream.TotalSeconds
}
