package kernels

// Sampled range partitioning, the TeraSort trick that makes the final
// merge disappear: a reservoir sample of the input keys picks R-1
// split keys, every record routes to the partition whose key range
// covers it, and the sorted partitions concatenate in key order —
// reduce r's output strictly precedes reduce r+1's. This lives next to
// PartitionIndex so both partitioning strategies share one home and
// the backends can never diverge on where a key routes.

import (
	"bytes"
	"io"
	"sort"
)

// RangePartitioner maps keys to partitions by binary search into a
// sorted list of split keys: partition i covers keys in
// [splits[i-1], splits[i]), with the first and last ranges open-ended.
// Duplicate split keys are legal and simply yield empty ranges, so a
// heavily skewed sample still produces a valid partitioner.
type RangePartitioner struct {
	splits [][]byte
}

// NewRangePartitioner builds a partitioner over R = len(splits)+1
// partitions. The split keys are defensively copied and sorted.
func NewRangePartitioner(splits [][]byte) *RangePartitioner {
	cp := make([][]byte, len(splits))
	for i, s := range splits {
		cp[i] = append([]byte(nil), s...)
	}
	sort.Slice(cp, func(a, b int) bool { return bytes.Compare(cp[a], cp[b]) < 0 })
	return &RangePartitioner{splits: cp}
}

// Parts returns the number of partitions the partitioner routes into.
func (p *RangePartitioner) Parts() int { return len(p.splits) + 1 }

// Index returns the partition for key: the number of split keys ≤ key.
// It is monotone in key order, which is what makes partition
// concatenation globally sorted.
func (p *RangePartitioner) Index(key []byte) int {
	// First split strictly greater than key; key belongs to that range.
	return sort.Search(len(p.splits), func(i int) bool {
		return bytes.Compare(p.splits[i], key) > 0
	})
}

// SplitKeysFromSample computes parts-1 split keys as evenly spaced
// quantile boundaries of the (sorted) sample. A sample smaller than
// the partition count, or one dominated by duplicate keys, yields
// duplicate split keys and therefore empty ranges — correct, if
// uneven. With parts < 2 or an empty sample there is nothing to split
// and the result is nil (every key routes to partition 0).
func SplitKeysFromSample(sample [][]byte, parts int) [][]byte {
	if parts < 2 || len(sample) == 0 {
		return nil
	}
	sorted := make([][]byte, len(sample))
	copy(sorted, sample)
	sort.Slice(sorted, func(a, b int) bool { return bytes.Compare(sorted[a], sorted[b]) < 0 })
	splits := make([][]byte, parts-1)
	for i := 1; i < parts; i++ {
		q := (i * len(sorted)) / parts
		splits[i-1] = append([]byte(nil), sorted[q]...)
	}
	return splits
}

// RecordKeySampler is an io.Reader that passes a stream of 100-byte
// sort records through unchanged while reservoir-sampling their
// 10-byte keys, so one ingest pass (Client.WriteFrom over Job.Source)
// yields both the staged input and the split keys for a range
// partitioner. Sampling is deterministic for a given seed and stream.
// Not safe for concurrent Read calls, matching io.Reader convention.
type RecordKeySampler struct {
	r        io.Reader
	rng      piRNG
	capacity int
	keys     [][]byte
	seen     int64 // whole records observed so far
	recOff   int   // byte offset within the current record
	cur      [SortKeyBytes]byte
}

// NewRecordKeySampler wraps r with a reservoir of at most capacity
// keys. The seed fixes the reservoir's random replacement choices, so
// the same stream and seed always produce the same sample.
func NewRecordKeySampler(r io.Reader, capacity int, seed uint64) *RecordKeySampler {
	if capacity < 1 {
		capacity = 1
	}
	return &RecordKeySampler{r: r, rng: piRNG{state: seed}, capacity: capacity}
}

// Read implements io.Reader, observing record keys as the bytes flow
// through. Partial records at the very end of the stream are ignored
// by the sampler (WriteFrom rejects them downstream anyway).
func (s *RecordKeySampler) Read(p []byte) (int, error) {
	n, err := s.r.Read(p)
	s.observe(p[:n])
	return n, err
}

// observe advances the record-boundary state machine over one chunk.
func (s *RecordKeySampler) observe(chunk []byte) {
	for len(chunk) > 0 {
		if s.recOff < SortKeyBytes {
			c := copy(s.cur[s.recOff:], chunk)
			s.recOff += c
			chunk = chunk[c:]
			if s.recOff == SortKeyBytes {
				s.sample(s.cur[:])
			}
			continue
		}
		skip := SortRecordBytes - s.recOff
		if skip > len(chunk) {
			s.recOff += len(chunk)
			return
		}
		chunk = chunk[skip:]
		s.recOff = 0
	}
}

// sample runs one step of Vitter's algorithm R.
func (s *RecordKeySampler) sample(key []byte) {
	s.seen++
	if len(s.keys) < s.capacity {
		s.keys = append(s.keys, append([]byte(nil), key...))
		return
	}
	// Replace a random reservoir slot with probability capacity/seen.
	j := s.rng.next() % uint64(s.seen)
	if j < uint64(s.capacity) {
		s.keys[j] = append([]byte(nil), key...)
	}
}

// Keys returns the sampled keys (unsorted, reservoir order).
func (s *RecordKeySampler) Keys() [][]byte { return s.keys }

// SplitKeys computes parts-1 split keys from the reservoir, ready for
// NewRangePartitioner or JobSpec.SplitKeys.
func (s *RecordKeySampler) SplitKeys(parts int) [][]byte {
	return SplitKeysFromSample(s.keys, parts)
}
