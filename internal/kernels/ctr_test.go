package kernels

import (
	"bytes"
	"crypto/aes"
	"crypto/cipher"
	"testing"
	"testing/quick"
)

func mustCipher(t testing.TB) *Cipher {
	t.Helper()
	c, err := NewCipher([]byte("paper-2009-key!!"))
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func TestCTRMatchesStdlib(t *testing.T) {
	key := []byte("0123456789abcdef")
	iv := []byte("ivivivivivivffff")
	ours, _ := NewCipher(key)
	ref, _ := aes.NewCipher(key)
	stream := cipher.NewCTR(ref, iv)
	src := make([]byte, 1000)
	for i := range src {
		src[i] = byte(i * 31)
	}
	want := make([]byte, len(src))
	stream.XORKeyStream(want, src)
	got := make([]byte, len(src))
	CTRStream(ours, iv, 0, got, src)
	if !bytes.Equal(got, want) {
		t.Fatal("CTR output differs from crypto/cipher CTR")
	}
}

// Property: encrypting a stream in arbitrary chunk splits (as the SPE
// block scheduler does with 4KB blocks) equals encrypting it whole.
func TestCTRSeekabilityProperty(t *testing.T) {
	c := mustCipher(t)
	iv := []byte("0000111122223333")
	f := func(data []byte, cutsRaw []uint16) bool {
		whole := make([]byte, len(data))
		CTRStream(c, iv, 0, whole, data)
		chunked := make([]byte, len(data))
		off := 0
		for _, cr := range cutsRaw {
			if off >= len(data) {
				break
			}
			n := int(cr)%257 + 1
			if off+n > len(data) {
				n = len(data) - off
			}
			CTRStream(c, iv, int64(off), chunked[off:off+n], data[off:off+n])
			off += n
		}
		if off < len(data) {
			CTRStream(c, iv, int64(off), chunked[off:], data[off:])
		}
		return bytes.Equal(whole, chunked)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestCTRIsItsOwnInverse(t *testing.T) {
	c := mustCipher(t)
	iv := make([]byte, 16)
	data := []byte("the quick brown fox jumps over the lazy dog")
	enc := make([]byte, len(data))
	CTRStream(c, iv, 7, enc, data)
	dec := make([]byte, len(data))
	CTRStream(c, iv, 7, dec, enc)
	if !bytes.Equal(dec, data) {
		t.Fatal("CTR roundtrip failed")
	}
}

func TestCTRCounterCarry(t *testing.T) {
	// IV with low word all-ones: adding 1 must carry into the high
	// word, not wrap within the low word only.
	iv := []byte{0, 0, 0, 0, 0, 0, 0, 0, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff}
	var blk0, blk1 [16]byte
	counterBlock(&blk0, iv, 0)
	counterBlock(&blk1, iv, 1)
	if blk1[7] != 1 {
		t.Errorf("carry into high word missing: %x", blk1)
	}
	for i := 8; i < 16; i++ {
		if blk1[i] != 0 {
			t.Errorf("low word after carry: %x", blk1)
		}
	}
	if blk0[8] != 0xff {
		t.Errorf("counter 0 should be the IV itself: %x", blk0)
	}
}

func TestCTRPanics(t *testing.T) {
	c := mustCipher(t)
	for name, fn := range map[string]func(){
		"bad iv":     func() { CTRStream(c, make([]byte, 8), 0, make([]byte, 4), make([]byte, 4)) },
		"len":        func() { CTRStream(c, make([]byte, 16), 0, make([]byte, 3), make([]byte, 4)) },
		"neg offset": func() { CTRStream(c, make([]byte, 16), -1, make([]byte, 4), make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestECBRoundTrip(t *testing.T) {
	c := mustCipher(t)
	src := make([]byte, 64)
	for i := range src {
		src[i] = byte(i)
	}
	enc := make([]byte, 64)
	EncryptECB(c, enc, src)
	if bytes.Equal(enc, src) {
		t.Fatal("ECB was identity")
	}
	dec := make([]byte, 64)
	DecryptECB(c, dec, enc)
	if !bytes.Equal(dec, src) {
		t.Fatal("ECB roundtrip failed")
	}
	defer func() {
		if recover() == nil {
			t.Error("non-multiple length should panic")
		}
	}()
	EncryptECB(c, make([]byte, 10), make([]byte, 10))
}
