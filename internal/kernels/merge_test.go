package kernels

import (
	"bytes"
	"errors"
	"io"
	"testing"
)

// scanMergeReference is the historical O(k·n) scan merge, kept here as
// the oracle the heap-based external merge must match bit for bit.
func scanMergeReference(runs [][]byte) []byte {
	var total int
	for _, r := range runs {
		total += len(r)
	}
	out := make([]byte, 0, total)
	offs := make([]int, len(runs))
	for len(out) < total {
		best := -1
		var bestKey []byte
		for i, r := range runs {
			if offs[i] >= len(r) {
				continue
			}
			key := r[offs[i] : offs[i]+SortKeyBytes]
			if best < 0 || bytes.Compare(key, bestKey) < 0 {
				best, bestKey = i, key
			}
		}
		out = append(out, runs[best][offs[best]:offs[best]+SortRecordBytes]...)
		offs[best] += SortRecordBytes
	}
	return out
}

// splitSortedRuns cuts a deterministic dataset into k individually
// sorted runs.
func splitSortedRuns(t *testing.T, seed uint64, records, k int) [][]byte {
	t.Helper()
	data := GenerateSortRecords(seed, records)
	per := (records + k - 1) / k
	var runs [][]byte
	for off := 0; off < len(data); off += per * SortRecordBytes {
		end := off + per*SortRecordBytes
		if end > len(data) {
			end = len(data)
		}
		run := append([]byte(nil), data[off:end]...)
		if err := SortRecords(run); err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}
	return runs
}

func TestMergeSortedRunsMatchesScanReference(t *testing.T) {
	runs := splitSortedRuns(t, 2009, 997, 7)
	got, err := MergeSortedRuns(runs)
	if err != nil {
		t.Fatal(err)
	}
	want := scanMergeReference(runs)
	if !bytes.Equal(got, want) {
		t.Fatal("heap merge diverges from the scan-merge reference")
	}
	sorted, err := RecordsSorted(got)
	if err != nil {
		t.Fatal(err)
	}
	if !sorted {
		t.Fatal("merge output is not sorted")
	}
}

func TestMergeSortedStreamsOverReaders(t *testing.T) {
	runs := splitSortedRuns(t, 7, 500, 4)
	readers := make([]io.Reader, len(runs))
	for i, r := range runs {
		readers[i] = iotest{bytes.NewReader(r)} // one byte at a time
	}
	var out bytes.Buffer
	n, err := MergeSortedStreams(&out, readers...)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(500*SortRecordBytes) {
		t.Fatalf("merged %d bytes, want %d", n, 500*SortRecordBytes)
	}
	want, err := MergeSortedRuns(runs)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out.Bytes(), want) {
		t.Fatal("stream merge differs from buffer merge")
	}
}

// iotest yields at most one byte per Read, exercising the cursor's
// short-read handling.
type iotest struct{ r io.Reader }

func (o iotest) Read(p []byte) (int, error) {
	if len(p) > 1 {
		p = p[:1]
	}
	return o.r.Read(p)
}

func TestMergeSortedStreamsEmptyAndPartialRuns(t *testing.T) {
	run := GenerateSortRecords(3, 10)
	if err := SortRecords(run); err != nil {
		t.Fatal(err)
	}
	var out bytes.Buffer
	n, err := MergeSortedStreams(&out, bytes.NewReader(nil), bytes.NewReader(run), bytes.NewReader(nil))
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(run)) || !bytes.Equal(out.Bytes(), run) {
		t.Fatal("merge with empty runs corrupted the output")
	}
}

func TestMergeSortedStreamsRejectsTornRecord(t *testing.T) {
	run := GenerateSortRecords(4, 3)
	if err := SortRecords(run); err != nil {
		t.Fatal(err)
	}
	torn := run[:len(run)-7]
	var out bytes.Buffer
	if _, err := MergeSortedStreams(&out, bytes.NewReader(torn)); !errors.Is(err, ErrRecordSize) {
		t.Fatalf("torn run merged without ErrRecordSize: %v", err)
	}
}

func TestMergeSortedRunsRejectsBadRunLength(t *testing.T) {
	if _, err := MergeSortedRuns([][]byte{make([]byte, 150)}); !errors.Is(err, ErrRecordSize) {
		t.Fatalf("odd-length run accepted: %v", err)
	}
}
