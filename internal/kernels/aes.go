// Package kernels implements the paper's application kernels from
// scratch: AES-128 encryption (the data-intensive workload, paper
// §IV-A), a Monte Carlo Pi estimator (the CPU-intensive workload,
// §IV-B), and the word-count/grep kernels used by the extra examples.
//
// The AES implementation follows FIPS-197 directly. Its S-box and
// field arithmetic are computed, not transcribed, and the whole cipher
// is cross-validated against crypto/aes in the tests.
package kernels

import (
	"encoding/binary"
	"errors"
	"fmt"
)

// AES-128 parameters (FIPS-197 for Nk=4).
const (
	aesBlockSize = 16
	aesRounds    = 10
	aesKeySize   = 16
)

// BlockSize is the AES block size in bytes.
const BlockSize = aesBlockSize

// KeySize is the AES-128 key size in bytes.
const KeySize = aesKeySize

// ErrKeySize is returned when the key is not 16 bytes (the paper uses
// "a 128 bits key AES encryption algorithm").
var ErrKeySize = errors.New("kernels: AES-128 requires a 16-byte key")

// sbox and invSbox are computed in init from GF(2^8) inverses plus the
// FIPS-197 affine transform, avoiding transcription errors.
var sbox, invSbox [256]byte

// te0..te3 are the standard encryption T-tables: each combines
// SubBytes with one column of MixColumns, turning a round into 16
// table lookups and 16 XORs. They are derived from sbox in init, so
// the slow reference path in encryptBlockRef remains the source of
// truth (the tests cross-check both against crypto/aes).
var te0, te1, te2, te3 [256]uint32

// xtime multiplies by x (i.e. {02}) in GF(2^8) modulo x^8+x^4+x^3+x+1.
func xtime(b byte) byte {
	if b&0x80 != 0 {
		return b<<1 ^ 0x1b
	}
	return b << 1
}

// gmul multiplies two field elements (schoolbook, used for table
// construction and InvMixColumns; not performance critical).
func gmul(a, b byte) byte {
	var p byte
	for i := 0; i < 8; i++ {
		if b&1 != 0 {
			p ^= a
		}
		a = xtime(a)
		b >>= 1
	}
	return p
}

func init() {
	// Multiplicative inverses by brute force (257 x 256 is trivial).
	var inv [256]byte
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			if gmul(byte(a), byte(b)) == 1 {
				inv[a] = byte(b)
				break
			}
		}
	}
	rotl := func(b byte, n uint) byte { return b<<n | b>>(8-n) }
	for i := 0; i < 256; i++ {
		b := inv[i]
		s := b ^ rotl(b, 1) ^ rotl(b, 2) ^ rotl(b, 3) ^ rotl(b, 4) ^ 0x63
		sbox[i] = s
		invSbox[s] = byte(i)
	}
	for i := 0; i < 256; i++ {
		s := sbox[i]
		s2 := xtime(s)
		s3 := s2 ^ s
		w := uint32(s2)<<24 | uint32(s)<<16 | uint32(s)<<8 | uint32(s3)
		te0[i] = w
		te1[i] = w>>8 | w<<24
		te2[i] = w>>16 | w<<16
		te3[i] = w>>24 | w<<8
	}
}

// Cipher is an AES-128 block cipher with a fixed expanded key.
type Cipher struct {
	rk [4 * (aesRounds + 1)]uint32 // round keys as big-endian words
}

// NewCipher expands a 16-byte key per FIPS-197 §5.2.
func NewCipher(key []byte) (*Cipher, error) {
	if len(key) != aesKeySize {
		return nil, fmt.Errorf("%w: got %d bytes", ErrKeySize, len(key))
	}
	c := &Cipher{}
	for i := 0; i < 4; i++ {
		c.rk[i] = binary.BigEndian.Uint32(key[4*i:])
	}
	rcon := uint32(1)
	for i := 4; i < len(c.rk); i++ {
		t := c.rk[i-1]
		if i%4 == 0 {
			// RotWord + SubWord + Rcon.
			t = t<<8 | t>>24
			t = subWord(t) ^ rcon<<24
			rcon = uint32(xtime(byte(rcon)))
		}
		c.rk[i] = c.rk[i-4] ^ t
	}
	return c, nil
}

func subWord(w uint32) uint32 {
	return uint32(sbox[w>>24])<<24 | uint32(sbox[w>>16&0xff])<<16 |
		uint32(sbox[w>>8&0xff])<<8 | uint32(sbox[w&0xff])
}

// addRoundKey XORs four round-key words into the column-major state.
func addRoundKey(s *[16]byte, rk []uint32) {
	for c := 0; c < 4; c++ {
		w := rk[c]
		s[4*c+0] ^= byte(w >> 24)
		s[4*c+1] ^= byte(w >> 16)
		s[4*c+2] ^= byte(w >> 8)
		s[4*c+3] ^= byte(w)
	}
}

func subBytes(s *[16]byte) {
	for i, v := range s {
		s[i] = sbox[v]
	}
}

func invSubBytes(s *[16]byte) {
	for i, v := range s {
		s[i] = invSbox[v]
	}
}

// shiftRows rotates row r left by r (state is column-major: element
// (r,c) lives at s[4c+r]).
func shiftRows(s *[16]byte) {
	s[1], s[5], s[9], s[13] = s[5], s[9], s[13], s[1]
	s[2], s[6], s[10], s[14] = s[10], s[14], s[2], s[6]
	s[3], s[7], s[11], s[15] = s[15], s[3], s[7], s[11]
}

func invShiftRows(s *[16]byte) {
	s[5], s[9], s[13], s[1] = s[1], s[5], s[9], s[13]
	s[10], s[14], s[2], s[6] = s[2], s[6], s[10], s[14]
	s[15], s[3], s[7], s[11] = s[3], s[7], s[11], s[15]
}

func mixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = xtime(a0) ^ xtime(a1) ^ a1 ^ a2 ^ a3
		s[4*c+1] = a0 ^ xtime(a1) ^ xtime(a2) ^ a2 ^ a3
		s[4*c+2] = a0 ^ a1 ^ xtime(a2) ^ xtime(a3) ^ a3
		s[4*c+3] = xtime(a0) ^ a0 ^ a1 ^ a2 ^ xtime(a3)
	}
}

func invMixColumns(s *[16]byte) {
	for c := 0; c < 4; c++ {
		a0, a1, a2, a3 := s[4*c], s[4*c+1], s[4*c+2], s[4*c+3]
		s[4*c+0] = gmul(a0, 0x0e) ^ gmul(a1, 0x0b) ^ gmul(a2, 0x0d) ^ gmul(a3, 0x09)
		s[4*c+1] = gmul(a0, 0x09) ^ gmul(a1, 0x0e) ^ gmul(a2, 0x0b) ^ gmul(a3, 0x0d)
		s[4*c+2] = gmul(a0, 0x0d) ^ gmul(a1, 0x09) ^ gmul(a2, 0x0e) ^ gmul(a3, 0x0b)
		s[4*c+3] = gmul(a0, 0x0b) ^ gmul(a1, 0x0d) ^ gmul(a2, 0x09) ^ gmul(a3, 0x0e)
	}
}

// EncryptBlock encrypts one 16-byte block with the T-table fast path.
// dst and src may overlap.
func (c *Cipher) EncryptBlock(dst, src []byte) {
	if len(src) < aesBlockSize || len(dst) < aesBlockSize {
		panic("kernels: AES block must be 16 bytes")
	}
	s0 := binary.BigEndian.Uint32(src[0:]) ^ c.rk[0]
	s1 := binary.BigEndian.Uint32(src[4:]) ^ c.rk[1]
	s2 := binary.BigEndian.Uint32(src[8:]) ^ c.rk[2]
	s3 := binary.BigEndian.Uint32(src[12:]) ^ c.rk[3]
	var t0, t1, t2, t3 uint32
	for r := 1; r < aesRounds; r++ {
		k := c.rk[4*r : 4*r+4 : 4*r+4]
		t0 = te0[s0>>24] ^ te1[s1>>16&0xff] ^ te2[s2>>8&0xff] ^ te3[s3&0xff] ^ k[0]
		t1 = te0[s1>>24] ^ te1[s2>>16&0xff] ^ te2[s3>>8&0xff] ^ te3[s0&0xff] ^ k[1]
		t2 = te0[s2>>24] ^ te1[s3>>16&0xff] ^ te2[s0>>8&0xff] ^ te3[s1&0xff] ^ k[2]
		t3 = te0[s3>>24] ^ te1[s0>>16&0xff] ^ te2[s1>>8&0xff] ^ te3[s2&0xff] ^ k[3]
		s0, s1, s2, s3 = t0, t1, t2, t3
	}
	// Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
	k := c.rk[4*aesRounds:]
	o0 := uint32(sbox[s0>>24])<<24 | uint32(sbox[s1>>16&0xff])<<16 |
		uint32(sbox[s2>>8&0xff])<<8 | uint32(sbox[s3&0xff])
	o1 := uint32(sbox[s1>>24])<<24 | uint32(sbox[s2>>16&0xff])<<16 |
		uint32(sbox[s3>>8&0xff])<<8 | uint32(sbox[s0&0xff])
	o2 := uint32(sbox[s2>>24])<<24 | uint32(sbox[s3>>16&0xff])<<16 |
		uint32(sbox[s0>>8&0xff])<<8 | uint32(sbox[s1&0xff])
	o3 := uint32(sbox[s3>>24])<<24 | uint32(sbox[s0>>16&0xff])<<16 |
		uint32(sbox[s1>>8&0xff])<<8 | uint32(sbox[s2&0xff])
	binary.BigEndian.PutUint32(dst[0:], o0^k[0])
	binary.BigEndian.PutUint32(dst[4:], o1^k[1])
	binary.BigEndian.PutUint32(dst[8:], o2^k[2])
	binary.BigEndian.PutUint32(dst[12:], o3^k[3])
}

// encryptBlockRef is the straightforward FIPS-197 reference cipher
// (SubBytes/ShiftRows/MixColumns on a byte-array state), kept as the
// readable source of truth the fast path is tested against.
func (c *Cipher) encryptBlockRef(dst, src []byte) {
	var s [16]byte
	copy(s[:], src)
	addRoundKey(&s, c.rk[0:4])
	for r := 1; r < aesRounds; r++ {
		subBytes(&s)
		shiftRows(&s)
		mixColumns(&s)
		addRoundKey(&s, c.rk[4*r:4*r+4])
	}
	subBytes(&s)
	shiftRows(&s)
	addRoundKey(&s, c.rk[4*aesRounds:])
	copy(dst, s[:])
}

// DecryptBlock inverts EncryptBlock.
func (c *Cipher) DecryptBlock(dst, src []byte) {
	if len(src) < aesBlockSize || len(dst) < aesBlockSize {
		panic("kernels: AES block must be 16 bytes")
	}
	var s [16]byte
	copy(s[:], src)
	addRoundKey(&s, c.rk[4*aesRounds:])
	for r := aesRounds - 1; r >= 1; r-- {
		invShiftRows(&s)
		invSubBytes(&s)
		addRoundKey(&s, c.rk[4*r:4*r+4])
		invMixColumns(&s)
	}
	invShiftRows(&s)
	invSubBytes(&s)
	addRoundKey(&s, c.rk[0:4])
	copy(dst, s[:])
}
