package kernels

import "math"

// Monte Carlo Pi estimation (paper §IV-B): draw points uniformly in
// the unit square and count those inside the quarter circle;
// pi ~= 4 * inside / total with error O(1/sqrt(N)). This port follows
// Hadoop's PiEstimator sample structure but uses a splitmix64
// generator so every mapper gets an independent, reproducible stream.

// piGamma is the splitmix64 state increment. The generator's state
// after k next() calls is exactly seed + k*piGamma, which makes the
// sample stream seekable in O(1): each sample consumes two draws, so a
// worker can resume the stream at any sample index without replaying
// the prefix (CountInsideFrom).
const piGamma = 0x9e3779b97f4a7c15

// piRNG is a self-contained splitmix64 (duplicated from internal/sim
// deliberately: the kernel must not depend on simulation packages,
// exactly as the SPE kernel could not link against Hadoop).
type piRNG struct{ state uint64 }

func (r *piRNG) next() uint64 {
	r.state += piGamma
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

func (r *piRNG) float64() float64 {
	return float64(r.next()>>11) / float64(1<<53)
}

// MixSeed derives an independent stream seed from a base seed and a
// worker/mapper index. A plain additive offset would make stream i of
// mapper j collide with stream i+1 of mapper j-1; the splitmix64
// finalizer decorrelates them.
func MixSeed(base, index uint64) uint64 {
	z := base ^ (index+1)*0xd6e8feb86659fd93
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// CountInside draws n points seeded by seed and returns how many fall
// inside the quarter circle. It is the map() kernel of the Pi job.
func CountInside(seed uint64, n int64) int64 {
	rng := piRNG{state: seed}
	var inside int64
	for i := int64(0); i < n; i++ {
		x := rng.float64()
		y := rng.float64()
		if x*x+y*y <= 1.0 {
			inside++
		}
	}
	return inside
}

// CountInsideFrom counts how many of samples [skip, skip+n) of the
// stream seeded by seed fall inside the quarter circle. The splitmix64
// state advances by a fixed increment per draw and each sample takes
// two draws, so seeking is a single multiply — the per-sample decisions
// are bit-identical to the corresponding slice of a full CountInside
// pass. Splitting [0, total) into contiguous ranges and summing
// CountInsideFrom over them therefore reproduces CountInside(seed,
// total) exactly; this is what lets an accelerated runtime fan one map
// task out over SPEs without changing the task's result.
func CountInsideFrom(seed uint64, skip, n int64) int64 {
	return CountInside(seed+2*uint64(skip)*piGamma, n)
}

// SampleSplit is one canonical Monte Carlo map task: an independent
// seed domain plus a sample count.
type SampleSplit struct {
	Seed    uint64
	Samples int64
}

// SplitSamples expands a Pi job into its canonical task list: total
// samples split as evenly as possible over n tasks (earlier tasks take
// the remainder, every task draws at least one sample), task i seeded
// from the domain MixSeed(seed, i). Every runner — live, simulated and
// networked — executes exactly this decomposition, which is what makes
// Pi results bit-identical across backends; there must be no second
// copy of this logic.
func SplitSamples(total int64, n int, seed uint64) []SampleSplit {
	if n <= 0 {
		n = 1
	}
	per := total / int64(n)
	rem := total % int64(n)
	tasks := make([]SampleSplit, n)
	for i := range tasks {
		s := per
		if int64(i) < rem {
			s++
		}
		if s == 0 {
			s = 1
		}
		tasks[i] = SampleSplit{Seed: MixSeed(seed, uint64(i)), Samples: s}
	}
	return tasks
}

// EstimatePi converts an (inside, total) tally into a Pi estimate.
func EstimatePi(inside, total int64) float64 {
	if total <= 0 {
		return 0
	}
	return 4.0 * float64(inside) / float64(total)
}

// PiErrorBound returns the expected-order error of an n-sample
// estimate, O(1/sqrt(N)) as the paper states ("an expected error of
// O(1/sqrt(N))").
func PiErrorBound(n int64) float64 {
	if n <= 0 {
		return math.Inf(1)
	}
	return 1.0 / math.Sqrt(float64(n))
}
