package kernels

import (
	"sync"

	"hetmr/internal/simd"
)

// SIMD-structured CTR: generate the keystream for a whole block, then
// XOR it in with 16-byte vector operations — the shape of the paper's
// SDK 3.0 AES kernel, where "SIMD support in the Cell is one of the
// most important sources of computational power".

// ksPool recycles keystream scratch buffers across SPE workers.
var ksPool = sync.Pool{New: func() any { b := make([]byte, 4096); return &b }}

// CTRStreamSIMD is CTRStream with the XOR phase routed through the
// simd package's vector operations (scalar head/tail for unaligned
// offsets). Output is bit-identical to CTRStream.
func CTRStreamSIMD(c *Cipher, iv []byte, offset int64, dst, src []byte) {
	if len(dst) != len(src) {
		panic("kernels: CTR dst/src length mismatch")
	}
	if len(src) == 0 {
		return
	}
	bufp := ksPool.Get().(*[]byte)
	ks := *bufp
	if cap(ks) < len(src) {
		ks = make([]byte, len(src))
	}
	ks = ks[:len(src)]
	// Generate the keystream bytes for [offset, offset+len).
	generateKeystream(c, iv, offset, ks)
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	if err := simd.XORStream(dst, ks, offset); err != nil {
		// Lengths are equal by construction; unreachable.
		panic(err)
	}
	*bufp = ks
	ksPool.Put(bufp)
}

// generateKeystream fills out with the CTR keystream for the byte
// range starting at offset.
func generateKeystream(c *Cipher, iv []byte, offset int64, out []byte) {
	if len(iv) != aesBlockSize {
		panic("kernels: CTR IV must be 16 bytes")
	}
	if offset < 0 {
		panic("kernels: negative CTR offset")
	}
	var blk [aesBlockSize]byte
	block := offset / aesBlockSize
	phase := int(offset % aesBlockSize)
	for i := 0; i < len(out); {
		counterBlock(&blk, iv, uint64(block))
		c.EncryptBlock(blk[:], blk[:])
		n := copy(out[i:], blk[phase:])
		i += n
		phase = 0
		block++
	}
}

// CTRBlockFuncSIMD is the SIMD-path counterpart of CTRBlockFunc; safe
// for concurrent use by multiple SPE workers.
func CTRBlockFuncSIMD(c *Cipher, iv []byte) func(block []byte, offset int64) error {
	ivCopy := append([]byte(nil), iv...)
	return func(block []byte, offset int64) error {
		CTRStreamSIMD(c, ivCopy, offset, block, block)
		return nil
	}
}
