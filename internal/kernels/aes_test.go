package kernels

import (
	"bytes"
	"crypto/aes"
	"encoding/hex"
	"errors"
	"testing"
	"testing/quick"
)

// FIPS-197 Appendix C.1 vector.
func TestAESFIPS197Vector(t *testing.T) {
	key, _ := hex.DecodeString("000102030405060708090a0b0c0d0e0f")
	pt, _ := hex.DecodeString("00112233445566778899aabbccddeeff")
	want, _ := hex.DecodeString("69c4e0d86a7b0430d8cdb78070b4c55a")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 16)
	c.EncryptBlock(got, pt)
	if !bytes.Equal(got, want) {
		t.Fatalf("FIPS-197 C.1: got %x, want %x", got, want)
	}
	back := make([]byte, 16)
	c.DecryptBlock(back, got)
	if !bytes.Equal(back, pt) {
		t.Fatalf("decrypt: got %x, want %x", back, pt)
	}
}

// FIPS-197 Appendix A.1 key expansion spot checks.
func TestAESKeyExpansion(t *testing.T) {
	key, _ := hex.DecodeString("2b7e151628aed2a6abf7158809cf4f3c")
	c, err := NewCipher(key)
	if err != nil {
		t.Fatal(err)
	}
	// w[4] and w[43] from the FIPS-197 walk-through.
	if c.rk[4] != 0xa0fafe17 {
		t.Errorf("w[4] = %08x, want a0fafe17", c.rk[4])
	}
	if c.rk[43] != 0xb6630ca6 {
		t.Errorf("w[43] = %08x, want b6630ca6", c.rk[43])
	}
}

func TestAESKeySizeError(t *testing.T) {
	for _, n := range []int{0, 8, 15, 17, 24, 32} {
		if _, err := NewCipher(make([]byte, n)); !errors.Is(err, ErrKeySize) {
			t.Errorf("key size %d: expected ErrKeySize, got %v", n, err)
		}
	}
}

// Property: our cipher matches crypto/aes on random keys and blocks,
// and the T-table fast path matches the FIPS-197 reference path.
func TestAESMatchesStdlibProperty(t *testing.T) {
	f := func(key [16]byte, block [16]byte) bool {
		ours, err := NewCipher(key[:])
		if err != nil {
			return false
		}
		ref, err := aes.NewCipher(key[:])
		if err != nil {
			return false
		}
		a := make([]byte, 16)
		b := make([]byte, 16)
		r := make([]byte, 16)
		ours.EncryptBlock(a, block[:])
		ref.Encrypt(b, block[:])
		ours.encryptBlockRef(r, block[:])
		if !bytes.Equal(a, b) || !bytes.Equal(a, r) {
			return false
		}
		ours.DecryptBlock(a, a)
		return bytes.Equal(a, block[:])
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestAESEncryptDecryptInPlace(t *testing.T) {
	key := []byte("0123456789abcdef")
	c, _ := NewCipher(key)
	data := []byte("fedcba9876543210")
	orig := append([]byte(nil), data...)
	c.EncryptBlock(data, data)
	if bytes.Equal(data, orig) {
		t.Fatal("encryption was identity")
	}
	c.DecryptBlock(data, data)
	if !bytes.Equal(data, orig) {
		t.Fatal("in-place roundtrip failed")
	}
}

func TestAESShortBlockPanics(t *testing.T) {
	c, _ := NewCipher(make([]byte, 16))
	for name, fn := range map[string]func(){
		"encrypt short src": func() { c.EncryptBlock(make([]byte, 16), make([]byte, 8)) },
		"encrypt short dst": func() { c.EncryptBlock(make([]byte, 8), make([]byte, 16)) },
		"decrypt short src": func() { c.DecryptBlock(make([]byte, 16), make([]byte, 8)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestSboxIsPermutationWithInverse(t *testing.T) {
	var seen [256]bool
	for i := 0; i < 256; i++ {
		s := sbox[i]
		if seen[s] {
			t.Fatalf("sbox not a permutation: duplicate %02x", s)
		}
		seen[s] = true
		if invSbox[s] != byte(i) {
			t.Fatalf("invSbox[sbox[%02x]] = %02x", i, invSbox[s])
		}
	}
	// Known anchor values.
	if sbox[0x00] != 0x63 || sbox[0x53] != 0xed {
		t.Errorf("sbox anchors wrong: sbox[0]=%02x sbox[53]=%02x", sbox[0], sbox[0x53])
	}
}
