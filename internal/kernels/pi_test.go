package kernels

import (
	"math"
	"testing"
	"testing/quick"
)

func TestCountInsideDeterministic(t *testing.T) {
	a := CountInside(42, 10000)
	b := CountInside(42, 10000)
	if a != b {
		t.Fatal("same seed gave different counts")
	}
	c := CountInside(43, 10000)
	if a == c {
		t.Log("different seeds coincided (possible but unlikely)")
	}
}

func TestCountInsideBounds(t *testing.T) {
	f := func(seed uint64) bool {
		n := int64(1000)
		in := CountInside(seed, n)
		return in >= 0 && in <= n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
	if CountInside(1, 0) != 0 {
		t.Error("zero samples should count zero")
	}
}

func TestPiAccuracyScalesWithSamples(t *testing.T) {
	// Error should be O(1/sqrt(N)), the bound the paper states:
	// "estimating Pi with 100,000,000 samples produces an actual
	// accuracy of approximately 4 digits". We check a scaled-down
	// version of the same claim.
	for _, n := range []int64{10000, 1000000} {
		in := CountInside(2009, n)
		est := EstimatePi(in, n)
		err := math.Abs(est - math.Pi)
		// Allow 6 sigma of the binomial std dev.
		bound := 6 * 4 * math.Sqrt(math.Pi/4*(1-math.Pi/4)/float64(n))
		if err > bound {
			t.Errorf("n=%d: |est-pi| = %g exceeds %g", n, err, bound)
		}
	}
}

func TestPiErrorImprovesWithN(t *testing.T) {
	// Aggregate across seeds so the check is statistical, not lucky.
	avgErr := func(n int64) float64 {
		var sum float64
		const seeds = 20
		for s := uint64(0); s < seeds; s++ {
			in := CountInside(s*7919+1, n)
			sum += math.Abs(EstimatePi(in, n) - math.Pi)
		}
		return sum / seeds
	}
	small, large := avgErr(1000), avgErr(100000)
	if large >= small {
		t.Errorf("error did not shrink with N: %g -> %g", small, large)
	}
}

func TestEstimatePiEdge(t *testing.T) {
	if EstimatePi(0, 0) != 0 {
		t.Error("zero total should yield 0")
	}
	if EstimatePi(1, 1) != 4.0 {
		t.Error("all inside should yield 4")
	}
}

func TestPiErrorBound(t *testing.T) {
	if !math.IsInf(PiErrorBound(0), 1) {
		t.Error("bound for 0 samples should be +Inf")
	}
	if b := PiErrorBound(100); b != 0.1 {
		t.Errorf("bound(100) = %g, want 0.1", b)
	}
	if PiErrorBound(1e8) > 1.1e-4 {
		t.Error("1e8 samples should bound error near 1e-4 (the paper's '4 digits')")
	}
}

func TestCountInsideFromSeeksExactStream(t *testing.T) {
	// The accelerated runtime splits one map task's sample range over
	// SPEs; the split must reproduce the host kernel's single pass bit
	// for bit, for any chunking.
	const seed, n = uint64(2009), int64(10_007)
	want := CountInside(seed, n)
	for _, chunks := range []int64{1, 2, 3, 7, 8, 64, n} {
		var got int64
		per := n / chunks
		for c := int64(0); c < chunks; c++ {
			lo := c * per
			hi := lo + per
			if c == chunks-1 {
				hi = n
			}
			got += CountInsideFrom(seed, lo, hi-lo)
		}
		if got != want {
			t.Fatalf("%d chunks: inside = %d, want %d", chunks, got, want)
		}
	}
	if CountInsideFrom(seed, 0, n) != want {
		t.Fatal("skip=0 must equal CountInside")
	}
	if CountInsideFrom(seed, n, 0) != 0 {
		t.Fatal("empty range must count zero")
	}
}

func TestCountsAdditiveAcrossSeeds(t *testing.T) {
	// Distributed mappers each run an independent seed; totals are
	// summed by the reducer. The sum of two independent halves must
	// give a valid estimate too.
	n := int64(200000)
	in1 := CountInside(1, n/2)
	in2 := CountInside(999, n/2)
	est := EstimatePi(in1+in2, n)
	if math.Abs(est-math.Pi) > 0.05 {
		t.Errorf("combined estimate %g too far from pi", est)
	}
}
