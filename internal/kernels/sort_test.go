package kernels

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestGenerateSortRecords(t *testing.T) {
	a := GenerateSortRecords(1, 100)
	if len(a) != 100*SortRecordBytes {
		t.Fatalf("generated %d bytes", len(a))
	}
	b := GenerateSortRecords(1, 100)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different records")
	}
	c := GenerateSortRecords(2, 100)
	if bytes.Equal(a, c) {
		t.Error("different seeds coincided")
	}
}

func TestSortRecords(t *testing.T) {
	buf := GenerateSortRecords(42, 500)
	if err := SortRecords(buf); err != nil {
		t.Fatal(err)
	}
	sorted, err := RecordsSorted(buf)
	if err != nil {
		t.Fatal(err)
	}
	if !sorted {
		t.Fatal("records not sorted")
	}
}

func TestSortRecordsPreservesMultiset(t *testing.T) {
	buf := GenerateSortRecords(7, 200)
	// Count payload checksums before/after.
	sum := func(b []byte) map[[SortRecordBytes]byte]int {
		m := make(map[[SortRecordBytes]byte]int)
		for i := 0; i < len(b); i += SortRecordBytes {
			var rec [SortRecordBytes]byte
			copy(rec[:], b[i:])
			m[rec]++
		}
		return m
	}
	before := sum(buf)
	if err := SortRecords(buf); err != nil {
		t.Fatal(err)
	}
	after := sum(buf)
	if len(before) != len(after) {
		t.Fatal("record multiset changed size")
	}
	for k, v := range before {
		if after[k] != v {
			t.Fatal("record multiset changed")
		}
	}
}

func TestSortBadSize(t *testing.T) {
	if err := SortRecords(make([]byte, 150)); !errors.Is(err, ErrRecordSize) {
		t.Errorf("got %v", err)
	}
	if _, err := RecordsSorted(make([]byte, 99)); !errors.Is(err, ErrRecordSize) {
		t.Errorf("got %v", err)
	}
	if _, err := MergeSortedRuns([][]byte{make([]byte, 10)}); !errors.Is(err, ErrRecordSize) {
		t.Errorf("got %v", err)
	}
}

func TestMergeSortedRuns(t *testing.T) {
	// Split one generated set into 4 runs, sort each, merge, compare
	// to sorting the whole thing.
	whole := GenerateSortRecords(9, 400)
	want := append([]byte(nil), whole...)
	if err := SortRecords(want); err != nil {
		t.Fatal(err)
	}
	var runs [][]byte
	per := len(whole) / 4
	for i := 0; i < 4; i++ {
		run := append([]byte(nil), whole[i*per:(i+1)*per]...)
		if err := SortRecords(run); err != nil {
			t.Fatal(err)
		}
		runs = append(runs, run)
	}
	got, err := MergeSortedRuns(runs)
	if err != nil {
		t.Fatal(err)
	}
	sorted, _ := RecordsSorted(got)
	if !sorted {
		t.Fatal("merged output unsorted")
	}
	// Same multiset as the direct sort (stable order may differ for
	// equal keys, but TeraSort only requires key order).
	if len(got) != len(want) {
		t.Fatal("merge lost records")
	}
}

// Property: sorting is idempotent and the distributed map-sort +
// reduce-merge pipeline yields sorted output for any partitioning.
func TestMergePipelineProperty(t *testing.T) {
	f := func(seed uint64, partsRaw uint8) bool {
		parts := int(partsRaw)%6 + 1
		whole := GenerateSortRecords(seed, 60)
		per := 60 / parts * SortRecordBytes
		var runs [][]byte
		off := 0
		for i := 0; i < parts-1; i++ {
			run := append([]byte(nil), whole[off:off+per]...)
			if SortRecords(run) != nil {
				return false
			}
			runs = append(runs, run)
			off += per
		}
		last := append([]byte(nil), whole[off:]...)
		if SortRecords(last) != nil {
			return false
		}
		runs = append(runs, last)
		merged, err := MergeSortedRuns(runs)
		if err != nil || len(merged) != len(whole) {
			return false
		}
		ok, err := RecordsSorted(merged)
		return err == nil && ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
