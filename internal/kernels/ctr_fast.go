package kernels

import (
	"crypto/aes"
	"crypto/cipher"
	"encoding/binary"
)

// The hand-rolled SIMD XOR path lost to the standard library's AES-CTR
// by ~7x on hosts with hardware AES support — BENCH_PR2 measured
// 77 MB/s against 542 MB/s on the same machine — because the bottleneck
// is keystream generation, not the XOR, and crypto/aes pipelines AES-NI
// across counter blocks. That path is retired from the production tree;
// a test-only reconstruction and a regression benchmark pinning this
// routing decision live in ctr_retired_test.go. This file routes the
// production encryption paths through the stdlib while keeping the
// table-based CTRStream as the reference implementation (and the SPE
// model's "device" kernel shape). Output is bit-identical across both:
// CTR is fully determined by key, IV and offset.

// stdBlock rebuilds a crypto/aes block cipher from an expanded Cipher.
// AES-128 key expansion keeps the raw key as the first four round-key
// words, so no extra key retention is needed.
func stdBlock(c *Cipher) cipher.Block {
	var key [aesKeySize]byte
	for i := 0; i < 4; i++ {
		binary.BigEndian.PutUint32(key[4*i:], c.rk[i])
	}
	blk, err := aes.NewCipher(key[:])
	if err != nil {
		// The key is 16 bytes by construction; unreachable.
		panic(err)
	}
	return blk
}

// CTRStreamFast is CTRStream on the standard library's AES-CTR:
// bit-identical output, hardware AES where the platform provides it.
// Seeking works the same way as the reference path — start the counter
// at IV+offset/16 and discard the unaligned phase bytes.
func CTRStreamFast(c *Cipher, iv []byte, offset int64, dst, src []byte) {
	if len(iv) != aesBlockSize {
		panic("kernels: CTR IV must be 16 bytes")
	}
	if len(dst) != len(src) {
		panic("kernels: CTR dst/src length mismatch")
	}
	if offset < 0 {
		panic("kernels: negative CTR offset")
	}
	if len(src) == 0 {
		return
	}
	ctrStreamStd(stdBlock(c), iv, offset, dst, src)
}

// ctrStreamStd runs the seeked stdlib CTR transform over one range.
func ctrStreamStd(blk cipher.Block, iv []byte, offset int64, dst, src []byte) {
	var ctr [aesBlockSize]byte
	counterBlock(&ctr, iv, uint64(offset/aesBlockSize))
	stream := cipher.NewCTR(blk, ctr[:])
	if phase := int(offset % aesBlockSize); phase > 0 {
		var discard [aesBlockSize]byte
		stream.XORKeyStream(discard[:phase], discard[:phase])
	}
	stream.XORKeyStream(dst, src)
}

// CTRBlockFuncFast is the stdlib-CTR counterpart of CTRBlockFunc: the
// block cipher is built once and shared — safe concurrently, its state
// is the read-only key schedule; each call seeks its own CTR stream.
func CTRBlockFuncFast(c *Cipher, iv []byte) func(block []byte, offset int64) error {
	blk := stdBlock(c)
	ivCopy := append([]byte(nil), iv...)
	return func(block []byte, offset int64) error {
		if offset < 0 {
			panic("kernels: negative CTR offset")
		}
		ctrStreamStd(blk, ivCopy, offset, block, block)
		return nil
	}
}
