package kernels

// The shuffle partition hash — FNV-1a — lives here once, shared by the
// live runner's in-process partitioned shuffle (internal/core) and the
// distributed runtime's shuffle plane (internal/netmr), so the two
// backends can never silently diverge on where a key routes.

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// PartitionIndex maps a key to one of parts partitions.
func PartitionIndex(key []byte, parts int) int {
	h := uint64(fnvOffset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= fnvPrime64
	}
	return int(h % uint64(parts))
}

// PartitionIndexString is PartitionIndex for string keys, avoiding the
// []byte conversion on the live shuffle's hot path.
func PartitionIndexString(key string, parts int) int {
	h := uint64(fnvOffset64)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= fnvPrime64
	}
	return int(h % uint64(parts))
}
