package kernels

import "encoding/binary"

// CTR mode turns the AES block cipher into a seekable stream cipher.
// Counter mode is what makes the paper's 4 KB SPE blocking trivially
// parallel: any byte range of the stream can be encrypted knowing only
// its offset, so each SPE block is independent. (ECB would also be
// embarrassingly parallel but leaks plaintext structure; the
// encryption *rate* is identical either way, which is what Fig. 2
// measures.)

// CTRStream encrypts or decrypts (the operation is its own inverse)
// src into dst using the cipher and 16-byte IV, treating src as the
// byte range [offset, offset+len(src)) of the logical stream. dst and
// src must have equal length and may alias.
func CTRStream(c *Cipher, iv []byte, offset int64, dst, src []byte) {
	if len(iv) != aesBlockSize {
		panic("kernels: CTR IV must be 16 bytes")
	}
	if len(dst) != len(src) {
		panic("kernels: CTR dst/src length mismatch")
	}
	if offset < 0 {
		panic("kernels: negative CTR offset")
	}
	var ks [aesBlockSize]byte
	block := offset / aesBlockSize
	phase := int(offset % aesBlockSize)
	for i := 0; i < len(src); {
		counterBlock(&ks, iv, uint64(block))
		c.EncryptBlock(ks[:], ks[:])
		for ; phase < aesBlockSize && i < len(src); phase++ {
			dst[i] = src[i] ^ ks[phase]
			i++
		}
		phase = 0
		block++
	}
}

// counterBlock builds IV+n with a 128-bit big-endian add of n.
func counterBlock(out *[aesBlockSize]byte, iv []byte, n uint64) {
	hi := binary.BigEndian.Uint64(iv[:8])
	lo := binary.BigEndian.Uint64(iv[8:])
	newLo := lo + n
	if newLo < lo {
		hi++
	}
	binary.BigEndian.PutUint64(out[:8], hi)
	binary.BigEndian.PutUint64(out[8:], newLo)
}

// EncryptECB encrypts src (a multiple of 16 bytes) block-by-block into
// dst. Kept for completeness and for per-block kernels that want
// stateless 16-byte units.
func EncryptECB(c *Cipher, dst, src []byte) {
	if len(src)%aesBlockSize != 0 {
		panic("kernels: ECB input must be a multiple of 16 bytes")
	}
	for i := 0; i < len(src); i += aesBlockSize {
		c.EncryptBlock(dst[i:i+aesBlockSize], src[i:i+aesBlockSize])
	}
}

// DecryptECB inverts EncryptECB.
func DecryptECB(c *Cipher, dst, src []byte) {
	if len(src)%aesBlockSize != 0 {
		panic("kernels: ECB input must be a multiple of 16 bytes")
	}
	for i := 0; i < len(src); i += aesBlockSize {
		c.DecryptBlock(dst[i:i+aesBlockSize], src[i:i+aesBlockSize])
	}
}
