package kernels

import (
	"bytes"
	"testing"
	"testing/quick"
	"time"

	"hetmr/internal/simd"
)

// The SIMD-structured CTR path — generate the whole keystream, then
// XOR it in with internal/simd's 16-byte vector operations, the shape
// of the paper's SDK 3.0 AES kernel — was retired from the production
// tree: on hosts with hardware AES it loses to CTRStreamFast by ~7x
// (BENCH_PR2: 77 MB/s vs 542 MB/s) because the bottleneck is keystream
// generation, which crypto/aes pipelines across counter blocks while
// this shape encrypts them one at a time. The reconstruction below is
// test-only: it keeps the claim measured (the regression benchmark
// fails the bench gate if the tradeoff ever flips) and keeps the
// retired shape's bit-identical contract pinned against the live path.

// ctrStreamSIMDRetired is the retired CTRStreamSIMD, verbatim in shape:
// whole-range keystream, scalar counter-block encryption, vector XOR.
func ctrStreamSIMDRetired(c *Cipher, iv []byte, offset int64, dst, src []byte) {
	if len(iv) != aesBlockSize {
		panic("kernels: CTR IV must be 16 bytes")
	}
	if len(dst) != len(src) {
		panic("kernels: CTR dst/src length mismatch")
	}
	if offset < 0 {
		panic("kernels: negative CTR offset")
	}
	if len(src) == 0 {
		return
	}
	ks := make([]byte, len(src))
	var blk [aesBlockSize]byte
	block := offset / aesBlockSize
	phase := int(offset % aesBlockSize)
	for i := 0; i < len(ks); {
		counterBlock(&blk, iv, uint64(block))
		c.EncryptBlock(blk[:], blk[:])
		i += copy(ks[i:], blk[phase:])
		phase = 0
		block++
	}
	if &dst[0] != &src[0] {
		copy(dst, src)
	}
	if err := simd.XORStream(dst, ks, offset); err != nil {
		// Lengths are equal by construction; unreachable.
		panic(err)
	}
}

// Property: the retired SIMD shape and the production stdlib path agree
// at every offset and length, including unaligned heads and in-place
// operation — CTR output is fully determined by key, IV and offset.
func TestRetiredSIMDCTRMatchesFast(t *testing.T) {
	c := mustCipher(t)
	iv := []byte("0123456789abcdef")
	f := func(data []byte, offRaw uint16) bool {
		off := int64(offRaw)
		want := make([]byte, len(data))
		CTRStreamFast(c, iv, off, want, data)
		got := append([]byte(nil), data...)
		ctrStreamSIMDRetired(c, iv, off, got, got) // in place
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

// BenchmarkCTRFastOverRetiredSIMD4K pins the retirement decision: the
// timed loop is the production path (ns/op, MB/s), and the reported
// speedup is retired-shape time over production time on this machine.
// If speedup regresses toward 1 the stdlib path stopped winning and the
// routing decision deserves a second look.
func BenchmarkCTRFastOverRetiredSIMD4K(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	iv := make([]byte, 16)
	buf := make([]byte, 4096)
	const probe = 512
	start := time.Now()
	for i := 0; i < probe; i++ {
		ctrStreamSIMDRetired(c, iv, 0, buf, buf)
	}
	retired := time.Since(start) / probe
	b.SetBytes(4096)
	b.ResetTimer()
	start = time.Now()
	for i := 0; i < b.N; i++ {
		CTRStreamFast(c, iv, 0, buf, buf)
	}
	fast := time.Since(start) / time.Duration(b.N)
	if fast <= 0 {
		fast = 1
	}
	b.ReportMetric(float64(retired)/float64(fast), "speedup")
}
