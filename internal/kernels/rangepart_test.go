package kernels

import (
	"bytes"
	"io"
	"sort"
	"testing"
)

func TestRangePartitionerMonotone(t *testing.T) {
	splits := [][]byte{[]byte("ccc"), []byte("mmm"), []byte("ttt")}
	p := NewRangePartitioner(splits)
	if p.Parts() != 4 {
		t.Fatalf("Parts = %d, want 4", p.Parts())
	}
	cases := []struct {
		key  string
		want int
	}{
		{"", 0}, {"aaa", 0}, {"cc", 0},
		{"ccc", 1}, {"ccd", 1}, {"mml", 1},
		{"mmm", 2}, {"sss", 2},
		{"ttt", 3}, {"zzz", 3},
	}
	for _, c := range cases {
		if got := p.Index([]byte(c.key)); got != c.want {
			t.Errorf("Index(%q) = %d, want %d", c.key, got, c.want)
		}
	}
	// Monotone: sorted keys never route to a lower partition.
	keys := []string{"", "a", "ccc", "ccc", "d", "mmm", "q", "ttt", "zz"}
	last := 0
	for _, k := range keys {
		got := p.Index([]byte(k))
		if got < last {
			t.Fatalf("Index(%q) = %d went below previous %d", k, got, last)
		}
		last = got
	}
}

func TestRangePartitionerUnsortedSplitsAreSorted(t *testing.T) {
	p := NewRangePartitioner([][]byte{[]byte("m"), []byte("c")})
	if got := p.Index([]byte("a")); got != 0 {
		t.Fatalf("Index(a) = %d, want 0", got)
	}
	if got := p.Index([]byte("f")); got != 1 {
		t.Fatalf("Index(f) = %d, want 1", got)
	}
	if got := p.Index([]byte("z")); got != 2 {
		t.Fatalf("Index(z) = %d, want 2", got)
	}
}

// Heavily duplicated sample keys must yield a valid partitioner with
// empty ranges, never a panic or an out-of-range index.
func TestRangePartitionerDuplicateSampleKeys(t *testing.T) {
	sample := make([][]byte, 100)
	for i := range sample {
		sample[i] = []byte("same-key") // every sample identical
	}
	splits := SplitKeysFromSample(sample, 8)
	if len(splits) != 7 {
		t.Fatalf("got %d splits, want 7", len(splits))
	}
	p := NewRangePartitioner(splits)
	if got := p.Index([]byte("aaaa")); got != 0 {
		t.Errorf("below-range key routed to %d, want 0", got)
	}
	// The duplicated key itself lands past every equal split.
	if got := p.Index([]byte("same-key")); got != 7 {
		t.Errorf("duplicated key routed to %d, want 7", got)
	}
	if got := p.Index([]byte("zzzz")); got != 7 {
		t.Errorf("above-range key routed to %d, want 7", got)
	}
}

// Skewed input: most ranges are empty, but every record still routes
// in [0, parts) and the covered partitions stay in key order.
func TestRangePartitionerSkewEmptyRanges(t *testing.T) {
	var sample [][]byte
	for i := 0; i < 95; i++ {
		sample = append(sample, []byte{0x10}) // 95% of mass on one key
	}
	for i := 0; i < 5; i++ {
		sample = append(sample, []byte{0xf0, byte(i)})
	}
	parts := 10
	p := NewRangePartitioner(SplitKeysFromSample(sample, parts))
	counts := make([]int, parts)
	for b := 0; b < 256; b++ {
		idx := p.Index([]byte{byte(b)})
		if idx < 0 || idx >= parts {
			t.Fatalf("Index(%#x) = %d out of range", b, idx)
		}
		counts[idx]++
	}
	empty := 0
	for _, c := range counts {
		if c == 0 {
			empty++
		}
	}
	if empty == 0 {
		t.Fatalf("expected empty ranges under 95%% key skew, counts = %v", counts)
	}
}

// 1-reducer degenerate case: no splits, everything routes to 0.
func TestRangePartitionerSingleReducer(t *testing.T) {
	if got := SplitKeysFromSample([][]byte{[]byte("a"), []byte("b")}, 1); got != nil {
		t.Fatalf("SplitKeysFromSample(parts=1) = %v, want nil", got)
	}
	p := NewRangePartitioner(nil)
	if p.Parts() != 1 {
		t.Fatalf("Parts = %d, want 1", p.Parts())
	}
	for _, k := range []string{"", "a", "zzz"} {
		if got := p.Index([]byte(k)); got != 0 {
			t.Fatalf("Index(%q) = %d, want 0", k, got)
		}
	}
}

func TestSplitKeysFromSampleSmallSample(t *testing.T) {
	if got := SplitKeysFromSample(nil, 4); got != nil {
		t.Fatalf("empty sample: got %v, want nil", got)
	}
	// Sample smaller than parts: still parts-1 splits (duplicated).
	splits := SplitKeysFromSample([][]byte{[]byte("k")}, 4)
	if len(splits) != 3 {
		t.Fatalf("got %d splits, want 3", len(splits))
	}
	for _, s := range splits {
		if !bytes.Equal(s, []byte("k")) {
			t.Fatalf("split %q, want %q", s, "k")
		}
	}
}

func TestRecordKeySamplerPassThroughAndDeterminism(t *testing.T) {
	data := GenerateSortRecords(7, 5000)
	read := func(chunk int) ([]byte, [][]byte) {
		s := NewRecordKeySampler(bytes.NewReader(data), 64, 42)
		var out bytes.Buffer
		if _, err := io.CopyBuffer(&out, onlyReader{s}, make([]byte, chunk)); err != nil {
			t.Fatal(err)
		}
		return out.Bytes(), s.Keys()
	}
	got1, keys1 := read(333) // chunk size not a record multiple
	got2, keys2 := read(4096)
	if !bytes.Equal(got1, data) || !bytes.Equal(got2, data) {
		t.Fatal("sampler altered the pass-through stream")
	}
	if len(keys1) != 64 || len(keys2) != 64 {
		t.Fatalf("reservoir sizes %d, %d; want 64", len(keys1), len(keys2))
	}
	// Deterministic and chunking-independent: same stream + seed ->
	// same reservoir regardless of read sizes.
	for i := range keys1 {
		if !bytes.Equal(keys1[i], keys2[i]) {
			t.Fatalf("reservoir differs at %d under different chunk sizes", i)
		}
	}
	// Every sampled key must be a real record key from the stream.
	keySet := make(map[string]bool)
	for off := 0; off+SortRecordBytes <= len(data); off += SortRecordBytes {
		keySet[string(data[off:off+SortKeyBytes])] = true
	}
	for _, k := range keys1 {
		if !keySet[string(k)] {
			t.Fatalf("sampled key %x not present in stream", k)
		}
	}
}

// onlyReader hides any other methods so io.CopyBuffer actually uses
// the provided buffer and exercises arbitrary chunk boundaries.
type onlyReader struct{ r io.Reader }

func (o onlyReader) Read(p []byte) (int, error) { return o.r.Read(p) }

func TestSamplerSplitKeysBalance(t *testing.T) {
	data := GenerateSortRecords(99, 20000)
	s := NewRecordKeySampler(bytes.NewReader(data), 1000, 7)
	if _, err := io.Copy(io.Discard, onlyReader{s}); err != nil {
		t.Fatal(err)
	}
	parts := 8
	p := NewRangePartitioner(s.SplitKeys(parts))
	counts := make([]int, parts)
	for off := 0; off+SortRecordBytes <= len(data); off += SortRecordBytes {
		counts[p.Index(data[off:off+SortKeyBytes])]++
	}
	total := 20000
	want := total / parts
	for i, c := range counts {
		// Uniform keys + a 1000-key sample: each range should hold
		// roughly 1/parts of the records; 2x slack absorbs sampling noise.
		if c < want/2 || c > want*2 {
			t.Fatalf("partition %d holds %d records, want ~%d; counts=%v", i, c, want, counts)
		}
	}
	if !sort.SliceIsSorted(s.SplitKeys(parts), func(a, b int) bool {
		sk := s.SplitKeys(parts)
		return bytes.Compare(sk[a], sk[b]) < 0
	}) {
		t.Fatal("split keys not sorted")
	}
}
