package kernels

import (
	"bufio"
	"bytes"
	"container/heap"
	"fmt"
	"io"
)

// External k-way merge of sorted TeraSort record runs. The runs are
// io.Readers — in-memory buffers, spilled run files, network streams —
// and the merge holds one record per run plus a small heap, so memory
// stays O(k·recordSize) no matter how large the runs are. This is the
// reduce-side merge behind both the live runner's sort (over spilled
// run files) and the netmr sort kernel (over fetched partition
// pieces).

// mergeBufBytes is the per-run read-ahead; a few records' worth keeps
// syscall counts low without hoarding memory.
const mergeBufBytes = 16 * 1024

// runCursor is one run's read head: the current record plus its
// source index (the tie-breaker that keeps the merge stable, matching
// the historical scan-based merge bit for bit).
type runCursor struct {
	r   *bufio.Reader
	rec [SortRecordBytes]byte
	idx int
}

// advance loads the cursor's next record. It reports false at a clean
// run end and errors when a run ends mid-record.
func (c *runCursor) advance() (bool, error) {
	_, err := io.ReadFull(c.r, c.rec[:])
	if err == io.EOF {
		return false, nil
	}
	if err == io.ErrUnexpectedEOF {
		return false, fmt.Errorf("%w: run %d ends mid-record", ErrRecordSize, c.idx)
	}
	if err != nil {
		return false, err
	}
	return true, nil
}

// cursorHeap orders cursors by current key, ties broken by run index
// so equal keys drain lower-indexed runs first — the exact order the
// scan merge produced.
type cursorHeap []*runCursor

func (h cursorHeap) Len() int { return len(h) }
func (h cursorHeap) Less(i, j int) bool {
	c := bytes.Compare(h[i].rec[:SortKeyBytes], h[j].rec[:SortKeyBytes])
	if c != 0 {
		return c < 0
	}
	return h[i].idx < h[j].idx
}
func (h cursorHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *cursorHeap) Push(x any)   { *h = append(*h, x.(*runCursor)) }
func (h *cursorHeap) Pop() any {
	old := *h
	n := len(old)
	c := old[n-1]
	*h = old[:n-1]
	return c
}

// MergeSortedStreams merges independently sorted record streams into w
// and returns the bytes written. Each run must be a whole number of
// 100-byte records in key order; the output interleaves them into one
// globally sorted stream. Memory use is O(len(runs)·recordSize): this
// is the external-merge kernel that lets a sort's reduce phase run
// over spilled runs far larger than RAM.
func MergeSortedStreams(w io.Writer, runs ...io.Reader) (int64, error) {
	bw := bufio.NewWriterSize(w, mergeBufBytes)
	h := make(cursorHeap, 0, len(runs))
	for i, r := range runs {
		c := &runCursor{r: bufio.NewReaderSize(r, mergeBufBytes), idx: i}
		ok, err := c.advance()
		if err != nil {
			return 0, err
		}
		if ok {
			h = append(h, c)
		}
	}
	heap.Init(&h)
	var written int64
	for h.Len() > 0 {
		c := h[0]
		if _, err := bw.Write(c.rec[:]); err != nil {
			return written, err
		}
		written += SortRecordBytes
		ok, err := c.advance()
		if err != nil {
			return written, err
		}
		if ok {
			heap.Fix(&h, 0)
		} else {
			heap.Pop(&h)
		}
	}
	if err := bw.Flush(); err != nil {
		return written, err
	}
	return written, nil
}

// MergeSortedRuns merges independently sorted in-memory runs (the map
// outputs) into one sorted buffer — the reduce-side merge. It is the
// materialized convenience over MergeSortedStreams; callers with runs
// on disk should merge the streams directly.
func MergeSortedRuns(runs [][]byte) ([]byte, error) {
	var total int
	for _, r := range runs {
		if len(r)%SortRecordBytes != 0 {
			return nil, fmt.Errorf("%w: run of %d bytes", ErrRecordSize, len(r))
		}
		total += len(r)
	}
	readers := make([]io.Reader, len(runs))
	for i, r := range runs {
		readers[i] = bytes.NewReader(r)
	}
	var out bytes.Buffer
	out.Grow(total)
	if _, err := MergeSortedStreams(&out, readers...); err != nil {
		return nil, err
	}
	return out.Bytes(), nil
}
