package kernels

import "bytes"

// Text kernels for the classic MapReduce examples (word count, grep).
// These are not in the paper's evaluation but exercise the key/value
// half of the MapReduce API the way the original MapReduce and Hadoop
// papers motivate it.

// isWordByte reports whether b belongs to a word (letters and digits;
// everything else is a separator).
func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9'
}

// IsWordByte exposes the word/separator classification, so runtimes
// that carve a block into sub-blocks (the accelerated wordcount path)
// can split only at separators and never cut a word in half.
func IsWordByte(b byte) bool { return isWordByte(b) }

// Words calls fn for every maximal word in data, lowercased. The
// callback slice is only valid during the call.
func Words(data []byte, fn func(word []byte)) {
	var buf [64]byte
	start := -1
	for i := 0; i <= len(data); i++ {
		inWord := i < len(data) && isWordByte(data[i])
		switch {
		case inWord && start < 0:
			start = i
		case !inWord && start >= 0:
			w := data[start:i]
			if len(w) <= len(buf) {
				for j, c := range w {
					if c >= 'A' && c <= 'Z' {
						c += 'a' - 'A'
					}
					buf[j] = c
				}
				fn(buf[:len(w)])
			} else {
				lw := bytes.ToLower(w)
				fn(lw)
			}
			start = -1
		}
	}
}

// WordCount tallies word frequencies in data.
func WordCount(data []byte) map[string]int64 {
	counts := make(map[string]int64)
	Words(data, func(w []byte) { counts[string(w)]++ })
	return counts
}

// GrepLines calls fn(lineNumber, line) for each line of data
// containing pattern. Line numbers start at 1. The line slice is only
// valid during the call.
func GrepLines(data, pattern []byte, fn func(lineno int, line []byte)) {
	lineno := 0
	for len(data) > 0 {
		lineno++
		nl := bytes.IndexByte(data, '\n')
		var line []byte
		if nl < 0 {
			line, data = data, nil
		} else {
			line, data = data[:nl], data[nl+1:]
		}
		if bytes.Contains(line, pattern) {
			fn(lineno, line)
		}
	}
}
