package kernels

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestWordCountBasic(t *testing.T) {
	got := WordCount([]byte("the cat and The DOG and the bird"))
	want := map[string]int64{"the": 3, "cat": 1, "and": 2, "dog": 1, "bird": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("WordCount = %v, want %v", got, want)
	}
}

func TestWordCountEmptyAndPunctuation(t *testing.T) {
	if got := WordCount(nil); len(got) != 0 {
		t.Errorf("WordCount(nil) = %v", got)
	}
	if got := WordCount([]byte("...!!!  ,,,")); len(got) != 0 {
		t.Errorf("punctuation only = %v", got)
	}
	got := WordCount([]byte("a1b2!c3"))
	want := map[string]int64{"a1b2": 1, "c3": 1}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("got %v, want %v", got, want)
	}
}

func TestWordsLongWord(t *testing.T) {
	long := strings.Repeat("X", 100)
	var got []string
	Words([]byte("a "+long+" b"), func(w []byte) { got = append(got, string(w)) })
	if len(got) != 3 || got[1] != strings.ToLower(long) {
		t.Errorf("long word handling wrong: %v", got)
	}
}

// Property: total word count equals the count from a reference
// tokenizer built on strings.FieldsFunc.
func TestWordCountMatchesReferenceProperty(t *testing.T) {
	ref := func(s string) map[string]int64 {
		out := make(map[string]int64)
		for _, w := range strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
			return !(r >= 'a' && r <= 'z' || r >= '0' && r <= '9')
		}) {
			out[w]++
		}
		return out
	}
	f := func(raw []byte) bool {
		// Constrain to ASCII so the reference semantics match.
		s := make([]byte, len(raw))
		for i, b := range raw {
			s[i] = b % 128
		}
		return reflect.DeepEqual(WordCount(s), ref(string(s)))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestGrepLines(t *testing.T) {
	data := []byte("alpha\nbeta gamma\ndelta\ngamma end")
	var lines []int
	GrepLines(data, []byte("gamma"), func(n int, line []byte) {
		lines = append(lines, n)
	})
	if !reflect.DeepEqual(lines, []int{2, 4}) {
		t.Errorf("grep lines = %v, want [2 4]", lines)
	}
}

func TestGrepNoMatchesAndEmpty(t *testing.T) {
	called := false
	GrepLines(nil, []byte("x"), func(int, []byte) { called = true })
	GrepLines([]byte("aaa\nbbb"), []byte("zzz"), func(int, []byte) { called = true })
	if called {
		t.Error("callback fired with no matches")
	}
}

func TestGrepTrailingNewline(t *testing.T) {
	var count int
	GrepLines([]byte("hit\nhit\n"), []byte("hit"), func(int, []byte) { count++ })
	if count != 2 {
		t.Errorf("count = %d, want 2", count)
	}
}
