package kernels

import (
	"crypto/aes"
	"crypto/cipher"
	"testing"
)

// Micro-benchmarks for the kernels: these quantify the *functional*
// implementations on the host, independent of the calibrated Cell
// model (which is what the figures use).

func BenchmarkAESEncryptBlock(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	var blk [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.EncryptBlock(blk[:], blk[:])
	}
}

func BenchmarkAESEncryptBlockStdlib(b *testing.B) {
	c, _ := aes.NewCipher(make([]byte, 16))
	var blk [16]byte
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Encrypt(blk[:], blk[:])
	}
}

func BenchmarkCTRStream4K(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	iv := make([]byte, 16)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		CTRStream(c, iv, 0, buf, buf)
	}
}

func BenchmarkCTRStreamFast4K(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	iv := make([]byte, 16)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		CTRStreamFast(c, iv, 0, buf, buf)
	}
}

func BenchmarkCTRBlockFuncFast4K(b *testing.B) {
	c, _ := NewCipher(make([]byte, 16))
	fn := CTRBlockFuncFast(c, make([]byte, 16))
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		fn(buf, 0)
	}
}

func BenchmarkCTRStreamStdlib4K(b *testing.B) {
	c, _ := aes.NewCipher(make([]byte, 16))
	iv := make([]byte, 16)
	buf := make([]byte, 4096)
	b.SetBytes(4096)
	for i := 0; i < b.N; i++ {
		cipher.NewCTR(c, iv).XORKeyStream(buf, buf)
	}
}

func BenchmarkCountInside(b *testing.B) {
	for i := 0; i < b.N; i++ {
		CountInside(uint64(i), 100000)
	}
}

func BenchmarkWordCount(b *testing.B) {
	data := make([]byte, 64<<10)
	for i := range data {
		if i%7 == 6 {
			data[i] = ' '
		} else {
			data[i] = 'a' + byte(i%13)
		}
	}
	b.SetBytes(int64(len(data)))
	for i := 0; i < b.N; i++ {
		WordCount(data)
	}
}

func BenchmarkSortRecords(b *testing.B) {
	orig := GenerateSortRecords(1, 10000)
	buf := make([]byte, len(orig))
	b.SetBytes(int64(len(orig)))
	for i := 0; i < b.N; i++ {
		copy(buf, orig)
		if err := SortRecords(buf); err != nil {
			b.Fatal(err)
		}
	}
}
