package kernels

// Block-kernel adapters: closures with the signature the SPE runtimes
// (spurt, cellmr) expect, so the kernels package stays independent of
// the runtime packages — mirroring how the paper's SPE kernels were
// compiled separately from the runtime that invoked them.

// CTRBlockFunc returns a function encrypting an in-place block at a
// given stream offset with AES-128 CTR. Safe for concurrent use from
// multiple SPE workers: the cipher's expanded key is read-only.
func CTRBlockFunc(c *Cipher, iv []byte) func(block []byte, offset int64) error {
	ivCopy := append([]byte(nil), iv...)
	return func(block []byte, offset int64) error {
		CTRStream(c, ivCopy, offset, block, block)
		return nil
	}
}

// PiWorkerFunc returns a function computing one SPE worker's share of
// a Monte Carlo Pi estimation: `samples` draws seeded uniquely per
// worker, returning the inside count.
func PiWorkerFunc(baseSeed uint64, samplesPerWorker int64) func(worker int) (int64, error) {
	return func(worker int) (int64, error) {
		return CountInside(MixSeed(baseSeed, uint64(worker)), samplesPerWorker), nil
	}
}
