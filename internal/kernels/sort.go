package kernels

import (
	"bytes"
	"errors"
	"fmt"
	"sort"
)

// TeraSort-style record sorting (paper §IV-A discusses the Terasort
// contest results to argue record delivery, not sorting speed, bounds
// MapReduce mappers). Records are fixed-size: a 10-byte key followed
// by 90 bytes of payload, sorted lexicographically by key.

// SortRecordBytes is the TeraSort record size.
const SortRecordBytes = 100

// SortKeyBytes is the TeraSort key size.
const SortKeyBytes = 10

// ErrRecordSize is returned when a buffer is not a whole number of
// records.
var ErrRecordSize = errors.New("kernels: buffer is not a multiple of the 100-byte record size")

// GenerateSortRecords produces n deterministic pseudo-random records
// seeded by seed (the teragen role).
func GenerateSortRecords(seed uint64, n int) []byte {
	rng := piRNG{state: seed}
	out := make([]byte, n*SortRecordBytes)
	for i := 0; i < len(out); i += 8 {
		v := rng.next()
		for j := 0; j < 8 && i+j < len(out); j++ {
			out[i+j] = byte(v >> (8 * j))
		}
	}
	return out
}

// SortRecords sorts the records in buf in place by their 10-byte keys.
func SortRecords(buf []byte) error {
	if len(buf)%SortRecordBytes != 0 {
		return fmt.Errorf("%w: %d bytes", ErrRecordSize, len(buf))
	}
	n := len(buf) / SortRecordBytes
	rec := func(i int) []byte { return buf[i*SortRecordBytes : (i+1)*SortRecordBytes] }
	// Indirect sort then permute, so Swap stays cheap.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		return bytes.Compare(rec(idx[a])[:SortKeyBytes], rec(idx[b])[:SortKeyBytes]) < 0
	})
	out := make([]byte, len(buf))
	for to, from := range idx {
		copy(out[to*SortRecordBytes:], rec(from))
	}
	copy(buf, out)
	return nil
}

// RecordsSorted reports whether buf's records are in key order.
func RecordsSorted(buf []byte) (bool, error) {
	if len(buf)%SortRecordBytes != 0 {
		return false, fmt.Errorf("%w: %d bytes", ErrRecordSize, len(buf))
	}
	n := len(buf) / SortRecordBytes
	for i := 1; i < n; i++ {
		prev := buf[(i-1)*SortRecordBytes : (i-1)*SortRecordBytes+SortKeyBytes]
		cur := buf[i*SortRecordBytes : i*SortRecordBytes+SortKeyBytes]
		if bytes.Compare(prev, cur) > 0 {
			return false, nil
		}
	}
	return true, nil
}
