package kernels

import (
	"bytes"
	"testing"
	"testing/quick"
)

// Property: the stdlib-routed path is bit-identical to the reference
// CTRStream at every offset, aligned or not — the conformance bar for
// swapping the production encryption path.
func TestCTRFastMatchesReference(t *testing.T) {
	c := mustCipher(t)
	iv := []byte("fast-path-iv!!!!")
	f := func(data []byte, offRaw uint32) bool {
		off := int64(offRaw % 100_003) // crosses many 16-byte boundaries
		want := make([]byte, len(data))
		CTRStream(c, iv, off, want, data)
		got := make([]byte, len(data))
		CTRStreamFast(c, iv, off, got, data)
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestCTRFastUnalignedPhase(t *testing.T) {
	c := mustCipher(t)
	iv := []byte("0000111122223333")
	data := make([]byte, 300)
	for i := range data {
		data[i] = byte(i * 7)
	}
	for _, off := range []int64{0, 1, 15, 16, 17, 4095, 4096, 100_000_001} {
		want := make([]byte, len(data))
		CTRStream(c, iv, off, want, data)
		got := make([]byte, len(data))
		CTRStreamFast(c, iv, off, got, data)
		if !bytes.Equal(got, want) {
			t.Errorf("offset %d: fast path diverges from reference", off)
		}
	}
}

func TestCTRFastInPlaceAndBlockFunc(t *testing.T) {
	c := mustCipher(t)
	iv := []byte("abcdABCDabcdABCD")
	data := []byte("in-place encryption through the shared block func")
	want := make([]byte, len(data))
	CTRStream(c, iv, 21, want, data)

	buf := append([]byte(nil), data...)
	CTRStreamFast(c, iv, 21, buf, buf) // aliased dst/src
	if !bytes.Equal(buf, want) {
		t.Error("in-place fast path diverges")
	}

	fn := CTRBlockFuncFast(c, iv)
	buf2 := append([]byte(nil), data...)
	if err := fn(buf2, 21); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf2, want) {
		t.Error("CTRBlockFuncFast diverges")
	}
}

func TestCTRFastPanics(t *testing.T) {
	c := mustCipher(t)
	for name, fn := range map[string]func(){
		"bad iv":     func() { CTRStreamFast(c, make([]byte, 8), 0, make([]byte, 4), make([]byte, 4)) },
		"len":        func() { CTRStreamFast(c, make([]byte, 16), 0, make([]byte, 3), make([]byte, 4)) },
		"neg offset": func() { CTRStreamFast(c, make([]byte, 16), -1, make([]byte, 4), make([]byte, 4)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}
