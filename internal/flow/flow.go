// Package flow provides byte-granular credit windows — the flow
// control primitive the data plane uses to bound in-flight network
// bytes the same way the spill watermark bounds the stores. A Window
// hands out credits up to a limit and blocks acquirers until earlier
// credits are released: ingest holds a credit per in-flight block
// write, the shuffle plane holds a credit per in-flight FetchPartition
// chunk, so outstanding bytes are provably capped by the window.
package flow

import "sync"

// Window is a byte-credit semaphore with a recorded high-water mark.
// Acquire blocks while the window is full; Release returns credit and
// wakes waiters. The zero value is unusable — use NewWindow.
type Window struct {
	mu          sync.Mutex
	cond        *sync.Cond
	limit       int64
	outstanding int64
	peak        int64
}

// NewWindow returns a window granting at most limit bytes of credit
// at once. A non-positive limit is treated as 1 so acquires make
// progress serially rather than deadlocking.
func NewWindow(limit int64) *Window {
	if limit < 1 {
		limit = 1
	}
	w := &Window{limit: limit}
	w.cond = sync.NewCond(&w.mu)
	return w
}

// Acquire blocks until n bytes of credit are available and takes
// them. A request larger than the whole window is clamped to the
// limit — the oversized transfer proceeds alone, exactly like a
// payload larger than the spill watermark still spills — so Acquire
// never deadlocks. It returns the credit actually taken, which must
// be passed to Release.
func (w *Window) Acquire(n int64) int64 {
	if n < 0 {
		n = 0
	}
	w.mu.Lock()
	defer w.mu.Unlock()
	if n > w.limit {
		n = w.limit
	}
	for w.outstanding+n > w.limit {
		w.cond.Wait()
	}
	w.outstanding += n
	if w.outstanding > w.peak {
		w.peak = w.outstanding
	}
	return n
}

// Release returns n bytes of credit and wakes blocked acquirers.
func (w *Window) Release(n int64) {
	if n <= 0 {
		return
	}
	w.mu.Lock()
	w.outstanding -= n
	if w.outstanding < 0 {
		// Over-release is a caller bug; clamp so the window stays sane.
		w.outstanding = 0
	}
	w.mu.Unlock()
	w.cond.Broadcast()
}

// Outstanding returns the credit currently held.
func (w *Window) Outstanding() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.outstanding
}

// Peak returns the high-water mark of held credit over the window's
// lifetime — the provable bound on in-flight bytes (always ≤ Limit).
func (w *Window) Peak() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.peak
}

// Limit returns the window size in bytes.
func (w *Window) Limit() int64 {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.limit
}
