package flow

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// Hammer the window from many goroutines; under -race this verifies
// the synchronization, and the peak assertion proves the credit bound
// holds at every instant.
func TestWindowBoundsOutstanding(t *testing.T) {
	const limit = 1000
	w := NewWindow(limit)
	var wg sync.WaitGroup
	var held atomic.Int64
	for g := 0; g < 32; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				n := int64(1 + (g*31+i*7)%300)
				got := w.Acquire(n)
				if cur := held.Add(got); cur > limit {
					t.Errorf("outstanding %d exceeds limit %d", cur, limit)
				}
				held.Add(-got)
				w.Release(got)
			}
		}(g)
	}
	wg.Wait()
	if w.Outstanding() != 0 {
		t.Fatalf("outstanding %d after all releases, want 0", w.Outstanding())
	}
	if p := w.Peak(); p > limit || p == 0 {
		t.Fatalf("peak %d, want in (0, %d]", p, limit)
	}
}

func TestWindowOversizedAcquireClamps(t *testing.T) {
	w := NewWindow(100)
	got := w.Acquire(1 << 30)
	if got != 100 {
		t.Fatalf("Acquire(1GB) took %d credits, want clamp to 100", got)
	}
	// A second acquirer must block until release.
	done := make(chan struct{})
	go func() {
		w.Release(w.Acquire(1))
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("second acquire proceeded while window was full")
	case <-time.After(20 * time.Millisecond):
	}
	w.Release(got)
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("second acquire never woke after release")
	}
}

func TestWindowDegenerateLimits(t *testing.T) {
	w := NewWindow(0)
	if w.Limit() != 1 {
		t.Fatalf("Limit = %d, want 1 for non-positive input", w.Limit())
	}
	got := w.Acquire(50)
	if got != 1 {
		t.Fatalf("Acquire on unit window took %d, want 1", got)
	}
	w.Release(got)
	if w.Acquire(0) != 0 {
		t.Fatal("Acquire(0) should take no credit")
	}
	w.Release(0) // no-op
	w.Release(5) // over-release clamps, never goes negative
	if w.Outstanding() != 0 {
		t.Fatalf("outstanding %d, want 0", w.Outstanding())
	}
}
