package rpcnet

import (
	"bufio"
	"bytes"
	"fmt"
	"net"
	"sync"

	"hetmr/internal/spill"
)

// maxConnConcurrency caps the handler goroutines one connection can
// have in flight; further request frames queue on the connection's
// read loop until a slot frees.
const maxConnConcurrency = 64

// Server is the rpcnet v2 server: one TCP listener, one read loop per
// connection, and concurrent handler dispatch per connection —
// responses are written as handlers finish, in any order, tagged with
// the request ID they answer.
type Server struct {
	ln       net.Listener
	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer listens on addr ("127.0.0.1:0" for an ephemeral port).
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: listen: %w", err)
	}
	s := &Server{
		ln:       ln,
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle registers a method handler. Registration after Close is a
// no-op; re-registering a name replaces the handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

func (s *Server) lookup(method string) (Handler, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.handlers[method]
	return h, ok
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn answers the client hello, then reads request frames and
// dispatches each to a handler goroutine (bounded by
// maxConnConcurrency). It returns on EOF or a broken peer, after the
// in-flight handlers drain.
func (s *Server) serveConn(conn net.Conn) {
	br := bufio.NewReaderSize(conn, 64<<10)
	proposed, err := readHello(br)
	if err != nil {
		return
	}
	var codec spill.Codec
	accepted := ""
	if proposed != "" {
		if c, ok := spill.CodecByName(proposed); ok {
			codec = c
			accepted = proposed
		}
	}
	if err := writeHello(conn, accepted); err != nil {
		return
	}
	var wmu sync.Mutex
	sem := make(chan struct{}, maxConnConcurrency)
	var handlers sync.WaitGroup
	defer handlers.Wait()
	for {
		fr, err := readFrame(br)
		if err != nil {
			return
		}
		if fr.flags&frameFlagResponse != 0 {
			putBuf(fr.body)
			return // protocol violation
		}
		sem <- struct{}{}
		handlers.Add(1)
		go func(fr frame) {
			defer func() {
				<-sem
				handlers.Done()
			}()
			s.dispatch(conn, &wmu, codec, fr)
		}(fr)
	}
}

// dispatch runs one request through its handler and writes the tagged
// response. Write errors are dropped — the read loop will notice the
// broken connection.
func (s *Server) dispatch(conn net.Conn, wmu *sync.Mutex, codec spill.Codec, fr frame) {
	body := fr.body.Bytes()
	var decBuf *bytes.Buffer
	errMsg := ""
	if fr.flags&frameFlagCompressed != 0 {
		if codec == nil {
			errMsg = "rpcnet: compressed request without negotiated codec"
		} else {
			decBuf = getBuf()
			if err := decompressInto(codec, decBuf, body); err != nil {
				errMsg = fmt.Sprintf("rpcnet: decompress request: %v", err)
			} else {
				body = decBuf.Bytes()
			}
		}
	}
	var respBody *bytes.Buffer
	if errMsg == "" {
		if h, ok := s.lookup(fr.meta); !ok {
			errMsg = fmt.Sprintf("rpcnet: unknown method %q", fr.meta)
		} else if result, err := h(body); err != nil {
			errMsg = err.Error()
		} else {
			respBody = getBuf()
			if err := marshalTo(respBody, result); err != nil {
				putBuf(respBody)
				respBody = nil
				errMsg = err.Error()
			}
		}
	}
	putBuf(fr.body)
	putBuf(decBuf)
	var raw []byte
	if respBody != nil {
		raw = respBody.Bytes()
	}
	sendFrame(conn, wmu, fr.id, frameFlagResponse, errMsg, raw, codec)
	putBuf(respBody)
}

// Close stops the listener, severs live connections and waits for
// connection goroutines to drain. Clients with in-flight calls get a
// connection error, not a hang.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}
