package rpcnet

import (
	"bufio"
	"bytes"
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"hetmr/internal/spill"
)

// DefaultPoolSize is the number of multiplexed connections a Client
// keeps per address unless WithPoolSize overrides it. Multiplexing
// carries the concurrency; a second connection mainly keeps a huge
// frame mid-write from head-of-line-blocking small control calls.
const DefaultPoolSize = 2

// Option configures a Client at Dial time.
type Option func(*dialOptions)

type dialOptions struct {
	codecName string
	poolSize  int
}

// WithCodec proposes a payload codec (a spill.CodecByName name, e.g.
// "snap") in the connection hello. If the server accepts it, bodies
// above a small threshold are compressed on the wire in both
// directions. Dial fails on names CodecByName does not know.
func WithCodec(name string) Option {
	return func(o *dialOptions) { o.codecName = name }
}

// WithPoolSize sets how many multiplexed connections the Client
// spreads calls over (minimum 1).
func WithPoolSize(n int) Option {
	return func(o *dialOptions) {
		if n > 0 {
			o.poolSize = n
		}
	}
}

// Client is a pooled, multiplexed connection to one rpcnet server.
// Calls from any number of goroutines share the pool's connections;
// each in-flight call is matched to its response by request ID. A
// call that times out abandons only its own reply — the connection
// stays usable — and a connection that dies is redialed on the next
// call that lands on it. Safe for concurrent use.
type Client struct {
	addr      string
	codecName string
	codec     spill.Codec
	timeout   atomic.Int64 // default per-call timeout, ns

	mu     sync.Mutex
	conns  []*clientConn
	rr     uint64 // round-robin cursor over conns
	closed bool
}

// clientConn is one multiplexed connection: a write side shared under
// wmu and a readLoop that routes response frames to pending calls.
type clientConn struct {
	nc    net.Conn
	codec spill.Codec // negotiated: non-nil once the server accepts

	wmu sync.Mutex // serializes frame writes

	mu      sync.Mutex
	pending map[uint64]chan callResult
	err     error // terminal; set once, conn is dead after

	nextID     atomic.Uint64
	compressOK atomic.Bool // server accepted our proposed codec
}

// callResult carries one response (or transport failure) from the
// readLoop to the waiting call.
type callResult struct {
	errMsg     string        // remote handler error, if any
	body       *bytes.Buffer // pooled; owned by the receiver
	compressed bool
	err        error // transport-level failure
}

// Dial connects to an rpcnet server. The returned Client is a
// connection pool; see WithCodec and WithPoolSize. Dial establishes
// the first connection eagerly so an unreachable address fails fast.
func Dial(addr string, opts ...Option) (*Client, error) {
	o := dialOptions{poolSize: DefaultPoolSize}
	for _, opt := range opts {
		opt(&o)
	}
	var codec spill.Codec
	if o.codecName != "" {
		var ok bool
		codec, ok = spill.CodecByName(o.codecName)
		if !ok {
			return nil, fmt.Errorf("rpcnet: unknown codec %q", o.codecName)
		}
	}
	c := &Client{
		addr:      addr,
		codecName: o.codecName,
		codec:     codec,
		conns:     make([]*clientConn, o.poolSize),
	}
	cc, err := c.dialConn()
	if err != nil {
		return nil, err
	}
	c.conns[0] = cc
	return c, nil
}

// dialConn opens one connection: TCP dial, send our hello, and start
// the readLoop (which consumes the server's hello first — the
// exchange is asynchronous so dialing a mute server still returns).
func (c *Client) dialConn() (*clientConn, error) {
	nc, err := net.Dial("tcp", c.addr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: dial %s: %w", c.addr, err)
	}
	if err := writeHello(nc, c.codecName); err != nil {
		nc.Close()
		return nil, fmt.Errorf("rpcnet: dial %s: hello: %w", c.addr, err)
	}
	cc := &clientConn{
		nc:      nc,
		codec:   c.codec,
		pending: make(map[uint64]chan callResult),
	}
	go cc.readLoop(c.codecName)
	return cc, nil
}

// readLoop owns the connection's read side: it consumes the server
// hello, then routes every response frame to the pending call it
// tags. Any read error kills the connection and fails all pending
// calls.
func (cc *clientConn) readLoop(proposed string) {
	br := bufio.NewReaderSize(cc.nc, 64<<10)
	accepted, err := readHello(br)
	if err != nil {
		cc.fail(fmt.Errorf("rpcnet: hello: %w", err))
		return
	}
	if proposed != "" && accepted == proposed {
		cc.compressOK.Store(true)
	}
	for {
		fr, err := readFrame(br)
		if err != nil {
			cc.fail(err)
			return
		}
		if fr.flags&frameFlagResponse == 0 {
			putBuf(fr.body)
			cc.fail(errors.New("rpcnet: request frame on client connection"))
			return
		}
		cc.mu.Lock()
		ch, ok := cc.pending[fr.id]
		delete(cc.pending, fr.id)
		cc.mu.Unlock()
		if !ok {
			// Late reply to a call that timed out: discard by ID.
			putBuf(fr.body)
			continue
		}
		ch <- callResult{
			errMsg:     fr.meta,
			body:       fr.body,
			compressed: fr.flags&frameFlagCompressed != 0,
		}
	}
}

// fail marks the connection dead and delivers err to every pending
// call. Idempotent; the first error wins.
func (cc *clientConn) fail(err error) {
	cc.mu.Lock()
	if cc.err != nil {
		cc.mu.Unlock()
		return
	}
	cc.err = err
	pend := cc.pending
	cc.pending = nil
	cc.mu.Unlock()
	cc.nc.Close()
	for _, ch := range pend {
		ch <- callResult{err: err}
	}
}

// register parks a pending call; it fails if the connection already
// died.
func (cc *clientConn) register(id uint64, ch chan callResult) error {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.err != nil {
		return cc.err
	}
	cc.pending[id] = ch
	return nil
}

// deregister abandons a pending call (timeout path). The connection
// stays healthy; a late reply is dropped by ID.
func (cc *clientConn) deregister(id uint64) {
	cc.mu.Lock()
	delete(cc.pending, id)
	cc.mu.Unlock()
}

// dead reports whether the connection has hit a terminal error.
func (cc *clientConn) dead() bool {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	return cc.err != nil
}

// conn picks the next pool slot round-robin, redialing it if its
// connection is missing or dead. The dial itself happens outside c.mu
// — an unreachable server must stall only the calls that need the new
// connection, not every goroutine touching the pool (hetlint:
// lockheldcall).
func (c *Client) conn() (*clientConn, error) {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil, ErrClientClosed
	}
	i := int(c.rr % uint64(len(c.conns)))
	c.rr++
	if cc := c.conns[i]; cc != nil && !cc.dead() {
		c.mu.Unlock()
		return cc, nil
	}
	c.mu.Unlock()

	cc, err := c.dialConn()
	if err != nil {
		return nil, err
	}

	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		cc.fail(ErrClientClosed)
		return nil, ErrClientClosed
	}
	if cur := c.conns[i]; cur != nil && !cur.dead() {
		// Lost the redial race: keep the winner, retire ours.
		c.mu.Unlock()
		cc.fail(errors.New("rpcnet: duplicate connection discarded"))
		return cur, nil
	}
	c.conns[i] = cc
	c.mu.Unlock()
	return cc, nil
}

// SetCallTimeout bounds each subsequent call. Zero (the default)
// means no timeout. Unlike protocol v1, a timed-out call does not
// poison its connection: the reply, if it ever arrives, is discarded
// by request ID and the connection keeps serving other calls.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.timeout.Store(int64(d))
}

// Call invokes method on the server, gob-encoding arg and decoding
// the response into result (which may be nil to discard it). It
// applies the client's default timeout (SetCallTimeout). Safe for
// concurrent use; concurrent calls share the pool's connections.
func (c *Client) Call(method string, arg, result any) error {
	return c.CallTimeout(method, arg, result, time.Duration(c.timeout.Load()))
}

// CallTimeout is Call with an explicit per-call timeout (zero means
// none), overriding the client default. On timeout the error wraps
// os.ErrDeadlineExceeded, so it satisfies net.Error.Timeout().
func (c *Client) CallTimeout(method string, arg, result any, timeout time.Duration) error {
	bodyBuf := getBuf()
	if err := marshalTo(bodyBuf, arg); err != nil {
		putBuf(bodyBuf)
		return err
	}
	defer putBuf(bodyBuf)

	cc, err := c.conn()
	if err != nil {
		return err
	}
	id := cc.nextID.Add(1)
	ch := make(chan callResult, 1)
	if err := cc.register(id, ch); err != nil {
		// Lost a race with the readLoop failing the conn; one retry on
		// a fresh connection.
		if cc, err = c.conn(); err != nil {
			return err
		}
		id = cc.nextID.Add(1)
		if err := cc.register(id, ch); err != nil {
			return fmt.Errorf("rpcnet: call %s on %s: %w", method, c.addr, err)
		}
	}

	var codec spill.Codec
	if cc.compressOK.Load() {
		codec = cc.codec
	}
	if err := sendFrame(cc.nc, &cc.wmu, id, 0, method, bodyBuf.Bytes(), codec); err != nil {
		cc.deregister(id)
		cc.fail(err)
		return fmt.Errorf("rpcnet: call %s on %s: %w", method, c.addr, err)
	}

	var timerCh <-chan time.Time
	if timeout > 0 {
		timer := time.NewTimer(timeout)
		defer timer.Stop()
		timerCh = timer.C
	}
	select {
	case res := <-ch:
		return c.finish(method, result, res)
	case <-timerCh:
		cc.deregister(id)
		return fmt.Errorf("rpcnet: call %s on %s: %w", method, c.addr, os.ErrDeadlineExceeded)
	}
}

// finish decodes one call's response.
func (c *Client) finish(method string, result any, res callResult) error {
	if res.err != nil {
		return fmt.Errorf("rpcnet: call %s on %s: %w", method, c.addr, res.err)
	}
	defer putBuf(res.body)
	if res.errMsg != "" {
		return &RemoteError{Method: method, Addr: c.addr, Msg: res.errMsg}
	}
	body := res.body.Bytes()
	if res.compressed {
		if c.codec == nil {
			return fmt.Errorf("rpcnet: call %s on %s: compressed response without negotiated codec", method, c.addr)
		}
		dec := getBuf()
		defer putBuf(dec)
		if err := decompressInto(c.codec, dec, body); err != nil {
			return fmt.Errorf("rpcnet: call %s on %s: decompress: %w", method, c.addr, err)
		}
		body = dec.Bytes()
	}
	if result == nil {
		return nil
	}
	return Unmarshal(body, result)
}

// Close tears down every pooled connection. In-flight calls fail.
// Idempotent.
func (c *Client) Close() error {
	c.mu.Lock()
	if c.closed {
		c.mu.Unlock()
		return nil
	}
	c.closed = true
	conns := c.conns
	c.conns = nil
	c.mu.Unlock()
	for _, cc := range conns {
		if cc != nil {
			cc.fail(ErrClientClosed)
		}
	}
	return nil
}
