package rpcnet

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestTimedOutBurstDoesNotExhaustDispatchSlots pins the recovery of
// the per-connection dispatch semaphore: a burst of calls the client
// abandons on timeout fills every one of the connection's
// maxConnConcurrency handler slots with gated handlers, and once those
// handlers finish the slots must all be usable again. A regression
// that leaks a slot per abandoned call would deadlock the second
// phase.
func TestTimedOutBurstDoesNotExhaustDispatchSlots(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gate := make(chan struct{})
	s.Handle("gated", func([]byte) (any, error) {
		<-gate
		return struct{}{}, nil
	})
	s.Handle("quick", func([]byte) (any, error) {
		return struct{}{}, nil
	})

	// Pool size 1 so every call shares one connection's semaphore.
	c, err := Dial(s.Addr(), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Phase 1: twice as many gated calls as there are slots, all with
	// a timeout far shorter than the gate stays shut. Every call is
	// abandoned client-side while its handler (or queued frame) still
	// occupies the server.
	var burst sync.WaitGroup
	for i := 0; i < 2*maxConnConcurrency; i++ {
		burst.Add(1)
		go func() {
			defer burst.Done()
			if err := c.CallTimeout("gated", struct{}{}, nil, 25*time.Millisecond); err == nil {
				t.Error("gated call succeeded before the gate opened")
			}
		}()
	}
	burst.Wait()

	// Phase 2: release the handlers; their deferred slot releases must
	// restore the full concurrency budget.
	close(gate)
	var done sync.WaitGroup
	var ok atomic.Int64
	for i := 0; i < maxConnConcurrency; i++ {
		done.Add(1)
		go func() {
			defer done.Done()
			if err := c.CallTimeout("quick", struct{}{}, nil, 10*time.Second); err != nil {
				t.Errorf("post-burst call failed: %v", err)
				return
			}
			ok.Add(1)
		}()
	}
	done.Wait()
	if got := ok.Load(); got != maxConnConcurrency {
		t.Fatalf("only %d/%d post-burst calls succeeded; dispatch slots were not recovered", got, maxConnConcurrency)
	}
}
