package rpcnet

import (
	"testing"

	"hetmr/internal/testutil"
)

// TestMain fails the package if any test leaves a goroutine behind —
// readLoops, dispatch workers and pool dials must all wind down when
// their Client/Server closes.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}
