package rpcnet

import (
	"errors"
	"net"
	"testing"
	"time"
)

func TestCallTimeout(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("sleep", func([]byte) (any, error) {
		time.Sleep(300 * time.Millisecond)
		return struct{}{}, nil
	})
	s.Handle("quick", func([]byte) (any, error) {
		return struct{}{}, nil
	})

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.SetCallTimeout(50 * time.Millisecond)
	start := time.Now()
	err = c.Call("sleep", struct{}{}, nil)
	if err == nil {
		t.Fatal("call outlived its timeout")
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("error %v is not a net timeout", err)
	}
	if elapsed := time.Since(start); elapsed > 250*time.Millisecond {
		t.Errorf("timed-out call took %v with a 50ms timeout", elapsed)
	}

	// Without a timeout the slow call completes; a fresh connection is
	// needed — the timed-out one may hold a half-read frame.
	c2, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if err := c2.Call("sleep", struct{}{}, nil); err != nil {
		t.Fatalf("untimed call failed: %v", err)
	}
	// Zero restores the unbounded default.
	c2.SetCallTimeout(time.Millisecond)
	c2.SetCallTimeout(0)
	if err := c2.Call("quick", struct{}{}, nil); err != nil {
		t.Fatalf("call after clearing the timeout failed: %v", err)
	}
}
