package rpcnet

import (
	"bytes"
	"testing"
)

func benchServer(b *testing.B, opts ...Option) (*Server, *Client) {
	b.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	s.Handle("echo", func(body []byte) (any, error) {
		var blob []byte
		if err := Unmarshal(body, &blob); err != nil {
			return nil, err
		}
		return blob, nil
	})
	c, err := Dial(s.Addr(), opts...)
	if err != nil {
		s.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close(); s.Close() })
	return s, c
}

// BenchmarkCallSmall measures RPC round-trip latency for tiny
// payloads (the heartbeat path).
func BenchmarkCallSmall(b *testing.B) {
	_, c := benchServer(b)
	arg := []byte("ping")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out []byte
		if err := c.Call("echo", arg, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallBlock64K measures the block-fetch path (a DFS block
// crossing the loopback TCP stack — the hop the paper measured).
func BenchmarkCallBlock64K(b *testing.B) {
	_, c := benchServer(b)
	blob := make([]byte, 64<<10)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out []byte
		if err := c.Call("echo", blob, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallSmallConcurrent measures small-call latency with many
// callers multiplexed on one pooled client — the win the tagged-frame
// protocol exists for (v1 serialized every call behind one lock).
func BenchmarkCallSmallConcurrent(b *testing.B) {
	_, c := benchServer(b)
	arg := []byte("ping")
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			var out []byte
			if err := c.Call("echo", arg, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCallBlock64KConcurrent measures aggregate block throughput
// with concurrent callers sharing the pool.
func BenchmarkCallBlock64KConcurrent(b *testing.B) {
	_, c := benchServer(b)
	blob := make([]byte, 64<<10)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			var out []byte
			if err := c.Call("echo", blob, &out); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkCallBlock64KSnap measures the block path with the snap
// codec negotiated and a compressible payload — what shuffle fetches
// of text-like intermediate data see.
func BenchmarkCallBlock64KSnap(b *testing.B) {
	_, c := benchServer(b, WithCodec("snap"))
	blob := bytes.Repeat([]byte("hetmr shuffle partition payload "), (64<<10)/32)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out []byte
		if err := c.Call("echo", blob, &out); err != nil {
			b.Fatal(err)
		}
	}
}
