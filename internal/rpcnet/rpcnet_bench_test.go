package rpcnet

import "testing"

func benchServer(b *testing.B) (*Server, *Client) {
	b.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	s.Handle("echo", func(body []byte) (any, error) {
		var blob []byte
		if err := Unmarshal(body, &blob); err != nil {
			return nil, err
		}
		return blob, nil
	})
	c, err := Dial(s.Addr())
	if err != nil {
		s.Close()
		b.Fatal(err)
	}
	b.Cleanup(func() { c.Close(); s.Close() })
	return s, c
}

// BenchmarkCallSmall measures RPC round-trip latency for tiny
// payloads (the heartbeat path).
func BenchmarkCallSmall(b *testing.B) {
	_, c := benchServer(b)
	arg := []byte("ping")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out []byte
		if err := c.Call("echo", arg, &out); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCallBlock64K measures the block-fetch path (a DFS block
// crossing the loopback TCP stack — the hop the paper measured).
func BenchmarkCallBlock64K(b *testing.B) {
	_, c := benchServer(b)
	blob := make([]byte, 64<<10)
	b.SetBytes(int64(len(blob)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var out []byte
		if err := c.Call("echo", blob, &out); err != nil {
			b.Fatal(err)
		}
	}
}
