package rpcnet

import (
	"bytes"
	"crypto/rand"
	"encoding/binary"
	"fmt"
	"sync"
	"testing"
	"time"
)

// echoTagged is a handler that returns its []byte argument unchanged.
func echoTagged(body []byte) (any, error) {
	var blob []byte
	if err := Unmarshal(body, &blob); err != nil {
		return nil, err
	}
	return blob, nil
}

// TestConcurrentMultiplexedCalls drives one pooled client from many
// goroutines with mixed small and 64K payloads. Every response must
// come back on the request ID that asked for it — each payload is
// tagged with the caller's identity and verified on return.
func TestConcurrentMultiplexedCalls(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("echo", echoTagged)

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	const (
		goroutines = 16
		callsEach  = 40
	)
	big := make([]byte, 64<<10)
	rand.Read(big)
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < callsEach; i++ {
				// Tag the payload with (goroutine, call) so a response
				// routed to the wrong caller is caught by content.
				var payload []byte
				if i%3 == 0 {
					payload = append([]byte(nil), big...)
				} else {
					payload = make([]byte, 16)
				}
				binary.BigEndian.PutUint64(payload[0:8], uint64(g))
				binary.BigEndian.PutUint64(payload[8:16], uint64(i))
				var got []byte
				if err := c.Call("echo", payload, &got); err != nil {
					errs <- fmt.Errorf("goroutine %d call %d: %w", g, i, err)
					return
				}
				if !bytes.Equal(got, payload) {
					errs <- fmt.Errorf("goroutine %d call %d: response routed to wrong caller (len %d vs %d)", g, i, len(got), len(payload))
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestRedialAfterTimeout proves the v2 client recovers on the SAME
// client after a timed-out call — the v1 client left its single
// connection permanently wedged mid-frame.
func TestRedialAfterTimeout(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	gate := make(chan struct{})
	s.Handle("block", func([]byte) (any, error) {
		<-gate
		return struct{}{}, nil
	})
	s.Handle("quick", func([]byte) (any, error) {
		return "pong", nil
	})

	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	defer close(gate)

	if err := c.CallTimeout("block", struct{}{}, nil, 30*time.Millisecond); err == nil {
		t.Fatal("blocked call outlived its timeout")
	}
	// The same client — and the same connection — must keep working.
	for i := 0; i < 5; i++ {
		var out string
		if err := c.Call("quick", struct{}{}, &out); err != nil {
			t.Fatalf("call %d after timeout failed: %v", i, err)
		}
		if out != "pong" {
			t.Fatalf("call %d after timeout returned %q", i, out)
		}
	}
}

// TestLateReplyDiscarded: a response that arrives after its call
// timed out must be dropped by ID, not delivered to the next call.
func TestLateReplyDiscarded(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("slow", func(body []byte) (any, error) {
		time.Sleep(80 * time.Millisecond)
		return "slow-result", nil
	})
	s.Handle("fast", func([]byte) (any, error) {
		return "fast-result", nil
	})

	c, err := Dial(s.Addr(), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.CallTimeout("slow", struct{}{}, nil, 10*time.Millisecond); err == nil {
		t.Fatal("slow call outlived its timeout")
	}
	// Wait for the late reply to land on the shared connection, then
	// make a fresh call: it must see its own result.
	time.Sleep(120 * time.Millisecond)
	var out string
	if err := c.Call("fast", struct{}{}, &out); err != nil {
		t.Fatal(err)
	}
	if out != "fast-result" {
		t.Fatalf("late reply leaked into the next call: got %q", out)
	}
}

// TestRedialAfterConnDeath: killing the transport under the client
// must fail in-flight calls but heal on the next call.
func TestRedialAfterConnDeath(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("quick", func([]byte) (any, error) { return "ok", nil })

	c, err := Dial(s.Addr(), WithPoolSize(1))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var out string
	if err := c.Call("quick", struct{}{}, &out); err != nil {
		t.Fatal(err)
	}
	// Sever the live connection out from under the client.
	c.mu.Lock()
	c.conns[0].nc.Close()
	c.mu.Unlock()
	// The pool redials; at most one call may observe the dying conn.
	var lastErr error
	for i := 0; i < 3; i++ {
		if lastErr = c.Call("quick", struct{}{}, &out); lastErr == nil {
			return
		}
	}
	t.Fatalf("client did not recover after conn death: %v", lastErr)
}

// TestCompressedRoundTrip exercises the negotiated-codec path both
// directions with compressible and incompressible payloads.
func TestCompressedRoundTrip(t *testing.T) {
	for _, codec := range []string{"snap", "flate"} {
		t.Run(codec, func(t *testing.T) {
			s, err := NewServer("127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			s.Handle("echo", echoTagged)

			c, err := Dial(s.Addr(), WithCodec(codec))
			if err != nil {
				t.Fatal(err)
			}
			defer c.Close()

			compressible := bytes.Repeat([]byte("partition payload "), 16<<10/18)
			random := make([]byte, 64<<10)
			rand.Read(random)
			tiny := []byte("ping")
			for name, payload := range map[string][]byte{
				"compressible": compressible, "random": random, "tiny": tiny,
			} {
				var got []byte
				if err := c.Call("echo", payload, &got); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if !bytes.Equal(got, payload) {
					t.Fatalf("%s: corrupted over compressed wire", name)
				}
			}
		})
	}
}

// TestDialUnknownCodec: proposing a codec the registry doesn't know
// fails at Dial, not at first call.
func TestDialUnknownCodec(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", WithCodec("zstd-nope")); err == nil {
		t.Fatal("unknown codec accepted at Dial")
	}
}

// TestServerRejectsUnknownCodecGracefully: a server that can't decode
// the proposed codec answers with an empty acceptance and the
// connection still works, uncompressed.
func TestCodecNegotiationFallback(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("echo", echoTagged)
	// Dial with no codec at all: hello carries an empty name and the
	// server must answer in kind.
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	payload := bytes.Repeat([]byte("x"), 8<<10)
	var got []byte
	if err := c.Call("echo", payload, &got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("uncompressed fallback corrupted payload")
	}
}
