package rpcnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"net"
	"sync"
	"testing"
)

// FuzzReadFrame feeds arbitrary bytes to the frame decoder. Malformed
// input — lying length prefixes, truncated headers, meta running past
// the frame — must return an error, never panic, and never allocate
// past MaxFrame: the decoder pre-grows at most preGrowCap and then
// only as real bytes arrive.
func FuzzReadFrame(f *testing.F) {
	// Well-formed frames as seeds.
	good := func(id uint64, flags byte, meta string, body []byte) []byte {
		var buf bytes.Buffer
		var wmu sync.Mutex
		if err := writeFrame(&buf, &wmu, id, flags, meta, body); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(good(1, 0, "echo", []byte("hello")))
	f.Add(good(7, frameFlagResponse, "", bytes.Repeat([]byte("x"), 100)))
	// Length prefix claiming MaxFrame with no body behind it.
	var lying [frameHeaderLen]byte
	binary.BigEndian.PutUint32(lying[0:4], MaxFrame)
	f.Add(lying[:])
	// Length prefix over MaxFrame.
	binary.BigEndian.PutUint32(lying[0:4], MaxFrame+1)
	f.Add(lying[:])
	// metaLen pointing past the frame end.
	var badMeta [frameHeaderLen]byte
	binary.BigEndian.PutUint32(badMeta[0:4], frameFixedLen+1)
	binary.BigEndian.PutUint16(badMeta[13:15], 5000)
	f.Add(badMeta[:])

	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		fr, err := readFrame(br)
		if err != nil {
			return
		}
		if int64(len(fr.meta))+int64(fr.body.Len()) > int64(len(data)) {
			t.Fatalf("decoded more bytes (%d meta + %d body) than the input held (%d)",
				len(fr.meta), fr.body.Len(), len(data))
		}
		putBuf(fr.body)
	})
}

// FuzzReadHello feeds arbitrary bytes to the hello decoder.
func FuzzReadHello(f *testing.F) {
	f.Add([]byte("hmr2\x04snap"))
	f.Add([]byte("hmr2\x00"))
	f.Add([]byte("junk\x04snap"))
	f.Fuzz(func(t *testing.T, data []byte) {
		br := bufio.NewReader(bytes.NewReader(data))
		name, err := readHello(br)
		if err == nil && len(name) > 255 {
			t.Fatalf("hello name longer than the 1-byte length allows: %d", len(name))
		}
	})
}

// FuzzServeConn runs raw fuzz bytes through a live server connection:
// whatever arrives on the socket — garbage hello, corrupt frames,
// truncated gob bodies — must never crash the server.
func FuzzServeConn(f *testing.F) {
	f.Add([]byte("hmr2\x00"))
	f.Add(append([]byte("hmr2\x04snap"), 0, 0, 0, 30))
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		f.Fatal(err)
	}
	f.Cleanup(func() { s.Close() })
	s.Handle("echo", func(b []byte) (any, error) { return b, nil })
	f.Fuzz(func(t *testing.T, data []byte) {
		conn, err := net.Dial("tcp", s.Addr())
		if err != nil {
			t.Skip(err)
		}
		conn.Write(data)
		conn.Close()
	})
}
