// Package rpcnet is the wire layer of the TCP-backed distributed
// runtime (internal/netmr). Hadoop's daemons talk Hadoop IPC over
// TCP; this is the equivalent substrate, built only on net,
// encoding/gob and the repo's own spill codecs.
//
// The protocol (v2) is a multiplexed, tagged-frame stream. One
// connection carries any number of concurrent in-flight calls: every
// request frame carries a caller-chosen request ID, the server
// dispatches handlers concurrently per connection, and response
// frames come back in completion order — the ID, not the arrival
// order, matches a response to its call. A connection starts with a
// tiny hello exchange that negotiates an optional payload codec
// (spill.CodecByName); after it, either side may compress any frame's
// body, flagged per frame. See ARCHITECTURE.md ("Wire protocol") for
// the frame layout.
//
// Client is a connection pool over that protocol: calls fan out over
// a few multiplexed connections, a call that times out leaves its
// connection usable (the late response is discarded by ID), and a
// connection that dies is redialed transparently on the next call.
package rpcnet

import (
	"bytes"
	"encoding/gob"
	"errors"
	"fmt"
)

// MaxFrame bounds a single message (a DFS block plus envelope must
// fit; 128 MB covers 64 MB blocks comfortably).
const MaxFrame = 128 << 20

// ErrFrameTooLarge is returned for frames above MaxFrame.
var ErrFrameTooLarge = errors.New("rpcnet: frame exceeds maximum size")

// ErrClientClosed is returned by calls on a Client after Close.
var ErrClientClosed = errors.New("rpcnet: client closed")

// errMalformedFrame reports a frame whose header lies about its own
// shape (length below the fixed minimum, meta running past the end).
var errMalformedFrame = errors.New("rpcnet: malformed frame")

// Marshal gob-encodes v.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := marshalTo(&buf, v); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// marshalTo gob-encodes v into buf — the pooled-buffer encode path
// Call and the server dispatcher use.
func marshalTo(buf *bytes.Buffer, v any) error {
	if err := gob.NewEncoder(buf).Encode(v); err != nil {
		return fmt.Errorf("rpcnet: encode: %w", err)
	}
	return nil
}

// Unmarshal gob-decodes data into v (a pointer).
func Unmarshal(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("rpcnet: decode: %w", err)
	}
	return nil
}

// Handler serves one method: it decodes its argument from req, does
// the work, and returns a gob-encodable result. Handlers run
// concurrently — across connections and across the calls multiplexed
// on one connection — and must be safe for that. The body slice is
// only valid until the handler returns.
type Handler func(body []byte) (any, error)

// RemoteError is an error reported by the remote handler.
type RemoteError struct {
	Method string
	Addr   string
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpcnet: remote %s at %s: %s", e.Method, e.Addr, e.Msg)
}
