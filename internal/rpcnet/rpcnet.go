// Package rpcnet is the wire layer of the TCP-backed distributed
// runtime (internal/netmr): length-framed, gob-encoded request/response
// messages over net.Conn, plus a tiny multiplexing server. Hadoop's
// daemons talk Hadoop IPC over TCP; this is the equivalent substrate,
// built only on net and encoding/gob.
package rpcnet

import (
	"bytes"
	"encoding/binary"
	"encoding/gob"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// MaxFrame bounds a single message (a DFS block plus envelope must
// fit; 128 MB covers 64 MB blocks comfortably).
const MaxFrame = 128 << 20

// ErrFrameTooLarge is returned for frames above MaxFrame.
var ErrFrameTooLarge = errors.New("rpcnet: frame exceeds maximum size")

// Request is the envelope of every call: a method name and a
// gob-encoded body.
type Request struct {
	Method string
	Body   []byte
}

// Response is the envelope of every reply: an error string (empty on
// success) and a gob-encoded body.
type Response struct {
	Err  string
	Body []byte
}

// Marshal gob-encodes v.
func Marshal(v any) ([]byte, error) {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return nil, fmt.Errorf("rpcnet: encode: %w", err)
	}
	return buf.Bytes(), nil
}

// Unmarshal gob-decodes data into v (a pointer).
func Unmarshal(data []byte, v any) error {
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return fmt.Errorf("rpcnet: decode: %w", err)
	}
	return nil
}

// writeFrame sends one length-prefixed gob value.
func writeFrame(conn net.Conn, v any) error {
	payload, err := Marshal(v)
	if err != nil {
		return err
	}
	if len(payload) > MaxFrame {
		return ErrFrameTooLarge
	}
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
	if _, err := conn.Write(hdr[:]); err != nil {
		return err
	}
	_, err = conn.Write(payload)
	return err
}

// readFrame receives one length-prefixed gob value into v.
func readFrame(conn net.Conn, v any) error {
	var hdr [4]byte
	if _, err := io.ReadFull(conn, hdr[:]); err != nil {
		return err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(conn, payload); err != nil {
		return err
	}
	return Unmarshal(payload, v)
}

// Handler serves one method: it decodes its argument from req, does
// the work, and returns a gob-encodable result.
type Handler func(body []byte) (any, error)

// Server is a minimal RPC server: one TCP listener, one goroutine per
// connection, methods dispatched by name.
type Server struct {
	ln       net.Listener
	mu       sync.Mutex
	handlers map[string]Handler
	conns    map[net.Conn]struct{}
	wg       sync.WaitGroup
	closed   bool
}

// NewServer listens on addr ("127.0.0.1:0" for an ephemeral port).
func NewServer(addr string) (*Server, error) {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: listen: %w", err)
	}
	s := &Server{
		ln:       ln,
		handlers: make(map[string]Handler),
		conns:    make(map[net.Conn]struct{}),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s, nil
}

// Addr returns the server's listen address.
func (s *Server) Addr() string { return s.ln.Addr().String() }

// Handle registers a method handler. Registration after Close is a
// no-op; re-registering a name replaces the handler.
func (s *Server) Handle(method string, h Handler) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.handlers[method] = h
}

func (s *Server) lookup(method string) (Handler, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	h, ok := s.handlers[method]
	return h, ok
}

func (s *Server) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return // listener closed
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

// serveConn handles sequential requests on one connection until EOF.
func (s *Server) serveConn(conn net.Conn) {
	for {
		var req Request
		if err := readFrame(conn, &req); err != nil {
			return // EOF or broken peer
		}
		var resp Response
		h, ok := s.lookup(req.Method)
		if !ok {
			resp.Err = fmt.Sprintf("rpcnet: unknown method %q", req.Method)
		} else if result, err := h(req.Body); err != nil {
			resp.Err = err.Error()
		} else if body, err := Marshal(result); err != nil {
			resp.Err = err.Error()
		} else {
			resp.Body = body
		}
		if err := writeFrame(conn, &resp); err != nil {
			return
		}
	}
}

// Close stops the listener, severs live connections and waits for
// connection goroutines to drain. Clients with in-flight calls get a
// connection error, not a hang.
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	for conn := range s.conns {
		conn.Close()
	}
	s.mu.Unlock()
	err := s.ln.Close()
	s.wg.Wait()
	return err
}

// Client is a single-connection RPC client. Calls are serialized per
// client; create several clients for concurrency.
type Client struct {
	mu      sync.Mutex
	conn    net.Conn
	addr    string
	timeout time.Duration
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, fmt.Errorf("rpcnet: dial %s: %w", addr, err)
	}
	return &Client{conn: conn, addr: addr}, nil
}

// SetCallTimeout bounds each subsequent Call's full round-trip: the
// connection deadline is set d into the future for the call and
// cleared afterwards. Zero restores the unbounded default. A call that
// hits the deadline returns a net timeout error
// (errors.Is(err, os.ErrDeadlineExceeded)) and leaves the connection
// unusable — a frame may be half-transferred — so redial to continue.
func (c *Client) SetCallTimeout(d time.Duration) {
	c.mu.Lock()
	c.timeout = d
	c.mu.Unlock()
}

// Call invokes method with arg, decoding the reply into result (a
// pointer, or nil to discard).
func (c *Client) Call(method string, arg, result any) error {
	body, err := Marshal(arg)
	if err != nil {
		return err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.timeout > 0 {
		c.conn.SetDeadline(time.Now().Add(c.timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	if err := writeFrame(c.conn, &Request{Method: method, Body: body}); err != nil {
		return fmt.Errorf("rpcnet: call %s on %s: %w", method, c.addr, err)
	}
	var resp Response
	if err := readFrame(c.conn, &resp); err != nil {
		return fmt.Errorf("rpcnet: reply %s from %s: %w", method, c.addr, err)
	}
	if resp.Err != "" {
		return &RemoteError{Method: method, Addr: c.addr, Msg: resp.Err}
	}
	if result == nil {
		return nil
	}
	return Unmarshal(resp.Body, result)
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// RemoteError is an error reported by the remote handler.
type RemoteError struct {
	Method string
	Addr   string
	Msg    string
}

// Error implements error.
func (e *RemoteError) Error() string {
	return fmt.Sprintf("rpcnet: remote %s at %s: %s", e.Method, e.Addr, e.Msg)
}
