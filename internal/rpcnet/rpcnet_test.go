package rpcnet

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"testing/quick"
)

type echoArg struct{ Msg string }
type echoReply struct{ Msg string }

func newEchoServer(t *testing.T) *Server {
	t.Helper()
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Handle("echo", func(body []byte) (any, error) {
		var a echoArg
		if err := Unmarshal(body, &a); err != nil {
			return nil, err
		}
		return echoReply{Msg: a.Msg}, nil
	})
	s.Handle("fail", func([]byte) (any, error) {
		return nil, errors.New("handler exploded")
	})
	t.Cleanup(func() { s.Close() })
	return s
}

func TestCallRoundTrip(t *testing.T) {
	s := newEchoServer(t)
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	var reply echoReply
	if err := c.Call("echo", echoArg{Msg: "hello"}, &reply); err != nil {
		t.Fatal(err)
	}
	if reply.Msg != "hello" {
		t.Errorf("reply = %q", reply.Msg)
	}
}

func TestSequentialCallsOneConn(t *testing.T) {
	s := newEchoServer(t)
	c, _ := Dial(s.Addr())
	defer c.Close()
	for i := 0; i < 50; i++ {
		var reply echoReply
		msg := fmt.Sprintf("msg-%d", i)
		if err := c.Call("echo", echoArg{Msg: msg}, &reply); err != nil {
			t.Fatal(err)
		}
		if reply.Msg != msg {
			t.Fatalf("call %d: %q", i, reply.Msg)
		}
	}
}

func TestRemoteError(t *testing.T) {
	s := newEchoServer(t)
	c, _ := Dial(s.Addr())
	defer c.Close()
	err := c.Call("fail", echoArg{}, nil)
	var re *RemoteError
	if !errors.As(err, &re) {
		t.Fatalf("expected RemoteError, got %v", err)
	}
	if !strings.Contains(re.Error(), "handler exploded") {
		t.Errorf("error = %v", re)
	}
}

func TestUnknownMethod(t *testing.T) {
	s := newEchoServer(t)
	c, _ := Dial(s.Addr())
	defer c.Close()
	err := c.Call("nope", echoArg{}, nil)
	if err == nil || !strings.Contains(err.Error(), "unknown method") {
		t.Errorf("err = %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	s := newEchoServer(t)
	var wg sync.WaitGroup
	errs := make(chan error, 16)
	for w := 0; w < 16; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			c, err := Dial(s.Addr())
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for i := 0; i < 20; i++ {
				var reply echoReply
				msg := fmt.Sprintf("w%d-%d", w, i)
				if err := c.Call("echo", echoArg{Msg: msg}, &reply); err != nil {
					errs <- err
					return
				}
				if reply.Msg != msg {
					errs <- fmt.Errorf("w%d: got %q want %q", w, reply.Msg, msg)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}
}

func TestLargePayload(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("blob", func(body []byte) (any, error) {
		var data []byte
		if err := Unmarshal(body, &data); err != nil {
			return nil, err
		}
		return data, nil
	})
	c, _ := Dial(s.Addr())
	defer c.Close()
	blob := make([]byte, 4<<20)
	for i := range blob {
		blob[i] = byte(i * 13)
	}
	var back []byte
	if err := c.Call("blob", blob, &back); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, blob) {
		t.Fatal("blob corrupted in transit")
	}
}

func TestServerCloseIdempotent(t *testing.T) {
	s := newEchoServer(t)
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Errorf("second close: %v", err)
	}
	if _, err := Dial(s.Addr()); err == nil {
		t.Error("dial after close should fail")
	}
}

func TestDialUnreachable(t *testing.T) {
	if _, err := Dial("127.0.0.1:1"); err == nil {
		t.Error("dial to closed port should fail")
	}
}

// Property: Marshal/Unmarshal round-trips structured values.
func TestMarshalRoundTripProperty(t *testing.T) {
	type payload struct {
		A int64
		B string
		C []byte
		D map[string]int
	}
	f := func(a int64, b string, c []byte) bool {
		in := payload{A: a, B: b, C: c, D: map[string]int{b: int(a)}}
		data, err := Marshal(in)
		if err != nil {
			return false
		}
		var out payload
		if err := Unmarshal(data, &out); err != nil {
			return false
		}
		return out.A == in.A && out.B == in.B && bytes.Equal(out.C, in.C)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
