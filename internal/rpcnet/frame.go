package rpcnet

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"

	"hetmr/internal/metrics"
	"hetmr/internal/spill"
)

// Wire format, after the hello exchange (see below): a stream of
// frames, each
//
//	[4B big-endian length n] [8B big-endian request ID]
//	[1B flags] [2B big-endian metaLen] [metaLen bytes meta] [body]
//
// where n counts everything after the length field (so n =
// 11 + metaLen + len(body), n ≤ MaxFrame). meta is the method name on
// requests and the error text on responses; body is the gob-encoded
// argument or result, optionally compressed (frameFlagCompressed) with
// the codec the hello exchange agreed on.
//
// Hello: each side opens with the 4-byte magic "hmr2", one length
// byte, and that many bytes of codec name. The client proposes a
// codec (or none); the server answers with the same name if it can
// decode it, empty otherwise. Either side compresses only after it
// has seen the other side accept — the exchange is asynchronous, so a
// client never waits for a server that has stopped talking.
const (
	frameFixedLen  = 8 + 1 + 2 // id + flags + metaLen, counted by the length field
	frameHeaderLen = 4 + frameFixedLen

	frameFlagResponse   = 1 << 0
	frameFlagCompressed = 1 << 1

	// frameMaxMeta bounds the meta field (2-byte length on the wire);
	// longer error texts are truncated.
	frameMaxMeta = 1<<16 - 1

	// compressMin is the smallest body worth running through the
	// negotiated codec; tiny control messages skip it.
	compressMin = 1 << 10

	// maxPooledBuf caps the capacity of buffers returned to the pool,
	// so one jumbo frame doesn't pin megabytes forever.
	maxPooledBuf = 4 << 20

	// preGrowCap caps the speculative Grow before a body read; the
	// rest grows only as real bytes arrive, so a lying length prefix
	// cannot force a huge allocation.
	preGrowCap = 256 << 10
)

var helloMagic = [4]byte{'h', 'm', 'r', '2'}

// bufPool recycles frame body and header buffers across calls and
// connections.
var bufPool = sync.Pool{New: func() any { return new(bytes.Buffer) }}

func getBuf() *bytes.Buffer { return bufPool.Get().(*bytes.Buffer) }

func putBuf(b *bytes.Buffer) {
	if b == nil || b.Cap() > maxPooledBuf {
		return
	}
	b.Reset()
	bufPool.Put(b)
}

// frame is one decoded wire frame. body is a pooled buffer the
// consumer must release with putBuf.
type frame struct {
	id    uint64
	flags byte
	meta  string
	body  *bytes.Buffer
}

// readFrame decodes the next frame from br. The returned body buffer
// is pooled; the caller owns it.
func readFrame(br *bufio.Reader) (frame, error) {
	var hdr [frameHeaderLen]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return frame{}, err
	}
	n := binary.BigEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return frame{}, ErrFrameTooLarge
	}
	if n < frameFixedLen {
		return frame{}, errMalformedFrame
	}
	id := binary.BigEndian.Uint64(hdr[4:12])
	flags := hdr[12]
	metaLen := int(binary.BigEndian.Uint16(hdr[13:15]))
	bodyLen := int64(n) - frameFixedLen - int64(metaLen)
	if bodyLen < 0 {
		return frame{}, errMalformedFrame
	}
	meta := ""
	if metaLen > 0 {
		mb := make([]byte, metaLen)
		if _, err := io.ReadFull(br, mb); err != nil {
			return frame{}, err
		}
		meta = string(mb)
	}
	body := getBuf()
	if bodyLen > 0 {
		grow := bodyLen
		if grow > preGrowCap {
			grow = preGrowCap
		}
		body.Grow(int(grow))
		if _, err := io.CopyN(body, br, bodyLen); err != nil {
			putBuf(body)
			if err == io.EOF {
				err = io.ErrUnexpectedEOF
			}
			return frame{}, err
		}
	}
	return frame{id: id, flags: flags, meta: meta, body: body}, nil
}

// writeFrame sends one frame under wmu, header and body in a single
// writev when the connection supports it.
func writeFrame(w io.Writer, wmu *sync.Mutex, id uint64, flags byte, meta string, body []byte) error {
	if len(meta) > frameMaxMeta {
		meta = meta[:frameMaxMeta]
	}
	n := frameFixedLen + len(meta) + len(body)
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	hdrBuf := getBuf()
	var hdr [frameHeaderLen]byte
	binary.BigEndian.PutUint32(hdr[0:4], uint32(n))
	binary.BigEndian.PutUint64(hdr[4:12], id)
	hdr[12] = flags
	binary.BigEndian.PutUint16(hdr[13:15], uint16(len(meta)))
	hdrBuf.Write(hdr[:])
	hdrBuf.WriteString(meta)
	wmu.Lock()
	var err error
	if len(body) > 0 {
		bufs := net.Buffers{hdrBuf.Bytes(), body}
		_, err = bufs.WriteTo(w)
	} else {
		_, err = w.Write(hdrBuf.Bytes())
	}
	wmu.Unlock()
	putBuf(hdrBuf)
	return err
}

// sendFrame is the shared send path: it compresses the body when the
// peer accepted a codec and compression wins, meters raw vs on-wire
// payload bytes, and writes the frame.
func sendFrame(w io.Writer, wmu *sync.Mutex, id uint64, flags byte, meta string, rawBody []byte, codec spill.Codec) error {
	body := rawBody
	var compBuf *bytes.Buffer
	if codec != nil && len(rawBody) >= compressMin {
		compBuf = getBuf()
		if err := compressInto(codec, compBuf, rawBody); err == nil && compBuf.Len() < len(rawBody) {
			body = compBuf.Bytes()
			flags |= frameFlagCompressed
		}
	}
	metrics.WireBytesRaw.Add(int64(len(rawBody)))
	metrics.WireBytesOnWire.Add(int64(len(body)))
	err := writeFrame(w, wmu, id, flags, meta, body)
	putBuf(compBuf)
	return err
}

// compressInto runs src through one codec frame into dst.
func compressInto(codec spill.Codec, dst *bytes.Buffer, src []byte) error {
	cw := codec.NewWriter(dst)
	if _, err := cw.Write(src); err != nil {
		return err
	}
	return cw.Close()
}

// decompressInto inflates a compressed frame body into dst, bounded
// by MaxFrame.
func decompressInto(codec spill.Codec, dst *bytes.Buffer, src []byte) error {
	cr, err := codec.NewReader(bytes.NewReader(src))
	if err != nil {
		return err
	}
	defer cr.Close()
	n, err := io.Copy(dst, io.LimitReader(cr, MaxFrame+1))
	if err != nil {
		return err
	}
	if n > MaxFrame {
		return ErrFrameTooLarge
	}
	return nil
}

// writeHello sends this side's hello: magic, codec-name length, name.
func writeHello(w io.Writer, codecName string) error {
	if len(codecName) > 255 {
		return fmt.Errorf("rpcnet: codec name %q too long", codecName)
	}
	hello := make([]byte, 0, len(helloMagic)+1+len(codecName))
	hello = append(hello, helloMagic[:]...)
	hello = append(hello, byte(len(codecName)))
	hello = append(hello, codecName...)
	_, err := w.Write(hello)
	return err
}

// readHello consumes the peer's hello and returns its codec name
// (empty when the peer proposed or accepted none).
func readHello(br *bufio.Reader) (string, error) {
	var hdr [len(helloMagic) + 1]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return "", err
	}
	if !bytes.Equal(hdr[:len(helloMagic)], helloMagic[:]) {
		return "", fmt.Errorf("rpcnet: bad protocol magic %q", hdr[:len(helloMagic)])
	}
	n := int(hdr[len(helloMagic)])
	if n == 0 {
		return "", nil
	}
	name := make([]byte, n)
	if _, err := io.ReadFull(br, name); err != nil {
		return "", err
	}
	return string(name), nil
}
