package rpcnet

import (
	"strings"
	"testing"
)

func TestMarshalUnencodable(t *testing.T) {
	if _, err := Marshal(make(chan int)); err == nil {
		t.Error("marshalling a channel should fail")
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	var out int
	if err := Unmarshal([]byte{0xde, 0xad}, &out); err == nil {
		t.Error("decoding garbage should fail")
	}
}

func TestHandlerResultMarshalError(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("bad", func([]byte) (any, error) {
		return make(chan int), nil // unencodable result
	})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Call("bad", 1, nil); err == nil {
		t.Error("unencodable handler result should surface as an error")
	}
}

func TestHandlerBadArgument(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	s.Handle("typed", func(body []byte) (any, error) {
		var v struct{ N int }
		if err := Unmarshal(body, &v); err != nil {
			return nil, err
		}
		return v.N, nil
	})
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Send a string where a struct is expected.
	err = c.Call("typed", "not-a-struct", nil)
	if err == nil || !strings.Contains(err.Error(), "decode") {
		t.Errorf("type mismatch error = %v", err)
	}
}

func TestCallAfterServerClose(t *testing.T) {
	s, err := NewServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	s.Handle("echo", func(b []byte) (any, error) { return b, nil })
	c, err := Dial(s.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	s.Close()
	if err := c.Call("echo", 1, nil); err == nil {
		t.Error("call after server close should fail")
	}
}
