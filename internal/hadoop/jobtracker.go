package hadoop

import (
	"fmt"

	"hetmr/internal/cluster"
	"hetmr/internal/perfmodel"
	"hetmr/internal/sim"
)

// TaskAttempt is one attempt at running a task (re-executions after
// tracker failure and speculative duplicates are separate attempts).
// Map attempts carry a Split; reduce attempts carry ReduceIndex >= 0.
type TaskAttempt struct {
	job         *jobState
	Split       *Split
	ReduceIndex int // -1 for map attempts
	Attempt     int
	Tracker     string
	Started     sim.Time
}

// IsReduce reports whether this is a reduce-task attempt.
func (a *TaskAttempt) IsReduce() bool { return a.ReduceIndex >= 0 }

// Assignment is the JobTracker's heartbeat response: at most one new
// task (0.19 assigned a single task per heartbeat).
type Assignment struct {
	Attempt *TaskAttempt
}

type taskReport struct {
	attempt *TaskAttempt
	stat    TaskStat
}

type msgKind int

const (
	msgHeartbeat msgKind = iota
	msgSubmit
	msgShutdown
)

type jtMsg struct {
	kind            msgKind
	tracker         *TaskTracker
	freeSlots       int
	freeReduceSlots int
	completed       []taskReport
	reply           *sim.Mailbox[Assignment]
	job             *jobState
}

type jobState struct {
	job      *Job
	handle   *JobHandle
	result   *JobResult
	pending  []int
	running  map[int][]*TaskAttempt
	done     map[int]bool
	finished bool

	// Reduce phase state: reduces launch once every map is done.
	pendingReduces []int
	runningReduces map[int][]*TaskAttempt
	doneReduces    map[int]bool
	doneReduceN    int
	mapOutputBytes int64

	doneTasks     int
	totalTaskTime sim.Time
	attempts      int
}

// mapsDone reports whether the map phase has completed.
func (js *jobState) mapsDone() bool { return js.doneTasks >= len(js.job.Splits) }

type trackerInfo struct {
	tt     *TaskTracker
	lastHB sim.Time
	dead   bool
}

// JobTracker is the master daemon: it queues jobs, partitions them
// into tasks, assigns tasks on heartbeats with locality preference,
// collects completions (serialized housekeeping), detects lost
// trackers and re-queues their work.
type JobTracker struct {
	eng   *sim.Engine
	clus  *cluster.Cluster
	cfg   Config
	inbox sim.Mailbox[jtMsg]

	trackers map[string]*trackerInfo
	queue    []*jobState
	active   *jobState
	stopped  bool
}

// newJobTracker builds and starts the JobTracker process.
func newJobTracker(eng *sim.Engine, clus *cluster.Cluster, cfg Config) *JobTracker {
	jt := &JobTracker{
		eng:      eng,
		clus:     clus,
		cfg:      cfg,
		trackers: make(map[string]*trackerInfo),
	}
	eng.Spawn("jobtracker", jt.run)
	return jt
}

// submit enqueues a job (called via the runtime).
func (jt *JobTracker) submit(js *jobState) {
	jt.inbox.Send(jtMsg{kind: msgSubmit, job: js})
}

// shutdown makes the JobTracker process exit after draining its inbox.
func (jt *JobTracker) shutdown() {
	jt.inbox.Send(jtMsg{kind: msgShutdown})
}

func (jt *JobTracker) run(p *sim.Proc) {
	for {
		msg := jt.inbox.Recv(p)
		switch msg.kind {
		case msgShutdown:
			jt.stopped = true
			return
		case msgSubmit:
			jt.queue = append(jt.queue, msg.job)
			if jt.active == nil {
				jt.activateNext(p)
			}
		case msgHeartbeat:
			jt.handleHeartbeat(p, msg)
		}
	}
}

// activateNext starts the next queued job (job setup: split
// computation, staging).
func (jt *JobTracker) activateNext(p *sim.Proc) {
	if len(jt.queue) == 0 {
		return
	}
	js := jt.queue[0]
	jt.queue = jt.queue[1:]
	p.Sleep(jt.cfg.JobSetup)
	js.result.Started = p.Now()
	jt.active = js
}

func (jt *JobTracker) handleHeartbeat(p *sim.Proc, msg jtMsg) {
	info, ok := jt.trackers[msg.tracker.Node.Name]
	if !ok {
		info = &trackerInfo{tt: msg.tracker}
		jt.trackers[msg.tracker.Node.Name] = info
	}
	info.lastHB = p.Now()

	// The JobTracker is single-threaded: every heartbeat holds it for
	// the RPC processing cost, and each reported completion adds the
	// serialized bookkeeping ("collecting and sorting the partial
	// results"). These serial sections are the emergent scaling floor.
	p.Sleep(jt.cfg.HeartbeatProcess)
	for _, rep := range msg.completed {
		p.Sleep(jt.cfg.TaskHousekeeping)
		jt.recordCompletion(rep)
	}
	jt.checkExpiredTrackers(p)
	jt.maybeFinishActive(p)

	var assign Assignment
	if jt.active != nil && !info.dead {
		if msg.freeSlots > 0 {
			assign.Attempt = jt.assignTask(p, msg.tracker)
		}
		if assign.Attempt == nil && msg.freeReduceSlots > 0 {
			assign.Attempt = jt.assignReduce(p, msg.tracker)
		}
	}
	msg.reply.Send(assign)
}

// recordCompletion applies one task completion report.
func (jt *JobTracker) recordCompletion(rep taskReport) {
	if rep.attempt.IsReduce() {
		jt.recordReduceCompletion(rep)
		return
	}
	js := rep.attempt.job
	idx := rep.attempt.Split.Index
	// Drop this attempt from the running set.
	live := js.running[idx][:0]
	for _, a := range js.running[idx] {
		if a != rep.attempt {
			live = append(live, a)
		}
	}
	if len(live) == 0 {
		delete(js.running, idx)
	} else {
		js.running[idx] = live
	}
	stat := rep.stat
	if js.done[idx] {
		// A speculative or re-run duplicate finished after the split
		// was already complete: wasted work.
		stat.Won = false
	} else {
		js.done[idx] = true
		stat.Won = true
		js.doneTasks++
		js.totalTaskTime += stat.End - stat.Start
		js.mapOutputBytes += stat.Output
	}
	js.result.Tasks = append(js.result.Tasks, stat)
	js.result.LocalReads += int64(stat.LocalHit)
	js.result.RemoteReads += int64(stat.Remote)
}

// recordReduceCompletion applies a reduce-task completion report.
func (jt *JobTracker) recordReduceCompletion(rep taskReport) {
	js := rep.attempt.job
	idx := rep.attempt.ReduceIndex
	live := js.runningReduces[idx][:0]
	for _, a := range js.runningReduces[idx] {
		if a != rep.attempt {
			live = append(live, a)
		}
	}
	if len(live) == 0 {
		delete(js.runningReduces, idx)
	} else {
		js.runningReduces[idx] = live
	}
	stat := rep.stat
	if js.doneReduces[idx] {
		stat.Won = false
	} else {
		js.doneReduces[idx] = true
		stat.Won = true
		js.doneReduceN++
	}
	js.result.Tasks = append(js.result.Tasks, stat)
}

// assignReduce hands out a reduce task once the map phase is complete
// (Hadoop 0.19 had no slow-start shuffle overlap worth modelling at
// the paper's job shapes).
func (jt *JobTracker) assignReduce(p *sim.Proc, tt *TaskTracker) *TaskAttempt {
	js := jt.active
	if !js.mapsDone() || len(js.pendingReduces) == 0 {
		return nil
	}
	idx := js.pendingReduces[0]
	js.pendingReduces = js.pendingReduces[1:]
	attempt := &TaskAttempt{
		job:         js,
		ReduceIndex: idx,
		Attempt:     len(js.runningReduces[idx]),
		Tracker:     tt.Node.Name,
		Started:     p.Now(),
	}
	js.runningReduces[idx] = append(js.runningReduces[idx], attempt)
	js.attempts++
	return attempt
}

// assignTask picks a pending split for the tracker, preferring
// data-local splits ("it tries to minimize the number of remote block
// accesses"), or schedules a speculative duplicate for a straggler.
func (jt *JobTracker) assignTask(p *sim.Proc, tt *TaskTracker) *TaskAttempt {
	js := jt.active
	pick := -1
	for qi, idx := range js.pending {
		for _, h := range js.job.Splits[idx].PreferredHosts {
			if h == tt.Node.Name {
				pick = qi
				break
			}
		}
		if pick >= 0 {
			break
		}
	}
	if pick < 0 && len(js.pending) > 0 {
		pick = 0
	}
	if pick >= 0 {
		idx := js.pending[pick]
		js.pending = append(js.pending[:pick], js.pending[pick+1:]...)
		return jt.launch(p, js, idx, tt)
	}
	if jt.cfg.Speculative {
		return jt.maybeSpeculate(p, js, tt)
	}
	return nil
}

// maybeSpeculate duplicates the slowest straggler onto tt if it has
// been running longer than the configured multiple of the average
// completed-task time.
func (jt *JobTracker) maybeSpeculate(p *sim.Proc, js *jobState, tt *TaskTracker) *TaskAttempt {
	if js.doneTasks == 0 {
		return nil
	}
	avg := js.totalTaskTime / sim.Time(js.doneTasks)
	threshold := sim.Time(float64(avg) * jt.cfg.SpeculativeSlowdown)
	var worst *TaskAttempt
	for _, attempts := range js.running {
		if len(attempts) != 1 {
			continue // already duplicated
		}
		a := attempts[0]
		if a.Tracker == tt.Node.Name {
			continue // duplicate must run elsewhere
		}
		if p.Now()-a.Started <= threshold {
			continue
		}
		if worst == nil || a.Started < worst.Started {
			worst = a
		}
	}
	if worst == nil {
		return nil
	}
	return jt.launch(p, js, worst.Split.Index, tt)
}

// launch registers and returns a new attempt for split idx on tt.
func (jt *JobTracker) launch(p *sim.Proc, js *jobState, idx int, tt *TaskTracker) *TaskAttempt {
	attempt := &TaskAttempt{
		job:         js,
		Split:       &js.job.Splits[idx],
		ReduceIndex: -1,
		Attempt:     len(js.running[idx]) + attemptsSoFar(js, idx),
		Tracker:     tt.Node.Name,
		Started:     p.Now(),
	}
	js.running[idx] = append(js.running[idx], attempt)
	js.attempts++
	return attempt
}

// attemptsSoFar counts completed attempts of a split (for attempt
// numbering only).
func attemptsSoFar(js *jobState, idx int) int {
	n := 0
	for _, t := range js.result.Tasks {
		if t.Split == idx {
			n++
		}
	}
	return n
}

// checkExpiredTrackers declares trackers lost after the expiry window
// and re-queues their running tasks (the paper: "the JobTracker can
// detect a node failure and reschedule the task to another
// TaskTracker").
func (jt *JobTracker) checkExpiredTrackers(p *sim.Proc) {
	if jt.active == nil {
		return
	}
	js := jt.active
	for name, info := range jt.trackers {
		if info.dead || p.Now()-info.lastHB <= jt.cfg.TrackerExpiry {
			continue
		}
		info.dead = true
		for idx, attempts := range js.running {
			live := attempts[:0]
			lost := false
			for _, a := range attempts {
				if a.Tracker == name {
					lost = true
				} else {
					live = append(live, a)
				}
			}
			if !lost {
				continue
			}
			if len(live) == 0 {
				delete(js.running, idx)
				if !js.done[idx] {
					js.pending = append(js.pending, idx)
				}
			} else {
				js.running[idx] = live
			}
		}
		for idx, attempts := range js.runningReduces {
			live := attempts[:0]
			lost := false
			for _, a := range attempts {
				if a.Tracker == name {
					lost = true
				} else {
					live = append(live, a)
				}
			}
			if !lost {
				continue
			}
			if len(live) == 0 {
				delete(js.runningReduces, idx)
				if !js.doneReduces[idx] {
					js.pendingReduces = append(js.pendingReduces, idx)
				}
			} else {
				js.runningReduces[idx] = live
			}
		}
	}
}

// maybeFinishActive completes the active job when every split is done,
// then activates the next queued job.
func (jt *JobTracker) maybeFinishActive(p *sim.Proc) {
	js := jt.active
	if js == nil || js.finished {
		return
	}
	if !js.mapsDone() || js.doneReduceN < js.job.Reduces {
		return
	}
	p.Sleep(jt.cfg.JobCleanup)
	js.finished = true
	js.result.Finished = p.Now()
	js.result.Attempts = js.attempts
	js.result.EnergyJoules = jt.jobEnergy(js)
	jt.active = nil
	js.handle.done.Open()
	jt.activateNext(p)
}

// jobEnergy models cluster energy over the job: idle baseline on every
// worker for the makespan plus the incremental busy power of each task
// attempt (perfmodel energy extension; paper §V names this the open
// question for data-intensive acceleration).
func (jt *JobTracker) jobEnergy(js *jobState) float64 {
	span := (js.result.Finished - js.result.Submitted).Seconds()
	idle := span * float64(len(jt.clus.Nodes)) * perfmodel.QS22IdleWatts
	var busy float64
	perSlot := (perfmodel.QS22BusyWatts - perfmodel.QS22IdleWatts) / float64(jt.cfg.MapSlots)
	for _, t := range js.result.Tasks {
		busy += (t.End - t.Start).Seconds() * perSlot
	}
	return idle + busy
}

// Runtime wires a JobTracker and one TaskTracker per worker node and
// provides the submission API.
type Runtime struct {
	Eng  *sim.Engine
	Clus *cluster.Cluster
	Cfg  Config
	JT   *JobTracker
	TTs  []*TaskTracker
}

// NewRuntime starts the Hadoop daemons on the cluster.
func NewRuntime(eng *sim.Engine, clus *cluster.Cluster, cfg Config) *Runtime {
	r := &Runtime{Eng: eng, Clus: clus, Cfg: cfg}
	r.JT = newJobTracker(eng, clus, cfg)
	for _, node := range clus.Nodes {
		r.TTs = append(r.TTs, newTaskTracker(eng, r.JT, node, cfg))
	}
	return r
}

// Submit validates and enqueues a job, returning its handle.
func (r *Runtime) Submit(job *Job) (*JobHandle, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	js := &jobState{
		job:            job,
		running:        make(map[int][]*TaskAttempt),
		done:           make(map[int]bool),
		runningReduces: make(map[int][]*TaskAttempt),
		doneReduces:    make(map[int]bool),
		result: &JobResult{
			Name:      job.Name,
			Submitted: r.Eng.Now(),
		},
	}
	for i := range job.Splits {
		js.pending = append(js.pending, i)
		js.result.InputBytes += job.Splits[i].InputBytes()
	}
	for i := 0; i < job.Reduces; i++ {
		js.pendingReduces = append(js.pendingReduces, i)
	}
	js.handle = &JobHandle{Job: job, done: &sim.Gate{}, result: js.result}
	r.JT.submit(js)
	return js.handle, nil
}

// Shutdown stops all daemons so the simulation can drain. Call after
// every submitted job has completed.
func (r *Runtime) Shutdown() {
	for _, tt := range r.TTs {
		tt.Kill()
	}
	r.JT.shutdown()
}

// KillNode simulates the failure of one worker: its TaskTracker stops
// heartbeating and its running tasks never report.
func (r *Runtime) KillNode(name string) error {
	for _, tt := range r.TTs {
		if tt.Node.Name == name {
			tt.Kill()
			return nil
		}
	}
	return fmt.Errorf("hadoop: no tracker on node %q", name)
}
