package hadoop

import (
	"fmt"

	"hetmr/internal/cluster"
	"hetmr/internal/perfmodel"
	"hetmr/internal/sim"
)

// TaskTracker is the per-node worker daemon: it heartbeats the
// JobTracker, launches assigned map tasks into its slots, feeds them
// records through the RecordReader path, and reports completions on
// the next heartbeat (as Hadoop 0.19 did).
type TaskTracker struct {
	Node *cluster.Node
	jt   *JobTracker
	cfg  Config
	eng  *sim.Engine

	slots       *sim.Resource
	reduceSlots *sim.Resource
	completed   []taskReport
	reply       sim.Mailbox[Assignment]
	killed      bool

	// assignedNotLaunched counts tasks handed to us whose slot is not
	// yet occupied, so heartbeats do not over-report free slots.
	assignedNotLaunched       int
	assignedNotLaunchedReduce int
}

func newTaskTracker(eng *sim.Engine, jt *JobTracker, node *cluster.Node, cfg Config) *TaskTracker {
	tt := &TaskTracker{
		Node:        node,
		jt:          jt,
		cfg:         cfg,
		eng:         eng,
		slots:       sim.NewResource(node.Name+"/mapslots", cfg.MapSlots),
		reduceSlots: sim.NewResource(node.Name+"/reduceslots", cfg.ReduceSlots),
	}
	eng.Spawn("tasktracker-"+node.Name, tt.run)
	return tt
}

// Kill stops the tracker: no more heartbeats, and tasks finishing
// after the kill are never reported (their node died with them).
func (tt *TaskTracker) Kill() { tt.killed = true }

// run is the heartbeat loop.
func (tt *TaskTracker) run(p *sim.Proc) {
	// Desynchronize tracker heartbeats like real clusters.
	p.Sleep(tt.eng.RNG().Jitter(tt.cfg.HeartbeatInterval))
	for !tt.killed {
		free := tt.slots.Available() - tt.assignedNotLaunched
		if free < 0 {
			free = 0
		}
		freeReduce := tt.reduceSlots.Available() - tt.assignedNotLaunchedReduce
		if freeReduce < 0 {
			freeReduce = 0
		}
		reports := tt.completed
		tt.completed = nil
		tt.jt.inbox.Send(jtMsg{
			kind:            msgHeartbeat,
			tracker:         tt,
			freeSlots:       free,
			freeReduceSlots: freeReduce,
			completed:       reports,
			reply:           &tt.reply,
		})
		assign := tt.reply.Recv(p)
		if assign.Attempt != nil {
			attempt := assign.Attempt
			if attempt.IsReduce() {
				tt.assignedNotLaunchedReduce++
				tt.eng.Spawn(fmt.Sprintf("reduce-%s-r%d-a%d", tt.Node.Name,
					attempt.ReduceIndex, attempt.Attempt), func(tp *sim.Proc) {
					tt.runReduce(tp, attempt)
				})
			} else {
				tt.assignedNotLaunched++
				tt.eng.Spawn(fmt.Sprintf("task-%s-s%d-a%d", tt.Node.Name,
					attempt.Split.Index, attempt.Attempt), func(tp *sim.Proc) {
					tt.runTask(tp, attempt)
				})
			}
		}
		p.Sleep(tt.cfg.HeartbeatInterval)
	}
}

// runTask executes one map task attempt: occupy a slot, pay the task
// launch (JVM) cost, stream records through the RecordReader, charge
// the mapper's compute time per record, write map output, and queue
// the completion report for the next heartbeat.
func (tt *TaskTracker) runTask(p *sim.Proc, attempt *TaskAttempt) {
	tt.slots.Acquire(p, 1)
	tt.assignedNotLaunched--
	defer tt.slots.Release(1)

	start := p.Now()
	p.Sleep(tt.cfg.TaskLaunch)

	mapper := attempt.job.job.MapperFor(tt.Node)
	stat := TaskStat{
		Split:   attempt.Split.Index,
		Attempt: attempt.Attempt,
		Tracker: tt.Node.Name,
		Start:   start,
	}

	var outBytes int64
	if attempt.Split.Samples > 0 {
		// CPU-intensive task: no input working set (paper §IV-B:
		// "there is no input working set since it is a CPU-intensive
		// only task").
		p.Sleep(mapper.SampleTime(attempt.Split.Samples))
	}
	for _, rec := range attempt.Split.Records {
		local := tt.fetchRecord(p, rec)
		if local {
			stat.LocalHit++
		} else {
			stat.Remote++
		}
		p.Sleep(mapper.RecordTime(rec.Bytes))
		if out := mapper.OutputBytes(rec.Bytes); out > 0 {
			// Map output goes to the local disk (spill + commit).
			tt.Node.Disk.Transfer(p, out)
			outBytes += out
		}
	}
	stat.Output = outBytes

	stat.End = p.Now()
	if tt.killed {
		// The node died while the task ran: the report is lost; the
		// JobTracker will expire us and re-run the split elsewhere.
		return
	}
	tt.completed = append(tt.completed, taskReport{attempt: attempt, stat: stat})
}

// runReduce executes one reduce task attempt: occupy a reduce slot,
// shuffle this reducer's share of the map output across the network,
// merge-sort it on local disk, run the reduce function, and report on
// the next heartbeat. ("The JobTracker is also responsible for
// collecting and sorting the partial results produced by the Mappers
// in order to use them as the input for the reduce phase.")
func (tt *TaskTracker) runReduce(p *sim.Proc, attempt *TaskAttempt) {
	tt.reduceSlots.Acquire(p, 1)
	tt.assignedNotLaunchedReduce--
	defer tt.reduceSlots.Release(1)

	start := p.Now()
	p.Sleep(tt.cfg.TaskLaunch)

	js := attempt.job
	share := js.mapOutputBytes / int64(js.job.Reduces)
	if share > 0 {
		// Shuffle: map outputs are spread across the cluster, so the
		// reducer's share arrives through its NIC.
		tt.Node.NIC.Transfer(p, share)
		// External merge sort: one write + one read pass on disk.
		tt.Node.Disk.Transfer(p, 2*share)
		// Reduce function over the sorted run.
		rate := js.job.ReduceRate
		if rate <= 0 {
			rate = perfmodel.AESPower6BytesPerSec // generic host rate
		}
		p.Sleep(sim.Seconds(float64(share) / rate))
	}

	stat := TaskStat{
		Split:    attempt.ReduceIndex,
		IsReduce: true,
		Attempt:  attempt.Attempt,
		Tracker:  tt.Node.Name,
		Start:    start,
		End:      p.Now(),
	}
	if tt.killed {
		return
	}
	tt.completed = append(tt.completed, taskReport{attempt: attempt, stat: stat})
}

// fetchRecord models the RecordReader pulling one record from a
// DataNode. Local records cross the node's loopback delivery path at
// the measured effective rate (the paper's data-intensive bottleneck);
// remote records first cross the source node's NIC, then are delivered
// the same way. Reports whether the read was local.
func (tt *TaskTracker) fetchRecord(p *sim.Proc, rec Record) bool {
	local := false
	for _, h := range rec.Hosts {
		if h == tt.Node.Name {
			local = true
			break
		}
	}
	if !local && len(rec.Hosts) > 0 {
		if src, ok := tt.jt.clus.ByName(rec.Hosts[0]); ok {
			// Source disk read and NIC hop.
			src.Disk.Transfer(p, rec.Bytes)
			src.NIC.Transfer(p, rec.Bytes)
			tt.Node.NIC.Transfer(p, rec.Bytes)
		}
	}
	// DataNode -> TaskTracker delivery over the loopback interface,
	// shared by the node's concurrent mappers.
	tt.Node.Loopback.Transfer(p, rec.Bytes)
	return local
}
