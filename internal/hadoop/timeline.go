package hadoop

import (
	"fmt"
	"sort"
	"strings"

	"hetmr/internal/sim"
)

// Timeline rendering: a text Gantt chart of a job's task attempts,
// one row per attempt, for inspecting scheduling behaviour (ramp-up
// waves, stragglers, speculative duplicates, failure re-execution).

// RenderTimeline draws the job's task attempts over a width-column
// canvas spanning submission to completion. Map attempts draw as 'm'
// (capital M when they won), reduces as 'r'/'R'.
func RenderTimeline(res *JobResult, width int) string {
	if res == nil || len(res.Tasks) == 0 {
		return "(no tasks)\n"
	}
	if width < 20 {
		width = 20
	}
	span := res.Finished - res.Submitted
	if span <= 0 {
		return "(empty span)\n"
	}
	col := func(t sim.Time) int {
		c := int(float64(t-res.Submitted) / float64(span) * float64(width))
		if c < 0 {
			c = 0
		}
		if c >= width {
			c = width - 1
		}
		return c
	}
	tasks := append([]TaskStat(nil), res.Tasks...)
	sort.SliceStable(tasks, func(i, j int) bool {
		if tasks[i].Start != tasks[j].Start {
			return tasks[i].Start < tasks[j].Start
		}
		return tasks[i].Split < tasks[j].Split
	})
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d attempts over %s\n", res.Name, len(tasks), span)
	for _, ts := range tasks {
		row := make([]byte, width)
		for i := range row {
			row[i] = '.'
		}
		glyph := byte('m')
		if ts.IsReduce {
			glyph = 'r'
		}
		if ts.Won {
			glyph -= 'a' - 'A'
		}
		from, to := col(ts.Start), col(ts.End)
		for i := from; i <= to; i++ {
			row[i] = glyph
		}
		kind := "map"
		if ts.IsReduce {
			kind = "red"
		}
		fmt.Fprintf(&sb, "%s %3d/%d %-8s |%s|\n", kind, ts.Split, ts.Attempt, ts.Tracker, row)
	}
	return sb.String()
}

// SlotUtilization computes the fraction of available map-slot time the
// job actually used (completed attempts only) — a scheduler efficiency
// metric for the ablation studies.
func SlotUtilization(res *JobResult, nodes, slotsPerNode int) float64 {
	if res == nil || nodes <= 0 || slotsPerNode <= 0 {
		return 0
	}
	span := (res.Finished - res.Started).Seconds()
	if span <= 0 {
		return 0
	}
	var busy float64
	for _, ts := range res.Tasks {
		if !ts.IsReduce {
			busy += (ts.End - ts.Start).Seconds()
		}
	}
	return busy / (span * float64(nodes*slotsPerNode))
}
