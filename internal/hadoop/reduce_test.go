package hadoop

import (
	"testing"

	"hetmr/internal/sim"
)

// reduceDataJob: maps produce output (OutPerByte 1) so the reducers
// have a shuffle volume.
func reduceDataJob(nSplits, reduces int) *Job {
	job := simpleDataJob("with-reduce", nSplits, 2, 4<<20,
		FixedMapper{Label: "m", PerRecord: 10 * sim.Millisecond, OutPerByte: 1})
	job.Reduces = reduces
	job.ReduceRate = 50e6
	return job
}

func TestReducePhaseRuns(t *testing.T) {
	res := runJob(t, 4, DefaultConfig(), reduceDataJob(8, 3))
	var mapWins, reduceWins int
	var lastMapEnd, firstReduceStart sim.Time
	firstReduceStart = 1 << 62
	for _, ts := range res.Tasks {
		if !ts.Won {
			continue
		}
		if ts.IsReduce {
			reduceWins++
			if ts.Start < firstReduceStart {
				firstReduceStart = ts.Start
			}
		} else {
			mapWins++
			if ts.End > lastMapEnd {
				lastMapEnd = ts.End
			}
		}
	}
	if mapWins != 8 || reduceWins != 3 {
		t.Fatalf("wins: %d maps, %d reduces; want 8/3", mapWins, reduceWins)
	}
	// Barrier: no reduce may start before the last map completed.
	if firstReduceStart < lastMapEnd {
		t.Errorf("reduce started at %v before last map ended at %v",
			firstReduceStart, lastMapEnd)
	}
	if res.Attempts != 11 {
		t.Errorf("attempts = %d, want 11", res.Attempts)
	}
}

func TestReduceShuffleCostScales(t *testing.T) {
	// More map output -> longer reduce phase. Compare two identical
	// jobs differing only in map output volume.
	mk := func(outPerByte float64) sim.Time {
		job := simpleDataJob("r", 4, 2, 16<<20,
			FixedMapper{Label: "m", PerRecord: 0, OutPerByte: outPerByte})
		job.Reduces = 1
		job.ReduceRate = 50e6
		res := runJob(t, 4, DefaultConfig(), job)
		return res.Duration()
	}
	small, big := mk(0.01), mk(1.0)
	if big <= small {
		t.Errorf("reduce cost did not scale with shuffle volume: %v vs %v", small, big)
	}
}

func TestZeroOutputReduceIsCheap(t *testing.T) {
	// The PiEstimator shape: maps emit ~nothing, one reducer. The
	// reduce phase should add little more than a heartbeat wave plus
	// the task launch.
	base := &Job{Name: "pi0", MapperFor: StaticMapperFor(
		FixedMapper{Label: "m", PerSample: sim.Microsecond})}
	for i := 0; i < 8; i++ {
		base.Splits = append(base.Splits, Split{Index: i, Samples: 1_000_000})
	}
	noReduce := runJob(t, 4, DefaultConfig(), base)

	withReduce := &Job{Name: "pi1", Reduces: 1, MapperFor: base.MapperFor}
	withReduce.Splits = append([]Split(nil), base.Splits...)
	r := runJob(t, 4, DefaultConfig(), withReduce)

	extra := r.Duration() - noReduce.Duration()
	cfg := DefaultConfig()
	maxExtra := 3*cfg.HeartbeatInterval + cfg.TaskLaunch + 2*cfg.TaskHousekeeping
	if extra < 0 || extra > maxExtra {
		t.Errorf("empty reduce added %v, want within (0, %v]", extra, maxExtra)
	}
}

func TestReduceValidation(t *testing.T) {
	job := &Job{Name: "bad", Reduces: -1,
		MapperFor: StaticMapperFor(EmptyMapper{}),
		Splits:    []Split{{Index: 0, Samples: 1}}}
	if err := job.Validate(); err == nil {
		t.Error("negative reduces should fail validation")
	}
}

func TestReduceReexecutionOnNodeFailure(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrackerExpiry = 20 * sim.Second
	job := simpleDataJob("rfail", 4, 2, 32<<20,
		FixedMapper{Label: "m", PerRecord: 0, OutPerByte: 4})
	job.Reduces = 2
	job.ReduceRate = 1e6 // slow reducers (~4MB*8/2/1e6 = long)

	res, err := tryRunJob(3, cfg, job, func(p *sim.Proc, rt *Runtime) {
		// Wait until reduces are likely running, then kill a node.
		p.Sleep(80 * sim.Second)
		var victim string
		for _, ts := range rt.TTs {
			victim = ts.Node.Name
		}
		if err := rt.KillNode(victim); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("job never finished")
	}
	wins := 0
	for _, ts := range res.Tasks {
		if ts.IsReduce && ts.Won {
			wins++
		}
	}
	if wins != 2 {
		t.Errorf("reduce wins = %d, want 2", wins)
	}
}

func TestMapOutputAccounting(t *testing.T) {
	job := simpleDataJob("acct", 4, 2, 8<<20,
		FixedMapper{Label: "m", PerRecord: 0, OutPerByte: 0.5})
	res := runJob(t, 2, DefaultConfig(), job)
	var output int64
	for _, ts := range res.Tasks {
		if ts.Won && !ts.IsReduce {
			output += ts.Output
		}
	}
	want := int64(4 * 2 * (8 << 20) / 2)
	if output != want {
		t.Errorf("map output = %d, want %d", output, want)
	}
}
