package hadoop

import (
	"hetmr/internal/cellbe"
	"hetmr/internal/cluster"
	"hetmr/internal/perfmodel"
	"hetmr/internal/sim"
)

// Mapper model implementations for the paper's workloads. In the
// distributed experiments both "Java" variants execute on the QS22
// worker blades, i.e. on the Cell's PPE core (the paper's Fig. 2 "PPC"
// configuration), while the Cell variants offload to the blade's SPEs
// — one mapper per Cell processor, so each mapper owns a full chip's
// 8 SPEs ("1 Mapper running in each of the two Cell processors of the
// QS22 blade").

// EmptyMapper reads records but performs no computation and collects
// no output, estimating the pure Hadoop runtime overhead (Fig. 5).
type EmptyMapper struct{}

// Name implements Mapper.
func (EmptyMapper) Name() string { return "empty" }

// RecordTime implements Mapper: no processing at all.
func (EmptyMapper) RecordTime(int64) sim.Time { return 0 }

// SampleTime implements Mapper.
func (EmptyMapper) SampleTime(int64) sim.Time { return 0 }

// OutputBytes implements Mapper: "did not collect any output".
func (EmptyMapper) OutputBytes(int64) int64 { return 0 }

// JavaAESMapper is the pure-Java AES kernel running on the worker's
// PPE core.
type JavaAESMapper struct{}

// Name implements Mapper.
func (JavaAESMapper) Name() string { return "java-aes" }

// RecordTime implements Mapper.
func (JavaAESMapper) RecordTime(n int64) sim.Time {
	return sim.Seconds(cellbe.HostComputeTime(n, perfmodel.AESPPEBytesPerSec))
}

// SampleTime implements Mapper.
func (JavaAESMapper) SampleTime(int64) sim.Time { return 0 }

// OutputBytes implements Mapper: ciphertext is the same size as the
// record.
func (JavaAESMapper) OutputBytes(n int64) int64 { return n }

// CellAESMapper offloads each record to one Cell chip's SPEs in 4 KB
// blocks via the spurt runtime.
type CellAESMapper struct{}

// Name implements Mapper.
func (CellAESMapper) Name() string { return "cell-aes" }

// RecordTime implements Mapper.
func (CellAESMapper) RecordTime(n int64) sim.Time {
	cost := cellbe.StreamOffloadTime(n, perfmodel.SPEsPerCell,
		perfmodel.SPEBlockBytes, perfmodel.AESSPEBytesPerSec)
	return sim.Seconds(cost.TotalSeconds)
}

// SampleTime implements Mapper.
func (CellAESMapper) SampleTime(int64) sim.Time { return 0 }

// OutputBytes implements Mapper.
func (CellAESMapper) OutputBytes(n int64) int64 { return n }

// JavaPiMapper is the Hadoop PiEstimator sample kernel on the PPE.
type JavaPiMapper struct{}

// Name implements Mapper.
func (JavaPiMapper) Name() string { return "java-pi" }

// RecordTime implements Mapper.
func (JavaPiMapper) RecordTime(int64) sim.Time { return 0 }

// SampleTime implements Mapper.
func (JavaPiMapper) SampleTime(w int64) sim.Time {
	return sim.Seconds(cellbe.HostComputeTime(w, perfmodel.PiPPESamplesPerSec))
}

// OutputBytes implements Mapper: a Pi task emits one count.
func (JavaPiMapper) OutputBytes(int64) int64 { return 0 }

// CellPiMapper offloads the sampling loop to the SPEs.
type CellPiMapper struct{}

// Name implements Mapper.
func (CellPiMapper) Name() string { return "cell-pi" }

// RecordTime implements Mapper.
func (CellPiMapper) RecordTime(int64) sim.Time { return 0 }

// SampleTime implements Mapper.
func (CellPiMapper) SampleTime(w int64) sim.Time {
	cost := cellbe.ComputeOffloadTime(w, perfmodel.SPEsPerCell, perfmodel.PiSPESamplesPerSec)
	return sim.Seconds(cost.TotalSeconds)
}

// OutputBytes implements Mapper.
func (CellPiMapper) OutputBytes(int64) int64 { return 0 }

// FixedMapper is a fully synthetic mapper for runtime tests: constant
// per-record and per-sample costs.
type FixedMapper struct {
	Label      string
	PerRecord  sim.Time
	PerSample  sim.Time // per single sample
	OutPerByte float64
}

// Name implements Mapper.
func (m FixedMapper) Name() string { return m.Label }

// RecordTime implements Mapper.
func (m FixedMapper) RecordTime(int64) sim.Time { return m.PerRecord }

// SampleTime implements Mapper.
func (m FixedMapper) SampleTime(w int64) sim.Time { return m.PerSample * sim.Time(w) }

// OutputBytes implements Mapper.
func (m FixedMapper) OutputBytes(n int64) int64 { return int64(float64(n) * m.OutPerByte) }

// StaticMapperFor adapts a fixed Mapper to the per-node factory
// signature.
func StaticMapperFor(m Mapper) func(*cluster.Node) Mapper {
	return func(*cluster.Node) Mapper { return m }
}

// AcceleratedMapperFor returns cell on accelerator-equipped nodes and
// java elsewhere — the heterogeneous-cluster fallback (paper §V).
func AcceleratedMapperFor(cell, java Mapper) func(*cluster.Node) Mapper {
	return func(n *cluster.Node) Mapper {
		if n.Accelerated {
			return cell
		}
		return java
	}
}
