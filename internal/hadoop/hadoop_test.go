package hadoop

import (
	"strings"
	"testing"

	"hetmr/internal/cluster"
	"hetmr/internal/sim"
)

// testHarness runs a job to completion on a fresh simulated cluster
// and returns the result.
func runJob(t *testing.T, nWorkers int, cfg Config, job *Job, opts ...cluster.Option) *JobResult {
	t.Helper()
	res, err := tryRunJob(nWorkers, cfg, job, nil, opts...)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// tryRunJob is runJob without the testing dependency; mid is invoked
// (if non-nil) in a separate process for fault injection.
func tryRunJob(nWorkers int, cfg Config, job *Job,
	mid func(p *sim.Proc, rt *Runtime), opts ...cluster.Option) (*JobResult, error) {
	return tryRunJobLinger(nWorkers, cfg, job, mid, 0, opts...)
}

// tryRunJobLinger keeps the cluster alive for `linger` of virtual time
// after job completion, so straggler attempts can still report.
func tryRunJobLinger(nWorkers int, cfg Config, job *Job,
	mid func(p *sim.Proc, rt *Runtime), linger sim.Time, opts ...cluster.Option) (*JobResult, error) {
	eng := sim.NewEngine(2009)
	clus, err := cluster.New(eng, nWorkers, opts...)
	if err != nil {
		return nil, err
	}
	rt := NewRuntime(eng, clus, cfg)
	var result *JobResult
	handle, err := rt.Submit(job)
	if err != nil {
		return nil, err
	}
	eng.Spawn("driver", func(p *sim.Proc) {
		result = handle.Wait(p)
		p.Sleep(linger)
		rt.Shutdown()
	})
	if mid != nil {
		eng.Spawn("chaos", func(p *sim.Proc) { mid(p, rt) })
	}
	if _, err := eng.Run(); err != nil {
		return nil, err
	}
	return result, nil
}

// simpleDataJob builds a job of nSplits splits, each with recs records
// of recBytes hosted on the matching worker (locality-friendly).
func simpleDataJob(name string, nSplits, recs int, recBytes int64, m Mapper) *Job {
	job := &Job{Name: name, MapperFor: StaticMapperFor(m)}
	for i := 0; i < nSplits; i++ {
		var records []Record
		host := cluster.WorkerName(i % 4)
		for r := 0; r < recs; r++ {
			records = append(records, Record{Bytes: recBytes, Hosts: []string{host}})
		}
		job.Splits = append(job.Splits, Split{
			Index:          i,
			Records:        records,
			PreferredHosts: []string{host},
		})
	}
	return job
}

func TestJobValidate(t *testing.T) {
	m := FixedMapper{Label: "x"}
	cases := []struct {
		name string
		job  *Job
	}{
		{"no name", &Job{MapperFor: StaticMapperFor(m), Splits: []Split{{Samples: 1}}}},
		{"no splits", &Job{Name: "j", MapperFor: StaticMapperFor(m)}},
		{"no mapper", &Job{Name: "j", Splits: []Split{{Samples: 1}}}},
		{"bad index", &Job{Name: "j", MapperFor: StaticMapperFor(m),
			Splits: []Split{{Index: 5, Samples: 1}}}},
		{"empty split", &Job{Name: "j", MapperFor: StaticMapperFor(m),
			Splits: []Split{{Index: 0}}}},
	}
	for _, c := range cases {
		if err := c.job.Validate(); err == nil {
			t.Errorf("%s: expected validation error", c.name)
		}
	}
	good := &Job{Name: "j", MapperFor: StaticMapperFor(m),
		Splits: []Split{{Index: 0, Samples: 100}}}
	if err := good.Validate(); err != nil {
		t.Errorf("good job rejected: %v", err)
	}
}

func TestSampleJobCompletes(t *testing.T) {
	cfg := DefaultConfig()
	job := &Job{Name: "pi-test", MapperFor: StaticMapperFor(
		FixedMapper{Label: "fix", PerSample: sim.Microsecond})}
	for i := 0; i < 8; i++ {
		job.Splits = append(job.Splits, Split{Index: i, Samples: 1_000_000})
	}
	res := runJob(t, 4, cfg, job)
	if res == nil {
		t.Fatal("no result")
	}
	// 8 tasks x 1s compute on 4 nodes x 2 slots: one wave. Makespan
	// must cover setup + launch + compute + cleanup but stay sane.
	d := res.Duration()
	min := cfg.JobSetup + cfg.TaskLaunch + sim.Second
	if d < min {
		t.Errorf("duration %v below floor %v", d, min)
	}
	if d > 60*sim.Second {
		t.Errorf("duration %v absurdly high for one wave", d)
	}
	if len(res.Tasks) != 8 || res.Attempts != 8 {
		t.Errorf("tasks=%d attempts=%d, want 8/8", len(res.Tasks), res.Attempts)
	}
	for _, ts := range res.Tasks {
		if !ts.Won {
			t.Errorf("task %d attempt %d lost without speculation", ts.Split, ts.Attempt)
		}
		if ts.End <= ts.Start {
			t.Errorf("task %d has non-positive duration", ts.Split)
		}
	}
}

func TestDataJobLocality(t *testing.T) {
	cfg := DefaultConfig()
	job := simpleDataJob("enc", 8, 4, 1<<20, FixedMapper{Label: "fix", PerRecord: 10 * sim.Millisecond, OutPerByte: 1})
	res := runJob(t, 4, cfg, job)
	if res.LocalReads == 0 {
		t.Fatal("locality scheduler produced zero local reads")
	}
	// With one split per node pattern and locality preference, remote
	// reads should be the exception.
	if res.RemoteReads > res.LocalReads {
		t.Errorf("remote reads (%d) exceed local (%d): locality scheduling broken",
			res.RemoteReads, res.LocalReads)
	}
	if res.InputBytes != 8*4*(1<<20) {
		t.Errorf("InputBytes = %d", res.InputBytes)
	}
}

func TestMoreTasksThanSlots(t *testing.T) {
	// 12 one-second tasks on 1 node x 2 slots: at least 6 waves, and
	// one task per heartbeat throttles ramp-up.
	cfg := DefaultConfig()
	job := &Job{Name: "waves", MapperFor: StaticMapperFor(
		FixedMapper{Label: "fix", PerSample: sim.Microsecond})}
	for i := 0; i < 12; i++ {
		job.Splits = append(job.Splits, Split{Index: i, Samples: 1_000_000})
	}
	res := runJob(t, 1, cfg, job)
	if len(res.Tasks) != 12 {
		t.Fatalf("completed %d tasks", len(res.Tasks))
	}
	// Serial floor: 12 tasks, 2 slots, ~1s each + launch 1.5s -> at
	// least 6 x 2.5s of pure work.
	if res.Duration() < 15*sim.Second {
		t.Errorf("duration %v too small for 6 waves", res.Duration())
	}
}

func TestHeartbeatAssignmentThrottle(t *testing.T) {
	// One task per heartbeat: with 10 instant tasks on one tracker,
	// assignments span at least 9 heartbeat intervals.
	cfg := DefaultConfig()
	job := &Job{Name: "throttle", MapperFor: StaticMapperFor(
		FixedMapper{Label: "fix", PerSample: 0})}
	for i := 0; i < 10; i++ {
		job.Splits = append(job.Splits, Split{Index: i, Samples: 1})
	}
	res := runJob(t, 1, cfg, job)
	minSpan := sim.Time(9) * cfg.HeartbeatInterval
	span := res.Finished - res.Started
	if span < minSpan {
		t.Errorf("10 tasks finished in %v; one-per-heartbeat should need >= %v", span, minSpan)
	}
}

func TestEmptyVsComputeMapperOrdering(t *testing.T) {
	mk := func(m Mapper) *JobResult {
		job := simpleDataJob("j", 4, 4, 8<<20, m)
		return runJob(t, 4, DefaultConfig(), job)
	}
	empty := mk(EmptyMapper{})
	java := mk(JavaAESMapper{})
	cell := mk(CellAESMapper{})
	if !(empty.Duration() <= cell.Duration() && cell.Duration() <= java.Duration()) {
		t.Errorf("expected empty <= cell <= java, got %v / %v / %v",
			empty.Duration(), cell.Duration(), java.Duration())
	}
	// The paper's data-intensive conclusion: communication dominates,
	// so java is NOT dramatically slower than empty.
	ratio := java.Duration().Seconds() / empty.Duration().Seconds()
	if ratio > 2.0 {
		t.Errorf("java/empty ratio %.2f: record delivery should dominate", ratio)
	}
}

func TestTrackerFailureReexecution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.TrackerExpiry = 20 * sim.Second
	// Long tasks so the kill lands mid-flight.
	job := &Job{Name: "failover", MapperFor: StaticMapperFor(
		FixedMapper{Label: "slow", PerSample: sim.Microsecond})}
	for i := 0; i < 6; i++ {
		job.Splits = append(job.Splits, Split{Index: i, Samples: 30_000_000}) // 30s each
	}
	res, err := tryRunJob(3, cfg, job, func(p *sim.Proc, rt *Runtime) {
		p.Sleep(15 * sim.Second) // tasks are running by now
		if err := rt.KillNode(cluster.WorkerName(0)); err != nil {
			panic(err)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if res == nil {
		t.Fatal("job never finished after node failure")
	}
	// All 6 splits completed despite losing a node.
	won := map[int]bool{}
	for _, ts := range res.Tasks {
		if ts.Won {
			won[ts.Split] = true
		}
	}
	if len(won) != 6 {
		t.Errorf("only %d splits completed", len(won))
	}
	// Re-execution happened: more attempts than splits.
	if res.Attempts <= 6 {
		t.Errorf("attempts = %d, expected re-executions after node kill", res.Attempts)
	}
	// No winning task may be credited to the dead node after expiry.
	for _, ts := range res.Tasks {
		if ts.Won && ts.Tracker == cluster.WorkerName(0) && ts.End > 35*sim.Second {
			t.Errorf("dead node won a task at %v", ts.End)
		}
	}
}

func TestSpeculativeExecution(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Speculative = true
	cfg.SpeculativeSlowdown = 1.5
	// One straggler node: make node000's mapper 10x slower by keying
	// compute time off the node name.
	slow := FixedMapper{Label: "slow", PerSample: 10 * sim.Microsecond}
	fast := FixedMapper{Label: "fast", PerSample: sim.Microsecond}
	job := &Job{Name: "spec", MapperFor: func(n *cluster.Node) Mapper {
		if n.Name == cluster.WorkerName(0) {
			return slow
		}
		return fast
	}}
	for i := 0; i < 8; i++ {
		job.Splits = append(job.Splits, Split{Index: i, Samples: 10_000_000})
	}
	res, err := tryRunJobLinger(4, cfg, job, nil, 300*sim.Second)
	if err != nil {
		t.Fatal(err)
	}
	if res.Attempts <= 8 {
		t.Errorf("attempts = %d; expected speculative duplicates", res.Attempts)
	}
	// Some attempt must have lost the race.
	lost := 0
	for _, ts := range res.Tasks {
		if !ts.Won {
			lost++
		}
	}
	if lost == 0 {
		t.Error("no losing attempts recorded despite speculation")
	}

	// And speculation should beat the non-speculative run.
	cfgOff := DefaultConfig()
	jobOff := &Job{Name: "spec-off", MapperFor: job.MapperFor}
	jobOff.Splits = append([]Split(nil), job.Splits...)
	resOff := runJob(t, 4, cfgOff, jobOff)
	if res.Duration() >= resOff.Duration() {
		t.Errorf("speculation (%v) did not beat baseline (%v)", res.Duration(), resOff.Duration())
	}
}

func TestSequentialJobs(t *testing.T) {
	eng := sim.NewEngine(1)
	clus, err := cluster.New(eng, 2)
	if err != nil {
		t.Fatal(err)
	}
	rt := NewRuntime(eng, clus, DefaultConfig())
	mk := func(name string) *Job {
		j := &Job{Name: name, MapperFor: StaticMapperFor(FixedMapper{Label: "f", PerSample: sim.Microsecond})}
		j.Splits = []Split{{Index: 0, Samples: 1000}}
		return j
	}
	h1, err := rt.Submit(mk("first"))
	if err != nil {
		t.Fatal(err)
	}
	h2, err := rt.Submit(mk("second"))
	if err != nil {
		t.Fatal(err)
	}
	var r1, r2 *JobResult
	eng.Spawn("driver", func(p *sim.Proc) {
		r1 = h1.Wait(p)
		r2 = h2.Wait(p)
		rt.Shutdown()
	})
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
	if r1 == nil || r2 == nil {
		t.Fatal("jobs did not finish")
	}
	if r2.Finished <= r1.Finished {
		t.Error("second job finished before first (jobs must run sequentially)")
	}
	if h1.Result() == nil || h2.Result() == nil {
		t.Error("Result() nil after completion")
	}
}

func TestSubmitInvalidJob(t *testing.T) {
	eng := sim.NewEngine(1)
	clus, _ := cluster.New(eng, 1)
	rt := NewRuntime(eng, clus, DefaultConfig())
	if _, err := rt.Submit(&Job{}); err == nil {
		t.Error("invalid job accepted")
	}
	if err := rt.KillNode("nope"); err == nil {
		t.Error("KillNode on unknown node should fail")
	}
	rt.Shutdown()
	if _, err := eng.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestEnergyAccounted(t *testing.T) {
	job := simpleDataJob("e", 4, 2, 1<<20, EmptyMapper{})
	res := runJob(t, 4, DefaultConfig(), job)
	if res.EnergyJoules <= 0 {
		t.Error("energy not accounted")
	}
	// Sanity: energy at least idle power x duration x nodes.
	min := res.Duration().Seconds() * 4 * 200
	if res.EnergyJoules < min {
		t.Errorf("energy %.0f J below idle floor %.0f J", res.EnergyJoules, min)
	}
}

func TestMapperNames(t *testing.T) {
	for _, m := range []Mapper{EmptyMapper{}, JavaAESMapper{}, CellAESMapper{},
		JavaPiMapper{}, CellPiMapper{}} {
		if m.Name() == "" {
			t.Error("mapper with empty name")
		}
	}
	// Cell AES must beat Java AES per record at 64MB, but Java Pi
	// must beat Cell Pi at tiny sample counts (SPU init overhead).
	if (CellAESMapper{}).RecordTime(64<<20) >= (JavaAESMapper{}).RecordTime(64<<20) {
		t.Error("Cell AES should beat Java AES on 64MB records")
	}
	if (CellPiMapper{}).SampleTime(100) <= (JavaPiMapper{}).SampleTime(100) {
		t.Error("Java Pi should beat Cell Pi at 100 samples (init overhead)")
	}
	if (CellPiMapper{}).SampleTime(1e9) >= (JavaPiMapper{}).SampleTime(1e9) {
		t.Error("Cell Pi should beat Java Pi at 1e9 samples")
	}
}

func TestAcceleratedMapperFallback(t *testing.T) {
	factory := AcceleratedMapperFor(CellAESMapper{}, JavaAESMapper{})
	accel := &cluster.Node{Name: "a", Accelerated: true}
	plain := &cluster.Node{Name: "b", Accelerated: false}
	if !strings.Contains(factory(accel).Name(), "cell") {
		t.Error("accelerated node should get cell mapper")
	}
	if !strings.Contains(factory(plain).Name(), "java") {
		t.Error("plain node should get java mapper")
	}
}
