package hadoop

import (
	"strings"
	"testing"

	"hetmr/internal/sim"
)

func timelineResult(t *testing.T) *JobResult {
	t.Helper()
	job := simpleDataJob("tl", 4, 2, 4<<20,
		FixedMapper{Label: "m", PerRecord: 100 * sim.Millisecond, OutPerByte: 1})
	job.Reduces = 1
	job.ReduceRate = 50e6
	return runJob(t, 2, DefaultConfig(), job)
}

func TestRenderTimeline(t *testing.T) {
	res := timelineResult(t)
	out := RenderTimeline(res, 60)
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	// Header + 4 maps + 1 reduce.
	if len(lines) != 6 {
		t.Fatalf("timeline has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "tl") || !strings.Contains(lines[0], "5 attempts") {
		t.Errorf("header = %q", lines[0])
	}
	var sawMap, sawReduce bool
	for _, l := range lines[1:] {
		if strings.HasPrefix(l, "map") && strings.Contains(l, "M") {
			sawMap = true
		}
		if strings.HasPrefix(l, "red") && strings.Contains(l, "R") {
			sawReduce = true
		}
		if !strings.Contains(l, "|") {
			t.Errorf("row missing canvas: %q", l)
		}
	}
	if !sawMap || !sawReduce {
		t.Errorf("missing map/reduce rows:\n%s", out)
	}
}

func TestRenderTimelineDegenerate(t *testing.T) {
	if got := RenderTimeline(nil, 40); !strings.Contains(got, "no tasks") {
		t.Errorf("nil result: %q", got)
	}
	if got := RenderTimeline(&JobResult{}, 40); !strings.Contains(got, "no tasks") {
		t.Errorf("empty result: %q", got)
	}
	// Tiny width is clamped, not crashed.
	res := timelineResult(t)
	if got := RenderTimeline(res, 1); got == "" {
		t.Error("clamped width produced nothing")
	}
}

func TestSlotUtilization(t *testing.T) {
	res := timelineResult(t)
	u := SlotUtilization(res, 2, 2)
	if u <= 0 || u > 1 {
		t.Errorf("utilization = %g, want in (0,1]", u)
	}
	if SlotUtilization(nil, 2, 2) != 0 {
		t.Error("nil result should be 0")
	}
	if SlotUtilization(res, 0, 2) != 0 {
		t.Error("zero nodes should be 0")
	}
}

// Property-style scheduler invariants over randomized jobs: every
// split wins exactly once, times are sane, and record accounting
// matches.
func TestSchedulerInvariantsRandomized(t *testing.T) {
	rng := sim.NewRNG(77)
	for trial := 0; trial < 8; trial++ {
		nSplits := rng.Intn(12) + 1
		nNodes := rng.Intn(5) + 1
		recs := rng.Intn(4) + 1
		job := &Job{Name: "rand", MapperFor: StaticMapperFor(
			FixedMapper{Label: "m", PerRecord: sim.Time(rng.Intn(500)) * sim.Millisecond, OutPerByte: 0.5})}
		totalRecords := 0
		for i := 0; i < nSplits; i++ {
			var records []Record
			for r := 0; r < recs; r++ {
				records = append(records, Record{Bytes: int64(rng.Intn(8)+1) << 20})
			}
			totalRecords += recs
			job.Splits = append(job.Splits, Split{Index: i, Records: records})
		}
		res := runJob(t, nNodes, DefaultConfig(), job)
		wins := map[int]int{}
		var fetched int64
		for _, ts := range res.Tasks {
			if ts.End < ts.Start {
				t.Fatalf("trial %d: task ends before start", trial)
			}
			if ts.Start < res.Started || ts.End > res.Finished {
				t.Fatalf("trial %d: task outside job span", trial)
			}
			if ts.Won && !ts.IsReduce {
				wins[ts.Split]++
				fetched += int64(ts.LocalHit + ts.Remote)
			}
		}
		if len(wins) != nSplits {
			t.Fatalf("trial %d: %d splits won, want %d", trial, len(wins), nSplits)
		}
		for idx, n := range wins {
			if n != 1 {
				t.Fatalf("trial %d: split %d won %d times", trial, idx, n)
			}
		}
		if fetched != int64(totalRecords) {
			t.Fatalf("trial %d: fetched %d records, want %d", trial, fetched, totalRecords)
		}
	}
}
