// Package hadoop is a from-scratch implementation of the Hadoop 0.19
// MapReduce runtime architecture the paper runs on (§III-A), executing
// on the discrete-event simulator: a JobTracker process that owns the
// job queue, answers TaskTracker heartbeats (one task assignment per
// heartbeat, as in pre-0.20 Hadoop), performs the serialized per-task
// bookkeeping that ultimately caps scaling, detects tracker failures
// and re-executes their tasks; and one TaskTracker process per worker
// node with a fixed number of map slots, a RecordReader that pulls
// records from the (co-located or remote) DataNode, and per-task
// launch costs.
package hadoop

import (
	"fmt"

	"hetmr/internal/cluster"
	"hetmr/internal/perfmodel"
	"hetmr/internal/sim"
)

// Record is one RecordReader unit of a split (64 MB in the paper's
// data experiments): a size plus the DataNodes holding its block.
type Record struct {
	Bytes int64
	Hosts []string
}

// Split is one map task's work assignment ("the work assignment unit
// of a node"). Either Records (data-intensive) or Samples
// (CPU-intensive, no input) is set.
type Split struct {
	Index   int
	Records []Record
	// Samples is the Monte Carlo workload for CPU-only jobs.
	Samples int64
	// PreferredHosts guides the locality scheduler: nodes holding
	// most of this split's data.
	PreferredHosts []string
}

// InputBytes totals the split's record sizes.
func (s *Split) InputBytes() int64 {
	var total int64
	for _, r := range s.Records {
		total += r.Bytes
	}
	return total
}

// Mapper models one map-function implementation (the paper's
// "Java-pure" and "Cell-accelerated" variants, plus EmptyMapper).
// Implementations return simulated costs; the functional kernels live
// in internal/kernels and are exercised by the live runner.
type Mapper interface {
	// Name identifies the mapper variant.
	Name() string
	// RecordTime is the compute time to map one record of n bytes.
	RecordTime(n int64) sim.Time
	// SampleTime is the compute time for w Monte Carlo samples.
	SampleTime(w int64) sim.Time
	// OutputBytes is the map output volume for an n-byte record
	// (zero for EmptyMapper, which "did not collect any output").
	OutputBytes(n int64) int64
}

// Job is a submitted MapReduce job.
type Job struct {
	Name   string
	Splits []Split
	// MapperFor returns the mapper variant to run on the given node,
	// letting accelerated jobs fall back to the Java kernel on
	// non-accelerated nodes (heterogeneous-cluster extension).
	MapperFor func(node *cluster.Node) Mapper
	// Reduces is the number of reduce tasks run after all maps
	// complete (0 for map-only jobs such as the paper's encryption
	// runs; the PiEstimator uses 1).
	Reduces int
	// ReduceRate is the reducer's processing rate in bytes/s over its
	// shuffle input (defaults to the Power6 Java sort rate when 0).
	ReduceRate float64
}

// Validate checks the job is well-formed.
func (j *Job) Validate() error {
	if j.Name == "" {
		return fmt.Errorf("hadoop: job needs a name")
	}
	if len(j.Splits) == 0 {
		return fmt.Errorf("hadoop: job %q has no splits", j.Name)
	}
	if j.MapperFor == nil {
		return fmt.Errorf("hadoop: job %q has no mapper factory", j.Name)
	}
	if j.Reduces < 0 {
		return fmt.Errorf("hadoop: job %q has negative reduce count", j.Name)
	}
	for i, s := range j.Splits {
		if s.Index != i {
			return fmt.Errorf("hadoop: job %q split %d has index %d", j.Name, i, s.Index)
		}
		if len(s.Records) == 0 && s.Samples <= 0 {
			return fmt.Errorf("hadoop: job %q split %d has neither records nor samples", j.Name, i)
		}
	}
	return nil
}

// TaskStat describes one completed task attempt.
type TaskStat struct {
	Split    int // split index for maps, reducer index for reduces
	IsReduce bool
	Attempt  int
	Tracker  string
	Start    sim.Time
	End      sim.Time
	Won      bool  // false for speculative/failed duplicates that lost
	LocalHit int   // records fetched from the local DataNode
	Remote   int   // records fetched across the network
	Output   int64 // map output bytes (shuffle input contribution)
}

// JobResult aggregates a finished job.
type JobResult struct {
	Name        string
	Submitted   sim.Time
	Started     sim.Time // end of job setup
	Finished    sim.Time // end of job cleanup
	Tasks       []TaskStat
	Attempts    int // total attempts launched, incl. speculative/re-run
	LocalReads  int64
	RemoteReads int64
	InputBytes  int64
	// EnergyJoules is the modelled cluster energy for the job's span
	// (perfmodel energy extension).
	EnergyJoules float64
}

// Duration is the job's makespan as the user sees it.
func (r *JobResult) Duration() sim.Time { return r.Finished - r.Submitted }

// JobHandle tracks a submitted job; Wait blocks a process until the
// job finishes.
type JobHandle struct {
	Job    *Job
	done   *sim.Gate
	result *JobResult
}

// Done reports whether the job has finished.
func (h *JobHandle) Done() bool { return h.done.IsOpen() }

// Wait blocks p until the job completes and returns the result.
func (h *JobHandle) Wait(p *sim.Proc) *JobResult {
	h.done.Wait(p)
	return h.result
}

// Result returns the result if the job has finished, else nil.
func (h *JobHandle) Result() *JobResult {
	if !h.done.IsOpen() {
		return nil
	}
	return h.result
}

// Config carries the Hadoop runtime constants (defaults mirror the
// paper's Hadoop 0.19 setup; see perfmodel for sources).
type Config struct {
	HeartbeatInterval sim.Time
	HeartbeatProcess  sim.Time
	MapSlots          int
	ReduceSlots       int
	TaskLaunch        sim.Time
	TaskHousekeeping  sim.Time
	JobSetup          sim.Time
	JobCleanup        sim.Time
	// TrackerExpiry is how long the JobTracker waits without
	// heartbeats before declaring a TaskTracker lost and re-running
	// its tasks.
	TrackerExpiry sim.Time
	// Speculative enables speculative execution of straggler tasks.
	Speculative bool
	// SpeculativeSlowdown is the multiple of the average completed
	// task time after which a running task is considered a straggler.
	SpeculativeSlowdown float64
}

// DefaultConfig returns the paper-calibrated configuration.
func DefaultConfig() Config {
	return Config{
		HeartbeatInterval:   sim.Seconds(perfmodel.HeartbeatSeconds),
		HeartbeatProcess:    sim.Seconds(perfmodel.HeartbeatProcessSeconds),
		MapSlots:            perfmodel.MapSlotsPerNode,
		ReduceSlots:         perfmodel.MapSlotsPerNode,
		TaskLaunch:          sim.Seconds(perfmodel.TaskLaunchSeconds),
		TaskHousekeeping:    sim.Seconds(perfmodel.TaskHousekeepingSeconds),
		JobSetup:            sim.Seconds(perfmodel.JobSetupSeconds),
		JobCleanup:          sim.Seconds(perfmodel.JobCleanupSeconds),
		TrackerExpiry:       60 * sim.Second,
		Speculative:         false,
		SpeculativeSlowdown: 2.0,
	}
}
