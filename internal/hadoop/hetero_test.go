package hadoop

import (
	"testing"

	"hetmr/internal/cluster"
	"hetmr/internal/sim"
)

// End-to-end heterogeneous-cluster behaviour (paper §V extension).

func TestHeterogeneousPiJobFasterWithMoreAccel(t *testing.T) {
	mk := func(frac float64) sim.Time {
		job := &Job{Name: "het-pi",
			MapperFor: AcceleratedMapperFor(CellPiMapper{}, JavaPiMapper{})}
		for i := 0; i < 16; i++ {
			job.Splits = append(job.Splits, Split{Index: i, Samples: 5e8})
		}
		res, err := tryRunJob(4, DefaultConfig(), job,
			nil, cluster.WithAcceleratedFraction(frac))
		if err != nil {
			t.Fatal(err)
		}
		return res.Duration()
	}
	none, all := mk(0), mk(1)
	if all >= none {
		t.Errorf("full acceleration (%v) not faster than none (%v)", all, none)
	}
	// The gap should be large: 5e8 samples at PPE vs SPE rates.
	if ratio := none.Seconds() / all.Seconds(); ratio < 5 {
		t.Errorf("acceleration speedup = %.1f, want substantial", ratio)
	}
}

func TestRemoteReadsAccounted(t *testing.T) {
	// All records hosted on node000 but preferred host set to a node
	// that doesn't exist in the split's records: with 2 nodes, half
	// the tasks land remote.
	job := &Job{Name: "remote", MapperFor: StaticMapperFor(EmptyMapper{})}
	for i := 0; i < 6; i++ {
		job.Splits = append(job.Splits, Split{
			Index: i,
			Records: []Record{
				{Bytes: 8 << 20, Hosts: []string{cluster.WorkerName(0)}},
			},
			// No preferred host: first-come assignment.
		})
	}
	res := runJob(t, 2, DefaultConfig(), job)
	if res.RemoteReads == 0 {
		t.Error("expected some remote reads with single-node data on a 2-node cluster")
	}
	if res.LocalReads == 0 {
		t.Error("expected some local reads on the hosting node")
	}
	if res.LocalReads+res.RemoteReads != 6 {
		t.Errorf("reads = %d+%d, want 6 total", res.LocalReads, res.RemoteReads)
	}
}

func TestRemoteReadsSlower(t *testing.T) {
	// The same job is slower when data is all on one node (remote
	// fetches over NICs) than when perfectly local.
	mkJob := func(host func(i int) string) *Job {
		job := &Job{Name: "loc", MapperFor: StaticMapperFor(EmptyMapper{})}
		for i := 0; i < 8; i++ {
			h := host(i)
			job.Splits = append(job.Splits, Split{
				Index:          i,
				Records:        []Record{{Bytes: 64 << 20, Hosts: []string{h}}},
				PreferredHosts: []string{h},
			})
		}
		return job
	}
	local := runJob(t, 4, DefaultConfig(), mkJob(func(i int) string {
		return cluster.WorkerName(i % 4)
	}))
	skewed := runJob(t, 4, DefaultConfig(), mkJob(func(i int) string {
		return cluster.WorkerName(0)
	}))
	if skewed.Duration() <= local.Duration() {
		t.Errorf("skewed placement (%v) should be slower than local (%v)",
			skewed.Duration(), local.Duration())
	}
}

func TestJobResultDuration(t *testing.T) {
	res := runJob(t, 1, DefaultConfig(), &Job{
		Name:      "d",
		MapperFor: StaticMapperFor(FixedMapper{Label: "f", PerSample: sim.Microsecond}),
		Splits:    []Split{{Index: 0, Samples: 1000}},
	})
	if res.Duration() != res.Finished-res.Submitted {
		t.Error("Duration mismatch")
	}
	if res.Duration() <= 0 {
		t.Error("non-positive duration")
	}
}
