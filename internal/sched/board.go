package sched

import (
	"fmt"
	"sync"
	"time"
)

// Board is the pull-style face of the scheduler: a task state machine
// for masters whose workers request work over heartbeats (the netmr
// JobTracker). Workers hold a lease on every attempt; an attempt whose
// lease expires is presumed dead (tracker failure) and its task
// becomes assignable again. With speculation enabled, a worker whose
// slots cannot be filled with pending tasks is handed a duplicate of
// the longest-running in-flight task — first finished attempt wins,
// exactly as in the in-process pool.
//
// The board is deterministic: callers pass the current time into
// Assign, so tests can drive it with a manual clock.
type Board struct {
	mu       sync.Mutex
	lease    time.Duration
	opts     Options
	max      int
	tasks    []boardTask
	order    []int // pending-scan order (nil: index order)
	ident    []int // cached identity scan, built lazily
	doneN    int
	counts   map[string]int
	attempts int
}

// boardTask is one task's state at the board.
type boardTask struct {
	done     bool
	attempts int    // every launch: first issue, re-issues, speculation
	failures int    // attempts that reported an error
	winner   string // worker credited with the winning attempt
	live     []boardAttempt
}

// boardAttempt is one leased execution.
type boardAttempt struct {
	worker  string
	started time.Time
}

// NewBoard builds a board for n tasks with the given lease duration.
func NewBoard(n int, lease time.Duration, opts Options) (*Board, error) {
	if n <= 0 {
		return nil, fmt.Errorf("sched: board needs at least one task, got %d", n)
	}
	if lease <= 0 {
		return nil, fmt.Errorf("sched: board needs a positive lease, got %v", lease)
	}
	return &Board{
		lease:  lease,
		opts:   opts,
		max:    opts.maxAttempts(),
		tasks:  make([]boardTask, n),
		counts: make(map[string]int),
	}, nil
}

// Locality grades how near a task's data sits to a worker, mirroring
// the topology distance tiers (internal/topo): on the worker's own
// node, on its rack, or across racks.
type Locality int

// Locality levels, ordered so a higher value is nearer.
const (
	// LocalityRemote is data on another rack (or locality-indifferent
	// tasks).
	LocalityRemote Locality = iota
	// LocalityRack is data on the worker's rack but another node.
	LocalityRack
	// LocalityNode is data on the worker's own node.
	LocalityNode
)

// Assign grants worker up to max pending task attempts at time now:
// expired leases are reclaimed first, then pending tasks in descending
// locality order — node-local first, then rack-local, then any (nil
// predicate: no locality, one flat pass). A task index repeats across
// calls only after a lease expiry. Speculative duplicates are a
// separate step (Speculate), so a master serving several boards can
// exhaust every board's pending work before duplicating anyone's
// stragglers.
func (b *Board) Assign(worker string, max int, now time.Time, locality func(task int) Locality) []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expire(now)
	var out []int
	pending := func(i int) bool {
		t := &b.tasks[i]
		return !t.done && len(t.live) == 0
	}
	if locality != nil {
		for _, want := range []Locality{LocalityNode, LocalityRack} {
			for _, i := range b.scanOrder() {
				if len(out) >= max {
					break
				}
				if pending(i) && locality(i) == want {
					out = b.grant(i, worker, now, out)
				}
			}
		}
	}
	for _, i := range b.scanOrder() {
		if len(out) >= max {
			break
		}
		if pending(i) {
			out = b.grant(i, worker, now, out)
		}
	}
	return out
}

// scanOrder returns the pending-scan order: the SetOrder permutation
// when one is installed, the cached identity otherwise. Callers hold
// b.mu.
func (b *Board) scanOrder() []int {
	if b.order != nil {
		return b.order
	}
	if b.ident == nil {
		b.ident = make([]int, len(b.tasks))
		for i := range b.ident {
			b.ident[i] = i
		}
	}
	return b.ident
}

// SetOrder installs the order Assign scans pending tasks in — the
// range-aware hook: a master that knows per-partition sizes hands out
// the heaviest reduce ranges first (LPT), so a skewed partition starts
// early instead of serializing the tail. An order that is not a
// permutation of the task indices is rejected and the board keeps its
// current scan; nil restores index order.
func (b *Board) SetOrder(order []int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if order == nil {
		b.order = nil
		return
	}
	if len(order) != len(b.tasks) {
		return
	}
	seen := make([]bool, len(b.tasks))
	for _, i := range order {
		if i < 0 || i >= len(b.tasks) || seen[i] {
			return
		}
		seen[i] = true
	}
	b.order = append([]int(nil), order...)
}

// Speculate grants worker up to max speculative duplicates of the
// longest-running in-flight tasks at time now — the idle-capacity
// step, meant to run only after Assign found no pending work anywhere.
// It returns nothing unless the board was built with speculation on.
func (b *Board) Speculate(worker string, max int, now time.Time) []int {
	b.mu.Lock()
	defer b.mu.Unlock()
	if !b.opts.Speculative {
		return nil
	}
	b.expire(now)
	var out []int
	for len(out) < max {
		i, ok := b.straggler(worker)
		if !ok {
			break
		}
		out = b.grant(i, worker, now, out)
	}
	return out
}

// grant records an attempt launch. Callers hold b.mu.
func (b *Board) grant(i int, worker string, now time.Time, out []int) []int {
	t := &b.tasks[i]
	t.attempts++
	b.attempts++
	t.live = append(t.live, boardAttempt{worker: worker, started: now})
	return append(out, i)
}

// expire drops attempts whose lease ran out. Callers hold b.mu.
func (b *Board) expire(now time.Time) {
	for i := range b.tasks {
		t := &b.tasks[i]
		kept := t.live[:0]
		for _, a := range t.live {
			if now.Sub(a.started) < b.lease {
				kept = append(kept, a)
			}
		}
		t.live = kept
	}
}

// straggler picks the oldest single-attempt in-flight task not already
// running on worker, with attempt budget left. Callers hold b.mu.
func (b *Board) straggler(worker string) (int, bool) {
	best, ok := 0, false
	var bestStart time.Time
	for i := range b.tasks {
		t := &b.tasks[i]
		if t.done || len(t.live) != 1 || t.live[0].worker == worker || t.attempts >= b.max {
			continue
		}
		if !ok || t.live[0].started.Before(bestStart) {
			best, bestStart, ok = i, t.live[0].started, true
		}
	}
	return best, ok
}

// Complete reports an attempt's result arrival. It returns true when
// this attempt wins the task (first finish) — the caller should keep
// its output — and false for duplicates of already-completed tasks,
// whose output must be discarded.
func (b *Board) Complete(task int, worker string) bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	if task < 0 || task >= len(b.tasks) {
		return false
	}
	t := &b.tasks[task]
	if t.done {
		return false
	}
	t.done = true
	t.winner = worker
	t.live = nil
	b.doneN++
	b.counts[worker]++
	return true
}

// Fail reports an attempt error arriving on a heartbeat: the worker's
// live attempt is dropped immediately, so the task becomes assignable
// on the very next Assign instead of silently waiting out its lease.
//
// dropped is false when the worker held no live attempt for the task —
// a redelivered report (heartbeat replies can be lost mid-frame, so
// reports arrive at-least-once) or one whose lease already expired.
// Such reports are fully ignored: counting them would double-spend the
// failure budget. exhausted is true when MaxAttempts attempts have
// *reported errors* and none is still running — the caller should
// treat that as a permanent task failure. Only reported failures spend
// the budget: lease re-issues after silent worker death and
// speculative duplicates never do (they cap only further speculation),
// or churn could wedge a healthy job.
func (b *Board) Fail(task int, worker string) (dropped, exhausted bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if task < 0 || task >= len(b.tasks) {
		return false, false
	}
	t := &b.tasks[task]
	if t.done {
		return false, false
	}
	for i, a := range t.live {
		if a.worker == worker {
			t.live = append(t.live[:i], t.live[i+1:]...)
			t.failures++
			return true, t.failures >= b.max && len(t.live) == 0
		}
	}
	return false, false
}

// Release drops worker's live attempt on task without spending the
// failure budget: the immediate-re-issue half of Fail for
// infrastructure failures — a reduce attempt that could not fetch a
// dead peer's shuffle output did nothing wrong, and charging it could
// terminally fail a job that a re-run would finish. It returns false
// when the worker held no live attempt (a redelivered report).
func (b *Board) Release(task int, worker string) (dropped bool) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if task < 0 || task >= len(b.tasks) {
		return false
	}
	t := &b.tasks[task]
	if t.done {
		return false
	}
	for i, a := range t.live {
		if a.worker == worker {
			t.live = append(t.live[:i], t.live[i+1:]...)
			return true
		}
	}
	return false
}

// Reopen marks a completed task pending again. The distributed shuffle
// uses it when a finished map task's output is lost with its tracker
// and must be recomputed; the completion count and the winning worker's
// credit are rolled back so accounting stays exact across re-runs, and
// the per-task attempt budget restarts — the earlier attempts did their
// job, losing their output to a dead node must not eat into the re-run's
// failure allowance. The board-wide Attempts total keeps counting every
// launch.
func (b *Board) Reopen(task int) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if task < 0 || task >= len(b.tasks) {
		return
	}
	t := &b.tasks[task]
	if !t.done {
		return
	}
	t.done = false
	t.attempts = 0
	t.failures = 0
	t.live = nil
	b.doneN--
	b.counts[t.winner]--
	t.winner = ""
}

// Affinity reports the device kind this board's tasks prefer ("" when
// indifferent) — the device-affinity grant pass: a master serving
// several boards grants from boards whose affinity matches the
// heartbeating worker's device kind first (accelerated map tasks land
// on accelerated trackers while those have matching work), then sweeps
// every board, so a mismatched worker falls back to any pending task
// rather than idling.
func (b *Board) Affinity() string { return b.opts.Affinity }

// LiveWorkers reports, per worker, how many attempts are in flight at
// time now (leases that expired by now are dropped first, exactly as
// Assign would). A multi-tenant master sums it across a tenant's
// boards for the fair-share load view, and counts the distinct keys
// against the tenant's tracker quota.
func (b *Board) LiveWorkers(now time.Time) map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.expire(now)
	out := make(map[string]int)
	for i := range b.tasks {
		for _, a := range b.tasks[i].live {
			out[a.worker]++
		}
	}
	return out
}

// Done reports whether every task has completed.
func (b *Board) Done() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.doneN == len(b.tasks)
}

// Counts returns completed tasks per worker (the winning attempts).
func (b *Board) Counts() map[string]int {
	b.mu.Lock()
	defer b.mu.Unlock()
	out := make(map[string]int, len(b.counts))
	for w, n := range b.counts {
		out[w] = n
	}
	return out
}

// Attempts reports every attempt launched, including re-issues after
// lease expiry and speculative duplicates.
func (b *Board) Attempts() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.attempts
}
