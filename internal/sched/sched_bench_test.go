package sched

import (
	"sync"
	"testing"
	"time"
)

// The skewed-worker benchmark is the PR's wall-clock argument: a
// 4-worker fleet whose first worker is 10x slower (the paper's
// PPE-only node next to Cell blades) running 32 equal tasks. Static
// assignment splits tasks evenly up front, so the slow worker's share
// bounds the makespan; the work-stealing pool lets fast workers drain
// the slow worker's queue, and speculation additionally rescues its
// in-flight task.

const (
	benchTasks    = 32
	benchFastCost = 200 * time.Microsecond
	benchSlowCost = 2 * time.Millisecond // 10x the fast cost
)

func benchCost(w int) time.Duration {
	if w == 0 {
		return benchSlowCost
	}
	return benchFastCost
}

// BenchmarkSkewedWorkersStatic is the baseline the seed's runners
// implemented: an even up-front split with no migration.
func BenchmarkSkewedWorkersStatic(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var wg sync.WaitGroup
		for w := 0; w < 4; w++ {
			w := w
			wg.Add(1)
			go func() {
				defer wg.Done()
				for t := w; t < benchTasks; t += 4 {
					time.Sleep(benchCost(w))
				}
			}()
		}
		wg.Wait()
	}
}

// BenchmarkSkewedWorkersStealing is the dynamic scheduler without
// speculation: the slow worker keeps only what it can finish.
func BenchmarkSkewedWorkersStealing(b *testing.B) {
	benchPool(b, Options{})
}

// BenchmarkSkewedWorkersSpeculative adds straggler duplication: the
// slow worker's in-flight task no longer gates the tail.
func BenchmarkSkewedWorkersSpeculative(b *testing.B) {
	benchPool(b, Options{Speculative: true})
}

// BenchmarkSkewedWorkersSpeedHints is the full heterogeneity-aware
// configuration: the fleet declares the 10x speed skew up front (the
// engine's per-worker speed hints), so the slow worker is seeded with
// a proportional share instead of an equal one, and stealing plus
// speculation only have to correct the residue.
func BenchmarkSkewedWorkersSpeedHints(b *testing.B) {
	workers := fleet(4)
	workers[0].Speed = 0.1
	benchPoolWith(b, workers, Options{Speculative: true})
}

func benchPool(b *testing.B, opts Options) {
	benchPoolWith(b, fleet(4), opts)
}

func benchPoolWith(b *testing.B, workers []Worker, opts Options) {
	tasks := unhomed(benchTasks)
	exec := func(w, t int) (any, error) {
		time.Sleep(benchCost(w))
		return nil, nil
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Run(workers, tasks, exec, opts); err != nil {
			b.Fatal(err)
		}
	}
}
