// Package sched is the heterogeneity-aware dynamic scheduler shared by
// the functional runtimes: a work-stealing task pool for the
// in-process live cluster (internal/core) and a lease-based task board
// for the pull-style distributed JobTracker (internal/netmr). The
// paper's central claim — that a cluster mixing devices of very
// different speeds only pays off when the runtime load-balances across
// them — needs three mechanisms beyond static task splits, and this
// package provides all of them behind one option set:
//
//   - work stealing: tasks start on their preferred (data-local)
//     worker, but any idle worker takes over queued work from the most
//     loaded peer, so a slow device never serializes the job tail;
//   - speculative execution: when idle capacity appears and no queued
//     work remains, the slowest in-flight task is duplicated and the
//     first finished attempt wins (Hadoop's straggler defence);
//   - failure re-run: attempts that fail (an exec error in the pool, a
//     silent lease expiry on the board) are re-issued on another
//     worker, bounded by MaxAttempts in the pool.
//
// Task results must be deterministic functions of the task alone — the
// same bytes regardless of which worker runs an attempt — which is
// what makes first-finish-wins commits safe and keeps job results
// bit-identical with speculation on or off.
package sched

import (
	"fmt"
	"time"

	"hetmr/internal/metrics"
)

// DefaultMaxAttempts is the per-task attempt cap (first launch plus
// failure re-runs plus speculative duplicates) when Options.MaxAttempts
// is zero. It matches Hadoop's mapred.map.max.attempts default.
const DefaultMaxAttempts = 4

// Worker describes one execution site of a pool.
type Worker struct {
	// ID labels the worker in stats (e.g. the live node name).
	ID string
	// Speed is the worker's relative throughput hint: a worker with
	// Speed 2 is expected to finish tasks twice as fast as one with
	// Speed 1. The initial distribution of un-homed tasks is
	// proportional to it (stealing corrects any hint error at run
	// time). 0 means 1.
	Speed float64
	// Slots is how many tasks the worker runs concurrently (the
	// paper's map slots per node). 0 means 1.
	Slots int
}

// Task describes one unit of work for a pool run.
type Task struct {
	// Home is the preferred worker index (data locality): the task is
	// queued there first, though idle workers may steal it. -1 (or any
	// out-of-range value) means no preference.
	Home int
}

// Exec runs one attempt of task t on worker w and returns the task's
// result. It must be a pure function of the task: attempts of the same
// task may run concurrently on different workers and the pool commits
// whichever finishes first.
type Exec func(w, t int) (any, error)

// Options configures a pool run or a board.
type Options struct {
	// Speculative enables duplicate execution of the slowest in-flight
	// task when a worker goes idle; the first finished attempt wins.
	Speculative bool
	// MaxAttempts caps attempts per task (0: DefaultMaxAttempts). The
	// pool aborts the run when a task fails this many times; the board
	// uses it to bound speculative duplicates and to declare a task
	// exhausted once MaxAttempts of its attempts have reported errors
	// with none still running (lease re-issue after silent worker
	// death never spends the failure budget, or jobs could wedge).
	MaxAttempts int
	// OnCommit, when set, is called exactly once per task with the
	// winning attempt's result, concurrently across tasks, before Run
	// returns. Use it to fold results into shared structures (e.g. the
	// live runner's shuffle) without double-insertion under
	// speculation.
	OnCommit func(t int, result any)
	// DiscardResults makes the pool drop each committed result after
	// OnCommit has consumed it, so Run's results slice never retains
	// every task's payload — the bounded-memory contract for jobs
	// whose commit hook persists the result itself (e.g. sorted runs
	// spilled to disk). Run still returns a slice indexed like tasks;
	// its entries are nil.
	DiscardResults bool
	// Affinity names the device kind this board's tasks prefer (e.g.
	// netmr's "cell" for accelerated map tasks, "host" for reduce
	// merges; "" means no preference). The board records it for the
	// master's device-affinity grant pass: serve boards whose Affinity
	// matches the heartbeating worker's device first, then sweep every
	// board with Assign — preference orders grants, it never idles a
	// worker whose kind mismatches.
	Affinity string
}

// maxAttempts resolves the attempt cap.
func (o Options) maxAttempts() int {
	if o.MaxAttempts > 0 {
		return o.MaxAttempts
	}
	return DefaultMaxAttempts
}

// WorkerStats is one worker's view of a finished pool run.
type WorkerStats struct {
	ID string
	// Committed counts tasks whose winning attempt ran here.
	Committed int
	// Attempts counts every attempt launched here.
	Attempts int
	// Stolen counts attempts taken from another worker's queue.
	Stolen int
	// Speculated counts speculative duplicate attempts launched here.
	Speculated int
	// Failed counts attempts that returned an error.
	Failed int
	// Busy is the total wall time this worker spent executing.
	Busy time.Duration
}

// Throughput is the worker's committed-tasks-per-second rate over its
// busy time (0 when it never ran).
func (w WorkerStats) Throughput() float64 {
	if w.Busy <= 0 {
		return 0
	}
	return float64(w.Committed) / w.Busy.Seconds()
}

// Stats summarizes one pool run.
type Stats struct {
	// Workers holds per-worker counters, indexed like the input fleet.
	Workers []WorkerStats
	// Tasks is the task count; Attempts every launched attempt
	// (including speculative duplicates and failure re-runs).
	Tasks    int
	Attempts int
}

// Counts returns committed tasks per worker ID — the "who did the
// work" imbalance view.
func (s *Stats) Counts() map[string]int {
	out := make(map[string]int, len(s.Workers))
	for _, w := range s.Workers {
		out[w.ID] = w.Committed
	}
	return out
}

// Figure renders the run as a metrics figure: one point per worker,
// with committed tasks and launched attempts as separate series — the
// same shape the experiment harness prints for the paper's figures.
func (s *Stats) Figure(id, title string) *metrics.Figure {
	fig := &metrics.Figure{
		ID:     id,
		Title:  title,
		XLabel: "worker",
		YLabel: "tasks",
		Series: []metrics.Series{{Label: "committed"}, {Label: "attempts"}},
	}
	for i, w := range s.Workers {
		x := float64(i)
		fig.Series[0].Points = append(fig.Series[0].Points, metrics.Point{X: x, Y: float64(w.Committed)})
		fig.Series[1].Points = append(fig.Series[1].Points, metrics.Point{X: x, Y: float64(w.Attempts)})
	}
	return fig
}

// normalizeWorkers validates a fleet and resolves zero fields.
func normalizeWorkers(workers []Worker) ([]Worker, error) {
	if len(workers) == 0 {
		return nil, fmt.Errorf("sched: need at least one worker")
	}
	out := make([]Worker, len(workers))
	for i, w := range workers {
		if w.Speed < 0 {
			return nil, fmt.Errorf("sched: worker %d has negative speed %g", i, w.Speed)
		}
		if w.Speed == 0 {
			w.Speed = 1
		}
		if w.Slots < 0 {
			return nil, fmt.Errorf("sched: worker %d has negative slots %d", i, w.Slots)
		}
		if w.Slots == 0 {
			w.Slots = 1
		}
		if w.ID == "" {
			w.ID = fmt.Sprintf("worker%03d", i)
		}
		out[i] = w
	}
	return out, nil
}
