package sched

import (
	"sync"
	"testing"
)

func TestQueuesPushPopFIFO(t *testing.T) {
	q := NewQueues(2)
	for i := 0; i < 5; i++ {
		q.Push(0, i)
	}
	for want := 0; want < 5; want++ {
		got, ok := q.Pop(0)
		if !ok || got != want {
			t.Fatalf("Pop = %d,%v, want %d", got, ok, want)
		}
	}
	if _, ok := q.Pop(0); ok {
		t.Error("Pop on empty deque succeeded")
	}
}

func TestQueuesStealFromLongest(t *testing.T) {
	q := NewQueues(3)
	q.Push(0, 10)
	q.Push(1, 20)
	q.Push(1, 21)
	q.Push(1, 22)
	task, victim, ok := q.Steal(2)
	if !ok || victim != 1 || task != 22 {
		t.Fatalf("Steal = %d from %d (%v), want 22 from 1", task, victim, ok)
	}
	// A thief never robs itself, even when it holds the longest deque.
	q.Push(2, 30)
	q.Push(2, 31)
	task, victim, ok = q.Steal(2)
	if !ok || victim == 2 {
		t.Fatalf("Steal = %d from %d (%v); thief robbed itself", task, victim, ok)
	}
	if q.Total() != 4 {
		t.Errorf("Total = %d, want 4", q.Total())
	}
}

// TestQueuesConcurrentStealCompleteFail hammers the queue set from
// many goroutines — owners popping, thieves stealing, failures pushing
// tasks back — and checks every task is consumed exactly once. Run
// with -race, this is the work-stealing queue's data-race gate.
func TestQueuesConcurrentStealCompleteFail(t *testing.T) {
	const workers = 8
	const tasks = 4096
	q := NewQueues(workers)
	for i := 0; i < tasks; i++ {
		q.Push(i%workers, i)
	}
	seen := make([]int32, tasks)
	var retries sync.Map
	var wg sync.WaitGroup
	var mu sync.Mutex
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				task, ok := q.Pop(w)
				if !ok {
					task, _, ok = q.Steal(w)
				}
				if !ok {
					return
				}
				// Simulate a one-shot failure on every 17th task: push it
				// back onto a neighbour for another worker to re-run.
				if task%17 == 0 {
					if _, failed := retries.LoadOrStore(task, true); !failed {
						q.Push((w+1)%workers, task)
						continue
					}
				}
				mu.Lock()
				seen[task]++
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("task %d consumed %d times", i, n)
		}
	}
	if q.Total() != 0 {
		t.Errorf("queues not drained: %d left", q.Total())
	}
}
