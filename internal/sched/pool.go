package sched

import (
	"fmt"
	"sync"
	"time"
)

// Run executes tasks over the worker fleet with work stealing and,
// when enabled, speculative re-execution and failure re-runs. It
// returns the per-task results (indexed like tasks) and the run's
// per-worker stats.
//
// Placement: homed tasks are queued on their preferred worker first;
// the rest are spread proportionally to worker speed hints. Any idle
// worker steals queued work from the most loaded peer, so placement
// (and hint error) only affects where work starts, never whether a
// slow worker serializes the tail.
//
// Completion: the first finished attempt of a task wins; its result is
// committed (and Options.OnCommit invoked) exactly once. Losing
// duplicate attempts may still be executing when Run returns — they
// are pure by the Exec contract and their results are discarded.
//
// Failure: an attempt that returns an error is parked for retry and
// picked up by the next worker to go idle other than the one that
// failed it, until the task's attempt cap (Options.MaxAttempts) is
// exhausted, at which point Run aborts and returns the last error.
func Run(workers []Worker, tasks []Task, exec Exec, opts Options) ([]any, *Stats, error) {
	fleet, err := normalizeWorkers(workers)
	if err != nil {
		return nil, nil, err
	}
	p := &pool{
		workers: fleet,
		tasks:   tasks,
		exec:    exec,
		opts:    opts,
		max:     opts.maxAttempts(),
		q:       NewQueues(len(fleet)),
		results: make([]any, len(tasks)),
		done:    make([]bool, len(tasks)),
		tries:   make([]int, len(tasks)),
		live:    make(map[int][]liveAttempt),
		stats:   make([]WorkerStats, len(fleet)),
	}
	for i, w := range fleet {
		p.stats[i].ID = w.ID
	}
	p.cond = sync.NewCond(&p.mu)
	p.distribute()
	for w := range fleet {
		for s := 0; s < fleet[w].Slots; s++ {
			go p.slot(w)
		}
	}
	p.mu.Lock()
	for p.doneCount < len(tasks) && !p.aborted {
		p.cond.Wait()
	}
	results, err := p.results, p.failErr
	stats := p.snapshot()
	p.mu.Unlock()
	if err != nil {
		return nil, stats, err
	}
	return results, stats, nil
}

// liveAttempt is one in-flight execution.
type liveAttempt struct {
	worker int
	start  time.Time
}

// retryTask is a failed task awaiting re-run on a worker other than
// the one that just failed it (so a broken worker cannot steal its own
// failure back and burn the task's whole attempt budget).
type retryTask struct {
	task     int
	excluded int
}

type pool struct {
	workers []Worker
	tasks   []Task
	exec    Exec
	opts    Options
	max     int
	q       *Queues

	mu        sync.Mutex
	cond      *sync.Cond
	results   []any
	done      []bool
	doneCount int
	tries     []int // attempts launched per task
	live      map[int][]liveAttempt
	retry     []retryTask
	failErr   error
	aborted   bool
	stats     []WorkerStats
	attempts  int
}

// distribute seeds the queues: homed tasks go to their preferred
// worker, the rest are spread proportionally to speed hints (each task
// goes to the worker whose weighted load is lowest).
func (p *pool) distribute() {
	load := make([]float64, len(p.workers))
	for i, t := range p.tasks {
		if t.Home >= 0 && t.Home < len(p.workers) {
			p.q.Push(t.Home, i)
			load[t.Home] += 1 / p.workers[t.Home].Speed
			continue
		}
		best := 0
		for w := range p.workers {
			if (load[w]+1)/p.workers[w].Speed < (load[best]+1)/p.workers[best].Speed {
				best = w
			}
		}
		p.q.Push(best, i)
		load[best] += 1 / p.workers[best].Speed
	}
}

// slot is one worker execution slot: pull a task (own queue, then
// steal, then speculate), run it, commit or retry, repeat.
func (p *pool) slot(w int) {
	for {
		t, ok := p.next(w)
		if !ok {
			return
		}
		start := time.Now()
		res, err := p.exec(w, t)
		p.finish(w, t, res, err, time.Since(start))
	}
}

// next blocks until worker w has an attempt to run or the pool is
// finished/aborted.
func (p *pool) next(w int) (int, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	for {
		if p.aborted || p.doneCount == len(p.tasks) {
			return 0, false
		}
		if t, ok := p.q.Pop(w); ok {
			p.launch(w, t)
			return t, true
		}
		if t, _, ok := p.q.Steal(w); ok {
			p.stats[w].Stolen++
			p.launch(w, t)
			return t, true
		}
		if t, ok := p.takeRetry(w); ok {
			p.launch(w, t)
			return t, true
		}
		if p.opts.Speculative {
			if t, ok := p.straggler(w); ok {
				p.stats[w].Speculated++
				p.launch(w, t)
				return t, true
			}
		}
		p.cond.Wait()
	}
}

// launch records an attempt start. Callers hold p.mu.
func (p *pool) launch(w, t int) {
	p.tries[t]++
	p.attempts++
	p.stats[w].Attempts++
	p.live[t] = append(p.live[t], liveAttempt{worker: w, start: time.Now()})
}

// takeRetry hands worker w the first failed task it is allowed to
// re-run (single-worker fleets may retry their own failures, or
// nothing would). Callers hold p.mu.
func (p *pool) takeRetry(w int) (int, bool) {
	for i, r := range p.retry {
		if r.excluded == w && len(p.workers) > 1 {
			continue
		}
		p.retry = append(p.retry[:i], p.retry[i+1:]...)
		return r.task, true
	}
	return 0, false
}

// straggler picks the in-flight task that has been running longest and
// is eligible for a speculative duplicate on worker w: not done, not
// already duplicated, not running on w itself, attempt budget left.
// Callers hold p.mu.
func (p *pool) straggler(w int) (int, bool) {
	best, ok := 0, false
	var bestStart time.Time
	for t, attempts := range p.live {
		if p.done[t] || len(attempts) != 1 || attempts[0].worker == w || p.tries[t] >= p.max {
			continue
		}
		if !ok || attempts[0].start.Before(bestStart) ||
			(attempts[0].start.Equal(bestStart) && t < best) {
			best, bestStart, ok = t, attempts[0].start, true
		}
	}
	return best, ok
}

// finish records an attempt's outcome: commit on first success,
// re-queue or abort on failure.
func (p *pool) finish(w, t int, res any, err error, busy time.Duration) {
	p.mu.Lock()
	p.stats[w].Busy += busy
	p.dropLive(t, w)
	if err != nil {
		p.stats[w].Failed++
		if !p.done[t] && len(p.live[t]) == 0 {
			if p.tries[t] >= p.max {
				if p.failErr == nil {
					p.failErr = fmt.Errorf("sched: task %d failed after %d attempts: %w", t, p.tries[t], err)
				}
				p.aborted = true
			} else {
				p.retry = append(p.retry, retryTask{task: t, excluded: w})
			}
		}
		p.cond.Broadcast()
		p.mu.Unlock()
		return
	}
	if p.done[t] {
		// A duplicate lost the race; its result is discarded.
		p.mu.Unlock()
		return
	}
	p.done[t] = true
	if !p.opts.DiscardResults {
		p.results[t] = res
	}
	p.stats[w].Committed++
	p.mu.Unlock()
	if p.opts.OnCommit != nil {
		p.opts.OnCommit(t, res)
	}
	p.mu.Lock()
	p.doneCount++
	p.cond.Broadcast()
	p.mu.Unlock()
}

// dropLive removes one in-flight record of worker w for task t.
// Callers hold p.mu.
func (p *pool) dropLive(t, w int) {
	attempts := p.live[t]
	for i, a := range attempts {
		if a.worker == w {
			p.live[t] = append(attempts[:i], attempts[i+1:]...)
			break
		}
	}
	if len(p.live[t]) == 0 {
		delete(p.live, t)
	}
}

// snapshot copies the stats so callers can read them after Run returns
// while losing duplicate attempts are still draining. Callers hold
// p.mu.
func (p *pool) snapshot() *Stats {
	s := &Stats{
		Workers:  append([]WorkerStats(nil), p.stats...),
		Tasks:    len(p.tasks),
		Attempts: p.attempts,
	}
	return s
}
