package sched

import (
	"errors"
	"fmt"
	"sync/atomic"
	"testing"
	"time"
)

// fleet builds n equal workers with one slot each.
func fleet(n int) []Worker {
	ws := make([]Worker, n)
	for i := range ws {
		ws[i] = Worker{ID: fmt.Sprintf("w%d", i)}
	}
	return ws
}

// unhomed builds n tasks with no placement preference.
func unhomed(n int) []Task {
	ts := make([]Task, n)
	for i := range ts {
		ts[i] = Task{Home: -1}
	}
	return ts
}

func TestRunCommitsEveryTaskOnce(t *testing.T) {
	const n = 100
	var commits atomic.Int64
	results, stats, err := Run(fleet(4), unhomed(n), func(w, task int) (any, error) {
		return task * 2, nil
	}, Options{OnCommit: func(int, any) { commits.Add(1) }})
	if err != nil {
		t.Fatal(err)
	}
	if commits.Load() != n {
		t.Errorf("OnCommit ran %d times, want %d", commits.Load(), n)
	}
	for i, r := range results {
		if r.(int) != i*2 {
			t.Errorf("results[%d] = %v", i, r)
		}
	}
	total := 0
	for _, w := range stats.Workers {
		total += w.Committed
	}
	if total != n || stats.Tasks != n {
		t.Errorf("committed %d / tasks %d, want %d", total, stats.Tasks, n)
	}
	if stats.Attempts < n {
		t.Errorf("attempts %d < tasks %d", stats.Attempts, n)
	}
}

func TestRunHomedTasksAndStealing(t *testing.T) {
	// All tasks homed on worker 0; with 4 workers the others must
	// steal, or the run serializes.
	const n = 64
	tasks := make([]Task, n)
	for i := range tasks {
		tasks[i] = Task{Home: 0}
	}
	_, stats, err := Run(fleet(4), tasks, func(w, task int) (any, error) {
		time.Sleep(200 * time.Microsecond)
		return nil, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	stolen := 0
	for _, w := range stats.Workers {
		stolen += w.Stolen
	}
	if stolen == 0 {
		t.Error("no task was stolen from the overloaded home worker")
	}
	if stats.Workers[0].Committed == n {
		t.Error("home worker ran everything; stealing had no effect")
	}
}

func TestRunFailureReRunsElsewhere(t *testing.T) {
	// Worker 0 fails every attempt; the job must still finish, with
	// every failed task re-run on a healthy worker.
	boom := errors.New("bad node")
	results, stats, err := Run(fleet(3), unhomed(30), func(w, task int) (any, error) {
		if w == 0 {
			return nil, boom
		}
		time.Sleep(200 * time.Microsecond) // keep healthy workers busy long enough for worker 0 to participate
		return task, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range results {
		if r.(int) != i {
			t.Fatalf("results[%d] = %v after re-runs", i, r)
		}
	}
	if stats.Workers[0].Failed == 0 {
		t.Error("failing worker recorded no failures")
	}
	if stats.Workers[0].Committed != 0 {
		t.Error("failing worker committed tasks")
	}
}

func TestRunMaxAttemptsAborts(t *testing.T) {
	boom := errors.New("always broken")
	calls := atomic.Int64{}
	_, _, err := Run(fleet(2), unhomed(4), func(w, task int) (any, error) {
		calls.Add(1)
		return nil, boom
	}, Options{MaxAttempts: 3})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped %v", err, boom)
	}
}

func TestRunSpeculationBeatsStraggler(t *testing.T) {
	// Mirrors internal/hadoop's TestSpeculativeExecution on the live
	// pool: worker 0 takes ~150ms per task, the others microseconds.
	// Without speculation the job waits for worker 0's in-flight task;
	// with it, a duplicate on an idle fast worker wins and the run
	// returns while the straggler is still asleep.
	// Fast workers take ~2ms per task so the straggler is guaranteed to
	// have pulled (and be sleeping on) a task before the queue drains.
	const delay = 150 * time.Millisecond
	run := func(speculative bool) (time.Duration, *Stats) {
		exec := func(w, task int) (any, error) {
			if w == 0 {
				time.Sleep(delay)
			} else {
				time.Sleep(2 * time.Millisecond)
			}
			return task, nil
		}
		start := time.Now()
		results, stats, err := Run(fleet(3), unhomed(24), exec,
			Options{Speculative: speculative})
		if err != nil {
			t.Fatal(err)
		}
		for i, r := range results {
			if r.(int) != i {
				t.Fatalf("speculative=%v: results[%d] = %v", speculative, i, r)
			}
		}
		return time.Since(start), stats
	}
	slow, _ := run(false)
	fast, stats := run(true)
	speculated := 0
	for _, w := range stats.Workers {
		speculated += w.Speculated
	}
	if speculated == 0 {
		t.Error("no speculative attempt launched")
	}
	if fast >= delay {
		t.Errorf("speculative run took %v, want < straggler delay %v", fast, delay)
	}
	if fast >= slow {
		t.Errorf("speculation (%v) did not beat baseline (%v)", fast, slow)
	}
}

func TestRunSpeedHintsSkewDistribution(t *testing.T) {
	// A 10x speed hint should skew the initial distribution, visible
	// through committed counts when execution honours the same skew.
	workers := []Worker{
		{ID: "slow", Speed: 1},
		{ID: "fast", Speed: 10},
	}
	_, stats, err := Run(workers, unhomed(44), func(w, task int) (any, error) {
		if w == 0 {
			time.Sleep(2 * time.Millisecond)
		}
		return nil, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if stats.Workers[1].Committed <= stats.Workers[0].Committed {
		t.Errorf("fast worker committed %d <= slow worker's %d",
			stats.Workers[1].Committed, stats.Workers[0].Committed)
	}
}

func TestRunValidation(t *testing.T) {
	if _, _, err := Run(nil, unhomed(1), nil, Options{}); err == nil {
		t.Error("empty fleet accepted")
	}
	if _, _, err := Run([]Worker{{Speed: -1}}, unhomed(1), nil, Options{}); err == nil {
		t.Error("negative speed accepted")
	}
	if _, _, err := Run([]Worker{{Slots: -2}}, unhomed(1), nil, Options{}); err == nil {
		t.Error("negative slots accepted")
	}
	// Zero tasks completes immediately.
	results, stats, err := Run(fleet(2), nil, nil, Options{})
	if err != nil || len(results) != 0 || stats.Tasks != 0 {
		t.Errorf("empty run: results=%v stats=%+v err=%v", results, stats, err)
	}
}

func TestStatsCountsAndFigure(t *testing.T) {
	_, stats, err := Run(fleet(2), unhomed(10), func(w, task int) (any, error) {
		return nil, nil
	}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	counts := stats.Counts()
	sum := 0
	for _, n := range counts {
		sum += n
	}
	if sum != 10 {
		t.Errorf("Counts sums to %d, want 10", sum)
	}
	fig := stats.Figure("figS", "per-worker tasks")
	if got := fig.FindSeries("committed"); got == nil || len(got.Points) != 2 {
		t.Fatalf("committed series = %+v", got)
	}
	var y float64
	for _, p := range fig.FindSeries("committed").Points {
		y += p.Y
	}
	if y != 10 {
		t.Errorf("figure committed total = %g, want 10", y)
	}
}
