package sched

import (
	"math"
	"testing"
	"time"
)

// TestFairShareWeightedGrants drives a saturated two-tenant arbiter and
// checks grant counts converge to the weight ratio: the heart of the
// multi-tenant JobTracker's grant pass, exercised without any boards.
func TestFairShareWeightedGrants(t *testing.T) {
	f := NewFairShare()
	f.SetWeight("alice", 1)
	f.SetWeight("bob", 3)
	eligible := []string{"alice", "bob"}
	grants := map[string]int{}
	for i := 0; i < 4000; i++ {
		tenant := f.Pick(eligible)
		if tenant == "" {
			t.Fatalf("grant %d: no tenant picked from %v", i, eligible)
		}
		f.Charge(tenant)
		grants[tenant]++
	}
	share := float64(grants["bob"]) / 4000
	if math.Abs(share-0.75) > 0.01 {
		t.Fatalf("bob (weight 3 of 4) got share %.3f of grants (%v), want ~0.75", share, grants)
	}
}

// TestFairShareIdleReset proves a tenant cannot bank credit while idle:
// after sitting out (Idle) it competes from zero, not from a hoard.
func TestFairShareIdleReset(t *testing.T) {
	f := NewFairShare()
	f.SetWeight("alice", 1)
	f.SetWeight("bob", 1)
	// Alice alone for a long stretch: all grants hers.
	for i := 0; i < 100; i++ {
		if got := f.Pick([]string{"alice"}); got != "alice" {
			t.Fatalf("solo pick %d: got %q", i, got)
		}
		f.Charge("alice")
	}
	f.Idle("bob") // bob had no work the whole time
	// Bob wakes: from here the two must alternate ~evenly, not bob
	// monopolizing to repay an idle-time hoard.
	grants := map[string]int{}
	for i := 0; i < 200; i++ {
		tenant := f.Pick([]string{"alice", "bob"})
		f.Charge(tenant)
		grants[tenant]++
	}
	if diff := grants["alice"] - grants["bob"]; diff < -20 || diff > 20 {
		t.Fatalf("post-idle grants skewed: %v", grants)
	}
}

// TestFairShareDeterministicTie pins the tie-break: equal weights and
// credits serve the lexicographically smaller name first.
func TestFairShareDeterministicTie(t *testing.T) {
	f := NewFairShare()
	if got := f.Pick([]string{"b", "a"}); got != "a" {
		t.Fatalf("tie pick: got %q, want %q", got, "a")
	}
}

// TestBoardLiveWorkers checks the live-attempt census the multi-tenant
// master uses for tracker quotas: grants appear, completions disappear,
// expired leases are dropped.
func TestBoardLiveWorkers(t *testing.T) {
	lease := time.Minute
	b, err := NewBoard(3, lease, Options{})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	b.Assign("w1", 2, now, nil)
	b.Assign("w2", 1, now, nil)
	live := b.LiveWorkers(now)
	if live["w1"] != 2 || live["w2"] != 1 {
		t.Fatalf("live after grants: %v", live)
	}
	b.Complete(0, "w1")
	if live := b.LiveWorkers(now); live["w1"] != 1 {
		t.Fatalf("live after completion: %v", live)
	}
	if live := b.LiveWorkers(now.Add(2 * lease)); len(live) != 0 {
		t.Fatalf("live after lease expiry: %v", live)
	}
}
