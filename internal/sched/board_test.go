package sched

import (
	"testing"
	"time"
)

// The board is driven with a manual clock: every behaviour below is
// fully deterministic.

func boardAt(t *testing.T, n int, lease time.Duration, opts Options) *Board {
	t.Helper()
	b, err := NewBoard(n, lease, opts)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestBoardAssignsEachTaskOnce(t *testing.T) {
	b := boardAt(t, 5, time.Second, Options{})
	t0 := time.Unix(0, 0)
	got := b.Assign("a", 3, t0, nil)
	if len(got) != 3 {
		t.Fatalf("granted %v, want 3 tasks", got)
	}
	rest := b.Assign("b", 10, t0, nil)
	if len(rest) != 2 {
		t.Fatalf("granted %v, want the remaining 2", rest)
	}
	if more := b.Assign("c", 10, t0, nil); len(more) != 0 {
		t.Fatalf("granted %v with everything leased", more)
	}
	if dup := b.Speculate("c", 10, t0); len(dup) != 0 {
		t.Fatalf("Speculate granted %v on a speculation-off board", dup)
	}
}

func TestBoardRecordsAffinity(t *testing.T) {
	// The device-affinity grant pass lives at the master (serve
	// matching boards first, sweep the rest), so the board's part is
	// carrying the preference faithfully.
	if got := boardAt(t, 1, time.Second, Options{Affinity: "cell"}).Affinity(); got != "cell" {
		t.Errorf("Affinity() = %q, want %q", got, "cell")
	}
	if got := boardAt(t, 1, time.Second, Options{}).Affinity(); got != "" {
		t.Errorf("Affinity() = %q, want empty", got)
	}
}

func TestBoardLocalityFirst(t *testing.T) {
	b := boardAt(t, 4, time.Second, Options{})
	t0 := time.Unix(0, 0)
	local := func(i int) Locality {
		if i == 2 || i == 3 {
			return LocalityNode
		}
		return LocalityRemote
	}
	got := b.Assign("a", 2, t0, local)
	if len(got) != 2 || got[0] != 2 || got[1] != 3 {
		t.Fatalf("granted %v, want the local tasks [2 3] first", got)
	}
}

func TestBoardRackLocalityOrder(t *testing.T) {
	// Full node → rack → remote order: with three grants available the
	// node-local task goes first, then the rack-local one, then remote.
	b := boardAt(t, 3, time.Second, Options{})
	t0 := time.Unix(0, 0)
	locality := func(i int) Locality {
		switch i {
		case 1:
			return LocalityNode
		case 2:
			return LocalityRack
		default:
			return LocalityRemote
		}
	}
	got := b.Assign("a", 3, t0, locality)
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 0 {
		t.Fatalf("granted %v, want node-local 1, rack-local 2, remote 0", got)
	}
	// A worker with one slot and only rack-local data still gets it
	// ahead of remote tasks.
	b2 := boardAt(t, 2, time.Second, Options{})
	rackOnly := func(i int) Locality {
		if i == 1 {
			return LocalityRack
		}
		return LocalityRemote
	}
	if got := b2.Assign("b", 1, t0, rackOnly); len(got) != 1 || got[0] != 1 {
		t.Fatalf("granted %v, want the rack-local task [1]", got)
	}
}

func TestBoardLeaseExpiryReissues(t *testing.T) {
	b := boardAt(t, 1, time.Second, Options{})
	t0 := time.Unix(100, 0)
	if got := b.Assign("dead", 1, t0, nil); len(got) != 1 {
		t.Fatalf("granted %v", got)
	}
	// Within the lease the task stays assigned.
	if got := b.Assign("b", 1, t0.Add(500*time.Millisecond), nil); len(got) != 0 {
		t.Fatalf("re-granted %v before the lease expired", got)
	}
	// After expiry it migrates.
	got := b.Assign("b", 1, t0.Add(1100*time.Millisecond), nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("granted %v after expiry, want [0]", got)
	}
	if b.Attempts() != 2 {
		t.Errorf("attempts = %d, want 2", b.Attempts())
	}
}

func TestBoardFirstFinishWins(t *testing.T) {
	b := boardAt(t, 1, time.Second, Options{Speculative: true})
	t0 := time.Unix(0, 0)
	b.Assign("slow", 1, t0, nil)
	// Assign never duplicates; the idle second worker gets the
	// speculative duplicate from the dedicated step.
	if got := b.Assign("fast", 1, t0.Add(10*time.Millisecond), nil); len(got) != 0 {
		t.Fatalf("Assign granted %v with no pending tasks", got)
	}
	dup := b.Speculate("fast", 1, t0.Add(10*time.Millisecond))
	if len(dup) != 1 || dup[0] != 0 {
		t.Fatalf("speculative grant = %v, want [0]", dup)
	}
	if !b.Complete(0, "fast") {
		t.Error("first completion rejected")
	}
	if b.Complete(0, "slow") {
		t.Error("late duplicate completion accepted")
	}
	if !b.Done() {
		t.Error("board not done after the only task completed")
	}
	counts := b.Counts()
	if counts["fast"] != 1 || counts["slow"] != 0 {
		t.Errorf("counts = %v", counts)
	}
}

func TestBoardSpeculationPicksOldestAndRespectsCaps(t *testing.T) {
	b := boardAt(t, 3, time.Minute, Options{Speculative: true, MaxAttempts: 2})
	t0 := time.Unix(0, 0)
	b.Assign("a", 1, t0, nil)                    // task 0, oldest
	b.Assign("b", 1, t0.Add(time.Second), nil)   // task 1
	b.Assign("c", 1, t0.Add(2*time.Second), nil) // task 2
	dup := b.Speculate("d", 1, t0.Add(3*time.Second))
	if len(dup) != 1 || dup[0] != 0 {
		t.Fatalf("speculative grant = %v, want the oldest in-flight [0]", dup)
	}
	// Task 0 now has 2 attempts (the cap) and 2 live copies: no worker
	// may speculate it again, and the next-oldest is task 1.
	dup = b.Speculate("e", 1, t0.Add(4*time.Second))
	if len(dup) != 1 || dup[0] != 1 {
		t.Fatalf("second speculative grant = %v, want [1]", dup)
	}
	// A worker never duplicates its own in-flight task.
	if got := b.Speculate("c", 1, t0.Add(5*time.Second)); len(got) != 0 {
		t.Fatalf("worker c granted %v, but only its own task 2 is eligible", got)
	}
}

func TestBoardFailReissuesImmediately(t *testing.T) {
	b := boardAt(t, 1, time.Minute, Options{MaxAttempts: 3})
	t0 := time.Unix(0, 0)
	if got := b.Assign("a", 1, t0, nil); len(got) != 1 {
		t.Fatalf("granted %v", got)
	}
	// A reported failure frees the task well inside its lease.
	dropped, exhausted := b.Fail(0, "a")
	if !dropped || exhausted {
		t.Fatalf("Fail = (%v, %v), want dropped without exhaustion", dropped, exhausted)
	}
	// Reports arrive at-least-once: a redelivered failure finds no
	// live attempt and must not double-spend the budget.
	if dropped, _ := b.Fail(0, "a"); dropped {
		t.Fatal("redelivered failure report counted twice")
	}
	got := b.Assign("b", 1, t0.Add(time.Millisecond), nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("granted %v right after the failure, want [0]", got)
	}
	if _, exhausted := b.Fail(0, "b"); exhausted {
		t.Fatal("exhausted at failure 2 of 3")
	}
	b.Assign("c", 1, t0.Add(2*time.Millisecond), nil)
	if _, exhausted := b.Fail(0, "c"); !exhausted {
		t.Fatal("third reported failure did not exhaust the cap")
	}
	// Out-of-range tasks and workers without an attempt are no-ops.
	if d, e := b.Fail(-1, "x"); d || e {
		t.Error("out-of-range failure accepted")
	}
	if d, e := b.Fail(9, "x"); d || e {
		t.Error("out-of-range failure accepted")
	}
}

func TestBoardReopenRollsBackCompletion(t *testing.T) {
	b := boardAt(t, 2, time.Minute, Options{})
	t0 := time.Unix(0, 0)
	b.Assign("a", 2, t0, nil)
	if !b.Complete(0, "a") {
		t.Fatal("completion rejected")
	}
	if n := b.Counts()["a"]; n != 1 {
		t.Fatalf("counts[a] = %d, want 1", n)
	}
	// Reopen: the task is assignable again and the credit rolls back,
	// so accounting stays exact across shuffle re-runs.
	b.Reopen(0)
	if n := b.Counts()["a"]; n != 0 {
		t.Fatalf("counts[a] = %d after reopen, want 0", n)
	}
	got := b.Assign("b", 2, t0.Add(time.Millisecond), nil)
	if len(got) != 1 || got[0] != 0 {
		t.Fatalf("granted %v after reopen, want [0] (task 1 still leased)", got)
	}
	if !b.Complete(0, "b") || !b.Complete(1, "a") {
		t.Fatal("re-run completions rejected")
	}
	if !b.Done() {
		t.Error("board not done after every task re-completed")
	}
	b.Reopen(-1) // out-of-range: no-op
	b.Reopen(5)
}

func TestBoardValidation(t *testing.T) {
	if _, err := NewBoard(0, time.Second, Options{}); err == nil {
		t.Error("zero tasks accepted")
	}
	if _, err := NewBoard(1, 0, Options{}); err == nil {
		t.Error("zero lease accepted")
	}
	b := boardAt(t, 1, time.Second, Options{})
	if b.Complete(5, "x") || b.Complete(-1, "x") {
		t.Error("out-of-range completion accepted")
	}
}

func TestBoardSetOrder(t *testing.T) {
	b, err := NewBoard(4, time.Minute, Options{})
	if err != nil {
		t.Fatal(err)
	}
	now := time.Now()
	// LPT-style order: heaviest partitions first.
	b.SetOrder([]int{2, 0, 3, 1})
	got := b.Assign("w1", 4, now, nil)
	want := []int{2, 0, 3, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Assign order = %v, want %v", got, want)
		}
	}
	// Invalid orders are rejected: the installed scan stays.
	b2, _ := NewBoard(3, time.Minute, Options{})
	b2.SetOrder([]int{2, 1, 0})
	b2.SetOrder([]int{0, 0, 1}) // duplicate
	b2.SetOrder([]int{5, 1, 0}) // out of range
	b2.SetOrder([]int{1, 0})    // wrong length
	if got := b2.Assign("w", 3, now, nil); got[0] != 2 || got[1] != 1 || got[2] != 0 {
		t.Fatalf("invalid SetOrder clobbered the scan: %v", got)
	}
	// nil restores index order.
	b3, _ := NewBoard(3, time.Minute, Options{})
	b3.SetOrder([]int{2, 1, 0})
	b3.SetOrder(nil)
	if got := b3.Assign("w", 3, now, nil); got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("SetOrder(nil) did not restore index order: %v", got)
	}
}

func TestBoardSetOrderWithLocality(t *testing.T) {
	b, _ := NewBoard(4, time.Minute, Options{})
	b.SetOrder([]int{3, 2, 1, 0})
	// Node-local tasks still outrank the installed order, but within a
	// locality tier the order applies.
	loc := func(task int) Locality {
		if task == 1 {
			return LocalityNode
		}
		return LocalityRemote
	}
	got := b.Assign("w", 2, time.Now(), loc)
	if len(got) != 2 || got[0] != 1 || got[1] != 3 {
		t.Fatalf("Assign = %v, want [1 3] (node-local first, then heaviest)", got)
	}
}
