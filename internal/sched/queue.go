package sched

import "sync"

// Queues is the work-stealing queue set: one task deque per worker.
// Pushes append to the back; owners pop from the front (consuming
// their assignment in locality order) while thieves steal from the
// back of the longest peer deque, so the work a thief takes is the
// work its owner would have reached last. All operations are safe for
// concurrent use.
type Queues struct {
	mu     sync.Mutex
	deques [][]int
}

// NewQueues builds an empty queue set for n workers.
func NewQueues(n int) *Queues {
	return &Queues{deques: make([][]int, n)}
}

// Push appends task to worker w's deque.
func (q *Queues) Push(w, task int) {
	q.mu.Lock()
	q.deques[w] = append(q.deques[w], task)
	q.mu.Unlock()
}

// Pop takes the front task of w's own deque.
func (q *Queues) Pop(w int) (int, bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	d := q.deques[w]
	if len(d) == 0 {
		return 0, false
	}
	task := d[0]
	q.deques[w] = d[1:]
	return task, true
}

// Steal takes the back task of the longest deque other than the
// thief's own (ties broken by lower worker index, for determinism in
// tests). It reports which victim was robbed.
func (q *Queues) Steal(thief int) (task, victim int, ok bool) {
	q.mu.Lock()
	defer q.mu.Unlock()
	victim = -1
	best := 0
	for w, d := range q.deques {
		if w == thief {
			continue
		}
		if len(d) > best {
			best, victim = len(d), w
		}
	}
	if victim < 0 {
		return 0, 0, false
	}
	d := q.deques[victim]
	task = d[len(d)-1]
	q.deques[victim] = d[:len(d)-1]
	return task, victim, true
}

// Len reports worker w's queued task count.
func (q *Queues) Len(w int) int {
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.deques[w])
}

// Total reports the queued task count across all workers.
func (q *Queues) Total() int {
	q.mu.Lock()
	defer q.mu.Unlock()
	n := 0
	for _, d := range q.deques {
		n += len(d)
	}
	return n
}
