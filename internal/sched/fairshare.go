package sched

import "sync"

// FairShare is the multi-board arbiter of a master serving several
// tenants from one worker fleet: a weighted deficit round-robin over
// tenant names. Each tenant accrues credit ("deficit") in proportion to
// its weight; granting a task spends one credit; when no eligible
// tenant holds a full credit, every eligible tenant is refilled by its
// weight at once. Over any contended interval the grant counts
// therefore converge to the weight ratios — Hadoop's FairScheduler
// discipline, reduced to its scheduling core.
//
// The arbiter is deliberately ignorant of boards and jobs: the master
// keeps one Board per job phase (Assign/Speculate unchanged), asks
// FairShare which tenant to serve next, and applies its usual
// affinity/pending/speculative passes within that tenant's jobs. Ties
// break toward the lexicographically smallest name, so grant order is
// deterministic for tests.
//
// FairShare is safe for concurrent use, matching Board.
type FairShare struct {
	mu      sync.Mutex
	weights map[string]float64
	deficit map[string]float64
}

// NewFairShare builds an empty arbiter; tenants register implicitly on
// first use with weight 1, or explicitly through SetWeight.
func NewFairShare() *FairShare {
	return &FairShare{
		weights: make(map[string]float64),
		deficit: make(map[string]float64),
	}
}

// SetWeight sets a tenant's fair-share weight. Non-positive weights
// select the default of 1 (every tenant equal).
func (f *FairShare) SetWeight(tenant string, w float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if w <= 0 {
		w = 1
	}
	f.weights[tenant] = w
}

// Weight reports a tenant's effective weight (1 when never set).
func (f *FairShare) Weight(tenant string) float64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.weight(tenant)
}

// weight resolves a tenant's weight. Callers hold f.mu.
func (f *FairShare) weight(tenant string) float64 {
	if w, ok := f.weights[tenant]; ok {
		return w
	}
	return 1
}

// Pick returns the eligible tenant to serve next: the one holding the
// most credit, after refilling every eligible tenant's credit in
// proportion to its weight when none holds a full one. Eligible means
// "has grantable work right now" — the caller filters; an empty
// eligible set returns "". Pick does not spend the credit: the caller
// calls Charge after the grant actually happens (a tenant that turns
// out to have nothing assignable is reported through Idle instead).
func (f *FairShare) Pick(eligible []string) string {
	f.mu.Lock()
	defer f.mu.Unlock()
	if len(eligible) == 0 {
		return ""
	}
	// Refill in one step: raise every eligible tenant by the same
	// multiple of its weight, sized so the best-endowed tenant lands
	// exactly on a full credit (the smallest r with d+r·w ≥ 1 for some
	// tenant). Only eligible tenants earn — a tenant with no work
	// accrues nothing, so it cannot bank credit while idle and starve
	// the others later (the classic DRR empty-queue rule).
	best, bestDeficit := f.best(eligible)
	if bestDeficit < 1 {
		rounds := 0.0
		for i, t := range eligible {
			r := (1 - f.deficit[t]) / f.weight(t)
			if i == 0 || r < rounds {
				rounds = r
			}
		}
		for _, t := range eligible {
			f.deficit[t] += rounds * f.weight(t)
		}
		best, _ = f.best(eligible)
	}
	return best
}

// best returns the highest-credit tenant among eligible, smallest name
// winning ties. Callers hold f.mu and pass a non-empty slice.
func (f *FairShare) best(eligible []string) (string, float64) {
	name, deficit := "", 0.0
	for _, t := range eligible {
		if d := f.deficit[t]; name == "" || d > deficit || (d == deficit && t < name) {
			name, deficit = t, d
		}
	}
	return name, deficit
}

// Charge spends one credit of the tenant just granted a task.
func (f *FairShare) Charge(tenant string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.deficit[tenant]--
}

// Idle zeroes a tenant's credit when it turns out to have no grantable
// work — deficit round-robin's empty-queue reset, which keeps a tenant
// from hoarding credit across an idle stretch and then monopolizing
// the fleet when it wakes.
func (f *FairShare) Idle(tenant string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.deficit, tenant)
}

// Forget drops a tenant's weight and credit (its last job finished or
// was killed); it re-registers implicitly on its next submission.
func (f *FairShare) Forget(tenant string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	delete(f.deficit, tenant)
	delete(f.weights, tenant)
}
