// Package cluster models the paper's testbed topology: a variable
// number of IBM QS22 worker blades (dual Cell BE, DataNode + two map
// slots each) plus one JS22 Power6 master blade (JobTracker +
// NameNodes), all on Gigabit Ethernet. Each node carries the three
// shared media the experiments exercise: its GbE NIC, the loopback
// path the Hadoop RecordReader uses to move records from the
// co-located DataNode into the Mappers, and its local disk.
package cluster

import (
	"fmt"

	"hetmr/internal/perfmodel"
	"hetmr/internal/sim"
)

// Node is one blade of the simulated cluster.
type Node struct {
	Name string
	// Accelerated marks nodes with usable Cell SPEs. The paper's
	// cluster is fully accelerated; the heterogeneous-cluster
	// extension (paper §V) builds mixed clusters.
	Accelerated bool

	// NIC is the node's Gigabit Ethernet interface (shared by all
	// flows in or out of the node).
	NIC *sim.Link
	// Loopback is the effective DataNode->Mapper record delivery path
	// ("the loopback interface"), shared by the node's concurrent
	// mappers. Its calibrated rate is deliberately the measured
	// effective rate, not the interface's nominal capacity, per the
	// paper's observation.
	Loopback *sim.Link
	// Disk is the node's local disk (DataNode storage, map output
	// spills).
	Disk *sim.Link
}

// Cluster is the simulated testbed.
type Cluster struct {
	Eng    *sim.Engine
	Master *Node
	Nodes  []*Node
	byName map[string]*Node
}

// Option customizes cluster construction.
type Option func(*config)

type config struct {
	acceleratedFraction float64
	loopbackRate        float64
	nicRate             float64
	diskRate            float64
}

// WithAcceleratedFraction builds a heterogeneous cluster where only
// the given fraction of worker nodes (rounded down, at least 0) have
// accelerators — the paper's §V "increasing level of heterogeneity"
// scenario.
func WithAcceleratedFraction(f float64) Option {
	return func(c *config) { c.acceleratedFraction = f }
}

// WithLoopbackRate overrides the effective record-delivery rate
// (bytes/s), used by ablation benchmarks.
func WithLoopbackRate(r float64) Option {
	return func(c *config) { c.loopbackRate = r }
}

// WithNICRate overrides the NIC rate in bytes/s.
func WithNICRate(r float64) Option {
	return func(c *config) { c.nicRate = r }
}

// WithDiskRate overrides the disk rate in bytes/s.
func WithDiskRate(r float64) Option {
	return func(c *config) { c.diskRate = r }
}

// New builds a cluster of nWorkers QS22-like worker nodes plus the
// JS22-like master on the given engine.
func New(eng *sim.Engine, nWorkers int, opts ...Option) (*Cluster, error) {
	if nWorkers <= 0 {
		return nil, fmt.Errorf("cluster: need at least one worker, got %d", nWorkers)
	}
	cfg := config{
		acceleratedFraction: 1.0,
		loopbackRate:        perfmodel.LoopbackDeliveryBytesPerSec,
		nicRate:             perfmodel.GbEBytesPerSecond,
		diskRate:            perfmodel.DiskBytesPerSecond,
	}
	for _, o := range opts {
		o(&cfg)
	}
	c := &Cluster{Eng: eng, byName: make(map[string]*Node)}
	nAccel := int(cfg.acceleratedFraction * float64(nWorkers))
	for i := 0; i < nWorkers; i++ {
		name := WorkerName(i)
		n := &Node{
			Name:        name,
			Accelerated: i < nAccel,
			NIC:         sim.NewLink(eng, name+"/nic", cfg.nicRate),
			Loopback:    sim.NewLink(eng, name+"/lo", cfg.loopbackRate),
			Disk:        sim.NewLink(eng, name+"/disk", cfg.diskRate),
		}
		c.Nodes = append(c.Nodes, n)
		c.byName[name] = n
	}
	c.Master = &Node{
		Name:     "master",
		NIC:      sim.NewLink(eng, "master/nic", cfg.nicRate),
		Loopback: sim.NewLink(eng, "master/lo", cfg.loopbackRate),
		Disk:     sim.NewLink(eng, "master/disk", cfg.diskRate),
	}
	c.byName["master"] = c.Master
	return c, nil
}

// WorkerName returns the canonical name of worker i.
func WorkerName(i int) string { return fmt.Sprintf("node%03d", i) }

// ByName looks a node up by name (workers and master).
func (c *Cluster) ByName(name string) (*Node, bool) {
	n, ok := c.byName[name]
	return n, ok
}

// AcceleratedCount returns the number of accelerator-equipped workers.
func (c *Cluster) AcceleratedCount() int {
	n := 0
	for _, node := range c.Nodes {
		if node.Accelerated {
			n++
		}
	}
	return n
}
