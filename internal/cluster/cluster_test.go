package cluster

import (
	"testing"

	"hetmr/internal/perfmodel"
	"hetmr/internal/sim"
)

func TestNewClusterDefaults(t *testing.T) {
	eng := sim.NewEngine(1)
	c, err := New(eng, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 4 {
		t.Fatalf("nodes = %d", len(c.Nodes))
	}
	if c.AcceleratedCount() != 4 {
		t.Errorf("accelerated = %d, want all", c.AcceleratedCount())
	}
	for i, n := range c.Nodes {
		if n.Name != WorkerName(i) {
			t.Errorf("node %d named %q", i, n.Name)
		}
		if n.NIC.Rate() != perfmodel.GbEBytesPerSecond {
			t.Errorf("node %d NIC rate %g", i, n.NIC.Rate())
		}
		if n.Loopback.Rate() != perfmodel.LoopbackDeliveryBytesPerSec {
			t.Errorf("node %d loopback rate %g", i, n.Loopback.Rate())
		}
		if n.Disk.Rate() != perfmodel.DiskBytesPerSecond {
			t.Errorf("node %d disk rate %g", i, n.Disk.Rate())
		}
	}
	if c.Master == nil || c.Master.Name != "master" {
		t.Error("master missing")
	}
}

func TestNewClusterValidation(t *testing.T) {
	eng := sim.NewEngine(1)
	for _, n := range []int{0, -3} {
		if _, err := New(eng, n); err == nil {
			t.Errorf("New(%d) should fail", n)
		}
	}
}

func TestClusterOptions(t *testing.T) {
	eng := sim.NewEngine(1)
	c, err := New(eng, 8,
		WithAcceleratedFraction(0.5),
		WithLoopbackRate(99),
		WithNICRate(88),
		WithDiskRate(77))
	if err != nil {
		t.Fatal(err)
	}
	if c.AcceleratedCount() != 4 {
		t.Errorf("accelerated = %d, want 4", c.AcceleratedCount())
	}
	// The accelerated nodes are a prefix (deterministic layout).
	for i, n := range c.Nodes {
		want := i < 4
		if n.Accelerated != want {
			t.Errorf("node %d accelerated = %v", i, n.Accelerated)
		}
	}
	n := c.Nodes[0]
	if n.Loopback.Rate() != 99 || n.NIC.Rate() != 88 || n.Disk.Rate() != 77 {
		t.Error("rate options not applied")
	}
}

func TestByName(t *testing.T) {
	eng := sim.NewEngine(1)
	c, _ := New(eng, 2)
	if _, ok := c.ByName(WorkerName(1)); !ok {
		t.Error("worker lookup failed")
	}
	if _, ok := c.ByName("master"); !ok {
		t.Error("master lookup failed")
	}
	if _, ok := c.ByName("ghost"); ok {
		t.Error("ghost node found")
	}
}

func TestWorkerNameFormat(t *testing.T) {
	if WorkerName(0) != "node000" || WorkerName(65) != "node065" {
		t.Errorf("names: %q %q", WorkerName(0), WorkerName(65))
	}
}

func TestAcceleratedFractionEdges(t *testing.T) {
	eng := sim.NewEngine(1)
	c, _ := New(eng, 3, WithAcceleratedFraction(0))
	if c.AcceleratedCount() != 0 {
		t.Errorf("fraction 0: %d accelerated", c.AcceleratedCount())
	}
	c, _ = New(eng, 3, WithAcceleratedFraction(0.34))
	if c.AcceleratedCount() != 1 {
		t.Errorf("fraction .34 of 3: %d accelerated, want 1", c.AcceleratedCount())
	}
}
