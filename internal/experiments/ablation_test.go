package experiments

import (
	"strings"
	"testing"
)

func TestAblationLoopbackRateOpensGap(t *testing.T) {
	fig, err := AblationLoopbackRate([]float64{8, 117})
	if err != nil {
		t.Fatal(err)
	}
	gap := fig.FindSeries("Java/Cell")
	if gap == nil {
		t.Fatal("missing gap series")
	}
	slow, fast := gap.Y(8), gap.Y(117)
	// The paper's data-intensive conclusion holds only at slow
	// delivery: faster delivery must open the Java/Cell gap.
	if fast <= slow {
		t.Errorf("gap did not open: %.2f at 8MB/s vs %.2f at 117MB/s", slow, fast)
	}
	if slow > 1.3 {
		t.Errorf("gap at paper-like delivery = %.2f, should be near 1", slow)
	}
	if fast < 1.5 {
		t.Errorf("gap at fast delivery = %.2f, should expose the accelerator", fast)
	}
}

func TestAblationHeartbeatMonotone(t *testing.T) {
	fig, err := AblationHeartbeat([]float64{1, 10})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.FindSeries("Cell Mapper")
	if s.Y(10) <= s.Y(1) {
		t.Errorf("longer heartbeats should lengthen the floor: %.1f vs %.1f",
			s.Y(1), s.Y(10))
	}
}

func TestAblationHousekeepingDominates(t *testing.T) {
	fig, err := AblationHousekeeping([]float64{0.1, 2.7})
	if err != nil {
		t.Fatal(err)
	}
	s := fig.FindSeries("Cell Mapper")
	if ratio := s.Y(2.7) / s.Y(0.1); ratio < 2 {
		t.Errorf("housekeeping sweep ratio = %.1f; it should dominate the 64-node floor", ratio)
	}
}

func TestAblationSPEBlockSizeMild(t *testing.T) {
	fig := AblationSPEBlockSize([]int{1 << 10, 4 << 10, 64 << 10})
	s := fig.FindSeries("Cell BE")
	// The 4KB choice costs little vs 64KB (within 5%).
	if s.Y(4096) < 0.95*s.Y(65536) {
		t.Errorf("4KB blocks cost too much: %.0f vs %.0f MB/s", s.Y(4096), s.Y(65536))
	}
	// But tiny blocks must cost something (issue overhead visible).
	if !(s.Y(1024) < s.Y(65536)) {
		t.Error("block size has no effect at all")
	}
}

func TestAblationSPECountNearLinear(t *testing.T) {
	fig := AblationSPECount()
	s := fig.FindSeries("Cell BE")
	if len(s.Points) != 8 {
		t.Fatalf("got %d points", len(s.Points))
	}
	speedup := s.Y(8) / s.Y(1)
	if speedup < 7.5 || speedup > 8.0 {
		t.Errorf("8-SPE speedup = %.2f, want near-linear", speedup)
	}
	// Monotone increasing.
	for n := 2; n <= 8; n++ {
		if s.Y(float64(n)) <= s.Y(float64(n-1)) {
			t.Errorf("bandwidth not monotone at %d SPEs", n)
		}
	}
}

func TestTerasortDeliveryBound(t *testing.T) {
	slow, err := TerasortAnalysis(4, 16, 50)
	if err != nil {
		t.Fatal(err)
	}
	fast, err := TerasortAnalysis(4, 16, 500)
	if err != nil {
		t.Fatal(err)
	}
	// 10x sort speed moves the per-node rate by < 25%.
	if fast/slow > 1.25 {
		t.Errorf("per-node rate moved %0.fx with 10x sort speed: not delivery-bound",
			fast/slow)
	}
	// And the rate itself sits at single-digit-to-low-teens MB/s per
	// node, the paper's observed regime.
	if slow < 3 || slow > 40 {
		t.Errorf("per-node rate %.1f MB/s outside the plausible regime", slow)
	}
	sum := TerasortSummary(4, 16, 50, slow)
	if !strings.Contains(sum, "4 nodes") || !strings.Contains(sum, "16GB") {
		t.Errorf("summary = %q", sum)
	}
}

func TestFullFigureSweepsSmoke(t *testing.T) {
	if testing.Short() {
		t.Skip("full sweeps in short mode")
	}
	// Exercise the exact default-parameter paths cmd/repro uses, at
	// the smallest default points.
	if _, err := Fig4ProportionalEncryption([]int{Fig4Nodes[0]}); err != nil {
		t.Error(err)
	}
	if _, err := Fig5FixedEncryption([]int{Fig5Nodes[0]}); err != nil {
		t.Error(err)
	}
	if _, err := Fig7DistributedPiSweep(4, []int64{1e6}); err != nil {
		t.Error(err)
	}
	if _, err := Fig8DistributedPiScaling([]int{Fig8Nodes[0]}); err != nil {
		t.Error(err)
	}
}
