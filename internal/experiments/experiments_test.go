package experiments

import (
	"math"
	"testing"

	"hetmr/internal/hadoop"
	"hetmr/internal/hdfs"
	"hetmr/internal/metrics"
	"hetmr/internal/perfmodel"
)

// These tests assert the acceptance criteria of DESIGN.md §4: the
// *shapes* of the paper's figures (who wins, by what rough factor,
// where floors and crossovers fall), on reduced sweeps so the suite
// stays fast.

func yAt(t *testing.T, fig *metrics.Figure, label string, x float64) float64 {
	t.Helper()
	s := fig.FindSeries(label)
	if s == nil {
		t.Fatalf("%s: missing series %q", fig.ID, label)
	}
	y := s.Y(x)
	if math.IsNaN(y) {
		t.Fatalf("%s: series %q has no point at x=%g", fig.ID, label, x)
	}
	return y
}

func TestFig2Shape(t *testing.T) {
	fig := Fig2RawEncryption()
	if len(fig.Series) != 4 {
		t.Fatalf("fig2 has %d series, want 4", len(fig.Series))
	}
	big := float64(Fig2Sizes[len(Fig2Sizes)-1])
	cell := yAt(t, &fig, "Cell BE", big)
	fw := yAt(t, &fig, "MapReduce Cell", big)
	ppc := yAt(t, &fig, "PPC", big)
	p6 := yAt(t, &fig, "Power 6", big)
	// Paper ordering at scale: Cell > framework > Power6 > PPE.
	if !(cell > fw && fw > p6 && p6 > ppc) {
		t.Errorf("fig2 ordering broken: cell=%.0f fw=%.0f p6=%.0f ppc=%.0f", cell, fw, p6, ppc)
	}
	// "near 700MB/s" and "around 45MB/s".
	if cell < 600 || cell > 700 {
		t.Errorf("cell bandwidth %.0f MB/s, want near 700", cell)
	}
	if p6 < 40 || p6 > 50 {
		t.Errorf("power6 bandwidth %.0f MB/s, want around 45", p6)
	}
	// Cell curves rise with size (init amortization).
	if yAt(t, &fig, "Cell BE", 1) >= cell {
		t.Error("fig2: Cell bandwidth should rise with size")
	}
}

func TestFig6Shape(t *testing.T) {
	fig := Fig6RawPi()
	small, large := float64(Fig6Samples[0]), float64(Fig6Samples[len(Fig6Samples)-1])
	// At 1e3 samples the SPU init overhead puts Cell below the CPUs.
	if yAt(t, &fig, "Cell BE", small) >= yAt(t, &fig, "Power 6", small) {
		t.Error("fig6: Cell should lose at tiny sample counts (SPU init)")
	}
	// At 1e9, Cell is one order of magnitude over Power6, more over
	// the PPE.
	ratio := yAt(t, &fig, "Cell BE", large) / yAt(t, &fig, "Power 6", large)
	if ratio < 8 || ratio > 40 {
		t.Errorf("fig6: Cell/Power6 = %.1f, want roughly one order of magnitude", ratio)
	}
	if yAt(t, &fig, "Power 6", large) <= yAt(t, &fig, "PPC", large) {
		t.Error("fig6: Power6 should beat the PPE")
	}
	// A crossover exists: Cell loses somewhere and wins somewhere.
	cell := fig.FindSeries("Cell BE")
	p6 := fig.FindSeries("Power 6")
	crossed := false
	for i := range cell.Points {
		if cell.Points[i].Y > p6.Points[i].Y {
			crossed = true
		}
	}
	if !crossed {
		t.Error("fig6: no crossover found")
	}
}

func TestFig4Shape(t *testing.T) {
	nodes := []int{12, 24}
	fig, err := Fig4ProportionalEncryption(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		x := float64(n)
		java := yAt(t, &fig, "Java Mapper", x)
		cell := yAt(t, &fig, "Cell BE Mapper", x)
		// "the Cell-accelerated mapper and the Java mapper offer a
		// very similar performance": within 25%, Cell no slower.
		if cell > java {
			t.Errorf("fig4 @%d: cell (%.0f) slower than java (%.0f)", n, cell, java)
		}
		if java/cell > 1.25 {
			t.Errorf("fig4 @%d: java/cell = %.2f, should be near 1 (runtime-bound)", n, java/cell)
		}
	}
	// Weak scaling: time roughly flat as nodes grow (within 30%).
	j12, j24 := yAt(t, &fig, "Java Mapper", 12), yAt(t, &fig, "Java Mapper", 24)
	if j24/j12 > 1.3 || j12/j24 > 1.3 {
		t.Errorf("fig4: weak scaling broken: %.0f s @12 vs %.0f s @24", j12, j24)
	}
}

func TestFig5Shape(t *testing.T) {
	nodes := []int{4, 16}
	fig, err := Fig5FixedEncryption(nodes)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range nodes {
		x := float64(n)
		empty := yAt(t, &fig, "Empty Mapper", x)
		java := yAt(t, &fig, "Java Mapper", x)
		cell := yAt(t, &fig, "Cell Mapper", x)
		// "the difference ... between the Empty mapper and the other
		// mappers is really small".
		if java/empty > 1.35 {
			t.Errorf("fig5 @%d: java/empty = %.2f, want small gap", n, java/empty)
		}
		if cell/empty > 1.1 {
			t.Errorf("fig5 @%d: cell/empty = %.2f, want tiny gap", n, cell/empty)
		}
		if empty > java {
			t.Errorf("fig5 @%d: empty (%.0f) slower than java (%.0f)", n, empty, java)
		}
	}
	// Strong scaling: "the Hadoop runtime scales well with the number
	// of nodes" — 4x nodes should cut time by at least 2.5x.
	e4, e16 := yAt(t, &fig, "Empty Mapper", 4), yAt(t, &fig, "Empty Mapper", 16)
	if e4/e16 < 2.5 {
		t.Errorf("fig5: scaling factor %.1f over 4x nodes, want >= 2.5", e4/e16)
	}
}

func TestFig7Shape(t *testing.T) {
	samples := []int64{1e6, 1e9, 1e11}
	fig, err := Fig7DistributedPiSweep(10, samples)
	if err != nil {
		t.Fatal(err)
	}
	// Small problems: both mappers sit on the same Hadoop floor.
	jSmall := yAt(t, &fig, "Java Mapper", 1e6)
	cSmall := yAt(t, &fig, "Cell BE Mapper", 1e6)
	if math.Abs(jSmall-cSmall)/jSmall > 0.05 {
		t.Errorf("fig7: floor differs: java %.1f vs cell %.1f", jSmall, cSmall)
	}
	// Large problems: the Cell mapper "clearly outperforms" Java.
	jBig := yAt(t, &fig, "Java Mapper", 1e11)
	cBig := yAt(t, &fig, "Cell BE Mapper", 1e11)
	if jBig/cBig < 5 {
		t.Errorf("fig7: java/cell at 1e11 = %.1f, want >> 1", jBig/cBig)
	}
	// Java departs the floor earlier than Cell.
	jMid := yAt(t, &fig, "Java Mapper", 1e9)
	cMid := yAt(t, &fig, "Cell BE Mapper", 1e9)
	if (jMid-jSmall)/jSmall < 0.2 {
		t.Errorf("fig7: java should have left the floor by 1e9 (%.1f vs %.1f)", jMid, jSmall)
	}
	if (cMid-cSmall)/cSmall > 0.2 {
		t.Errorf("fig7: cell should still be near the floor at 1e9 (%.1f vs %.1f)", cMid, cSmall)
	}
}

func TestFig8Shape(t *testing.T) {
	nodes := []int{4, 16, 64}
	fig, err := Fig8DistributedPiScaling(nodes)
	if err != nil {
		t.Fatal(err)
	}
	// Java scales near-linearly over the whole range.
	j4, j64 := yAt(t, &fig, "Java Mapper", 4), yAt(t, &fig, "Java Mapper", 64)
	if j4/j64 < 8 {
		t.Errorf("fig8: java speedup over 16x nodes = %.1f, want near-linear", j4/j64)
	}
	// Cell is one to two orders faster than Java.
	c4 := yAt(t, &fig, "Cell BE Mapper", 4)
	if r := j4 / c4; r < 10 || r > 200 {
		t.Errorf("fig8: java/cell at 4 nodes = %.0f, want 1-2 orders of magnitude", r)
	}
	// Cell stops scaling: the 16 -> 64 improvement is far from
	// linear (the Hadoop runtime floor).
	c16, c64 := yAt(t, &fig, "Cell BE Mapper", 16), yAt(t, &fig, "Cell BE Mapper", 64)
	if c16/c64 > 2.0 {
		t.Errorf("fig8: cell kept scaling 16->64 (factor %.1f); floor should bite", c16/c64)
	}
	// The 10x run keeps the slope longer than the 1x run.
	x16, x64 := yAt(t, &fig, "Cell BE Mapper (10x samples)", 16),
		yAt(t, &fig, "Cell BE Mapper (10x samples)", 64)
	if x16/x64 <= c16/c64 {
		t.Errorf("fig8: 10x run (factor %.2f) should out-scale 1x run (factor %.2f)",
			x16/x64, c16/c64)
	}
}

func TestRunDistributedErrors(t *testing.T) {
	cfg := hadoop.DefaultConfig()
	ok := func(*hdfs.NameNode, []string) ([]hadoop.Split, error) {
		return []hadoop.Split{{Index: 0, Samples: 1}}, nil
	}
	mapper := hadoop.StaticMapperFor(hadoop.EmptyMapper{})
	if _, err := RunDistributed(0, cfg, ok, mapper); err == nil {
		t.Error("zero workers should fail")
	}
	bad := func(*hdfs.NameNode, []string) ([]hadoop.Split, error) {
		return nil, hdfs.ErrNotFound
	}
	if _, err := RunDistributed(2, cfg, bad, mapper); err == nil {
		t.Error("split builder error should propagate")
	}
	empty := func(*hdfs.NameNode, []string) ([]hadoop.Split, error) {
		return nil, nil
	}
	if _, err := RunDistributed(2, cfg, empty, mapper); err == nil {
		t.Error("empty split set should fail validation")
	}
}

func TestRunDistributedLocality(t *testing.T) {
	run, err := RunDistributed(4, hadoop.DefaultConfig(),
		encryptionSplitBuilder(256<<20),
		hadoop.StaticMapperFor(hadoop.EmptyMapper{}))
	if err != nil {
		t.Fatal(err)
	}
	if run.Result.RemoteReads != 0 {
		t.Errorf("pinned dataset produced %d remote reads", run.Result.RemoteReads)
	}
	wantBytes := int64(4*perfmodel.MapSlotsPerNode) * (256 << 20)
	if run.Result.InputBytes != wantBytes {
		t.Errorf("input bytes = %d, want %d", run.Result.InputBytes, wantBytes)
	}
	if run.Energy <= 0 {
		t.Error("energy missing")
	}
}

func TestRunDistributedDeterminism(t *testing.T) {
	do := func() float64 {
		run, err := RunDistributed(4, hadoop.DefaultConfig(),
			piSplitBuilder(1e9, 4),
			hadoop.StaticMapperFor(hadoop.CellPiMapper{}))
		if err != nil {
			t.Fatal(err)
		}
		return run.Seconds
	}
	a, b := do(), do()
	if a != b {
		t.Errorf("simulation not deterministic: %.6f vs %.6f", a, b)
	}
}
