// Package experiments regenerates every figure of the paper's
// evaluation section (§IV). The single-node "raw" figures (2 and 6)
// come from the calibrated Cell offload model; the distributed figures
// (4, 5, 7, 8) are produced by running the full Hadoop/HDFS protocol
// on the discrete-event simulator at the paper's testbed scale and
// measuring job makespans.
package experiments

import (
	"fmt"

	"hetmr/internal/cellbe"
	"hetmr/internal/cellmr"
	"hetmr/internal/cluster"
	"hetmr/internal/core"
	"hetmr/internal/hadoop"
	"hetmr/internal/hdfs"
	"hetmr/internal/metrics"
	"hetmr/internal/perfmodel"
	"hetmr/internal/sim"
	"hetmr/internal/workload"
)

// Default sweep parameters, matching the paper's figures.
var (
	// Fig2Sizes are the encrypted working-set sizes in MB (Fig. 2's
	// x axis, 1..1024 MB).
	Fig2Sizes = []int64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	// Fig4Nodes is Fig. 4's x axis.
	Fig4Nodes = []int{12, 24, 36, 48, 60}
	// Fig5Nodes is Fig. 5's x axis.
	Fig5Nodes = []int{4, 8, 16, 32, 64}
	// Fig6Samples is Fig. 6's x axis (1e3..1e9).
	Fig6Samples = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9}
	// Fig7Samples is Fig. 7's x axis (1e3..1e12).
	Fig7Samples = []int64{1e3, 1e4, 1e5, 1e6, 1e7, 1e8, 1e9, 1e10, 1e11, 1e12}
	// Fig7NodeCount is the fixed cluster size of Fig. 7.
	Fig7NodeCount = 50
	// Fig8Nodes is Fig. 8's x axis.
	Fig8Nodes = []int{4, 8, 16, 32, 64}
	// Fig8Samples is Fig. 8's fixed workload (1e11 samples).
	Fig8Samples = int64(1e11)
)

// Fig2RawEncryption reproduces Figure 2: single-node encryption
// bandwidth (MB/s) versus working-set size (MB) for the four
// configurations — direct Cell offload, the MapReduce-for-Cell
// framework, Java on the Cell PPE, and Java on a Power6 core. No
// Hadoop is involved.
func Fig2RawEncryption() metrics.Figure {
	fig := metrics.Figure{
		ID:     "fig2",
		Title:  "Raw node encryption performance",
		XLabel: "Size(MB)",
		YLabel: "Bandwidth (MB/s)",
		XLog:   true,
		YLog:   true,
	}
	cell := metrics.Series{Label: "Cell BE"}
	cellMR := metrics.Series{Label: "MapReduce Cell"}
	ppc := metrics.Series{Label: "PPC"}
	power6 := metrics.Series{Label: "Power 6"}
	for _, mb := range Fig2Sizes {
		bytes := mb << 20
		x := float64(mb)
		directSec := cellbe.StreamOffloadTime(bytes, perfmodel.SPEsPerCell,
			perfmodel.SPEBlockBytes, perfmodel.AESSPEBytesPerSec).TotalSeconds
		cell.Points = append(cell.Points, metrics.Point{X: x, Y: bw(bytes, directSec)})

		fwSec := cellmrEstimate(bytes)
		cellMR.Points = append(cellMR.Points, metrics.Point{X: x, Y: bw(bytes, fwSec)})

		ppc.Points = append(ppc.Points, metrics.Point{X: x,
			Y: bw(bytes, cellbe.HostComputeTime(bytes, perfmodel.AESPPEBytesPerSec))})
		power6.Points = append(power6.Points, metrics.Point{X: x,
			Y: bw(bytes, cellbe.HostComputeTime(bytes, perfmodel.AESPower6BytesPerSec))})
	}
	fig.Series = []metrics.Series{cell, cellMR, ppc, power6}
	return fig
}

// cellmrEstimate models the framework path of Fig. 2 (staging copy +
// framework init + SPE streaming).
func cellmrEstimate(bytes int64) float64 {
	chip := cellbe.NewChip(0)
	fw, err := cellmr.New(chip, perfmodel.SPEsPerCell, perfmodel.SPEBlockBytes)
	if err != nil {
		panic(err) // static configuration, cannot fail
	}
	return fw.EstimateStreamTime(bytes, perfmodel.AESSPEBytesPerSec)
}

// bw converts bytes and seconds into MB/s.
func bw(bytes int64, seconds float64) float64 {
	if seconds <= 0 {
		return 0
	}
	return float64(bytes) / (1 << 20) / seconds
}

// Fig6RawPi reproduces Figure 6: single-node Pi estimation throughput
// (samples/s) versus total samples for the Cell SPEs, the PPE and a
// Power6 core.
func Fig6RawPi() metrics.Figure {
	fig := metrics.Figure{
		ID:     "fig6",
		Title:  "Raw node Pi estimation performance",
		XLabel: "Samples",
		YLabel: "Samples/sec",
		XLog:   true,
		YLog:   true,
	}
	cell := metrics.Series{Label: "Cell BE"}
	ppc := metrics.Series{Label: "PPC"}
	power6 := metrics.Series{Label: "Power 6"}
	for _, n := range Fig6Samples {
		x := float64(n)
		cellSec := cellbe.ComputeOffloadTime(n, perfmodel.SPEsPerCell,
			perfmodel.PiSPESamplesPerSec).TotalSeconds
		cell.Points = append(cell.Points, metrics.Point{X: x, Y: float64(n) / cellSec})
		ppc.Points = append(ppc.Points, metrics.Point{X: x,
			Y: float64(n) / cellbe.HostComputeTime(n, perfmodel.PiPPESamplesPerSec)})
		power6.Points = append(power6.Points, metrics.Point{X: x,
			Y: float64(n) / cellbe.HostComputeTime(n, perfmodel.PiPower6SamplesPerSec)})
	}
	fig.Series = []metrics.Series{cell, ppc, power6}
	return fig
}

// SimRun holds one simulated distributed measurement.
type SimRun struct {
	Nodes    int
	Seconds  float64
	Result   *hadoop.JobResult
	Energy   float64
	Attempts int
}

// RunDistributed executes one job described by (splits, mapper) on a
// fresh simulated cluster of nWorkers nodes and returns the measured
// makespan. buildSplits is called with the cluster's DFS so data
// placement matches the cluster.
func RunDistributed(nWorkers int, cfg hadoop.Config,
	buildSplits func(nn *hdfs.NameNode, nodes []string) ([]hadoop.Split, error),
	mapperFor func(*cluster.Node) hadoop.Mapper, opts ...cluster.Option) (SimRun, error) {
	return RunDistributedJob(nWorkers, cfg, buildSplits,
		&hadoop.Job{Name: "experiment", MapperFor: mapperFor}, opts...)
}

// RunDistributedJob is RunDistributed with a caller-provided job
// template (reduce count, reduce rate); its Splits are filled from
// buildSplits.
func RunDistributedJob(nWorkers int, cfg hadoop.Config,
	buildSplits func(nn *hdfs.NameNode, nodes []string) ([]hadoop.Split, error),
	job *hadoop.Job, opts ...cluster.Option) (SimRun, error) {
	eng := sim.NewEngine(2009)
	clus, err := cluster.New(eng, nWorkers, opts...)
	if err != nil {
		return SimRun{}, err
	}
	nn, err := hdfs.NewNameNode(perfmodel.HDFSBlockBytes, perfmodel.ReplicationFactor)
	if err != nil {
		return SimRun{}, err
	}
	var nodeNames []string
	for _, n := range clus.Nodes {
		if _, err := nn.RegisterDataNode(n.Name); err != nil {
			return SimRun{}, err
		}
		nodeNames = append(nodeNames, n.Name)
	}
	splits, err := buildSplits(nn, nodeNames)
	if err != nil {
		return SimRun{}, err
	}
	rt := hadoop.NewRuntime(eng, clus, cfg)
	job.Splits = splits
	handle, err := rt.Submit(job)
	if err != nil {
		rt.Shutdown()
		return SimRun{}, err
	}
	var result *hadoop.JobResult
	eng.Spawn("driver", func(p *sim.Proc) {
		result = handle.Wait(p)
		rt.Shutdown()
	})
	if _, err := eng.Run(); err != nil {
		return SimRun{}, err
	}
	if result == nil {
		return SimRun{}, fmt.Errorf("experiments: job did not finish")
	}
	return SimRun{
		Nodes:    nWorkers,
		Seconds:  result.Duration().Seconds(),
		Result:   result,
		Energy:   result.EnergyJoules,
		Attempts: result.Attempts,
	}, nil
}

// encryptionSplitBuilder returns a buildSplits closure creating
// bytesPerMapper of pinned data per mapper.
func encryptionSplitBuilder(bytesPerMapper int64) func(*hdfs.NameNode, []string) ([]hadoop.Split, error) {
	return func(nn *hdfs.NameNode, nodes []string) ([]hadoop.Split, error) {
		return workload.EncryptionDataset(nn, nodes, perfmodel.MapSlotsPerNode, bytesPerMapper)
	}
}

// Fig4ProportionalEncryption reproduces Figure 4: distributed
// encryption with the data set proportional to the mapper count (1 GB
// per mapper, 2 mappers per node), Java versus Cell mappers, versus
// node count.
func Fig4ProportionalEncryption(nodeCounts []int) (metrics.Figure, error) {
	fig := metrics.Figure{
		ID:     "fig4",
		Title:  "Distributed encryption performance: proportional data set",
		XLabel: "Nodes",
		YLabel: "Time(s)",
	}
	const bytesPerMapper = 1 << 30 // "a fixed proportion of 1GB per mapper"
	java := metrics.Series{Label: "Java Mapper"}
	cell := metrics.Series{Label: "Cell BE Mapper"}
	for _, n := range nodeCounts {
		jr, err := RunDistributed(n, hadoop.DefaultConfig(),
			encryptionSplitBuilder(bytesPerMapper),
			hadoop.StaticMapperFor(hadoop.JavaAESMapper{}))
		if err != nil {
			return fig, err
		}
		java.Points = append(java.Points, metrics.Point{X: float64(n), Y: jr.Seconds})
		cr, err := RunDistributed(n, hadoop.DefaultConfig(),
			encryptionSplitBuilder(bytesPerMapper),
			hadoop.StaticMapperFor(hadoop.CellAESMapper{}))
		if err != nil {
			return fig, err
		}
		cell.Points = append(cell.Points, metrics.Point{X: float64(n), Y: cr.Seconds})
	}
	fig.Series = []metrics.Series{java, cell}
	return fig, nil
}

// Fig5FixedEncryption reproduces Figure 5: distributed encryption of a
// fixed 120 GB data set versus node count, with the EmptyMapper
// isolating the Hadoop runtime overhead.
func Fig5FixedEncryption(nodeCounts []int) (metrics.Figure, error) {
	fig := metrics.Figure{
		ID:     "fig5",
		Title:  "Distributed encryption performance: 120GB data set",
		XLabel: "Nodes",
		YLabel: "Time(s)",
		YLog:   true,
	}
	const totalBytes = 120 << 30 // "a fixed data set size of 120GB"
	empty := metrics.Series{Label: "Empty Mapper"}
	java := metrics.Series{Label: "Java Mapper"}
	cell := metrics.Series{Label: "Cell Mapper"}
	for _, n := range nodeCounts {
		perMapper := totalBytes / int64(n*perfmodel.MapSlotsPerNode)
		for _, cfg := range []struct {
			series *metrics.Series
			mapper hadoop.Mapper
		}{
			{&empty, hadoop.EmptyMapper{}},
			{&java, hadoop.JavaAESMapper{}},
			{&cell, hadoop.CellAESMapper{}},
		} {
			run, err := RunDistributed(n, hadoop.DefaultConfig(),
				encryptionSplitBuilder(perMapper),
				hadoop.StaticMapperFor(cfg.mapper))
			if err != nil {
				return fig, err
			}
			cfg.series.Points = append(cfg.series.Points,
				metrics.Point{X: float64(n), Y: run.Seconds})
		}
	}
	fig.Series = []metrics.Series{empty, java, cell}
	return fig, nil
}

// piSplitBuilder builds the PiEstimator split layout: 2 maps per node.
func piSplitBuilder(total int64, nWorkers int) func(*hdfs.NameNode, []string) ([]hadoop.Split, error) {
	return func(*hdfs.NameNode, []string) ([]hadoop.Split, error) {
		return core.PiSplits(total, nWorkers*perfmodel.MapSlotsPerNode)
	}
}

// Fig7DistributedPiSweep reproduces Figure 7: Pi estimation on a fixed
// 50-node cluster, sweeping the total sample count, Java versus Cell
// mappers.
func Fig7DistributedPiSweep(nWorkers int, samples []int64) (metrics.Figure, error) {
	fig := metrics.Figure{
		ID:     "fig7",
		Title:  fmt.Sprintf("Distributed Pi estimation performance: %d nodes", nWorkers),
		XLabel: "Samples",
		YLabel: "Time(s)",
		XLog:   true,
		YLog:   true,
	}
	java := metrics.Series{Label: "Java Mapper"}
	cell := metrics.Series{Label: "Cell BE Mapper"}
	for _, total := range samples {
		jr, err := RunDistributedJob(nWorkers, hadoop.DefaultConfig(),
			piSplitBuilder(total, nWorkers),
			&hadoop.Job{Name: "pi-java", Reduces: 1,
				MapperFor: hadoop.StaticMapperFor(hadoop.JavaPiMapper{})})
		if err != nil {
			return fig, err
		}
		java.Points = append(java.Points, metrics.Point{X: float64(total), Y: jr.Seconds})
		cr, err := RunDistributedJob(nWorkers, hadoop.DefaultConfig(),
			piSplitBuilder(total, nWorkers),
			&hadoop.Job{Name: "pi-cell", Reduces: 1,
				MapperFor: hadoop.StaticMapperFor(hadoop.CellPiMapper{})})
		if err != nil {
			return fig, err
		}
		cell.Points = append(cell.Points, metrics.Point{X: float64(total), Y: cr.Seconds})
	}
	fig.Series = []metrics.Series{java, cell}
	return fig, nil
}

// Fig8DistributedPiScaling reproduces Figure 8: Pi estimation of 1e11
// samples versus node count — Java, Cell, and Cell with 10x samples
// (which shows where the Hadoop runtime floor reappears).
func Fig8DistributedPiScaling(nodeCounts []int) (metrics.Figure, error) {
	fig := metrics.Figure{
		ID:     "fig8",
		Title:  "Distributed Pi estimation performance: 1e+11 samples",
		XLabel: "Nodes",
		YLabel: "Time(s)",
		YLog:   true,
	}
	cell := metrics.Series{Label: "Cell BE Mapper"}
	java := metrics.Series{Label: "Java Mapper"}
	cell10 := metrics.Series{Label: "Cell BE Mapper (10x samples)"}
	for _, n := range nodeCounts {
		cr, err := RunDistributedJob(n, hadoop.DefaultConfig(),
			piSplitBuilder(Fig8Samples, n),
			&hadoop.Job{Name: "pi-cell", Reduces: 1,
				MapperFor: hadoop.StaticMapperFor(hadoop.CellPiMapper{})})
		if err != nil {
			return fig, err
		}
		cell.Points = append(cell.Points, metrics.Point{X: float64(n), Y: cr.Seconds})
		jr, err := RunDistributedJob(n, hadoop.DefaultConfig(),
			piSplitBuilder(Fig8Samples, n),
			&hadoop.Job{Name: "pi-java", Reduces: 1,
				MapperFor: hadoop.StaticMapperFor(hadoop.JavaPiMapper{})})
		if err != nil {
			return fig, err
		}
		java.Points = append(java.Points, metrics.Point{X: float64(n), Y: jr.Seconds})
		cr10, err := RunDistributedJob(n, hadoop.DefaultConfig(),
			piSplitBuilder(Fig8Samples*10, n),
			&hadoop.Job{Name: "pi-cell-10x", Reduces: 1,
				MapperFor: hadoop.StaticMapperFor(hadoop.CellPiMapper{})})
		if err != nil {
			return fig, err
		}
		cell10.Points = append(cell10.Points, metrics.Point{X: float64(n), Y: cr10.Seconds})
	}
	fig.Series = []metrics.Series{cell, java, cell10}
	return fig, nil
}
