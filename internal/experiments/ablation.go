package experiments

import (
	"fmt"

	"hetmr/internal/cellbe"
	"hetmr/internal/cluster"
	"hetmr/internal/hadoop"
	"hetmr/internal/metrics"
	"hetmr/internal/perfmodel"
	"hetmr/internal/sim"
)

// Ablations: each function sweeps one calibrated design parameter and
// regenerates a reduced experiment, quantifying how much of the
// paper's conclusion rests on that parameter. DESIGN.md §5 lists the
// parameters; the root ablation benchmarks drive these.

// AblationLoopbackRate sweeps the effective DataNode->Mapper record
// delivery rate on a fixed-size encryption run (8 nodes, 4 GB/mapper)
// and reports Java and Cell makespans. The paper's data-intensive
// conclusion — acceleration hidden behind record delivery — must
// dissolve as delivery gets faster: the Java/Cell gap opens toward the
// raw Fig. 2 ratio.
func AblationLoopbackRate(ratesMBps []float64) (metrics.Figure, error) {
	fig := metrics.Figure{
		ID:     "ablation-loopback",
		Title:  "Record delivery rate vs. encryption makespan (8 nodes, 4GB/mapper)",
		XLabel: "Delivery(MB/s)",
		YLabel: "Time(s)",
	}
	const nodes = 8
	const perMapper = 4 << 30
	java := metrics.Series{Label: "Java Mapper"}
	cell := metrics.Series{Label: "Cell Mapper"}
	gap := metrics.Series{Label: "Java/Cell"}
	for _, rate := range ratesMBps {
		opt := cluster.WithLoopbackRate(rate * 1e6)
		jr, err := RunDistributed(nodes, hadoop.DefaultConfig(),
			encryptionSplitBuilder(perMapper),
			hadoop.StaticMapperFor(hadoop.JavaAESMapper{}), opt)
		if err != nil {
			return fig, err
		}
		cr, err := RunDistributed(nodes, hadoop.DefaultConfig(),
			encryptionSplitBuilder(perMapper),
			hadoop.StaticMapperFor(hadoop.CellAESMapper{}), opt)
		if err != nil {
			return fig, err
		}
		java.Points = append(java.Points, metrics.Point{X: rate, Y: jr.Seconds})
		cell.Points = append(cell.Points, metrics.Point{X: rate, Y: cr.Seconds})
		gap.Points = append(gap.Points, metrics.Point{X: rate, Y: jr.Seconds / cr.Seconds})
	}
	fig.Series = []metrics.Series{java, cell, gap}
	return fig, nil
}

// AblationHeartbeat sweeps the TaskTracker heartbeat interval on a
// small CPU-intensive job (the Hadoop floor of Figs. 7/8 is largely
// heartbeat quantization: one task per heartbeat).
func AblationHeartbeat(intervalsSec []float64) (metrics.Figure, error) {
	fig := metrics.Figure{
		ID:     "ablation-heartbeat",
		Title:  "Heartbeat interval vs. Pi job floor (16 nodes, 1e9 samples)",
		XLabel: "Heartbeat(s)",
		YLabel: "Time(s)",
	}
	const nodes = 16
	floor := metrics.Series{Label: "Cell Mapper"}
	for _, hb := range intervalsSec {
		cfg := hadoop.DefaultConfig()
		cfg.HeartbeatInterval = sim.Seconds(hb)
		run, err := RunDistributed(nodes, cfg,
			piSplitBuilder(1e9, nodes),
			hadoop.StaticMapperFor(hadoop.CellPiMapper{}))
		if err != nil {
			return fig, err
		}
		floor.Points = append(floor.Points, metrics.Point{X: hb, Y: run.Seconds})
	}
	fig.Series = []metrics.Series{floor}
	return fig, nil
}

// AblationHousekeeping sweeps the JobTracker's serialized per-task
// bookkeeping cost at 64 nodes (128 tasks) — the parameter behind the
// Fig. 8 scaling stall.
func AblationHousekeeping(costsSec []float64) (metrics.Figure, error) {
	fig := metrics.Figure{
		ID:     "ablation-housekeeping",
		Title:  "JobTracker per-task bookkeeping vs. makespan (64 nodes, 1e11 samples, Cell)",
		XLabel: "Bookkeeping(s)",
		YLabel: "Time(s)",
	}
	const nodes = 64
	s := metrics.Series{Label: "Cell Mapper"}
	for _, c := range costsSec {
		cfg := hadoop.DefaultConfig()
		cfg.TaskHousekeeping = sim.Seconds(c)
		run, err := RunDistributed(nodes, cfg,
			piSplitBuilder(Fig8Samples, nodes),
			hadoop.StaticMapperFor(hadoop.CellPiMapper{}))
		if err != nil {
			return fig, err
		}
		s.Points = append(s.Points, metrics.Point{X: c, Y: run.Seconds})
	}
	fig.Series = []metrics.Series{s}
	return fig, nil
}

// AblationSPEBlockSize sweeps the SPE streaming block size for the raw
// encryption offload (the paper fixes 4 KB; larger blocks amortize MFC
// issue overhead but consume local store and lengthen the pipeline
// fill).
func AblationSPEBlockSize(blockBytes []int) metrics.Figure {
	fig := metrics.Figure{
		ID:     "ablation-speblock",
		Title:  "SPE block size vs. raw encryption bandwidth (256MB input)",
		XLabel: "Block(B)",
		YLabel: "Bandwidth (MB/s)",
		XLog:   true,
	}
	const input = 256 << 20
	s := metrics.Series{Label: "Cell BE"}
	for _, b := range blockBytes {
		sec := cellbe.StreamOffloadTime(input, perfmodel.SPEsPerCell, b,
			perfmodel.AESSPEBytesPerSec).TotalSeconds
		s.Points = append(s.Points, metrics.Point{X: float64(b), Y: bw(input, sec)})
	}
	fig.Series = []metrics.Series{s}
	return fig
}

// AblationSPECount sweeps how many SPEs the offload uses (1..8) for
// the raw encryption kernel — near-linear scaling is what makes the
// Cell the paper's accelerator of choice.
func AblationSPECount() metrics.Figure {
	fig := metrics.Figure{
		ID:     "ablation-spes",
		Title:  "SPE count vs. raw encryption bandwidth (256MB input)",
		XLabel: "SPEs",
		YLabel: "Bandwidth (MB/s)",
	}
	const input = 256 << 20
	s := metrics.Series{Label: "Cell BE"}
	for n := 1; n <= perfmodel.SPEsPerCell; n++ {
		sec := cellbe.StreamOffloadTime(input, n, perfmodel.SPEBlockBytes,
			perfmodel.AESSPEBytesPerSec).TotalSeconds
		s.Points = append(s.Points, metrics.Point{X: float64(n), Y: bw(input, sec)})
	}
	fig.Series = []metrics.Series{s}
	return fig
}

// TerasortAnalysis reproduces the paper's §IV-A aside about the
// Terasort contest: with delivery-bound mappers, the per-node sorting
// rate collapses to the record delivery rate regardless of how fast
// the in-memory sort kernel is. It runs a sort-shaped job (mapper
// compute modelled at sortMBps) on `nodes` workers over totalGB of
// data and returns the observed per-node MB/s. The paper's observation
// was ~5.5 MB/s per 8-way node against in-memory sort rates far above
// that.
func TerasortAnalysis(nodes int, totalGB int, sortMBps float64) (perNodeMBps float64, err error) {
	perMapper := int64(totalGB) << 30 / int64(nodes*perfmodel.MapSlotsPerNode)
	mapper := hadoop.FixedMapper{
		Label:      "sort",
		PerRecord:  sim.Seconds(float64(perfmodel.RecordBytes) / (sortMBps * 1e6)),
		OutPerByte: 1,
	}
	run, err := RunDistributed(nodes, hadoop.DefaultConfig(),
		encryptionSplitBuilder(perMapper),
		hadoop.StaticMapperFor(mapper))
	if err != nil {
		return 0, err
	}
	totalMB := float64(run.Result.InputBytes) / 1e6
	return totalMB / run.Seconds / float64(nodes), nil
}

// String renders a one-line summary for the Terasort analysis.
func TerasortSummary(nodes, totalGB int, sortMBps, perNode float64) string {
	return fmt.Sprintf("terasort-shaped job: %d nodes, %dGB, %g MB/s sort kernel -> %.1f MB/s per node",
		nodes, totalGB, sortMBps, perNode)
}
