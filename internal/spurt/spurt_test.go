package spurt

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hetmr/internal/cellbe"
	"hetmr/internal/kernels"
	"hetmr/internal/perfmodel"
)

func newRuntime(t testing.TB, nSPEs, block int) *Runtime {
	t.Helper()
	r, err := New(cellbe.NewChip(0), nSPEs, block)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func TestNewValidation(t *testing.T) {
	chip := cellbe.NewChip(0)
	cases := []struct {
		nSPEs, block int
	}{
		{0, 4096}, {9, 4096}, {4, 0}, {4, -16}, {4, 100}, // unaligned
		{4, perfmodel.LocalStoreBytes}, // too big to double buffer
	}
	for _, c := range cases {
		if _, err := New(chip, c.nSPEs, c.block); err == nil {
			t.Errorf("New(%d SPEs, %d block) should fail", c.nSPEs, c.block)
		}
	}
	if _, err := New(nil, 4, 4096); err == nil {
		t.Error("nil chip should fail")
	}
	r, err := New(chip, 8, perfmodel.SPEBlockBytes)
	if err != nil {
		t.Fatal(err)
	}
	if r.NSPEs() != 8 || r.BlockBytes() != perfmodel.SPEBlockBytes {
		t.Error("accessors wrong")
	}
}

func TestStreamIdentityKernel(t *testing.T) {
	r := newRuntime(t, 8, 4096)
	input := make([]byte, 100000) // not a block multiple
	for i := range input {
		input[i] = byte(i * 13)
	}
	output := make([]byte, len(input))
	id := KernelFunc{KernelName: "identity", Fn: func([]byte, int64) error { return nil }}
	if err := r.Stream(id, input, output); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(output, input) {
		t.Fatal("identity stream corrupted data")
	}
}

func TestStreamAESMatchesSequential(t *testing.T) {
	// The SPE-parallel CTR encryption must equal a single sequential
	// CTR pass: this is the correctness claim behind using 4KB blocks.
	c, err := kernels.NewCipher([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	iv := []byte("abcdefgh01234567")
	input := make([]byte, 70000)
	for i := range input {
		input[i] = byte(i)
	}
	want := make([]byte, len(input))
	kernels.CTRStream(c, iv, 0, want, input)

	r := newRuntime(t, 8, perfmodel.SPEBlockBytes)
	got := make([]byte, len(input))
	kern := KernelFunc{KernelName: "aes-ctr", Fn: kernels.CTRBlockFunc(c, iv)}
	if err := r.Stream(kern, input, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("SPE-parallel CTR differs from sequential CTR")
	}
}

func TestStreamUsesDMA(t *testing.T) {
	chip := cellbe.NewChip(0)
	r, err := New(chip, 4, 4096)
	if err != nil {
		t.Fatal(err)
	}
	input := make([]byte, 64*1024)
	output := make([]byte, len(input))
	id := KernelFunc{KernelName: "id", Fn: func([]byte, int64) error { return nil }}
	if err := r.Stream(id, input, output); err != nil {
		t.Fatal(err)
	}
	// Every byte must cross the MFC twice (in and out).
	if got, want := chip.TotalDMABytes(), int64(2*len(input)); got != want {
		t.Errorf("DMA bytes = %d, want %d", got, want)
	}
}

func TestStreamEmptyAndErrors(t *testing.T) {
	r := newRuntime(t, 2, 4096)
	id := KernelFunc{KernelName: "id", Fn: func([]byte, int64) error { return nil }}
	if err := r.Stream(id, nil, nil); err != nil {
		t.Errorf("empty input: %v", err)
	}
	if err := r.Stream(id, make([]byte, 10), make([]byte, 5)); err == nil {
		t.Error("short output should fail")
	}
	boom := errors.New("kernel fault")
	bad := KernelFunc{KernelName: "bad", Fn: func([]byte, int64) error { return boom }}
	if err := r.Stream(bad, make([]byte, 8192), make([]byte, 8192)); !errors.Is(err, boom) {
		t.Errorf("kernel error not propagated: %v", err)
	}
}

func TestStreamOffsetsSeenOnce(t *testing.T) {
	// Every block offset is processed exactly once across all SPEs.
	r := newRuntime(t, 8, 1024)
	const n = 64 * 1024
	seen := make([]int32, n/1024)
	var mu chan struct{} = make(chan struct{}, 1)
	mu <- struct{}{}
	kern := KernelFunc{KernelName: "mark", Fn: func(block []byte, off int64) error {
		<-mu
		seen[off/1024]++
		mu <- struct{}{}
		return nil
	}}
	if err := r.Stream(kern, make([]byte, n), make([]byte, n)); err != nil {
		t.Fatal(err)
	}
	for i, c := range seen {
		if c != 1 {
			t.Errorf("block %d processed %d times", i, c)
		}
	}
}

// Property: for random input sizes and SPE counts, streaming a
// byte-increment kernel yields input+1 everywhere.
func TestStreamIncrementProperty(t *testing.T) {
	f := func(sizeRaw uint16, spesRaw, blkRaw uint8) bool {
		size := int(sizeRaw) % 50000
		nSPEs := int(spesRaw)%8 + 1
		block := (int(blkRaw)%8 + 1) * 512
		r, err := New(cellbe.NewChip(0), nSPEs, block)
		if err != nil {
			return false
		}
		input := make([]byte, size)
		for i := range input {
			input[i] = byte(i)
		}
		output := make([]byte, size)
		inc := KernelFunc{KernelName: "inc", Fn: func(b []byte, _ int64) error {
			for i := range b {
				b[i]++
			}
			return nil
		}}
		if err := r.Stream(inc, input, output); err != nil {
			return false
		}
		for i := range output {
			if output[i] != byte(i)+1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestComputePi(t *testing.T) {
	r := newRuntime(t, 8, 4096)
	const perWorker = 100000
	results, err := r.Compute(kernels.PiWorkerFunc(7, perWorker))
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 8 {
		t.Fatalf("got %d results", len(results))
	}
	var inside, total int64
	for i, res := range results {
		if res.Worker != i {
			t.Errorf("result %d has worker %d", i, res.Worker)
		}
		inside += res.Value
		total += perWorker
	}
	pi := kernels.EstimatePi(inside, total)
	if pi < 3.10 || pi > 3.18 {
		t.Errorf("pi estimate %g out of range", pi)
	}
}

func TestComputeErrorPropagates(t *testing.T) {
	r := newRuntime(t, 4, 4096)
	boom := errors.New("spe crash")
	_, err := r.Compute(func(worker int) (int64, error) {
		if worker == 3 {
			return 0, boom
		}
		return 1, nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error = %v", err)
	}
}

func TestEstimateTimesPositiveAndMonotonic(t *testing.T) {
	r := newRuntime(t, 8, perfmodel.SPEBlockBytes)
	t1 := r.EstimateStreamTime(1<<20, perfmodel.AESSPEBytesPerSec)
	t2 := r.EstimateStreamTime(1<<24, perfmodel.AESSPEBytesPerSec)
	if t1 <= 0 || t2 <= t1 {
		t.Errorf("stream estimates not monotonic: %g, %g", t1, t2)
	}
	c1 := r.EstimateComputeTime(1e6, perfmodel.PiSPESamplesPerSec)
	c2 := r.EstimateComputeTime(1e8, perfmodel.PiSPESamplesPerSec)
	if c1 <= 0 || c2 <= c1 {
		t.Errorf("compute estimates not monotonic: %g, %g", c1, c2)
	}
}
