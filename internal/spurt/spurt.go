// Package spurt (SPU RunTime) is the paper's first native library:
// "a simple runtime that allows us to divide and execute task on the
// SPUs". It carves an input buffer into fixed-size blocks (4 KB in the
// paper's distributed experiments), streams them through the SPEs with
// double-buffered DMA, and runs a block kernel on each — the direct,
// pthread-style offload path that reaches ~700 MB/s of AES throughput
// in Figure 2.
package spurt

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"

	"hetmr/internal/cellbe"
	"hetmr/internal/perfmodel"
)

// BlockKernel is the user-supplied computation applied to each block.
// The block slice is local-store-backed and must be processed in
// place; offset is the block's byte offset within the whole input, so
// kernels like CTR encryption can be position-aware.
type BlockKernel interface {
	// Name identifies the kernel in diagnostics.
	Name() string
	// ProcessBlock transforms block in place.
	ProcessBlock(block []byte, offset int64) error
}

// KernelFunc adapts a function to the BlockKernel interface.
type KernelFunc struct {
	KernelName string
	Fn         func(block []byte, offset int64) error
}

// Name implements BlockKernel.
func (k KernelFunc) Name() string { return k.KernelName }

// ProcessBlock implements BlockKernel.
func (k KernelFunc) ProcessBlock(block []byte, offset int64) error {
	return k.Fn(block, offset)
}

// Runtime schedules block work onto a Cell chip's SPEs.
type Runtime struct {
	chip       *cellbe.Chip
	nSPEs      int
	blockBytes int
}

// New creates a runtime using nSPEs of the chip and the given block
// size. Block size must fit the double-buffering budget of a 256 KB
// local store and be 16-byte aligned (DMA alignment).
func New(chip *cellbe.Chip, nSPEs, blockBytes int) (*Runtime, error) {
	if chip == nil {
		return nil, errors.New("spurt: nil chip")
	}
	if nSPEs <= 0 || nSPEs > len(chip.SPEs) {
		return nil, fmt.Errorf("spurt: %d SPEs requested, chip has %d", nSPEs, len(chip.SPEs))
	}
	if blockBytes <= 0 || blockBytes%perfmodel.DMAAlignment != 0 {
		return nil, fmt.Errorf("spurt: block size %d must be positive and 16-byte aligned", blockBytes)
	}
	// Two in-flight buffers per SPE plus kernel scratch must fit.
	if 2*blockBytes > perfmodel.LocalStoreBytes/2 {
		return nil, fmt.Errorf("spurt: block size %d too large for double buffering in a %d-byte local store",
			blockBytes, perfmodel.LocalStoreBytes)
	}
	return &Runtime{chip: chip, nSPEs: nSPEs, blockBytes: blockBytes}, nil
}

// BlockBytes returns the configured block size.
func (r *Runtime) BlockBytes() int { return r.blockBytes }

// NSPEs returns the number of SPEs in use.
func (r *Runtime) NSPEs() int { return r.nSPEs }

// Stream runs kernel over input, writing transformed blocks to output
// (which must be at least len(input) bytes). Blocks are distributed
// dynamically: each SPE grabs the next unprocessed block, double
// buffering DMA-in of block i+1 with compute on block i.
func (r *Runtime) Stream(kernel BlockKernel, input, output []byte) error {
	if len(output) < len(input) {
		return fmt.Errorf("spurt: output %d bytes < input %d bytes", len(output), len(input))
	}
	if len(input) == 0 {
		return nil
	}
	nBlocks := (len(input) + r.blockBytes - 1) / r.blockBytes
	var next int64 // atomically claimed block index
	takeBlock := func() (idx, start, end int, ok bool) {
		i := int(atomic.AddInt64(&next, 1)) - 1
		if i >= nBlocks {
			return 0, 0, 0, false
		}
		start = i * r.blockBytes
		end = start + r.blockBytes
		if end > len(input) {
			end = len(input)
		}
		return i, start, end, true
	}

	return r.chip.RunOnSPEs(r.nSPEs, func(spe *cellbe.SPE, worker int) error {
		const tagCur, tagNext = 0, 1
		bufA, err := spe.LS.Alloc(r.blockBytes)
		if err != nil {
			return fmt.Errorf("spurt: %v: %w", spe, err)
		}
		defer spe.LS.Free(bufA)
		bufB, err := spe.LS.Alloc(r.blockBytes)
		if err != nil {
			return fmt.Errorf("spurt: %v: %w", spe, err)
		}
		defer spe.LS.Free(bufB)

		cur, curStart, curEnd, ok := claimAndFetch(spe, bufA, tagCur, input, takeBlock)
		if !ok {
			return nil
		}
		curBuf, nextBuf := bufA, bufB
		for {
			// Prefetch the next block into the other buffer.
			nxt, nxtStart, nxtEnd, more := claimAndFetch(spe, nextBuf, tagNext, input, takeBlock)

			// Complete the DMA for the current block, compute, and
			// DMA the result out.
			spe.MFC.WaitTag(tagCur)
			n := curEnd - curStart
			if err := kernel.ProcessBlock(curBuf.Bytes()[:n], int64(curStart)); err != nil {
				return fmt.Errorf("spurt: kernel %q block %d: %w", kernel.Name(), cur, err)
			}
			if err := spe.MFC.PutLarge(curBuf, 0, output[curStart:curEnd], tagCur); err != nil {
				return fmt.Errorf("spurt: put block %d: %w", cur, err)
			}
			spe.MFC.WaitTag(tagCur)

			if !more {
				return nil
			}
			// Promote the prefetched block: retag by waiting is not
			// needed — we simply treat tagNext as the current tag by
			// swapping roles of the buffers and waiting on tagNext
			// next iteration. To keep tags fixed, wait for the
			// prefetch here and reissue nothing: the data is already
			// in nextBuf.
			spe.MFC.WaitTag(tagNext)
			cur, curStart, curEnd = nxt, nxtStart, nxtEnd
			curBuf, nextBuf = nextBuf, curBuf
			// The promoted block's data is resident; make WaitTag a
			// no-op by issuing nothing on tagCur.
		}
	})
}

// claimAndFetch claims the next block and issues its DMA-in.
func claimAndFetch(spe *cellbe.SPE, buf *cellbe.LSBuffer, tag int, input []byte,
	take func() (int, int, int, bool)) (idx, start, end int, ok bool) {
	idx, start, end, ok = take()
	if !ok {
		return 0, 0, 0, false
	}
	if err := spe.MFC.GetLarge(buf, 0, input[start:end], tag); err != nil {
		// A failed issue is a programming error at this block size;
		// surface it by processing synchronously via panic-free path:
		// retry after draining (queue can only be full transiently
		// with our two-buffer discipline).
		spe.MFC.WaitTag(tag)
		if err2 := spe.MFC.GetLarge(buf, 0, input[start:end], tag); err2 != nil {
			panic(fmt.Sprintf("spurt: DMA issue failed after drain: %v", err2))
		}
	}
	return idx, start, end, true
}

// ComputeResult is one worker's output from a Compute offload.
type ComputeResult struct {
	Worker int
	Value  int64
}

// Compute runs a pure-compute task (no data streaming, e.g. Monte
// Carlo sampling) split across the SPEs. fn receives the worker index
// and returns the worker's partial result; results are collected in
// worker order.
func (r *Runtime) Compute(fn func(worker int) (int64, error)) ([]ComputeResult, error) {
	results := make([]ComputeResult, r.nSPEs)
	var mu sync.Mutex
	err := r.chip.RunOnSPEs(r.nSPEs, func(spe *cellbe.SPE, worker int) error {
		v, err := fn(worker)
		if err != nil {
			return err
		}
		mu.Lock()
		results[worker] = ComputeResult{Worker: worker, Value: v}
		mu.Unlock()
		return nil
	})
	if err != nil {
		return nil, err
	}
	return results, nil
}

// EstimateStreamTime models the wall time of Stream for the simulated
// experiments (the live path above is functional, not timed).
func (r *Runtime) EstimateStreamTime(bytes int64, perSPERate float64) float64 {
	return cellbe.StreamOffloadTime(bytes, r.nSPEs, r.blockBytes, perSPERate).TotalSeconds
}

// EstimateComputeTime models the wall time of Compute.
func (r *Runtime) EstimateComputeTime(work int64, perSPERate float64) float64 {
	return cellbe.ComputeOffloadTime(work, r.nSPEs, perSPERate).TotalSeconds
}
