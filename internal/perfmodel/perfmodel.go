// Package perfmodel holds the calibrated performance constants used by
// the simulated testbed. Every constant cites the statement or figure
// in Becerra et al. (ICPP 2009) it is derived from; where the paper is
// silent we use the Hadoop 0.19 defaults the paper says it ran with.
//
// The distributed curves in the paper are NOT curve-fitted here: the
// simulator executes the modelled Hadoop/HDFS/Cell protocols and the
// figure shapes (floors, crossovers, who-wins) emerge from these
// per-device rates and per-operation overheads.
package perfmodel

// Device identifies a compute device in the modelled testbed.
type Device int

const (
	// DevPower6 is one 4.0 GHz Power6 core of the JS22 blade running
	// the Java kernels.
	DevPower6 Device = iota
	// DevPPE is the Cell BE's Power Processing Element running the
	// Java kernels ("a limited implementation of the PowerPC family").
	DevPPE
	// DevSPE is one Synergistic Processing Element running the
	// SDK 3.0 native kernels.
	DevSPE
)

// String returns the device name.
func (d Device) String() string {
	switch d {
	case DevPower6:
		return "Power6"
	case DevPPE:
		return "PPE"
	case DevSPE:
		return "SPE"
	default:
		return "unknown-device"
	}
}

// Cell BE micro-architecture constants (paper §II-B).
const (
	// SPEsPerCell is the number of SPE cores per Cell BE chip.
	SPEsPerCell = 8
	// CellsPerQS22 is the number of Cell processors on a QS22 blade.
	CellsPerQS22 = 2
	// LocalStoreBytes is each SPE's local store capacity (256 KB).
	LocalStoreBytes = 256 * 1024
	// DMAMaxRequestBytes is the largest single DMA request (16 KB).
	DMAMaxRequestBytes = 16 * 1024
	// DMAMaxInflight is the MFC queue depth (16 concurrent requests).
	DMAMaxInflight = 16
	// DMAAlignment is the alignment SIMD/DMA transfers must satisfy.
	DMAAlignment = 16
	// DMABytesPerSecond is the per-SPE DMA engine bandwidth: "8 bytes
	// per cycle in each direction" at 3.2 GHz = 25.6 GB/s.
	DMABytesPerSecond = 8.0 * 3.2e9
	// SIMDWidthBytes is the Cell vector width ("data sets of 16
	// bytes").
	SIMDWidthBytes = 16
)

// Kernel compute rates. The encryption rates are read directly off
// Figure 2; the Pi rates off Figure 6.
const (
	// AESPower6BytesPerSec: "one Power6 core is around 45MB/s".
	AESPower6BytesPerSec = 45e6
	// AESPPEBytesPerSec: the PPE Java curve sits roughly 2.3x below
	// Power6 in Fig. 2.
	AESPPEBytesPerSec = 19e6
	// AESCellBytesPerSec: "the maximum data rate at which one Cell
	// processor can encrypt data is near 700MB/s" (8 SPEs together).
	AESCellBytesPerSec = 700e6
	// AESSPEBytesPerSec is the per-SPE share of the chip rate.
	AESSPEBytesPerSec = AESCellBytesPerSec / SPEsPerCell

	// CellMRStagingBytesPerSec models the MapReduce-for-Cell
	// framework's extra PPE copy of the input into framework-managed
	// buffers ("the original input data must be copied again to
	// internal buffers managed by the framework"). A PPE memcpy
	// sustains roughly 1.2 GB/s.
	CellMRStagingBytesPerSec = 1.2e9
	// CellMRFrameworkInitSeconds is the per-invocation setup cost of
	// the Cell MapReduce framework (buffer pools, SPE contexts).
	CellMRFrameworkInitSeconds = 5e-3

	// PiPower6SamplesPerSec: Fig. 6 Power6 plateau (~2e6 samples/s).
	PiPower6SamplesPerSec = 2e6
	// PiPPESamplesPerSec: Fig. 6 PPE plateau, ~2.5x below Power6;
	// consistent with the distributed Java times of Figs. 7/8, which
	// run the Java kernel on the QS22 PPEs.
	PiPPESamplesPerSec = 8e5
	// PiCellSamplesPerSec: Fig. 6 Cell plateau, "one order of
	// magnitude faster than the Java kernel running on top of the
	// Power6" once above ~1e7 samples, "and even more" vs the PPE.
	PiCellSamplesPerSec = 2.2e7
	// PiSPESamplesPerSec is the per-SPE share of the chip rate.
	PiSPESamplesPerSec = PiCellSamplesPerSec / SPEsPerCell
)

// SPE offload session overheads (Fig. 2 and Fig. 6 show the Cell
// curves dipping below the CPUs at small problem sizes: "the overhead
// of work distribution about SPUs is only worth when the work ... is
// above the overhead of SPUs initialization").
const (
	// SPUContextCreateSeconds is the cost of creating/loading one SPE
	// context (thread create + program load).
	SPUContextCreateSeconds = 300e-6
	// SPUOffloadInitSeconds is the fixed per-offload-session overhead
	// (8 contexts, synchronization, argument marshalling).
	SPUOffloadInitSeconds = 2.5e-3
	// DMASetupSeconds is the per-request MFC issue cost.
	DMASetupSeconds = 0.2e-6
)

// Cluster fabric constants (paper §IV: "All the nodes were connected
// using a Gigabit ethernet").
const (
	// GbEBytesPerSecond is the usable rate of the Gigabit NIC
	// (~940 Mb/s of goodput).
	GbEBytesPerSecond = 117e6
	// NetLatencySeconds is the one-way switch+stack latency.
	NetLatencySeconds = 100e-6
	// LoopbackDeliveryBytesPerSec is the *effective* rate at which the
	// Hadoop RecordReader delivers data from the co-located DataNode
	// to the Mapper over the loopback interface. The paper measured
	// "several seconds to send the data ... at a much slower rate than
	// the actual maximum rate that can be delivered by such a virtual
	// network interface, even in the case that all the data was
	// resident in the OS buffer cache". This is the data-intensive
	// bottleneck: per 64 MB record it is ~4 s, matching Figs. 4/5.
	LoopbackDeliveryBytesPerSec = 16e6
	// DiskBytesPerSecond is the QS22 local disk streaming rate.
	DiskBytesPerSecond = 60e6
	// DiskSeekSeconds is the per-access positioning cost.
	DiskSeekSeconds = 8e-3
)

// Hadoop 0.19 runtime constants (paper §III-A / §IV configuration,
// defaults from the Hadoop 0.19 release where the paper is silent).
const (
	// HeartbeatSeconds is the TaskTracker->JobTracker heartbeat
	// interval (0.19 default 3 s; the JobTracker assigns at most one
	// new task per heartbeat, pre-MAPREDUCE-706 behaviour).
	HeartbeatSeconds = 3.0
	// MapSlotsPerNode: "two Mappers were run in parallel" per blade.
	MapSlotsPerNode = 2
	// TaskLaunchSeconds is the cost of spawning the task JVM and
	// localizing the job (0.19 launched one JVM per task).
	TaskLaunchSeconds = 1.5
	// TaskHousekeepingSeconds is the JobTracker-side serialized
	// bookkeeping per completed task (status processing, partial
	// result collection and sorting — "the JobTracker is also
	// responsible for collecting and sorting the partial results").
	// This serial section is what eventually caps scaling in Fig. 8.
	TaskHousekeepingSeconds = 0.9
	// JobSetupSeconds covers job submission, split computation and
	// staging before the first heartbeat can be answered.
	JobSetupSeconds = 8.0
	// JobCleanupSeconds covers the job cleanup task and final
	// result/counters aggregation.
	JobCleanupSeconds = 6.0
	// HDFSBlockBytes: "The HDFS was configured to use 64MB blocks".
	HDFSBlockBytes = 64 * 1024 * 1024
	// ReplicationFactor: "a replication level of 1".
	ReplicationFactor = 1
	// RecordBytes: "a record size of 64MB".
	RecordBytes = 64 * 1024 * 1024
	// SPEBlockBytes: "each record was split into 4KB data blocks that
	// were sent to the SPUs".
	SPEBlockBytes = 4 * 1024
	// NameNodeOpSeconds is the NameNode metadata operation cost.
	NameNodeOpSeconds = 1e-3
	// HeartbeatProcessSeconds is the JobTracker's serialized cost to
	// process one heartbeat RPC.
	HeartbeatProcessSeconds = 30e-3
)

// Energy model (paper §V names energy as the open issue; constants are
// nameplate figures for the blades involved, used by the energy
// extension only — no paper figure depends on them).
const (
	// QS22IdleWatts / QS22BusyWatts bracket a dual-Cell QS22 blade.
	QS22IdleWatts = 230.0
	QS22BusyWatts = 330.0
	// SPEActiveWatts is the incremental draw of one busy SPE.
	SPEActiveWatts = 4.0
	// Power6CoreBusyWatts is the incremental draw of a busy Power6
	// core on the JS22.
	Power6CoreBusyWatts = 25.0
)

// AESRate returns the modelled steady-state AES-128 encryption rate in
// bytes/second for a device.
func AESRate(d Device) float64 {
	switch d {
	case DevPower6:
		return AESPower6BytesPerSec
	case DevPPE:
		return AESPPEBytesPerSec
	case DevSPE:
		return AESSPEBytesPerSec
	default:
		return 0
	}
}

// PiRate returns the modelled Monte Carlo sampling rate in samples per
// second for a device.
func PiRate(d Device) float64 {
	switch d {
	case DevPower6:
		return PiPower6SamplesPerSec
	case DevPPE:
		return PiPPESamplesPerSec
	case DevSPE:
		return PiSPESamplesPerSec
	default:
		return 0
	}
}
