package perfmodel

import "testing"

func TestDeviceString(t *testing.T) {
	cases := map[Device]string{
		DevPower6:  "Power6",
		DevPPE:     "PPE",
		DevSPE:     "SPE",
		Device(99): "unknown-device",
	}
	for d, want := range cases {
		if got := d.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", int(d), got, want)
		}
	}
}

func TestAESRateOrdering(t *testing.T) {
	// Paper Fig. 2: Cell >> Power6 > PPE.
	if AESRate(DevSPE)*SPEsPerCell != AESCellBytesPerSec {
		t.Error("per-SPE AES rate does not sum to chip rate")
	}
	if !(AESCellBytesPerSec > AESPower6BytesPerSec) {
		t.Error("Cell must out-encrypt Power6")
	}
	if !(AESPower6BytesPerSec > AESPPEBytesPerSec) {
		t.Error("Power6 must out-encrypt PPE")
	}
	// "near 700MB/s" vs "around 45MB/s": more than an order of
	// magnitude apart.
	if AESCellBytesPerSec/AESPower6BytesPerSec < 10 {
		t.Error("Cell/Power6 AES ratio should exceed 10x")
	}
	if AESRate(Device(99)) != 0 {
		t.Error("unknown device rate should be 0")
	}
}

func TestPiRateOrdering(t *testing.T) {
	// Paper Fig. 6: Cell one order of magnitude over Power6, Power6
	// over PPE.
	if r := PiCellSamplesPerSec / PiPower6SamplesPerSec; r < 8 || r > 40 {
		t.Errorf("Cell/Power6 Pi ratio = %g, want roughly one order of magnitude", r)
	}
	if !(PiPower6SamplesPerSec > PiPPESamplesPerSec) {
		t.Error("Power6 must out-sample PPE")
	}
	if PiRate(DevSPE)*SPEsPerCell != PiCellSamplesPerSec {
		t.Error("per-SPE Pi rate does not sum to chip rate")
	}
	if PiRate(Device(99)) != 0 {
		t.Error("unknown device rate should be 0")
	}
}

func TestCellArchitectureConstants(t *testing.T) {
	// Paper §II-B hard facts.
	if SPEsPerCell != 8 {
		t.Error("Cell BE has 8 SPEs")
	}
	if LocalStoreBytes != 256*1024 {
		t.Error("local store is 256K")
	}
	if DMAMaxRequestBytes != 16*1024 || DMAMaxInflight != 16 {
		t.Error("DMA: 16 concurrent requests of up to 16K")
	}
	if DMAAlignment != 16 || SIMDWidthBytes != 16 {
		t.Error("16-byte alignment/SIMD width")
	}
	if DMABytesPerSecond != 8.0*3.2e9 {
		t.Error("DMA bandwidth is 8 bytes/cycle at 3.2GHz")
	}
}

func TestHadoopConstants(t *testing.T) {
	if HDFSBlockBytes != 64<<20 || RecordBytes != 64<<20 {
		t.Error("64MB blocks and records per paper §IV")
	}
	if SPEBlockBytes != 4<<10 {
		t.Error("4KB SPE blocks per paper §IV-A")
	}
	if MapSlotsPerNode != 2 {
		t.Error("two Mappers per node per paper §IV")
	}
	if ReplicationFactor != 1 {
		t.Error("replication level of 1 per paper §IV")
	}
}

func TestBottleneckRelation(t *testing.T) {
	// The data-intensive result requires record delivery to be slower
	// than Java AES compute, so acceleration is hidden (Fig. 4/5).
	if LoopbackDeliveryBytesPerSec >= AESPower6BytesPerSec {
		t.Error("record delivery must be the data-intensive bottleneck")
	}
	// And the DMA engine must be far faster than any kernel, so it is
	// never the accelerator's bottleneck.
	if DMABytesPerSecond < 10*AESCellBytesPerSec {
		t.Error("DMA should not bottleneck AES on the Cell")
	}
}
