package cellbe

import (
	"errors"
	"testing"
	"testing/quick"

	"hetmr/internal/perfmodel"
)

func TestLocalStoreAllocAligned(t *testing.T) {
	ls := NewLocalStore(perfmodel.LocalStoreBytes)
	for _, size := range []int{1, 15, 16, 17, 4096, 100} {
		b, err := ls.Alloc(size)
		if err != nil {
			t.Fatalf("Alloc(%d): %v", size, err)
		}
		if b.Offset()%perfmodel.DMAAlignment != 0 {
			t.Errorf("Alloc(%d) offset %d not 16-byte aligned", size, b.Offset())
		}
		if b.Size() < size {
			t.Errorf("Alloc(%d) returned size %d", size, b.Size())
		}
		if len(b.Bytes()) != b.Size() {
			t.Errorf("Bytes() length %d != size %d", len(b.Bytes()), b.Size())
		}
	}
}

func TestLocalStoreExhaustion(t *testing.T) {
	ls := NewLocalStore(1024)
	a, err := ls.Alloc(1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := ls.Alloc(1); !errors.Is(err, ErrNoSpace) {
		t.Errorf("expected ErrNoSpace, got %v", err)
	}
	ls.Free(a)
	if ls.FreeBytes() != 1024 {
		t.Errorf("free bytes = %d after full free", ls.FreeBytes())
	}
}

func TestLocalStoreBadSize(t *testing.T) {
	ls := NewLocalStore(1024)
	for _, n := range []int{0, -5} {
		if _, err := ls.Alloc(n); !errors.Is(err, ErrBadSize) {
			t.Errorf("Alloc(%d): expected ErrBadSize, got %v", n, err)
		}
	}
}

func TestLocalStoreCoalescing(t *testing.T) {
	ls := NewLocalStore(4096)
	a, _ := ls.Alloc(1024)
	b, _ := ls.Alloc(1024)
	c, _ := ls.Alloc(1024)
	ls.Free(a)
	ls.Free(c)
	// Free list fragmented: a full-size alloc must fail, then freeing
	// b coalesces everything back into one span.
	if _, err := ls.Alloc(4096); err == nil {
		t.Fatal("alloc across fragmentation should fail")
	}
	ls.Free(b)
	d, err := ls.Alloc(4096)
	if err != nil {
		t.Fatalf("full-size alloc after coalesce: %v", err)
	}
	ls.Free(d)
}

func TestLocalStoreDoubleFreePanics(t *testing.T) {
	ls := NewLocalStore(1024)
	b, _ := ls.Alloc(64)
	ls.Free(b)
	defer func() {
		if recover() == nil {
			t.Error("double free should panic")
		}
	}()
	ls.Free(b)
}

func TestLocalStoreUseAfterFreePanics(t *testing.T) {
	ls := NewLocalStore(1024)
	b, _ := ls.Alloc(64)
	ls.Free(b)
	defer func() {
		if recover() == nil {
			t.Error("use after free should panic")
		}
	}()
	_ = b.Bytes()
}

func TestLocalStoreForeignFreePanics(t *testing.T) {
	ls1 := NewLocalStore(1024)
	ls2 := NewLocalStore(1024)
	b, _ := ls1.Alloc(64)
	defer func() {
		if recover() == nil {
			t.Error("foreign free should panic")
		}
	}()
	ls2.Free(b)
}

// Property: any sequence of allocs and frees keeps buffers disjoint
// and conserves capacity.
func TestLocalStoreAllocatorInvariants(t *testing.T) {
	f := func(ops []uint16) bool {
		const capacity = 16 * 1024
		ls := NewLocalStore(capacity)
		var live []*LSBuffer
		allocated := 0
		for _, op := range ops {
			if op%3 != 0 && len(live) > 0 {
				// Free a pseudo-random live buffer.
				i := int(op) % len(live)
				allocated -= live[i].Size()
				ls.Free(live[i])
				live = append(live[:i], live[i+1:]...)
				continue
			}
			size := int(op%2048) + 1
			b, err := ls.Alloc(size)
			if err != nil {
				continue // exhaustion is fine
			}
			allocated += b.Size()
			live = append(live, b)
		}
		// Conservation: free + allocated == capacity.
		if ls.FreeBytes()+allocated != capacity {
			return false
		}
		// Disjointness: no two live buffers overlap.
		for i := 0; i < len(live); i++ {
			for j := i + 1; j < len(live); j++ {
				a, b := live[i], live[j]
				if a.Offset() < b.Offset()+b.Size() && b.Offset() < a.Offset()+a.Size() {
					return false
				}
			}
		}
		// Cleanup: freeing everything restores full capacity in one span.
		for _, b := range live {
			ls.Free(b)
		}
		return ls.FreeBytes() == capacity
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestLocalStoreWritesVisible(t *testing.T) {
	ls := NewLocalStore(1024)
	a, _ := ls.Alloc(16)
	b, _ := ls.Alloc(16)
	for i := range a.Bytes() {
		a.Bytes()[i] = 0xAA
	}
	for _, v := range b.Bytes() {
		if v != 0 {
			t.Fatal("write to one buffer leaked into another")
		}
	}
}
