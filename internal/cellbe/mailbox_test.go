package cellbe

import (
	"errors"
	"sync"
	"testing"
	"time"
)

func TestMailboxDepths(t *testing.T) {
	chip := NewChip(0)
	spe := chip.SPEs[0]
	if spe.Inbound.Depth() != 4 {
		t.Errorf("inbound depth = %d, want 4 (SPU Read Inbound Mailbox)", spe.Inbound.Depth())
	}
	if spe.Outbound.Depth() != 1 {
		t.Errorf("outbound depth = %d, want 1 (SPU Write Outbound Mailbox)", spe.Outbound.Depth())
	}
}

func TestMailboxFIFOAndCount(t *testing.T) {
	m := newMailbox(4)
	for i := uint32(1); i <= 4; i++ {
		m.Write(i * 10)
	}
	if m.Count() != 4 {
		t.Errorf("count = %d", m.Count())
	}
	for i := uint32(1); i <= 4; i++ {
		if v := m.Read(); v != i*10 {
			t.Errorf("read %d, want %d", v, i*10)
		}
	}
	if m.Count() != 0 {
		t.Errorf("count after drain = %d", m.Count())
	}
}

func TestMailboxTryOps(t *testing.T) {
	m := newMailbox(1)
	if _, err := m.TryRead(); !errors.Is(err, ErrMailboxEmpty) {
		t.Errorf("TryRead empty: %v", err)
	}
	if err := m.TryWrite(7); err != nil {
		t.Fatal(err)
	}
	if err := m.TryWrite(8); !errors.Is(err, ErrMailboxFull) {
		t.Errorf("TryWrite full: %v", err)
	}
	if m.Stalls() != 1 {
		t.Errorf("stalls = %d", m.Stalls())
	}
	v, err := m.TryRead()
	if err != nil || v != 7 {
		t.Errorf("TryRead = %d, %v", v, err)
	}
}

func TestMailboxBlockingWrite(t *testing.T) {
	m := newMailbox(1)
	m.Write(1)
	done := make(chan struct{})
	go func() {
		m.Write(2) // blocks until the reader drains
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("write to full mailbox did not block")
	case <-time.After(20 * time.Millisecond):
	}
	if v := m.Read(); v != 1 {
		t.Fatalf("read %d", v)
	}
	select {
	case <-done:
	case <-time.After(time.Second):
		t.Fatal("blocked write never completed")
	}
	if v := m.Read(); v != 2 {
		t.Errorf("read %d, want 2", v)
	}
}

// TestMailboxWorkNotification runs the canonical Cell idiom: the PPE
// feeds work-unit IDs through the inbound mailboxes and collects
// per-SPE status words from the outbound mailboxes.
func TestMailboxWorkNotification(t *testing.T) {
	chip := NewChip(0)
	const unitsPerSPE = 10
	var wg sync.WaitGroup
	// PPE side: one feeder per SPE (the PPE thread multiplexes in
	// reality; goroutines express the same protocol).
	for _, spe := range chip.SPEs {
		spe := spe
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := uint32(1); u <= unitsPerSPE; u++ {
				spe.Inbound.Write(u)
			}
			spe.Inbound.Write(0) // poison pill
		}()
	}
	totals := make([]uint32, len(chip.SPEs))
	err := chip.RunOnSPEs(len(chip.SPEs), func(spe *SPE, worker int) error {
		var sum uint32
		for {
			u := spe.Inbound.Read()
			if u == 0 {
				break
			}
			sum += u
		}
		spe.Outbound.Write(sum)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	wg.Wait()
	for i, spe := range chip.SPEs {
		totals[i] = spe.Outbound.Read()
		want := uint32(unitsPerSPE * (unitsPerSPE + 1) / 2)
		if totals[i] != want {
			t.Errorf("SPE %d status = %d, want %d", i, totals[i], want)
		}
	}
}
