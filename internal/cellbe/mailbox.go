package cellbe

import (
	"errors"
	"sync"
)

// SPE mailboxes: the Cell's PPE<->SPE synchronization channels. Each
// SPE has a 4-entry inbound mailbox (PPE writes, SPU reads) and a
// 1-entry outbound mailbox (SPU writes, PPE reads), each carrying
// 32-bit values. Kernels use them for work notification and status
// reporting without touching main memory.
const (
	// InboundMailboxDepth is the SPU Read Inbound Mailbox queue depth.
	InboundMailboxDepth = 4
	// OutboundMailboxDepth is the SPU Write Outbound Mailbox depth.
	OutboundMailboxDepth = 1
)

// ErrMailboxFull is returned by non-blocking writes to a full mailbox.
var ErrMailboxFull = errors.New("cellbe: mailbox full")

// ErrMailboxEmpty is returned by non-blocking reads of an empty
// mailbox.
var ErrMailboxEmpty = errors.New("cellbe: mailbox empty")

// Mailbox is one direction's bounded 32-bit message queue. Blocking
// operations model the stalling behaviour of the real channels;
// non-blocking ones model the *_stat polling idiom.
type Mailbox struct {
	mu    sync.Mutex
	cond  *sync.Cond
	queue []uint32
	depth int

	writes int64
	stalls int64
}

// newMailbox builds a mailbox of the given depth.
func newMailbox(depth int) *Mailbox {
	m := &Mailbox{depth: depth}
	m.cond = sync.NewCond(&m.mu)
	return m
}

// Depth returns the queue capacity.
func (m *Mailbox) Depth() int { return m.depth }

// Count returns the entries currently queued (the *_stat intrinsic).
func (m *Mailbox) Count() int {
	m.mu.Lock()
	defer m.mu.Unlock()
	return len(m.queue)
}

// Write blocks until space is available, then enqueues v.
func (m *Mailbox) Write(v uint32) {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) >= m.depth {
		m.stalls++
		m.cond.Wait()
	}
	m.queue = append(m.queue, v)
	m.writes++
	m.cond.Broadcast()
}

// TryWrite enqueues v if space is available.
func (m *Mailbox) TryWrite(v uint32) error {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) >= m.depth {
		m.stalls++
		return ErrMailboxFull
	}
	m.queue = append(m.queue, v)
	m.writes++
	m.cond.Broadcast()
	return nil
}

// Read blocks until a value is available.
func (m *Mailbox) Read() uint32 {
	m.mu.Lock()
	defer m.mu.Unlock()
	for len(m.queue) == 0 {
		m.cond.Wait()
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	m.cond.Broadcast()
	return v
}

// TryRead dequeues a value if one is available.
func (m *Mailbox) TryRead() (uint32, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if len(m.queue) == 0 {
		return 0, ErrMailboxEmpty
	}
	v := m.queue[0]
	m.queue = m.queue[1:]
	m.cond.Broadcast()
	return v, nil
}

// Stalls reports how many operations had to wait or were rejected on
// a full queue.
func (m *Mailbox) Stalls() int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.stalls
}
