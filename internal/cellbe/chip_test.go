package cellbe

import (
	"errors"
	"sync/atomic"
	"testing"

	"hetmr/internal/perfmodel"
)

func TestNewChipArchitecture(t *testing.T) {
	c := NewChip(0)
	if len(c.SPEs) != perfmodel.SPEsPerCell {
		t.Fatalf("chip has %d SPEs, want %d", len(c.SPEs), perfmodel.SPEsPerCell)
	}
	for i, spe := range c.SPEs {
		if spe.ID != i {
			t.Errorf("SPE %d has ID %d", i, spe.ID)
		}
		if spe.LS.Size() != perfmodel.LocalStoreBytes {
			t.Errorf("SPE %d local store size %d", i, spe.LS.Size())
		}
		if spe.String() == "" {
			t.Error("SPE String empty")
		}
	}
}

func TestNewBlade(t *testing.T) {
	b := NewBlade()
	if len(b.Chips) != perfmodel.CellsPerQS22 {
		t.Fatalf("blade has %d chips, want 2", len(b.Chips))
	}
}

func TestRunOnSPEsParallel(t *testing.T) {
	c := NewChip(0)
	var ran int64
	seen := make([]int64, 8)
	err := c.RunOnSPEs(8, func(spe *SPE, worker int) error {
		atomic.AddInt64(&ran, 1)
		atomic.AddInt64(&seen[spe.ID], 1)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if ran != 8 {
		t.Errorf("ran %d kernels, want 8", ran)
	}
	for id, n := range seen {
		if n != 1 {
			t.Errorf("SPE %d ran %d times", id, n)
		}
	}
}

func TestRunOnSPEsErrorPropagation(t *testing.T) {
	c := NewChip(0)
	boom := errors.New("kernel fault")
	err := c.RunOnSPEs(4, func(spe *SPE, worker int) error {
		if worker == 2 {
			return boom
		}
		return nil
	})
	if !errors.Is(err, boom) {
		t.Errorf("error = %v, want kernel fault", err)
	}
}

func TestRunOnSPEsBadCount(t *testing.T) {
	c := NewChip(0)
	for _, n := range []int{0, -1, 9} {
		if err := c.RunOnSPEs(n, func(*SPE, int) error { return nil }); err == nil {
			t.Errorf("RunOnSPEs(%d) should fail", n)
		}
	}
}

func TestChipDMATotal(t *testing.T) {
	c := NewChip(0)
	src := make([]byte, 1024)
	err := c.RunOnSPEs(2, func(spe *SPE, worker int) error {
		buf, err := spe.LS.Alloc(1024)
		if err != nil {
			return err
		}
		defer spe.LS.Free(buf)
		if err := spe.MFC.Get(buf, 0, src, 0); err != nil {
			return err
		}
		spe.MFC.WaitTag(0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := c.TotalDMABytes(); got != 2048 {
		t.Errorf("TotalDMABytes = %d, want 2048", got)
	}
}

func TestStreamOffloadTimeShape(t *testing.T) {
	// Larger inputs amortize init: effective bandwidth must increase
	// with size and approach the asymptote (Fig. 2's rising curves).
	rate := perfmodel.AESSPEBytesPerSec
	small := StreamOffloadTime(1<<20, 8, perfmodel.SPEBlockBytes, rate)
	large := StreamOffloadTime(1<<30, 8, perfmodel.SPEBlockBytes, rate)
	bwSmall := float64(1<<20) / small.TotalSeconds
	bwLarge := float64(1<<30) / large.TotalSeconds
	if bwLarge <= bwSmall {
		t.Errorf("bandwidth should rise with size: %g vs %g", bwSmall, bwLarge)
	}
	asymptote := perfmodel.AESCellBytesPerSec
	if bwLarge < 0.85*asymptote || bwLarge > asymptote {
		t.Errorf("large-input bandwidth %g should approach %g", bwLarge, asymptote)
	}
	if small.TotalSeconds < small.InitSeconds {
		t.Error("total below init cost")
	}
}

func TestComputeOffloadTimeShape(t *testing.T) {
	rate := perfmodel.PiSPESamplesPerSec
	small := ComputeOffloadTime(1000, 8, rate)
	// 1000 samples: dominated by init overhead (Fig. 6 low end).
	if small.ComputeSeconds > small.InitSeconds {
		t.Error("small problem should be init-dominated")
	}
	big := ComputeOffloadTime(1e9, 8, rate)
	if big.ComputeSeconds < 10*big.InitSeconds {
		t.Error("large problem should be compute-dominated")
	}
	wantCompute := 1e9 / (rate * 8)
	if diff := big.ComputeSeconds - wantCompute; diff > 1e-9 || diff < -1e-9 {
		t.Errorf("compute = %g, want %g", big.ComputeSeconds, wantCompute)
	}
}

func TestOffloadDegenerateInputs(t *testing.T) {
	c := StreamOffloadTime(0, 8, 4096, 1e6)
	if c.TotalSeconds != perfmodel.SPUOffloadInitSeconds {
		t.Errorf("zero bytes: total = %g", c.TotalSeconds)
	}
	c = ComputeOffloadTime(-5, 8, 1e6)
	if c.TotalSeconds != perfmodel.SPUOffloadInitSeconds {
		t.Errorf("negative work: total = %g", c.TotalSeconds)
	}
	if HostComputeTime(0, 1e6) <= 0 {
		t.Error("host compute of zero work should still cost warmup")
	}
	if HostComputeTime(1e6, 1e6) < 1.0 {
		t.Error("1e6 units at 1e6/s should take at least 1s")
	}
}
