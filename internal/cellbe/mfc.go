package cellbe

import (
	"errors"
	"fmt"

	"hetmr/internal/perfmodel"
)

// MFC errors.
var (
	// ErrQueueFull is returned when the MFC already has the maximum
	// number of outstanding requests (the real hardware stalls; SPE
	// kernels must drain a tag group first).
	ErrQueueFull = errors.New("cellbe: MFC command queue full")
	// ErrRequestTooLarge is returned for DMA requests above 16 KB.
	ErrRequestTooLarge = errors.New("cellbe: DMA request exceeds 16KB")
	// ErrBadTag is returned for tags outside 0..31.
	ErrBadTag = errors.New("cellbe: DMA tag must be in 0..31")
)

// dmaDir distinguishes get (main memory -> local store) from put.
type dmaDir int

const (
	dmaGet dmaDir = iota
	dmaPut
)

type dmaRequest struct {
	dir  dmaDir
	ls   *LSBuffer
	lso  int // offset within ls
	main []byte
	n    int
	tag  int
}

// MFCStats counts DMA traffic for assertions and the timing model.
type MFCStats struct {
	Requests     int
	BytesToLS    int64
	BytesFromLS  int64
	MaxObserved  int // peak outstanding requests
	StallsOnFull int // issue attempts rejected with ErrQueueFull
}

// MFC is an SPE's Memory Flow Controller: the only path between main
// memory and the SPE's local store. Requests are issued
// asynchronously, grouped by a 5-bit tag, and execute when the kernel
// waits on the tag — mirroring how Cell kernels overlap DMA with
// compute via double buffering.
type MFC struct {
	pending []dmaRequest
	stats   MFCStats
}

// Stats returns a copy of the traffic counters.
func (m *MFC) Stats() MFCStats { return m.stats }

// Outstanding returns the number of queued, un-waited requests.
func (m *MFC) Outstanding() int { return len(m.pending) }

func (m *MFC) issue(req dmaRequest) error {
	if req.tag < 0 || req.tag > 31 {
		return ErrBadTag
	}
	if req.n > perfmodel.DMAMaxRequestBytes {
		return fmt.Errorf("%w: %d bytes", ErrRequestTooLarge, req.n)
	}
	if req.n < 0 {
		return fmt.Errorf("cellbe: negative DMA size %d", req.n)
	}
	if len(m.pending) >= perfmodel.DMAMaxInflight {
		m.stats.StallsOnFull++
		return ErrQueueFull
	}
	if req.lso < 0 || req.lso+req.n > req.ls.Size() {
		return fmt.Errorf("cellbe: DMA overruns local store buffer: off %d + %d > %d",
			req.lso, req.n, req.ls.Size())
	}
	if req.n > len(req.main) {
		return fmt.Errorf("cellbe: DMA overruns main memory region: %d > %d",
			req.n, len(req.main))
	}
	m.pending = append(m.pending, req)
	m.stats.Requests++
	if len(m.pending) > m.stats.MaxObserved {
		m.stats.MaxObserved = len(m.pending)
	}
	return nil
}

// Get issues an asynchronous DMA from main memory into the local-store
// buffer at lsOffset. n must be at most 16 KB; larger transfers must
// be split into multiple requests by the kernel (as on real hardware).
func (m *MFC) Get(dst *LSBuffer, lsOffset int, src []byte, tag int) error {
	return m.issue(dmaRequest{dir: dmaGet, ls: dst, lso: lsOffset, main: src, n: len(src), tag: tag})
}

// Put issues an asynchronous DMA from the local-store buffer at
// lsOffset out to main memory. len(dst) bytes are written.
func (m *MFC) Put(src *LSBuffer, lsOffset int, dst []byte, tag int) error {
	return m.issue(dmaRequest{dir: dmaPut, ls: src, lso: lsOffset, main: dst, n: len(dst), tag: tag})
}

// GetLarge issues as many requests as needed to transfer all of src,
// respecting the 16 KB per-request limit. It consumes one queue slot
// per 16 KB chunk and fails with ErrQueueFull if the queue cannot hold
// them all.
func (m *MFC) GetLarge(dst *LSBuffer, lsOffset int, src []byte, tag int) error {
	for off := 0; off < len(src); off += perfmodel.DMAMaxRequestBytes {
		end := off + perfmodel.DMAMaxRequestBytes
		if end > len(src) {
			end = len(src)
		}
		if err := m.Get(dst, lsOffset+off, src[off:end], tag); err != nil {
			return err
		}
	}
	return nil
}

// PutLarge is the outbound counterpart of GetLarge.
func (m *MFC) PutLarge(src *LSBuffer, lsOffset int, dst []byte, tag int) error {
	for off := 0; off < len(dst); off += perfmodel.DMAMaxRequestBytes {
		end := off + perfmodel.DMAMaxRequestBytes
		if end > len(dst) {
			end = len(dst)
		}
		if err := m.Put(src, lsOffset+off, dst[off:end], tag); err != nil {
			return err
		}
	}
	return nil
}

// WaitTag completes every outstanding request in the tag group,
// performing the actual copies, and returns the number of requests
// retired. This mirrors mfc_write_tag_mask + mfc_read_tag_status_all.
func (m *MFC) WaitTag(tag int) int {
	kept := m.pending[:0]
	retired := 0
	for _, req := range m.pending {
		if req.tag != tag {
			kept = append(kept, req)
			continue
		}
		lsBytes := req.ls.Bytes()[req.lso : req.lso+req.n]
		switch req.dir {
		case dmaGet:
			copy(lsBytes, req.main[:req.n])
			m.stats.BytesToLS += int64(req.n)
		case dmaPut:
			copy(req.main[:req.n], lsBytes)
			m.stats.BytesFromLS += int64(req.n)
		}
		retired++
	}
	// Zero dropped tail so retired requests are not retained.
	for i := len(kept); i < len(m.pending); i++ {
		m.pending[i] = dmaRequest{}
	}
	m.pending = kept
	return retired
}

// WaitAll completes every outstanding request regardless of tag.
func (m *MFC) WaitAll() int {
	total := 0
	for tag := 0; tag <= 31; tag++ {
		total += m.WaitTag(tag)
	}
	return total
}
