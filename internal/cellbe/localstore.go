// Package cellbe is a functional model of the Cell Broadband Engine
// used by the paper's QS22 blades: one PPE plus eight SPEs, each SPE
// owning a 256 KB local store it can only fill through an MFC DMA
// engine (16 outstanding requests of at most 16 KB, 16-byte aligned).
//
// The model is functional: SPE kernels are real Go code operating on
// real bytes, and the architectural constraints (local-store capacity,
// DMA request size/queue limits, alignment) are enforced, so kernels
// written against this package are structured exactly like Cell SDK
// kernels (blocked, double-buffered). Timing is modelled separately in
// timing.go for the simulated experiments.
package cellbe

import (
	"errors"
	"fmt"
	"sort"

	"hetmr/internal/perfmodel"
)

// Local store errors.
var (
	// ErrNoSpace is returned when an allocation cannot be satisfied.
	ErrNoSpace = errors.New("cellbe: local store exhausted")
	// ErrBadSize is returned for non-positive allocation sizes.
	ErrBadSize = errors.New("cellbe: allocation size must be positive")
)

// LocalStore is an SPE's 256 KB scratchpad, managed by a first-fit
// allocator that returns 16-byte aligned buffers (the Cell requires
// "every vector operation to operate with aligned data to 16-byte
// memory boundaries").
type LocalStore struct {
	buf  []byte
	free []span // sorted by offset, coalesced
}

type span struct{ off, size int }

// LSBuffer is an allocated region of a local store.
type LSBuffer struct {
	ls   *LocalStore
	off  int
	size int
}

// NewLocalStore creates a local store of the given capacity (use
// perfmodel.LocalStoreBytes for the real 256 KB).
func NewLocalStore(size int) *LocalStore {
	if size <= 0 {
		panic(fmt.Sprintf("cellbe: local store size %d", size))
	}
	return &LocalStore{
		buf:  make([]byte, size),
		free: []span{{0, size}},
	}
}

// Size returns the total capacity.
func (ls *LocalStore) Size() int { return len(ls.buf) }

// FreeBytes returns the total unallocated bytes (possibly fragmented).
func (ls *LocalStore) FreeBytes() int {
	total := 0
	for _, s := range ls.free {
		total += s.size
	}
	return total
}

// align16 rounds n up to the next multiple of the DMA alignment.
func align16(n int) int {
	const a = perfmodel.DMAAlignment
	return (n + a - 1) &^ (a - 1)
}

// Alloc reserves a 16-byte aligned buffer of at least size bytes.
func (ls *LocalStore) Alloc(size int) (*LSBuffer, error) {
	if size <= 0 {
		return nil, ErrBadSize
	}
	need := align16(size)
	for i, s := range ls.free {
		if s.size >= need {
			buf := &LSBuffer{ls: ls, off: s.off, size: need}
			if s.size == need {
				ls.free = append(ls.free[:i], ls.free[i+1:]...)
			} else {
				ls.free[i] = span{s.off + need, s.size - need}
			}
			return buf, nil
		}
	}
	return nil, fmt.Errorf("%w: need %d, largest free span %d of %d total",
		ErrNoSpace, need, ls.largestFree(), ls.FreeBytes())
}

func (ls *LocalStore) largestFree() int {
	max := 0
	for _, s := range ls.free {
		if s.size > max {
			max = s.size
		}
	}
	return max
}

// Free returns b's bytes to the allocator, coalescing with adjacent
// free spans. Freeing a buffer twice panics: that is a kernel bug.
func (ls *LocalStore) Free(b *LSBuffer) {
	if b == nil || b.ls != ls {
		panic("cellbe: freeing buffer not owned by this local store")
	}
	if b.off < 0 {
		panic("cellbe: double free of local store buffer")
	}
	s := span{b.off, b.size}
	b.off = -1 // poison
	i := sort.Search(len(ls.free), func(i int) bool { return ls.free[i].off > s.off })
	ls.free = append(ls.free, span{})
	copy(ls.free[i+1:], ls.free[i:])
	ls.free[i] = s
	// Coalesce with neighbours.
	if i+1 < len(ls.free) && ls.free[i].off+ls.free[i].size == ls.free[i+1].off {
		ls.free[i].size += ls.free[i+1].size
		ls.free = append(ls.free[:i+1], ls.free[i+2:]...)
	}
	if i > 0 && ls.free[i-1].off+ls.free[i-1].size == ls.free[i].off {
		ls.free[i-1].size += ls.free[i].size
		ls.free = append(ls.free[:i], ls.free[i+1:]...)
	}
}

// Bytes returns the buffer's backing storage (length = allocated,
// aligned size).
func (b *LSBuffer) Bytes() []byte {
	if b.off < 0 {
		panic("cellbe: use of freed local store buffer")
	}
	return b.ls.buf[b.off : b.off+b.size : b.off+b.size]
}

// Size returns the allocated (aligned) size.
func (b *LSBuffer) Size() int { return b.size }

// Offset returns the buffer's local-store address, always 16-byte
// aligned.
func (b *LSBuffer) Offset() int { return b.off }
