package cellbe

import (
	"fmt"
	"sync"

	"hetmr/internal/perfmodel"
)

// SPE is one Synergistic Processing Element: an ID, a private local
// store, an MFC, and the PPE<->SPE mailboxes. Kernels run on SPEs via
// Chip.RunOnSPEs and may only touch main memory through the MFC.
type SPE struct {
	ID  int
	LS  *LocalStore
	MFC *MFC
	// Inbound is the 4-entry PPE->SPU mailbox (PPE writes, kernel
	// reads); Outbound is the 1-entry SPU->PPE mailbox.
	Inbound  *Mailbox
	Outbound *Mailbox
	chipN    int // chip index, for diagnostics
}

// String identifies the SPE for diagnostics.
func (s *SPE) String() string { return fmt.Sprintf("cell%d/spe%d", s.chipN, s.ID) }

// Kernel is code executed on one SPE. Kernels receive their SPE (for
// local store and DMA) and a worker index within the offload session.
type Kernel func(spe *SPE, worker int) error

// Chip is one Cell BE processor: a PPE (implicit: the caller's
// goroutine plays the PPE role) plus eight SPEs.
type Chip struct {
	Index int
	SPEs  []*SPE

	// mu serializes offload sessions: SPE contexts are exclusively
	// owned while a kernel group runs, so concurrent RunOnSPEs calls
	// from different host threads queue, as on real hardware.
	mu sync.Mutex
}

// NewChip builds a Cell BE chip model with the architectural SPE count
// and local store size.
func NewChip(index int) *Chip {
	c := &Chip{Index: index}
	for i := 0; i < perfmodel.SPEsPerCell; i++ {
		c.SPEs = append(c.SPEs, &SPE{
			ID:       i,
			LS:       NewLocalStore(perfmodel.LocalStoreBytes),
			MFC:      &MFC{},
			Inbound:  newMailbox(InboundMailboxDepth),
			Outbound: newMailbox(OutboundMailboxDepth),
			chipN:    index,
		})
	}
	return c
}

// RunOnSPEs executes kernel concurrently on n SPEs (n<=8) and waits
// for all of them, returning the first error. This is the live
// execution path: each SPE runs on its own goroutine, like spe_context
// threads launched from the PPE.
func (c *Chip) RunOnSPEs(n int, kernel Kernel) error {
	if n <= 0 || n > len(c.SPEs) {
		return fmt.Errorf("cellbe: cannot run on %d SPEs (chip has %d)", n, len(c.SPEs))
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = kernel(c.SPEs[i], i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// TotalDMABytes sums DMA traffic across all SPEs (both directions).
func (c *Chip) TotalDMABytes() int64 {
	var total int64
	for _, s := range c.SPEs {
		st := s.MFC.Stats()
		total += st.BytesToLS + st.BytesFromLS
	}
	return total
}

// Blade is a QS22 blade: two Cell BE processors sharing main memory,
// as in the paper's testbed ("each one equipped with 2x 3.2Ghz Cell
// processors").
type Blade struct {
	Chips []*Chip
}

// NewBlade builds a QS22-like blade with two chips.
func NewBlade() *Blade {
	return &Blade{Chips: []*Chip{NewChip(0), NewChip(1)}}
}
