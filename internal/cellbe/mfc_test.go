package cellbe

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"

	"hetmr/internal/perfmodel"
)

func TestMFCGetPutRoundTrip(t *testing.T) {
	ls := NewLocalStore(perfmodel.LocalStoreBytes)
	mfc := &MFC{}
	buf, _ := ls.Alloc(4096)
	src := make([]byte, 4096)
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := mfc.Get(buf, 0, src, 1); err != nil {
		t.Fatal(err)
	}
	// Before WaitTag the copy has not landed.
	if bytes.Equal(buf.Bytes()[:64], src[:64]) {
		t.Error("DMA completed before WaitTag (should be asynchronous)")
	}
	if n := mfc.WaitTag(1); n != 1 {
		t.Errorf("retired %d requests, want 1", n)
	}
	if !bytes.Equal(buf.Bytes(), src) {
		t.Fatal("Get did not copy data")
	}
	dst := make([]byte, 4096)
	if err := mfc.Put(buf, 0, dst, 2); err != nil {
		t.Fatal(err)
	}
	mfc.WaitTag(2)
	if !bytes.Equal(dst, src) {
		t.Fatal("Put did not copy data")
	}
	st := mfc.Stats()
	if st.BytesToLS != 4096 || st.BytesFromLS != 4096 || st.Requests != 2 {
		t.Errorf("stats = %+v", st)
	}
}

func TestMFCRequestSizeLimit(t *testing.T) {
	ls := NewLocalStore(perfmodel.LocalStoreBytes)
	mfc := &MFC{}
	buf, _ := ls.Alloc(32 * 1024)
	big := make([]byte, perfmodel.DMAMaxRequestBytes+1)
	if err := mfc.Get(buf, 0, big, 0); !errors.Is(err, ErrRequestTooLarge) {
		t.Errorf("expected ErrRequestTooLarge, got %v", err)
	}
	exact := make([]byte, perfmodel.DMAMaxRequestBytes)
	if err := mfc.Get(buf, 0, exact, 0); err != nil {
		t.Errorf("16KB request should succeed: %v", err)
	}
}

func TestMFCQueueDepthLimit(t *testing.T) {
	ls := NewLocalStore(perfmodel.LocalStoreBytes)
	mfc := &MFC{}
	buf, _ := ls.Alloc(perfmodel.DMAMaxInflight*16 + 16)
	chunk := make([]byte, 16)
	for i := 0; i < perfmodel.DMAMaxInflight; i++ {
		if err := mfc.Get(buf, i*16, chunk, 0); err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
	}
	if err := mfc.Get(buf, perfmodel.DMAMaxInflight*16, chunk, 0); !errors.Is(err, ErrQueueFull) {
		t.Errorf("17th request: expected ErrQueueFull, got %v", err)
	}
	if mfc.Stats().StallsOnFull != 1 {
		t.Errorf("stalls = %d, want 1", mfc.Stats().StallsOnFull)
	}
	mfc.WaitTag(0)
	if err := mfc.Get(buf, 0, chunk, 0); err != nil {
		t.Errorf("request after drain: %v", err)
	}
}

func TestMFCTagGroups(t *testing.T) {
	ls := NewLocalStore(perfmodel.LocalStoreBytes)
	mfc := &MFC{}
	buf, _ := ls.Alloc(64)
	a := []byte{1, 2, 3, 4}
	b := []byte{5, 6, 7, 8}
	mfc.Get(buf, 0, a, 1)
	mfc.Get(buf, 16, b, 2)
	if n := mfc.WaitTag(2); n != 1 {
		t.Errorf("WaitTag(2) retired %d, want 1", n)
	}
	if !bytes.Equal(buf.Bytes()[16:20], b) {
		t.Error("tag 2 data not copied")
	}
	if bytes.Equal(buf.Bytes()[0:4], a) {
		t.Error("tag 1 data copied by WaitTag(2)")
	}
	if mfc.Outstanding() != 1 {
		t.Errorf("outstanding = %d, want 1", mfc.Outstanding())
	}
	if n := mfc.WaitAll(); n != 1 {
		t.Errorf("WaitAll retired %d, want 1", n)
	}
	if !bytes.Equal(buf.Bytes()[0:4], a) {
		t.Error("tag 1 data missing after WaitAll")
	}
}

func TestMFCBadTag(t *testing.T) {
	ls := NewLocalStore(1024)
	mfc := &MFC{}
	buf, _ := ls.Alloc(16)
	for _, tag := range []int{-1, 32, 100} {
		if err := mfc.Get(buf, 0, []byte{1}, tag); !errors.Is(err, ErrBadTag) {
			t.Errorf("tag %d: expected ErrBadTag, got %v", tag, err)
		}
	}
}

func TestMFCBufferOverrun(t *testing.T) {
	ls := NewLocalStore(1024)
	mfc := &MFC{}
	buf, _ := ls.Alloc(16)
	if err := mfc.Get(buf, 8, make([]byte, 16), 0); err == nil {
		t.Error("overrun of LS buffer should fail")
	}
	if err := mfc.Get(buf, -1, make([]byte, 4), 0); err == nil {
		t.Error("negative LS offset should fail")
	}
}

func TestMFCGetLargeSplits(t *testing.T) {
	ls := NewLocalStore(perfmodel.LocalStoreBytes)
	mfc := &MFC{}
	const size = 40 * 1024 // needs 3 requests
	buf, _ := ls.Alloc(size)
	src := make([]byte, size)
	for i := range src {
		src[i] = byte(i)
	}
	if err := mfc.GetLarge(buf, 0, src, 3); err != nil {
		t.Fatal(err)
	}
	if mfc.Outstanding() != 3 {
		t.Errorf("outstanding = %d, want 3", mfc.Outstanding())
	}
	mfc.WaitTag(3)
	if !bytes.Equal(buf.Bytes()[:size], src) {
		t.Fatal("GetLarge corrupted data")
	}
	dst := make([]byte, size)
	if err := mfc.PutLarge(buf, 0, dst, 4); err != nil {
		t.Fatal(err)
	}
	mfc.WaitTag(4)
	if !bytes.Equal(dst, src) {
		t.Fatal("PutLarge corrupted data")
	}
}

// Property: Get+WaitTag then Put+WaitTag is the identity for any
// payload up to 16KB.
func TestMFCRoundTripProperty(t *testing.T) {
	ls := NewLocalStore(perfmodel.LocalStoreBytes)
	f := func(data []byte) bool {
		if len(data) == 0 {
			return true
		}
		if len(data) > perfmodel.DMAMaxRequestBytes {
			data = data[:perfmodel.DMAMaxRequestBytes]
		}
		mfc := &MFC{}
		buf, err := ls.Alloc(len(data))
		if err != nil {
			return false
		}
		defer ls.Free(buf)
		if err := mfc.Get(buf, 0, data, 0); err != nil {
			return false
		}
		mfc.WaitTag(0)
		out := make([]byte, len(data))
		if err := mfc.Put(buf, 0, out, 0); err != nil {
			return false
		}
		mfc.WaitTag(0)
		return bytes.Equal(out, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
