package cellbe

import "hetmr/internal/perfmodel"

// This file contains the analytic timing model for SPE offload
// sessions, shared by the single-node "raw" experiments (Fig. 2 and
// Fig. 6) and by the discrete-event cluster simulation (the Cell
// mapper's compute cost). The model is the standard double-buffered
// offload pipeline:
//
//	t = init + pipelineFill + max(compute, dma) + perBlockIssue
//
// where compute is size/(perSPERate*nSPEs) and the DMA term is almost
// never dominant on this workload mix (25.6 GB/s per SPE).

// OffloadCost describes a modelled SPE offload session.
type OffloadCost struct {
	InitSeconds    float64 // SPE context setup for the session
	ComputeSeconds float64 // aggregate kernel time across SPEs
	DMASeconds     float64 // serialized DMA term (overlapped with compute)
	IssueSeconds   float64 // per-request MFC issue overhead
	TotalSeconds   float64 // modelled wall time of the session
}

// StreamOffloadTime models processing `bytes` of data streamed through
// nSPEs in blockBytes chunks with per-SPE throughput perSPERate
// (bytes/s), double buffered. It returns the full cost breakdown.
func StreamOffloadTime(bytes int64, nSPEs int, blockBytes int, perSPERate float64) OffloadCost {
	if bytes <= 0 || nSPEs <= 0 || blockBytes <= 0 || perSPERate <= 0 {
		return OffloadCost{InitSeconds: perfmodel.SPUOffloadInitSeconds,
			TotalSeconds: perfmodel.SPUOffloadInitSeconds}
	}
	nBlocks := (bytes + int64(blockBytes) - 1) / int64(blockBytes)
	// Each block is DMA'd in and out once; requests are capped at
	// 16 KB so a block may need several.
	reqPerBlock := (blockBytes + perfmodel.DMAMaxRequestBytes - 1) / perfmodel.DMAMaxRequestBytes
	issue := float64(2*nBlocks*int64(reqPerBlock)) * perfmodel.DMASetupSeconds / float64(nSPEs)
	compute := float64(bytes) / (perSPERate * float64(nSPEs))
	dma := 2 * float64(bytes) / (perfmodel.DMABytesPerSecond * float64(nSPEs))
	// Pipeline fill: first block in before compute starts.
	fill := float64(blockBytes) / perfmodel.DMABytesPerSecond
	overlap := compute
	if dma > overlap {
		overlap = dma
	}
	total := perfmodel.SPUOffloadInitSeconds + fill + overlap + issue
	return OffloadCost{
		InitSeconds:    perfmodel.SPUOffloadInitSeconds,
		ComputeSeconds: compute,
		DMASeconds:     dma,
		IssueSeconds:   issue,
		TotalSeconds:   total,
	}
}

// ComputeOffloadTime models a pure-compute offload (no data movement,
// e.g. the Monte Carlo Pi kernel) of `work` units at perSPERate units
// per second per SPE across nSPEs.
func ComputeOffloadTime(work int64, nSPEs int, perSPERate float64) OffloadCost {
	if work <= 0 || nSPEs <= 0 || perSPERate <= 0 {
		return OffloadCost{InitSeconds: perfmodel.SPUOffloadInitSeconds,
			TotalSeconds: perfmodel.SPUOffloadInitSeconds}
	}
	compute := float64(work) / (perSPERate * float64(nSPEs))
	total := perfmodel.SPUOffloadInitSeconds + compute
	return OffloadCost{
		InitSeconds:    perfmodel.SPUOffloadInitSeconds,
		ComputeSeconds: compute,
		TotalSeconds:   total,
	}
}

// HostComputeTime models a scalar host-CPU kernel (the "Java" variants
// in the paper) processing `work` units at `rate` units/second, with a
// small JIT/startup overhead.
func HostComputeTime(work int64, rate float64) float64 {
	const jvmWarmup = 1e-3
	if work <= 0 || rate <= 0 {
		return jvmWarmup
	}
	return jvmWarmup + float64(work)/rate
}
