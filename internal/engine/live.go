package engine

import (
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"

	"hetmr/internal/core"
	"hetmr/internal/kernels"
	"hetmr/internal/sched"
	"hetmr/internal/spurt"
)

// liveRunner executes jobs on the in-process two-level cluster
// (internal/core): real bytes in the in-memory DFS, goroutine-backed
// nodes, real kernels, SPE offload through the functional Cell model.
type liveRunner struct {
	cfg  Config
	clus *core.LiveCluster

	// mu guards seq: two concurrent Runs colliding on one DFS staging
	// path would corrupt each other's input (same pattern as the net
	// runner).
	mu  sync.Mutex
	seq int
}

func init() {
	// The fairness knobs below only exist on the net backend's job
	// service; the in-process cluster runs one caller's job at a time.
	//hetlint:configdrop-ok live Job.Tenant tenancy is the net job service's concept; Quotas are already rejected above the same line
	//
	// JobTimeout bounds the net backend's remote wait; a live Run is a
	// synchronous in-process call with nothing to abandon.
	//hetlint:configdrop-ok live Config.JobTimeout live runs synchronously in-process; the knob bounds the net backend's remote wait
	//hetlint:configdrop-ok live Config.RangePartition the in-process sort already merges fully in key order; range routing reshapes the net shuffle plane only

	Register("live", func(cfg Config) (Runner, error) {
		if cfg.Mapper == "empty" {
			return nil, fmt.Errorf("%w: mapper \"empty\" models pure runtime overhead and only exists on the sim backend", ErrUnsupported)
		}
		if cfg.Timeline {
			return nil, fmt.Errorf("%w: Timeline is rendered from the simulated JobTracker's task log and only exists on the sim backend", ErrUnsupported)
		}
		if len(cfg.Quotas) > 0 {
			return nil, fmt.Errorf("%w: per-tenant quotas only exist on the net backend's job service", ErrUnsupported)
		}
		opts := []core.LiveOption{
			core.WithBlockSize(cfg.BlockSize),
			core.WithMappersPerNode(cfg.MappersPerNode),
			core.WithAcceleratedNodes(cfg.acceleratedNodes(cfg.Workers)),
			core.WithScheduling(sched.Options{
				Speculative: cfg.Speculative,
				MaxAttempts: cfg.MaxAttempts,
			}),
			core.WithSpeedHints(cfg.SpeedHints),
			core.WithTaskDelays(cfg.FaultDelays),
			core.WithRacks(cfg.Racks),
		}
		if cfg.SpillMemBytes != 0 {
			opts = append(opts, core.WithSpill(cfg.SpillDir, cfg.spillMem(), cfg.spillCodec()))
		}
		clus, err := core.NewLiveCluster(cfg.Workers, opts...)
		if err != nil {
			return nil, err
		}
		return &liveRunner{cfg: cfg, clus: clus}, nil
	})
}

// Backend implements Runner.
func (r *liveRunner) Backend() string { return "live" }

// Close implements Runner: releases the DFS block store's spill files.
func (r *liveRunner) Close() error { return r.clus.Close() }

// Cluster exposes the underlying live cluster for callers that need
// backend-specific detail (DMA accounting, direct SPE runs).
func (r *liveRunner) Cluster() *core.LiveCluster { return r.clus }

// stageInput streams the job's dataset into the DFS under a fresh
// path — one transfer buffer plus one block resident, never the whole
// dataset.
func (r *liveRunner) stageInput(job *Job) (string, error) {
	r.mu.Lock()
	r.seq++
	name := fmt.Sprintf("/engine/%s-%d", job.title(), r.seq)
	r.mu.Unlock()
	if _, err := r.clus.FS.CreateFrom(name, "", job.inputReader()); err != nil {
		return "", err
	}
	return name, nil
}

// deliverOutput resolves a byte-output job's result: streamed from
// the DFS into the job's Sink (the staged files are deleted so
// repeated streaming runs do not accumulate state), or materialized
// into res.Bytes as before.
func (r *liveRunner) deliverOutput(job *Job, res *Result, input, output string) error {
	if job.Sink == nil {
		var err error
		res.Bytes, err = r.clus.FS.ReadFile(output)
		return err
	}
	rd, err := r.clus.FS.Open(output, "")
	if err != nil {
		return err
	}
	n, err := io.Copy(job.Sink, rd)
	if err != nil {
		return err
	}
	res.OutputBytes = n
	if err := r.clus.FS.Delete(input); err != nil {
		return err
	}
	return r.clus.FS.Delete(output)
}

// Run implements Runner.
func (r *liveRunner) Run(job *Job) (*Result, error) {
	if err := r.cfg.validateJob(job); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Backend: r.Backend()}
	switch job.Kind {
	case Wordcount:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		sum := func(_ string, values []string) (string, error) {
			total := int64(0)
			for _, v := range values {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return "", err
				}
				total += n
			}
			return strconv.FormatInt(total, 10), nil
		}
		pairs, err := r.clus.RunKV(&core.KVJob{
			Name:  job.title(),
			Input: input,
			Map: func(record []byte, _ int64, emit func(k, v string)) error {
				kernels.Words(record, func(w []byte) { emit(string(w), "1") })
				return nil
			},
			Reduce:   sum,
			Combine:  sum,
			Reducers: r.cfg.Reducers,
		})
		if err != nil {
			return nil, err
		}
		res.Pairs = make([]KV, len(pairs))
		for i, kv := range pairs {
			res.Pairs[i] = KV{Key: kv.Key, Value: kv.Value}
		}
	case Sort:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		output := input + ".sorted"
		if err := r.clus.RunSort(input, output); err != nil {
			return nil, err
		}
		if err := r.deliverOutput(job, res, input, output); err != nil {
			return nil, err
		}
	case Encrypt:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		cipher, err := kernels.NewCipher(job.Key)
		if err != nil {
			return nil, err
		}
		output := input + ".aes"
		if _, err := r.clus.RunStream(&core.StreamJob{
			Name:   job.title(),
			Input:  input,
			Output: output,
			Kernel: spurt.KernelFunc{
				KernelName: "aes-ctr",
				Fn:         kernels.CTRBlockFuncFast(cipher, job.iv()),
			},
			Accelerated: r.cfg.Mapper != "java",
		}); err != nil {
			return nil, err
		}
		if err := r.deliverOutput(job, res, input, output); err != nil {
			return nil, err
		}
	case Pi:
		tasks := piTasks(job.Samples, normalizeTasks(job.Tasks, r.cfg.Workers), job.Seed)
		inside, total, err := r.clus.RunPiTasks(tasks)
		if err != nil {
			return nil, err
		}
		res.Inside, res.Total = inside, total
		res.Pi = kernels.EstimatePi(inside, total)
	default:
		return nil, fmt.Errorf("%w: %s on live", ErrUnsupported, job.Kind)
	}
	if stats := r.clus.LastStats(); stats != nil {
		res.TaskCounts = stats.Counts()
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
