package engine

import (
	"fmt"
	"strconv"
	"time"

	"hetmr/internal/core"
	"hetmr/internal/kernels"
	"hetmr/internal/sched"
	"hetmr/internal/spurt"
)

// liveRunner executes jobs on the in-process two-level cluster
// (internal/core): real bytes in the in-memory DFS, goroutine-backed
// nodes, real kernels, SPE offload through the functional Cell model.
type liveRunner struct {
	cfg  Config
	clus *core.LiveCluster
	seq  int
}

func init() {
	Register("live", func(cfg Config) (Runner, error) {
		if cfg.Mapper == "empty" {
			return nil, fmt.Errorf("%w: mapper \"empty\" models pure runtime overhead and only exists on the sim backend", ErrUnsupported)
		}
		clus, err := core.NewLiveCluster(cfg.Workers,
			core.WithBlockSize(cfg.BlockSize),
			core.WithMappersPerNode(cfg.MappersPerNode),
			core.WithAcceleratedNodes(cfg.acceleratedNodes(cfg.Workers)),
			core.WithScheduling(sched.Options{
				Speculative: cfg.Speculative,
				MaxAttempts: cfg.MaxAttempts,
			}),
			core.WithSpeedHints(cfg.SpeedHints),
			core.WithTaskDelays(cfg.FaultDelays))
		if err != nil {
			return nil, err
		}
		return &liveRunner{cfg: cfg, clus: clus}, nil
	})
}

// Backend implements Runner.
func (r *liveRunner) Backend() string { return "live" }

// Close implements Runner. The live cluster is garbage-collected
// state; nothing to tear down.
func (r *liveRunner) Close() error { return nil }

// Cluster exposes the underlying live cluster for callers that need
// backend-specific detail (DMA accounting, direct SPE runs).
func (r *liveRunner) Cluster() *core.LiveCluster { return r.clus }

// stageInput writes the job's dataset into the DFS under a fresh path.
func (r *liveRunner) stageInput(job *Job) (string, error) {
	data := job.Input
	if len(data) == 0 {
		data = syntheticInput(job.InputBytes)
	}
	r.seq++
	name := fmt.Sprintf("/engine/%s-%d", job.title(), r.seq)
	if err := r.clus.FS.WriteFile(name, data, ""); err != nil {
		return "", err
	}
	return name, nil
}

// Run implements Runner.
func (r *liveRunner) Run(job *Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Backend: r.Backend()}
	switch job.Kind {
	case Wordcount:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		sum := func(_ string, values []string) (string, error) {
			total := int64(0)
			for _, v := range values {
				n, err := strconv.ParseInt(v, 10, 64)
				if err != nil {
					return "", err
				}
				total += n
			}
			return strconv.FormatInt(total, 10), nil
		}
		pairs, err := r.clus.RunKV(&core.KVJob{
			Name:  job.title(),
			Input: input,
			Map: func(record []byte, _ int64, emit func(k, v string)) error {
				kernels.Words(record, func(w []byte) { emit(string(w), "1") })
				return nil
			},
			Reduce:   sum,
			Combine:  sum,
			Reducers: r.cfg.Reducers,
		})
		if err != nil {
			return nil, err
		}
		res.Pairs = make([]KV, len(pairs))
		for i, kv := range pairs {
			res.Pairs[i] = KV{Key: kv.Key, Value: kv.Value}
		}
	case Sort:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		output := input + ".sorted"
		if err := r.clus.RunSort(input, output); err != nil {
			return nil, err
		}
		if res.Bytes, err = r.clus.FS.ReadFile(output); err != nil {
			return nil, err
		}
	case Encrypt:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		cipher, err := kernels.NewCipher(job.Key)
		if err != nil {
			return nil, err
		}
		output := input + ".aes"
		if _, err := r.clus.RunStream(&core.StreamJob{
			Name:   job.title(),
			Input:  input,
			Output: output,
			Kernel: spurt.KernelFunc{
				KernelName: "aes-ctr",
				Fn:         kernels.CTRBlockFunc(cipher, job.iv()),
			},
			Accelerated: r.cfg.Mapper != "java",
		}); err != nil {
			return nil, err
		}
		if res.Bytes, err = r.clus.FS.ReadFile(output); err != nil {
			return nil, err
		}
	case Pi:
		tasks := piTasks(job.Samples, normalizeTasks(job.Tasks, r.cfg.Workers), job.Seed)
		inside, total, err := r.clus.RunPiTasks(tasks)
		if err != nil {
			return nil, err
		}
		res.Inside, res.Total = inside, total
		res.Pi = kernels.EstimatePi(inside, total)
	default:
		return nil, fmt.Errorf("%w: %s on live", ErrUnsupported, job.Kind)
	}
	if stats := r.clus.LastStats(); stats != nil {
		res.TaskCounts = stats.Counts()
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
