package engine

import (
	"fmt"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/netmr"
	"hetmr/internal/rpcnet"
)

// netRunner executes jobs on the socket-backed distributed runtime
// (internal/netmr): NameNode, DataNodes, JobTracker and TaskTrackers
// as TCP daemons on loopback, block data crossing the network stack.
type netRunner struct {
	cfg  Config
	clus *netmr.Cluster
	seq  int
}

// netJobTimeout bounds how long one submitted job may run; loopback
// jobs finish in milliseconds-to-seconds, so this is generous.
const netJobTimeout = 2 * time.Minute

func init() {
	Register("net", func(cfg Config) (Runner, error) {
		clus, err := netmr.StartCluster(cfg.Workers, cfg.MappersPerNode,
			cfg.BlockSize, 20*time.Millisecond)
		if err != nil {
			return nil, err
		}
		return &netRunner{cfg: cfg, clus: clus}, nil
	})
}

// Backend implements Runner.
func (r *netRunner) Backend() string { return "net" }

// Close implements Runner: stops every daemon.
func (r *netRunner) Close() error {
	r.clus.Shutdown()
	return nil
}

// Cluster exposes the running deployment (daemon addresses etc.) for
// callers that need backend-specific detail.
func (r *netRunner) Cluster() *netmr.Cluster { return r.clus }

// stageInput stores the job's dataset in the distributed FS.
func (r *netRunner) stageInput(job *Job) (string, error) {
	data := job.Input
	if len(data) == 0 {
		data = syntheticInput(job.InputBytes)
	}
	r.seq++
	name := fmt.Sprintf("/engine/%s-%d", job.title(), r.seq)
	if err := r.clus.Client.WriteFile(name, data, ""); err != nil {
		return "", err
	}
	return name, nil
}

// Run implements Runner.
func (r *netRunner) Run(job *Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Backend: r.Backend()}
	switch job.Kind {
	case Wordcount:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		raw, err := r.clus.Client.SubmitAndWait(netmr.JobSpec{
			Name: job.title(), Kernel: "wordcount", Input: input,
		}, netJobTimeout)
		if err != nil {
			return nil, err
		}
		var counts map[string]int64
		if err := rpcnet.Unmarshal(raw, &counts); err != nil {
			return nil, err
		}
		res.Pairs = pairsFromCounts(counts)
	case Sort:
		if r.cfg.BlockSize%kernels.SortRecordBytes != 0 {
			return nil, fmt.Errorf("engine: net sort needs a block size divisible by %d, got %d",
				kernels.SortRecordBytes, r.cfg.BlockSize)
		}
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		raw, err := r.clus.Client.SubmitAndWait(netmr.JobSpec{
			Name: job.title(), Kernel: "sort", Input: input,
		}, netJobTimeout)
		if err != nil {
			return nil, err
		}
		if err := rpcnet.Unmarshal(raw, &res.Bytes); err != nil {
			return nil, err
		}
	case Encrypt:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		args, err := rpcnet.Marshal(netmr.AESArgs{
			Key: job.Key, IV: job.iv(), BlockBytes: r.cfg.BlockSize,
		})
		if err != nil {
			return nil, err
		}
		raw, err := r.clus.Client.SubmitAndWait(netmr.JobSpec{
			Name: job.title(), Kernel: "aes-ctr", Input: input, Args: args,
		}, netJobTimeout)
		if err != nil {
			return nil, err
		}
		if err := rpcnet.Unmarshal(raw, &res.Bytes); err != nil {
			return nil, err
		}
	case Pi:
		seed := job.Seed
		if seed == 0 {
			seed = DefaultSeed
		}
		raw, err := r.clus.Client.SubmitAndWait(netmr.JobSpec{
			Name:     job.title(),
			Kernel:   "pi",
			Samples:  job.Samples,
			NumTasks: normalizeTasks(job.Tasks, r.cfg.Workers),
			Seed:     seed,
		}, netJobTimeout)
		if err != nil {
			return nil, err
		}
		var pi netmr.PiResult
		if err := rpcnet.Unmarshal(raw, &pi); err != nil {
			return nil, err
		}
		res.Pi, res.Inside, res.Total = pi.Pi, pi.Inside, pi.Total
	default:
		return nil, fmt.Errorf("%w: %s on net", ErrUnsupported, job.Kind)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
