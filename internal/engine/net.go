package engine

import (
	"fmt"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/netmr"
	"hetmr/internal/rpcnet"
)

// netRunner executes jobs on the socket-backed distributed runtime
// (internal/netmr): NameNode, DataNodes, JobTracker and TaskTrackers
// as TCP daemons on loopback, block data crossing the network stack.
type netRunner struct {
	cfg  Config
	clus *netmr.Cluster
	seq  int
}

// netJobTimeout bounds how long one submitted job may run; loopback
// jobs finish in milliseconds-to-seconds, so this is generous.
const netJobTimeout = 2 * time.Minute

func init() {
	Register("net", func(cfg Config) (Runner, error) {
		clus, err := netmr.StartCluster(cfg.Workers, cfg.MappersPerNode,
			cfg.BlockSize, 20*time.Millisecond,
			netmr.WithSpeculation(cfg.Speculative),
			netmr.WithMaxAttempts(cfg.MaxAttempts),
			netmr.WithTrackerDelays(cfg.FaultDelays))
		if err != nil {
			return nil, err
		}
		return &netRunner{cfg: cfg, clus: clus}, nil
	})
}

// Backend implements Runner.
func (r *netRunner) Backend() string { return "net" }

// Close implements Runner: stops every daemon.
func (r *netRunner) Close() error {
	r.clus.Shutdown()
	return nil
}

// Cluster exposes the running deployment (daemon addresses etc.) for
// callers that need backend-specific detail.
func (r *netRunner) Cluster() *netmr.Cluster { return r.clus }

// reducers resolves the distributed-shuffle reduce-task count for data
// jobs whose kernel supports partitioned output: the configured
// partition count, defaulting to one reduce task per worker.
func (r *netRunner) reducers() int {
	if r.cfg.Reducers > 0 {
		return r.cfg.Reducers
	}
	if r.cfg.Workers > 0 {
		return r.cfg.Workers
	}
	return 1
}

// submitAndWait runs one job to completion and fetches the scheduler's
// per-tracker completion counts alongside the reduced result.
func (r *netRunner) submitAndWait(spec netmr.JobSpec) (raw []byte, counts map[string]int, err error) {
	id, err := r.clus.Client.Submit(spec)
	if err != nil {
		return nil, nil, err
	}
	raw, err = r.clus.Client.Wait(id, netJobTimeout)
	if err != nil {
		return nil, nil, err
	}
	st, err := r.clus.Client.Status(id)
	if err != nil {
		return nil, nil, err
	}
	return raw, st.Counts, nil
}

// stageInput stores the job's dataset in the distributed FS.
func (r *netRunner) stageInput(job *Job) (string, error) {
	data := job.Input
	if len(data) == 0 {
		data = syntheticInput(job.InputBytes)
	}
	r.seq++
	name := fmt.Sprintf("/engine/%s-%d", job.title(), r.seq)
	if err := r.clus.Client.WriteFile(name, data, ""); err != nil {
		return "", err
	}
	return name, nil
}

// Run implements Runner.
func (r *netRunner) Run(job *Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Backend: r.Backend()}
	switch job.Kind {
	case Wordcount:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		raw, taskCounts, err := r.submitAndWait(netmr.JobSpec{
			Name: job.title(), Kernel: "wordcount", Input: input,
			NumReducers: r.reducers(),
		})
		if err != nil {
			return nil, err
		}
		var counts map[string]int64
		if err := rpcnet.Unmarshal(raw, &counts); err != nil {
			return nil, err
		}
		res.Pairs = pairsFromCounts(counts)
		res.TaskCounts = taskCounts
	case Sort:
		if r.cfg.BlockSize%kernels.SortRecordBytes != 0 {
			return nil, fmt.Errorf("engine: net sort needs a block size divisible by %d, got %d",
				kernels.SortRecordBytes, r.cfg.BlockSize)
		}
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		raw, taskCounts, err := r.submitAndWait(netmr.JobSpec{
			Name: job.title(), Kernel: "sort", Input: input,
			NumReducers: r.reducers(),
		})
		if err != nil {
			return nil, err
		}
		if err := rpcnet.Unmarshal(raw, &res.Bytes); err != nil {
			return nil, err
		}
		res.TaskCounts = taskCounts
	case Encrypt:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		args, err := rpcnet.Marshal(netmr.AESArgs{
			Key: job.Key, IV: job.iv(), BlockBytes: r.cfg.BlockSize,
		})
		if err != nil {
			return nil, err
		}
		raw, taskCounts, err := r.submitAndWait(netmr.JobSpec{
			Name: job.title(), Kernel: "aes-ctr", Input: input, Args: args,
		})
		if err != nil {
			return nil, err
		}
		if err := rpcnet.Unmarshal(raw, &res.Bytes); err != nil {
			return nil, err
		}
		res.TaskCounts = taskCounts
	case Pi:
		seed := job.Seed
		if seed == 0 {
			seed = DefaultSeed
		}
		raw, taskCounts, err := r.submitAndWait(netmr.JobSpec{
			Name:     job.title(),
			Kernel:   "pi",
			Samples:  job.Samples,
			NumTasks: normalizeTasks(job.Tasks, r.cfg.Workers),
			Seed:     seed,
		})
		if err != nil {
			return nil, err
		}
		var pi netmr.PiResult
		if err := rpcnet.Unmarshal(raw, &pi); err != nil {
			return nil, err
		}
		res.Pi, res.Inside, res.Total = pi.Pi, pi.Inside, pi.Total
		res.TaskCounts = taskCounts
	default:
		return nil, fmt.Errorf("%w: %s on net", ErrUnsupported, job.Kind)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
