package engine

import (
	"bytes"
	"fmt"
	"io"
	"sync"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/netmr"
	"hetmr/internal/rpcnet"
)

// netRunner executes jobs on the socket-backed distributed runtime
// (internal/netmr): NameNode, DataNodes, JobTracker and TaskTrackers
// as TCP daemons on loopback, block data crossing the network stack.
// An AccelFraction of the trackers carry a per-node Cell accelerator;
// cell-mapper jobs offload their pi, aes-ctr and wordcount map tasks
// to it with a bit-identical host fallback on the plain trackers.
type netRunner struct {
	cfg  Config
	clus *netmr.Cluster

	// mu guards seq: Run may be called concurrently, and two jobs
	// colliding on one DFS staging path would corrupt each other's
	// input.
	mu  sync.Mutex
	seq int
}

func init() {
	Register("net", func(cfg Config) (Runner, error) {
		if cfg.Mapper == "empty" {
			return nil, fmt.Errorf("%w: mapper \"empty\" models pure runtime overhead and only exists on the sim backend", ErrUnsupported)
		}
		if cfg.Timeline {
			return nil, fmt.Errorf("%w: Timeline is rendered from the simulated JobTracker's task log and only exists on the sim backend", ErrUnsupported)
		}
		kinds, err := netDeviceKinds(cfg)
		if err != nil {
			return nil, err
		}
		opts := []netmr.ClusterOption{
			netmr.WithSpeculation(cfg.Speculative),
			netmr.WithMaxAttempts(cfg.MaxAttempts),
			netmr.WithTrackerDelays(cfg.FaultDelays),
			netmr.WithDeviceKinds(kinds),
		}
		if len(cfg.Quotas) > 0 {
			quotas := make(map[string]netmr.Quota, len(cfg.Quotas))
			for tenant, q := range cfg.Quotas {
				quotas[tenant] = netmr.Quota{
					Weight:      q.Weight,
					MaxJobs:     q.MaxJobs,
					MaxTrackers: q.MaxTrackers,
					SpillBytes:  q.SpillBytes,
					MaxQueued:   q.MaxQueued,
				}
			}
			opts = append(opts, netmr.WithQuotas(quotas))
		}
		if cfg.Racks >= 2 {
			opts = append(opts, netmr.WithRacks(cfg.Racks))
		}
		if cfg.SpillMemBytes != 0 {
			opts = append(opts, netmr.WithSpill(cfg.SpillDir, cfg.spillMem(), cfg.spillCodec()))
		}
		// Flow control: with a positive spill watermark, grant ingest
		// and shuffle-fetch credits against it, so the network side of
		// the data plane is bounded the same way the stores are.
		if cfg.SpillMemBytes > 0 {
			opts = append(opts,
				netmr.WithIngestWindow(cfg.SpillMemBytes),
				netmr.WithFetchWindow(cfg.SpillMemBytes))
		}
		if cfg.Codec != "" {
			opts = append(opts, netmr.WithWireCodec(cfg.Codec))
		}
		clus, err := netmr.StartCluster(cfg.Workers, cfg.MappersPerNode,
			cfg.BlockSize, 20*time.Millisecond, opts...)
		if err != nil {
			return nil, err
		}
		return &netRunner{cfg: cfg, clus: clus}, nil
	})
}

// netDeviceKinds derives the cluster's per-tracker device profiles:
// the first AccelFraction of workers carry a device, the same layout
// the live and sim backends use, so one Config builds the same
// hardware everywhere. SpeedHints never override the profile; they are
// cross-checked against it — a hint above the host baseline on a
// worker without a device claims accelerated-class throughput the
// profile cannot provide and is an error, never a silently dropped
// knob. (The converse is fine: a device-equipped worker may carry a
// low hint — a straggling accelerated node — and
// HeterogeneousSpeedHints with the matching fraction agrees with the
// profile by construction.)
func netDeviceKinds(cfg Config) ([]string, error) {
	kinds := make([]string, cfg.Workers)
	accelerated := cfg.acceleratedNodes(cfg.Workers)
	for i := range kinds {
		if i < accelerated {
			kinds[i] = netmr.DeviceCell
		} else {
			kinds[i] = netmr.DeviceHost
		}
	}
	for i, h := range cfg.SpeedHints {
		if h > 1 && kinds[i] != netmr.DeviceCell {
			return nil, fmt.Errorf("engine: speed hint %g for worker %d exceeds the host baseline but the %d/%d accelerated device profile gives it no device — on net, hints must agree with AccelFraction (use HeterogeneousSpeedHints with the same fraction)",
				h, i, accelerated, cfg.Workers)
		}
	}
	return kinds, nil
}

// Backend implements Runner.
func (r *netRunner) Backend() string { return "net" }

// Close implements Runner: stops every daemon.
func (r *netRunner) Close() error {
	r.clus.Shutdown()
	return nil
}

// Cluster exposes the running deployment (daemon addresses, tracker
// devices etc.) for callers that need backend-specific detail.
func (r *netRunner) Cluster() *netmr.Cluster { return r.clus }

// reducers resolves the distributed-shuffle reduce-task count for data
// jobs whose kernel supports partitioned output: the configured
// partition count, defaulting to one reduce task per worker.
func (r *netRunner) reducers() int {
	if r.cfg.Reducers > 0 {
		return r.cfg.Reducers
	}
	if r.cfg.Workers > 0 {
		return r.cfg.Workers
	}
	return 1
}

// waitAndStatus blocks until job id completes under the configured
// JobTimeout and fetches the scheduler's per-tracker completion counts
// and device profile alongside the reduced result.
func (r *netRunner) waitAndStatus(id int64) (raw []byte, st netmr.StatusReply, err error) {
	raw, err = r.clus.Client.Wait(id, r.cfg.JobTimeout)
	if err != nil {
		return nil, st, err
	}
	st, err = r.clus.Client.Status(id)
	if err != nil {
		return nil, st, err
	}
	return raw, st, nil
}

// stageInput streams src (the job's dataset, possibly wrapped in a
// sampling pass) into the distributed FS under the client's ingest
// window.
func (r *netRunner) stageInput(job *Job, src io.Reader) (string, error) {
	r.mu.Lock()
	r.seq++
	name := fmt.Sprintf("/engine/%s-%d", job.title(), r.seq)
	r.mu.Unlock()
	if _, err := r.clus.Client.WriteFrom(name, src, ""); err != nil {
		return "", err
	}
	return name, nil
}

// rangeSampleCap sizes the reservoir for the split-key sampling pass:
// enough keys for stable quantiles at the given reducer count, capped
// so the sample never rivals the data.
func rangeSampleCap(reducers int) int {
	n := 100 * reducers
	if n < 1_000 {
		n = 1_000
	}
	if n > 100_000 {
		n = 100_000
	}
	return n
}

// buildSpec validates and expands an engine job into its netmr job
// spec, staging the dataset into the DFS for data kinds. Encrypt jobs
// with a Sink stream their output (the pieces stay on the trackers
// until the client pulls them).
func (r *netRunner) buildSpec(job *Job) (netmr.JobSpec, error) {
	spec := netmr.JobSpec{
		Name:   job.title(),
		Mapper: r.cfg.Mapper,
		Tenant: job.Tenant,
	}
	switch job.Kind {
	case Wordcount, Sort:
		src := job.inputReader()
		reducers := r.reducers()
		var sampler *kernels.RecordKeySampler
		if job.Kind == Sort && r.cfg.RangePartition {
			// The sampling pass rides the staging stream: ingest is read
			// exactly once, and the reservoir costs O(sample) memory.
			spec.StreamOutput = true
			if reducers > 1 {
				seed := job.Seed
				if seed == 0 {
					seed = DefaultSeed
				}
				sampler = kernels.NewRecordKeySampler(src, rangeSampleCap(reducers), uint64(seed))
				src = sampler
			}
		}
		input, err := r.stageInput(job, src)
		if err != nil {
			return spec, err
		}
		spec.Kernel = string(job.Kind)
		spec.Input = input
		spec.NumReducers = reducers
		if sampler != nil {
			// Quantile split keys from the reservoir; an empty input
			// yields none, falling back to hash routing of nothing.
			spec.SplitKeys = sampler.SplitKeys(reducers)
		}
	case Encrypt:
		input, err := r.stageInput(job, job.inputReader())
		if err != nil {
			return spec, err
		}
		args, err := rpcnet.Marshal(netmr.AESArgs{
			Key: job.Key, IV: job.iv(), BlockBytes: r.cfg.BlockSize,
		})
		if err != nil {
			return spec, err
		}
		spec.Kernel = "aes-ctr"
		spec.Input = input
		spec.Args = args
		spec.StreamOutput = job.Sink != nil
	case Pi:
		seed := job.Seed
		if seed == 0 {
			seed = DefaultSeed
		}
		spec.Kernel = "pi"
		spec.Samples = job.Samples
		spec.NumTasks = normalizeTasks(job.Tasks, r.cfg.Workers)
		spec.Seed = seed
	default:
		return spec, fmt.Errorf("%w: %s on net", ErrUnsupported, job.Kind)
	}
	return spec, nil
}

// netJob is one job submitted to the running cluster and not yet
// collected.
type netJob struct {
	r       *netRunner
	job     *Job
	id      int64
	started time.Time
	// Fetch-locality counter snapshot at submission; wait() reports
	// the delta as the job's read-locality split.
	local0, rack0, remote0 int64
}

// start validates, stages and submits one job, returning the handle to
// collect it with.
func (r *netRunner) start(job *Job) (*netJob, error) {
	if err := r.cfg.validateJob(job); err != nil {
		return nil, err
	}
	spec, err := r.buildSpec(job)
	if err != nil {
		return nil, err
	}
	l0, rk0, rm0 := r.clus.FetchTotals()
	id, err := r.clus.Client.Submit(spec)
	if err != nil {
		return nil, err
	}
	return &netJob{r: r, job: job, id: id, started: time.Now(),
		local0: l0, rack0: rk0, remote0: rm0}, nil
}

// wait blocks until the job completes and decodes its result by kind.
func (nj *netJob) wait() (*Result, error) {
	r, job := nj.r, nj.job
	res := &Result{Backend: r.Backend()}
	switch job.Kind {
	case Wordcount:
		raw, st, err := r.waitAndStatus(nj.id)
		if err != nil {
			return nil, err
		}
		var counts map[string]int64
		if err := rpcnet.Unmarshal(raw, &counts); err != nil {
			return nil, err
		}
		res.Pairs = pairsFromCounts(counts)
		res.TaskCounts, res.Devices = st.Counts, st.Devices
	case Sort:
		if r.cfg.RangePartition {
			// Range-partitioned streamed path: reduce r's output
			// strictly precedes reduce r+1's, so the concatenated
			// stream IS the globally sorted file — no final merge
			// anywhere, and the client holds one bounded chunk at a
			// time.
			var buf bytes.Buffer
			sink := job.Sink
			if sink == nil {
				sink = &buf
			}
			n, err := r.clus.Client.WaitOutput(nj.id, r.cfg.JobTimeout, sink, netmr.DecodeRawBytes)
			if err != nil {
				return nil, err
			}
			st, err := r.clus.Client.Status(nj.id)
			if err != nil {
				return nil, err
			}
			if job.Sink != nil {
				res.OutputBytes = n
			} else {
				res.Bytes = buf.Bytes()
			}
			res.TaskCounts, res.Devices = st.Counts, st.Devices
			break
		}
		raw, st, err := r.waitAndStatus(nj.id)
		if err != nil {
			return nil, err
		}
		// The default shuffle hash-partitions records, so the globally
		// sorted result only exists after the JobTracker's final merge
		// — sort's Sink receives that merged result in one stream. Set
		// Config.RangePartition for the streamed, merge-free path.
		var merged []byte
		if err := rpcnet.Unmarshal(raw, &merged); err != nil {
			return nil, err
		}
		if job.Sink != nil {
			n, err := job.Sink.Write(merged)
			if err != nil {
				return nil, err
			}
			res.OutputBytes = int64(n)
		} else {
			res.Bytes = merged
		}
		res.TaskCounts, res.Devices = st.Counts, st.Devices
	case Encrypt:
		if job.Sink != nil {
			// Fully streamed: ciphertext blocks park on the trackers
			// (spilling past the watermark) and flow straight to the
			// sink — the JobTracker and client never hold the output.
			n, err := r.clus.Client.WaitOutput(nj.id, r.cfg.JobTimeout, job.Sink, netmr.DecodeRawBytes)
			if err != nil {
				return nil, err
			}
			st, err := r.clus.Client.Status(nj.id)
			if err != nil {
				return nil, err
			}
			res.OutputBytes = n
			res.TaskCounts, res.Devices = st.Counts, st.Devices
			break
		}
		raw, st, err := r.waitAndStatus(nj.id)
		if err != nil {
			return nil, err
		}
		if err := rpcnet.Unmarshal(raw, &res.Bytes); err != nil {
			return nil, err
		}
		res.TaskCounts, res.Devices = st.Counts, st.Devices
	case Pi:
		raw, st, err := r.waitAndStatus(nj.id)
		if err != nil {
			return nil, err
		}
		var pi netmr.PiResult
		if err := rpcnet.Unmarshal(raw, &pi); err != nil {
			return nil, err
		}
		res.Pi, res.Inside, res.Total = pi.Pi, pi.Inside, pi.Total
		res.TaskCounts, res.Devices = st.Counts, st.Devices
	}
	l1, rk1, rm1 := r.clus.FetchTotals()
	res.LocalReads = l1 - nj.local0
	res.RackReads = rk1 - nj.rack0
	res.RemoteReads = rm1 - nj.remote0
	res.Elapsed = time.Since(nj.started)
	return res, nil
}

// Run implements Runner as submit-then-wait over the job service, so
// the one-shot path and Client.Submit exercise the same machinery. It
// is safe for concurrent use: each call stages its input under a
// distinct DFS path, and the netmr client multiplexes concurrent
// calls over its pooled connections.
func (r *netRunner) Run(job *Job) (*Result, error) {
	nj, err := r.start(job)
	if err != nil {
		return nil, err
	}
	return nj.wait()
}

// Submit implements the Client's native submission hook: the job runs
// on the cluster while the caller holds the handle, Kill reaches the
// JobTracker's Kill RPC, and Status polls live progress.
func (r *netRunner) Submit(job *Job) (*JobHandle, error) {
	nj, err := r.start(job)
	if err != nil {
		return nil, err
	}
	return newJobHandle(
		nj.wait,
		func() error { return r.clus.Client.Kill(nj.id, job.Tenant) },
		func() (JobStatus, error) {
			st, err := r.clus.Client.Status(nj.id)
			if err != nil {
				return JobStatus{}, err
			}
			return JobStatus{
				Done:      st.Done,
				Completed: st.Completed,
				Total:     st.Total,
				Err:       st.Err,
			}, nil
		},
	), nil
}
