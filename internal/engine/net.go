package engine

import (
	"fmt"
	"io"
	"sync"
	"time"

	"hetmr/internal/netmr"
	"hetmr/internal/rpcnet"
)

// netRunner executes jobs on the socket-backed distributed runtime
// (internal/netmr): NameNode, DataNodes, JobTracker and TaskTrackers
// as TCP daemons on loopback, block data crossing the network stack.
// An AccelFraction of the trackers carry a per-node Cell accelerator;
// cell-mapper jobs offload their pi, aes-ctr and wordcount map tasks
// to it with a bit-identical host fallback on the plain trackers.
type netRunner struct {
	cfg  Config
	clus *netmr.Cluster

	// mu guards seq: Run may be called concurrently, and two jobs
	// colliding on one DFS staging path would corrupt each other's
	// input.
	mu  sync.Mutex
	seq int
}

func init() {
	Register("net", func(cfg Config) (Runner, error) {
		if cfg.Mapper == "empty" {
			return nil, fmt.Errorf("%w: mapper \"empty\" models pure runtime overhead and only exists on the sim backend", ErrUnsupported)
		}
		kinds, err := netDeviceKinds(cfg)
		if err != nil {
			return nil, err
		}
		opts := []netmr.ClusterOption{
			netmr.WithSpeculation(cfg.Speculative),
			netmr.WithMaxAttempts(cfg.MaxAttempts),
			netmr.WithTrackerDelays(cfg.FaultDelays),
			netmr.WithDeviceKinds(kinds),
		}
		if cfg.SpillMemBytes != 0 {
			opts = append(opts, netmr.WithSpill(cfg.SpillDir, cfg.spillMem(), cfg.spillCodec()))
		}
		clus, err := netmr.StartCluster(cfg.Workers, cfg.MappersPerNode,
			cfg.BlockSize, 20*time.Millisecond, opts...)
		if err != nil {
			return nil, err
		}
		return &netRunner{cfg: cfg, clus: clus}, nil
	})
}

// netDeviceKinds derives the cluster's per-tracker device profiles:
// the first AccelFraction of workers carry a device, the same layout
// the live and sim backends use, so one Config builds the same
// hardware everywhere. SpeedHints never override the profile; they are
// cross-checked against it — a hint above the host baseline on a
// worker without a device claims accelerated-class throughput the
// profile cannot provide and is an error, never a silently dropped
// knob. (The converse is fine: a device-equipped worker may carry a
// low hint — a straggling accelerated node — and
// HeterogeneousSpeedHints with the matching fraction agrees with the
// profile by construction.)
func netDeviceKinds(cfg Config) ([]string, error) {
	kinds := make([]string, cfg.Workers)
	accelerated := cfg.acceleratedNodes(cfg.Workers)
	for i := range kinds {
		if i < accelerated {
			kinds[i] = netmr.DeviceCell
		} else {
			kinds[i] = netmr.DeviceHost
		}
	}
	for i, h := range cfg.SpeedHints {
		if h > 1 && kinds[i] != netmr.DeviceCell {
			return nil, fmt.Errorf("engine: speed hint %g for worker %d exceeds the host baseline but the %d/%d accelerated device profile gives it no device — on net, hints must agree with AccelFraction (use HeterogeneousSpeedHints with the same fraction)",
				h, i, accelerated, cfg.Workers)
		}
	}
	return kinds, nil
}

// Backend implements Runner.
func (r *netRunner) Backend() string { return "net" }

// Close implements Runner: stops every daemon.
func (r *netRunner) Close() error {
	r.clus.Shutdown()
	return nil
}

// Cluster exposes the running deployment (daemon addresses, tracker
// devices etc.) for callers that need backend-specific detail.
func (r *netRunner) Cluster() *netmr.Cluster { return r.clus }

// reducers resolves the distributed-shuffle reduce-task count for data
// jobs whose kernel supports partitioned output: the configured
// partition count, defaulting to one reduce task per worker.
func (r *netRunner) reducers() int {
	if r.cfg.Reducers > 0 {
		return r.cfg.Reducers
	}
	if r.cfg.Workers > 0 {
		return r.cfg.Workers
	}
	return 1
}

// submitAndWait runs one job to completion under the configured
// JobTimeout and fetches the scheduler's per-tracker completion counts
// and device profile alongside the reduced result.
func (r *netRunner) submitAndWait(spec netmr.JobSpec) (raw []byte, st netmr.StatusReply, err error) {
	spec.Mapper = r.cfg.Mapper
	id, err := r.clus.Client.Submit(spec)
	if err != nil {
		return nil, st, err
	}
	raw, err = r.clus.Client.Wait(id, r.cfg.JobTimeout)
	if err != nil {
		return nil, st, err
	}
	st, err = r.clus.Client.Status(id)
	if err != nil {
		return nil, st, err
	}
	return raw, st, nil
}

// stageInput streams the job's dataset into the distributed FS, one
// block resident at a time.
func (r *netRunner) stageInput(job *Job) (string, error) {
	r.mu.Lock()
	r.seq++
	name := fmt.Sprintf("/engine/%s-%d", job.title(), r.seq)
	r.mu.Unlock()
	if _, err := r.clus.Client.WriteFrom(name, job.inputReader(), ""); err != nil {
		return "", err
	}
	return name, nil
}

// streamResult runs one byte-output job with its result streamed: the
// output pieces stay in the worker trackers' stores, the client pulls
// them straight into the sink, and the JobTracker never buffers a
// byte of output.
func (r *netRunner) streamResult(spec netmr.JobSpec, sink io.Writer) (int64, netmr.StatusReply, error) {
	var st netmr.StatusReply
	spec.Mapper = r.cfg.Mapper
	spec.StreamOutput = true
	id, err := r.clus.Client.Submit(spec)
	if err != nil {
		return 0, st, err
	}
	n, err := r.clus.Client.WaitOutput(id, r.cfg.JobTimeout, sink, netmr.DecodeRawBytes)
	if err != nil {
		return n, st, err
	}
	st, err = r.clus.Client.Status(id)
	return n, st, err
}

// Run implements Runner. It is safe for concurrent use: each call
// stages its input under a distinct DFS path and the netmr client is
// connectionless per call.
func (r *netRunner) Run(job *Job) (*Result, error) {
	if err := r.cfg.validateJob(job); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Backend: r.Backend()}
	switch job.Kind {
	case Wordcount:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		raw, st, err := r.submitAndWait(netmr.JobSpec{
			Name: job.title(), Kernel: "wordcount", Input: input,
			NumReducers: r.reducers(),
		})
		if err != nil {
			return nil, err
		}
		var counts map[string]int64
		if err := rpcnet.Unmarshal(raw, &counts); err != nil {
			return nil, err
		}
		res.Pairs = pairsFromCounts(counts)
		res.TaskCounts, res.Devices = st.Counts, st.Devices
	case Sort:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		raw, st, err := r.submitAndWait(netmr.JobSpec{
			Name: job.title(), Kernel: "sort", Input: input,
			NumReducers: r.reducers(),
		})
		if err != nil {
			return nil, err
		}
		// The shuffle hash-partitions records, so the globally sorted
		// result only exists after the JobTracker's final merge —
		// sort's Sink receives that merged result in one stream (a
		// range partitioner, which would let partitions concatenate in
		// order, is a ROADMAP follow-on).
		var merged []byte
		if err := rpcnet.Unmarshal(raw, &merged); err != nil {
			return nil, err
		}
		if job.Sink != nil {
			n, err := job.Sink.Write(merged)
			if err != nil {
				return nil, err
			}
			res.OutputBytes = int64(n)
		} else {
			res.Bytes = merged
		}
		res.TaskCounts, res.Devices = st.Counts, st.Devices
	case Encrypt:
		input, err := r.stageInput(job)
		if err != nil {
			return nil, err
		}
		args, err := rpcnet.Marshal(netmr.AESArgs{
			Key: job.Key, IV: job.iv(), BlockBytes: r.cfg.BlockSize,
		})
		if err != nil {
			return nil, err
		}
		spec := netmr.JobSpec{
			Name: job.title(), Kernel: "aes-ctr", Input: input, Args: args,
		}
		if job.Sink != nil {
			// Fully streamed: ciphertext blocks park on the trackers
			// (spilling past the watermark) and flow straight to the
			// sink — the JobTracker and client never hold the output.
			n, st, err := r.streamResult(spec, job.Sink)
			if err != nil {
				return nil, err
			}
			res.OutputBytes = n
			res.TaskCounts, res.Devices = st.Counts, st.Devices
			break
		}
		raw, st, err := r.submitAndWait(spec)
		if err != nil {
			return nil, err
		}
		if err := rpcnet.Unmarshal(raw, &res.Bytes); err != nil {
			return nil, err
		}
		res.TaskCounts, res.Devices = st.Counts, st.Devices
	case Pi:
		seed := job.Seed
		if seed == 0 {
			seed = DefaultSeed
		}
		raw, st, err := r.submitAndWait(netmr.JobSpec{
			Name:     job.title(),
			Kernel:   "pi",
			Samples:  job.Samples,
			NumTasks: normalizeTasks(job.Tasks, r.cfg.Workers),
			Seed:     seed,
		})
		if err != nil {
			return nil, err
		}
		var pi netmr.PiResult
		if err := rpcnet.Unmarshal(raw, &pi); err != nil {
			return nil, err
		}
		res.Pi, res.Inside, res.Total = pi.Pi, pi.Inside, pi.Total
		res.TaskCounts, res.Devices = st.Counts, st.Devices
	default:
		return nil, fmt.Errorf("%w: %s on net", ErrUnsupported, job.Kind)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
