package engine

import (
	"fmt"
	"io"
	"runtime"
	"sync/atomic"
	"testing"
	"time"
)

// samplePeakHeap runs f while polling the Go heap, returning the
// highest HeapAlloc observed (bytes). A GC before the run floors the
// baseline so successive measurements do not inherit each other's
// garbage.
func samplePeakHeap(f func()) uint64 {
	runtime.GC()
	var peak atomic.Uint64
	stop := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		var ms runtime.MemStats
		for {
			runtime.ReadMemStats(&ms)
			for {
				old := peak.Load()
				if ms.HeapAlloc <= old || peak.CompareAndSwap(old, ms.HeapAlloc) {
					break
				}
			}
			select {
			case <-stop:
				return
			case <-time.After(time.Millisecond):
			}
		}
	}()
	f()
	close(stop)
	<-done
	return peak.Load()
}

// streamEncryptOnce runs one fully-streamed encrypt job: synthetic
// generator in, io.Discard out, every data-plane store bounded by the
// spill watermark.
func streamEncryptOnce(b testing.TB, backend string, inputBytes int64, spillDir string) {
	b.Helper()
	cfg := Config{
		Workers:       4,
		BlockSize:     64_000,
		SpillMemBytes: 1 << 20,
		SpillDir:      spillDir,
	}
	job := &Job{
		Kind:       Encrypt,
		InputBytes: inputBytes,
		Key:        []byte("bench-stream-key"),
		Sink:       io.Discard,
	}
	res, err := RunOnce(backend, cfg, job)
	if err != nil {
		b.Fatal(err)
	}
	if res.OutputBytes != inputBytes {
		b.Fatalf("%s streamed %d bytes, want %d", backend, res.OutputBytes, inputBytes)
	}
}

// BenchmarkStreamingPeakMemory is the bounded-memory proof for the
// streaming data plane: the same fully-streamed encrypt job at 1 MB
// and at 100 MB (a 100× input growth) on the live and net backends,
// reporting the peak resident Go heap as peak_heap_MB. With every
// store bounded by a 1 MB watermark the peak stays ~O(blockSize ×
// workers) — flat across the sweep — where the materialized path
// would grow with the input.
func BenchmarkStreamingPeakMemory(b *testing.B) {
	for _, backend := range []string{"live", "net"} {
		for _, mb := range []int64{1, 100} {
			b.Run(fmt.Sprintf("%s/%dMB", backend, mb), func(b *testing.B) {
				dir := b.TempDir()
				size := mb << 20
				b.SetBytes(size)
				var peak uint64
				for i := 0; i < b.N; i++ {
					peak = samplePeakHeap(func() {
						streamEncryptOnce(b, backend, size, dir)
					})
				}
				b.ReportMetric(float64(peak)/(1<<20), "peak_heap_MB")
			})
		}
	}
}
