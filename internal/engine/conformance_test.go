package engine

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"hetmr/internal/kernels"
)

// The conformance suite is the engine's contract: the same job, run on
// every registered backend, must produce identical results — the live
// in-process cluster, the calibrated simulation and the TCP-backed
// distributed runtime agree bit-for-bit on wordcount, sort, pi and
// encrypt. Backends that cannot express a kind (ErrUnsupported) are
// skipped for that kind only.

// conformanceConfig is shared by every backend so block boundaries
// (and with them map-task decomposition) agree.
func conformanceConfig() Config {
	return Config{
		Workers:   3,
		BlockSize: 5_000, // multiple of the 100-byte sort record; splits inputs into many blocks
	}
}

// corpus builds a multi-block text with words straddling block
// boundaries — the conformance point is that every backend splits at
// the same offsets, not that the input is convenient.
func corpus() []byte {
	var b bytes.Buffer
	for i := 0; i < 3_000; i++ {
		fmt.Fprintf(&b, "word%03d lorem ipsum becerra cell spe mapreduce ", i%97)
	}
	return b.Bytes()
}

func conformanceJobs() []*Job {
	return []*Job{
		{Kind: Wordcount, Input: corpus()},
		{Kind: Sort, Input: kernels.GenerateSortRecords(2009, 1_000)},
		{Kind: Pi, Samples: 300_000, Tasks: 8, Seed: 2009},
		{
			Kind:  Encrypt,
			Input: corpus()[:20_000],
			Key:   []byte("conformance-key!"),
			IV:    []byte("conformance-iv!!"),
		},
	}
}

func runOn(t *testing.T, backend string, job *Job) (*Result, bool) {
	t.Helper()
	return runOnConfig(t, backend, conformanceConfig(), job)
}

func runOnConfig(t *testing.T, backend string, cfg Config, job *Job) (*Result, bool) {
	t.Helper()
	r, err := New(backend, cfg)
	if err != nil {
		t.Fatalf("%s: New: %v", backend, err)
	}
	defer r.Close()
	res, err := r.Run(job)
	if errors.Is(err, ErrUnsupported) {
		return nil, false
	}
	if err != nil {
		t.Fatalf("%s: %s: %v", backend, job.Kind, err)
	}
	return res, true
}

func TestCrossBackendConformance(t *testing.T) {
	required := []string{"live", "sim", "net"}
	for _, job := range conformanceJobs() {
		job := job
		t.Run(string(job.Kind), func(t *testing.T) {
			results := make(map[string]*Result)
			for _, backend := range append(append([]string{}, required...), "cellmr") {
				if res, ok := runOn(t, backend, job); ok {
					results[backend] = res
				} else if backend != "cellmr" {
					t.Fatalf("backend %s does not support required kind %s", backend, job.Kind)
				}
			}
			// Every required backend must have run the job.
			ref := results[required[0]]
			for backend, res := range results {
				if backend == required[0] {
					continue
				}
				assertSameResult(t, job.Kind, required[0], ref, backend, res)
			}
		})
	}
}

// TestCrossBackendConformanceWithCodec re-runs the conformance
// contract with wire compression negotiated (Config.Codec) and pins
// every backend's compressed-wire result against the same backend's
// uncompressed run — the codec is a transport knob, never a semantic
// one. On the net backend the codec actually rides the wire (DFS
// blocks, shuffle fetches); on the others it must be inert.
func TestCrossBackendConformanceWithCodec(t *testing.T) {
	backends := []string{"live", "sim", "net", "cellmr"}
	for _, job := range conformanceJobs() {
		job := job
		t.Run(string(job.Kind), func(t *testing.T) {
			for _, backend := range backends {
				plain, ok := runOn(t, backend, job)
				if !ok {
					continue
				}
				for _, codec := range []string{"snap", "flate"} {
					cfg := conformanceConfig()
					cfg.Codec = codec
					compressed, ok := runOnConfig(t, backend, cfg, job)
					if !ok {
						t.Fatalf("%s: %s supported without codec but not with %q", backend, job.Kind, codec)
					}
					if err := SameResult(job.Kind, plain, compressed); err != nil {
						t.Fatalf("%s: %s: codec %q changed the result: %v", backend, job.Kind, codec, err)
					}
				}
			}
		})
	}
}

func assertSameResult(t *testing.T, kind Kind, refName string, ref *Result, name string, res *Result) {
	t.Helper()
	if err := SameResult(kind, ref, res); err != nil {
		t.Fatalf("%s vs %s on %s: %v", refName, name, kind, err)
	}
}

// TestSimReportsModelStats pins the simulated backend's second duty:
// every run must carry the calibrated model's metrics.
func TestSimReportsModelStats(t *testing.T) {
	r, err := New("sim", conformanceConfig())
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Run(&Job{Kind: Pi, Samples: 100_000, Tasks: 6})
	if err != nil {
		t.Fatal(err)
	}
	if res.Sim == nil {
		t.Fatal("sim backend returned no SimStats")
	}
	if res.Sim.MakespanSeconds <= 0 {
		t.Fatalf("modelled makespan %v, want > 0", res.Sim.MakespanSeconds)
	}
	if res.Sim.Tasks != 6 {
		t.Fatalf("modelled %d tasks, want 6", res.Sim.Tasks)
	}
	if res.Sim.EnergyJoules <= 0 {
		t.Fatalf("modelled energy %v, want > 0", res.Sim.EnergyJoules)
	}
}

// TestWordcountMatchesSerialReference anchors the distributed word
// count against a direct serial computation with the same blocking.
func TestWordcountMatchesSerialReference(t *testing.T) {
	cfg := conformanceConfig()
	data := corpus()
	want := make(map[string]int64)
	for off := 0; off < len(data); off += int(cfg.BlockSize) {
		end := off + int(cfg.BlockSize)
		if end > len(data) {
			end = len(data)
		}
		for w, n := range kernels.WordCount(data[off:end]) {
			want[w] += n
		}
	}
	r, err := New("live", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	res, err := r.Run(&Job{Kind: Wordcount, Input: data})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Pairs) != len(want) {
		t.Fatalf("live: %d words, reference: %d", len(res.Pairs), len(want))
	}
	for _, kv := range res.Pairs {
		if fmt.Sprintf("%d", want[kv.Key]) != kv.Value {
			t.Fatalf("word %q: live=%s reference=%d", kv.Key, kv.Value, want[kv.Key])
		}
	}
}

// TestEncryptRoundTrip decrypts through a second engine run (CTR is an
// involution) and checks the original bytes come back.
func TestEncryptRoundTrip(t *testing.T) {
	cfg := conformanceConfig()
	key := []byte("roundtrip-key-16")
	plain := corpus()[:15_000]
	r, err := New("live", cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	enc, err := r.Run(&Job{Kind: Encrypt, Input: plain, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	dec, err := r.Run(&Job{Kind: Encrypt, Input: enc.Bytes, Key: key})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(dec.Bytes, plain) {
		t.Fatal("decrypt did not restore the plaintext")
	}
	if bytes.Equal(enc.Bytes, plain) {
		t.Fatal("ciphertext equals plaintext")
	}
}

// TestBackendNamesMatchRunner pins Backend() to the registry name.
func TestBackendNamesMatchRunner(t *testing.T) {
	for _, name := range Backends() {
		r, err := New(name, Config{Workers: 1})
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if got := r.Backend(); got != name {
			t.Errorf("backend %q reports Backend() = %q", name, got)
		}
		if err := r.Close(); err != nil {
			t.Errorf("%s: Close: %v", name, err)
		}
		if !strings.HasPrefix(name, strings.ToLower(name)) {
			t.Errorf("backend name %q not lowercase", name)
		}
	}
}
