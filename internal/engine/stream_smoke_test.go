package engine

import (
	"runtime/debug"
	"testing"
)

// TestBoundedMemoryStreaming is the bounded-memory smoke gate: a
// synthetic dataset far above the spill watermark streams end to end
// — generator → DFS blocks → kernel → spilled output → sink — on both
// functional backends under a hard Go memory limit. If any layer
// regresses to materializing the dataset, the peak heap blows through
// the assertion (and under the CI lane's GOMEMLIMIT, the runtime
// thrashes or dies) instead of silently passing.
func TestBoundedMemoryStreaming(t *testing.T) {
	// A hard ceiling well below the combined input sizes: the
	// streamed path needs only a few MB, a materializing regression
	// needs hundreds.
	old := debug.SetMemoryLimit(256 << 20)
	defer debug.SetMemoryLimit(old)

	const (
		liveInput = 64 << 20 // 64 MB through the in-process cluster
		netInput  = 32 << 20 // 32 MB through the socket-backed cluster
		peakCap   = 128 << 20
	)
	cases := []struct {
		backend string
		input   int64
	}{
		{"live", liveInput},
		{"net", netInput},
	}
	for _, tc := range cases {
		tc := tc
		t.Run(tc.backend, func(t *testing.T) {
			peak := samplePeakHeap(func() {
				streamEncryptOnce(t, tc.backend, tc.input, t.TempDir())
			})
			t.Logf("peak_heap_MB=%.1f input_MB=%d", float64(peak)/(1<<20), tc.input/(1<<20))
			if peak > peakCap {
				t.Fatalf("peak heap %.1f MB exceeds the %d MB bound for a %d MB streamed input",
					float64(peak)/(1<<20), peakCap>>20, tc.input>>20)
			}
		})
	}
}
