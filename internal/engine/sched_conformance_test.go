package engine

import (
	"testing"
	"time"
)

// The dynamic scheduler must never change what a job computes, only
// when it finishes: with speculation enabled, explicit speed hints and
// one injected straggler an order of magnitude slower than its peers,
// every kind's result stays bit-identical to the plain run on both
// functional backends (live in-process, net over TCP).

// stragglerConfig mirrors conformanceConfig with worker 0 degraded:
// its 8ms per-task delay is 10x-plus the real per-block work at this
// block size, and the speed hints declare the skew to the scheduler.
func stragglerConfig() Config {
	cfg := conformanceConfig()
	cfg.Speculative = true
	cfg.MaxAttempts = 4
	cfg.SpeedHints = []float64{0.1, 1, 1}
	cfg.FaultDelays = []time.Duration{8 * time.Millisecond, 0, 0}
	return cfg
}

func TestConformanceWithSpeculationAndStraggler(t *testing.T) {
	for _, backend := range []string{"live", "net"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			for _, job := range conformanceJobs() {
				job := job
				t.Run(string(job.Kind), func(t *testing.T) {
					ref, ok := runOn(t, backend, job)
					if !ok {
						t.Fatalf("%s does not support %s", backend, job.Kind)
					}
					r, err := New(backend, stragglerConfig())
					if err != nil {
						t.Fatal(err)
					}
					defer r.Close()
					res, err := r.Run(job)
					if err != nil {
						t.Fatalf("%s with straggler: %v", job.Kind, err)
					}
					assertSameResult(t, job.Kind, backend+"(plain)", ref, backend+"(straggler)", res)
					// The scheduler's accounting must cover every task,
					// and the straggler (worker 0) must not have run the
					// whole job — healthy workers steal its queue.
					total := 0
					for _, n := range res.TaskCounts {
						total += n
					}
					if total == 0 {
						t.Fatalf("no task counts reported: %+v", res.TaskCounts)
					}
					for _, straggler := range []string{"node000", "tracker-0"} {
						if n := res.TaskCounts[straggler]; n == total {
							t.Errorf("straggler %s won all %d tasks", straggler, n)
						}
					}
				})
			}
		})
	}
}

// TestSpeculationOnOffBitIdentical pins the acceptance contract
// directly: the same job with speculation on and off produces the
// same bytes on every dynamically scheduled backend.
func TestSpeculationOnOffBitIdentical(t *testing.T) {
	for _, backend := range []string{"live", "net"} {
		backend := backend
		t.Run(backend, func(t *testing.T) {
			for _, job := range conformanceJobs() {
				off, ok := runOn(t, backend, job)
				if !ok {
					continue
				}
				cfg := conformanceConfig()
				cfg.Speculative = true
				r, err := New(backend, cfg)
				if err != nil {
					t.Fatal(err)
				}
				on, err := r.Run(job)
				r.Close()
				if err != nil {
					t.Fatalf("%s speculative: %v", job.Kind, err)
				}
				assertSameResult(t, job.Kind, "speculation-off", off, "speculation-on", on)
			}
		})
	}
}

func TestConfigSchedulingValidation(t *testing.T) {
	bad := []Config{
		{MaxAttempts: -1},
		{Workers: 2, SpeedHints: []float64{1}},
		{Workers: 2, SpeedHints: []float64{1, 0}},
		{Workers: 2, SpeedHints: []float64{1, -3}},
		{Workers: 2, FaultDelays: []time.Duration{time.Second}},
		{Workers: 2, FaultDelays: []time.Duration{0, -time.Second}},
	}
	for i, cfg := range bad {
		if _, err := New("live", cfg); err == nil {
			t.Errorf("config %d accepted: %+v", i, cfg)
		}
	}
}

func TestHeterogeneousSpeedHints(t *testing.T) {
	hints := HeterogeneousSpeedHints(4, 0.5)
	if len(hints) != 4 {
		t.Fatalf("got %d hints", len(hints))
	}
	if hints[0] <= hints[3] {
		t.Errorf("accelerated node hint %g not above plain node hint %g", hints[0], hints[3])
	}
	if hints[0] != hints[1] || hints[2] != hints[3] || hints[2] != 1 {
		t.Errorf("hints = %v, want [r r 1 1]", hints)
	}
	if HeterogeneousSpeedHints(0, 1) != nil {
		t.Error("zero workers should yield nil hints")
	}
	// The hints are valid engine configuration.
	cfg := Config{Workers: 4, SpeedHints: HeterogeneousSpeedHints(4, 0.5)}
	r, err := New("live", cfg)
	if err != nil {
		t.Fatal(err)
	}
	r.Close()
}
