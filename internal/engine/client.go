package engine

import (
	"fmt"
	"sync"
)

// submitter is the optional Runner extension a multi-job backend
// implements so Client.Submit runs natively: the job is admitted to
// the backend's own scheduler and the handle's Kill/Status reach its
// lifecycle RPCs. The net backend implements it; backends without a
// job service fall back to Client's serialized-run emulation.
type submitter interface {
	Submit(job *Job) (*JobHandle, error)
}

// JobStatus is a point-in-time view of a submitted job's progress.
type JobStatus struct {
	// Done reports the job reached a terminal state (Err tells
	// success from failure).
	Done bool
	// Completed and Total count finished and overall tasks.
	Completed, Total int
	// Err is the terminal error message ("" while running or on
	// success).
	Err string
}

// JobHandle is one submitted job: Wait collects its result exactly
// once, Kill terminates it mid-flight, Status polls progress. Handles
// are safe for concurrent use.
type JobHandle struct {
	once   sync.Once
	res    *Result
	err    error
	wait   func() (*Result, error)
	kill   func() error
	status func() (JobStatus, error)
}

// newJobHandle builds a handle over backend-specific wait/kill/status
// hooks (kill and status may be nil: the handle answers
// ErrUnsupported).
func newJobHandle(wait func() (*Result, error), kill func() error, status func() (JobStatus, error)) *JobHandle {
	return &JobHandle{wait: wait, kill: kill, status: status}
}

// Wait blocks until the job completes and returns its result. Every
// call returns the same outcome; the underlying collection runs once.
func (h *JobHandle) Wait() (*Result, error) {
	h.once.Do(func() { h.res, h.err = h.wait() })
	return h.res, h.err
}

// Kill terminates the job mid-flight on backends with a job service; a
// subsequent Wait returns the kill as the job's terminal error.
// Backends without one answer ErrUnsupported.
func (h *JobHandle) Kill() error {
	if h.kill == nil {
		return fmt.Errorf("%w: Kill needs a backend with a job service (net)", ErrUnsupported)
	}
	return h.kill()
}

// Status polls the job's live progress on backends with a job
// service; backends without one answer ErrUnsupported.
func (h *JobHandle) Status() (JobStatus, error) {
	if h.status == nil {
		return JobStatus{}, fmt.Errorf("%w: Status needs a backend with a job service (net)", ErrUnsupported)
	}
	return h.status()
}

// Client is the submit-many handle over one backend: Open once, submit
// any number of jobs (concurrently on backends with a job service),
// Close once. On the net backend every Submit lands in the shared
// multi-tenant JobTracker and competes under its fair-share weights
// and quotas; on the other backends Submit falls back to running jobs
// one at a time in the background, preserving Run's semantics.
type Client struct {
	r Runner
	// mu serializes fallback Submits: Runners are not goroutine-safe
	// unless documented, so emulated submissions queue.
	mu sync.Mutex
}

// Open builds the named backend and wraps it in a Client.
func Open(backend string, cfg Config) (*Client, error) {
	r, err := New(backend, cfg)
	if err != nil {
		return nil, err
	}
	return NewClient(r), nil
}

// NewClient wraps an already-built Runner. The Client assumes
// ownership: its Close closes the runner.
func NewClient(r Runner) *Client {
	return &Client{r: r}
}

// Backend reports the wrapped backend's registered name.
func (c *Client) Backend() string { return c.r.Backend() }

// Runner exposes the wrapped runner for callers needing
// backend-specific detail.
func (c *Client) Runner() Runner { return c.r }

// Submit starts one job and returns its handle without waiting. On a
// backend with a job service the job is admitted to the shared
// scheduler (a quota rejection surfaces here); elsewhere the job runs
// in the background, serialized with other emulated submissions.
func (c *Client) Submit(job *Job) (*JobHandle, error) {
	if s, ok := c.r.(submitter); ok {
		return s.Submit(job)
	}
	done := make(chan struct{})
	var res *Result
	var err error
	go func() {
		defer close(done)
		c.mu.Lock()
		defer c.mu.Unlock()
		res, err = c.r.Run(job)
	}()
	return newJobHandle(func() (*Result, error) {
		<-done
		return res, err
	}, nil, nil), nil
}

// Run is Submit followed by Wait — the one-shot convenience the
// conformance suites use.
func (c *Client) Run(job *Job) (*Result, error) {
	h, err := c.Submit(job)
	if err != nil {
		return nil, err
	}
	return h.Wait()
}

// Close tears the backend down.
func (c *Client) Close() error { return c.r.Close() }
