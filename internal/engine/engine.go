// Package engine is the backend-agnostic MapReduce layer: one Job
// description, one Runner interface, one named-backend registry. The
// repo grows three full runners of the paper's architecture — the live
// in-process two-level cluster (internal/core), the calibrated
// discrete-event simulation (internal/hadoop on internal/sim) and the
// socket-backed distributed system (internal/netmr) — plus the
// node-level Cell framework (internal/cellmr). Every example, command
// and benchmark selects among them through this package instead of
// hand-wiring a bespoke call path per backend, and a shared
// conformance suite holds all backends to identical results for the
// same job.
//
// Two call shapes exist. RunOnce (and Runner.Run) is the one-shot
// path: boot a backend, run one job, tear it down. Client is the
// service path: Open once, Submit many concurrent jobs — each tagged
// with Job.Tenant and returning a JobHandle for Wait/Kill/Status —
// then Close. On the net backend both shapes ride the same
// multi-tenant job service (internal/netmr); other backends emulate
// Submit by serializing jobs and refuse Kill/Status with
// ErrUnsupported rather than pretending.
package engine

import (
	"bytes"
	"fmt"
	"io"
	"sort"
	"time"

	"hetmr/internal/kernels"
)

// Kind names a built-in job shape. The set mirrors the paper's
// workloads: word count (the classic model demo), TeraSort (§IV-A),
// Monte Carlo Pi (§IV-B) and AES encryption (§IV-A).
type Kind string

// Built-in job kinds.
const (
	Wordcount Kind = "wordcount"
	Sort      Kind = "sort"
	Pi        Kind = "pi"
	Encrypt   Kind = "encrypt"
)

// DefaultSeed is the Pi seed used when Job.Seed is zero (the paper's
// year, matching the netmr runtime's historical default).
const DefaultSeed = 2009

// Job is a backend-agnostic MapReduce job. Data kinds (Wordcount,
// Sort, Encrypt) consume Input; Pi consumes Samples split over Tasks
// canonical map tasks.
type Job struct {
	// Name labels the job in errors and DFS paths; defaults to the
	// kind.
	Name string
	// Kind selects the built-in job shape.
	Kind Kind
	// Input is the dataset for data kinds. Backends split it into
	// blocks of the runner's configured block size, so block-boundary
	// semantics (e.g. words straddling blocks) agree across backends.
	// It is the materialized convenience over Source: a job may set
	// either, not both (Input wins when both are set).
	Input []byte
	// Source streams the dataset for data kinds when Input is nil:
	// the functional backends consume it incrementally — block by
	// block into the DFS — so a job's input never has to fit in
	// memory. A Source is read exactly once; a job carrying one can
	// be Run once. The simulated backend materializes it (its duty is
	// the timing model, not bounded memory).
	Source io.Reader
	// InputBytes requests a synthetic dataset of this size when Input
	// and Source are nil: functional backends stream a deterministic
	// generator (SyntheticReader) incrementally, the simulated
	// backend models the size (materializing only small datasets for
	// its functional result). Used for sweeps far above RAM scale.
	InputBytes int64
	// Sink, when set on a byte-output kind (Sort, Encrypt), receives
	// the job's output as a stream instead of Result.Bytes: the live
	// backend copies straight out of the DFS, the net backend pulls
	// streamed result pieces from the worker trackers. Result.Bytes
	// stays nil and Result.OutputBytes counts what was written.
	Sink io.Writer
	// Key and IV parameterize Encrypt (AES-128/CTR). Key must be 16
	// bytes; a nil IV selects a zero IV.
	Key, IV []byte
	// Samples is the total Monte Carlo sample count for Pi.
	Samples int64
	// Tasks is the Pi map-task count (0: two per worker, the paper's
	// slot count).
	Tasks int
	// Seed is the Pi base seed; task i draws from the domain
	// MixSeed(Seed, i). 0 selects DefaultSeed.
	Seed uint64
	// Tenant names the submitting tenant on the multi-tenant net
	// backend ("" selects the default tenant): jobs compete for
	// trackers under the tenant's fair-share weight and quotas
	// (Config.Quotas). Backends that run one job at a time have no
	// scheduling contention to arbitrate and accept any tenant label.
	Tenant string
}

// Validate checks the job is well-formed independent of backend.
func (j *Job) Validate() error {
	switch j.Kind {
	case Wordcount, Sort, Encrypt:
		if len(j.Input) == 0 && j.Source == nil && j.InputBytes <= 0 {
			return fmt.Errorf("engine: %s job needs Input, Source or InputBytes", j.Kind)
		}
		if j.Kind == Encrypt {
			if j.Key == nil {
				return fmt.Errorf("engine: encrypt job needs a 16-byte Key")
			}
			if _, err := kernels.NewCipher(j.Key); err != nil {
				return fmt.Errorf("engine: encrypt job: %w", err)
			}
		}
	case Pi:
		if j.Samples <= 0 {
			return fmt.Errorf("engine: pi job needs positive Samples, got %d", j.Samples)
		}
		if j.Tasks < 0 {
			return fmt.Errorf("engine: pi job has negative Tasks")
		}
	default:
		return fmt.Errorf("engine: unknown job kind %q", j.Kind)
	}
	return nil
}

// title returns the job's display name.
func (j *Job) title() string {
	if j.Name != "" {
		return j.Name
	}
	return string(j.Kind)
}

// iv returns the job's IV, defaulting to a zero IV.
func (j *Job) iv() []byte {
	if j.IV != nil {
		return j.IV
	}
	return make([]byte, 16)
}

// KV is one reduced key/value pair.
type KV struct {
	Key   string
	Value string
}

// SimStats carries the simulated backend's modelled runtime metrics —
// the quantities the paper's figures are built from.
type SimStats struct {
	// MakespanSeconds is the modelled job duration as the user sees
	// it; SetupAdjustedSeconds excludes job setup/cleanup.
	MakespanSeconds      float64
	SetupAdjustedSeconds float64
	// Tasks counts completed task reports, Attempts every launched
	// attempt (incl. speculative and re-run).
	Tasks    int
	Attempts int
	// LocalReads/RemoteReads count record fetches by locality.
	LocalReads  int64
	RemoteReads int64
	// InputBytes is the modelled input volume.
	InputBytes int64
	// EnergyJoules is the modelled cluster energy over the job span.
	EnergyJoules float64
	// SlotUtilization is the busy fraction of map-slot time.
	SlotUtilization float64
	// Timeline is a rendered task Gantt chart (when requested).
	Timeline string
}

// Result is a finished job. Which fields are set depends on the kind:
// Pairs for Wordcount, Bytes for Sort and Encrypt, Pi/Inside/Total for
// Pi. Sim is set by the simulated backend only.
type Result struct {
	Backend string
	Elapsed time.Duration

	Pairs []KV   // Wordcount: sorted by key
	Bytes []byte // Sort: merged sorted records; Encrypt: ciphertext (nil when Job.Sink streamed it)

	// OutputBytes counts the bytes streamed to Job.Sink (0 when the
	// job materialized Bytes instead).
	OutputBytes int64

	Pi     float64 // Pi estimate
	Inside int64   // samples inside the quarter circle
	Total  int64   // samples drawn

	// TaskCounts reports winning task attempts per worker on the
	// dynamically scheduled backends (live and net) — the per-worker
	// imbalance a heterogeneous cluster produces. Nil elsewhere.
	TaskCounts map[string]int

	// Devices maps worker ID to its device kind ("cell" or "host") on
	// the net backend — read alongside TaskCounts, it shows how
	// completions skew toward accelerated nodes. Nil elsewhere.
	Devices map[string]string

	// LocalReads/RackReads/RemoteReads count DFS block fetches by
	// locality tier over the job's span on the net backend: served by
	// the tracker's co-located DataNode, by a same-rack DataNode, or
	// across racks. Cluster-wide counter deltas — concurrent jobs'
	// fetches land in whichever result collects first. Zero elsewhere
	// (the sim backend's modelled locality lives in Sim).
	LocalReads  int64
	RackReads   int64
	RemoteReads int64

	Sim *SimStats
}

// Runner executes engine jobs on one backend. Runners are not
// goroutine-safe unless documented; Close releases cluster resources.
type Runner interface {
	// Backend reports the registered backend name.
	Backend() string
	// Run executes one job. Jobs a backend cannot express return an
	// error wrapping ErrUnsupported.
	Run(job *Job) (*Result, error)
	// Close tears the backend's cluster down.
	Close() error
}

// piTasks expands a job's Pi parameters into the canonical task list
// (kernels.SplitSamples — the single copy of the decomposition every
// backend executes, which is what makes Pi results bit-identical
// across runners).
func piTasks(samples int64, n int, seed uint64) []kernels.SampleSplit {
	if seed == 0 {
		seed = DefaultSeed
	}
	return kernels.SplitSamples(samples, n, seed)
}

// normalizeTasks resolves a Pi job's task count against the worker
// count: the paper runs two map slots per node.
func normalizeTasks(tasks, workers int) int {
	if tasks > 0 {
		return tasks
	}
	n := workers * 2
	if n < 1 {
		n = 1
	}
	return n
}

// pairsFromCounts converts a word→count table to sorted KV pairs, the
// canonical Wordcount result representation.
func pairsFromCounts(counts map[string]int64) []KV {
	pairs := make([]KV, 0, len(counts))
	for w, n := range counts {
		pairs = append(pairs, KV{Key: w, Value: fmt.Sprintf("%d", n)})
	}
	sortKVs(pairs)
	return pairs
}

// sortKVs orders pairs by key.
func sortKVs(pairs []KV) {
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].Key < pairs[j].Key })
}

// SyntheticReader streams the deterministic pattern dataset used when
// a job names a size instead of bytes — the same bytes every backend
// generates for a given n, produced incrementally so a 100 GB
// synthetic job costs O(buffer) memory to feed.
func SyntheticReader(n int64) io.Reader {
	return &syntheticReader{remaining: n}
}

type syntheticReader struct {
	off       int64
	remaining int64
}

// Read implements io.Reader with the generator pattern
// byte(i*131 + i>>10) at absolute offset i.
func (r *syntheticReader) Read(p []byte) (int, error) {
	if r.remaining <= 0 {
		return 0, io.EOF
	}
	n := len(p)
	if int64(n) > r.remaining {
		n = int(r.remaining)
	}
	for i := 0; i < n; i++ {
		j := r.off + int64(i)
		p[i] = byte(int(j)*131 + int(j)>>10)
	}
	r.off += int64(n)
	r.remaining -= int64(n)
	return n, nil
}

// syntheticInput materializes the generator's output (small sizes
// only; streaming callers use SyntheticReader directly).
func syntheticInput(n int64) []byte {
	data, _ := io.ReadAll(SyntheticReader(n))
	return data
}

// inputReader returns the job's data stream: Source, else Input, else
// the synthetic generator. Call at most once per Run — a Source is
// consumed by reading.
func (j *Job) inputReader() io.Reader {
	if len(j.Input) > 0 {
		return bytes.NewReader(j.Input)
	}
	if j.Source != nil {
		return j.Source
	}
	return SyntheticReader(j.InputBytes)
}

// materializeInput returns the whole dataset as bytes, reading Source
// when the job streams. For backends that need the full buffer
// (cellmr's single-node framework, the simulator's functional pass).
func (j *Job) materializeInput() ([]byte, error) {
	if len(j.Input) > 0 {
		return j.Input, nil
	}
	if j.Source != nil {
		return io.ReadAll(j.Source)
	}
	return syntheticInput(j.InputBytes), nil
}
