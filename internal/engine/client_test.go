package engine

import (
	"errors"
	"testing"
	"time"

	"hetmr/internal/netmr"
)

// The engine Client: Open once, submit many, Close — native on the
// net backend's job service, emulated (serialized) elsewhere.

func TestClientNetSubmitConcurrentTenants(t *testing.T) {
	c, err := Open("net", Config{Workers: 2, Quotas: map[string]Quota{
		"t1": {Weight: 1},
		"t2": {Weight: 2},
	}})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	job := func(tenant string) *Job {
		return &Job{Kind: Pi, Samples: 200_000, Tasks: 8, Seed: 11, Tenant: tenant}
	}
	var handles []*JobHandle
	for _, tenant := range []string{"t1", "t2", "t1"} {
		h, err := c.Submit(job(tenant))
		if err != nil {
			t.Fatalf("submit as %s: %v", tenant, err)
		}
		handles = append(handles, h)
	}
	ref, err := c.Run(job("t2"))
	if err != nil {
		t.Fatal(err)
	}
	for i, h := range handles {
		res, err := h.Wait()
		if err != nil {
			t.Fatalf("handle %d: %v", i, err)
		}
		if res.Inside != ref.Inside || res.Total != ref.Total {
			t.Errorf("handle %d: %d/%d inside, want %d/%d (concurrent result diverged)",
				i, res.Inside, res.Total, ref.Inside, ref.Total)
		}
		// Wait is idempotent: a second collection returns the same result.
		again, err := h.Wait()
		if err != nil || again != res {
			t.Errorf("handle %d: second Wait = (%v, %v), want the first result back", i, again, err)
		}
	}
}

func TestClientNetKillAndQuota(t *testing.T) {
	// Slow every task so the victim is reliably mid-flight when killed.
	delays := []time.Duration{20 * time.Millisecond, 20 * time.Millisecond}
	c, err := Open("net", Config{
		Workers:     2,
		FaultDelays: delays,
		Quotas:      map[string]Quota{"capped": {MaxJobs: 1}},
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h, err := c.Submit(&Job{Kind: Pi, Samples: 100_000, Tasks: 20, Tenant: "capped"})
	if err != nil {
		t.Fatal(err)
	}
	// The engine surfaces the runtime's typed admission rejection.
	if _, err := c.Submit(&Job{Kind: Pi, Samples: 1000, Tenant: "capped"}); !errors.Is(err, netmr.ErrQuotaExceeded) {
		t.Fatalf("submit at MaxJobs=1: error %v, want netmr.ErrQuotaExceeded", err)
	}
	if st, err := h.Status(); err != nil || st.Done {
		t.Fatalf("status before kill = (%+v, %v), want a live job", st, err)
	}
	if err := h.Kill(); err != nil {
		t.Fatal(err)
	}
	if _, err := h.Wait(); err == nil {
		t.Error("killed job's Wait returned success, want killed error")
	}
	// The kill freed the tenant's job slot.
	if _, err := c.Submit(&Job{Kind: Pi, Samples: 1000, Tenant: "capped"}); err != nil {
		t.Fatalf("submit after kill: %v", err)
	}
}

func TestClientFallbackSerializedSubmit(t *testing.T) {
	c, err := Open("sim", Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	h1, err := c.Submit(&Job{Kind: Pi, Samples: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	h2, err := c.Submit(&Job{Kind: Pi, Samples: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	r1, err := h1.Wait()
	if err != nil {
		t.Fatal(err)
	}
	r2, err := h2.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if r1.Inside != r2.Inside || r1.Total != r2.Total {
		t.Errorf("identical jobs diverged: %d/%d vs %d/%d", r1.Inside, r1.Total, r2.Inside, r2.Total)
	}
	// No job service behind sim: lifecycle extras refuse honestly.
	if err := h1.Kill(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("fallback Kill error %v, want ErrUnsupported", err)
	}
	if _, err := h1.Status(); !errors.Is(err, ErrUnsupported) {
		t.Errorf("fallback Status error %v, want ErrUnsupported", err)
	}
}
