package engine

import (
	"errors"
	"strings"
	"testing"
)

func TestBackendsRegistered(t *testing.T) {
	got := Backends()
	want := []string{"cellmr", "live", "net", "sim"}
	if len(got) != len(want) {
		t.Fatalf("Backends() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Backends() = %v, want %v (sorted)", got, want)
		}
	}
}

func TestNewUnknownBackend(t *testing.T) {
	_, err := New("hadoop-on-mars", Config{})
	if err == nil {
		t.Fatal("want error for unknown backend")
	}
	if !errors.Is(err, ErrUnknownBackend) {
		t.Fatalf("error %v does not wrap ErrUnknownBackend", err)
	}
	// The error must name the known backends so callers can self-serve.
	for _, name := range []string{"live", "sim", "net"} {
		if !strings.Contains(err.Error(), name) {
			t.Fatalf("error %q does not list backend %q", err, name)
		}
	}
}

func TestRegisterDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate Register did not panic")
		}
	}()
	Register("live", func(Config) (Runner, error) { return nil, nil })
}

func TestConfigValidation(t *testing.T) {
	cases := []Config{
		{Workers: -1},
		{BlockSize: -5},
		{Mapper: "fortran"},
		{AccelFraction: 1.5},
	}
	for _, cfg := range cases {
		if _, err := New("live", cfg); err == nil {
			t.Errorf("config %+v accepted, want error", cfg)
		}
	}
}

func TestJobValidate(t *testing.T) {
	bad := []*Job{
		{Kind: "frobnicate"},
		{Kind: Wordcount},                   // no input
		{Kind: Pi},                          // no samples
		{Kind: Encrypt, Input: []byte("x")}, // no key
		{Kind: Encrypt, Input: []byte("x"), Key: []byte("short")}, // bad key
	}
	for _, j := range bad {
		if err := j.Validate(); err == nil {
			t.Errorf("job %+v validated, want error", j)
		}
	}
	good := []*Job{
		{Kind: Wordcount, Input: []byte("hello world")},
		{Kind: Sort, InputBytes: 1000},
		{Kind: Pi, Samples: 100},
		{Kind: Encrypt, Input: []byte("x"), Key: []byte("0123456789abcdef")},
	}
	for _, j := range good {
		if err := j.Validate(); err != nil {
			t.Errorf("job %+v rejected: %v", j, err)
		}
	}
}

func TestUnsupportedKind(t *testing.T) {
	r, err := New("cellmr", Config{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = r.Run(&Job{Kind: Wordcount, Input: []byte("a b c")})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("cellmr wordcount error %v, want ErrUnsupported", err)
	}
}

func TestPiTasksCanonicalDecomposition(t *testing.T) {
	tasks := piTasks(10, 4, 0)
	if len(tasks) != 4 {
		t.Fatalf("got %d tasks", len(tasks))
	}
	// 10 over 4: 3,3,2,2.
	wantSamples := []int64{3, 3, 2, 2}
	var total int64
	for i, task := range tasks {
		if task.Samples != wantSamples[i] {
			t.Fatalf("task %d: %d samples, want %d", i, task.Samples, wantSamples[i])
		}
		total += task.Samples
	}
	if total != 10 {
		t.Fatalf("decomposition drew %d samples, want 10", total)
	}
	// Distinct seed domains.
	if tasks[0].Seed == tasks[1].Seed {
		t.Fatal("tasks share a seed domain")
	}
}
