package engine

import (
	"errors"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/netmr"
)

// The accelerator conformance contract on the distributed runtime:
// whatever mix of accelerated and host trackers a config selects, and
// whichever mapper variant runs, every job kind must produce results
// bit-identical to the all-host reference — AccelFraction and Mapper
// are performance knobs, never semantics knobs.

func TestNetAcceleratorConformance(t *testing.T) {
	variants := []struct {
		name   string
		mapper string
		accel  float64
	}{
		{"java-accel0", "java", NoAcceleration}, // reference: all-host
		{"cell-accel0", "cell", NoAcceleration},
		{"cell-accel0.5", "cell", 0.5},
		{"cell-accel1", "cell", 1.0},
	}
	type runKey struct{ variant, kind string }
	results := make(map[runKey]*Result)
	for _, v := range variants {
		cfg := conformanceConfig()
		cfg.Mapper = v.mapper
		cfg.AccelFraction = v.accel
		r, err := New("net", cfg)
		if err != nil {
			t.Fatalf("%s: New: %v", v.name, err)
		}
		for _, job := range conformanceJobs() {
			res, err := r.Run(job)
			if err != nil {
				r.Close()
				t.Fatalf("%s: %s: %v", v.name, job.Kind, err)
			}
			results[runKey{v.name, string(job.Kind)}] = res
		}
		// The tracker device profile must match the requested fraction.
		frac, err := ResolveAccelFraction(v.accel)
		if err != nil {
			t.Fatal(err)
		}
		wantCell := int(frac*float64(cfg.Workers) + 0.5)
		cells := 0
		for _, kind := range results[runKey{v.name, "pi"}].Devices {
			if kind == netmr.DeviceCell {
				cells++
			}
		}
		if cells != wantCell {
			t.Errorf("%s: %d accelerated trackers in Devices, want %d", v.name, cells, wantCell)
		}
		// A fully accelerated cell-mapper cluster must actually offload.
		if v.mapper == "cell" && frac == 1 {
			var offloaded int64
			for _, tt := range r.(*netRunner).Cluster().TTs {
				offloaded += tt.AccelTasks()
			}
			if offloaded == 0 {
				t.Errorf("%s: no task attempt ran on an accelerator", v.name)
			}
		}
		r.Close()
	}
	for _, job := range conformanceJobs() {
		ref := results[runKey{variants[0].name, string(job.Kind)}]
		for _, v := range variants[1:] {
			res := results[runKey{v.name, string(job.Kind)}]
			if err := SameResult(job.Kind, ref, res); err != nil {
				t.Errorf("%s vs %s on %s: %v", variants[0].name, v.name, job.Kind, err)
			}
		}
	}
}

// TestNoSilentConfigDrop pins the config-honesty contract: a backend
// handed a knob it cannot honour must refuse with ErrUnsupported
// instead of silently running a different job.
func TestNoSilentConfigDrop(t *testing.T) {
	unsupported := []struct {
		backend string
		cfg     Config
	}{
		{"live", Config{Mapper: "empty"}},
		{"net", Config{Mapper: "empty"}},
		{"cellmr", Config{Mapper: "java"}},
		{"cellmr", Config{Mapper: "empty"}},
		{"cellmr", Config{AccelFraction: 0.5}},
		{"cellmr", Config{AccelFraction: NoAcceleration}},
		{"live", Config{Quotas: map[string]Quota{"a": {MaxJobs: 1}}}},
		{"sim", Config{Quotas: map[string]Quota{"a": {MaxJobs: 1}}}},
		{"cellmr", Config{Mapper: "cell", Quotas: map[string]Quota{"a": {MaxJobs: 1}}}},
	}
	for _, tc := range unsupported {
		r, err := New(tc.backend, tc.cfg)
		if err == nil {
			r.Close()
			t.Errorf("%s accepted %+v, want ErrUnsupported", tc.backend, tc.cfg)
			continue
		}
		if !errors.Is(err, ErrUnsupported) {
			t.Errorf("%s on %+v: error %v does not wrap ErrUnsupported", tc.backend, tc.cfg, err)
		}
	}
	// The knobs remain honoured where support exists.
	supported := []struct {
		backend string
		cfg     Config
	}{
		{"sim", Config{Mapper: "empty"}},
		{"net", Config{Workers: 1, Mapper: "java", AccelFraction: 0.5}},
		{"net", Config{Workers: 1, Quotas: map[string]Quota{"a": {Weight: 2, MaxJobs: 4}}}},
		{"cellmr", Config{Mapper: "cell"}},
	}
	for _, tc := range supported {
		r, err := New(tc.backend, tc.cfg)
		if err != nil {
			t.Errorf("%s rejected %+v: %v", tc.backend, tc.cfg, err)
			continue
		}
		r.Close()
	}
}

// TestNetConcurrentRuns exercises one net runner from several
// goroutines (run under -race in CI): each job must stage its input
// under a distinct DFS path and come back with its own counts — a
// shared-sequence race would collide staging paths and cross-corrupt
// inputs.
func TestNetConcurrentRuns(t *testing.T) {
	r, err := New("net", Config{Workers: 2, BlockSize: 1000})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	const goroutines = 4
	var wg sync.WaitGroup
	errs := make([]error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Distinct corpus per goroutine, so a staging collision
			// shows up as a wrong count, not just a race report.
			corpus := []byte(strings.Repeat(fmt.Sprintf("goroutine%d word ", g), 300))
			res, err := r.Run(&Job{Kind: Wordcount, Input: corpus})
			if err != nil {
				errs[g] = err
				return
			}
			want := make(map[string]int64)
			for off := 0; off < len(corpus); off += 1000 {
				end := off + 1000
				if end > len(corpus) {
					end = len(corpus)
				}
				for w, n := range kernels.WordCount(corpus[off:end]) {
					want[w] += n
				}
			}
			if len(res.Pairs) != len(want) {
				errs[g] = fmt.Errorf("goroutine %d: %d distinct words, want %d", g, len(res.Pairs), len(want))
				return
			}
			for _, kv := range res.Pairs {
				if fmt.Sprintf("%d", want[kv.Key]) != kv.Value {
					errs[g] = fmt.Errorf("goroutine %d: word %q = %s, want %d", g, kv.Key, kv.Value, want[kv.Key])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Error(err)
		}
	}
}

// TestResolveAccelFraction pins the shared resolver's boundary
// behaviour — the one copy of the "0 means default, NoAcceleration
// means none" convention.
func TestResolveAccelFraction(t *testing.T) {
	cases := []struct {
		in   float64
		want float64
		ok   bool
	}{
		{0, 1, true},
		{NoAcceleration, 0, true},
		{1, 1, true},
		{0.5, 0.5, true},
		{0.0001, 0.0001, true},
		{-0.3, 0, false},
		{1.0001, 0, false},
		{math.NaN(), 0, false}, // every NaN comparison is false; must not slip through
	}
	for _, tc := range cases {
		got, err := ResolveAccelFraction(tc.in)
		if tc.ok != (err == nil) {
			t.Errorf("ResolveAccelFraction(%g): err = %v, want ok=%v", tc.in, err, tc.ok)
			continue
		}
		if tc.ok && got != tc.want {
			t.Errorf("ResolveAccelFraction(%g) = %g, want %g", tc.in, got, tc.want)
		}
	}
}

// TestSpeedHintsFollowConfigConvention pins HeterogeneousSpeedHints to
// the shared resolver: the Config zero value means fully accelerated,
// NoAcceleration means none — the historical reading of 0 as "no
// accelerators" produced hints contradicting the cluster the same
// Config built.
func TestSpeedHintsFollowConfigConvention(t *testing.T) {
	allAccel := HeterogeneousSpeedHints(4, 0)
	for i, h := range allAccel {
		if h <= 1 {
			t.Errorf("default fraction: worker %d hint %g, want the accelerated ratio", i, h)
		}
	}
	none := HeterogeneousSpeedHints(4, NoAcceleration)
	for i, h := range none {
		if h != 1 {
			t.Errorf("NoAcceleration: worker %d hint %g, want 1", i, h)
		}
	}
	if got := HeterogeneousSpeedHints(4, 2.5); got != nil {
		t.Errorf("out-of-range fraction produced hints %v, want nil", got)
	}
}

// TestNetDeviceKindsFromSpeedHints checks the device profile follows
// AccelFraction, that perfmodel-derived hints for the same fraction
// are accepted as consistent, and that contradictory hints fail loudly
// instead of silently rebuilding different hardware than live would.
func TestNetDeviceKindsFromSpeedHints(t *testing.T) {
	cfg, err := Config{Workers: 4, AccelFraction: 0.5}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	fromFraction, err := netDeviceKinds(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.SpeedHints = HeterogeneousSpeedHints(4, 0.5)
	withHints, err := netDeviceKinds(cfg)
	if err != nil {
		t.Fatalf("consistent hints rejected: %v", err)
	}
	want := []string{netmr.DeviceCell, netmr.DeviceCell, netmr.DeviceHost, netmr.DeviceHost}
	for i := range want {
		if fromFraction[i] != want[i] || withHints[i] != want[i] {
			t.Fatalf("device kinds: fraction %v, hints %v, want %v", fromFraction, withHints, want)
		}
	}
	// A hint claiming accelerated-class throughput on a worker the
	// fraction leaves host-only must be an error, not a silent pick.
	if _, err := New("net", Config{Workers: 4, AccelFraction: 0.5,
		SpeedHints: []float64{27.5, 1, 1, 27.5}}); err == nil {
		t.Error("contradictory SpeedHints/AccelFraction accepted")
	}
	// The converse — a low hint on a device-equipped worker — models a
	// straggling accelerated node and stays valid (the straggler
	// conformance suite relies on it).
	r, err := New("net", Config{Workers: 2, SpeedHints: []float64{0.1, 1}})
	if err != nil {
		t.Fatalf("straggler hints on accelerated workers rejected: %v", err)
	}
	r.Close()
}

// TestJobTimeoutConfig covers the timeout knob: negative is rejected
// at the API boundary, zero selects the default, and a tiny deadline
// actually bounds Run instead of the old hard-coded two minutes.
func TestJobTimeoutConfig(t *testing.T) {
	if _, err := New("net", Config{JobTimeout: -time.Second}); err == nil {
		t.Error("negative JobTimeout accepted")
	}
	cfg, err := Config{}.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.JobTimeout != DefaultJobTimeout {
		t.Errorf("default JobTimeout = %v, want %v", cfg.JobTimeout, DefaultJobTimeout)
	}
	r, err := New("net", Config{Workers: 1, JobTimeout: time.Nanosecond})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = r.Run(&Job{Kind: Pi, Samples: 1_000_000, Tasks: 8})
	if err == nil || !strings.Contains(err.Error(), "timed out") {
		t.Errorf("1ns JobTimeout: err = %v, want a timeout", err)
	}
}

// TestNegativeReducersRejected covers the partition-count boundary:
// the engine rejects a negative Config.Reducers at construction, so
// the divide-by-zero-prone partition hash can never see it.
func TestNegativeReducersRejected(t *testing.T) {
	if _, err := New("net", Config{Reducers: -3}); err == nil {
		t.Error("negative Reducers accepted")
	}
}
