package engine

import (
	"bytes"
	"errors"
	"testing"

	"hetmr/internal/kernels"
)

// The streaming conformance suite: the same job fed through Job.Source
// (with output through Job.Sink for byte kinds) and bounded by a spill
// watermark must produce results bit-identical to the materialized
// Input path on every backend. Streaming changes where bytes live —
// never what they are.

// streamingConfig is conformanceConfig with the data plane bounded: a
// watermark far below the test datasets plus frame compression, so
// every layer's spill path actually runs.
func streamingConfig(t *testing.T) Config {
	cfg := conformanceConfig()
	cfg.SpillMemBytes = 10_000
	cfg.SpillDir = t.TempDir()
	cfg.SpillCompress = true
	return cfg
}

// runStreaming executes kind on backend with the dataset arriving via
// Source and (for byte kinds) leaving via Sink, returning a Result
// shaped like the materialized path for SameResult.
func runStreaming(t *testing.T, backend string, cfg Config, kind Kind, data []byte) (*Result, bool) {
	t.Helper()
	job := &Job{Kind: kind, Source: bytes.NewReader(data)}
	var sink bytes.Buffer
	if kind == Sort || kind == Encrypt {
		job.Sink = &sink
	}
	if kind == Encrypt {
		job.Key = []byte("conformance-key!")
		job.IV = []byte("conformance-iv!!")
	}
	r, err := New(backend, cfg)
	if err != nil {
		t.Fatalf("%s: New: %v", backend, err)
	}
	defer r.Close()
	res, err := r.Run(job)
	if errors.Is(err, ErrUnsupported) {
		return nil, false
	}
	if err != nil {
		t.Fatalf("%s: streaming %s: %v", backend, kind, err)
	}
	if job.Sink != nil {
		if res.Bytes != nil {
			t.Fatalf("%s: %s materialized Bytes despite a Sink", backend, kind)
		}
		if res.OutputBytes != int64(sink.Len()) {
			t.Fatalf("%s: %s OutputBytes %d, sink received %d", backend, kind, res.OutputBytes, sink.Len())
		}
		res.Bytes = sink.Bytes()
	}
	return res, true
}

func TestStreamingConformance(t *testing.T) {
	datasets := map[Kind][]byte{
		Wordcount: corpus(),
		Sort:      kernels.GenerateSortRecords(2009, 1_000),
		Encrypt:   corpus()[:20_000],
	}
	for _, kind := range []Kind{Wordcount, Sort, Encrypt} {
		kind := kind
		t.Run(string(kind), func(t *testing.T) {
			data := datasets[kind]
			// Reference: the materialized path on the live backend
			// with no spilling — the historical configuration.
			job := &Job{Kind: kind, Input: data}
			if kind == Encrypt {
				job.Key = []byte("conformance-key!")
				job.IV = []byte("conformance-iv!!")
			}
			ref, ok := runOn(t, "live", job)
			if !ok {
				t.Fatal("live cannot run the reference job")
			}
			for _, backend := range []string{"live", "net", "sim", "cellmr"} {
				res, ok := runStreaming(t, backend, streamingConfig(t), kind, data)
				if !ok {
					continue // backend cannot express the kind
				}
				if err := SameResult(kind, ref, res); err != nil {
					t.Fatalf("streaming %s on %s diverges from materialized live: %v", kind, backend, err)
				}
			}
		})
	}
}

// TestSyntheticGeneratorConformance pins the InputBytes path: the
// functional backends now consume the deterministic generator
// incrementally, and all of them — including the simulator's
// functional pass at this small scale — agree bit for bit.
func TestSyntheticGeneratorConformance(t *testing.T) {
	cfg := streamingConfig(t)
	job := func() *Job { return &Job{Kind: Wordcount, InputBytes: 30_000} }
	ref, ok := runOn(t, "live", job())
	if !ok || len(ref.Pairs) == 0 {
		t.Fatal("live produced no pairs for a synthetic dataset")
	}
	for _, backend := range []string{"net", "sim"} {
		r, err := New(backend, cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := r.Run(job())
		r.Close()
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		if err := SameResult(Wordcount, ref, res); err != nil {
			t.Fatalf("synthetic wordcount on %s: %v", backend, err)
		}
	}
}

// TestSyntheticReaderMatchesMaterialized pins the generator itself.
func TestSyntheticReaderMatchesMaterialized(t *testing.T) {
	want := syntheticInput(10_000)
	var got bytes.Buffer
	buf := make([]byte, 777) // odd chunk size crosses every boundary shape
	r := SyntheticReader(10_000)
	for {
		n, err := r.Read(buf)
		got.Write(buf[:n])
		if err != nil {
			break
		}
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("SyntheticReader diverges from the materialized generator")
	}
}

// TestSortShapeRejectedAtSubmit pins the API-boundary validation: a
// sort whose block size would split records errors at Run on every
// backend instead of silently mis-sorting.
func TestSortShapeRejectedAtSubmit(t *testing.T) {
	cfg := Config{Workers: 2, BlockSize: 1_024} // not a multiple of 100
	data := kernels.GenerateSortRecords(1, 50)
	for _, backend := range []string{"live", "net", "sim"} {
		r, err := New(backend, cfg)
		if err != nil {
			t.Fatalf("%s: %v", backend, err)
		}
		_, err = r.Run(&Job{Kind: Sort, Input: data})
		r.Close()
		if err == nil {
			t.Fatalf("%s accepted a sort with block size 1024", backend)
		}
	}
	// Torn inputs are rejected too.
	r, err := New("live", Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := r.Run(&Job{Kind: Sort, Input: data[:150]}); err == nil {
		t.Fatal("live accepted a sort input that is not whole records")
	}
	if _, err := r.Run(&Job{Kind: Sort, InputBytes: 1_050}); err == nil {
		t.Fatal("live accepted a synthetic sort size that is not whole records")
	}
}

// TestSinkRejectedForNonByteKinds pins that a Sink on wordcount or pi
// is an error, never a silently dropped knob.
func TestSinkRejectedForNonByteKinds(t *testing.T) {
	r, err := New("live", Config{Workers: 1})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	var sink bytes.Buffer
	if _, err := r.Run(&Job{Kind: Wordcount, Input: []byte("a b"), Sink: &sink}); err == nil {
		t.Fatal("wordcount with a Sink accepted")
	}
	if _, err := r.Run(&Job{Kind: Pi, Samples: 100, Sink: &sink}); err == nil {
		t.Fatal("pi with a Sink accepted")
	}
}
