package engine

import (
	"fmt"
	"time"

	"hetmr/internal/cellbe"
	"hetmr/internal/cellmr"
	"hetmr/internal/kernels"
	"hetmr/internal/perfmodel"
)

// cellmrRunner executes jobs on the node-level Cell MapReduce
// framework (internal/cellmr): one chip, SPE workers, the PPE staging
// copy the paper's Figure 2 charges the framework for. It is a
// single-node backend — Workers is ignored, and the cluster-level
// scheduling knobs (Speculative, MaxAttempts, SpeedHints, FaultDelays)
// are accepted but inert: the framework's intra-chip block
// distribution is already dynamic (SPEs pull 4 KB blocks), and there
// is no second node to steal from or speculate on. Its fixed-size KV
// records cannot express string-keyed or record-merge jobs, so only
// Encrypt (the framework's RunStream mode) is supported.
type cellmrRunner struct {
	cfg Config
	fw  *cellmr.Framework
}

func init() {
	// The type comment above spells out why the cluster-level knobs
	// are inert on a single-node framework; the directives make each
	// acknowledged drop checkable instead of prose.
	//hetlint:configdrop-ok cellmr Config.Workers single node: the chip is the whole cluster
	//hetlint:configdrop-ok cellmr Config.MappersPerNode SPE count is fixed by the hardware model (perfmodel.SPEsPerCell)
	//hetlint:configdrop-ok cellmr Config.Reducers RunStream has no reduce phase; only Encrypt is accepted
	//hetlint:configdrop-ok cellmr Config.Speculative no second node to speculate on
	//hetlint:configdrop-ok cellmr Config.MaxAttempts intra-chip blocks are retried by the framework, not re-scheduled
	//hetlint:configdrop-ok cellmr Config.SpeedHints SPEs are homogeneous by construction
	//hetlint:configdrop-ok cellmr Config.FaultDelays live-cluster fault injection; the chip model has no tracker to delay
	//hetlint:configdrop-ok cellmr Config.JobTimeout synchronous single-node run; nothing remote to abandon
	//hetlint:configdrop-ok cellmr Config.SpillMemBytes the PPE staging buffer is the framework's whole memory model
	//hetlint:configdrop-ok cellmr Config.SpillDir no spill layer on the single-node framework
	//hetlint:configdrop-ok cellmr Config.SpillCompress no spill layer on the single-node framework
	//hetlint:configdrop-ok cellmr Config.Codec no wire layer inside one chip
	//hetlint:configdrop-ok cellmr Config.Racks single node: there is no second rack
	//hetlint:configdrop-ok cellmr Config.RangePartition range routing reshapes the net shuffle plane; cellmr accepts only Encrypt and has no sort to partition
	//hetlint:configdrop-ok cellmr Job.Name job names label tracker/DFS state, which the framework does not keep
	//hetlint:configdrop-ok cellmr Job.Seed Seed shards Pi sampling; cellmr accepts only Encrypt
	//hetlint:configdrop-ok cellmr Job.Tenant tenancy is the net job service's concept; Quotas are already rejected below
	Register("cellmr", func(cfg Config) (Runner, error) {
		if cfg.Timeline {
			return nil, fmt.Errorf("%w: Timeline is rendered from the simulated JobTracker's task log and only exists on the sim backend", ErrUnsupported)
		}
		// The framework IS the accelerated path: a config asking for
		// the host mapper or a partially-accelerated cluster cannot be
		// honoured here, and silently running the fully-accelerated
		// single node instead would be a different job.
		if cfg.Mapper != "cell" {
			return nil, fmt.Errorf("%w: mapper %q on cellmr — the framework is the accelerated node runtime", ErrUnsupported, cfg.Mapper)
		}
		if cfg.AccelFraction != 1 {
			return nil, fmt.Errorf("%w: accelerated fraction %g on cellmr — the single-node framework is fully accelerated", ErrUnsupported, cfg.AccelFraction)
		}
		if len(cfg.Quotas) > 0 {
			return nil, fmt.Errorf("%w: per-tenant quotas only exist on the net backend's job service", ErrUnsupported)
		}
		fw, err := cellmr.New(cellbe.NewChip(0), perfmodel.SPEsPerCell, perfmodel.SPEBlockBytes)
		if err != nil {
			return nil, err
		}
		return &cellmrRunner{cfg: cfg, fw: fw}, nil
	})
}

// Backend implements Runner.
func (r *cellmrRunner) Backend() string { return "cellmr" }

// Close implements Runner.
func (r *cellmrRunner) Close() error { return nil }

// Framework exposes the underlying framework for staging/spill
// statistics.
func (r *cellmrRunner) Framework() *cellmr.Framework { return r.fw }

// Run implements Runner.
func (r *cellmrRunner) Run(job *Job) (*Result, error) {
	if err := r.cfg.validateJob(job); err != nil {
		return nil, err
	}
	if job.Kind != Encrypt {
		return nil, fmt.Errorf("%w: %s on cellmr", ErrUnsupported, job.Kind)
	}
	start := time.Now()
	// The single-node framework streams SPE-block by SPE-block inside
	// RunStream but works over one resident buffer — materialize a
	// streamed Source (cellmr is the node-level runtime, not the
	// above-RAM path).
	input, err := job.materializeInput()
	if err != nil {
		return nil, err
	}
	cipher, err := kernels.NewCipher(job.Key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(input))
	ctr := kernels.CTRBlockFuncFast(cipher, job.iv())
	if err := r.fw.RunStream(ctr, input, out); err != nil {
		return nil, err
	}
	res := &Result{Backend: r.Backend(), Elapsed: time.Since(start)}
	if job.Sink != nil {
		n, err := job.Sink.Write(out)
		if err != nil {
			return nil, err
		}
		res.OutputBytes = int64(n)
	} else {
		res.Bytes = out
	}
	return res, nil
}
