package engine

import (
	"fmt"
	"time"

	"hetmr/internal/cellbe"
	"hetmr/internal/cellmr"
	"hetmr/internal/kernels"
	"hetmr/internal/perfmodel"
)

// cellmrRunner executes jobs on the node-level Cell MapReduce
// framework (internal/cellmr): one chip, SPE workers, the PPE staging
// copy the paper's Figure 2 charges the framework for. It is a
// single-node backend — Workers is ignored, and the cluster-level
// scheduling knobs (Speculative, MaxAttempts, SpeedHints, FaultDelays)
// are accepted but inert: the framework's intra-chip block
// distribution is already dynamic (SPEs pull 4 KB blocks), and there
// is no second node to steal from or speculate on. Its fixed-size KV
// records cannot express string-keyed or record-merge jobs, so only
// Encrypt (the framework's RunStream mode) is supported.
type cellmrRunner struct {
	cfg Config
	fw  *cellmr.Framework
}

func init() {
	Register("cellmr", func(cfg Config) (Runner, error) {
		// The framework IS the accelerated path: a config asking for
		// the host mapper or a partially-accelerated cluster cannot be
		// honoured here, and silently running the fully-accelerated
		// single node instead would be a different job.
		if cfg.Mapper != "cell" {
			return nil, fmt.Errorf("%w: mapper %q on cellmr — the framework is the accelerated node runtime", ErrUnsupported, cfg.Mapper)
		}
		if cfg.AccelFraction != 1 {
			return nil, fmt.Errorf("%w: accelerated fraction %g on cellmr — the single-node framework is fully accelerated", ErrUnsupported, cfg.AccelFraction)
		}
		if len(cfg.Quotas) > 0 {
			return nil, fmt.Errorf("%w: per-tenant quotas only exist on the net backend's job service", ErrUnsupported)
		}
		fw, err := cellmr.New(cellbe.NewChip(0), perfmodel.SPEsPerCell, perfmodel.SPEBlockBytes)
		if err != nil {
			return nil, err
		}
		return &cellmrRunner{cfg: cfg, fw: fw}, nil
	})
}

// Backend implements Runner.
func (r *cellmrRunner) Backend() string { return "cellmr" }

// Close implements Runner.
func (r *cellmrRunner) Close() error { return nil }

// Framework exposes the underlying framework for staging/spill
// statistics.
func (r *cellmrRunner) Framework() *cellmr.Framework { return r.fw }

// Run implements Runner.
func (r *cellmrRunner) Run(job *Job) (*Result, error) {
	if err := r.cfg.validateJob(job); err != nil {
		return nil, err
	}
	if job.Kind != Encrypt {
		return nil, fmt.Errorf("%w: %s on cellmr", ErrUnsupported, job.Kind)
	}
	start := time.Now()
	// The single-node framework streams SPE-block by SPE-block inside
	// RunStream but works over one resident buffer — materialize a
	// streamed Source (cellmr is the node-level runtime, not the
	// above-RAM path).
	input, err := job.materializeInput()
	if err != nil {
		return nil, err
	}
	cipher, err := kernels.NewCipher(job.Key)
	if err != nil {
		return nil, err
	}
	out := make([]byte, len(input))
	ctr := kernels.CTRBlockFunc(cipher, job.iv())
	if err := r.fw.RunStream(ctr, input, out); err != nil {
		return nil, err
	}
	res := &Result{Backend: r.Backend(), Elapsed: time.Since(start)}
	if job.Sink != nil {
		n, err := job.Sink.Write(out)
		if err != nil {
			return nil, err
		}
		res.OutputBytes = int64(n)
	} else {
		res.Bytes = out
	}
	return res, nil
}
