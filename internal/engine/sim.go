package engine

import (
	"fmt"
	"io"
	"time"

	"hetmr/internal/cluster"
	"hetmr/internal/core"
	"hetmr/internal/experiments"
	"hetmr/internal/hadoop"
	"hetmr/internal/hdfs"
	"hetmr/internal/kernels"
	"hetmr/internal/workload"
)

// simRunner executes jobs against the calibrated performance model:
// the discrete-event Hadoop runtime (internal/hadoop on internal/sim)
// supplies the modelled makespan, locality, attempts and energy, while
// the functional result is computed in-process with the same kernels
// and the same block/task decomposition the other backends use — the
// simulator replays the architecture's timing, not its dataflow.
type simRunner struct {
	cfg Config
}

func init() {
	// The simulator models the architecture's timing, not its data
	// plane or its fault injection — these knobs configure machinery
	// that has no counterpart in the model. Each is acknowledged
	// rather than rejected: the conformance suite runs one Config
	// across every backend, and the model's own calibrated defaults
	// (perfmodel) stand in for what the knob would tune.
	//hetlint:configdrop-ok sim Config.Reducers the model's reduce phase uses calibrated ReduceSlots; Reducers shapes real shuffle output on functional backends
	//hetlint:configdrop-ok sim Config.MaxAttempts the simulated JobTracker re-runs lost tasks per its TrackerExpiry/speculation model
	//hetlint:configdrop-ok sim Config.SpeedHints heterogeneity comes from the calibrated perfmodel, not per-node hints
	//hetlint:configdrop-ok sim Config.FaultDelays fault injection on the model goes through KillNode-style hooks, not live-cluster task delays
	//hetlint:configdrop-ok sim Config.JobTimeout simulated virtual time completes in wall-milliseconds; there is no remote wait to bound
	//hetlint:configdrop-ok sim Config.SpillMemBytes the timing model has no real data plane to spill
	//hetlint:configdrop-ok sim Config.SpillDir the timing model has no real data plane to spill
	//hetlint:configdrop-ok sim Config.SpillCompress the timing model has no real data plane to spill
	//hetlint:configdrop-ok sim Config.Codec no real wire layer; rpc cost is modelled, not paid
	//hetlint:configdrop-ok sim Config.Racks locality on the model is the calibrated local/remote read split; there is no rack tier to place into
	//hetlint:configdrop-ok sim Config.RangePartition partition routing shapes real shuffle bytes; the timing model has none to route
	//hetlint:configdrop-ok sim Job.Tenant tenancy is the net job service's concept; Quotas are already rejected below
	Register("sim", func(cfg Config) (Runner, error) {
		if len(cfg.Quotas) > 0 {
			return nil, fmt.Errorf("%w: per-tenant quotas only exist on the net backend's job service", ErrUnsupported)
		}
		return &simRunner{cfg: cfg}, nil
	})
}

// Backend implements Runner.
func (r *simRunner) Backend() string { return "sim" }

// Close implements Runner.
func (r *simRunner) Close() error { return nil }

// blocks cuts data into the configured block size — the same
// boundaries the functional backends' DFS layers produce.
func (r *simRunner) blocks(data []byte) [][]byte {
	var out [][]byte
	bs := int(r.cfg.BlockSize)
	for off := 0; off < len(data); off += bs {
		end := off + bs
		if end > len(data) {
			end = len(data)
		}
		out = append(out, data[off:end])
	}
	return out
}

// maxFunctionalSyntheticBytes bounds how large a synthetic
// (InputBytes) dataset the simulated backend materializes for its
// functional result. Above it — the paper models 120 GB working sets
// — the run is timing-only, as it always was. Streaming (Source)
// jobs materialize whatever they carry: the caller chose to hand the
// modelling backend real bytes.
const maxFunctionalSyntheticBytes = 64 << 20

// functionalInput resolves the bytes the functional pass computes
// over: Input, a consumed Source, or a small synthetic dataset. nil
// means a modelled-size-only run.
func (r *simRunner) functionalInput(job *Job) ([]byte, error) {
	if len(job.Input) > 0 {
		return job.Input, nil
	}
	if job.Source != nil {
		return io.ReadAll(job.Source)
	}
	if job.InputBytes > 0 && job.InputBytes <= maxFunctionalSyntheticBytes {
		return syntheticInput(job.InputBytes), nil
	}
	return nil, nil
}

// functional computes the job's real result with the shared kernels.
// data is the resolved dataset for data kinds (nil: timing-only).
func (r *simRunner) functional(job *Job, data []byte, res *Result) error {
	switch job.Kind {
	case Wordcount:
		if len(data) == 0 {
			return nil // modelled size: timing-only run
		}
		counts := make(map[string]int64)
		for _, blk := range r.blocks(data) {
			for w, n := range kernels.WordCount(blk) {
				counts[w] += n
			}
		}
		res.Pairs = pairsFromCounts(counts)
	case Sort:
		if len(data) == 0 {
			return nil
		}
		blks := r.blocks(data)
		runs := make([][]byte, len(blks))
		for i, blk := range blks {
			runs[i] = append([]byte(nil), blk...)
			if err := kernels.SortRecords(runs[i]); err != nil {
				return err
			}
		}
		merged, err := kernels.MergeSortedRuns(runs)
		if err != nil {
			return err
		}
		res.Bytes = merged
	case Encrypt:
		if len(data) == 0 {
			return nil
		}
		cipher, err := kernels.NewCipher(job.Key)
		if err != nil {
			return err
		}
		out := make([]byte, len(data))
		kernels.CTRStreamFast(cipher, job.iv(), 0, out, data)
		res.Bytes = out
	case Pi:
		if job.Samples > maxFunctionalPiSamples {
			return nil // paper-scale sweep: timing-only run
		}
		var inside, total int64
		for _, t := range piTasks(job.Samples, normalizeTasks(job.Tasks, r.cfg.Workers), job.Seed) {
			inside += kernels.CountInside(t.Seed, t.Samples)
			total += t.Samples
		}
		res.Inside, res.Total = inside, total
		res.Pi = kernels.EstimatePi(inside, total)
	}
	return nil
}

// maxFunctionalPiSamples bounds how many Monte Carlo samples the
// simulated backend actually draws. Above it — the paper sweeps up to
// 10^12 — the run is timing-only, exactly as data jobs given a
// paper-scale synthetic size are: the simulator's duty is the model,
// and really sampling at that scale would take hours.
const maxFunctionalPiSamples = 200_000_000

// mapperFor resolves the configured mapper variant for the job kind.
// Data kinds use the paper's data-intensive (AES) cost calibration;
// Pi uses the CPU-intensive calibration.
func (r *simRunner) mapperFor(kind Kind) (func(*cluster.Node) hadoop.Mapper, error) {
	data := kind != Pi
	switch r.cfg.Mapper {
	case "java":
		if data {
			return hadoop.StaticMapperFor(hadoop.JavaAESMapper{}), nil
		}
		return hadoop.StaticMapperFor(hadoop.JavaPiMapper{}), nil
	case "cell":
		if data {
			return hadoop.AcceleratedMapperFor(hadoop.CellAESMapper{}, hadoop.JavaAESMapper{}), nil
		}
		return hadoop.AcceleratedMapperFor(hadoop.CellPiMapper{}, hadoop.JavaPiMapper{}), nil
	case "empty":
		return hadoop.StaticMapperFor(hadoop.EmptyMapper{}), nil
	}
	return nil, fmt.Errorf("engine: unknown mapper variant %q", r.cfg.Mapper)
}

// buildSplits lays the job's input out on the simulated DFS. data is
// the resolved dataset (nil: modelled size only).
func (r *simRunner) buildSplits(job *Job, data []byte) func(nn *hdfs.NameNode, nodes []string) ([]hadoop.Split, error) {
	return func(nn *hdfs.NameNode, nodes []string) ([]hadoop.Split, error) {
		if job.Kind == Pi {
			return core.PiSplits(job.Samples, normalizeTasks(job.Tasks, r.cfg.Workers))
		}
		if len(data) == 0 {
			// Modelled-size dataset: the paper's Fig. 3 layout, one
			// pinned sub-file per mapper.
			nMappers := len(nodes) * r.cfg.MappersPerNode
			per := job.InputBytes / int64(nMappers)
			if per <= 0 {
				per = 1
			}
			return workload.EncryptionDataset(nn, nodes, r.cfg.MappersPerNode, per)
		}
		name := "/engine/" + job.title()
		if err := nn.WriteFile(name, data, ""); err != nil {
			return nil, err
		}
		numSplits := len(nodes) * r.cfg.MappersPerNode
		if blocks := (int64(len(data)) + r.cfg.BlockSize - 1) / r.cfg.BlockSize; int64(numSplits) > blocks {
			numSplits = int(blocks)
		}
		return core.SplitsFromFile(nn, name, numSplits, r.cfg.BlockSize)
	}
}

// Run implements Runner.
func (r *simRunner) Run(job *Job) (*Result, error) {
	if err := r.cfg.validateJob(job); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Backend: r.Backend()}
	var data []byte
	if job.Kind != Pi {
		// Resolve the dataset once: the functional pass and the
		// modelled DFS layout must see the same bytes, and a Source
		// can only be read once.
		var err error
		if data, err = r.functionalInput(job); err != nil {
			return nil, err
		}
		if job.Sink != nil && len(data) == 0 {
			// A paper-scale synthetic size runs timing-only here; a
			// Sink promises output bytes the model never computes.
			// Refusing beats silently streaming nothing while the
			// functional backends stream the real result.
			return nil, fmt.Errorf("%w: sim models a %d-byte %s dataset without materializing it and cannot stream output to a Sink (functional cap: %d bytes)",
				ErrUnsupported, job.InputBytes, job.Kind, maxFunctionalSyntheticBytes)
		}
	}
	if err := r.functional(job, data, res); err != nil {
		return nil, err
	}
	if job.Sink != nil && res.Bytes != nil {
		n, err := job.Sink.Write(res.Bytes)
		if err != nil {
			return nil, err
		}
		res.OutputBytes = int64(n)
		res.Bytes = nil
	}
	mapperFor, err := r.mapperFor(job.Kind)
	if err != nil {
		return nil, err
	}
	cfg := hadoop.DefaultConfig()
	cfg.MapSlots = r.cfg.MappersPerNode
	cfg.Speculative = r.cfg.Speculative
	run, err := experiments.RunDistributed(r.cfg.Workers, cfg, r.buildSplits(job, data), mapperFor,
		cluster.WithAcceleratedFraction(r.cfg.AccelFraction))
	if err != nil {
		return nil, err
	}
	jr := run.Result
	res.Sim = &SimStats{
		MakespanSeconds:      jr.Duration().Seconds(),
		SetupAdjustedSeconds: (jr.Finished - jr.Started).Seconds(),
		Tasks:                len(jr.Tasks),
		Attempts:             jr.Attempts,
		LocalReads:           jr.LocalReads,
		RemoteReads:          jr.RemoteReads,
		InputBytes:           jr.InputBytes,
		EnergyJoules:         jr.EnergyJoules,
		SlotUtilization:      hadoop.SlotUtilization(jr, r.cfg.Workers, r.cfg.MappersPerNode),
	}
	if r.cfg.Timeline {
		res.Sim.Timeline = hadoop.RenderTimeline(jr, 100)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
