package engine

import (
	"fmt"
	"time"

	"hetmr/internal/cluster"
	"hetmr/internal/core"
	"hetmr/internal/experiments"
	"hetmr/internal/hadoop"
	"hetmr/internal/hdfs"
	"hetmr/internal/kernels"
	"hetmr/internal/workload"
)

// simRunner executes jobs against the calibrated performance model:
// the discrete-event Hadoop runtime (internal/hadoop on internal/sim)
// supplies the modelled makespan, locality, attempts and energy, while
// the functional result is computed in-process with the same kernels
// and the same block/task decomposition the other backends use — the
// simulator replays the architecture's timing, not its dataflow.
type simRunner struct {
	cfg Config
}

func init() {
	Register("sim", func(cfg Config) (Runner, error) {
		return &simRunner{cfg: cfg}, nil
	})
}

// Backend implements Runner.
func (r *simRunner) Backend() string { return "sim" }

// Close implements Runner.
func (r *simRunner) Close() error { return nil }

// blocks cuts data into the configured block size — the same
// boundaries the functional backends' DFS layers produce.
func (r *simRunner) blocks(data []byte) [][]byte {
	var out [][]byte
	bs := int(r.cfg.BlockSize)
	for off := 0; off < len(data); off += bs {
		end := off + bs
		if end > len(data) {
			end = len(data)
		}
		out = append(out, data[off:end])
	}
	return out
}

// functional computes the job's real result with the shared kernels.
func (r *simRunner) functional(job *Job, res *Result) error {
	switch job.Kind {
	case Wordcount:
		if len(job.Input) == 0 {
			return nil // synthetic size: timing-only run
		}
		counts := make(map[string]int64)
		for _, blk := range r.blocks(job.Input) {
			for w, n := range kernels.WordCount(blk) {
				counts[w] += n
			}
		}
		res.Pairs = pairsFromCounts(counts)
	case Sort:
		if len(job.Input) == 0 {
			return nil
		}
		blks := r.blocks(job.Input)
		runs := make([][]byte, len(blks))
		for i, blk := range blks {
			runs[i] = append([]byte(nil), blk...)
			if err := kernels.SortRecords(runs[i]); err != nil {
				return err
			}
		}
		merged, err := kernels.MergeSortedRuns(runs)
		if err != nil {
			return err
		}
		res.Bytes = merged
	case Encrypt:
		if len(job.Input) == 0 {
			return nil
		}
		cipher, err := kernels.NewCipher(job.Key)
		if err != nil {
			return err
		}
		out := make([]byte, len(job.Input))
		kernels.CTRStream(cipher, job.iv(), 0, out, job.Input)
		res.Bytes = out
	case Pi:
		if job.Samples > maxFunctionalPiSamples {
			return nil // paper-scale sweep: timing-only run
		}
		var inside, total int64
		for _, t := range piTasks(job.Samples, normalizeTasks(job.Tasks, r.cfg.Workers), job.Seed) {
			inside += kernels.CountInside(t.Seed, t.Samples)
			total += t.Samples
		}
		res.Inside, res.Total = inside, total
		res.Pi = kernels.EstimatePi(inside, total)
	}
	return nil
}

// maxFunctionalPiSamples bounds how many Monte Carlo samples the
// simulated backend actually draws. Above it — the paper sweeps up to
// 10^12 — the run is timing-only, exactly as data jobs given a
// synthetic size are: the simulator's duty is the model, and really
// sampling at that scale would take hours.
const maxFunctionalPiSamples = 200_000_000

// mapperFor resolves the configured mapper variant for the job kind.
// Data kinds use the paper's data-intensive (AES) cost calibration;
// Pi uses the CPU-intensive calibration.
func (r *simRunner) mapperFor(kind Kind) (func(*cluster.Node) hadoop.Mapper, error) {
	data := kind != Pi
	switch r.cfg.Mapper {
	case "java":
		if data {
			return hadoop.StaticMapperFor(hadoop.JavaAESMapper{}), nil
		}
		return hadoop.StaticMapperFor(hadoop.JavaPiMapper{}), nil
	case "cell":
		if data {
			return hadoop.AcceleratedMapperFor(hadoop.CellAESMapper{}, hadoop.JavaAESMapper{}), nil
		}
		return hadoop.AcceleratedMapperFor(hadoop.CellPiMapper{}, hadoop.JavaPiMapper{}), nil
	case "empty":
		return hadoop.StaticMapperFor(hadoop.EmptyMapper{}), nil
	}
	return nil, fmt.Errorf("engine: unknown mapper variant %q", r.cfg.Mapper)
}

// buildSplits lays the job's input out on the simulated DFS.
func (r *simRunner) buildSplits(job *Job) func(nn *hdfs.NameNode, nodes []string) ([]hadoop.Split, error) {
	return func(nn *hdfs.NameNode, nodes []string) ([]hadoop.Split, error) {
		if job.Kind == Pi {
			return core.PiSplits(job.Samples, normalizeTasks(job.Tasks, r.cfg.Workers))
		}
		if len(job.Input) == 0 {
			// Modelled-size dataset: the paper's Fig. 3 layout, one
			// pinned sub-file per mapper.
			nMappers := len(nodes) * r.cfg.MappersPerNode
			per := job.InputBytes / int64(nMappers)
			if per <= 0 {
				per = 1
			}
			return workload.EncryptionDataset(nn, nodes, r.cfg.MappersPerNode, per)
		}
		name := "/engine/" + job.title()
		if err := nn.WriteFile(name, job.Input, ""); err != nil {
			return nil, err
		}
		numSplits := len(nodes) * r.cfg.MappersPerNode
		if blocks := (int64(len(job.Input)) + r.cfg.BlockSize - 1) / r.cfg.BlockSize; int64(numSplits) > blocks {
			numSplits = int(blocks)
		}
		return core.SplitsFromFile(nn, name, numSplits, r.cfg.BlockSize)
	}
}

// Run implements Runner.
func (r *simRunner) Run(job *Job) (*Result, error) {
	if err := job.Validate(); err != nil {
		return nil, err
	}
	start := time.Now()
	res := &Result{Backend: r.Backend()}
	if err := r.functional(job, res); err != nil {
		return nil, err
	}
	mapperFor, err := r.mapperFor(job.Kind)
	if err != nil {
		return nil, err
	}
	cfg := hadoop.DefaultConfig()
	cfg.MapSlots = r.cfg.MappersPerNode
	cfg.Speculative = r.cfg.Speculative
	run, err := experiments.RunDistributed(r.cfg.Workers, cfg, r.buildSplits(job), mapperFor,
		cluster.WithAcceleratedFraction(r.cfg.AccelFraction))
	if err != nil {
		return nil, err
	}
	jr := run.Result
	res.Sim = &SimStats{
		MakespanSeconds:      jr.Duration().Seconds(),
		SetupAdjustedSeconds: (jr.Finished - jr.Started).Seconds(),
		Tasks:                len(jr.Tasks),
		Attempts:             jr.Attempts,
		LocalReads:           jr.LocalReads,
		RemoteReads:          jr.RemoteReads,
		InputBytes:           jr.InputBytes,
		EnergyJoules:         jr.EnergyJoules,
		SlotUtilization:      hadoop.SlotUtilization(jr, r.cfg.Workers, r.cfg.MappersPerNode),
	}
	if r.cfg.Timeline {
		res.Sim.Timeline = hadoop.RenderTimeline(jr, 100)
	}
	res.Elapsed = time.Since(start)
	return res, nil
}
