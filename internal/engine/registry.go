package engine

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/perfmodel"
	"hetmr/internal/spill"
)

// ErrUnknownBackend is wrapped by New for unregistered names.
var ErrUnknownBackend = errors.New("engine: unknown backend")

// ErrUnsupported is wrapped by Runner.Run when a backend cannot
// express the requested job kind (e.g. string-keyed word count on the
// fixed-size-record Cell framework).
var ErrUnsupported = errors.New("engine: job kind not supported by backend")

// Config parameterizes a backend at construction time. The zero value
// selects sensible defaults everywhere.
type Config struct {
	// Workers is the cluster's worker-node count (default 4).
	Workers int
	// BlockSize is the DFS block size functional backends cut input
	// into (default 64 000 bytes — a multiple of the 100-byte TeraSort
	// record, so Sort jobs work out of the box). All backends must
	// agree on it for block-boundary semantics to agree.
	BlockSize int64
	// MappersPerNode bounds concurrent mappers per node on the live
	// backend (default: the paper's 2).
	MappersPerNode int
	// Reducers is the shuffle partition count: the live backend's
	// in-process bucket count, and the net backend's distributed
	// reduce-task count for kernels with partitioned output (0:
	// runtime default — one reduce task per worker on net). Negative
	// counts are rejected here, at the API boundary, instead of
	// panicking in the partition hash mid-shuffle.
	Reducers int
	// Mapper selects the mapper variant: "cell" (accelerated, the
	// default), "java" (host path) or "empty" (simulated backend
	// only: reads records, computes nothing). The sim backend honours
	// it for every kind. The net backend honours it for every kind
	// too: "cell" offloads pi, aes-ctr and wordcount map tasks to the
	// accelerated trackers' per-node device with a bit-identical host
	// fallback elsewhere. The live backend offloads only Encrypt —
	// its Pi jobs always run the host path so results stay
	// bit-identical across backends, and wordcount/sort have no
	// accelerated kernel there. cellmr is the accelerated node
	// framework itself and rejects "java"/"empty" with
	// ErrUnsupported.
	Mapper string
	// AccelFraction is the fraction of nodes carrying accelerators
	// (live, simulated and net backends; on net it decides which
	// trackers own a per-node device). The zero value selects the
	// default of 1.0 (fully accelerated, the paper's baseline); use
	// NoAcceleration for a cluster with no accelerators at all.
	// ResolveAccelFraction is the single copy of that convention.
	AccelFraction float64
	// Speculative enables speculative execution of straggler tasks on
	// the live, net and simulated backends: when idle capacity appears
	// and no pending work remains, the scheduler duplicates the
	// slowest in-flight task and the first finished attempt wins. Job
	// results are bit-identical with it on or off.
	Speculative bool
	// MaxAttempts caps per-task attempts (first launch + failure
	// re-runs + speculative duplicates) on the live and net backends.
	// 0 selects the scheduler default.
	MaxAttempts int
	// SpeedHints declares per-worker relative throughput (len must be
	// 0 or Workers, values positive). The live backend's scheduler
	// seeds its initial task distribution proportionally; work
	// stealing corrects any hint error at run time. The net backend
	// cross-checks them against its AccelFraction-derived device
	// profile — a hint above the host baseline (1) on a worker the
	// fraction leaves without a device is an error, never a silent
	// pick (low hints on accelerated workers stay valid: a straggling
	// accelerated node). Use HeterogeneousSpeedHints with the same
	// fraction to mirror perfmodel's device ratios.
	SpeedHints []float64
	// FaultDelays injects a fixed artificial delay into every task a
	// worker executes (len must be 0 or Workers), on the live and net
	// backends — the straggler fault-injection knob the conformance
	// suite and benchmarks use. Nil injects nothing.
	FaultDelays []time.Duration
	// JobTimeout bounds one submitted job's end-to-end run on the net
	// backend (Submit through Wait). 0 selects DefaultJobTimeout;
	// raise it for large inputs or slow CI machines instead of hitting
	// an arbitrary cliff. Negative is an error.
	JobTimeout time.Duration
	// SpillMemBytes bounds the resident memory of every data-plane
	// store on the functional backends — the live runner's DFS block
	// store and per-job run stores, the net runtime's DataNode block
	// stores and tracker shuffle stores. Payloads above the watermark
	// spill to disk and stream back transparently. 0 keeps everything
	// in memory (the historical behaviour); SpillAll spills every
	// payload; other negative values are an error. With a watermark
	// set, a job's peak heap is O(blockSize × workers) regardless of
	// input size.
	SpillMemBytes int64
	// SpillDir is the parent directory for spill files ("" selects
	// the OS temp dir). Stores create and remove their own
	// subdirectories.
	SpillDir string
	// SpillCompress frame-compresses spilled payloads — trade CPU for
	// spill-disk footprint. The codec is Codec when set, DEFLATE at
	// fastest otherwise.
	SpillCompress bool
	// Codec names the data-plane compression codec (spill.CodecByName:
	// "snap" for the LZ4-style block codec, "flate" for DEFLATE; ""
	// for none, the default). On the net backend a non-empty Codec is
	// also negotiated as the rpcnet wire codec, so DFS block transfers
	// and shuffle FetchPartition payloads are compressed per frame on
	// the wire; results stay bit-identical with it on or off. With
	// SpillCompress set it selects the spill frame codec too.
	Codec string
	// Timeline requests a rendered task Gantt chart in Result.Sim
	// (simulated backend).
	Timeline bool
	// Quotas installs per-tenant fair-share weights and admission
	// limits on the net backend's JobTracker (see Quota). Only the net
	// backend runs a multi-tenant service; the others reject a
	// non-empty map with ErrUnsupported rather than silently running
	// without enforcement.
	Quotas map[string]Quota
	// Racks spreads the workers round-robin over that many named racks
	// on the functional cluster backends (net and live): block replicas
	// then spread across racks on write and repair, and the net
	// scheduler prefers rack-local over remote grants. 0 or 1 keeps the
	// flat single-rack topology (the default); negative is an error.
	Racks int
	// RangePartition routes net-backend Sort jobs through the sampled
	// range partitioner: a reservoir-sampling pass over ingest cuts
	// per-job split keys, reducers own contiguous key ranges, and the
	// streamed reduce outputs concatenate in key order — the globally
	// sorted file with zero post-reduce merge, at O(chunk) client
	// memory. Results are bit-identical to the hash-partitioned path.
	// The other backends sort fully in-process and ignore the knob.
	RangePartition bool
}

// Quota bounds one tenant on the multi-tenant net backend. The zero
// value means unlimited at fair-share weight 1; see netmr.Quota for
// the enforcing layer.
type Quota struct {
	// Weight is the tenant's fair-share weight (0 or negative: 1).
	// Grants across tenants track the weight ratio.
	Weight float64
	// MaxJobs caps the tenant's concurrent (non-terminal) jobs; a
	// Submit beyond it fails with an error wrapping the runtime's
	// quota sentinel. 0: unlimited.
	MaxJobs int
	// MaxTrackers caps how many distinct trackers may concurrently run
	// the tenant's tasks. 0: unlimited.
	MaxTrackers int
	// SpillBytes caps the tenant's resident shuffle/spill bytes across
	// the tracker fleet, enforced at job admission. 0: unlimited.
	SpillBytes int64
	// MaxQueued lets that many over-quota Submits wait in line instead
	// of being rejected: queued jobs start automatically as running
	// jobs finish or spill budget frees. 0 keeps the historical
	// immediate rejection.
	MaxQueued int
}

// DefaultJobTimeout is the net backend's per-job deadline when
// Config.JobTimeout is zero; loopback jobs finish in
// milliseconds-to-seconds, so this is generous.
const DefaultJobTimeout = 2 * time.Minute

// SpillAll is the Config.SpillMemBytes value that spills every
// data-plane payload to disk (the field's zero value means "never
// spill").
const SpillAll = -1

// withDefaults resolves zero fields.
func (c Config) withDefaults() (Config, error) {
	if c.Workers == 0 {
		c.Workers = 4
	}
	if c.Workers < 0 {
		return c, fmt.Errorf("engine: negative worker count %d", c.Workers)
	}
	if c.BlockSize == 0 {
		c.BlockSize = 64_000
	}
	if c.BlockSize < 0 {
		return c, fmt.Errorf("engine: negative block size %d", c.BlockSize)
	}
	if c.MappersPerNode == 0 {
		c.MappersPerNode = perfmodel.MapSlotsPerNode
	}
	if c.Mapper == "" {
		c.Mapper = "cell"
	}
	switch c.Mapper {
	case "cell", "java", "empty":
	default:
		return c, fmt.Errorf("engine: unknown mapper variant %q (cell|java|empty)", c.Mapper)
	}
	frac, err := ResolveAccelFraction(c.AccelFraction)
	if err != nil {
		return c, err
	}
	c.AccelFraction = frac
	if c.Reducers < 0 {
		return c, fmt.Errorf("engine: negative reducer count %d", c.Reducers)
	}
	if c.JobTimeout < 0 {
		return c, fmt.Errorf("engine: negative job timeout %v", c.JobTimeout)
	}
	if c.JobTimeout == 0 {
		c.JobTimeout = DefaultJobTimeout
	}
	if c.SpillMemBytes < SpillAll {
		return c, fmt.Errorf("engine: spill watermark %d (0: never spill, SpillAll: everything, >0: bytes in memory)", c.SpillMemBytes)
	}
	if c.MaxAttempts < 0 {
		return c, fmt.Errorf("engine: negative attempt cap %d", c.MaxAttempts)
	}
	if c.Racks < 0 {
		return c, fmt.Errorf("engine: negative rack count %d", c.Racks)
	}
	if c.Codec != "" {
		if _, ok := spill.CodecByName(c.Codec); !ok {
			return c, fmt.Errorf("engine: unknown codec %q (have %v)", c.Codec, spill.CodecNames())
		}
	}
	if c.SpeedHints != nil && len(c.SpeedHints) != c.Workers {
		return c, fmt.Errorf("engine: %d speed hints for %d workers", len(c.SpeedHints), c.Workers)
	}
	for i, s := range c.SpeedHints {
		if s <= 0 {
			return c, fmt.Errorf("engine: worker %d has non-positive speed hint %g", i, s)
		}
	}
	if c.FaultDelays != nil && len(c.FaultDelays) != c.Workers {
		return c, fmt.Errorf("engine: %d fault delays for %d workers", len(c.FaultDelays), c.Workers)
	}
	for i, d := range c.FaultDelays {
		if d < 0 {
			return c, fmt.Errorf("engine: worker %d has negative fault delay %v", i, d)
		}
	}
	return c, nil
}

// HeterogeneousSpeedHints builds per-worker speed hints for a cluster
// whose first accelerated-fraction of nodes offload to the Cell chip
// while the rest run the PPE Java path — the relative rates are
// perfmodel's calibrated Pi plateaus, so the scheduler's initial
// distribution mirrors the paper's measured device heterogeneity.
// accelFraction follows the Config.AccelFraction convention (0 means
// the fully-accelerated default, NoAcceleration means none); an
// out-of-range fraction, like a non-positive worker count, yields nil.
func HeterogeneousSpeedHints(workers int, accelFraction float64) []float64 {
	frac, err := ResolveAccelFraction(accelFraction)
	if workers <= 0 || err != nil {
		return nil
	}
	accelerated := acceleratedNodeCount(workers, frac)
	ratio := perfmodel.PiCellSamplesPerSec / perfmodel.PiPPESamplesPerSec
	hints := make([]float64, workers)
	for i := range hints {
		if i < accelerated {
			hints[i] = ratio
		} else {
			hints[i] = 1
		}
	}
	return hints
}

// NoAcceleration is the AccelFraction value for a cluster without any
// accelerated nodes (the field's zero value means "default", i.e.
// fully accelerated).
const NoAcceleration = -1

// ResolveAccelFraction maps the Config.AccelFraction convention onto a
// plain fraction in [0,1]: the zero value selects the paper's
// fully-accelerated baseline, NoAcceleration selects an all-host
// cluster, anything outside [0,1] is an error. Every consumer of the
// knob — withDefaults, HeterogeneousSpeedHints, the backends — routes
// through this one resolver, so 0 can never mean "default" in one
// place and "none" in another.
func ResolveAccelFraction(f float64) (float64, error) {
	switch {
	case f == 0:
		return 1, nil
	case f == NoAcceleration:
		return 0, nil
	case math.IsNaN(f) || f < 0 || f > 1:
		// NaN must be named explicitly: every comparison against it is
		// false, so it would otherwise fall through as "valid".
		return 0, fmt.Errorf("engine: accelerated fraction %g outside [0,1]", f)
	}
	return f, nil
}

// acceleratedNodeCount rounds a resolved fraction to a node count,
// never exceeding n.
func acceleratedNodeCount(n int, frac float64) int {
	a := int(frac*float64(n) + 0.5)
	if a > n {
		a = n
	}
	return a
}

// acceleratedNodes resolves the accelerated-node count for n workers.
// Callers run after withDefaults, so AccelFraction is already a plain
// fraction.
func (c Config) acceleratedNodes(n int) int {
	return acceleratedNodeCount(n, c.AccelFraction)
}

// spillMem translates the Config.SpillMemBytes convention (0: never
// spill) into the store layers' convention (negative: never spill).
// Callers run after withDefaults.
func (c Config) spillMem() int64 {
	switch {
	case c.SpillMemBytes == 0:
		return -1
	case c.SpillMemBytes == SpillAll:
		return 0
	default:
		return c.SpillMemBytes
	}
}

// spillCodec resolves the spill frame codec: Codec when named,
// DEFLATE otherwise. Callers run after withDefaults, so a non-empty
// Codec is known to resolve.
func (c Config) spillCodec() spill.Codec {
	if !c.SpillCompress {
		return nil
	}
	if c.Codec != "" {
		codec, _ := spill.CodecByName(c.Codec)
		return codec
	}
	return spill.Flate()
}

// validateJob checks a job against this backend configuration at the
// API boundary — the shared Submit-time gate every runner calls, so a
// shape mismatch errors up front instead of corrupting records
// mid-job.
func (c Config) validateJob(j *Job) error {
	if err := j.Validate(); err != nil {
		return err
	}
	if j.Sink != nil && j.Kind != Sort && j.Kind != Encrypt {
		return fmt.Errorf("engine: %s job cannot stream to a Sink (byte-output kinds only)", j.Kind)
	}
	if j.Kind == Sort {
		// A block size that is not a whole number of records would
		// silently split records across block boundaries and sort
		// garbage.
		if c.BlockSize%kernels.SortRecordBytes != 0 {
			return fmt.Errorf("engine: sort needs a block size that is a multiple of the %d-byte record, got %d",
				kernels.SortRecordBytes, c.BlockSize)
		}
		if len(j.Input) > 0 && len(j.Input)%kernels.SortRecordBytes != 0 {
			return fmt.Errorf("engine: sort input of %d bytes is not a whole number of %d-byte records",
				len(j.Input), kernels.SortRecordBytes)
		}
		if len(j.Input) == 0 && j.Source == nil && j.InputBytes%kernels.SortRecordBytes != 0 {
			return fmt.Errorf("engine: synthetic sort input of %d bytes is not a whole number of %d-byte records",
				j.InputBytes, kernels.SortRecordBytes)
		}
	}
	return nil
}

// Factory builds one backend runner.
type Factory func(cfg Config) (Runner, error)

var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// Register adds a backend under a unique name. It panics on duplicate
// registration, mirroring database/sql drivers.
func Register(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if name == "" || f == nil {
		panic("engine: Register needs a name and a factory")
	}
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("engine: backend %q already registered", name))
	}
	registry[name] = f
}

// Backends lists the registered backend names, sorted.
func Backends() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// New builds the named backend with the given configuration.
func New(name string, cfg Config) (Runner, error) {
	registryMu.RLock()
	f, ok := registry[name]
	registryMu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w %q (have %v)", ErrUnknownBackend, name, Backends())
	}
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	return f(cfg)
}

// RunOnce is the convenience path for one-shot jobs: build the named
// backend, run the job, close the backend.
func RunOnce(backend string, cfg Config, job *Job) (*Result, error) {
	r, err := New(backend, cfg)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	return r.Run(job)
}
