package engine

import (
	"bytes"
	"fmt"

	"hetmr/internal/kernels"
)

// SameResult checks the cross-backend conformance contract for one job
// kind: the reference result must be non-trivial and the other
// backend's result must match it exactly. Both the conformance test
// suite and `repro -conformance` use this single definition, so the
// CI gate and the tests cannot drift apart.
func SameResult(kind Kind, ref, other *Result) error {
	switch kind {
	case Wordcount:
		if len(ref.Pairs) == 0 {
			return fmt.Errorf("reference backend %s produced no pairs", ref.Backend)
		}
		if len(other.Pairs) != len(ref.Pairs) {
			return fmt.Errorf("%d vs %d distinct words", len(ref.Pairs), len(other.Pairs))
		}
		for i := range ref.Pairs {
			if ref.Pairs[i] != other.Pairs[i] {
				return fmt.Errorf("pair %d: %+v vs %+v", i, ref.Pairs[i], other.Pairs[i])
			}
		}
	case Sort, Encrypt:
		if len(ref.Bytes) == 0 {
			return fmt.Errorf("reference backend %s produced no output bytes", ref.Backend)
		}
		if !bytes.Equal(ref.Bytes, other.Bytes) {
			return fmt.Errorf("output bytes differ (%d vs %d)", len(ref.Bytes), len(other.Bytes))
		}
		if kind == Sort {
			sorted, err := kernels.RecordsSorted(ref.Bytes)
			if err != nil {
				return fmt.Errorf("sort output malformed: %w", err)
			}
			if !sorted {
				return fmt.Errorf("sort output is not sorted")
			}
		}
	case Pi:
		if ref.Total == 0 {
			return fmt.Errorf("reference backend %s drew no samples", ref.Backend)
		}
		if ref.Inside != other.Inside || ref.Total != other.Total {
			return fmt.Errorf("inside/total %d/%d vs %d/%d",
				ref.Inside, ref.Total, other.Inside, other.Total)
		}
		if ref.Pi != other.Pi {
			return fmt.Errorf("pi estimates differ: %v vs %v", ref.Pi, other.Pi)
		}
	default:
		return fmt.Errorf("no conformance contract for kind %q", kind)
	}
	return nil
}
