package engine

import (
	"testing"

	"hetmr/internal/testutil"
)

// TestMain fails the package if any test leaks a goroutine — backend
// runners spun up through the registry must release their clusters and
// connections when closed.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}
