package engine

import (
	"errors"
	"io"
	"testing"
)

func TestSimRefusesSinkAboveFunctionalCap(t *testing.T) {
	r, err := New("sim", Config{Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	_, err = r.Run(&Job{Kind: Encrypt, Key: []byte("0123456789abcdef"),
		InputBytes: maxFunctionalSyntheticBytes + 100, Sink: io.Discard})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("sim accepted a Sink on a modelled-only dataset: %v", err)
	}
}
