package engine

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"runtime"
	"runtime/debug"
	"testing"
	"time"

	"hetmr/internal/kernels"
)

// terasort at scale: these tests drive the net backend's sampled
// range-partitioned sort end to end — random records stream in through
// the windowed ingest path, partitions stream back in key order through
// WaitOutput, and a constant-space checker verifies global sortedness
// without ever materializing the dataset. The benchmark alongside pins
// the peak heap so "streams at any size" stays true.

// sortRecordSource streams pseudo-random terasort records without ever
// holding more than one generation batch in memory. Each batch derives
// its seed from the base via MixSeed, so the stream is deterministic
// for a given (seed, size) and two sources with the same parameters
// produce identical bytes.
type sortRecordSource struct {
	seed      uint64
	batch     uint64
	remaining int64
	buf       []byte
}

// sortSourceBatchBytes is one generation batch: large enough to
// amortize the generator, small enough to be heap noise (and a whole
// number of 100-byte records).
const sortSourceBatchBytes = 4_000_000

func newSortRecordSource(seed uint64, totalBytes int64) *sortRecordSource {
	if totalBytes%int64(kernels.SortRecordBytes) != 0 {
		panic(fmt.Sprintf("sort source size %d is not a whole number of %d-byte records", totalBytes, kernels.SortRecordBytes))
	}
	return &sortRecordSource{seed: seed, remaining: totalBytes}
}

func (s *sortRecordSource) Read(p []byte) (int, error) {
	if len(s.buf) == 0 {
		if s.remaining <= 0 {
			return 0, io.EOF
		}
		n := int64(sortSourceBatchBytes)
		if n > s.remaining {
			n = s.remaining
		}
		s.buf = kernels.GenerateSortRecords(kernels.MixSeed(s.seed, s.batch), int(n)/kernels.SortRecordBytes)
		s.batch++
		s.remaining -= n
	}
	n := copy(p, s.buf)
	s.buf = s.buf[n:]
	return n, nil
}

// sortedChecker is an io.Writer that verifies a terasort output stream
// in O(1) space: every 100-byte record's 10-byte key must be >= its
// predecessor's, across Write-call boundaries. It is the Sink that
// proves concatenated range partitions need no post-reduce merge.
type sortedChecker struct {
	n        int64
	recOff   int
	cur      [kernels.SortKeyBytes]byte
	prev     [kernels.SortKeyBytes]byte
	havePrev bool
	err      error
}

func (c *sortedChecker) Write(p []byte) (int, error) {
	written := len(p)
	c.n += int64(written)
	for len(p) > 0 {
		if c.recOff < kernels.SortKeyBytes {
			k := copy(c.cur[c.recOff:], p)
			c.recOff += k
			p = p[k:]
			if c.recOff == kernels.SortKeyBytes {
				if c.havePrev && c.err == nil && bytes.Compare(c.prev[:], c.cur[:]) > 0 {
					c.err = fmt.Errorf("record %d out of order: key %x after %x",
						c.n/int64(kernels.SortRecordBytes), c.cur, c.prev)
				}
				c.prev = c.cur
				c.havePrev = true
			}
			continue
		}
		skip := kernels.SortRecordBytes - c.recOff
		if skip > len(p) {
			skip = len(p)
		}
		c.recOff += skip
		p = p[skip:]
		if c.recOff == kernels.SortRecordBytes {
			c.recOff = 0
		}
	}
	return written, nil
}

// check fails the test unless the stream was sorted, record-aligned and
// exactly wantBytes long.
func (c *sortedChecker) check(tb testing.TB, wantBytes int64) {
	tb.Helper()
	if c.err != nil {
		tb.Fatal(c.err)
	}
	if c.recOff != 0 {
		tb.Fatalf("output ends mid-record: %d trailing bytes", c.recOff)
	}
	if c.n != wantBytes {
		tb.Fatalf("streamed %d bytes, want %d", c.n, wantBytes)
	}
}

// terasortOnce runs one range-partitioned sort of inputBytes random
// bytes through the net backend, streaming both directions, and
// verifies the concatenated output is globally sorted. The reducer
// count scales with the input so per-partition working sets stay
// roughly constant — the shape that makes peak heap independent of
// total size.
func terasortOnce(tb testing.TB, inputBytes int64, spillDir string) {
	terasortRun(tb, inputBytes, spillDir, 8_000_000, 8<<20)
}

// terasortRun is terasortOnce with the two memory knobs exposed:
// partBytes is the target reduce-partition size (the per-task working
// set) and spillMem the per-store watermark (which also sizes the
// ingest and fetch credit windows).
func terasortRun(tb testing.TB, inputBytes int64, spillDir string, partBytes, spillMem int64) {
	tb.Helper()
	reducers := int(inputBytes / partBytes)
	if reducers < 2 {
		reducers = 2
	}
	cfg := Config{
		Workers:        4,
		BlockSize:      4_000_000,
		Reducers:       reducers,
		RangePartition: true,
		SpillMemBytes:  spillMem,
		SpillDir:       spillDir,
		JobTimeout:     10 * time.Minute,
	}
	check := &sortedChecker{}
	res, err := RunOnce("net", cfg, &Job{
		Kind:   Sort,
		Seed:   2009,
		Source: newSortRecordSource(2009, inputBytes),
		Sink:   check,
	})
	if err != nil {
		tb.Fatal(err)
	}
	check.check(tb, inputBytes)
	if res.OutputBytes != inputBytes {
		tb.Fatalf("reported %d output bytes, want %d", res.OutputBytes, inputBytes)
	}
}

// TestBoundedMemoryStreamingSort is the terasort analogue of
// TestBoundedMemoryStreaming (the CI mem-smoke lane's -run prefix
// covers both): a dataset many times the spill watermark range-sorts
// end to end under a hard Go memory limit, and the streamed output is
// verified globally sorted with zero post-reduce merge. GOGC is pinned
// low so sampled heap tracks the live working set instead of the GC
// target riding up to the limit — the assertion is on what the
// pipeline retains, not on how lazy the collector feels.
func TestBoundedMemoryStreamingSort(t *testing.T) {
	oldLimit := debug.SetMemoryLimit(256 << 20)
	defer debug.SetMemoryLimit(oldLimit)
	oldGC := debug.SetGCPercent(10)
	defer debug.SetGCPercent(oldGC)

	const (
		input   = 40_000_000 // 40 MB of 100-byte records
		peakCap = 128 << 20
	)
	peak := samplePeakHeap(func() {
		terasortRun(t, input, t.TempDir(), 2_000_000, 2<<20)
	})
	t.Logf("peak_heap_MB=%.1f input_MB=%d", float64(peak)/(1<<20), input/1_000_000)
	if peak > peakCap {
		t.Fatalf("peak heap %.1f MB exceeds the %d MB bound for a %d MB range-partitioned sort",
			float64(peak)/(1<<20), peakCap>>20, input/1_000_000)
	}
}

// TestTerasortScaleFlatHeap is the at-scale acceptance run, gated
// behind HETMR_TERASORT_SCALE=1 because the 1 GB pass takes minutes:
// a 1 GB range-partitioned net sort must complete with its peak live
// heap flat — within 1.5x — of the 100 MB run's. Reducer count scales
// with input (fixed partition size), so a flat peak proves every layer
// streams: ingest windows, spill watermarks, credit-bounded fetches and
// chunked output all independent of total dataset size.
func TestTerasortScaleFlatHeap(t *testing.T) {
	if os.Getenv("HETMR_TERASORT_SCALE") == "" {
		t.Skip("set HETMR_TERASORT_SCALE=1 to run the 1 GB terasort scale gate")
	}
	oldGC := debug.SetGCPercent(10)
	defer debug.SetGCPercent(oldGC)
	peakSmall := samplePeakHeap(func() { terasortOnce(t, 100_000_000, t.TempDir()) })
	runtime.GC()
	peakLarge := samplePeakHeap(func() { terasortOnce(t, 1_000_000_000, t.TempDir()) })
	t.Logf("peak_heap_MB: 100MB run %.1f, 1GB run %.1f (ratio %.2f)",
		float64(peakSmall)/(1<<20), float64(peakLarge)/(1<<20), float64(peakLarge)/float64(peakSmall))
	if float64(peakLarge) > 1.5*float64(peakSmall) {
		t.Fatalf("1 GB peak heap %.1f MB is more than 1.5x the 100 MB run's %.1f MB — some layer scales with input size",
			float64(peakLarge)/(1<<20), float64(peakSmall)/(1<<20))
	}
}

// TestRangePartitionSortConformance pins the tentpole's correctness
// contract: the range-partitioned, streamed net sort is bit-identical
// to the hash-partitioned in-process sort — same records, same order,
// merely routed through contiguous key ranges instead of a hash ring.
func TestRangePartitionSortConformance(t *testing.T) {
	input := kernels.GenerateSortRecords(7, 3_000)
	job := func() *Job { return &Job{Kind: Sort, Input: append([]byte(nil), input...)} }

	ref, ok := runOn(t, "live", job())
	if !ok {
		t.Fatal("live backend must support sort")
	}

	for _, reducers := range []int{1, 5} {
		reducers := reducers
		t.Run(fmt.Sprintf("reducers=%d", reducers), func(t *testing.T) {
			cfg := conformanceConfig()
			cfg.Reducers = reducers
			cfg.RangePartition = true
			res, ok := runOnConfig(t, "net", cfg, job())
			if !ok {
				t.Fatal("net backend must support sort")
			}
			if !bytes.Equal(ref.Bytes, res.Bytes) {
				t.Fatalf("range-partitioned net sort differs from live hash sort (%d vs %d bytes)",
					len(res.Bytes), len(ref.Bytes))
			}
		})
	}
}

// BenchmarkTerasortPeakMemory is the scale gate: a full
// range-partitioned net sort at 100 MB and 1 GB, reporting throughput
// and peak heap. The CI bench-gate diffs the 100 MB peak_heap_MB
// against BENCH_BASELINE.json; the 1 GB case is the acceptance run —
// its peak must stay flat relative to 100 MB because every layer
// streams. GOGC is pinned low for the same reason as the smoke test:
// the metric is the pipeline's live working set, which a regression to
// materializing would blow through at any collector setting.
func BenchmarkTerasortPeakMemory(b *testing.B) {
	oldGC := debug.SetGCPercent(10)
	defer debug.SetGCPercent(oldGC)
	sizes := []struct {
		label string
		bytes int64
	}{
		{"100MB", 100_000_000},
		{"1GB", 1_000_000_000},
	}
	for _, sz := range sizes {
		sz := sz
		b.Run("net/"+sz.label, func(b *testing.B) {
			dir := b.TempDir()
			b.SetBytes(sz.bytes)
			var peak uint64
			for i := 0; i < b.N; i++ {
				peak = samplePeakHeap(func() {
					terasortOnce(b, sz.bytes, dir)
				})
			}
			b.ReportMetric(float64(peak)/(1<<20), "peak_heap_MB")
		})
	}
}
