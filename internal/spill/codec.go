package spill

import (
	"compress/flate"
	"io"
)

// Codec is a streaming frame compressor for spilled payloads — the
// seam where a snappy-style block codec would plug in. Implementations
// must round-trip exactly: NewReader(NewWriter(frame)) yields the
// original bytes.
type Codec interface {
	// Name labels the codec in diagnostics.
	Name() string
	// NewWriter wraps w with a compressing writer; Close flushes the
	// frame without closing w.
	NewWriter(w io.Writer) io.WriteCloser
	// NewReader wraps r with the matching decompressor.
	NewReader(r io.Reader) (io.ReadCloser, error)
}

// CodecByName resolves a built-in codec by its Name: "flate"
// (DEFLATE, better ratio, more CPU) or "snap" (the LZ4-style block
// codec, fastest). It is the negotiation table the rpcnet wire layer
// and the engine's Config.Codec knob share, so a codec name means the
// same codec on every layer. Unknown names report false.
func CodecByName(name string) (Codec, bool) {
	switch name {
	case "flate":
		return Flate(), true
	case "snap":
		return Snap(), true
	}
	return nil, false
}

// CodecNames lists the built-in codec names CodecByName resolves.
func CodecNames() []string { return []string{"flate", "snap"} }

// Flate returns the built-in codec: DEFLATE at the fastest setting,
// the stdlib stand-in for a snappy-style frame codec (fast, modest
// ratio, streaming).
func Flate() Codec { return flateCodec{} }

type flateCodec struct{}

func (flateCodec) Name() string { return "flate" }

func (flateCodec) NewWriter(w io.Writer) io.WriteCloser {
	// BestSpeed can't fail for a valid level; the error path exists
	// for out-of-range levels only.
	fw, err := flate.NewWriter(w, flate.BestSpeed)
	if err != nil {
		panic("spill: flate.NewWriter: " + err.Error())
	}
	return fw
}

func (flateCodec) NewReader(r io.Reader) (io.ReadCloser, error) {
	return flate.NewReader(r), nil
}
