package spill

import (
	"compress/flate"
	"io"
)

// Codec is a streaming frame compressor for spilled payloads — the
// seam where a snappy-style block codec would plug in. Implementations
// must round-trip exactly: NewReader(NewWriter(frame)) yields the
// original bytes.
type Codec interface {
	// Name labels the codec in diagnostics.
	Name() string
	// NewWriter wraps w with a compressing writer; Close flushes the
	// frame without closing w.
	NewWriter(w io.Writer) io.WriteCloser
	// NewReader wraps r with the matching decompressor.
	NewReader(r io.Reader) (io.ReadCloser, error)
}

// Flate returns the built-in codec: DEFLATE at the fastest setting,
// the stdlib stand-in for a snappy-style frame codec (fast, modest
// ratio, streaming).
func Flate() Codec { return flateCodec{} }

type flateCodec struct{}

func (flateCodec) Name() string { return "flate" }

func (flateCodec) NewWriter(w io.Writer) io.WriteCloser {
	// BestSpeed can't fail for a valid level; the error path exists
	// for out-of-range levels only.
	fw, err := flate.NewWriter(w, flate.BestSpeed)
	if err != nil {
		panic("spill: flate.NewWriter: " + err.Error())
	}
	return fw
}

func (flateCodec) NewReader(r io.Reader) (io.ReadCloser, error) {
	return flate.NewReader(r), nil
}
