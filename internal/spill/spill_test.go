package spill

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func payload(n int, salt byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*31 + salt
	}
	return p
}

func TestMemoryOnlyNeverSpills(t *testing.T) {
	s := NewStore(t.TempDir(), NoSpill, nil)
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Put(string(rune('a'+i)), payload(10_000, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.SpilledBytes() != 0 {
		t.Fatalf("spilled %d bytes with NoSpill", s.SpilledBytes())
	}
	if s.MemBytes() != 80_000 {
		t.Fatalf("mem use %d, want 80000", s.MemBytes())
	}
}

func TestWatermarkSpillsAboveLimit(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, 25_000, nil)
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Put(string(rune('a'+i)), payload(10_000, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.MemBytes(); got > 25_000 {
		t.Fatalf("mem use %d exceeds the 25000 watermark", got)
	}
	if got := s.SpilledBytes(); got != 30_000 {
		t.Fatalf("spilled %d bytes, want 30000", got)
	}
	// Every payload reads back identically, spilled or not.
	for i := 0; i < 5; i++ {
		got, err := s.Get(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(10_000, byte(i))) {
			t.Fatalf("payload %d corrupted", i)
		}
	}
}

func TestSpillAllAndStreamingOpen(t *testing.T) {
	s := NewStore(t.TempDir(), 0, nil)
	defer s.Close()
	want := payload(50_000, 7)
	if err := s.Put("k", want); err != nil {
		t.Fatal(err)
	}
	if s.MemBytes() != 0 {
		t.Fatalf("mem use %d with SpillAll", s.MemBytes())
	}
	r, err := s.Open("k")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("streamed payload differs")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := NewStore(t.TempDir(), 0, Flate())
	defer s.Close()
	// Compressible payload: the frame on disk must be smaller, the
	// read-back identical.
	want := bytes.Repeat([]byte("becerra cell spe "), 4_000)
	if err := s.Put("k", want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("compressed payload did not round-trip")
	}
	var onDisk int64
	filepath.Walk(s.dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			onDisk += info.Size()
		}
		return nil
	})
	if onDisk >= int64(len(want)) {
		t.Fatalf("frame on disk %d >= payload %d: codec did not compress", onDisk, len(want))
	}
}

func TestPutReplacesAndDeleteFrees(t *testing.T) {
	s := NewStore(t.TempDir(), NoSpill, nil)
	defer s.Close()
	if err := s.Put("k", payload(1_000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", payload(500, 2)); err != nil {
		t.Fatal(err)
	}
	if got := s.MemBytes(); got != 500 {
		t.Fatalf("mem use %d after replace, want 500", got)
	}
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload(500, 2)) {
		t.Fatal("replaced payload differs")
	}
	s.Delete("k")
	if s.MemBytes() != 0 || s.Len() != 0 {
		t.Fatal("delete did not free the entry")
	}
	if _, err := s.Get("k"); err == nil {
		t.Fatal("Get after Delete succeeded")
	}
}

func TestCloseRemovesSpillDir(t *testing.T) {
	base := t.TempDir()
	s := NewStore(base, 0, nil)
	if err := s.Put("k", payload(1_000, 3)); err != nil {
		t.Fatal(err)
	}
	dir := s.dir
	if dir == "" {
		t.Fatal("no spill dir created")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s survived Close", dir)
	}
	if err := s.Put("k", nil); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
}
