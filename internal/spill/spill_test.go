package spill

import (
	"bytes"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func payload(n int, salt byte) []byte {
	p := make([]byte, n)
	for i := range p {
		p[i] = byte(i)*31 + salt
	}
	return p
}

func TestMemoryOnlyNeverSpills(t *testing.T) {
	s := NewStore(t.TempDir(), NoSpill, nil)
	defer s.Close()
	for i := 0; i < 8; i++ {
		if err := s.Put(string(rune('a'+i)), payload(10_000, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.SpilledBytes() != 0 {
		t.Fatalf("spilled %d bytes with NoSpill", s.SpilledBytes())
	}
	if s.MemBytes() != 80_000 {
		t.Fatalf("mem use %d, want 80000", s.MemBytes())
	}
}

func TestWatermarkSpillsAboveLimit(t *testing.T) {
	dir := t.TempDir()
	s := NewStore(dir, 25_000, nil)
	defer s.Close()
	for i := 0; i < 5; i++ {
		if err := s.Put(string(rune('a'+i)), payload(10_000, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.MemBytes(); got > 25_000 {
		t.Fatalf("mem use %d exceeds the 25000 watermark", got)
	}
	if got := s.SpilledBytes(); got != 30_000 {
		t.Fatalf("spilled %d bytes, want 30000", got)
	}
	// Every payload reads back identically, spilled or not.
	for i := 0; i < 5; i++ {
		got, err := s.Get(string(rune('a' + i)))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(10_000, byte(i))) {
			t.Fatalf("payload %d corrupted", i)
		}
	}
}

func TestSpillAllAndStreamingOpen(t *testing.T) {
	s := NewStore(t.TempDir(), 0, nil)
	defer s.Close()
	want := payload(50_000, 7)
	if err := s.Put("k", want); err != nil {
		t.Fatal(err)
	}
	if s.MemBytes() != 0 {
		t.Fatalf("mem use %d with SpillAll", s.MemBytes())
	}
	r, err := s.Open("k")
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("streamed payload differs")
	}
}

func TestCodecRoundTrip(t *testing.T) {
	s := NewStore(t.TempDir(), 0, Flate())
	defer s.Close()
	// Compressible payload: the frame on disk must be smaller, the
	// read-back identical.
	want := bytes.Repeat([]byte("becerra cell spe "), 4_000)
	if err := s.Put("k", want); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("compressed payload did not round-trip")
	}
	var onDisk int64
	filepath.Walk(s.dir, func(_ string, info os.FileInfo, err error) error {
		if err == nil && !info.IsDir() {
			onDisk += info.Size()
		}
		return nil
	})
	if onDisk >= int64(len(want)) {
		t.Fatalf("frame on disk %d >= payload %d: codec did not compress", onDisk, len(want))
	}
}

func TestPutReplacesAndDeleteFrees(t *testing.T) {
	s := NewStore(t.TempDir(), NoSpill, nil)
	defer s.Close()
	if err := s.Put("k", payload(1_000, 1)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("k", payload(500, 2)); err != nil {
		t.Fatal(err)
	}
	if got := s.MemBytes(); got != 500 {
		t.Fatalf("mem use %d after replace, want 500", got)
	}
	got, err := s.Get("k")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload(500, 2)) {
		t.Fatal("replaced payload differs")
	}
	s.Delete("k")
	if s.MemBytes() != 0 || s.Len() != 0 {
		t.Fatal("delete did not free the entry")
	}
	if _, err := s.Get("k"); err == nil {
		t.Fatal("Get after Delete succeeded")
	}
}

func TestCloseRemovesSpillDir(t *testing.T) {
	base := t.TempDir()
	s := NewStore(base, 0, nil)
	if err := s.Put("k", payload(1_000, 3)); err != nil {
		t.Fatal(err)
	}
	dir := s.dir
	if dir == "" {
		t.Fatal("no spill dir created")
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); !os.IsNotExist(err) {
		t.Fatalf("spill dir %s survived Close", dir)
	}
	if err := s.Put("k", nil); err == nil {
		t.Fatal("Put on closed store succeeded")
	}
}

func TestHotPartitionReadmission(t *testing.T) {
	s := NewStore(t.TempDir(), 25_000, nil)
	defer s.Close()
	// a, b fill the watermark; c spills.
	for i, k := range []string{"a", "b", "c"} {
		if err := s.Put(k, payload(10_000, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	if s.MemBytes() != 20_000 || s.SpilledBytes() != 10_000 {
		t.Fatalf("mem=%d spilled=%d, want 20000/10000", s.MemBytes(), s.SpilledBytes())
	}
	// c cannot be re-admitted while a and b (primary residents) hold
	// the watermark.
	if got, _ := s.Get("c"); !bytes.Equal(got, payload(10_000, 2)) {
		t.Fatal("spilled payload corrupted")
	}
	if s.ReadmittedBytes() != 0 {
		t.Fatalf("readmitted %d with no headroom, want 0", s.ReadmittedBytes())
	}
	// Freeing a primary resident makes room: the next fetch of c is
	// promoted into memory and subsequent reads hit the cache.
	s.Delete("a")
	if got, _ := s.Get("c"); !bytes.Equal(got, payload(10_000, 2)) {
		t.Fatal("spilled payload corrupted")
	}
	if s.ReadmittedBytes() != 10_000 {
		t.Fatalf("readmitted %d, want 10000", s.ReadmittedBytes())
	}
	if s.MemBytes() != 20_000 {
		t.Fatalf("mem use %d after re-admission, want 20000", s.MemBytes())
	}
	// The hot copy keeps its frame on disk, so a new primary Put that
	// needs the room simply evicts it — and c still reads back whole.
	if err := s.Put("d", payload(10_000, 3)); err != nil {
		t.Fatal(err)
	}
	if got := s.SpilledBytes(); got != 10_000 {
		t.Fatalf("spilled %d after hot eviction made room, want 10000", got)
	}
	if got, _ := s.Get("c"); !bytes.Equal(got, payload(10_000, 2)) {
		t.Fatal("payload lost across hot eviction")
	}
}

func TestReadmissionLRU(t *testing.T) {
	s := NewStore(t.TempDir(), 20_000, nil)
	defer s.Close()
	// Everything spills except nothing is resident: watermark 20000,
	// three 10000-byte payloads -> a, b in memory, c spilled... keep it
	// deterministic instead: spill-everything via tiny watermark is no
	// re-admission, so use explicit deletes.
	for i, k := range []string{"x", "y", "z"} {
		if err := s.Put(k, payload(10_000, byte(i))); err != nil {
			t.Fatal(err)
		}
	}
	// x, y resident; z spilled. Free both residents.
	s.Delete("x")
	s.Delete("y")
	// z promotes; cache now holds z (10000/20000).
	if _, err := s.Get("z"); err != nil {
		t.Fatal(err)
	}
	// Two more spilled payloads via a full watermark.
	if err := s.Put("w", payload(10_000, 9)); err != nil {
		t.Fatal(err)
	}
	if err := s.Put("v", payload(10_000, 8)); err != nil {
		t.Fatal(err)
	}
	// w and v displaced nothing permanent; fetch both so whichever was
	// spilled gets promoted, evicting the least-recently-used hot copy.
	if _, err := s.Get("w"); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get("v"); err != nil {
		t.Fatal(err)
	}
	if got := s.MemBytes(); got > 20_000 {
		t.Fatalf("mem use %d exceeds watermark after promotions", got)
	}
	// Every payload still reads back correctly from cache or disk.
	for k, salt := range map[string]byte{"z": 2, "w": 9, "v": 8} {
		got, err := s.Get(k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, payload(10_000, salt)) {
			t.Fatalf("payload %q corrupted", k)
		}
	}
}

func TestGetRange(t *testing.T) {
	for _, tc := range []struct {
		name  string
		limit int64
		codec Codec
	}{
		{"memory", NoSpill, nil},
		{"spilled", 0, nil},
		{"spilled-codec", 0, flateCodec{}},
	} {
		t.Run(tc.name, func(t *testing.T) {
			s := NewStore(t.TempDir(), tc.limit, tc.codec)
			defer s.Close()
			data := payload(50_000, 5)
			if err := s.Put("k", data); err != nil {
				t.Fatal(err)
			}
			// Whole payload via chunked reads.
			var got []byte
			for off := int64(0); ; {
				chunk, size, err := s.GetRange("k", off, 7_000)
				if err != nil {
					t.Fatal(err)
				}
				if size != 50_000 {
					t.Fatalf("size %d, want 50000", size)
				}
				got = append(got, chunk...)
				off += int64(len(chunk))
				if off >= size {
					break
				}
			}
			if !bytes.Equal(got, data) {
				t.Fatal("chunked reads disagree with payload")
			}
			// Past-the-end reads return empty, not an error.
			chunk, size, err := s.GetRange("k", 50_000, 1_000)
			if err != nil || len(chunk) != 0 || size != 50_000 {
				t.Fatalf("past-end read = (%d bytes, %d, %v)", len(chunk), size, err)
			}
			// max <= 0 reads the rest.
			rest, _, err := s.GetRange("k", 49_000, 0)
			if err != nil || !bytes.Equal(rest, data[49_000:]) {
				t.Fatalf("rest read wrong: %d bytes, %v", len(rest), err)
			}
			if _, _, err := s.GetRange("k", -1, 10); err == nil {
				t.Fatal("negative offset should error")
			}
			if _, _, err := s.GetRange("missing", 0, 10); err == nil {
				t.Fatal("missing key should error")
			}
		})
	}
}
