package spill

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"sync"
)

// Snap returns the fast block codec: an LZ4-style byte-oriented LZ77
// compressor (greedy hash-table match finder, token/literal/offset
// sequences) framed in self-describing blocks. It trades ratio for
// speed — the snappy/lz4 point in the design space — and is the codec
// the wire layer negotiates for shuffle and DFS block transfers, where
// DEFLATE's bit-level entropy coding would cost more CPU than the
// bytes it saves. Like every Codec it round-trips exactly.
func Snap() Codec { return snapCodec{} }

type snapCodec struct{}

func (snapCodec) Name() string { return "snap" }

func (snapCodec) NewWriter(w io.Writer) io.WriteCloser {
	return &snapWriter{w: w, buf: make([]byte, 0, snapMaxBlock)}
}

func (snapCodec) NewReader(r io.Reader) (io.ReadCloser, error) {
	br, ok := r.(*bufio.Reader)
	if !ok {
		br = bufio.NewReader(r)
	}
	return &snapReader{r: br}, nil
}

const (
	// snapMaxBlock is the uncompressed block size the writer cuts the
	// stream into; the reader enforces it as the decode bound, so a
	// corrupt header can never demand a huge allocation.
	snapMaxBlock = 64 << 10
	// snapMinMatch is the shortest back-reference worth encoding.
	snapMinMatch  = 4
	snapTableBits = 13
	snapTableSize = 1 << snapTableBits
	// Block tags.
	snapTagRaw        = 0
	snapTagCompressed = 1
)

// snapTablePool recycles the match-finder hash tables (32 KB each)
// across blocks and goroutines.
var snapTablePool = sync.Pool{
	New: func() any { return new([snapTableSize]int32) },
}

func snapHash(v uint32) uint32 {
	// Multiplicative hash over the next four bytes (Knuth's constant),
	// folded to the table width.
	return (v * 2654435761) >> (32 - snapTableBits)
}

func snapLoad32(b []byte, i int) uint32 {
	return binary.LittleEndian.Uint32(b[i:])
}

// snapCompressBlock compresses one block (len(src) ≤ snapMaxBlock)
// into dst, returning nil when the result would not be smaller than
// the input — the caller stores such blocks raw.
func snapCompressBlock(dst, src []byte) []byte {
	if len(src) < snapMinMatch+4 {
		return nil
	}
	table := snapTablePool.Get().(*[snapTableSize]int32)
	defer snapTablePool.Put(table)
	for i := range table {
		table[i] = -1
	}
	dst = dst[:0]
	limit := len(src) // emitted output must stay under this to win
	// sLimit leaves room to load 4 bytes at every probe.
	sLimit := len(src) - 4
	lit := 0 // start of the pending literal run
	s := 0
	for s <= sLimit {
		h := snapHash(snapLoad32(src, s))
		cand := int(table[h])
		table[h] = int32(s)
		if cand < 0 || s-cand > 65535 || snapLoad32(src, cand) != snapLoad32(src, s) {
			s++
			continue
		}
		// Extend the match forward.
		matchLen := snapMinMatch
		for s+matchLen < len(src) && src[cand+matchLen] == src[s+matchLen] {
			matchLen++
		}
		var ok bool
		dst, ok = snapEmit(dst, src[lit:s], s-cand, matchLen, limit)
		if !ok {
			return nil
		}
		s += matchLen
		lit = s
	}
	// Tail literals: a final literal-only sequence (no offset follows).
	litLen := len(src) - lit
	need := 1 + litLen + litLen/255
	if len(dst)+need >= limit {
		return nil
	}
	dst = snapPutToken(dst, litLen, 0)
	dst = append(dst, src[lit:]...)
	return dst
}

// snapPutToken appends one token byte plus any length-extension bytes.
// matchExtra is matchLen-snapMinMatch, or 0 for the final sequence.
func snapPutToken(dst []byte, litLen, matchExtra int) []byte {
	tok := byte(0)
	if litLen >= 15 {
		tok = 15 << 4
	} else {
		tok = byte(litLen) << 4
	}
	if matchExtra >= 15 {
		tok |= 15
	} else {
		tok |= byte(matchExtra)
	}
	dst = append(dst, tok)
	if litLen >= 15 {
		dst = snapPutExt(dst, litLen-15)
	}
	return dst
}

// snapPutExt appends an LZ4-style length extension: 255-valued bytes
// plus a final remainder byte.
func snapPutExt(dst []byte, n int) []byte {
	for n >= 255 {
		dst = append(dst, 255)
		n -= 255
	}
	return append(dst, byte(n))
}

// snapEmit appends one literals+match sequence, reporting false when
// the output would no longer beat storing the block raw.
func snapEmit(dst, literals []byte, offset, matchLen, limit int) ([]byte, bool) {
	litLen := len(literals)
	matchExtra := matchLen - snapMinMatch
	need := 1 + litLen + litLen/255 + 2 + matchExtra/255 + 1
	if len(dst)+need >= limit {
		return dst, false
	}
	dst = snapPutToken(dst, litLen, matchExtra)
	dst = append(dst, literals...)
	var off [2]byte
	binary.LittleEndian.PutUint16(off[:], uint16(offset))
	dst = append(dst, off[0], off[1])
	if matchExtra >= 15 {
		dst = snapPutExt(dst, matchExtra-15)
	}
	return dst, true
}

// snapDecompressBlock decodes one compressed block into a fresh
// buffer of exactly rawLen bytes. Every read and copy is
// bounds-checked: corrupt input yields an error, never a panic or an
// allocation beyond rawLen (which the caller has already capped at
// snapMaxBlock).
func snapDecompressBlock(src []byte, rawLen int) ([]byte, error) {
	dst := make([]byte, rawLen)
	d, s := 0, 0
	for s < len(src) {
		tok := src[s]
		s++
		litLen := int(tok >> 4)
		if litLen == 15 {
			var err error
			litLen, s, err = snapReadExt(src, s, litLen)
			if err != nil {
				return nil, err
			}
		}
		if litLen > len(src)-s || litLen > rawLen-d {
			return nil, errSnapCorrupt
		}
		copy(dst[d:], src[s:s+litLen])
		d += litLen
		s += litLen
		if s == len(src) {
			// Final literal-only sequence.
			if d != rawLen {
				return nil, errSnapCorrupt
			}
			return dst, nil
		}
		if len(src)-s < 2 {
			return nil, errSnapCorrupt
		}
		offset := int(binary.LittleEndian.Uint16(src[s:]))
		s += 2
		if offset == 0 || offset > d {
			return nil, errSnapCorrupt
		}
		matchLen := int(tok&15) + snapMinMatch
		if tok&15 == 15 {
			var ext int
			var err error
			ext, s, err = snapReadExt(src, s, 0)
			if err != nil {
				return nil, err
			}
			matchLen += ext
		}
		if matchLen > rawLen-d {
			return nil, errSnapCorrupt
		}
		// Byte-wise copy: matches may overlap their own output.
		for i := 0; i < matchLen; i++ {
			dst[d] = dst[d-offset]
			d++
		}
	}
	if d != rawLen {
		return nil, errSnapCorrupt
	}
	return dst, nil
}

// snapReadExt reads an LZ4-style length extension starting at src[s].
func snapReadExt(src []byte, s, base int) (int, int, error) {
	n := base
	for {
		if s >= len(src) {
			return 0, s, errSnapCorrupt
		}
		b := src[s]
		s++
		n += int(b)
		if n > snapMaxBlock {
			return 0, s, errSnapCorrupt
		}
		if b != 255 {
			return n, s, nil
		}
	}
}

var errSnapCorrupt = fmt.Errorf("spill: snap: corrupt block")

// snapWriter cuts the stream into blocks, compressing each unless it
// is incompressible (then stored raw). Block header: one tag byte,
// uvarint raw length, and — for compressed blocks — a uvarint
// compressed length.
type snapWriter struct {
	w       io.Writer
	buf     []byte
	scratch []byte
	err     error
	closed  bool
}

// Write implements io.Writer.
func (sw *snapWriter) Write(p []byte) (int, error) {
	if sw.err != nil {
		return 0, sw.err
	}
	if sw.closed {
		return 0, io.ErrClosedPipe
	}
	total := len(p)
	for len(p) > 0 {
		room := snapMaxBlock - len(sw.buf)
		if room == 0 {
			if sw.err = sw.flushBlock(); sw.err != nil {
				return total - len(p), sw.err
			}
			continue
		}
		n := len(p)
		if n > room {
			n = room
		}
		sw.buf = append(sw.buf, p[:n]...)
		p = p[n:]
	}
	return total, nil
}

// flushBlock emits the buffered block.
func (sw *snapWriter) flushBlock() error {
	if len(sw.buf) == 0 {
		return nil
	}
	if cap(sw.scratch) < len(sw.buf) {
		sw.scratch = make([]byte, 0, snapMaxBlock)
	}
	comp := snapCompressBlock(sw.scratch[:0], sw.buf)
	var hdr [1 + 2*binary.MaxVarintLen32]byte
	n := 0
	if comp == nil {
		hdr[0] = snapTagRaw
		n = 1 + binary.PutUvarint(hdr[1:], uint64(len(sw.buf)))
		if _, err := sw.w.Write(hdr[:n]); err != nil {
			return err
		}
		if _, err := sw.w.Write(sw.buf); err != nil {
			return err
		}
	} else {
		hdr[0] = snapTagCompressed
		n = 1 + binary.PutUvarint(hdr[1:], uint64(len(sw.buf)))
		n += binary.PutUvarint(hdr[n:], uint64(len(comp)))
		if _, err := sw.w.Write(hdr[:n]); err != nil {
			return err
		}
		if _, err := sw.w.Write(comp); err != nil {
			return err
		}
	}
	sw.buf = sw.buf[:0]
	return nil
}

// Close flushes the final partial block without closing the
// underlying writer. Close is idempotent.
func (sw *snapWriter) Close() error {
	if sw.err != nil {
		return sw.err
	}
	if sw.closed {
		return nil
	}
	sw.closed = true
	sw.err = sw.flushBlock()
	return sw.err
}

// snapReader decodes the block stream.
type snapReader struct {
	r     *bufio.Reader
	block []byte
	pos   int
	err   error
}

// Read implements io.Reader.
func (sr *snapReader) Read(p []byte) (int, error) {
	for sr.pos == len(sr.block) {
		if sr.err != nil {
			return 0, sr.err
		}
		if err := sr.readBlock(); err != nil {
			sr.err = err
			return 0, err
		}
	}
	n := copy(p, sr.block[sr.pos:])
	sr.pos += n
	return n, nil
}

// readBlock loads and decodes the next block.
func (sr *snapReader) readBlock() error {
	tag, err := sr.r.ReadByte()
	if err != nil {
		return err // io.EOF: clean end between blocks
	}
	rawLen, err := binary.ReadUvarint(sr.r)
	if err != nil {
		return errSnapCorrupt
	}
	if rawLen == 0 || rawLen > snapMaxBlock {
		return errSnapCorrupt
	}
	switch tag {
	case snapTagRaw:
		block := make([]byte, rawLen)
		if _, err := io.ReadFull(sr.r, block); err != nil {
			return errSnapCorrupt
		}
		sr.block, sr.pos = block, 0
	case snapTagCompressed:
		compLen, err := binary.ReadUvarint(sr.r)
		if err != nil || compLen == 0 || compLen > rawLen+rawLen/255+16 {
			return errSnapCorrupt
		}
		comp := make([]byte, compLen)
		if _, err := io.ReadFull(sr.r, comp); err != nil {
			return errSnapCorrupt
		}
		block, err := snapDecompressBlock(comp, int(rawLen))
		if err != nil {
			return err
		}
		sr.block, sr.pos = block, 0
	default:
		return errSnapCorrupt
	}
	return nil
}

// Close implements io.Closer.
func (sr *snapReader) Close() error { return nil }
