package spill

import (
	"bytes"
	"io"
	"math/rand"
	"testing"
)

// roundTrip compresses data through c and decompresses it back.
func roundTrip(t *testing.T, c Codec, data []byte) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := c.NewWriter(&buf)
	if _, err := w.Write(data); err != nil {
		t.Fatalf("write: %v", err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	r, err := c.NewReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("reader: %v", err)
	}
	defer r.Close()
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	return out
}

func TestSnapRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := map[string][]byte{
		"empty":       nil,
		"tiny":        []byte("ab"),
		"word":        []byte("the quick brown fox jumps over the lazy dog"),
		"zeros":       make([]byte, 200_000),
		"block-edge":  bytes.Repeat([]byte("x"), snapMaxBlock),
		"block-edge1": bytes.Repeat([]byte("y"), snapMaxBlock+1),
	}
	// Highly compressible text spanning several blocks.
	cases["text"] = bytes.Repeat([]byte("hetmr wire layer shuffle partition "), 8000)
	// Incompressible random data spanning several blocks.
	random := make([]byte, 3*snapMaxBlock+17)
	rng.Read(random)
	cases["random"] = random
	// Mixed: runs of pattern and runs of noise.
	mixed := append(append([]byte{}, cases["text"][:70000]...), random[:70000]...)
	cases["mixed"] = mixed
	for name, data := range cases {
		out := roundTrip(t, Snap(), data)
		if !bytes.Equal(out, data) {
			t.Errorf("%s: round trip corrupted %d bytes -> %d bytes", name, len(data), len(out))
		}
	}
}

func TestSnapCompresses(t *testing.T) {
	data := bytes.Repeat([]byte("shuffle partition payload "), 10000)
	var buf bytes.Buffer
	w := Snap().NewWriter(&buf)
	w.Write(data)
	w.Close()
	if buf.Len() >= len(data)/2 {
		t.Errorf("snap compressed %d bytes to only %d", len(data), buf.Len())
	}
}

func TestSnapWriterChunkedWrites(t *testing.T) {
	data := bytes.Repeat([]byte("abcdefgh"), 40000) // >4 blocks
	var buf bytes.Buffer
	w := Snap().NewWriter(&buf)
	for off := 0; off < len(data); off += 1000 {
		end := off + 1000
		if end > len(data) {
			end = len(data)
		}
		if _, err := w.Write(data[off:end]); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	r, _ := Snap().NewReader(&buf)
	out, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, data) {
		t.Fatal("chunked round trip corrupted data")
	}
}

func TestSnapDecodeGarbage(t *testing.T) {
	// Corrupt streams must error, never panic.
	streams := [][]byte{
		{snapTagCompressed, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0xff, 0x01},
		{snapTagCompressed, 10, 5, 0xf0, 1, 2},
		{snapTagRaw, 200, 1, 2, 3},
		{99, 4, 1, 2, 3, 4},
		{snapTagCompressed, 4, 3, 0x01, 0xaa, 0x00}, // offset 0
	}
	for i, s := range streams {
		r, _ := Snap().NewReader(bytes.NewReader(s))
		if _, err := io.ReadAll(r); err == nil {
			t.Errorf("stream %d: corrupt input decoded without error", i)
		}
	}
}

func TestCodecByName(t *testing.T) {
	for _, name := range CodecNames() {
		c, ok := CodecByName(name)
		if !ok {
			t.Fatalf("CodecByName(%q) not found", name)
		}
		if c.Name() != name {
			t.Errorf("codec %q reports name %q", name, c.Name())
		}
		data := bytes.Repeat([]byte("payload "), 512)
		if out := roundTrip(t, c, data); !bytes.Equal(out, data) {
			t.Errorf("codec %q corrupted data", name)
		}
	}
	if _, ok := CodecByName("nope"); ok {
		t.Error("unknown codec resolved")
	}
}

// FuzzSnapRoundTrip: any input must compress and decompress back to
// itself.
func FuzzSnapRoundTrip(f *testing.F) {
	f.Add([]byte("hello hello hello hello"))
	f.Add(make([]byte, 70000))
	f.Fuzz(func(t *testing.T, data []byte) {
		var buf bytes.Buffer
		w := Snap().NewWriter(&buf)
		w.Write(data)
		if err := w.Close(); err != nil {
			t.Fatal(err)
		}
		r, _ := Snap().NewReader(bytes.NewReader(buf.Bytes()))
		out, err := io.ReadAll(r)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, data) {
			t.Fatal("round trip mismatch")
		}
	})
}

// FuzzSnapDecode: arbitrary input to the decoder must error or decode
// cleanly — never panic, never produce unbounded output.
func FuzzSnapDecode(f *testing.F) {
	f.Add([]byte{snapTagCompressed, 8, 4, 0x11, 0xaa, 0x01, 0x00})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, _ := Snap().NewReader(bytes.NewReader(data))
		n, _ := io.Copy(io.Discard, r)
		// Output is bounded by the block framing: each block decodes
		// to at most snapMaxBlock bytes, and blocks consume input.
		if n > int64(len(data))*int64(snapMaxBlock) {
			t.Fatalf("decoded %d bytes from %d input bytes", n, len(data))
		}
	})
}
