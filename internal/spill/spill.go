// Package spill is the bounded-memory payload store behind the
// streaming data plane: a keyed byte store that keeps payloads in
// memory up to a configurable watermark and spills the rest to files
// under a temp directory, optionally compressed frame by frame. One
// implementation backs the DFS block stores (internal/hdfs), the
// tracker-side shuffle stores (internal/netmr) and the live runner's
// sorted-run stores (internal/core), so every layer shares the same
// watermark semantics and the same SpillBytes meter
// (internal/metrics).
package spill

import (
	"bytes"
	"fmt"
	"io"
	"os"
	"sync"

	"hetmr/internal/metrics"
)

// NoSpill keeps every payload in memory — the historical behaviour of
// the stores this package replaced. Any negative memLimit means the
// same; this constant just names the convention. A memLimit of 0
// spills every payload (a pure file store). There is deliberately no
// "SpillAll" constant here: the engine layer exports one with a
// different value for its own zero-value-friendly convention, and two
// identically named constants with opposite meanings would be a trap.
const NoSpill int64 = -1

// entry is one stored payload: in memory, spilled to a file, or both
// (a spilled payload re-admitted into the hot cache keeps its frame on
// disk so eviction is free).
type entry struct {
	mem  []byte
	path string // spilled frame ("" while in memory)
	size int64  // payload size, pre-compression
	hot  bool   // re-admitted cache copy (evictable; file remains)
	use  int64  // LRU clock tick of the last access (hot entries)
}

// Store is a keyed payload store with a memory watermark. It is safe
// for concurrent use. Payloads returned by Get alias the store's
// in-memory copy and must not be modified.
type Store struct {
	mu       sync.Mutex
	baseDir  string // caller-supplied parent for the spill dir
	dir      string // created lazily on first spill
	memLimit int64
	codec    Codec
	entries  map[string]entry
	memUse   int64
	held     int64 // resident payload bytes, in memory or on disk
	spilled  int64
	readmit  int64 // cumulative bytes promoted back into memory
	clock    int64 // LRU clock for hot-entry eviction
	seq      int
	closed   bool
}

// NewStore builds a store spilling under a fresh directory inside
// baseDir ("" selects os.TempDir()). memLimit is the in-memory
// watermark in bytes: NoSpill (any negative value) never spills, zero
// spills everything, a positive limit keeps payloads in memory until
// adding one would exceed it. codec, when non-nil, compresses spilled
// frames (in-memory payloads are never compressed).
func NewStore(baseDir string, memLimit int64, codec Codec) *Store {
	return &Store{
		baseDir:  baseDir,
		memLimit: memLimit,
		codec:    codec,
		entries:  make(map[string]entry),
	}
}

// spillDir lazily creates the spill directory. Callers hold s.mu.
func (s *Store) spillDir() (string, error) {
	if s.dir != "" {
		return s.dir, nil
	}
	base := s.baseDir
	if base == "" {
		base = os.TempDir()
	}
	dir, err := os.MkdirTemp(base, "hetmr-spill-")
	if err != nil {
		return "", fmt.Errorf("spill: %w", err)
	}
	s.dir = dir
	return dir, nil
}

// Put stores data under key, replacing any previous payload. The
// store copies in-memory payloads, so the caller keeps ownership of
// data.
func (s *Store) Put(key string, data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return fmt.Errorf("spill: put %q on closed store", key)
	}
	s.dropLocked(key)
	size := int64(len(data))
	s.held += size
	// New primary payloads outrank cached re-admissions: evict hot
	// copies (their frames stay on disk) before deciding to spill.
	if s.memLimit >= 0 && s.memUse+size > s.memLimit {
		s.evictHotLocked(size)
	}
	if s.memLimit < 0 || s.memUse+size <= s.memLimit {
		s.entries[key] = entry{mem: append([]byte(nil), data...), size: size}
		s.memUse += size
		return nil
	}
	dir, err := s.spillDir()
	if err != nil {
		return err
	}
	s.seq++
	path := fmt.Sprintf("%s%cf%06d", dir, os.PathSeparator, s.seq)
	if err := s.writeFrame(path, data); err != nil {
		return err
	}
	s.entries[key] = entry{path: path, size: size}
	s.spilled += size
	metrics.SpillBytes.Add(size)
	return nil
}

// writeFrame writes one payload to path, through the codec when set.
func (s *Store) writeFrame(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	var w io.Writer = f
	var cw io.WriteCloser
	if s.codec != nil {
		cw = s.codec.NewWriter(f)
		w = cw
	}
	if _, err := w.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("spill: write frame: %w", err)
	}
	if cw != nil {
		if err := cw.Close(); err != nil {
			f.Close()
			return fmt.Errorf("spill: close frame: %w", err)
		}
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("spill: %w", err)
	}
	return nil
}

// Get returns the payload under key. In-memory payloads are returned
// without copying (treat them as immutable); spilled payloads are read
// back whole — O(payload) transient memory, freed once the caller
// drops it.
func (s *Store) Get(key string) ([]byte, error) {
	r, err := s.Open(key)
	if err != nil {
		return nil, err
	}
	defer r.Close()
	if br, ok := r.(*memReader); ok {
		return br.data, nil
	}
	return io.ReadAll(r)
}

// Has reports whether key is stored.
func (s *Store) Has(key string) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.entries[key]
	return ok
}

// memReader serves an in-memory payload; Get short-circuits it to
// avoid a copy.
type memReader struct {
	bytes.Reader
	data []byte
}

func (*memReader) Close() error { return nil }

// Open returns a streaming reader over key's payload — the chunked
// read path: a spilled payload streams from its file (through the
// codec) without materializing. Hot spilled payloads that fit under
// the watermark are re-admitted into memory first (see GetRange), so
// repeated opens of the same partition are served from the cache.
func (s *Store) Open(key string) (io.ReadCloser, error) {
	s.mu.Lock()
	e, ok := s.entries[key]
	codec := s.codec
	// An empty in-memory payload has a nil mem slice; no path means it
	// was never spilled, so it still serves from memory.
	if ok && (e.mem != nil || e.path == "") {
		s.touchLocked(key, e)
		s.mu.Unlock()
		r := &memReader{data: e.mem}
		r.Reset(e.mem)
		return r, nil
	}
	readmit := ok && s.memLimit > 0 && e.size <= s.memLimit
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("spill: no payload under %q", key)
	}
	if readmit {
		if data, err := s.readmitSpilled(key, e); err == nil {
			r := &memReader{data: data}
			r.Reset(data)
			return r, nil
		}
		// Fall through to the streaming path on any re-admission
		// failure — serving the read matters more than caching it.
	}
	f, err := os.Open(e.path)
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	if codec == nil {
		return f, nil
	}
	cr, err := codec.NewReader(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("spill: open frame: %w", err)
	}
	return &frameReader{ReadCloser: cr, file: f}, nil
}

// GetRange returns up to max bytes of key's payload starting at off,
// along with the payload's total size — the primitive behind chunked
// FetchPartition serving. max <= 0 means "the rest". Reads past the
// end return an empty slice, not an error, so callers can detect the
// end by comparing off against the returned size. A spilled payload is
// re-admitted into the hot cache when it fits under the watermark, so
// a reducer's repeated chunk fetches decompress the frame once, not
// once per chunk.
func (s *Store) GetRange(key string, off, max int64) ([]byte, int64, error) {
	if off < 0 {
		return nil, 0, fmt.Errorf("spill: negative offset %d for %q", off, key)
	}
	s.mu.Lock()
	e, ok := s.entries[key]
	if ok && (e.mem != nil || e.path == "") {
		s.touchLocked(key, e)
		s.mu.Unlock()
		return sliceRange(e.mem, off, max), e.size, nil
	}
	readmit := ok && s.memLimit > 0 && e.size <= s.memLimit
	s.mu.Unlock()
	if !ok {
		return nil, 0, fmt.Errorf("spill: no payload under %q", key)
	}
	if readmit {
		if data, err := s.readmitSpilled(key, e); err == nil {
			return sliceRange(data, off, max), e.size, nil
		}
	}
	// Too big for the cache (or the watermark is 0): stream the frame,
	// discard the prefix, read the window.
	f, err := os.Open(e.path)
	if err != nil {
		return nil, 0, fmt.Errorf("spill: %w", err)
	}
	var r io.Reader = f
	var cr io.ReadCloser
	if s.codec != nil {
		if cr, err = s.codec.NewReader(f); err != nil {
			f.Close()
			return nil, 0, fmt.Errorf("spill: open frame: %w", err)
		}
		r = cr
	}
	defer func() {
		if cr != nil {
			cr.Close()
		}
		f.Close()
	}()
	if off > e.size {
		off = e.size
	}
	if _, err := io.CopyN(io.Discard, r, off); err != nil && err != io.EOF {
		return nil, 0, fmt.Errorf("spill: seek frame: %w", err)
	}
	n := e.size - off
	if max > 0 && max < n {
		n = max
	}
	out := make([]byte, n)
	if _, err := io.ReadFull(r, out); err != nil {
		return nil, 0, fmt.Errorf("spill: read frame range: %w", err)
	}
	return out, e.size, nil
}

// sliceRange views [off, off+max) of data, clamped to its bounds.
func sliceRange(data []byte, off, max int64) []byte {
	if off >= int64(len(data)) {
		return nil
	}
	end := int64(len(data))
	if max > 0 && off+max < end {
		end = off + max
	}
	return data[off:end]
}

// touchLocked bumps key's LRU clock. Callers hold s.mu.
func (s *Store) touchLocked(key string, e entry) {
	s.clock++
	e.use = s.clock
	s.entries[key] = e
}

// evictHotLocked evicts least-recently-used hot cache copies until
// need more bytes fit under the watermark or no hot entries remain
// (their spill frames stay on disk, so eviction never loses data).
// It reports whether the headroom was achieved. Callers hold s.mu.
func (s *Store) evictHotLocked(need int64) bool {
	for s.memUse+need > s.memLimit {
		victim := ""
		var oldest int64
		for k, e := range s.entries {
			if e.hot && (victim == "" || e.use < oldest) {
				victim, oldest = k, e.use
			}
		}
		if victim == "" {
			return false
		}
		e := s.entries[victim]
		e.mem = nil
		e.hot = false
		s.entries[victim] = e
		s.memUse -= e.size
	}
	return true
}

// readmitSpilled reads a spilled frame whole and promotes it into the
// hot cache if headroom can be made by evicting colder cache copies.
// The frame stays on disk either way; the returned payload is valid
// even when caching fails.
func (s *Store) readmitSpilled(key string, e entry) ([]byte, error) {
	data, err := s.readFrame(e.path)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.entries[key]
	if !ok || cur.path != e.path || cur.mem != nil {
		// Deleted, replaced, or raced with another re-admission; serve
		// what we read without touching the cache.
		if ok && cur.mem != nil {
			return cur.mem, nil
		}
		return data, nil
	}
	if s.evictHotLocked(cur.size) {
		cur.mem = data
		cur.hot = true
		s.memUse += cur.size
		s.readmit += cur.size
		s.touchLocked(key, cur)
	}
	return data, nil
}

// readFrame reads one spilled frame whole, through the codec when set.
func (s *Store) readFrame(path string) ([]byte, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, fmt.Errorf("spill: %w", err)
	}
	defer f.Close()
	var r io.Reader = f
	if s.codec != nil {
		cr, err := s.codec.NewReader(f)
		if err != nil {
			return nil, fmt.Errorf("spill: open frame: %w", err)
		}
		defer cr.Close()
		r = cr
	}
	data, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("spill: read frame: %w", err)
	}
	return data, nil
}

// frameReader closes both the codec stream and the underlying file.
type frameReader struct {
	io.ReadCloser
	file *os.File
}

func (r *frameReader) Close() error {
	err := r.ReadCloser.Close()
	if ferr := r.file.Close(); err == nil {
		err = ferr
	}
	return err
}

// Size returns the payload size under key (pre-compression).
func (s *Store) Size(key string) (int64, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.entries[key]
	if !ok {
		return 0, fmt.Errorf("spill: no payload under %q", key)
	}
	return e.size, nil
}

// Delete removes key's payload (and its spill file, if any). Deleting
// an absent key is a no-op.
func (s *Store) Delete(key string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dropLocked(key)
}

// dropLocked removes one entry. Callers hold s.mu.
func (s *Store) dropLocked(key string) {
	e, ok := s.entries[key]
	if !ok {
		return
	}
	if e.mem != nil {
		s.memUse -= e.size
	}
	if e.path != "" {
		os.Remove(e.path)
	}
	s.held -= e.size
	delete(s.entries, key)
}

// MemBytes reports the bytes currently held in memory.
func (s *Store) MemBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.memUse
}

// HeldBytes reports the resident payload bytes the store currently
// holds, in memory or in spill frames (sizes pre-compression) — the
// live-footprint figure behind per-tenant spill budgets, where
// SpilledBytes is a cumulative traffic meter.
func (s *Store) HeldBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.held
}

// SpilledBytes reports the cumulative payload bytes spilled to disk
// (pre-compression).
func (s *Store) SpilledBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.spilled
}

// ReadmittedBytes reports the cumulative payload bytes promoted from
// spill frames back into the hot in-memory cache.
func (s *Store) ReadmittedBytes() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.readmit
}

// Len reports the number of stored payloads.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.entries)
}

// Close drops every payload and removes the spill directory. The
// store rejects further Puts; Close is idempotent.
func (s *Store) Close() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	s.closed = true
	s.entries = make(map[string]entry)
	s.memUse = 0
	s.held = 0
	if s.dir != "" {
		return os.RemoveAll(s.dir)
	}
	return nil
}
