package analysis

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
)

// Program is a whole type-checked view of the code under analysis: the
// module's (or a fixture tree's) packages with full syntax and type
// information, plus every transitively imported standard-library
// package type-checked from GOROOT source. Nothing is downloaded — the
// loader is how hetlint runs without golang.org/x/tools in go.mod.
type Program struct {
	// Fset maps positions for every parsed file.
	Fset *token.FileSet
	// Packages are the analyzed (module-local) packages in dependency
	// order: a package's module imports precede it.
	Packages []*Package
	// Module is the module path ("hetmr"), or "" in fixture mode.
	Module string
	// Root is the directory Module (or the fixture tree) lives in.
	Root string

	loader *loader
}

// Package is one analyzed package: parsed files (with comments, for
// directive handling) and full type-checking facts.
type Package struct {
	// Path is the import path.
	Path string
	// Dir is the directory the package was loaded from.
	Dir string
	// Files are the package's parsed non-test Go files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// Info holds Types, Defs, Uses and Selections for Files.
	Info *types.Info
}

// IsLocal reports whether p is one of the analyzed (module-local or
// fixture) packages, as opposed to a GOROOT dependency.
func (prog *Program) IsLocal(p *types.Package) bool {
	for _, pkg := range prog.Packages {
		if pkg.Pkg == p {
			return true
		}
	}
	return false
}

// loader resolves and type-checks packages from source. Module-local
// (or fixture-local) packages get full syntax+Info and are recorded as
// Packages; GOROOT dependencies are type-checked lean.
type loader struct {
	fset   *token.FileSet
	ctx    build.Context
	module string // module path, "" in fixture mode
	root   string // module root dir, or fixture src root

	pkgs    map[string]*types.Package
	loading map[string]bool
	local   []*Package // analyzed packages in completion (dependency) order
}

// LoadModule type-checks the module rooted at dir (located via go.mod)
// and returns a Program over the packages named by rel — module-root-
// relative directories such as "internal/rpcnet", or "./..." to load
// every package in the module. Test files are not loaded; hetlint
// checks production code.
func LoadModule(dir string, rel ...string) (*Program, error) {
	root, module, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	l := newLoader(module, root)
	var paths []string
	for _, r := range rel {
		if r == "./..." || r == "..." {
			all, err := modulePackages(l.ctx, root)
			if err != nil {
				return nil, err
			}
			for _, rel := range all {
				if rel == "." {
					paths = append(paths, module)
				} else {
					paths = append(paths, module+"/"+rel)
				}
			}
			continue
		}
		r = strings.TrimPrefix(filepath.ToSlash(filepath.Clean(r)), "./")
		if r == "." || r == "" {
			paths = append(paths, module)
		} else {
			paths = append(paths, module+"/"+r)
		}
	}
	return l.program(paths)
}

// LoadFixture type-checks a GOPATH-style fixture tree (analysistest's
// testdata/src layout): every import path resolves against srcRoot
// first, then GOROOT. All fixture packages are analyzed packages.
func LoadFixture(srcRoot string, pkgPaths ...string) (*Program, error) {
	l := newLoader("", srcRoot)
	return l.program(pkgPaths)
}

func newLoader(module, root string) *loader {
	ctx := build.Default
	// Cgo files would need a C toolchain pass; the module has none and
	// GOROOT packages all have pure-Go fallbacks.
	ctx.CgoEnabled = false
	return &loader{
		fset:    token.NewFileSet(),
		ctx:     ctx,
		module:  module,
		root:    root,
		pkgs:    make(map[string]*types.Package),
		loading: make(map[string]bool),
	}
}

func (l *loader) program(paths []string) (*Program, error) {
	for _, p := range paths {
		if _, err := l.Import(p); err != nil {
			return nil, err
		}
	}
	return &Program{
		Fset:     l.fset,
		Packages: l.local,
		Module:   l.module,
		Root:     l.root,
		loader:   l,
	}, nil
}

// Import implements types.Importer. Resolution order: module/fixture
// root, then GOROOT/src, then GOROOT/src/vendor (the stdlib's vendored
// golang.org/x dependencies).
func (l *loader) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	if l.loading[path] {
		return nil, fmt.Errorf("import cycle through %s", path)
	}
	l.loading[path] = true
	defer delete(l.loading, path)

	dir, isLocal := l.resolve(path)
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}

	mode := parser.SkipObjectResolution
	if isLocal {
		mode |= parser.ParseComments
	}
	var files []*ast.File
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, mode)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	var info *types.Info
	if isLocal {
		info = &types.Info{
			Types:      make(map[ast.Expr]types.TypeAndValue),
			Defs:       make(map[*ast.Ident]types.Object),
			Uses:       make(map[*ast.Ident]types.Object),
			Selections: make(map[*ast.SelectorExpr]*types.Selection),
		}
	}
	conf := types.Config{Importer: l, Error: func(error) {}}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", path, err)
	}
	l.pkgs[path] = pkg
	if isLocal {
		l.local = append(l.local, &Package{
			Path:  path,
			Dir:   dir,
			Files: files,
			Pkg:   pkg,
			Info:  info,
		})
	}
	return pkg, nil
}

// resolve maps an import path to a source directory and reports
// whether the package is local (analyzed with full Info).
func (l *loader) resolve(path string) (dir string, isLocal bool) {
	if l.module != "" {
		if path == l.module {
			return l.root, true
		}
		if rest, ok := strings.CutPrefix(path, l.module+"/"); ok {
			return filepath.Join(l.root, filepath.FromSlash(rest)), true
		}
	} else {
		// Fixture mode: anything present under the src root is local.
		d := filepath.Join(l.root, filepath.FromSlash(path))
		if st, err := os.Stat(d); err == nil && st.IsDir() {
			return d, true
		}
	}
	d := filepath.Join(runtime.GOROOT(), "src", filepath.FromSlash(path))
	if _, err := os.Stat(d); err != nil {
		d = filepath.Join(runtime.GOROOT(), "src", "vendor", filepath.FromSlash(path))
	}
	return d, false
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root directory and module path.
func findModule(dir string) (root, module string, err error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for d := abs; ; d = filepath.Dir(d) {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("%s/go.mod: no module line", d)
		}
		if filepath.Dir(d) == d {
			return "", "", fmt.Errorf("no go.mod found above %s", abs)
		}
	}
}

// modulePackages lists every buildable package directory under root as
// module-relative import suffixes, skipping testdata, vendor and
// hidden directories.
func modulePackages(ctx build.Context, root string) ([]string, error) {
	var out []string
	err := filepath.WalkDir(root, func(path string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if !d.IsDir() {
			return nil
		}
		name := d.Name()
		if path != root && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
			return filepath.SkipDir
		}
		if _, err := ctx.ImportDir(path, 0); err != nil {
			return nil // no buildable Go files here
		}
		rel, err := filepath.Rel(root, path)
		if err != nil {
			return err
		}
		out = append(out, rel)
		return nil
	})
	if err != nil {
		return nil, err
	}
	sort.Strings(out)
	for i, rel := range out {
		if rel == "." {
			out[i] = "."
			continue
		}
		out[i] = filepath.ToSlash(rel)
	}
	return out, nil
}
