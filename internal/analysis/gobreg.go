package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// GobReg checks every value that flows into the gob wire layer —
// arguments and replies of rpcnet Client.Call/CallTimeout, and values
// passed to rpcnet Marshal/Unmarshal — for static encodability,
// catching at lint time what gob otherwise reports as a runtime error
// mid-job:
//
//   - components gob cannot encode (func, chan, unsafe.Pointer)
//     reachable through exported fields;
//   - struct types with fields but no exported ones (gob encodes
//     nothing, the receiver sees a zero value);
//   - decode targets that are not pointers;
//   - interface-typed components with no gob.Register call anywhere in
//     the program providing a concrete implementation (resolved
//     program-wide in the Finish pass, since registrations and call
//     sites live in different packages).
var GobReg = &Analyzer{
	Name: "gobreg",
	Doc:  "check rpcnet call arguments and gob frame bodies for static gob-encodability and required gob.Register calls",
	Run:  runGobReg,
	Finish: func(prog *Program, shared map[string]any, report func(Diagnostic)) {
		finishGobReg(prog, shared, report)
	},
}

// gobObligation is an interface-typed wire component whose concrete
// implementations must be gob-registered somewhere in the program.
type gobObligation struct {
	iface types.Type
	pos   token.Position
	where string
}

const (
	sharedGobRegistered  = "gobreg.registered"  // map[string]types.Type
	sharedGobObligations = "gobreg.obligations" // []gobObligation
)

func runGobReg(pass *Pass) error {
	registered, _ := pass.Shared[sharedGobRegistered].(map[string]types.Type)
	if registered == nil {
		registered = make(map[string]types.Type)
		pass.Shared[sharedGobRegistered] = registered
	}
	seenMsg := make(map[string]bool) // dedupe per package: one report per (type, problem)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := calleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil {
				return true
			}
			switch {
			case fn.Pkg().Path() == "encoding/gob" && (fn.Name() == "Register" || fn.Name() == "RegisterName"):
				argIdx := 0
				if fn.Name() == "RegisterName" {
					argIdx = 1
				}
				if len(call.Args) > argIdx {
					if t := pass.TypesInfo.Types[call.Args[argIdx]].Type; t != nil {
						registered[t.String()] = t
					}
				}
			case pkgNamed(fn.Pkg(), "rpcnet") && recvTypeName(fn) == "" && fn.Name() == "Marshal":
				if len(call.Args) == 1 {
					checkGobValue(pass, seenMsg, call.Args[0], "Marshal argument", false)
				}
			case pkgNamed(fn.Pkg(), "rpcnet") && recvTypeName(fn) == "" && fn.Name() == "Unmarshal":
				if len(call.Args) == 2 {
					checkGobValue(pass, seenMsg, call.Args[1], "Unmarshal target", true)
				}
			case pkgNamed(fn.Pkg(), "rpcnet") && recvTypeName(fn) == "Client" && (fn.Name() == "Call" || fn.Name() == "CallTimeout"):
				if len(call.Args) >= 3 {
					checkGobValue(pass, seenMsg, call.Args[1], fn.Name()+" argument", false)
					checkGobValue(pass, seenMsg, call.Args[2], fn.Name()+" reply", true)
				}
			}
			return true
		})
	}
	return nil
}

// checkGobValue validates one expression handed to the gob layer.
// isTarget marks decode destinations, which must be pointers.
func checkGobValue(pass *Pass, seen map[string]bool, e ast.Expr, where string, isTarget bool) {
	tv, ok := pass.TypesInfo.Types[e]
	if !ok || tv.Type == nil {
		return
	}
	t := tv.Type
	if tv.IsNil() {
		return
	}
	if _, isIface := t.Underlying().(*types.Interface); isIface {
		// Static type is already an interface (a forwarded `any`):
		// the concrete type is unknown here, some other site checks it.
		return
	}
	if isTarget {
		if _, isPtr := t.Underlying().(*types.Pointer); !isPtr {
			reportOnce(pass, seen, e.Pos(), t, where,
				"%s has non-pointer type %s; gob decode needs a pointer, the callee will return an error", where, t)
			return
		}
	}
	if path, bad := unencodableComponent(t, nil); bad != "" {
		reportOnce(pass, seen, e.Pos(), t, where+"/"+bad,
			"%s of type %s is not gob-encodable: %s (%s)", where, t, bad, path)
	}
	for _, ob := range interfaceComponents(t, nil) {
		obs, _ := pass.Shared[sharedGobObligations].([]gobObligation)
		pass.Shared[sharedGobObligations] = append(obs, gobObligation{
			iface: ob.iface,
			pos:   pass.Fset.Position(e.Pos()),
			where: fmt.Sprintf("%s of type %s (component %s)", where, t, ob.path),
		})
	}
}

func reportOnce(pass *Pass, seen map[string]bool, pos token.Pos, t types.Type, key, format string, args ...any) {
	k := t.String() + "|" + key
	if seen[k] {
		return
	}
	seen[k] = true
	pass.Reportf(pos, format, args...)
}

// unencodableComponent walks t's exported structure looking for a
// component gob cannot encode. It returns a dotted field path and a
// description, or "", "" when t is statically encodable.
func unencodableComponent(t types.Type, seen []types.Type) (path, problem string) {
	for _, s := range seen {
		if types.Identical(s, t) {
			return "", ""
		}
	}
	seen = append(seen, t)
	if hasSelfEncoder(t) {
		return "", ""
	}
	switch u := t.Underlying().(type) {
	case *types.Signature:
		return typeLabel(t), "gob cannot encode funcs"
	case *types.Chan:
		return typeLabel(t), "gob cannot encode channels"
	case *types.Pointer:
		return unencodableComponent(u.Elem(), seen)
	case *types.Slice:
		p, prob := unencodableComponent(u.Elem(), seen)
		return prefixPath("[]", p, prob)
	case *types.Array:
		p, prob := unencodableComponent(u.Elem(), seen)
		return prefixPath("[n]", p, prob)
	case *types.Map:
		if p, prob := unencodableComponent(u.Key(), seen); prob != "" {
			return "map key " + p, prob
		}
		p, prob := unencodableComponent(u.Elem(), seen)
		return prefixPath("map value ", p, prob)
	case *types.Struct:
		exported := 0
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			exported++
			if p, prob := unencodableComponent(f.Type(), seen); prob != "" {
				return f.Name() + dotPath(p), prob
			}
		}
		if exported == 0 && u.NumFields() > 0 {
			return typeLabel(t), "struct has no exported fields, gob encodes nothing"
		}
	case *types.Basic:
		if u.Kind() == types.UnsafePointer {
			return typeLabel(t), "gob cannot encode unsafe.Pointer"
		}
	}
	return "", ""
}

// ifaceComponent is one interface-typed piece of a wire value.
type ifaceComponent struct {
	iface types.Type
	path  string
}

// interfaceComponents lists the interface-typed components reachable
// through t's exported structure — each needs a registered concrete
// implementation for gob to work at runtime.
func interfaceComponents(t types.Type, seen []types.Type) []ifaceComponent {
	for _, s := range seen {
		if types.Identical(s, t) {
			return nil
		}
	}
	seen = append(seen, t)
	if hasSelfEncoder(t) {
		return nil
	}
	switch u := t.Underlying().(type) {
	case *types.Interface:
		return []ifaceComponent{{iface: t, path: typeLabel(t)}}
	case *types.Pointer:
		return interfaceComponents(u.Elem(), seen)
	case *types.Slice:
		return interfaceComponents(u.Elem(), seen)
	case *types.Array:
		return interfaceComponents(u.Elem(), seen)
	case *types.Map:
		return append(interfaceComponents(u.Key(), seen), interfaceComponents(u.Elem(), seen)...)
	case *types.Struct:
		var out []ifaceComponent
		for i := 0; i < u.NumFields(); i++ {
			f := u.Field(i)
			if !f.Exported() {
				continue
			}
			for _, c := range interfaceComponents(f.Type(), seen) {
				c.path = f.Name() + dotPath(c.path)
				out = append(out, c)
			}
		}
		return out
	}
	return nil
}

// hasSelfEncoder reports whether t encodes itself via GobEncoder,
// BinaryMarshaler or TextMarshaler — gob defers to those, so their
// internals are exempt from the structural walk.
func hasSelfEncoder(t types.Type) bool {
	ms := types.NewMethodSet(t)
	if _, isPtr := t.(*types.Pointer); !isPtr {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			ms = types.NewMethodSet(types.NewPointer(t))
		}
	}
	for i := 0; i < ms.Len(); i++ {
		switch ms.At(i).Obj().Name() {
		case "GobEncode", "MarshalBinary", "MarshalText":
			return true
		}
	}
	return false
}

// finishGobReg resolves interface obligations against the program-wide
// set of gob.Register calls.
func finishGobReg(prog *Program, shared map[string]any, report func(Diagnostic)) {
	registered, _ := shared[sharedGobRegistered].(map[string]types.Type)
	obs, _ := shared[sharedGobObligations].([]gobObligation)
	seen := make(map[string]bool)
	for _, ob := range obs {
		iface, ok := ob.iface.Underlying().(*types.Interface)
		if !ok {
			continue
		}
		satisfied := false
		if iface.Empty() && len(registered) > 0 {
			satisfied = true
		} else {
			for _, rt := range registered {
				if types.Implements(rt, iface) || types.Implements(types.NewPointer(rt), iface) {
					satisfied = true
					break
				}
			}
		}
		if satisfied {
			continue
		}
		key := ob.iface.String() + "|" + ob.where
		if seen[key] {
			continue
		}
		seen[key] = true
		report(Diagnostic{
			Analyzer: "gobreg",
			Pos:      ob.pos,
			Message: fmt.Sprintf("%s is interface-typed but no gob.Register call in the program provides a concrete %s implementation; decoding will fail at runtime",
				ob.where, typeLabel(ob.iface)),
		})
	}
}

func typeLabel(t types.Type) string {
	s := t.String()
	if i := strings.LastIndex(s, "/"); i >= 0 && !strings.ContainsAny(s[i:], "]) ") {
		s = s[i+1:]
	}
	return s
}

func prefixPath(prefix string, path, problem string) (string, string) {
	if problem == "" {
		return "", ""
	}
	return prefix + path, problem
}

func dotPath(p string) string {
	if p == "" {
		return ""
	}
	return "." + p
}
