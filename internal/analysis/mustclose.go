package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MustClose reports values obtained from module constructors (package-
// level functions named New*/Start*/Open*/Dial* whose first result has
// a Close/Stop/Shutdown method) that are never closed, or that can
// leak on an early return path. This is the PR-5/PR-7 bug class:
// rpcnet clients, spill stores and trackers that wedge goroutines or
// file descriptors when an error path forgets the cleanup.
//
// A value that escapes — passed to a function, stored in a struct or
// map, returned, sent on a channel, captured by a function literal —
// is assumed to transfer ownership and is not tracked further. The
// error-check immediately guarding the constructor
// (`v, err := Dial(…); if err != nil { return … }`) is exempt, since
// the resource is nil on that path.
var MustClose = &Analyzer{
	Name: "mustclose",
	Doc:  "report constructor results with a Close/Stop method that are discarded, never closed, or leak on early returns",
	Run:  runMustClose,
}

// closeFamily are the method names that count as releasing a resource.
// Unexported variants cover same-package call sites.
var closeFamily = map[string]bool{
	"Close": true, "Stop": true, "Shutdown": true, "Kill": true, "Release": true,
	"close": true, "stop": true, "shutdown": true, "halt": true,
}

func runMustClose(pass *Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			mustCloseFunc(pass, fd.Body)
		}
	}
	return nil
}

// mustCloseFunc checks one function body (and, recursively, each
// function literal as its own scope).
func mustCloseFunc(pass *Pass, body *ast.BlockStmt) {
	// Collect constructor call sites belonging to this scope —
	// statements directly in this body, not inside a nested FuncLit
	// (those are their own scope with their own control flow).
	var lits []*ast.FuncLit
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			lits = append(lits, n)
			return false
		case *ast.ExprStmt:
			if call, ok := n.X.(*ast.CallExpr); ok {
				if method, ok := constructorCall(pass, call); ok {
					pass.Reportf(call.Pos(), "result of %s is discarded; it must be kept and %s()d", callLabel(call), method)
				}
			}
		case *ast.AssignStmt:
			if len(n.Rhs) == 1 {
				if call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr); ok {
					if method, ok := constructorCall(pass, call); ok {
						checkAcquisition(pass, body, n, call, method)
					}
				}
			}
		}
		return true
	})
	for _, lit := range lits {
		mustCloseFunc(pass, lit.Body)
	}
}

// constructorCall reports whether call invokes a module constructor
// whose first result must be closed, returning the close method name.
func constructorCall(pass *Pass, call *ast.CallExpr) (string, bool) {
	f := calleeFunc(pass.TypesInfo, call)
	if f == nil || f.Pkg() == nil || !pass.Prog.IsLocal(f.Pkg()) {
		return "", false
	}
	if recvTypeName(f) != "" {
		return "", false
	}
	name := f.Name()
	if !strings.HasPrefix(name, "New") && !strings.HasPrefix(name, "Start") &&
		!strings.HasPrefix(name, "Open") && !strings.HasPrefix(name, "Dial") {
		return "", false
	}
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Results().Len() == 0 {
		return "", false
	}
	return closerMethod(sig.Results().At(0).Type())
}

// closerMethod returns the close-family method in t's method set, if
// any. Only exported names qualify here: a type whose only cleanup is
// unexported can't be closed by other packages, so its constructor
// shouldn't create cross-package obligations.
func closerMethod(t types.Type) (string, bool) {
	if _, isPtr := t.(*types.Pointer); !isPtr {
		if _, isIface := t.Underlying().(*types.Interface); !isIface {
			t = types.NewPointer(t)
		}
	}
	ms := types.NewMethodSet(t)
	for _, name := range []string{"Close", "Stop", "Shutdown", "Kill"} {
		for i := 0; i < ms.Len(); i++ {
			if ms.At(i).Obj().Name() == name {
				return name, true
			}
		}
	}
	return "", false
}

// use is one classified occurrence of the tracked resource variable.
type use struct {
	pos  token.Pos
	kind useKind
}

type useKind int

const (
	useNeutral useKind = iota
	useClose
	useEscape
)

// checkAcquisition tracks one `v, err := NewX(…)`-style acquisition
// through the rest of its scope.
func checkAcquisition(pass *Pass, body *ast.BlockStmt, assign *ast.AssignStmt, call *ast.CallExpr, method string) {
	ident, ok := assign.Lhs[0].(*ast.Ident)
	if !ok {
		return // stored into a field/index: escapes immediately
	}
	if ident.Name == "_" {
		pass.Reportf(call.Pos(), "result of %s is assigned to _; it must be kept and %s()d", callLabel(call), method)
		return
	}
	obj := pass.TypesInfo.Defs[ident]
	if obj == nil {
		obj = pass.TypesInfo.Uses[ident]
	}
	if obj == nil {
		return
	}
	// The error variable of the same assignment, for exempting the
	// immediate `if err != nil { return }` guard.
	var errObj types.Object
	if len(assign.Lhs) > 1 {
		if errIdent, ok := assign.Lhs[len(assign.Lhs)-1].(*ast.Ident); ok && errIdent.Name != "_" {
			errObj = pass.TypesInfo.Defs[errIdent]
			if errObj == nil {
				errObj = pass.TypesInfo.Uses[errIdent]
			}
		}
	}

	uses := collectUses(pass, body, obj, assign.End())
	firstClose := token.Pos(-1)
	escaped := false
	for _, u := range uses {
		switch u.kind {
		case useEscape:
			escaped = true
		case useClose:
			if firstClose == token.Pos(-1) || u.pos < firstClose {
				firstClose = u.pos
			}
		}
	}
	if escaped {
		return // ownership transferred; the new owner is responsible
	}
	if firstClose == token.Pos(-1) {
		pass.Reportf(call.Pos(), "%s returned by %s is never closed in this function and does not escape; call %s (or defer it)", ident.Name, callLabel(call), method)
		return
	}
	// Returns reached after acquisition but before the first close are
	// leak paths — unless guarded by the acquisition's own error check
	// (the resource is nil there).
	for _, ret := range earlyReturns(pass, body, assign.End(), firstClose, errObj) {
		pass.Reportf(ret, "%s created at line %d may leak: this return path exits before %s.%s is reached",
			ident.Name, pass.Fset.Position(call.Pos()).Line, ident.Name, method)
	}
}

// collectUses classifies every occurrence of obj after pos within
// body. Uses inside function literals count as closes when they are
// deferred close-family calls, and as escapes otherwise (the literal
// may outlive the scope).
func collectUses(pass *Pass, body *ast.BlockStmt, obj types.Object, after token.Pos) []use {
	var out []use
	var stack []ast.Node
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		id, ok := n.(*ast.Ident)
		if !ok || id.Pos() < after || pass.TypesInfo.Uses[id] != obj {
			return true
		}
		out = append(out, classifyUse(id, stack))
		return true
	})
	return out
}

// classifyUse decides what one occurrence of the resource variable
// means for the leak analysis, from its ancestor chain.
func classifyUse(id *ast.Ident, stack []ast.Node) use {
	u := use{pos: id.Pos(), kind: useNeutral}
	inFuncLit := false
	for _, n := range stack[:len(stack)-1] {
		if _, ok := n.(*ast.FuncLit); ok {
			inFuncLit = true
		}
	}
	parent := stack[len(stack)-2]
	switch p := parent.(type) {
	case *ast.SelectorExpr:
		if p.X == id {
			// v.Method — a close call if it's invoked and in the
			// family; a method-value escape if not invoked.
			if len(stack) >= 3 {
				if call, ok := stack[len(stack)-3].(*ast.CallExpr); ok && call.Fun == p {
					if closeFamily[p.Sel.Name] {
						u.kind = useClose
						return u
					}
					return u // ordinary method call: neutral
				}
			}
			u.kind = useEscape
			return u
		}
	case *ast.CallExpr:
		if p.Fun != id { // v passed as an argument
			u.kind = useEscape
			return u
		}
	case *ast.ReturnStmt:
		u.kind = useEscape // ownership handed to the caller
		return u
	case *ast.AssignStmt:
		for _, r := range p.Rhs {
			if r == id {
				u.kind = useEscape // stored somewhere else
				return u
			}
		}
	case *ast.CompositeLit, *ast.KeyValueExpr, *ast.SendStmt:
		u.kind = useEscape
		return u
	case *ast.UnaryExpr:
		if p.Op == token.AND {
			u.kind = useEscape
			return u
		}
	}
	if inFuncLit {
		// Captured by a literal that isn't a deferred close: the
		// goroutine/callback may own it now.
		u.kind = useEscape
	}
	return u
}

// earlyReturns finds return statements positioned between the
// acquisition and the first close that are not exempted by the
// acquisition's error guard and so leak the resource.
func earlyReturns(pass *Pass, body *ast.BlockStmt, after, firstClose token.Pos, errObj types.Object) []token.Pos {
	var out []token.Pos
	var ifConds []ast.Expr
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.FuncLit:
			return // separate scope
		case *ast.IfStmt:
			walkNullable(n.Init, walk)
			ifConds = append(ifConds, n.Cond)
			ast.Inspect(n.Body, inspectAdapter(walk))
			ifConds = ifConds[:len(ifConds)-1]
			// The else branch runs when the guard is false — the
			// error-check exemption must not extend to it.
			if n.Else != nil {
				ast.Inspect(n.Else, inspectAdapter(walk))
			}
			return
		case *ast.ReturnStmt:
			// A close inside the return expression itself
			// (`return r.Close()`) covers this path.
			closesHere := firstClose >= n.Pos() && firstClose < n.End()
			if n.Pos() > after && n.Pos() < firstClose && !closesHere && !errGuarded(pass, ifConds, errObj) {
				out = append(out, n.Pos())
			}
		}
	}
	ast.Inspect(body, inspectAdapter(walk))
	return out
}

// inspectAdapter lets a stop-aware recursive walker plug into
// ast.Inspect: the walker handles If/Return/FuncLit itself (returning
// false for subtrees it walked manually).
func inspectAdapter(walk func(ast.Node)) func(ast.Node) bool {
	return func(n ast.Node) bool {
		switch n.(type) {
		case *ast.FuncLit, *ast.IfStmt:
			walk(n)
			return false
		case *ast.ReturnStmt:
			walk(n)
			return true
		}
		return true
	}
}

func walkNullable(n ast.Node, walk func(ast.Node)) {
	if n != nil {
		ast.Inspect(n, inspectAdapter(walk))
	}
}

// errGuarded reports whether any enclosing if-condition references the
// acquisition's error variable — the `if err != nil { return … }`
// idiom, where the resource is nil and there is nothing to close.
func errGuarded(pass *Pass, conds []ast.Expr, errObj types.Object) bool {
	if errObj == nil {
		return false
	}
	for _, c := range conds {
		found := false
		ast.Inspect(c, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == errObj {
				found = true
			}
			return !found
		})
		if found {
			return true
		}
	}
	return false
}

// callLabel renders a constructor call for diagnostics.
func callLabel(call *ast.CallExpr) string {
	return exprString(ast.Unparen(call.Fun))
}
