package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// LockHeldCall reports blocking operations — rpcnet calls, network or
// file I/O, time.Sleep, channel sends — performed while a sync.Mutex
// or sync.RWMutex acquired in the same function is still held. This is
// the PR-3 JobTracker bug class: one slow peer inside a critical
// section stalls every other goroutine contending for the lock.
//
// The analysis is per-function and source-ordered: Lock/RLock add the
// receiver expression to the held set, Unlock/RUnlock remove it, a
// deferred Unlock keeps it held to the end of the function. Branches
// are scanned with cloned state and merged pessimistically (a lock
// possibly held counts as held). Calls to same-package functions that
// themselves perform a banned operation are flagged too, so hiding a
// dial one call deep does not evade the rule. Function literals run on
// other goroutines (go/defer) start with an empty held set.
//
// The spill package is exempt: spill.Store is the disk store, and file
// I/O under its mutex is its job, not a bug.
var LockHeldCall = &Analyzer{
	Name: "lockheldcall",
	Doc:  "report blocking calls, I/O, sleeps and channel sends made while a mutex acquired in the same function is held",
	Run:  runLockHeldCall,
}

func runLockHeldCall(pass *Pass) error {
	if pkgNamed(pass.Pkg, "spill") {
		return nil
	}
	blocking := blockingFuncs(pass)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			sc := &lockScanner{pass: pass, blocking: blocking}
			sc.stmts(fd.Body.List, heldLocks{})
		}
	}
	return nil
}

// heldLocks maps a lock identity ("jt.mu:w", "c.mu:r") to the position
// where it was acquired.
type heldLocks map[string]token.Pos

func (h heldLocks) clone() heldLocks {
	c := make(heldLocks, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

// merge folds another branch's exit state in: a lock held on any
// incoming path counts as held.
func (h heldLocks) merge(o heldLocks) {
	for k, v := range o {
		if _, ok := h[k]; !ok {
			h[k] = v
		}
	}
}

type lockScanner struct {
	pass     *Pass
	blocking map[*types.Func]string // same-package funcs that block, with reason
}

func (sc *lockScanner) stmts(list []ast.Stmt, held heldLocks) {
	for _, s := range list {
		sc.stmt(s, held)
	}
}

func (sc *lockScanner) stmt(s ast.Stmt, held heldLocks) {
	switch s := s.(type) {
	case nil:
	case *ast.ExprStmt:
		sc.expr(s.X, held)
	case *ast.SendStmt:
		if len(held) > 0 {
			lock, pos := anyLock(held)
			sc.pass.Reportf(s.Arrow, "channel send while %s is held (acquired at line %d); a full channel blocks every goroutine contending for the lock",
				lock, sc.pass.Fset.Position(pos).Line)
		}
		sc.expr(s.Chan, held)
		sc.expr(s.Value, held)
	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			sc.expr(e, held)
		}
		for _, e := range s.Lhs {
			sc.expr(e, held)
		}
	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, e := range vs.Values {
						sc.expr(e, held)
					}
				}
			}
		}
	case *ast.IncDecStmt:
		sc.expr(s.X, held)
	case *ast.ReturnStmt:
		for _, e := range s.Results {
			sc.expr(e, held)
		}
	case *ast.DeferStmt:
		// A deferred Unlock keeps the lock held for the rest of the
		// function; any other deferred call runs at return, outside
		// this source-order analysis. Arguments, though, are
		// evaluated now.
		for _, e := range s.Call.Args {
			sc.expr(e, held)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sc.stmts(fl.Body.List, heldLocks{})
		}
	case *ast.GoStmt:
		for _, e := range s.Call.Args {
			sc.expr(e, held)
		}
		if fl, ok := s.Call.Fun.(*ast.FuncLit); ok {
			sc.stmts(fl.Body.List, heldLocks{})
		}
	case *ast.BlockStmt:
		sc.stmts(s.List, held)
	case *ast.IfStmt:
		sc.stmt(s.Init, held)
		sc.expr(s.Cond, held)
		thenHeld := held.clone()
		sc.stmts(s.Body.List, thenHeld)
		elseHeld := held.clone()
		if s.Else != nil {
			sc.stmt(s.Else, elseHeld)
		}
		after := heldLocks{}
		if !terminates(s.Body.List) {
			after.merge(thenHeld)
		}
		if !ifTerminates(s.Else) {
			after.merge(elseHeld)
		}
		replace(held, after)
	case *ast.ForStmt:
		sc.stmt(s.Init, held)
		sc.expr(s.Cond, held)
		body := held.clone()
		sc.stmts(s.Body.List, body)
		sc.stmt(s.Post, body)
		held.merge(body)
	case *ast.RangeStmt:
		sc.expr(s.X, held)
		body := held.clone()
		sc.stmts(s.Body.List, body)
		held.merge(body)
	case *ast.SwitchStmt:
		sc.stmt(s.Init, held)
		sc.expr(s.Tag, held)
		sc.caseClauses(s.Body, held)
	case *ast.TypeSwitchStmt:
		sc.stmt(s.Init, held)
		sc.stmt(s.Assign, held)
		sc.caseClauses(s.Body, held)
	case *ast.SelectStmt:
		// The comm clauses themselves are how select is used for
		// non-blocking sends; flagging them would punish the fix.
		// Bodies are still scanned.
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			body := held.clone()
			sc.stmts(cc.Body, body)
			held.merge(body)
		}
	case *ast.LabeledStmt:
		sc.stmt(s.Stmt, held)
	}
}

func (sc *lockScanner) caseClauses(body *ast.BlockStmt, held heldLocks) {
	after := held.clone() // no case may match (or no default)
	for _, c := range body.List {
		cc := c.(*ast.CaseClause)
		for _, e := range cc.List {
			sc.expr(e, held)
		}
		branch := held.clone()
		sc.stmts(cc.Body, branch)
		if !terminates(cc.Body) {
			after.merge(branch)
		}
	}
	replace(held, after)
}

// expr walks an expression, updating lock state on Lock/Unlock calls
// and reporting banned calls while a lock is held. Function literals
// are scanned with an empty held set — they run later, on their own
// goroutine's stack.
func (sc *lockScanner) expr(e ast.Expr, held heldLocks) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			sc.stmts(n.Body.List, heldLocks{})
			return false
		case *ast.CallExpr:
			sc.call(n, held)
		}
		return true
	})
}

func (sc *lockScanner) call(call *ast.CallExpr, held heldLocks) {
	f := calleeFunc(sc.pass.TypesInfo, call)
	if f == nil {
		return
	}
	// Lock-state transitions.
	if mode, acquire, ok := lockOp(f); ok {
		recv := lockRecv(call)
		key := recv + ":" + mode
		if acquire {
			held[key] = call.Pos()
		} else {
			delete(held, key)
		}
		return
	}
	if len(held) == 0 {
		return
	}
	if reason, ok := sc.bannedCall(f); ok {
		lock, pos := anyLock(held)
		sc.pass.Reportf(call.Pos(), "call to %s (%s) while %s is held (acquired at line %d); move it outside the critical section",
			callName(call, f), reason, lock, sc.pass.Fset.Position(pos).Line)
	}
}

// bannedCall reports whether f is a blocking operation hetlint forbids
// under a lock, with a human-readable reason.
func (sc *lockScanner) bannedCall(f *types.Func) (string, bool) {
	if reason, ok := sc.blocking[f]; ok {
		return reason, true
	}
	pkg := f.Pkg()
	if pkg == nil {
		return "", false
	}
	name := f.Name()
	recv := recvTypeName(f)
	switch {
	case pkg.Path() == "time" && recv == "" && name == "Sleep":
		return "sleeps", true
	case pkg.Path() == "os" && recv == "" && osFileFuncs[name]:
		return "file I/O", true
	case pkg.Path() == "os" && recv == "File" && osFileMethods[name]:
		return "file I/O", true
	case pkg.Path() == "net" && recv == "" && (name == "Dial" || name == "DialTimeout" || name == "Listen"):
		return "network I/O", true
	case pkg.Path() == "net" && recv == "Conn" && (name == "Read" || name == "Write"):
		return "network I/O", true
	case pkg.Path() == "net" && recv == "Listener" && name == "Accept":
		return "network I/O", true
	case pkgNamed(pkg, "rpcnet") && recv == "" && (name == "Dial" || name == "NewServer"):
		return "network I/O", true
	case pkgNamed(pkg, "rpcnet") && recv == "Client" && (name == "Call" || name == "CallTimeout"):
		return "an RPC round-trip", true
	}
	return "", false
}

var osFileFuncs = map[string]bool{
	"Open": true, "OpenFile": true, "Create": true, "CreateTemp": true,
	"ReadFile": true, "WriteFile": true, "Remove": true, "RemoveAll": true,
	"Mkdir": true, "MkdirAll": true, "MkdirTemp": true, "ReadDir": true,
	"Rename": true,
}

var osFileMethods = map[string]bool{
	"Read": true, "ReadAt": true, "Write": true, "WriteAt": true,
	"Seek": true, "Sync": true, "Truncate": true,
}

// blockingFuncs computes the same-package closure of functions that
// perform a banned operation directly or by calling another blocking
// function — so wrapping a dial in a helper does not hide it from the
// analyzer. Operations inside go statements and function literals do
// not count (the caller does not block on them).
func blockingFuncs(pass *Pass) map[*types.Func]string {
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}
	blocking := make(map[*types.Func]string)
	sc := &lockScanner{pass: pass, blocking: nil}
	// Seed with functions containing a banned primitive.
	for obj, fd := range decls {
		syncCalls(fd, func(call *ast.CallExpr) {
			if _, ok := blocking[obj]; ok {
				return
			}
			f := calleeFunc(pass.TypesInfo, call)
			if f == nil {
				return
			}
			if reason, ok := sc.bannedCall(f); ok {
				blocking[obj] = reason + " via " + f.Name()
			}
		})
	}
	// Propagate through same-package calls to a fixed point.
	for changed := true; changed; {
		changed = false
		for obj, fd := range decls {
			if _, ok := blocking[obj]; ok {
				continue
			}
			syncCalls(fd, func(call *ast.CallExpr) {
				if _, ok := blocking[obj]; ok {
					return
				}
				f := calleeFunc(pass.TypesInfo, call)
				if f == nil {
					return
				}
				if reason, ok := blocking[f]; ok {
					blocking[obj] = reason
					changed = true
				}
			})
		}
	}
	return blocking
}

// syncCalls visits every call expression in fd's body that executes
// synchronously on the caller's goroutine — skipping go statements,
// defers and function-literal bodies.
func syncCalls(fd *ast.FuncDecl, visit func(*ast.CallExpr)) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.GoStmt, *ast.DeferStmt, *ast.FuncLit:
			return false
		case *ast.CallExpr:
			visit(n)
		}
		return true
	})
}

// lockOp classifies f as a sync.Mutex/RWMutex/Locker lock-state
// transition: mode "w" or "r", acquire or release.
func lockOp(f *types.Func) (mode string, acquire, ok bool) {
	pkg := f.Pkg()
	if pkg == nil || pkg.Path() != "sync" {
		return "", false, false
	}
	switch recvTypeName(f) {
	case "Mutex", "RWMutex", "Locker":
	default:
		return "", false, false
	}
	switch f.Name() {
	case "Lock":
		return "w", true, true
	case "Unlock":
		return "w", false, true
	case "RLock":
		return "r", true, true
	case "RUnlock":
		return "r", false, true
	}
	return "", false, false
}

// lockRecv renders the receiver expression of a lock call ("jt.mu")
// as the lock's identity within one function.
func lockRecv(call *ast.CallExpr) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return exprString(sel.X)
	}
	return "lock"
}

// recvTypeName returns the base name of f's receiver type, or "" for a
// package-level function.
func recvTypeName(f *types.Func) string {
	sig, ok := f.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return ""
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

// callName renders the call target for a diagnostic ("c.dialConn",
// "net.Dial").
func callName(call *ast.CallExpr, f *types.Func) string {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		return exprString(sel.X) + "." + sel.Sel.Name
	}
	return f.Name()
}

// anyLock picks a deterministic representative from the held set for
// the diagnostic message.
func anyLock(held heldLocks) (string, token.Pos) {
	best := ""
	for k := range held {
		if best == "" || k < best {
			best = k
		}
	}
	name, _, _ := strings.Cut(best, ":")
	return name, held[best]
}

// terminates reports whether a statement list always transfers control
// out (return, panic, os.Exit, break/continue/goto).
func terminates(list []ast.Stmt) bool {
	if len(list) == 0 {
		return false
	}
	switch s := list[len(list)-1].(type) {
	case *ast.ReturnStmt, *ast.BranchStmt:
		return true
	case *ast.ExprStmt:
		if call, ok := s.X.(*ast.CallExpr); ok {
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				return fun.Name == "panic"
			case *ast.SelectorExpr:
				return fun.Sel.Name == "Exit" || strings.HasPrefix(fun.Sel.Name, "Fatal")
			}
		}
	case *ast.BlockStmt:
		return terminates(s.List)
	}
	return false
}

// ifTerminates extends terminates to an else-branch statement (block
// or chained if).
func ifTerminates(s ast.Stmt) bool {
	switch s := s.(type) {
	case nil:
		return false
	case *ast.BlockStmt:
		return terminates(s.List)
	case *ast.IfStmt:
		return terminates(s.Body.List) && ifTerminates(s.Else)
	}
	return false
}

// replace overwrites dst's contents with src's.
func replace(dst, src heldLocks) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}
