// Package analysis is hetmr's project-invariant analyzer suite: four
// custom static analyzers encoding the rules this codebase keeps
// re-learning the hard way, runnable over the whole module by
// cmd/hetlint and unit-tested against fixtures by the analysistest
// subpackage.
//
// The analyzers:
//
//   - lockheldcall: no blocking operation — rpcnet calls, network or
//     file I/O, time.Sleep, channel sends — while a sync.Mutex or
//     RWMutex acquired in the same function is held (the PR-3
//     JobTracker bug class).
//   - gobreg: every value that flows into the gob wire layer (rpcnet
//     Marshal/Unmarshal/Call) must be gob-encodable, decode targets
//     must be pointers, and interface-typed components need a
//     gob.Register of at least one concrete implementation.
//   - configdrop: every exported engine.Config / engine.Job field must
//     be referenced by each registered backend's code or explicitly
//     acknowledged — silently dropped knobs (the PR-4/PR-6 bug class)
//     fail the build.
//   - mustclose: values from module constructors whose type has a
//     Close/Stop method must be closed on every path, including early
//     error returns (the PR-5/PR-7 leak class).
//
// The framework deliberately mirrors the shape of
// golang.org/x/tools/go/analysis (Analyzer, Pass, Diagnostic) so the
// suite could be rebased onto the real framework when an external
// dependency is acceptable; here it is pure standard library — the
// loader type-checks the module and its stdlib imports from source, so
// the lint lane needs no module downloads at all.
//
// Two comment directives tune the suite:
//
//	//hetlint:ignore <analyzer> [reason]
//
// on (or immediately above) the offending line suppresses one finding;
//
//	//hetlint:configdrop-ok <backend> <Type.Field> [reason]
//
// anywhere in the engine package acknowledges a deliberately ignored
// config knob (see configdrop).
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one static check: a name, documentation, a per-package
// Run pass, and an optional whole-program Finish pass for invariants
// that span packages (e.g. gob registrations living in a different
// package than the RPC call site).
type Analyzer struct {
	// Name identifies the analyzer in reports and in
	// //hetlint:ignore directives.
	Name string
	// Doc is the one-paragraph description hetlint -list prints.
	Doc string
	// Run analyzes one package. It reports findings through the pass
	// and may stash cross-package state in Pass.Shared.
	Run func(*Pass) error
	// Finish, when non-nil, runs once after every package's Run pass
	// completed, for program-wide conclusions. It receives the same
	// Shared map the passes populated.
	Finish func(prog *Program, shared map[string]any, report func(Diagnostic))
}

// Pass carries one analyzer's view of one package, mirroring
// x/tools/go/analysis.Pass.
type Pass struct {
	// Analyzer is the check being run.
	Analyzer *Analyzer
	// Fset maps positions for every file in the program.
	Fset *token.FileSet
	// Files are the package's parsed files.
	Files []*ast.File
	// Pkg is the type-checked package.
	Pkg *types.Package
	// TypesInfo holds the package's type-checking facts.
	TypesInfo *types.Info
	// Prog is the whole loaded program (module packages only).
	Prog *Program
	// Shared persists across this analyzer's passes within one Run of
	// the driver — the framework's stand-in for x/tools facts.
	Shared map[string]any

	report func(Diagnostic)
}

// Reportf records one finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding.
type Diagnostic struct {
	// Analyzer names the rule that fired.
	Analyzer string
	// Pos locates the finding.
	Pos token.Position
	// Message describes the violation and, where possible, the fix.
	Message string
}

// String renders the diagnostic in the standard file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Run executes the analyzers over every module package of prog in
// dependency order, applies //hetlint:ignore suppressions, and returns
// the surviving findings sorted by position.
func Run(prog *Program, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	report := func(d Diagnostic) { diags = append(diags, d) }
	for _, a := range analyzers {
		shared := make(map[string]any)
		for _, pkg := range prog.Packages {
			pass := &Pass{
				Analyzer:  a,
				Fset:      prog.Fset,
				Files:     pkg.Files,
				Pkg:       pkg.Pkg,
				TypesInfo: pkg.Info,
				Prog:      prog,
				Shared:    shared,
				report:    report,
			}
			if err := a.Run(pass); err != nil {
				return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.Path, err)
			}
		}
		if a.Finish != nil {
			a.Finish(prog, shared, report)
		}
	}
	diags = prog.filterSuppressed(diags)
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Message < b.Message
	})
	return diags, nil
}

// All returns the full hetlint analyzer suite.
func All() []*Analyzer {
	return []*Analyzer{LockHeldCall, GobReg, ConfigDrop, MustClose}
}

// filterSuppressed drops findings whose line (or the line above) holds
// a //hetlint:ignore directive naming the analyzer (or naming no
// analyzer, which suppresses everything on the line).
func (prog *Program) filterSuppressed(diags []Diagnostic) []Diagnostic {
	type key struct {
		file string
		line int
	}
	suppressed := make(map[key][]string)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "//hetlint:ignore")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					names := strings.Fields(rest)
					if len(names) > 0 {
						names = names[:1] // first word names the analyzer
					}
					k := key{pos.Filename, pos.Line}
					suppressed[k] = append(suppressed[k], names...)
					if len(names) == 0 {
						suppressed[k] = append(suppressed[k], "*")
					}
				}
			}
		}
	}
	matches := func(d Diagnostic, line int) bool {
		for _, name := range suppressed[key{d.Pos.Filename, line}] {
			if name == "*" || name == d.Analyzer {
				return true
			}
		}
		return false
	}
	var out []Diagnostic
	for _, d := range diags {
		if matches(d, d.Pos.Line) || matches(d, d.Pos.Line-1) {
			continue
		}
		out = append(out, d)
	}
	return out
}

// pkgNamed reports whether p is the package the analyzers know by base
// name — matching both the real module path ("hetmr/internal/rpcnet")
// and a fixture package ("rpcnet").
func pkgNamed(p *types.Package, base string) bool {
	if p == nil {
		return false
	}
	return p.Path() == base || strings.HasSuffix(p.Path(), "/"+base)
}

// exprString renders a (small) expression for use as a lock identity
// or in a message.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		return exprString(e.X) + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	case *ast.StarExpr:
		return "*" + exprString(e.X)
	case *ast.UnaryExpr:
		return e.Op.String() + exprString(e.X)
	case *ast.IndexExpr:
		return exprString(e.X) + "[" + exprString(e.Index) + "]"
	case *ast.CallExpr:
		return exprString(e.Fun) + "(…)"
	default:
		return "expr"
	}
}

// calleeFunc resolves a call expression to the function or method it
// invokes, or nil for indirect calls through function values and type
// conversions.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if f, ok := info.Uses[fun].(*types.Func); ok {
			return f
		}
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if f, ok := sel.Obj().(*types.Func); ok {
				return f
			}
			return nil
		}
		// Package-qualified call (pkg.Func).
		if f, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return f
		}
	}
	return nil
}
