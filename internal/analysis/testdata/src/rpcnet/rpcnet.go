// Package rpcnet is a fixture stub mirroring the shape of
// hetmr/internal/rpcnet: the analyzers match it by package base name,
// so fixtures exercise the rpcnet-specific rules without loading the
// real wire layer.
package rpcnet

// Client mirrors rpcnet.Client.
type Client struct{}

// Dial mirrors rpcnet.Dial.
func Dial(addr string) (*Client, error) { return &Client{}, nil }

// NewServer mirrors rpcnet.NewServer.
func NewServer(addr string) (*Server, error) { return &Server{}, nil }

// Server mirrors rpcnet.Server.
type Server struct{}

// Close mirrors Server.Close.
func (s *Server) Close() error { return nil }

// Call mirrors Client.Call.
func (c *Client) Call(method string, arg, result any) error { return nil }

// CallTimeout mirrors Client.CallTimeout.
func (c *Client) CallTimeout(method string, arg, result any, timeoutNs int64) error { return nil }

// Close mirrors Client.Close.
func (c *Client) Close() error { return nil }

// Marshal mirrors rpcnet.Marshal.
func Marshal(v any) ([]byte, error) { return nil, nil }

// Unmarshal mirrors rpcnet.Unmarshal.
func Unmarshal(data []byte, v any) error { return nil }
