// Package gobreg is the positive fixture for the gobreg analyzer: no
// gob.Register call exists here, so the interface-typed component must
// be reported, along with the structural encodability violations.
package gobreg

import "rpcnet"

// Good is a cleanly encodable message.
type Good struct {
	A int
	B string
}

// HasFunc smuggles a func through an exported field.
type HasFunc struct {
	F func()
}

// HasChan smuggles a channel through a nested exported field.
type HasChan struct {
	Inner struct {
		C chan int
	}
}

// NoExported has fields, none of them visible to gob.
type NoExported struct {
	x int
}

// HasIface carries an interface-typed component that would need a
// gob.Register somewhere in the program.
type HasIface struct {
	V any
}

var c *rpcnet.Client

func bad() {
	c.Call("m", HasFunc{}, &Good{})  // want `not gob-encodable: gob cannot encode funcs`
	c.Call("m", &HasChan{}, &Good{}) // want `gob cannot encode channels`
	c.Call("m", Good{}, Good{})      // want `reply has non-pointer type`
	rpcnet.Marshal(NoExported{})     // want `struct has no exported fields`
	rpcnet.Unmarshal(nil, Good{})    // want `non-pointer`
	c.Call("m", HasIface{}, nil)     // want `no gob\.Register call in the program`
}

func good() {
	c.Call("m", Good{}, &Good{})
	c.Call("m", &Good{}, nil)
	rpcnet.Marshal(&Good{})
	var g Good
	rpcnet.Unmarshal(nil, &g)
}

func suppressed() {
	rpcnet.Marshal(HasFunc{}) //hetlint:ignore gobreg fixture: proves the directive works
}
