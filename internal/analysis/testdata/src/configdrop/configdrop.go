// Package configdrop is the fixture for the configdrop analyzer: it
// mimics the engine package's shape (a Config type, a Job type, a
// Register function, backends registered from init with factory
// literals constructing runner types).
package configdrop

// Config is the fixture's knob surface.
type Config struct {
	Workers int
	Depth   int
	Label   string
}

// Job is the fixture's per-job surface.
type Job struct {
	Name string
	Size int64
}

// Runner mimics engine.Runner: factories return it, so runner methods
// are reached only through interface dispatch.
type Runner interface {
	Run(*Job) error
}

// Factory mimics engine.Factory.
type Factory func(Config) (Runner, error)

var reg = map[string]Factory{}

// Register mimics engine.Register.
func Register(name string, f Factory) { reg[name] = f }

type goodRunner struct{ cfg Config }

func (g *goodRunner) Run(job *Job) error {
	use(g.cfg.Workers, g.cfg.Depth, g.cfg.Label)
	use(job.Name, job.Size)
	return nil
}

type badRunner struct{ cfg Config }

func (b *badRunner) Run(job *Job) error {
	use(b.cfg.Workers)
	use(job.Name)
	return nil
}

type ackedRunner struct{ cfg Config }

func (a *ackedRunner) Run(job *Job) error {
	use(a.cfg.Workers, a.cfg.Label)
	use(job.Name)
	return nil
}

func use(args ...any) {}

func init() {
	Register("good", func(cfg Config) (Runner, error) { return &goodRunner{cfg: cfg}, nil })

	Register("bad", func(cfg Config) (Runner, error) { return &badRunner{cfg: cfg}, nil }) // want `backend "bad" never references Config\.Depth, Config\.Label` `backend "bad" never references Job\.Size`

	//hetlint:configdrop-ok acked Config.Depth fixture: proves the ack directive works
	//hetlint:configdrop-ok acked Job.Size fixture: proves the ack directive works
	Register("acked", func(cfg Config) (Runner, error) { return &ackedRunner{cfg: cfg}, nil })
}
