// Package gobregok is the negative fixture for gobreg's program-wide
// Finish pass: the interface-typed component is fine here because a
// gob.Register call provides a concrete implementation. It is a
// separate fixture program from package gobreg — registrations are
// resolved program-wide, so one Register would satisfy every
// obligation loaded alongside it.
package gobregok

import (
	"encoding/gob"

	"rpcnet"
)

// Payload is the interface carried on the wire.
type Payload interface {
	P()
}

// Impl is the registered concrete implementation.
type Impl struct {
	N int
}

// P implements Payload.
func (Impl) P() {}

// Msg is the wire message with an interface-typed component.
type Msg struct {
	V Payload
}

func init() {
	gob.Register(Impl{})
}

var c *rpcnet.Client

func ok() {
	c.Call("m", Msg{}, &Msg{}) // clean: Impl is registered
}
