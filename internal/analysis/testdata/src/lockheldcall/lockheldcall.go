// Package lockheldcall is the fixture for the lockheldcall analyzer:
// each function is one positive (want) or negative (clean) case.
package lockheldcall

import (
	"os"
	"sync"
	"time"

	"rpcnet"
)

// S carries the locks and resources the cases exercise.
type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	c  *rpcnet.Client
}

func (s *S) sleepUnderLock() {
	s.mu.Lock()
	time.Sleep(1) // want `call to time\.Sleep \(sleeps\) while s\.mu is held`
	s.mu.Unlock()
}

func (s *S) fileIOUnderDeferredUnlock() {
	s.mu.Lock()
	defer s.mu.Unlock()
	os.ReadFile("x") // want `file I/O`
}

func (s *S) cleanAfterUnlock() {
	s.mu.Lock()
	s.mu.Unlock()
	time.Sleep(1) // clean: lock released first
}

func (s *S) rpcUnderReadLock() {
	s.rw.RLock()
	defer s.rw.RUnlock()
	s.c.Call("m", 1, nil) // want `an RPC round-trip`
}

func (s *S) sendUnderLock() {
	s.mu.Lock()
	s.ch <- 1 // want `channel send while s\.mu is held`
	s.mu.Unlock()
}

func (s *S) nonBlockingSendClean() {
	s.mu.Lock()
	select {
	case s.ch <- 1: // clean: select comm clauses are the fix, not the bug
	default:
	}
	s.mu.Unlock()
}

func (s *S) unlockedBranchClean(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
		time.Sleep(1) // clean: this path released the lock
		return
	}
	s.mu.Unlock()
	time.Sleep(1) // clean: sequential release
}

func (s *S) heldOnOnePath(cond bool) {
	s.mu.Lock()
	if cond {
		s.mu.Unlock()
	}
	time.Sleep(1) // want `while s\.mu is held`
	if !cond {
		s.mu.Unlock()
	}
}

// dialHelper exists to prove same-package transitive propagation: the
// dial is one call deep.
func (s *S) dialHelper() {
	rpcnet.Dial("x")
}

func (s *S) blockingViaHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.dialHelper() // want `network I/O via Dial`
}

func (s *S) goroutineClean() {
	s.mu.Lock()
	go func() {
		time.Sleep(1) // clean: runs on its own goroutine
	}()
	s.mu.Unlock()
}

func (s *S) suppressed() {
	s.mu.Lock()
	time.Sleep(1) //hetlint:ignore lockheldcall fixture: proves the directive works
	s.mu.Unlock()
}

func (s *S) loopBodyCaught() {
	s.mu.Lock()
	for i := 0; i < 3; i++ {
		time.Sleep(1) // want `while s\.mu is held`
	}
	s.mu.Unlock()
}

func (s *S) otherLockOtherMutex(t *S) {
	s.mu.Lock()
	s.mu.Unlock()
	t.mu.Lock()
	time.Sleep(1) // want `while t\.mu is held`
	t.mu.Unlock()
}
