// Package mustclose is the fixture for the mustclose analyzer: Res
// and Svc stand in for rpcnet.Client / netmr.Service, and each
// function is one positive (want) or negative (clean) case.
package mustclose

// Res is a closeable resource.
type Res struct{}

// Close releases the resource.
func (r *Res) Close() error { return nil }

// Use is a neutral method: calling it neither closes nor escapes r.
func (r *Res) Use() {}

// NewRes constructs a Res.
func NewRes() *Res { return &Res{} }

// OpenRes constructs a Res, fallibly.
func OpenRes() (*Res, error) { return &Res{}, nil }

// Svc is a stoppable service.
type Svc struct{}

// Stop halts the service.
func (s *Svc) Stop() {}

// StartSvc constructs a running Svc.
func StartSvc() *Svc { return &Svc{} }

func sink(r *Res) {}

func cond() bool { return false }

func discarded() {
	NewRes() // want `result of NewRes is discarded`
}

func blankAssigned() {
	_ = StartSvc() // want `result of StartSvc is assigned to _`
}

func neverClosed() {
	r := NewRes() // want `never closed`
	r.Use()
}

func deferClosedClean() {
	r := NewRes()
	defer r.Close()
	r.Use()
}

func deferredFuncLitClean() {
	r := NewRes()
	defer func() {
		r.Close()
	}()
	r.Use()
}

func errGuardClean() error {
	r, err := OpenRes()
	if err != nil {
		return err // clean: r is nil on this path
	}
	defer r.Close()
	r.Use()
	return nil
}

func earlyReturnLeak() error {
	r, err := OpenRes()
	if err != nil {
		return err
	}
	if cond() {
		return nil // want `may leak`
	}
	return r.Close()
}

func returnedClean() *Res {
	r := NewRes()
	return r // clean: ownership moves to the caller
}

func escapesToCallClean() {
	r := NewRes()
	sink(r) // clean: ownership transferred
}

func escapesToStructClean() *struct{ R *Res } {
	r := NewRes()
	return &struct{ R *Res }{R: r} // clean: stored and returned
}

func stopFamilyClean() {
	s := StartSvc()
	defer s.Stop()
}

func suppressed() {
	NewRes() //hetlint:ignore mustclose fixture: proves the directive works
}
