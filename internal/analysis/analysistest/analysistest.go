// Package analysistest runs one analyzer over a GOPATH-style fixture
// tree and checks its diagnostics against // want comments — the same
// contract as golang.org/x/tools/go/analysis/analysistest, scoped to
// what hetmr's in-repo framework needs.
//
// A fixture file marks expected findings on the offending line:
//
//	time.Sleep(d) // want `call to time\.Sleep .* while s\.mu is held`
//
// Each backquoted or double-quoted string after "want" is a regular
// expression that must match exactly one diagnostic reported on that
// line; diagnostics with no matching expectation, and expectations
// with no matching diagnostic, fail the test.
package analysistest

import (
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hetmr/internal/analysis"
)

// Run loads testdata/src (relative to the test's working directory),
// analyzes the named fixture packages with a, and reports mismatches
// between diagnostics and // want expectations through t.
func Run(t *testing.T, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	srcRoot, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	prog, err := analysis.LoadFixture(srcRoot, pkgs...)
	if err != nil {
		t.Fatalf("loading fixture packages %v: %v", pkgs, err)
	}
	diags, err := analysis.Run(prog, []*analysis.Analyzer{a})
	if err != nil {
		t.Fatalf("running %s: %v", a.Name, err)
	}

	wants := collectWants(t, prog)
	for _, d := range diags {
		key := posKey{d.Pos.Filename, d.Pos.Line}
		matched := false
		for _, w := range wants[key] {
			if !w.used && w.rx.MatchString(d.Message) {
				w.used = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected diagnostic at %s:%d: %s", rel(srcRoot, d.Pos.Filename), d.Pos.Line, d.Message)
		}
	}
	for key, ws := range wants {
		for _, w := range ws {
			if !w.used {
				t.Errorf("%s:%d: no diagnostic matching %q", rel(srcRoot, key.file), key.line, w.rx)
			}
		}
	}
}

type posKey struct {
	file string
	line int
}

type want struct {
	rx   *regexp.Regexp
	used bool
}

// wantRx extracts the quoted regexps from a want comment.
var wantRx = regexp.MustCompile("`[^`]*`|\"(?:[^\"\\\\]|\\\\.)*\"")

// collectWants parses // want comments out of every fixture file.
func collectWants(t *testing.T, prog *analysis.Program) map[posKey][]*want {
	t.Helper()
	wants := make(map[posKey][]*want)
	for _, pkg := range prog.Packages {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					rest, ok := strings.CutPrefix(c.Text, "// want ")
					if !ok {
						continue
					}
					pos := prog.Fset.Position(c.Pos())
					for _, q := range wantRx.FindAllString(rest, -1) {
						var pat string
						if strings.HasPrefix(q, "`") {
							pat = strings.Trim(q, "`")
						} else {
							var err error
							pat, err = strconv.Unquote(q)
							if err != nil {
								t.Fatalf("%s:%d: bad want string %s: %v", pos.Filename, pos.Line, q, err)
							}
						}
						rx, err := regexp.Compile(pat)
						if err != nil {
							t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
						}
						key := posKey{pos.Filename, pos.Line}
						wants[key] = append(wants[key], &want{rx: rx})
					}
				}
			}
		}
	}
	return wants
}

func rel(root, path string) string {
	if r, err := filepath.Rel(root, path); err == nil {
		return r
	}
	return path
}
