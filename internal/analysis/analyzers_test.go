package analysis_test

import (
	"testing"

	"hetmr/internal/analysis"
	"hetmr/internal/analysis/analysistest"
)

func TestLockHeldCall(t *testing.T) {
	analysistest.Run(t, analysis.LockHeldCall, "lockheldcall")
}

func TestMustClose(t *testing.T) {
	analysistest.Run(t, analysis.MustClose, "mustclose")
}

func TestGobReg(t *testing.T) {
	analysistest.Run(t, analysis.GobReg, "gobreg")
}

// TestGobRegRegistered is a separate fixture program: gob.Register
// resolution is program-wide, so the registered and unregistered
// cases must not share one load.
func TestGobRegRegistered(t *testing.T) {
	analysistest.Run(t, analysis.GobReg, "gobregok")
}

func TestConfigDrop(t *testing.T) {
	analysistest.Run(t, analysis.ConfigDrop, "configdrop")
}

// TestSuiteOnOwnModule is the self-test the CI lane enforces: the
// whole module must stay hetlint-clean. Running it here too means a
// plain `go test ./...` catches new findings without the extra lane.
func TestSuiteOnOwnModule(t *testing.T) {
	if testing.Short() {
		t.Skip("type-checks the whole module; skipped in -short")
	}
	prog, err := analysis.LoadModule(".", "./...")
	if err != nil {
		t.Fatalf("loading module: %v", err)
	}
	diags, err := analysis.Run(prog, analysis.All())
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
