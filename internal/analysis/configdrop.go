package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// ConfigDrop verifies that every exported field of the engine
// package's Config and Job types is actually consumed by every
// registered backend — read somewhere in the backend's code, or
// explicitly acknowledged with a //hetlint:configdrop-ok directive
// (whose natural companion is an ErrUnsupported rejection or a
// documented no-op). This automates what TestNoSilentConfigDrop only
// samples: the PR-4/PR-6 bug class where a new knob works on one
// backend and is silently ignored on the others.
//
// The analyzer triggers on any package that declares both a Register
// function and a Config type (the engine package; fixtures mimic the
// shape). For each Register("name", factory) call it computes the
// backend's reference closure: the factory literal, every same-package
// function it (transitively) mentions, and every method of any
// package-local type it constructs via a composite literal — which is
// how runner methods reached only through interface dispatch are
// included. A Config/Job field selected anywhere in that closure
// counts as referenced.
//
// Acknowledged drops use
//
//	//hetlint:configdrop-ok <backend|*> <Field|Type.Field> [reason]
//
// anywhere in the package.
var ConfigDrop = &Analyzer{
	Name: "configdrop",
	Doc:  "report exported Config/Job fields that a registered backend neither reads nor explicitly acknowledges",
	Run:  runConfigDrop,
}

func runConfigDrop(pass *Pass) error {
	registerFn, _ := pass.Pkg.Scope().Lookup("Register").(*types.Func)
	cfgType := lookupNamedStruct(pass.Pkg, "Config")
	if registerFn == nil || cfgType == nil {
		return nil
	}
	jobType := lookupNamedStruct(pass.Pkg, "Job")

	decls := packageFuncDecls(pass)
	acks := configAcks(pass)

	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if calleeFunc(pass.TypesInfo, call) != registerFn || len(call.Args) < 2 {
				return true
			}
			lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
			if !ok {
				return true
			}
			backend, err := strconv.Unquote(lit.Value)
			if err != nil {
				return true
			}
			refs := backendFieldRefs(pass, decls, call.Args[1])
			for _, tn := range []*types.Named{cfgType, jobType} {
				if tn == nil {
					continue
				}
				st := tn.Underlying().(*types.Struct)
				typeName := tn.Obj().Name()
				var missing []string
				for i := 0; i < st.NumFields(); i++ {
					fld := st.Field(i)
					if !fld.Exported() {
						continue
					}
					if refs[typeName+"."+fld.Name()] {
						continue
					}
					if acks.ok(backend, typeName, fld.Name()) {
						continue
					}
					missing = append(missing, fld.Name())
				}
				if len(missing) > 0 {
					pass.Reportf(call.Pos(), "backend %q never references %s.%s — the knob is silently dropped; consume it, reject it with ErrUnsupported, or acknowledge it with //hetlint:configdrop-ok %s %s.%s",
						backend, typeName, strings.Join(missing, ", "+typeName+"."), backend, typeName, missing[0])
				}
			}
			return true
		})
	}
	return nil
}

// lookupNamedStruct finds a package-level named struct type.
func lookupNamedStruct(pkg *types.Package, name string) *types.Named {
	tn, ok := pkg.Scope().Lookup(name).(*types.TypeName)
	if !ok {
		return nil
	}
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return nil
	}
	if _, ok := named.Underlying().(*types.Struct); !ok {
		return nil
	}
	return named
}

// packageFuncDecls maps every function and method object declared in
// the package to its syntax.
func packageFuncDecls(pass *Pass) map[types.Object]*ast.FuncDecl {
	decls := make(map[types.Object]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil {
				if obj := pass.TypesInfo.Defs[fd.Name]; obj != nil {
					decls[obj] = fd
				}
			}
		}
	}
	return decls
}

// backendFieldRefs computes the set of "Type.Field" strings the
// backend's reference closure reads.
func backendFieldRefs(pass *Pass, decls map[types.Object]*ast.FuncDecl, factory ast.Expr) map[string]bool {
	refs := make(map[string]bool)
	inClosure := make(map[types.Object]bool)
	var queue []ast.Node

	enqueueObj := func(obj types.Object) {
		if obj == nil || inClosure[obj] {
			return
		}
		if fd, ok := decls[obj]; ok {
			inClosure[obj] = true
			queue = append(queue, fd.Body)
		}
	}

	scan := func(root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.Ident:
				if obj, ok := pass.TypesInfo.Uses[n].(*types.Func); ok && obj.Pkg() == pass.Pkg {
					enqueueObj(obj)
				}
			case *ast.SelectorExpr:
				if sel, ok := pass.TypesInfo.Selections[n]; ok {
					if fld, ok := sel.Obj().(*types.Var); ok && fld.IsField() {
						if owner := namedRecvOf(sel.Recv()); owner != nil && owner.Obj().Pkg() == pass.Pkg {
							refs[owner.Obj().Name()+"."+fld.Name()] = true
						}
					}
					if m, ok := sel.Obj().(*types.Func); ok && m.Pkg() == pass.Pkg {
						enqueueObj(m)
					}
				}
			case *ast.CompositeLit:
				if tv, ok := pass.TypesInfo.Types[n]; ok && tv.Type != nil {
					if named := namedRecvOf(tv.Type); named != nil && named.Obj().Pkg() == pass.Pkg {
						// Constructing a local type pulls in all its
						// methods: runners are reached through
						// interface dispatch, not direct calls.
						for i := 0; i < named.NumMethods(); i++ {
							enqueueObj(named.Method(i))
						}
					}
				}
			}
			return true
		})
	}

	// Seed: the factory expression itself (a func literal, or a named
	// package function).
	switch fe := ast.Unparen(factory).(type) {
	case *ast.FuncLit:
		queue = append(queue, fe)
	case *ast.Ident:
		enqueueObj(pass.TypesInfo.Uses[fe])
	default:
		queue = append(queue, fe)
	}
	for len(queue) > 0 {
		n := queue[0]
		queue = queue[1:]
		scan(n)
	}
	return refs
}

// namedRecvOf strips pointers and returns the named type, if any.
func namedRecvOf(t types.Type) *types.Named {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// ackSet holds parsed //hetlint:configdrop-ok directives.
type ackSet map[string]bool

func (a ackSet) ok(backend, typeName, field string) bool {
	for _, b := range []string{backend, "*"} {
		if a[b+"|"+field] || a[b+"|"+typeName+"."+field] {
			return true
		}
	}
	return false
}

// configAcks collects acknowledged-drop directives from the package's
// comments.
func configAcks(pass *Pass) ackSet {
	acks := make(ackSet)
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//hetlint:configdrop-ok")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue
				}
				acks[fields[0]+"|"+fields[1]] = true
			}
		}
	}
	return acks
}
