// Package sim provides a deterministic discrete-event simulation engine
// used to model the paper's 66-blade testbed: virtual time, event
// scheduling, goroutine-based processes with strict engine/process
// alternation, FIFO resources, processor-sharing links and mailboxes.
//
// The engine is single-threaded from the simulation's point of view:
// at most one process goroutine runs at any instant, and control is
// handed back and forth through channel handshakes, so runs are fully
// deterministic for a given seed and spawn order.
package sim

import (
	"fmt"
	"math"
)

// Time is a virtual timestamp measured in nanoseconds since the start
// of the simulation. Using integer nanoseconds (rather than float
// seconds) keeps event ordering exact and runs reproducible.
type Time int64

// Duration constants in virtual nanoseconds.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
	Minute           = 60 * Second
	Hour             = 60 * Minute
)

// Seconds converts a floating-point number of seconds to a Time.
// Values are rounded to the nearest nanosecond; infinities and NaN
// saturate to the maximum representable Time.
func Seconds(s float64) Time {
	ns := s * float64(Second)
	if math.IsNaN(ns) || ns > math.MaxInt64 {
		return Time(math.MaxInt64)
	}
	if ns < math.MinInt64 {
		return Time(math.MinInt64)
	}
	return Time(math.Round(ns))
}

// Seconds reports t as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Milliseconds reports t as a floating-point number of milliseconds.
func (t Time) Milliseconds() float64 { return float64(t) / float64(Millisecond) }

// String formats the time as seconds with microsecond precision,
// e.g. "12.345678s".
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}
