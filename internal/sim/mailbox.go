package sim

// Mailbox is an unbounded FIFO message queue between processes.
// Send never blocks; Recv blocks the receiver until a message is
// available. Used for RPC-style request/response between simulated
// daemons (JobTracker, TaskTrackers, NameNode, DataNodes).
type Mailbox[T any] struct {
	queue   []T
	waiters WaitQueue
}

// Len returns the number of queued messages.
func (m *Mailbox[T]) Len() int { return len(m.queue) }

// Send enqueues v and wakes one receiver if any is waiting.
func (m *Mailbox[T]) Send(v T) {
	m.queue = append(m.queue, v)
	m.waiters.WakeOne()
}

// Recv dequeues the oldest message, blocking p until one arrives.
func (m *Mailbox[T]) Recv(p *Proc) T {
	for len(m.queue) == 0 {
		m.waiters.Wait(p)
	}
	v := m.queue[0]
	var zero T
	m.queue[0] = zero
	m.queue = m.queue[1:]
	return v
}

// TryRecv dequeues a message if one is available, without blocking.
func (m *Mailbox[T]) TryRecv() (T, bool) {
	if len(m.queue) == 0 {
		var zero T
		return zero, false
	}
	v := m.queue[0]
	var zero T
	m.queue[0] = zero
	m.queue = m.queue[1:]
	return v, true
}

// Gate is a broadcast latch: processes wait on it until it is opened,
// after which all current and future waits return immediately.
type Gate struct {
	open    bool
	waiters WaitQueue
}

// Open releases all waiting processes and makes future Wait calls
// return immediately.
func (g *Gate) Open() {
	if g.open {
		return
	}
	g.open = true
	g.waiters.WakeAll()
}

// IsOpen reports whether the gate has been opened.
func (g *Gate) IsOpen() bool { return g.open }

// Wait blocks p until the gate opens.
func (g *Gate) Wait(p *Proc) {
	if g.open {
		return
	}
	g.waiters.Wait(p)
}

// Counter is a countdown latch: Wait blocks until Done has been called
// n times (like sync.WaitGroup in simulation time).
type Counter struct {
	remaining int
	waiters   WaitQueue
}

// NewCounter creates a latch expecting n completions.
func NewCounter(n int) *Counter { return &Counter{remaining: n} }

// Add increases the expected completion count by delta.
func (c *Counter) Add(delta int) { c.remaining += delta }

// Remaining returns the completions still outstanding.
func (c *Counter) Remaining() int { return c.remaining }

// Done records one completion, waking waiters when the count hits zero.
func (c *Counter) Done() {
	c.remaining--
	if c.remaining <= 0 {
		c.waiters.WakeAll()
	}
}

// Wait blocks p until the count reaches zero.
func (c *Counter) Wait(p *Proc) {
	for c.remaining > 0 {
		c.waiters.Wait(p)
	}
}
