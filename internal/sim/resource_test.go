package sim

import (
	"testing"
	"testing/quick"
)

func TestResourceBasicAcquireRelease(t *testing.T) {
	e := NewEngine(1)
	r := NewResource("cpu", 2)
	var holdTimes []Time
	for i := 0; i < 4; i++ {
		e.Spawn("worker", func(p *Proc) {
			r.Acquire(p, 1)
			holdTimes = append(holdTimes, p.Now())
			p.Sleep(Second)
			r.Release(1)
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	// Capacity 2: two start at t=0, two at t=1.
	want := []Time{0, 0, Second, Second}
	if len(holdTimes) != 4 {
		t.Fatalf("holdTimes = %v", holdTimes)
	}
	for i := range want {
		if holdTimes[i] != want[i] {
			t.Errorf("acquire %d at %v, want %v", i, holdTimes[i], want[i])
		}
	}
	if r.InUse() != 0 {
		t.Errorf("in use = %d after all released", r.InUse())
	}
}

func TestResourceFIFONoStarvation(t *testing.T) {
	// A large request queued first must not be starved by small
	// requests that would fit.
	e := NewEngine(1)
	r := NewResource("mem", 4)
	var order []string
	e.Spawn("holder", func(p *Proc) {
		r.Acquire(p, 3)
		p.Sleep(Second)
		r.Release(3)
	})
	e.At(10*Millisecond, func() {
		e.Spawn("big", func(p *Proc) {
			r.Acquire(p, 4)
			order = append(order, "big")
			r.Release(4)
		})
	})
	e.At(20*Millisecond, func() {
		e.Spawn("small", func(p *Proc) {
			r.Acquire(p, 1)
			order = append(order, "small")
			r.Release(1)
		})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(order) != 2 || order[0] != "big" || order[1] != "small" {
		t.Errorf("order = %v, want [big small]", order)
	}
}

func TestResourceTryAcquire(t *testing.T) {
	e := NewEngine(1)
	r := NewResource("slots", 2)
	if !r.TryAcquire(2) {
		t.Error("TryAcquire(2) on empty resource failed")
	}
	if r.TryAcquire(1) {
		t.Error("TryAcquire(1) succeeded over capacity")
	}
	r.Release(2)
	if !r.TryAcquire(1) {
		t.Error("TryAcquire(1) after release failed")
	}
	r.Release(1)
	_ = e
}

func TestResourceAccounting(t *testing.T) {
	r := NewResource("r", 10)
	if r.Capacity() != 10 || r.Available() != 10 || r.InUse() != 0 {
		t.Error("fresh resource accounting wrong")
	}
	r.TryAcquire(4)
	if r.Available() != 6 || r.InUse() != 4 {
		t.Errorf("after acquire: avail=%d inuse=%d", r.Available(), r.InUse())
	}
	if r.Name() != "r" {
		t.Errorf("name = %q", r.Name())
	}
}

func TestResourceInvalidOps(t *testing.T) {
	r := NewResource("r", 2)
	mustPanic := func(name string, fn func()) {
		defer func() {
			if recover() == nil {
				t.Errorf("%s: expected panic", name)
			}
		}()
		fn()
	}
	mustPanic("release unheld", func() { r.Release(1) })
	mustPanic("zero capacity", func() { NewResource("bad", 0) })
	e := NewEngine(1)
	e.Spawn("p", func(p *Proc) {
		mustPanic("over-capacity acquire", func() { r.Acquire(p, 3) })
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

// Property: for any pattern of unit acquire/hold/release, in-use never
// exceeds capacity and ends at zero.
func TestResourceNeverOversubscribedProperty(t *testing.T) {
	f := func(capRaw uint8, holds []uint16) bool {
		capacity := int(capRaw%8) + 1
		if len(holds) > 40 {
			holds = holds[:40]
		}
		e := NewEngine(uint64(capRaw))
		r := NewResource("p", capacity)
		ok := true
		for _, h := range holds {
			hold := Time(h%1000+1) * Millisecond
			e.Spawn("w", func(p *Proc) {
				r.Acquire(p, 1)
				if r.InUse() > r.Capacity() {
					ok = false
				}
				p.Sleep(hold)
				r.Release(1)
			})
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		return ok && r.InUse() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
