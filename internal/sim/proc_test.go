package sim

import (
	"strings"
	"testing"
)

func TestProcSleep(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Spawn("sleeper", func(p *Proc) {
		p.Sleep(3 * Second)
		wake = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 3*Second {
		t.Errorf("woke at %v, want 3s", wake)
	}
}

func TestProcSequentialSleeps(t *testing.T) {
	e := NewEngine(1)
	var marks []Time
	e.Spawn("seq", func(p *Proc) {
		for i := 0; i < 5; i++ {
			p.Sleep(Second)
			marks = append(marks, p.Now())
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, m := range marks {
		if m != Time(i+1)*Second {
			t.Errorf("mark %d at %v, want %ds", i, m, i+1)
		}
	}
}

func TestTwoProcsInterleave(t *testing.T) {
	e := NewEngine(1)
	var log []string
	e.Spawn("a", func(p *Proc) {
		p.Sleep(Second)
		log = append(log, "a1")
		p.Sleep(2 * Second)
		log = append(log, "a3")
	})
	e.Spawn("b", func(p *Proc) {
		p.Sleep(2 * Second)
		log = append(log, "b2")
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	got := strings.Join(log, ",")
	if got != "a1,b2,a3" {
		t.Errorf("interleaving = %q, want a1,b2,a3", got)
	}
}

func TestSleepUntil(t *testing.T) {
	e := NewEngine(1)
	var at Time
	e.Spawn("p", func(p *Proc) {
		p.SleepUntil(5 * Second)
		p.SleepUntil(Second) // in the past: no-op
		at = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if at != 5*Second {
		t.Errorf("finished at %v, want 5s", at)
	}
}

func TestSpawnFromProc(t *testing.T) {
	e := NewEngine(1)
	var childTime Time
	e.Spawn("parent", func(p *Proc) {
		p.Sleep(Second)
		e.Spawn("child", func(c *Proc) {
			c.Sleep(Second)
			childTime = c.Now()
		})
		p.Sleep(5 * Second)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if childTime != 2*Second {
		t.Errorf("child finished at %v, want 2s", childTime)
	}
}

func TestWaitQueueFIFO(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	var order []string
	for _, name := range []string{"x", "y", "z"} {
		name := name
		e.Spawn(name, func(p *Proc) {
			q.Wait(p)
			order = append(order, name)
		})
	}
	e.At(Second, func() {
		if q.Len() != 3 {
			t.Errorf("queue len = %d, want 3", q.Len())
		}
		q.WakeAll()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if strings.Join(order, "") != "xyz" {
		t.Errorf("wake order = %v, want x,y,z", order)
	}
}

func TestWakeOneOnly(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	woken := 0
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			q.Wait(p)
			woken++
		})
	}
	e.At(Second, func() { q.WakeOne() })
	// The other two remain blocked: expect a deadlock report.
	_, err := e.Run()
	if err == nil {
		t.Fatal("expected deadlock error with two blocked processes")
	}
	if woken != 1 {
		t.Errorf("woken = %d, want 1", woken)
	}
}

func TestDeadlockDetection(t *testing.T) {
	e := NewEngine(1)
	var q WaitQueue
	e.Spawn("stuck", func(p *Proc) { q.Wait(p) })
	_, err := e.Run()
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Fatalf("expected deadlock error, got %v", err)
	}
}

func TestGate(t *testing.T) {
	e := NewEngine(1)
	var g Gate
	passed := 0
	for i := 0; i < 4; i++ {
		e.Spawn("g", func(p *Proc) {
			g.Wait(p)
			passed++
		})
	}
	e.At(2*Second, func() { g.Open() })
	// Late waiter after the gate opened must pass immediately.
	e.At(3*Second, func() {
		e.Spawn("late", func(p *Proc) {
			g.Wait(p)
			passed++
		})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if passed != 5 {
		t.Errorf("passed = %d, want 5", passed)
	}
	if !g.IsOpen() {
		t.Error("gate should be open")
	}
}

func TestCounter(t *testing.T) {
	e := NewEngine(1)
	c := NewCounter(3)
	var doneAt Time
	e.Spawn("waiter", func(p *Proc) {
		c.Wait(p)
		doneAt = p.Now()
	})
	for i := 1; i <= 3; i++ {
		i := i
		e.At(Time(i)*Second, func() { c.Done() })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if doneAt != 3*Second {
		t.Errorf("counter released at %v, want 3s", doneAt)
	}
	if c.Remaining() != 0 {
		t.Errorf("remaining = %d", c.Remaining())
	}
}
