package sim

import "fmt"

// Proc is a simulation process: a goroutine whose execution is
// interleaved with the engine through a strict handshake, so that at
// most one process runs at a time and runs are deterministic.
//
// A process may only call its blocking methods (Sleep, Park, resource
// Acquire, mailbox Recv, ...) from its own goroutine while it is the
// running process.
type Proc struct {
	eng  *Engine
	name string
	wake chan struct{}
	done bool
}

// Name returns the process name given at spawn time.
func (p *Proc) Name() string { return p.name }

// Engine returns the engine this process belongs to.
func (p *Proc) Engine() *Engine { return p.eng }

// Now returns the current virtual time.
func (p *Proc) Now() Time { return p.eng.now }

// Spawn creates a process executing fn. The process body starts at the
// current virtual time, but only after the currently executing event
// or process yields, preserving run-to-completion semantics.
func (e *Engine) Spawn(name string, fn func(*Proc)) *Proc {
	p := &Proc{eng: e, name: name, wake: make(chan struct{})}
	e.liveProcs++
	e.At(e.now, func() {
		go func() {
			defer func() {
				if r := recover(); r != nil {
					// Re-panic on the engine side would deadlock the
					// handshake; surface the panic with context instead.
					panic(fmt.Sprintf("sim: process %q panicked: %v", name, r))
				}
			}()
			fn(p)
			p.done = true
			e.liveProcs--
			e.yield <- struct{}{}
		}()
		<-e.yield // wait until the new process parks or finishes
	})
	return p
}

// park transfers control back to the engine and blocks until resume.
func (p *Proc) park() {
	p.eng.blocked++
	p.eng.yield <- struct{}{}
	<-p.wake
	p.eng.blocked--
}

// resume restarts a parked process and waits for it to park again or
// finish. Must be called from engine context (an event callback) or
// from another running process.
func (p *Proc) resume() {
	if p.done {
		panic(fmt.Sprintf("sim: resuming finished process %q", p.name))
	}
	p.wake <- struct{}{}
	<-p.eng.yield
}

// Sleep suspends the process for d of virtual time.
func (p *Proc) Sleep(d Time) {
	if d < 0 {
		d = 0
	}
	p.eng.After(d, func() { p.resume() })
	p.park()
}

// SleepUntil suspends the process until absolute time t. Times in the
// past return immediately.
func (p *Proc) SleepUntil(t Time) {
	if t <= p.eng.now {
		return
	}
	p.eng.At(t, func() { p.resume() })
	p.park()
}

// WaitQueue is a FIFO queue of parked processes, the building block
// for condition-variable style synchronization.
type WaitQueue struct {
	waiters []*Proc
}

// Len returns the number of processes currently waiting.
func (q *WaitQueue) Len() int { return len(q.waiters) }

// Wait parks p until another process or event wakes it.
func (q *WaitQueue) Wait(p *Proc) {
	q.waiters = append(q.waiters, p)
	p.park()
}

// WakeOne resumes the longest-waiting process. The wakeup is scheduled
// as an event at the current time, so the caller keeps running until
// it next yields. It reports whether a process was woken.
func (q *WaitQueue) WakeOne() bool {
	if len(q.waiters) == 0 {
		return false
	}
	p := q.waiters[0]
	copy(q.waiters, q.waiters[1:])
	q.waiters = q.waiters[:len(q.waiters)-1]
	p.eng.At(p.eng.now, func() { p.resume() })
	return true
}

// WakeAll resumes every waiting process in FIFO order.
func (q *WaitQueue) WakeAll() {
	for q.WakeOne() {
	}
}
