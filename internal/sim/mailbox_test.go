package sim

import (
	"testing"
	"testing/quick"
)

func TestMailboxSendRecv(t *testing.T) {
	e := NewEngine(1)
	var mb Mailbox[int]
	var got []int
	e.Spawn("recv", func(p *Proc) {
		for i := 0; i < 3; i++ {
			got = append(got, mb.Recv(p))
		}
	})
	e.At(Second, func() { mb.Send(1); mb.Send(2) })
	e.At(2*Second, func() { mb.Send(3) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 || got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("got %v, want [1 2 3]", got)
	}
}

func TestMailboxTryRecv(t *testing.T) {
	var mb Mailbox[string]
	if _, ok := mb.TryRecv(); ok {
		t.Error("TryRecv on empty mailbox returned ok")
	}
	mb.Send("a")
	if mb.Len() != 1 {
		t.Errorf("len = %d", mb.Len())
	}
	v, ok := mb.TryRecv()
	if !ok || v != "a" {
		t.Errorf("TryRecv = %q, %v", v, ok)
	}
}

func TestMailboxFIFOProperty(t *testing.T) {
	f := func(vals []int) bool {
		if len(vals) > 50 {
			vals = vals[:50]
		}
		e := NewEngine(1)
		var mb Mailbox[int]
		var got []int
		e.Spawn("recv", func(p *Proc) {
			for range vals {
				got = append(got, mb.Recv(p))
			}
		})
		e.At(Second, func() {
			for _, v := range vals {
				mb.Send(v)
			}
		})
		if _, err := e.Run(); err != nil {
			return false
		}
		if len(got) != len(vals) {
			return false
		}
		for i := range vals {
			if got[i] != vals[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestMailboxMultipleReceivers(t *testing.T) {
	e := NewEngine(1)
	var mb Mailbox[int]
	sum := 0
	for i := 0; i < 2; i++ {
		e.Spawn("r", func(p *Proc) {
			sum += mb.Recv(p)
		})
	}
	e.At(Second, func() { mb.Send(10); mb.Send(20) })
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if sum != 30 {
		t.Errorf("sum = %d, want 30", sum)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed RNGs diverged")
		}
	}
	c := NewRNG(8)
	same := 0
	for i := 0; i < 100; i++ {
		if NewRNG(7).Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Error("different seeds look identical")
	}
}

func TestRNGRanges(t *testing.T) {
	r := NewRNG(123)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %g", f)
		}
		if n := r.Intn(10); n < 0 || n >= 10 {
			t.Fatalf("Intn out of range: %d", n)
		}
		if j := r.Jitter(Second); j < 0 || j >= Second {
			t.Fatalf("Jitter out of range: %v", j)
		}
	}
	if r.Jitter(0) != 0 {
		t.Error("Jitter(0) != 0")
	}
	if e := r.Exp(Second); e < 0 {
		t.Errorf("Exp negative: %v", e)
	}
}

func TestRNGIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGExpMean(t *testing.T) {
	r := NewRNG(99)
	const n = 20000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exp(Second).Seconds()
	}
	mean := sum / n
	if mean < 0.95 || mean > 1.05 {
		t.Errorf("Exp mean = %g, want ~1.0", mean)
	}
}

func TestRNGFork(t *testing.T) {
	r := NewRNG(5)
	f1 := r.Fork()
	f2 := r.Fork()
	if f1.Uint64() == f2.Uint64() {
		t.Error("forked streams identical")
	}
}

func TestRNGFloat64Uniformity(t *testing.T) {
	r := NewRNG(321)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[int(r.Float64()*10)]++
	}
	for i, c := range buckets {
		if c < n/10-n/50 || c > n/10+n/50 {
			t.Errorf("bucket %d has %d, want ~%d", i, c, n/10)
		}
	}
}
