package sim

import (
	"strings"
	"testing"
)

func TestTracerReceivesEvents(t *testing.T) {
	e := NewEngine(1)
	var lines []string
	e.Tracer = func(at Time, what string) {
		lines = append(lines, at.String()+" "+what)
	}
	e.Spawn("p", func(p *Proc) {
		p.Sleep(Second)
		e.trace("woke up")
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	found := false
	for _, l := range lines {
		if strings.Contains(l, "woke up") && strings.HasPrefix(l, "1.000000s") {
			found = true
		}
	}
	if !found {
		t.Errorf("trace lines = %v", lines)
	}
}

func TestTraceNilTracerSafe(t *testing.T) {
	e := NewEngine(1)
	e.trace("nothing %d", 42) // must not panic with nil Tracer
}

func TestRunUntilWithSleepingProcResumes(t *testing.T) {
	e := NewEngine(1)
	var wake Time
	e.Spawn("p", func(p *Proc) {
		p.Sleep(10 * Second)
		wake = p.Now()
	})
	if _, err := e.RunUntil(3 * Second); err != nil {
		t.Fatal(err)
	}
	if wake != 0 {
		t.Error("proc woke before horizon")
	}
	if now := e.Now(); now != 3*Second {
		t.Errorf("clock at %v", now)
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if wake != 10*Second {
		t.Errorf("proc woke at %v", wake)
	}
}

func TestResourceQueueLen(t *testing.T) {
	e := NewEngine(1)
	r := NewResource("q", 1)
	for i := 0; i < 3; i++ {
		e.Spawn("w", func(p *Proc) {
			r.Acquire(p, 1)
			p.Sleep(Second)
			r.Release(1)
		})
	}
	e.At(500*Millisecond, func() {
		if r.QueueLen() != 2 {
			t.Errorf("queue len = %d, want 2", r.QueueLen())
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if r.QueueLen() != 0 {
		t.Errorf("final queue len = %d", r.QueueLen())
	}
}
