package sim

import "testing"

// Engine micro-benchmarks: event throughput bounds how large a
// simulated cluster/duration is tractable.

func BenchmarkEventDispatch(b *testing.B) {
	e := NewEngine(1)
	var fire func()
	n := 0
	fire = func() {
		n++
		if n < b.N {
			e.After(Millisecond, fire)
		}
	}
	e.After(Millisecond, fire)
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkProcSleepWake(b *testing.B) {
	e := NewEngine(1)
	e.Spawn("sleeper", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Sleep(Millisecond)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkLinkTransfers(b *testing.B) {
	e := NewEngine(1)
	l := NewLink(e, "nic", 1e9)
	e.Spawn("tx", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			l.Transfer(p, 1000)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}

func BenchmarkMailboxRoundTrip(b *testing.B) {
	e := NewEngine(1)
	var req, resp Mailbox[int]
	e.Spawn("server", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			v := req.Recv(p)
			resp.Send(v + 1)
		}
	})
	e.Spawn("client", func(p *Proc) {
		for i := 0; i < b.N; i++ {
			req.Send(i)
			resp.Recv(p)
		}
	})
	b.ResetTimer()
	if _, err := e.Run(); err != nil {
		b.Fatal(err)
	}
}
