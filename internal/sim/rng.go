package sim

import "math"

// RNG is a small, fast, deterministic pseudo-random generator
// (splitmix64) used for simulation-level randomness such as jittering
// heartbeat phases. It is deliberately independent of math/rand so
// simulation runs are reproducible across Go releases.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits (splitmix64 step).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Jitter returns a Time uniformly distributed in [0, max).
func (r *RNG) Jitter(max Time) Time {
	if max <= 0 {
		return 0
	}
	return Time(r.Uint64() % uint64(max))
}

// Exp returns an exponentially distributed duration with the given
// mean, for modelling think times and failure inter-arrivals.
func (r *RNG) Exp(mean Time) Time {
	u := r.Float64()
	if u <= 0 {
		u = math.SmallestNonzeroFloat64
	}
	return Seconds(-mean.Seconds() * math.Log(u))
}

// Fork derives an independent generator whose stream is a function of
// this generator's next output, for giving sub-components their own
// deterministic streams.
func (r *RNG) Fork() *RNG { return NewRNG(r.Uint64()) }
