package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestLinkSingleTransfer(t *testing.T) {
	e := NewEngine(1)
	l := NewLink(e, "nic", 100) // 100 B/s
	var done Time
	e.Spawn("tx", func(p *Proc) {
		l.Transfer(p, 200)
		done = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 2*Second {
		t.Errorf("200B at 100B/s finished at %v, want 2s", done)
	}
}

func TestLinkFairSharing(t *testing.T) {
	// Two equal transfers started together each get half the rate.
	e := NewEngine(1)
	l := NewLink(e, "nic", 100)
	var done [2]Time
	for i := 0; i < 2; i++ {
		i := i
		e.Spawn("tx", func(p *Proc) {
			l.Transfer(p, 100)
			done[i] = p.Now()
		})
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, d := range done {
		if d != 2*Second {
			t.Errorf("transfer %d finished at %v, want 2s (fair share)", i, d)
		}
	}
}

func TestLinkLateJoiner(t *testing.T) {
	// A: 100B starting at t=0. B: 100B starting at t=0.5s.
	// 0..0.5: A alone drains 50B. Then both share 50 B/s each.
	// A's remaining 50B takes 1s -> A done at 1.5s.
	// Then B alone: B drained 50B during sharing, 50B left at 100B/s
	// -> B done at 2.0s.
	e := NewEngine(1)
	l := NewLink(e, "nic", 100)
	var doneA, doneB Time
	e.Spawn("A", func(p *Proc) {
		l.Transfer(p, 100)
		doneA = p.Now()
	})
	e.At(500*Millisecond, func() {
		e.Spawn("B", func(p *Proc) {
			l.Transfer(p, 100)
			doneB = p.Now()
		})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if aWant := 1500 * Millisecond; absTime(doneA-aWant) > Microsecond {
		t.Errorf("A done at %v, want %v", doneA, aWant)
	}
	if bWant := 2 * Second; absTime(doneB-bWant) > Microsecond {
		t.Errorf("B done at %v, want %v", doneB, bWant)
	}
}

func absTime(t Time) Time {
	if t < 0 {
		return -t
	}
	return t
}

func TestLinkZeroBytes(t *testing.T) {
	e := NewEngine(1)
	l := NewLink(e, "nic", 100)
	var done Time
	e.Spawn("tx", func(p *Proc) {
		l.Transfer(p, 0)
		done = p.Now()
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if done != 0 {
		t.Errorf("zero transfer took %v", done)
	}
}

func TestLinkTransferTime(t *testing.T) {
	e := NewEngine(1)
	l := NewLink(e, "nic", 1e9)
	if got := l.TransferTime(1e9); got != Second {
		t.Errorf("TransferTime = %v, want 1s", got)
	}
	if l.Rate() != 1e9 || l.Name() != "nic" {
		t.Error("accessors wrong")
	}
}

// Property: total bytes drained equals total bytes offered, and each
// transfer takes at least size/rate (no transfer beats an idle link).
func TestLinkConservationProperty(t *testing.T) {
	f := func(seed uint64, sizesRaw []uint16, delaysRaw []uint16) bool {
		n := len(sizesRaw)
		if n == 0 {
			return true
		}
		if n > 20 {
			n = 20
		}
		e := NewEngine(seed)
		l := NewLink(e, "nic", 1000)
		var total float64
		ok := true
		for i := 0; i < n; i++ {
			size := int64(sizesRaw[i]%5000) + 1
			var delay Time
			if i < len(delaysRaw) {
				delay = Time(delaysRaw[i]%3000) * Millisecond
			}
			total += float64(size)
			e.At(delay, func() {
				start := e.Now()
				e.Spawn("tx", func(p *Proc) {
					l.Transfer(p, size)
					elapsed := p.Now() - start
					if elapsed < l.TransferTime(size)-Microsecond {
						ok = false // beat the physics
					}
				})
			})
		}
		if _, err := e.Run(); err != nil {
			return false
		}
		if math.Abs(l.TotalBytes-total) > 1e-3*total+1 {
			return false
		}
		return ok && l.Active() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestLinkNegativePanics(t *testing.T) {
	e := NewEngine(1)
	l := NewLink(e, "nic", 100)
	e.Spawn("p", func(p *Proc) {
		defer func() {
			if recover() == nil {
				t.Error("expected panic on negative size")
			}
		}()
		l.Transfer(p, -1)
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	defer func() {
		if recover() == nil {
			t.Error("expected panic on non-positive rate")
		}
	}()
	NewLink(e, "bad", 0)
}
