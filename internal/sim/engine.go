package sim

import (
	"container/heap"
	"fmt"
)

// event is a scheduled callback in virtual time. Events with equal
// timestamps fire in scheduling order (seq breaks ties), which keeps
// runs deterministic.
type event struct {
	t        Time
	seq      uint64
	fn       func()
	canceled bool
	index    int // heap index, -1 when popped
}

type eventHeap []*event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].t != h[j].t {
		return h[i].t < h[j].t
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}
func (h *eventHeap) Push(x any) {
	ev := x.(*event)
	ev.index = len(*h)
	*h = append(*h, ev)
}
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}

// Engine is the discrete-event simulation core. It owns the virtual
// clock and the pending-event calendar. All simulation activity —
// plain events and process goroutines — is serialized through the
// engine, so simulated state never needs locking.
type Engine struct {
	now    Time
	seq    uint64
	events eventHeap

	// yield is the handshake channel processes use to return control
	// to the engine after being resumed.
	yield chan struct{}

	liveProcs int // processes spawned and not yet finished
	blocked   int // processes currently parked on a waitpoint

	rng *RNG

	// Tracer, when non-nil, receives a line for every fired event.
	Tracer func(at Time, what string)

	stopped bool
	current *Proc // process currently executing, nil when engine code runs
}

// NewEngine returns an engine with its clock at zero and the given
// RNG seed (the seed only matters if the simulation draws randomness).
func NewEngine(seed uint64) *Engine {
	return &Engine{
		yield: make(chan struct{}),
		rng:   NewRNG(seed),
	}
}

// Now returns the current virtual time.
func (e *Engine) Now() Time { return e.now }

// RNG returns the engine's deterministic random number generator.
func (e *Engine) RNG() *RNG { return e.rng }

// Timer identifies a scheduled event so callers can cancel it before
// it fires.
type Timer struct{ ev *event }

// Stop cancels the timer. It reports whether the event had not yet
// fired (a false return means the callback already ran or was already
// stopped).
func (t *Timer) Stop() bool {
	if t == nil || t.ev == nil || t.ev.canceled || t.ev.index == -1 {
		return false
	}
	t.ev.canceled = true
	return true
}

// At schedules fn to run at absolute virtual time t. Scheduling in the
// past is an error in the model being simulated, so it panics.
func (e *Engine) At(t Time, fn func()) *Timer {
	if t < e.now {
		panic(fmt.Sprintf("sim: scheduling event at %v before now %v", t, e.now))
	}
	ev := &event{t: t, seq: e.seq, fn: fn}
	e.seq++
	heap.Push(&e.events, ev)
	return &Timer{ev: ev}
}

// After schedules fn to run d after the current time. Negative delays
// are clamped to zero.
func (e *Engine) After(d Time, fn func()) *Timer {
	if d < 0 {
		d = 0
	}
	return e.At(e.now+d, fn)
}

// Stop makes Run return after the currently executing event completes.
func (e *Engine) Stop() { e.stopped = true }

// Run executes events until the calendar is empty, Stop is called, or
// a deadlock is detected (live processes remain but no events are
// pending). It returns the virtual time at which the run ended.
func (e *Engine) Run() (Time, error) {
	return e.RunUntil(Time(1<<62 - 1))
}

// RunUntil is Run with a time horizon: events scheduled after the
// horizon are left unfired and the clock stops at the horizon.
func (e *Engine) RunUntil(horizon Time) (Time, error) {
	e.stopped = false
	for len(e.events) > 0 && !e.stopped {
		ev := heap.Pop(&e.events).(*event)
		if ev.canceled {
			continue
		}
		if ev.t > horizon {
			// Put it back for a later resumed run.
			heap.Push(&e.events, ev)
			e.now = horizon
			return e.now, nil
		}
		if ev.t < e.now {
			return e.now, fmt.Errorf("sim: event time %v went backwards from %v", ev.t, e.now)
		}
		e.now = ev.t
		ev.fn()
	}
	if !e.stopped && e.liveProcs > 0 && e.blocked == e.liveProcs {
		return e.now, fmt.Errorf("sim: deadlock at %v: %d process(es) blocked with no pending events", e.now, e.blocked)
	}
	return e.now, nil
}

// trace emits a trace line if tracing is enabled.
func (e *Engine) trace(format string, args ...any) {
	if e.Tracer != nil {
		e.Tracer(e.now, fmt.Sprintf(format, args...))
	}
}
