package sim

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestTimeConversions(t *testing.T) {
	cases := []struct {
		s    float64
		want Time
	}{
		{0, 0},
		{1, Second},
		{0.001, Millisecond},
		{1e-9, Nanosecond},
		{2.5, 2*Second + 500*Millisecond},
		{-1, -Second},
	}
	for _, c := range cases {
		if got := Seconds(c.s); got != c.want {
			t.Errorf("Seconds(%g) = %v, want %v", c.s, got, c.want)
		}
	}
	if got := Seconds(math.Inf(1)); got != Time(math.MaxInt64) {
		t.Errorf("Seconds(+Inf) = %v, want MaxInt64", got)
	}
	if got := Seconds(math.NaN()); got != Time(math.MaxInt64) {
		t.Errorf("Seconds(NaN) = %v, want MaxInt64", got)
	}
	if got := (2 * Second).Seconds(); got != 2.0 {
		t.Errorf("(2s).Seconds() = %g, want 2", got)
	}
	if got := (1500 * Microsecond).Milliseconds(); got != 1.5 {
		t.Errorf("Milliseconds = %g, want 1.5", got)
	}
	if got := (1234567 * Nanosecond).String(); got != "0.001235s" {
		t.Errorf("String = %q", got)
	}
}

func TestTimeRoundTripProperty(t *testing.T) {
	f := func(ns int64) bool {
		tt := Time(ns)
		back := Seconds(tt.Seconds())
		diff := back - tt
		if diff < 0 {
			diff = -diff
		}
		// float64 has 53 bits of mantissa; allow relative rounding error.
		tol := Time(1)
		if ns > 1<<53 || ns < -(1<<53) {
			tol = Time(math.Abs(float64(ns)) / float64(1<<50))
		}
		return diff <= tol
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestEventsFireInTimeOrder(t *testing.T) {
	e := NewEngine(1)
	var fired []Time
	times := []Time{5 * Second, Second, 3 * Second, Second, 0, 10 * Millisecond}
	for _, at := range times {
		at := at
		e.At(at, func() { fired = append(fired, at) })
	}
	end, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if end != 5*Second {
		t.Errorf("end time = %v, want 5s", end)
	}
	if !sort.SliceIsSorted(fired, func(i, j int) bool { return fired[i] < fired[j] }) {
		t.Errorf("events fired out of order: %v", fired)
	}
	if len(fired) != len(times) {
		t.Errorf("fired %d events, want %d", len(fired), len(times))
	}
}

func TestEqualTimestampsFIFO(t *testing.T) {
	e := NewEngine(1)
	var order []int
	for i := 0; i < 100; i++ {
		i := i
		e.At(Second, func() { order = append(order, i) })
	}
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("order[%d] = %d, want %d (FIFO tie-break violated)", i, v, i)
		}
	}
}

func TestClockMonotonicProperty(t *testing.T) {
	// Random event cascades never move the clock backwards.
	f := func(seed uint64, delays []uint32) bool {
		e := NewEngine(seed)
		last := Time(-1)
		ok := true
		var schedule func(depth int)
		schedule = func(depth int) {
			if depth >= len(delays) {
				return
			}
			d := Time(delays[depth] % 1000000)
			e.After(d, func() {
				if e.Now() < last {
					ok = false
				}
				last = e.Now()
				schedule(depth + 1)
			})
		}
		schedule(0)
		if _, err := e.Run(); err != nil {
			return false
		}
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestTimerStop(t *testing.T) {
	e := NewEngine(1)
	fired := false
	tm := e.At(Second, func() { fired = true })
	e.At(500*Millisecond, func() {
		if !tm.Stop() {
			t.Error("Stop returned false for pending timer")
		}
		if tm.Stop() {
			t.Error("second Stop returned true")
		}
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Error("canceled event fired")
	}
}

func TestSchedulingInPastPanics(t *testing.T) {
	e := NewEngine(1)
	e.At(Second, func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic scheduling in the past")
			}
		}()
		e.At(0, func() {})
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
}

func TestRunUntilHorizon(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(Second, func() { fired++ })
	e.At(3*Second, func() { fired++ })
	now, err := e.RunUntil(2 * Second)
	if err != nil {
		t.Fatal(err)
	}
	if now != 2*Second || fired != 1 {
		t.Errorf("RunUntil: now=%v fired=%d, want 2s and 1", now, fired)
	}
	// Resume to completion.
	now, err = e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if now != 3*Second || fired != 2 {
		t.Errorf("Run resume: now=%v fired=%d, want 3s and 2", now, fired)
	}
}

func TestStop(t *testing.T) {
	e := NewEngine(1)
	fired := 0
	e.At(Second, func() { fired++; e.Stop() })
	e.At(2*Second, func() { fired++ })
	now, err := e.Run()
	if err != nil {
		t.Fatal(err)
	}
	if now != Second || fired != 1 {
		t.Errorf("after Stop: now=%v fired=%d", now, fired)
	}
}

func TestNegativeAfterClamped(t *testing.T) {
	e := NewEngine(1)
	ran := false
	e.At(Second, func() {
		e.After(-5*Second, func() { ran = true })
	})
	if _, err := e.Run(); err != nil {
		t.Fatal(err)
	}
	if !ran {
		t.Error("negative After never ran")
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		e := NewEngine(42)
		var log []Time
		for i := 0; i < 20; i++ {
			e.After(e.RNG().Jitter(10*Second), func() { log = append(log, e.Now()) })
		}
		if _, err := e.Run(); err != nil {
			t.Fatal(err)
		}
		return log
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("run lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("runs diverge at %d: %v vs %v", i, a[i], b[i])
		}
	}
}
