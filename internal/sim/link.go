package sim

import "fmt"

// Link models a shared communication medium (a NIC, a loopback
// interface, a disk, a switch backplane) with a fixed capacity in
// bytes per second shared equally among all in-flight transfers
// (processor sharing). Transfer blocks the calling process until its
// bytes have drained.
//
// Processor sharing is implemented exactly: whenever the set of active
// transfers changes, every transfer's remaining byte count is advanced
// by elapsed-time x fair-share, and the completion event is
// rescheduled for the new earliest finisher.
type Link struct {
	eng    *Engine
	name   string
	rate   float64 // bytes per second
	active []*transfer

	lastUpdate Time
	pending    *Timer

	// TotalBytes accumulates all bytes ever drained, for conservation
	// checks in tests.
	TotalBytes float64
}

type transfer struct {
	p         *Proc
	remaining float64
	done      bool
}

// NewLink creates a link on the engine with the given capacity in
// bytes per second.
func NewLink(eng *Engine, name string, bytesPerSec float64) *Link {
	if bytesPerSec <= 0 {
		panic(fmt.Sprintf("sim: link %q rate must be positive, got %g", name, bytesPerSec))
	}
	return &Link{eng: eng, name: name, rate: bytesPerSec}
}

// Name returns the link name.
func (l *Link) Name() string { return l.name }

// Rate returns the link capacity in bytes per second.
func (l *Link) Rate() float64 { return l.rate }

// Active returns the number of in-flight transfers.
func (l *Link) Active() int { return len(l.active) }

// Transfer moves size bytes across the link, blocking p until done.
// Zero-size transfers complete immediately.
func (l *Link) Transfer(p *Proc, size int64) {
	if size < 0 {
		panic(fmt.Sprintf("sim: link %q: negative transfer size %d", l.name, size))
	}
	if size == 0 {
		return
	}
	l.advance()
	t := &transfer{p: p, remaining: float64(size)}
	l.active = append(l.active, t)
	l.reschedule()
	p.park()
}

// TransferTime returns the time size bytes would take on an otherwise
// idle link, without performing the transfer.
func (l *Link) TransferTime(size int64) Time {
	return Seconds(float64(size) / l.rate)
}

// advance drains remaining byte counts for time elapsed since the last
// update, at the current fair share.
func (l *Link) advance() {
	now := l.eng.now
	dt := (now - l.lastUpdate).Seconds()
	l.lastUpdate = now
	if dt <= 0 || len(l.active) == 0 {
		return
	}
	share := l.rate / float64(len(l.active))
	drained := share * dt
	for _, t := range l.active {
		t.remaining -= drained
		l.TotalBytes += drained
		if t.remaining < 0 {
			// Completion events fire exactly at the scheduled instant;
			// any residue here is floating-point noise.
			l.TotalBytes += t.remaining
			t.remaining = 0
		}
	}
}

// reschedule cancels any pending completion event and schedules one
// for the transfer that will finish first under the current share.
func (l *Link) reschedule() {
	if l.pending != nil {
		l.pending.Stop()
		l.pending = nil
	}
	if len(l.active) == 0 {
		return
	}
	minRem := l.active[0].remaining
	for _, t := range l.active[1:] {
		if t.remaining < minRem {
			minRem = t.remaining
		}
	}
	share := l.rate / float64(len(l.active))
	dt := Seconds(minRem / share)
	if dt < 1 {
		// Never schedule a zero-delay completion: sub-nanosecond
		// remainders would otherwise re-fire at the same timestamp
		// forever.
		dt = 1
	}
	l.pending = l.eng.After(dt, l.complete)
}

// complete finishes every transfer whose remaining bytes have drained
// (within float tolerance), resumes their processes, and reschedules.
func (l *Link) complete() {
	l.pending = nil
	l.advance()
	// A remainder that would drain in ~1ns at full rate is rounding
	// noise, not real payload.
	eps := l.rate * 2e-9
	if eps < 1e-6 {
		eps = 1e-6
	}
	kept := l.active[:0]
	var finished []*transfer
	for _, t := range l.active {
		if t.remaining <= eps {
			l.TotalBytes += t.remaining
			t.remaining = 0
			t.done = true
			finished = append(finished, t)
		} else {
			kept = append(kept, t)
		}
	}
	l.active = kept
	l.reschedule()
	for _, t := range finished {
		t.p.resume()
	}
}
