package sim

import "fmt"

// Resource is a counted resource (CPU slots, DMA queue entries, map
// slots, ...) acquired and released by processes. Waiters are served
// FIFO; a waiter blocks until its full request can be granted, and
// waiters behind it are not allowed to jump the queue even if their
// smaller request would fit (no starvation).
type Resource struct {
	name     string
	capacity int
	inUse    int

	// waiting holds pending requests in arrival order.
	waiting []*resourceReq
}

type resourceReq struct {
	p *Proc
	n int
}

// NewResource creates a resource with the given capacity.
func NewResource(name string, capacity int) *Resource {
	if capacity <= 0 {
		panic(fmt.Sprintf("sim: resource %q capacity must be positive, got %d", name, capacity))
	}
	return &Resource{name: name, capacity: capacity}
}

// Name returns the resource's name.
func (r *Resource) Name() string { return r.name }

// Capacity returns the total capacity.
func (r *Resource) Capacity() int { return r.capacity }

// InUse returns the number of units currently held.
func (r *Resource) InUse() int { return r.inUse }

// Available returns the number of free units.
func (r *Resource) Available() int { return r.capacity - r.inUse }

// QueueLen returns the number of requests waiting.
func (r *Resource) QueueLen() int { return len(r.waiting) }

// Acquire blocks p until n units are granted.
func (r *Resource) Acquire(p *Proc, n int) {
	if n <= 0 || n > r.capacity {
		panic(fmt.Sprintf("sim: resource %q: acquire %d of capacity %d", r.name, n, r.capacity))
	}
	if len(r.waiting) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return
	}
	req := &resourceReq{p: p, n: n}
	r.waiting = append(r.waiting, req)
	p.park()
}

// TryAcquire grants n units if immediately available (and no earlier
// waiter is queued), reporting success. It never blocks.
func (r *Resource) TryAcquire(n int) bool {
	if n <= 0 || n > r.capacity {
		return false
	}
	if len(r.waiting) == 0 && r.inUse+n <= r.capacity {
		r.inUse += n
		return true
	}
	return false
}

// Release returns n units and hands them to queued waiters in FIFO
// order. Waiters are resumed via scheduled events at the current time.
func (r *Resource) Release(n int) {
	if n <= 0 || n > r.inUse {
		panic(fmt.Sprintf("sim: resource %q: release %d with %d in use", r.name, n, r.inUse))
	}
	r.inUse -= n
	r.grant()
}

// grant admits queued requests that now fit, preserving FIFO order.
func (r *Resource) grant() {
	for len(r.waiting) > 0 {
		req := r.waiting[0]
		if r.inUse+req.n > r.capacity {
			return
		}
		r.inUse += req.n
		copy(r.waiting, r.waiting[1:])
		r.waiting = r.waiting[:len(r.waiting)-1]
		p := req.p
		p.eng.At(p.eng.now, func() { p.resume() })
	}
}
