// Package simd models the Cell BE's 128-bit SIMD execution contract
// (paper §II-B): "vector operations that operate on memory contiguous
// data sets of 16 bytes ... the Cell architecture requires every
// vector operation to operate with aligned data to 16-byte memory
// boundaries".
//
// Operations work lane-wise on 16-byte vectors and *enforce* the
// alignment and length rules, so kernels written against this package
// carry the same structural constraints as real SPE SIMD code. (Go
// slices do not expose addresses portably; alignment here is the
// data-layout alignment — offsets within a kernel's buffer — which is
// the constraint SPE kernels actually program against, since local
// store allocations are 16-byte aligned by the allocator.)
package simd

import (
	"errors"
	"fmt"
)

// VectorBytes is the SIMD width: 16 bytes per vector register.
const VectorBytes = 16

// Alignment errors.
var (
	// ErrLength is returned when operand lengths differ or are not a
	// multiple of the vector width.
	ErrLength = errors.New("simd: operand length must be a multiple of 16 and equal across operands")
	// ErrAlignment is returned when an offset violates the 16-byte
	// alignment rule.
	ErrAlignment = errors.New("simd: offset not 16-byte aligned")
)

// CheckOffset validates the 16-byte alignment of a buffer offset.
func CheckOffset(off int) error {
	if off%VectorBytes != 0 {
		return fmt.Errorf("%w: offset %d", ErrAlignment, off)
	}
	return nil
}

func checkOperands(dst []byte, srcs ...[]byte) error {
	if len(dst)%VectorBytes != 0 {
		return fmt.Errorf("%w: dst %d", ErrLength, len(dst))
	}
	for _, s := range srcs {
		if len(s) != len(dst) {
			return fmt.Errorf("%w: dst %d vs src %d", ErrLength, len(dst), len(s))
		}
	}
	return nil
}

// XOR computes dst = a ^ b vector-wise. All operands must be the same
// multiple-of-16 length. dst may alias a or b.
func XOR(dst, a, b []byte) error {
	if err := checkOperands(dst, a, b); err != nil {
		return err
	}
	// Lane loop: each iteration is one 16-byte vector op.
	for v := 0; v < len(dst); v += VectorBytes {
		for i := 0; i < VectorBytes; i++ {
			dst[v+i] = a[v+i] ^ b[v+i]
		}
	}
	return nil
}

// AddSat computes dst = saturating-add(a, b) on unsigned byte lanes
// (the Cell's vec_adds family).
func AddSat(dst, a, b []byte) error {
	if err := checkOperands(dst, a, b); err != nil {
		return err
	}
	for v := 0; v < len(dst); v += VectorBytes {
		for i := 0; i < VectorBytes; i++ {
			s := uint16(a[v+i]) + uint16(b[v+i])
			if s > 255 {
				s = 255
			}
			dst[v+i] = byte(s)
		}
	}
	return nil
}

// Splat fills dst with a repeated byte (vec_splat).
func Splat(dst []byte, b byte) error {
	if len(dst)%VectorBytes != 0 {
		return fmt.Errorf("%w: dst %d", ErrLength, len(dst))
	}
	for i := range dst {
		dst[i] = b
	}
	return nil
}

// CmpEq writes 0xFF to each lane of dst where a == b and 0x00
// elsewhere (vec_cmpeq).
func CmpEq(dst, a, b []byte) error {
	if err := checkOperands(dst, a, b); err != nil {
		return err
	}
	for v := 0; v < len(dst); v += VectorBytes {
		for i := 0; i < VectorBytes; i++ {
			if a[v+i] == b[v+i] {
				dst[v+i] = 0xFF
			} else {
				dst[v+i] = 0
			}
		}
	}
	return nil
}

// Select computes dst = (mask & a) | (^mask & b) lane-wise (vec_sel).
func Select(dst, a, b, mask []byte) error {
	if err := checkOperands(dst, a, b, mask); err != nil {
		return err
	}
	for v := 0; v < len(dst); v += VectorBytes {
		for i := 0; i < VectorBytes; i++ {
			dst[v+i] = mask[v+i]&a[v+i] | ^mask[v+i]&b[v+i]
		}
	}
	return nil
}

// XORStream XORs a keystream into data in place using vector ops for
// the aligned body and a scalar loop for the unaligned head/tail —
// the standard structure of a Cell SIMD kernel. offset is data's
// position in the logical stream (the head is unaligned when offset
// is not a multiple of 16).
func XORStream(data, keystream []byte, offset int64) error {
	if len(data) != len(keystream) {
		return fmt.Errorf("%w: data %d vs keystream %d", ErrLength, len(data), len(keystream))
	}
	head := 0
	if mis := int(offset % VectorBytes); mis != 0 {
		head = VectorBytes - mis
		if head > len(data) {
			head = len(data)
		}
	}
	// Scalar head.
	for i := 0; i < head; i++ {
		data[i] ^= keystream[i]
	}
	body := (len(data) - head) / VectorBytes * VectorBytes
	if body > 0 {
		if err := XOR(data[head:head+body], data[head:head+body], keystream[head:head+body]); err != nil {
			return err
		}
	}
	// Scalar tail.
	for i := head + body; i < len(data); i++ {
		data[i] ^= keystream[i]
	}
	return nil
}
