package simd

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func vec(n int, f func(i int) byte) []byte {
	b := make([]byte, n)
	for i := range b {
		b[i] = f(i)
	}
	return b
}

func TestXOR(t *testing.T) {
	a := vec(32, func(i int) byte { return byte(i) })
	b := vec(32, func(i int) byte { return 0xFF })
	dst := make([]byte, 32)
	if err := XOR(dst, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		if dst[i] != byte(i)^0xFF {
			t.Fatalf("dst[%d] = %02x", i, dst[i])
		}
	}
	// Aliasing: dst == a.
	if err := XOR(a, a, b); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, dst) {
		t.Error("aliased XOR differs")
	}
}

func TestLengthRules(t *testing.T) {
	ops := map[string]func() error{
		"xor bad len":    func() error { return XOR(make([]byte, 15), make([]byte, 15), make([]byte, 15)) },
		"xor mismatch":   func() error { return XOR(make([]byte, 16), make([]byte, 32), make([]byte, 16)) },
		"addsat bad":     func() error { return AddSat(make([]byte, 17), make([]byte, 17), make([]byte, 17)) },
		"splat bad":      func() error { return Splat(make([]byte, 9), 1) },
		"cmpeq mismatch": func() error { return CmpEq(make([]byte, 16), make([]byte, 16), make([]byte, 48)) },
		"select bad":     func() error { return Select(make([]byte, 8), make([]byte, 8), make([]byte, 8), make([]byte, 8)) },
	}
	for name, fn := range ops {
		if err := fn(); !errors.Is(err, ErrLength) {
			t.Errorf("%s: got %v, want ErrLength", name, err)
		}
	}
}

func TestCheckOffset(t *testing.T) {
	if err := CheckOffset(0); err != nil {
		t.Error(err)
	}
	if err := CheckOffset(64); err != nil {
		t.Error(err)
	}
	if err := CheckOffset(8); !errors.Is(err, ErrAlignment) {
		t.Errorf("unaligned offset: %v", err)
	}
}

func TestAddSat(t *testing.T) {
	a := vec(16, func(i int) byte { return 200 })
	b := vec(16, func(i int) byte { return byte(i * 20) })
	dst := make([]byte, 16)
	if err := AddSat(dst, a, b); err != nil {
		t.Fatal(err)
	}
	for i := range dst {
		want := 200 + int(byte(i*20)) // operand lanes wrap at byte width
		if want > 255 {
			want = 255
		}
		if dst[i] != byte(want) {
			t.Errorf("dst[%d] = %d, want %d", i, dst[i], want)
		}
	}
}

func TestSplatCmpSelect(t *testing.T) {
	a := make([]byte, 16)
	if err := Splat(a, 0xAB); err != nil {
		t.Fatal(err)
	}
	b := vec(16, func(i int) byte {
		if i%2 == 0 {
			return 0xAB
		}
		return 0
	})
	mask := make([]byte, 16)
	if err := CmpEq(mask, a, b); err != nil {
		t.Fatal(err)
	}
	for i, m := range mask {
		want := byte(0)
		if i%2 == 0 {
			want = 0xFF
		}
		if m != want {
			t.Errorf("mask[%d] = %02x, want %02x", i, m, want)
		}
	}
	// Select a where mask, else b: even lanes from a (0xAB), odd from
	// b (0).
	dst := make([]byte, 16)
	if err := Select(dst, a, b, mask); err != nil {
		t.Fatal(err)
	}
	for i, v := range dst {
		want := byte(0)
		if i%2 == 0 {
			want = 0xAB
		}
		if v != want {
			t.Errorf("dst[%d] = %02x, want %02x", i, v, want)
		}
	}
}

// Property: XORStream equals a plain scalar XOR for any offset and
// length (head/tail splitting must not change semantics).
func TestXORStreamEqualsScalarProperty(t *testing.T) {
	f := func(data []byte, offRaw uint16) bool {
		off := int64(offRaw)
		ks := vec(len(data), func(i int) byte { return byte(i*7 + 3) })
		want := make([]byte, len(data))
		for i := range data {
			want[i] = data[i] ^ ks[i]
		}
		got := append([]byte(nil), data...)
		if err := XORStream(got, ks, off); err != nil {
			return false
		}
		return bytes.Equal(got, want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestXORStreamLengthMismatch(t *testing.T) {
	if err := XORStream(make([]byte, 4), make([]byte, 5), 0); !errors.Is(err, ErrLength) {
		t.Errorf("got %v, want ErrLength", err)
	}
}

// Property: XOR is an involution (applying twice restores the input).
func TestXORInvolutionProperty(t *testing.T) {
	f := func(seed uint8, nRaw uint8) bool {
		n := (int(nRaw)%8 + 1) * 16
		a := vec(n, func(i int) byte { return byte(i) * seed })
		key := vec(n, func(i int) byte { return byte(i) ^ seed })
		orig := append([]byte(nil), a...)
		if err := XOR(a, a, key); err != nil {
			return false
		}
		if err := XOR(a, a, key); err != nil {
			return false
		}
		return bytes.Equal(a, orig)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}
