// Package testutil holds shared test harness pieces. Its centerpiece
// is the goroutine-leak checker: a stdlib-only stand-in for
// go.uber.org/goleak that a test package adopts with one TestMain
// line, proving at exit that every readLoop, heartbeat loop and
// tracker goroutine the tests started has terminated.
package testutil

import (
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"
	"time"
)

// leakWait bounds how long VerifyTestMain waits for goroutines wound
// down by deferred cleanup (connection readLoops draining, trackers
// stopping) to actually exit before declaring them leaked.
const leakWait = 10 * time.Second

// leakPoll is the interval between goroutine-dump snapshots while
// waiting.
const leakPoll = 50 * time.Millisecond

// defaultIgnores are substrings of goroutine stacks that never count
// as leaks: the test framework itself, signal handling, and the
// checker's own goroutine.
var defaultIgnores = []string{
	"testing.Main(",
	"testing.(*M).",
	"testing.tRunner(",
	"testing.runFuzzing(",
	"testing.runFuzzTests(",
	"os/signal.signal_recv",
	"os/signal.loop",
	"runtime.ensureSigM",
	"runtime.runfinq",
	"runtime.bgsweep",
	"runtime.bgscavenge",
	"runtime.forcegchelper",
	"testutil.VerifyTestMain",
	"testutil.leakedGoroutines",
}

// LeakOption tunes VerifyTestMain.
type LeakOption func(*leakConfig)

type leakConfig struct {
	ignores []string
}

// WithIgnored exempts goroutines whose stack contains any of the given
// substrings — for pools or daemons a package deliberately leaves
// running process-wide.
func WithIgnored(substrs ...string) LeakOption {
	return func(c *leakConfig) {
		c.ignores = append(c.ignores, substrs...)
	}
}

// VerifyTestMain runs the package's tests and then verifies that no
// non-allowlisted goroutines survive. Use it as the whole TestMain:
//
//	func TestMain(m *testing.M) { testutil.VerifyTestMain(m) }
//
// On leaks it prints each surviving goroutine's stack and exits
// non-zero. When the tests themselves failed, their exit code is
// passed through and the leak check is skipped — goroutines stranded
// mid-failure would only bury the real report.
func VerifyTestMain(m *testing.M, opts ...LeakOption) {
	cfg := &leakConfig{ignores: defaultIgnores}
	for _, opt := range opts {
		opt(cfg)
	}
	code := m.Run()
	if code != 0 {
		os.Exit(code)
	}
	deadline := time.Now().Add(leakWait)
	var leaked []string
	for {
		leaked = leakedGoroutines(cfg.ignores)
		if len(leaked) == 0 {
			os.Exit(code)
		}
		if time.Now().After(deadline) {
			break
		}
		time.Sleep(leakPoll)
	}
	fmt.Fprintf(os.Stderr, "testutil: %d goroutine(s) leaked after %v:\n\n", len(leaked), leakWait)
	for _, g := range leaked {
		fmt.Fprintf(os.Stderr, "%s\n\n", g)
	}
	os.Exit(1)
}

// leakedGoroutines snapshots every goroutine and returns the stacks
// that match none of the ignore substrings.
func leakedGoroutines(ignores []string) []string {
	buf := make([]byte, 1<<20)
	for {
		n := runtime.Stack(buf, true)
		if n < len(buf) {
			buf = buf[:n]
			break
		}
		buf = make([]byte, len(buf)*2)
	}
	var leaked []string
	for _, g := range strings.Split(string(buf), "\n\n") {
		if g == "" {
			continue
		}
		ignored := false
		for _, substr := range ignores {
			if strings.Contains(g, substr) {
				ignored = true
				break
			}
		}
		if !ignored {
			leaked = append(leaked, strings.TrimSpace(g))
		}
	}
	return leaked
}
