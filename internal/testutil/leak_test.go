package testutil

import (
	"strings"
	"testing"
	"time"
)

// TestLeakedGoroutinesDetects proves the checker sees a deliberately
// stranded goroutine and that the goroutine disappears from the report
// once released.
func TestLeakedGoroutinesDetects(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	go func() {
		close(started)
		<-release
	}()
	<-started

	found := false
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		for _, g := range leakedGoroutines(defaultIgnores) {
			if strings.Contains(g, "TestLeakedGoroutinesDetects") {
				found = true
			}
		}
		if found {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if !found {
		t.Fatal("stranded goroutine not reported by leakedGoroutines")
	}

	close(release)
	for time.Now().Before(deadline) {
		still := false
		for _, g := range leakedGoroutines(defaultIgnores) {
			if strings.Contains(g, "TestLeakedGoroutinesDetects") {
				still = true
			}
		}
		if !still {
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("released goroutine still reported after 5s")
}

// TestLeakedGoroutinesIgnores proves extra ignore substrings exempt a
// matching goroutine.
func TestLeakedGoroutinesIgnores(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{})
	go sentinelDaemon(started, release)
	<-started
	defer close(release)

	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		seen := false
		for _, g := range leakedGoroutines(defaultIgnores) {
			if strings.Contains(g, "sentinelDaemon") {
				seen = true
			}
		}
		if seen {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}

	ignores := append(append([]string(nil), defaultIgnores...), "sentinelDaemon")
	for _, g := range leakedGoroutines(ignores) {
		if strings.Contains(g, "sentinelDaemon") {
			t.Fatal("ignored goroutine still reported")
		}
	}
}

func sentinelDaemon(started, release chan struct{}) {
	close(started)
	<-release
}

// TestMain dogfoods the checker on its own package.
func TestMain(m *testing.M) {
	VerifyTestMain(m)
}
