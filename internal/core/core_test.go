package core

import (
	"errors"
	"testing"

	"hetmr/internal/hadoop"
	"hetmr/internal/hdfs"
	"hetmr/internal/perfmodel"
)

func TestNewLiveClusterValidation(t *testing.T) {
	if _, err := NewLiveCluster(0); err == nil {
		t.Error("zero nodes should fail")
	}
	c, err := NewLiveCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Nodes) != 3 || c.MappersPerNode != perfmodel.MapSlotsPerNode {
		t.Error("defaults wrong")
	}
	if c.AcceleratedCount() != 3 {
		t.Errorf("accelerated = %d, want 3 (default all)", c.AcceleratedCount())
	}
	if c.FS.BlockSize() != perfmodel.HDFSBlockBytes {
		t.Error("default block size should be 64MB")
	}
}

func TestLiveClusterOptions(t *testing.T) {
	c, err := NewLiveCluster(4,
		WithBlockSize(1024),
		WithReplication(2),
		WithMappersPerNode(3),
		WithAcceleratedNodes(2),
		WithSPEBlockBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	if c.FS.BlockSize() != 1024 || c.FS.Replication() != 2 {
		t.Error("fs options not applied")
	}
	if c.MappersPerNode != 3 {
		t.Error("mappers option not applied")
	}
	if c.AcceleratedCount() != 2 {
		t.Errorf("accelerated = %d, want 2", c.AcceleratedCount())
	}
	if c.Nodes[0].Accel == nil || c.Nodes[3].Accel != nil {
		t.Error("acceleration assignment wrong")
	}
	if c.Nodes[0].Accel.BlockBytes() != 512 {
		t.Error("SPE block size not applied")
	}
}

func TestSplitsFromFile(t *testing.T) {
	nn, _ := hdfs.NewNameNode(100, 1)
	nn.RegisterDataNode("node000")
	nn.RegisterDataNode("node001")
	if err := nn.CreateSynthetic("/in", 1000); err != nil {
		t.Fatal(err)
	}
	splits, err := SplitsFromFile(nn, "/in", 4, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 4 {
		t.Fatalf("got %d splits, want 4", len(splits))
	}
	var total int64
	for i, s := range splits {
		if s.Index != i {
			t.Errorf("split %d has index %d", i, s.Index)
		}
		if len(s.PreferredHosts) == 0 {
			t.Errorf("split %d has no preferred hosts", i)
		}
		for _, r := range s.Records {
			total += r.Bytes
			if len(r.Hosts) == 0 {
				t.Errorf("record in split %d has no hosts", i)
			}
		}
	}
	if total != 1000 {
		t.Errorf("records total %d bytes, want 1000", total)
	}
}

func TestSplitsFromFileUnevenAndErrors(t *testing.T) {
	nn, _ := hdfs.NewNameNode(64, 1)
	nn.RegisterDataNode("node000")
	nn.CreateSynthetic("/odd", 250)
	splits, err := SplitsFromFile(nn, "/odd", 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	var total int64
	for _, s := range splits {
		total += s.InputBytes()
	}
	if total != 250 {
		t.Errorf("total = %d, want 250", total)
	}

	if _, err := SplitsFromFile(nn, "/missing", 2, 64); !errors.Is(err, ErrNoInput) {
		t.Errorf("missing input: %v", err)
	}
	if _, err := SplitsFromFile(nn, "/odd", 0, 64); err == nil {
		t.Error("zero splits should fail")
	}
	if _, err := SplitsFromFile(nn, "/odd", 2, 0); err == nil {
		t.Error("zero record size should fail")
	}
	nn.CreateSynthetic("/empty", 0)
	if _, err := SplitsFromFile(nn, "/empty", 2, 64); err == nil {
		t.Error("empty input should fail")
	}
}

func TestSplitsMoreThanBytes(t *testing.T) {
	// More splits than records: must truncate, not emit empty splits.
	nn, _ := hdfs.NewNameNode(10, 1)
	nn.RegisterDataNode("node000")
	nn.CreateSynthetic("/tiny", 25)
	splits, err := SplitsFromFile(nn, "/tiny", 50, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range splits {
		if len(s.Records) == 0 {
			t.Error("empty split emitted")
		}
	}
	job := &hadoop.Job{Name: "t", Splits: splits,
		MapperFor: hadoop.StaticMapperFor(hadoop.EmptyMapper{})}
	if err := job.Validate(); err != nil {
		t.Errorf("splits do not validate: %v", err)
	}
}

func TestPiSplits(t *testing.T) {
	splits, err := PiSplits(100, 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(splits) != 8 {
		t.Fatalf("got %d splits", len(splits))
	}
	var total int64
	for i, s := range splits {
		if s.Index != i || s.Samples <= 0 {
			t.Errorf("split %d bad: %+v", i, s)
		}
		total += s.Samples
	}
	if total != 100 {
		t.Errorf("samples total %d, want 100", total)
	}
	// Remainder distribution.
	splits, _ = PiSplits(10, 3)
	want := []int64{4, 3, 3}
	for i, s := range splits {
		if s.Samples != want[i] {
			t.Errorf("split %d samples %d, want %d", i, s.Samples, want[i])
		}
	}
	if _, err := PiSplits(0, 3); err == nil {
		t.Error("zero samples should fail")
	}
	if _, err := PiSplits(10, 0); err == nil {
		t.Error("zero maps should fail")
	}
	// Fewer samples than maps: everyone still samples at least once.
	splits, _ = PiSplits(2, 5)
	for _, s := range splits {
		if s.Samples < 1 {
			t.Error("map with zero samples")
		}
	}
}

func TestTopHostsDeterministic(t *testing.T) {
	votes := map[string]int{"c": 2, "a": 2, "b": 5}
	got := topHosts(votes, 2)
	if len(got) != 2 || got[0] != "b" || got[1] != "a" {
		t.Errorf("topHosts = %v, want [b a]", got)
	}
	if got := topHosts(map[string]int{}, 2); len(got) != 0 {
		t.Errorf("empty votes gave %v", got)
	}
}
