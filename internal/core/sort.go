package core

import (
	"fmt"

	"hetmr/internal/kernels"
)

// Distributed TeraSort-style sort on the live runner: each input block
// is sorted on the node that stores it (map phase), and the sorted
// runs are merged into the output file (reduce-side merge). The paper
// uses the Terasort contest (§IV-A) to argue mappers are record-
// delivery-bound; this job is the workload behind that argument.

// RunSort sorts a stored file of 100-byte TeraSort records into
// output. The DFS block size must be a multiple of the record size so
// records never straddle blocks.
func (c *LiveCluster) RunSort(input, output string) error {
	if output == "" {
		return fmt.Errorf("core: sort needs an output path")
	}
	if c.FS.BlockSize()%kernels.SortRecordBytes != 0 {
		return fmt.Errorf("core: block size %d is not a multiple of the %d-byte record",
			c.FS.BlockSize(), kernels.SortRecordBytes)
	}
	work, err := c.planBlocks(input)
	if err != nil {
		return err
	}
	// Map phase: sort each block where it lives (or wherever the
	// scheduler migrates it — a sorted run depends only on the block).
	results, err := c.runBlocks(work, func(w blockWork, _ *LiveNode, data []byte) (any, error) {
		run := append([]byte(nil), data...)
		if err := kernels.SortRecords(run); err != nil {
			return nil, fmt.Errorf("core: sort block %d: %w", w.index, err)
		}
		return run, nil
	}, nil)
	if err != nil {
		return err
	}
	runs := make([][]byte, len(work))
	for i, res := range results {
		runs[work[i].index] = res.([]byte)
	}
	// Reduce phase: merge the sorted runs.
	merged, err := kernels.MergeSortedRuns(runs)
	if err != nil {
		return err
	}
	return c.FS.WriteFile(output, merged, "")
}
