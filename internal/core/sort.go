package core

import (
	"fmt"
	"io"
	"sync"

	"hetmr/internal/kernels"
)

// Distributed TeraSort-style sort on the live runner: each input block
// is sorted on the node that stores it (map phase), the sorted runs
// land in a spill-bounded run store, and an external k-way merge
// streams them into the output file (reduce-side merge). The paper
// uses the Terasort contest (§IV-A) to argue mappers are record-
// delivery-bound; this job is the workload behind that argument. With
// the cluster built WithSpill, the whole sort — input blocks, runs,
// merge, output — runs in O(blockSize × mappers) memory, so datasets
// far larger than RAM sort through the disk.

// RunSort sorts a stored file of 100-byte TeraSort records into
// output. The DFS block size must be a multiple of the record size so
// records never straddle blocks.
func (c *LiveCluster) RunSort(input, output string) error {
	if output == "" {
		return fmt.Errorf("core: sort needs an output path")
	}
	if c.FS.BlockSize()%kernels.SortRecordBytes != 0 {
		return fmt.Errorf("core: block size %d is not a multiple of the %d-byte record",
			c.FS.BlockSize(), kernels.SortRecordBytes)
	}
	work, err := c.planBlocks(input)
	if err != nil {
		return err
	}
	// Map phase: sort each block where it lives (or wherever the
	// scheduler migrates it — a sorted run depends only on the block).
	// The commit hook spills each winning run to the run store, so no
	// resident slice ever holds every run at once.
	runStore := c.newRunStore()
	defer runStore.Close()
	var commitErrMu sync.Mutex
	var commitErr error
	_, err = c.runBlocks(work, func(w blockWork, _ *LiveNode, data []byte) (any, error) {
		run := append([]byte(nil), data...)
		if err := kernels.SortRecords(run); err != nil {
			return nil, fmt.Errorf("core: sort block %d: %w", w.index, err)
		}
		return run, nil
	}, func(task int, result any) {
		if err := runStore.Put(runKey(work[task].index), result.([]byte)); err != nil {
			commitErrMu.Lock()
			if commitErr == nil {
				commitErr = err
			}
			commitErrMu.Unlock()
		}
	})
	if err != nil {
		return err
	}
	if commitErr != nil {
		return fmt.Errorf("core: sort %q: %w", input, commitErr)
	}
	// Reduce phase: external k-way merge over the spilled runs,
	// streamed straight into the output file.
	readers := make([]io.Reader, len(work))
	for i := range work {
		rc, err := runStore.Open(runKey(work[i].index))
		if err != nil {
			return err
		}
		defer rc.Close()
		readers[i] = rc
	}
	wtr, err := c.FS.Create(output, "")
	if err != nil {
		return err
	}
	if _, err := kernels.MergeSortedStreams(wtr, readers...); err != nil {
		return err
	}
	return wtr.Close()
}
