// Package core implements the paper's primary contribution: a
// MapReduce execution environment that exploits both levels of
// parallelism in a heterogeneous cluster — distribution of splits
// across nodes (level 1, Hadoop-style) and offload of each mapper's
// records onto the node's Cell BE SPEs in 4 KB blocks (level 2).
//
// Two runners share the same job definitions:
//
//   - LiveCluster executes jobs for real: goroutine-backed nodes, real
//     bytes in the in-memory HDFS, real kernels on the functional Cell
//     model. It is what the examples and correctness tests use.
//   - The simulated runner (internal/hadoop on internal/sim) replays
//     the same architecture against the calibrated performance model
//     at the paper's 66-blade scale; package core provides the bridge
//     that turns stored HDFS files into hadoop splits with locality
//     metadata.
package core

import (
	"errors"
	"fmt"
	"time"

	"hetmr/internal/cellbe"
	"hetmr/internal/hadoop"
	"hetmr/internal/hdfs"
	"hetmr/internal/kernels"
	"hetmr/internal/perfmodel"
	"hetmr/internal/sched"
	"hetmr/internal/spill"
	"hetmr/internal/spurt"
	"hetmr/internal/topo"
)

// LiveNode is one worker of the live (functional) cluster: a name the
// DFS knows it by, plus a QS22-like blade whose first Cell chip backs
// the node's accelerator runtime.
type LiveNode struct {
	Name  string
	Blade *cellbe.Blade
	// Accel is the node's direct SPE offload runtime (nil on
	// non-accelerated nodes of a heterogeneous cluster).
	Accel *spurt.Runtime
}

// LiveCluster is the functional two-level runtime.
type LiveCluster struct {
	FS    *hdfs.NameNode
	Nodes []*LiveNode
	// MappersPerNode is the number of concurrent mappers per node
	// (the paper runs 2, one per Cell processor).
	MappersPerNode int
	// Sched configures the dynamic scheduler every job runs under
	// (speculation, attempt caps). The zero value is plain work
	// stealing.
	Sched sched.Options

	speeds    []float64
	delays    []time.Duration
	lastStats *sched.Stats

	// Spill configuration: run stores (sorted runs, transformed
	// stream blocks) inherit the cluster's watermark so every stage
	// of a job is bounded by the same knob. spillMem < 0 means
	// unbounded memory (no spilling anywhere).
	spillDir   string
	spillMem   int64
	spillCodec spill.Codec
}

// LiveOption customizes NewLiveCluster.
type LiveOption func(*liveConfig)

type liveConfig struct {
	blockSize      int64
	replication    int
	mappersPerNode int
	acceleratedN   int // -1: all
	speBlock       int
	sched          sched.Options
	speeds         []float64
	delays         []time.Duration
	spillDir       string
	spillMem       int64 // < 0: unbounded memory, no spilling
	spillCodec     spill.Codec
	racks          int
}

// WithBlockSize sets the DFS block size (default 64 MB).
func WithBlockSize(n int64) LiveOption { return func(c *liveConfig) { c.blockSize = n } }

// WithReplication sets the DFS replication factor (default 1, as in
// the paper).
func WithReplication(r int) LiveOption { return func(c *liveConfig) { c.replication = r } }

// WithMappersPerNode sets concurrent mappers per node (default 2).
func WithMappersPerNode(m int) LiveOption { return func(c *liveConfig) { c.mappersPerNode = m } }

// WithAcceleratedNodes limits how many nodes get accelerators
// (heterogeneous cluster extension; default all).
func WithAcceleratedNodes(n int) LiveOption { return func(c *liveConfig) { c.acceleratedN = n } }

// WithSPEBlockBytes sets the accelerator block size (default 4 KB as
// in the paper's distributed experiments).
func WithSPEBlockBytes(b int) LiveOption { return func(c *liveConfig) { c.speBlock = b } }

// WithRacks spreads the nodes round-robin over n named racks
// (topo.RackName); the DFS then spreads block replicas across racks on
// write and repair. n < 2 keeps the flat default topology.
func WithRacks(n int) LiveOption { return func(c *liveConfig) { c.racks = n } }

// WithScheduling configures the dynamic scheduler (speculative
// execution, per-task attempt caps) for every job the cluster runs.
// The OnCommit hook is owned by the runtime — each job installs its
// own result-commit step — so a caller-supplied hook is ignored.
func WithScheduling(o sched.Options) LiveOption {
	return func(c *liveConfig) {
		o.OnCommit = nil
		c.sched = o
	}
}

// WithSpeedHints declares per-node relative throughput (len must equal
// the node count; all values positive). The scheduler seeds its
// initial task distribution proportionally — mirroring perfmodel's
// Power6/PPE/SPE ratios on a heterogeneous cluster — and work stealing
// corrects any hint error at run time. Nil means equal speeds.
func WithSpeedHints(speeds []float64) LiveOption {
	return func(c *liveConfig) { c.speeds = speeds }
}

// WithTaskDelays injects a fixed artificial delay into every task a
// node executes (len must equal the node count). It is the
// straggler/fault-injection knob: conformance tests and benchmarks use
// it to make one node an order of magnitude slower than its peers.
func WithTaskDelays(delays []time.Duration) LiveOption {
	return func(c *liveConfig) { c.delays = delays }
}

// WithSpill bounds the cluster's resident data-plane memory: the DFS
// block store and every job's run store keep payloads in memory up to
// memBytes each and spill the rest to files under dir ("" selects the
// OS temp dir), through codec when non-nil. memBytes zero spills
// everything; a negative value restores the historical all-in-memory
// behaviour. With spilling on, a job's peak heap is O(blockSize ×
// concurrent mappers) regardless of input size.
func WithSpill(dir string, memBytes int64, codec spill.Codec) LiveOption {
	return func(c *liveConfig) {
		c.spillDir = dir
		c.spillMem = memBytes
		c.spillCodec = codec
	}
}

// NewLiveCluster builds a functional cluster of n nodes.
func NewLiveCluster(n int, opts ...LiveOption) (*LiveCluster, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: cluster needs at least one node, got %d", n)
	}
	cfg := liveConfig{
		blockSize:      perfmodel.HDFSBlockBytes,
		replication:    perfmodel.ReplicationFactor,
		mappersPerNode: perfmodel.MapSlotsPerNode,
		acceleratedN:   -1,
		speBlock:       perfmodel.SPEBlockBytes,
		spillMem:       -1,
	}
	for _, o := range opts {
		o(&cfg)
	}
	if cfg.speeds != nil {
		if len(cfg.speeds) != n {
			return nil, fmt.Errorf("core: %d speed hints for %d nodes", len(cfg.speeds), n)
		}
		for i, s := range cfg.speeds {
			if s <= 0 {
				return nil, fmt.Errorf("core: node %d has non-positive speed hint %g", i, s)
			}
		}
	}
	if cfg.delays != nil {
		if len(cfg.delays) != n {
			return nil, fmt.Errorf("core: %d task delays for %d nodes", len(cfg.delays), n)
		}
		for i, d := range cfg.delays {
			if d < 0 {
				return nil, fmt.Errorf("core: node %d has negative task delay %v", i, d)
			}
		}
	}
	var fsOpts []hdfs.Option
	if cfg.spillMem >= 0 {
		fsOpts = append(fsOpts, hdfs.WithBlockStore(
			hdfs.NewSpillBlockStore(cfg.spillDir, cfg.spillMem, cfg.spillCodec)))
	}
	nn, err := hdfs.NewNameNode(cfg.blockSize, cfg.replication, fsOpts...)
	if err != nil {
		return nil, err
	}
	c := &LiveCluster{
		FS:             nn,
		MappersPerNode: cfg.mappersPerNode,
		Sched:          cfg.sched,
		speeds:         cfg.speeds,
		delays:         cfg.delays,
		spillDir:       cfg.spillDir,
		spillMem:       cfg.spillMem,
		spillCodec:     cfg.spillCodec,
	}
	accelerated := cfg.acceleratedN
	if accelerated < 0 {
		accelerated = n
	}
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("node%03d", i)
		rack := topo.DefaultRack
		if cfg.racks >= 2 {
			rack = topo.RackName(i % cfg.racks)
		}
		if _, err := nn.RegisterDataNodeAt(name, rack); err != nil {
			return nil, err
		}
		node := &LiveNode{Name: name, Blade: cellbe.NewBlade()}
		if i < accelerated {
			rt, err := spurt.New(node.Blade.Chips[0], perfmodel.SPEsPerCell, cfg.speBlock)
			if err != nil {
				return nil, err
			}
			node.Accel = rt
		}
		c.Nodes = append(c.Nodes, node)
	}
	return c, nil
}

// Close releases the DFS block store (spill files, when the cluster
// was built WithSpill). Idempotent; the cluster is unusable after.
func (c *LiveCluster) Close() error { return c.FS.Close() }

// newRunStore builds a per-job payload store (sorted runs, stream
// output blocks) under the cluster's spill configuration (negative
// watermark: all in memory).
func (c *LiveCluster) newRunStore() *spill.Store {
	return spill.NewStore(c.spillDir, c.spillMem, c.spillCodec)
}

// AcceleratedCount reports how many nodes carry accelerators.
func (c *LiveCluster) AcceleratedCount() int {
	n := 0
	for _, node := range c.Nodes {
		if node.Accel != nil {
			n++
		}
	}
	return n
}

// LastStats returns the dynamic scheduler's per-worker stats for the
// most recently finished job (nil before the first run). The cluster
// is not goroutine-safe; read between jobs.
func (c *LiveCluster) LastStats() *sched.Stats { return c.lastStats }

// nodeByName finds a live node.
func (c *LiveCluster) nodeByName(name string) (*LiveNode, bool) {
	for _, n := range c.Nodes {
		if n.Name == name {
			return n, true
		}
	}
	return nil, false
}

// ErrNoInput is returned when a job's input file does not exist.
var ErrNoInput = errors.New("core: job input file not found")

// SplitsFromFile converts a stored file's block layout into hadoop
// splits for the simulated runner: numSplits splits of consecutive
// records of recordBytes each, with record hosts and per-split
// preferred hosts taken from the DFS block locations — exactly the
// paper's partitioning ("an split size of FileSize/NumMappers and a
// record size of 64MB", Fig. 3).
func SplitsFromFile(nn *hdfs.NameNode, name string, numSplits int, recordBytes int64) ([]hadoop.Split, error) {
	if numSplits <= 0 {
		return nil, fmt.Errorf("core: numSplits must be positive, got %d", numSplits)
	}
	if recordBytes <= 0 {
		return nil, fmt.Errorf("core: recordBytes must be positive, got %d", recordBytes)
	}
	locs, err := nn.Locations(name)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoInput, err)
	}
	size, err := nn.FileSize(name)
	if err != nil {
		return nil, err
	}
	if size == 0 {
		return nil, fmt.Errorf("core: input file %q is empty", name)
	}
	// hostAt returns the replica hosts of the block containing offset.
	hostAt := func(off int64) []string {
		for _, l := range locs {
			if off >= l.Offset && off < l.Offset+l.Size {
				return l.Hosts
			}
		}
		return nil
	}
	splitBytes := (size + int64(numSplits) - 1) / int64(numSplits)
	var splits []hadoop.Split
	for i := 0; i < numSplits; i++ {
		start := int64(i) * splitBytes
		end := start + splitBytes
		if end > size {
			end = size
		}
		if start >= end {
			break
		}
		var records []hadoop.Record
		hostVotes := make(map[string]int)
		for off := start; off < end; off += recordBytes {
			n := recordBytes
			if off+n > end {
				n = end - off
			}
			hosts := hostAt(off)
			records = append(records, hadoop.Record{Bytes: n, Hosts: hosts})
			for _, h := range hosts {
				hostVotes[h]++
			}
		}
		splits = append(splits, hadoop.Split{
			Index:          i,
			Records:        records,
			PreferredHosts: topHosts(hostVotes, 2),
		})
	}
	// Re-index after possible truncation.
	for i := range splits {
		splits[i].Index = i
	}
	return splits, nil
}

// topHosts returns the up-to-k most frequent hosts, ties broken by
// name for determinism.
func topHosts(votes map[string]int, k int) []string {
	type hv struct {
		host string
		n    int
	}
	var all []hv
	for h, n := range votes {
		all = append(all, hv{h, n})
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			if all[j].n > all[i].n || (all[j].n == all[i].n && all[j].host < all[i].host) {
				all[i], all[j] = all[j], all[i]
			}
		}
	}
	if len(all) > k {
		all = all[:k]
	}
	var out []string
	for _, e := range all {
		out = append(out, e.host)
	}
	return out
}

// PiSplits builds the CPU-intensive job's splits: totalSamples spread
// over numMaps map tasks (the Hadoop PiEstimator layout the paper
// ported). The per-task sample counts come from the canonical
// decomposition (kernels.SplitSamples) so simulated task sizing always
// matches what the functional runners execute.
func PiSplits(totalSamples int64, numMaps int) ([]hadoop.Split, error) {
	if totalSamples <= 0 || numMaps <= 0 {
		return nil, fmt.Errorf("core: need positive samples (%d) and maps (%d)", totalSamples, numMaps)
	}
	splits := make([]hadoop.Split, numMaps)
	for i, task := range kernels.SplitSamples(totalSamples, numMaps, 0) {
		splits[i] = hadoop.Split{Index: i, Samples: task.Samples}
	}
	return splits, nil
}
