package core

import (
	"bytes"
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"
	"testing"
	"testing/quick"

	"hetmr/internal/kernels"
	"hetmr/internal/spurt"
)

// textCluster stores text across a small cluster with small blocks so
// jobs span many blocks and nodes.
func textCluster(t *testing.T, text string) *LiveCluster {
	t.Helper()
	c, err := NewLiveCluster(3, WithBlockSize(64), WithSPEBlockBytes(512))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FS.WriteFile("/input.txt", []byte(text), ""); err != nil {
		t.Fatal(err)
	}
	return c
}

// wordCountJob is the canonical KV job used in several tests.
func wordCountJob() *KVJob {
	return &KVJob{
		Name:  "wordcount",
		Input: "/input.txt",
		Map: func(record []byte, _ int64, emit func(k, v string)) error {
			kernels.Words(record, func(w []byte) { emit(string(w), "1") })
			return nil
		},
		Reduce: func(_ string, values []string) (string, error) {
			total := 0
			for _, v := range values {
				n, err := strconv.Atoi(v)
				if err != nil {
					return "", err
				}
				total += n
			}
			return strconv.Itoa(total), nil
		},
	}
}

func TestRunKVWordCount(t *testing.T) {
	// Words are whole multiples of the 64-byte block? No — blocks cut
	// words arbitrarily; use 8-byte words aligned to make per-block
	// counting exact (8 chars: "worddd \n"). Instead use text whose
	// words never span block boundaries: 4-byte words, 64-byte blocks.
	var sb strings.Builder
	for i := 0; i < 160; i++ {
		sb.WriteString(fmt.Sprintf("w%02d ", i%5)) // "w00 ".."w04 ", 4 bytes each
	}
	c := textCluster(t, sb.String())
	res, err := c.RunKV(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 5 {
		t.Fatalf("got %d keys: %v", len(res), res)
	}
	for _, kv := range res {
		if kv.Value != "32" {
			t.Errorf("count[%s] = %s, want 32", kv.Key, kv.Value)
		}
	}
	// Results must be sorted by key.
	for i := 1; i < len(res); i++ {
		if res[i-1].Key >= res[i].Key {
			t.Error("results not sorted")
		}
	}
}

func TestRunKVValidation(t *testing.T) {
	c := textCluster(t, "hello world")
	if _, err := c.RunKV(&KVJob{Name: "nil", Input: "/input.txt"}); err == nil {
		t.Error("nil map/reduce should fail")
	}
	job := wordCountJob()
	job.Input = "/missing"
	if _, err := c.RunKV(job); !errors.Is(err, ErrNoInput) {
		t.Errorf("missing input: %v", err)
	}
}

func TestRunKVMapErrorPropagates(t *testing.T) {
	c := textCluster(t, strings.Repeat("x ", 100))
	boom := errors.New("map exploded")
	job := &KVJob{
		Name:  "boom",
		Input: "/input.txt",
		Map: func([]byte, int64, func(string, string)) error {
			return boom
		},
		Reduce: func(string, []string) (string, error) { return "", nil },
	}
	if _, err := c.RunKV(job); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestRunKVReduceErrorPropagates(t *testing.T) {
	c := textCluster(t, "a b c")
	boom := errors.New("reduce exploded")
	job := wordCountJob()
	job.Reduce = func(string, []string) (string, error) { return "", boom }
	if _, err := c.RunKV(job); !errors.Is(err, boom) {
		t.Errorf("err = %v", err)
	}
}

func TestRunStreamEncryptionBothPathsMatch(t *testing.T) {
	cipher, err := kernels.NewCipher([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	iv := []byte("fedcba9876543210")
	plain := make([]byte, 100000)
	for i := range plain {
		plain[i] = byte(i * 7)
	}

	c, err := NewLiveCluster(3, WithBlockSize(4096))
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FS.WriteFile("/plain", plain, ""); err != nil {
		t.Fatal(err)
	}
	kern := spurt.KernelFunc{KernelName: "aes-ctr", Fn: kernels.CTRBlockFunc(cipher, iv)}

	n, err := c.RunStream(&StreamJob{
		Name: "enc-cell", Input: "/plain", Output: "/enc-cell",
		Kernel: kern, Accelerated: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(plain)) {
		t.Errorf("processed %d bytes, want %d", n, len(plain))
	}
	if _, err := c.RunStream(&StreamJob{
		Name: "enc-java", Input: "/plain", Output: "/enc-java",
		Kernel: kern, Accelerated: false,
	}); err != nil {
		t.Fatal(err)
	}

	cell, err := c.FS.ReadFile("/enc-cell")
	if err != nil {
		t.Fatal(err)
	}
	java, err := c.FS.ReadFile("/enc-java")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(cell, java) {
		t.Fatal("accelerated and host paths disagree")
	}
	// And both must equal the single sequential reference encryption.
	want := make([]byte, len(plain))
	kernels.CTRStream(cipher, iv, 0, want, plain)
	if !bytes.Equal(cell, want) {
		t.Fatal("distributed encryption differs from sequential reference")
	}
	// CTR decrypts itself: run the stream again over the ciphertext.
	if _, err := c.RunStream(&StreamJob{
		Name: "dec", Input: "/enc-cell", Output: "/dec",
		Kernel: kern, Accelerated: true,
	}); err != nil {
		t.Fatal(err)
	}
	dec, _ := c.FS.ReadFile("/dec")
	if !bytes.Equal(dec, plain) {
		t.Fatal("decryption did not restore the plaintext")
	}
}

func TestRunStreamValidation(t *testing.T) {
	c, _ := NewLiveCluster(1, WithBlockSize(1024))
	c.FS.WriteFile("/x", []byte("data"), "")
	if _, err := c.RunStream(&StreamJob{Name: "k", Input: "/x", Output: "/y"}); err == nil {
		t.Error("nil kernel should fail")
	}
	kern := spurt.KernelFunc{KernelName: "id", Fn: func([]byte, int64) error { return nil }}
	if _, err := c.RunStream(&StreamJob{Name: "k", Input: "/x", Kernel: kern}); err == nil {
		t.Error("empty output should fail")
	}
	if _, err := c.RunStream(&StreamJob{Name: "k", Input: "/nope", Output: "/y", Kernel: kern}); err == nil {
		t.Error("missing input should fail")
	}
}

func TestRunStreamHeterogeneousFallback(t *testing.T) {
	// Only 1 of 2 nodes accelerated: blocks on the plain node use the
	// host path transparently; output must still be correct.
	cipher, _ := kernels.NewCipher([]byte("abcdefgh12345678"))
	iv := make([]byte, 16)
	plain := make([]byte, 20000)
	for i := range plain {
		plain[i] = byte(i)
	}
	c, err := NewLiveCluster(2, WithBlockSize(4096), WithAcceleratedNodes(1))
	if err != nil {
		t.Fatal(err)
	}
	c.FS.WriteFile("/p", plain, "")
	kern := spurt.KernelFunc{KernelName: "aes", Fn: kernels.CTRBlockFunc(cipher, iv)}
	if _, err := c.RunStream(&StreamJob{
		Name: "het", Input: "/p", Output: "/c", Kernel: kern, Accelerated: true,
	}); err != nil {
		t.Fatal(err)
	}
	got, _ := c.FS.ReadFile("/c")
	want := make([]byte, len(plain))
	kernels.CTRStream(cipher, iv, 0, want, plain)
	if !bytes.Equal(got, want) {
		t.Fatal("heterogeneous cluster produced wrong ciphertext")
	}
}

func TestEstimatePiLive(t *testing.T) {
	c, err := NewLiveCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, accel := range []bool{false, true} {
		pi, total, err := c.EstimatePi(400000, accel, 99)
		if err != nil {
			t.Fatal(err)
		}
		if total != 400000 {
			t.Errorf("accel=%v: total = %d, want 400000", accel, total)
		}
		if math.Abs(pi-math.Pi) > 0.05 {
			t.Errorf("accel=%v: pi = %g too far off", accel, pi)
		}
	}
	if _, _, err := c.EstimatePi(0, true, 1); err == nil {
		t.Error("zero samples should fail")
	}
}

// Property: live word count equals the direct kernel on the whole
// input, regardless of how blocks cut the text, as long as words do
// not span blocks (4-char words, block size multiple of 4).
func TestRunKVMatchesDirectProperty(t *testing.T) {
	f := func(wordsRaw []uint8) bool {
		if len(wordsRaw) == 0 {
			return true
		}
		if len(wordsRaw) > 200 {
			wordsRaw = wordsRaw[:200]
		}
		var sb strings.Builder
		for _, w := range wordsRaw {
			sb.WriteString(fmt.Sprintf("t%02d ", w%10))
		}
		text := sb.String()
		c, err := NewLiveCluster(2, WithBlockSize(32))
		if err != nil {
			return false
		}
		if err := c.FS.WriteFile("/input.txt", []byte(text), ""); err != nil {
			return false
		}
		res, err := c.RunKV(wordCountJob())
		if err != nil {
			return false
		}
		want := kernels.WordCount([]byte(text))
		if len(res) != len(want) {
			return false
		}
		for _, kv := range res {
			if strconv.FormatInt(want[kv.Key], 10) != kv.Value {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}
