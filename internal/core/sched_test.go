package core

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/sched"
)

// Dynamic-scheduler behaviour of the live runner: a straggling node
// must neither change results nor gate the job when speculation is on.
// This mirrors internal/hadoop's TestSpeculativeExecution on the
// functional (wall-clock) runner instead of the simulated one.

// stragglerText builds a corpus of 4-byte words so 64-byte blocks
// never split a word.
func stragglerText() string {
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		fmt.Fprintf(&sb, "w%02d ", i%7)
	}
	return sb.String()
}

// stragglerCluster builds a 4-node cluster whose node000 sleeps delay
// on every task it executes. The healthy nodes get a small per-task
// cost of their own so the job cannot drain before the straggler's
// slot goroutines have pulled work — keeping the timing assertions
// deterministic.
func stragglerCluster(t *testing.T, delay time.Duration, speculative bool) *LiveCluster {
	t.Helper()
	opts := []LiveOption{WithBlockSize(64)}
	if delay > 0 {
		pace := 2 * time.Millisecond
		opts = append(opts, WithTaskDelays([]time.Duration{delay, pace, pace, pace}))
	}
	opts = append(opts, WithScheduling(sched.Options{Speculative: speculative}))
	c, err := NewLiveCluster(4, opts...)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.FS.WriteFile("/input.txt", []byte(stragglerText()), ""); err != nil {
		t.Fatal(err)
	}
	return c
}

func TestSpeculationRescuesStragglerDeterministically(t *testing.T) {
	// node000 is made orders of magnitude slower than its peers (every
	// task costs it an extra 300ms; the real map work is microseconds).
	const delay = 300 * time.Millisecond

	reference, err := stragglerCluster(t, 0, false).RunKV(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}

	// Without speculation, the straggler's first in-flight task gates
	// the job: work stealing drains its queue, but nothing rescues the
	// task it is already sleeping on.
	slow := stragglerCluster(t, delay, false)
	start := time.Now()
	res, err := slow.RunKV(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	noSpec := time.Since(start)
	assertSamePairs(t, "no-speculation straggler", reference, res)

	// With speculation, an idle fast node duplicates the straggler's
	// in-flight task and the first finish wins: the job completes while
	// the straggler is still asleep.
	spec := stragglerCluster(t, delay, true)
	start = time.Now()
	res, err = spec.RunKV(wordCountJob())
	if err != nil {
		t.Fatal(err)
	}
	withSpec := time.Since(start)
	assertSamePairs(t, "speculative straggler", reference, res)

	stats := spec.LastStats()
	if stats == nil {
		t.Fatal("no scheduler stats recorded")
	}
	speculated := 0
	for _, w := range stats.Workers {
		speculated += w.Speculated
	}
	if speculated == 0 {
		t.Error("no speculative attempt launched against the straggler")
	}
	if withSpec >= delay {
		t.Errorf("speculative run took %v, want < the straggler's %v task delay", withSpec, delay)
	}
	if noSpec < delay {
		t.Logf("baseline run (%v) finished before one straggler delay (%v); straggler never pulled a task this run", noSpec, delay)
	} else if withSpec >= noSpec {
		t.Errorf("speculation (%v) did not beat the baseline (%v)", withSpec, noSpec)
	}
}

func TestStragglerPiCountsBitIdentical(t *testing.T) {
	// The canonical Pi decomposition must produce the same counts
	// whether or not a straggler and speculation are in play — the
	// per-task seeds, not the executing nodes, define the result.
	tasks := kernels.SplitSamples(120_000, 10, 2009)
	c := stragglerCluster(t, 5*time.Millisecond, true)
	inside1, total1, err := c.RunPiTasks(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if stats := c.LastStats(); stats == nil || stats.Tasks != 10 {
		t.Errorf("scheduler stats = %+v, want 10 tasks", stats)
	}
	plain := stragglerCluster(t, 0, false)
	inside2, total2, err := plain.RunPiTasks(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if inside1 != inside2 || total1 != total2 {
		t.Errorf("pi counts under straggler = %d/%d, plain = %d/%d",
			inside1, total1, inside2, total2)
	}
	if total1 != 120_000 {
		t.Errorf("total = %d, want 120000", total1)
	}
}

func assertSamePairs(t *testing.T, label string, want, got []KVResult) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("%s: %d pairs, want %d", label, len(got), len(want))
	}
	for i := range want {
		if want[i] != got[i] {
			t.Fatalf("%s: pair %d = %+v, want %+v", label, i, got[i], want[i])
		}
	}
}
