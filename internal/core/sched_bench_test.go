package core

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/sched"
)

// Skewed-worker benchmark on the live backend: one of four nodes takes
// an extra 2ms per task (a 10x-plus straggler at this block size). The
// static variant reproduces the seed's scheduling — every block pinned
// to the node storing it, bounded only by per-node mapper slots — so
// the straggler's share of blocks bounds the makespan. The dynamic
// variants run the same job through the work-stealing scheduler.

const benchStragglerDelay = 2 * time.Millisecond

func benchText() string {
	var sb strings.Builder
	for i := 0; i < 2048; i++ {
		fmt.Fprintf(&sb, "w%02d ", i%11)
	}
	return sb.String() // 8 KB -> 32 blocks of 256 bytes
}

func benchCluster(b *testing.B, dynamic, speculative bool) *LiveCluster {
	b.Helper()
	opts := []LiveOption{
		WithBlockSize(256),
		WithTaskDelays([]time.Duration{benchStragglerDelay, 0, 0, 0}),
	}
	if dynamic {
		opts = append(opts, WithScheduling(sched.Options{Speculative: speculative}))
	}
	c, err := NewLiveCluster(4, opts...)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.FS.WriteFile("/bench.txt", []byte(benchText()), ""); err != nil {
		b.Fatal(err)
	}
	return c
}

// staticRunKV replays the seed's static loop: each block executes on
// its storing node, full stop.
func staticRunKV(b *testing.B, c *LiveCluster, job *KVJob) []KVResult {
	b.Helper()
	work, err := c.planBlocks(job.Input)
	if err != nil {
		b.Fatal(err)
	}
	nodeIndex := make(map[*LiveNode]int, len(c.Nodes))
	for i, n := range c.Nodes {
		nodeIndex[n] = i
	}
	slots := make([]chan struct{}, len(c.Nodes))
	for i := range slots {
		slots[i] = make(chan struct{}, c.MappersPerNode)
	}
	shuffle := newPartitionedShuffle(len(c.Nodes))
	var wg sync.WaitGroup
	for _, w := range work {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			node := nodeIndex[w.node]
			sem := slots[node]
			sem <- struct{}{}
			defer func() { <-sem }()
			c.stall(node)
			data, err := c.FS.ReadBlock(w.id, w.host)
			if err != nil {
				b.Error(err)
				return
			}
			local := make(map[string][]string)
			if err := job.Map(data, w.offset, func(k, v string) {
				local[k] = append(local[k], v)
			}); err != nil {
				b.Error(err)
				return
			}
			shuffle.insert(local)
		}()
	}
	wg.Wait()
	res, err := shuffle.reduceAll(job.Reduce)
	if err != nil {
		b.Fatal(err)
	}
	return res
}

func benchJob() *KVJob {
	job := wordCountJob()
	job.Input = "/bench.txt"
	return job
}

// BenchmarkLiveStragglerStatic is the seed's behaviour: the straggler
// serializes its own blocks.
func BenchmarkLiveStragglerStatic(b *testing.B) {
	c := benchCluster(b, false, false)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		staticRunKV(b, c, benchJob())
	}
}

// BenchmarkLiveStragglerStealing lets idle nodes steal the straggler's
// queued blocks.
func BenchmarkLiveStragglerStealing(b *testing.B) {
	benchDynamic(b, false)
}

// BenchmarkLiveStragglerSpeculative additionally duplicates the
// straggler's in-flight block.
func BenchmarkLiveStragglerSpeculative(b *testing.B) {
	benchDynamic(b, true)
}

func benchDynamic(b *testing.B, speculative bool) {
	c := benchCluster(b, true, speculative)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.RunKV(benchJob()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkLivePiSkewedSpeedHints runs the canonical Pi decomposition
// with a declared 10x speed skew — the engine's speed-hint path.
func BenchmarkLivePiSkewedSpeedHints(b *testing.B) {
	c, err := NewLiveCluster(4,
		WithTaskDelays([]time.Duration{benchStragglerDelay, 0, 0, 0}),
		WithSpeedHints([]float64{0.1, 1, 1, 1}),
		WithScheduling(sched.Options{Speculative: true}))
	if err != nil {
		b.Fatal(err)
	}
	tasks := kernels.SplitSamples(400_000, 16, 2009)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := c.RunPiTasks(tasks); err != nil {
			b.Fatal(err)
		}
	}
}
