package core

import (
	"fmt"
	"io"
	"runtime"
	"strconv"
	"sync"
	"time"

	"hetmr/internal/hdfs"
	"hetmr/internal/kernels"
	"hetmr/internal/sched"
	"hetmr/internal/spurt"
)

// This file is the live (functional) two-level runner: jobs execute on
// real bytes with goroutine-backed nodes, and accelerated jobs push
// their record blocks through the node's SPE runtime. It mirrors the
// prototype of paper §III: level 1 distributes blocks over nodes with
// locality preference and bounded mapper slots; level 2 is the
// intra-node SPE distribution. Level 1 runs on the dynamic scheduler
// (internal/sched): tasks start on the node storing their block, idle
// nodes steal queued blocks from loaded peers (a stolen block is a
// remote read, as in Hadoop's non-local tasks), and with speculation
// enabled a straggling in-flight task is duplicated, first finish
// winning.

// KVJob is a key/value MapReduce job over a stored file (the classic
// Hadoop programming model of §II-A).
type KVJob struct {
	Name  string
	Input string
	// Map consumes one record (a DFS block in the live runner) and
	// emits key/value pairs.
	Map func(record []byte, offset int64, emit func(key, value string)) error
	// Reduce folds all values of one key.
	Reduce func(key string, values []string) (string, error)
	// Combine, when set, pre-reduces each mapper's local output before
	// the shuffle (Hadoop's combiner): it folds a key's local values
	// into one value of the same type, cutting shuffle volume. Reduce
	// must accept combined values.
	Combine func(key string, values []string) (string, error)
	// Reducers is the number of shuffle partitions (and the bound on
	// parallel reducers). 0 selects max(GOMAXPROCS, cluster nodes).
	Reducers int
}

// KVResult holds a reduced key/value pair.
type KVResult struct {
	Key   string
	Value string
}

// blockWork describes one block assignment for the live mappers.
type blockWork struct {
	index  int
	offset int64
	node   *LiveNode
	id     hdfs.BlockID
	host   string
}

// planBlocks assigns each block of the input to a node, preferring the
// node that holds the block (level-1 locality scheduling).
func (c *LiveCluster) planBlocks(input string) ([]blockWork, error) {
	locs, err := c.FS.Locations(input)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrNoInput, err)
	}
	var work []blockWork
	for i, loc := range locs {
		if len(loc.Hosts) == 0 {
			return nil, fmt.Errorf("core: input %q block %d has no live replica", input, i)
		}
		host := loc.Hosts[0]
		node, ok := c.nodeByName(host)
		if !ok {
			// Replica on an unknown node (e.g. master): round-robin.
			node = c.Nodes[i%len(c.Nodes)]
			host = loc.Hosts[0]
		}
		work = append(work, blockWork{
			index:  i,
			offset: loc.Offset,
			node:   node,
			id:     loc.Block,
			host:   host,
		})
	}
	return work, nil
}

// schedWorkers builds the scheduler's view of the cluster: one worker
// per node, MappersPerNode slots each, speed hints when configured.
func (c *LiveCluster) schedWorkers() []sched.Worker {
	workers := make([]sched.Worker, len(c.Nodes))
	for i, n := range c.Nodes {
		speed := 1.0
		if c.speeds != nil {
			speed = c.speeds[i]
		}
		workers[i] = sched.Worker{ID: n.Name, Speed: speed, Slots: c.MappersPerNode}
	}
	return workers
}

// stall applies the node's injected straggler delay, if any.
func (c *LiveCluster) stall(node int) {
	if c.delays != nil && c.delays[node] > 0 {
		time.Sleep(c.delays[node])
	}
}

// runBlocks executes fn over every input block on the dynamic
// scheduler. Each block task is homed on the node storing the block;
// fn receives the node actually executing the attempt (which differs
// from the home under stealing and speculation) and must return a
// result that depends only on the block — the scheduler commits the
// first finished attempt of each task, calling onCommit (when set)
// exactly once per block. Without a commit hook the per-task results
// are returned indexed like work; with one, the hook owns the results
// and the returned slice holds nils (bounded memory). The run's stats
// are retained for LastStats.
func (c *LiveCluster) runBlocks(work []blockWork,
	fn func(w blockWork, node *LiveNode, data []byte) (any, error),
	onCommit func(task int, result any)) ([]any, error) {
	nodeIndex := make(map[*LiveNode]int, len(c.Nodes))
	for i, n := range c.Nodes {
		nodeIndex[n] = i
	}
	tasks := make([]sched.Task, len(work))
	for i, w := range work {
		tasks[i] = sched.Task{Home: nodeIndex[w.node]}
	}
	exec := func(worker, task int) (any, error) {
		c.stall(worker)
		w := work[task]
		data, err := c.FS.ReadBlock(w.id, w.host)
		if err != nil {
			return nil, fmt.Errorf("core: read block %d: %w", w.id, err)
		}
		return fn(w, c.Nodes[worker], data)
	}
	opts := c.Sched
	opts.OnCommit = onCommit
	// A commit hook owns the results (shuffle insert, run-store
	// spill); retaining them in the results slice too would hold
	// every block's payload in memory for the whole job.
	opts.DiscardResults = onCommit != nil
	results, stats, err := sched.Run(c.schedWorkers(), tasks, exec, opts)
	c.lastStats = stats
	return results, err
}

// RunKV executes a key/value job and returns results sorted by key.
// The shuffle between the phases is partitioned: each mapper's output
// is hash-split into per-reducer buckets (after the optional map-side
// combine) so mappers never serialize on a global table, and the
// buckets reduce in parallel.
func (c *LiveCluster) RunKV(job *KVJob) ([]KVResult, error) {
	if job.Map == nil || job.Reduce == nil {
		return nil, fmt.Errorf("core: job %q needs Map and Reduce", job.Name)
	}
	work, err := c.planBlocks(job.Input)
	if err != nil {
		return nil, err
	}
	nPart := job.Reducers
	if nPart <= 0 {
		nPart = runtime.GOMAXPROCS(0)
		if n := len(c.Nodes); n > nPart {
			nPart = n
		}
	}
	shuffle := newPartitionedShuffle(nPart)
	// The mapper's local table is the task result; the scheduler's
	// commit hook inserts it into the shuffle so a speculative
	// duplicate can never double-count a block.
	_, err = c.runBlocks(work, func(w blockWork, _ *LiveNode, data []byte) (any, error) {
		local := make(map[string][]string)
		emit := func(k, v string) { local[k] = append(local[k], v) }
		if err := job.Map(data, w.offset, emit); err != nil {
			return nil, fmt.Errorf("core: map on block %d: %w", w.index, err)
		}
		if job.Combine != nil {
			if err := combineLocal(local, job.Combine); err != nil {
				return nil, err
			}
		}
		return local, nil
	}, func(_ int, result any) {
		shuffle.insert(result.(map[string][]string))
	})
	if err != nil {
		return nil, err
	}
	return shuffle.reduceAll(job.Reduce)
}

// StreamJob transforms a stored file record-by-record (the encryption
// workload shape): each block is processed on its hosting node, via
// the SPE runtime when Accelerated, and the transformed file is
// written back to the DFS.
type StreamJob struct {
	Name   string
	Input  string
	Output string
	// Kernel is the block transformation (e.g. AES-CTR).
	Kernel spurt.BlockKernel
	// Accelerated selects the level-2 SPE offload path; otherwise the
	// kernel runs on the node's host core (the "Java" path).
	Accelerated bool
}

// RunStream executes a stream job and returns the number of bytes
// processed.
func (c *LiveCluster) RunStream(job *StreamJob) (int64, error) {
	if job.Kernel == nil {
		return 0, fmt.Errorf("core: stream job %q needs a kernel", job.Name)
	}
	if job.Output == "" {
		return 0, fmt.Errorf("core: stream job %q needs an output path", job.Name)
	}
	work, err := c.planBlocks(job.Input)
	if err != nil {
		return 0, err
	}
	// The transformed block is the task result: whichever node's
	// attempt wins (the accelerated and host paths are bit-identical,
	// so stolen or speculated blocks transform the same). Committed
	// blocks land in a spill-bounded run store instead of a resident
	// slice, so the job's peak memory is O(blockSize × mappers), not
	// O(input).
	outStore := c.newRunStore()
	defer outStore.Close()
	var commitErrMu sync.Mutex
	var commitErr error
	_, err = c.runBlocks(work, func(w blockWork, node *LiveNode, data []byte) (any, error) {
		out := make([]byte, len(data))
		if job.Accelerated && node.Accel != nil {
			if err := node.Accel.Stream(offsetKernel{job.Kernel, w.offset}, data, out); err != nil {
				return nil, fmt.Errorf("core: accelerated stream on block %d: %w", w.index, err)
			}
		} else {
			// Host path: process the block in SPE-sized chunks so the
			// two paths produce identical output for offset-aware
			// kernels.
			copy(out, data)
			chunk := 4096
			for off := 0; off < len(out); off += chunk {
				end := off + chunk
				if end > len(out) {
					end = len(out)
				}
				if err := job.Kernel.ProcessBlock(out[off:end], w.offset+int64(off)); err != nil {
					return nil, fmt.Errorf("core: host stream on block %d: %w", w.index, err)
				}
			}
		}
		return out, nil
	}, func(task int, result any) {
		if err := outStore.Put(runKey(work[task].index), result.([]byte)); err != nil {
			commitErrMu.Lock()
			if commitErr == nil {
				commitErr = err
			}
			commitErrMu.Unlock()
		}
	})
	if err != nil {
		return 0, err
	}
	if commitErr != nil {
		return 0, fmt.Errorf("core: stream job %q: %w", job.Name, commitErr)
	}
	// Commit the output file in block order, streaming each
	// transformed block out of the run store.
	wtr, err := c.FS.Create(job.Output, "")
	if err != nil {
		return 0, err
	}
	var total int64
	for i := range work {
		rc, err := outStore.Open(runKey(work[i].index))
		if err != nil {
			return 0, err
		}
		n, err := io.Copy(wtr, rc)
		rc.Close()
		if err != nil {
			return 0, err
		}
		outStore.Delete(runKey(work[i].index))
		total += n
	}
	if err := wtr.Close(); err != nil {
		return 0, err
	}
	return total, nil
}

// runKey names a block-indexed payload in a job's run store.
func runKey(index int) string { return strconv.Itoa(index) }

// offsetKernel rebases a block kernel's offsets to the block's
// position within the whole file (the SPE runtime reports offsets
// relative to its input buffer).
type offsetKernel struct {
	inner spurt.BlockKernel
	base  int64
}

// Name implements spurt.BlockKernel.
func (k offsetKernel) Name() string { return k.inner.Name() }

// ProcessBlock implements spurt.BlockKernel.
func (k offsetKernel) ProcessBlock(block []byte, offset int64) error {
	return k.inner.ProcessBlock(block, k.base+offset)
}

// EstimatePi runs the CPU-intensive workload across the cluster:
// samples are divided over nodes x mappers, each mapper either
// offloading to the SPEs (accelerated) or sampling on the host core.
// It returns the Pi estimate and the total samples actually drawn.
// This path keeps its static mapper-id placement on purpose: a
// mapper's count depends on whether its node offloads (the per-SPE
// seed domains differ from the host path), so migrating an attempt to
// a different node would change the estimate — the opposite of the
// determinism the scheduler's first-finish-wins commit requires.
// Engine-conformant Pi jobs go through RunPiTasks instead.
func (c *LiveCluster) EstimatePi(samples int64, accelerated bool, seed uint64) (float64, int64, error) {
	if samples <= 0 {
		return 0, 0, fmt.Errorf("core: samples must be positive, got %d", samples)
	}
	nMappers := len(c.Nodes) * c.MappersPerNode
	per := samples / int64(nMappers)
	rem := samples % int64(nMappers)
	var inside, total int64
	var mu sync.Mutex
	var wg sync.WaitGroup
	errCh := make(chan error, nMappers)
	mapperID := 0
	for _, node := range c.Nodes {
		for m := 0; m < c.MappersPerNode; m++ {
			node := node
			id := mapperID
			mapperID++
			n := per
			if int64(id) < rem {
				n++
			}
			if n == 0 {
				continue
			}
			wg.Add(1)
			go func() {
				defer wg.Done()
				// Give each mapper a hashed seed domain distinct from
				// the per-SPE streams PiWorkerFunc derives inside it.
				mapperSeed := kernels.MixSeed(seed, 0x6d617070<<16|uint64(id))
				var in int64
				if accelerated && node.Accel != nil {
					perWorker := n / int64(node.Accel.NSPEs())
					extra := n % int64(node.Accel.NSPEs())
					results, err := node.Accel.Compute(kernels.PiWorkerFunc(mapperSeed, perWorker))
					if err != nil {
						errCh <- err
						return
					}
					for _, r := range results {
						in += r.Value
					}
					// The remainder runs on the PPE, as real SPE
					// kernels leave tails to the host.
					in += kernels.CountInside(mapperSeed^0xabcdef, extra)
				} else {
					in = kernels.CountInside(mapperSeed, n)
				}
				mu.Lock()
				inside += in
				total += n
				mu.Unlock()
			}()
		}
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return 0, 0, err
	default:
	}
	return kernels.EstimatePi(inside, total), total, nil
}

// RunPiTasks draws each canonical Monte Carlo task
// (kernels.SampleSplit) on the host core of a cluster node — placed by
// the dynamic scheduler, bounded by each node's mapper slots — and
// returns the aggregate inside/total counts. Unlike EstimatePi, which
// derives its own per-mapper seed domains (and may offload to the
// SPEs), this executes exactly the given decomposition, and each
// task's count depends only on its seed — not on the node drawing it —
// which is what makes results bit-identical across engine backends and
// under stealing, speculation and re-runs.
func (c *LiveCluster) RunPiTasks(tasks []kernels.SampleSplit) (inside, total int64, err error) {
	for i, t := range tasks {
		if t.Samples <= 0 {
			return 0, 0, fmt.Errorf("core: pi task %d has %d samples", i, t.Samples)
		}
	}
	sTasks := make([]sched.Task, len(tasks))
	for i := range sTasks {
		sTasks[i] = sched.Task{Home: -1} // compute tasks have no data home
	}
	exec := func(worker, task int) (any, error) {
		c.stall(worker)
		return kernels.CountInside(tasks[task].Seed, tasks[task].Samples), nil
	}
	opts := c.Sched
	opts.OnCommit = nil // results fold below, in task order
	results, stats, err := sched.Run(c.schedWorkers(), sTasks, exec, opts)
	c.lastStats = stats
	if err != nil {
		return 0, 0, err
	}
	// Fold in task order: the totals are independent of which node won
	// each attempt.
	for i, res := range results {
		inside += res.(int64)
		total += tasks[i].Samples
	}
	return inside, total, nil
}
