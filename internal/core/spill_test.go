package core

import (
	"bytes"
	"testing"

	"hetmr/internal/kernels"
	"hetmr/internal/metrics"
	"hetmr/internal/spill"
	"hetmr/internal/spurt"
)

// runSortOn sorts a generated dataset on the given cluster and
// returns the output bytes.
func runSortOn(t *testing.T, c *LiveCluster, data []byte) []byte {
	t.Helper()
	if err := c.FS.WriteFile("/in", data, ""); err != nil {
		t.Fatal(err)
	}
	if err := c.RunSort("/in", "/out"); err != nil {
		t.Fatal(err)
	}
	out, err := c.FS.ReadFile("/out")
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestSortWithSpillMatchesInMemory pins the streaming sort's contract:
// spilling to disk changes where bytes live, never what they are.
func TestSortWithSpillMatchesInMemory(t *testing.T) {
	data := kernels.GenerateSortRecords(2009, 3_000) // 300 KB
	mem, err := NewLiveCluster(3, WithBlockSize(5_000))
	if err != nil {
		t.Fatal(err)
	}
	want := runSortOn(t, mem, data)

	before := metrics.SpillBytes.Load()
	spilled, err := NewLiveCluster(3, WithBlockSize(5_000),
		WithSpill(t.TempDir(), 20_000, spill.Flate()))
	if err != nil {
		t.Fatal(err)
	}
	defer spilled.Close()
	got := runSortOn(t, spilled, data)
	if !bytes.Equal(got, want) {
		t.Fatal("spilled sort output differs from the in-memory sort")
	}
	if metrics.SpillBytes.Load() == before {
		t.Fatal("a 300 KB sort under a 20 KB watermark never spilled")
	}
	sorted, err := kernels.RecordsSorted(got)
	if err != nil {
		t.Fatal(err)
	}
	if !sorted {
		t.Fatal("output is not sorted")
	}
}

// TestStreamWithSpillMatchesInMemory does the same for the stream
// (encryption-shaped) job path.
func TestStreamWithSpillMatchesInMemory(t *testing.T) {
	data := make([]byte, 100_000)
	for i := range data {
		data[i] = byte(i * 13)
	}
	cipher, err := kernels.NewCipher([]byte("spill-test-key16"))
	if err != nil {
		t.Fatal(err)
	}
	newKernel := func() spurt.BlockKernel {
		return spurt.KernelFunc{
			KernelName: "aes-ctr",
			Fn:         kernels.CTRBlockFunc(cipher, make([]byte, 16)),
		}
	}
	run := func(c *LiveCluster) []byte {
		t.Helper()
		if err := c.FS.WriteFile("/in", data, ""); err != nil {
			t.Fatal(err)
		}
		n, err := c.RunStream(&StreamJob{
			Name: "enc", Input: "/in", Output: "/out", Kernel: newKernel(),
		})
		if err != nil {
			t.Fatal(err)
		}
		if n != int64(len(data)) {
			t.Fatalf("stream processed %d bytes, want %d", n, len(data))
		}
		out, err := c.FS.ReadFile("/out")
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	mem, err := NewLiveCluster(3, WithBlockSize(8_192))
	if err != nil {
		t.Fatal(err)
	}
	want := run(mem)
	spilled, err := NewLiveCluster(3, WithBlockSize(8_192),
		WithSpill(t.TempDir(), 16_384, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer spilled.Close()
	got := run(spilled)
	if !bytes.Equal(got, want) {
		t.Fatal("spilled stream output differs from the in-memory run")
	}
}
