package core

import (
	"fmt"
	"sort"
	"sync"

	"hetmr/internal/kernels"
)

// The shuffle is the node-level analogue of the paper's block-level
// offload: rather than funnelling every mapper's output through one
// global table guarded by a single lock (a serial shuffle), the
// intermediate keys are hash-partitioned into per-reducer buckets,
// each with its own lock. Mappers merge key by key under the owning
// bucket's lock — critical sections stay tiny and mappers touching
// different buckets never contend — and the reduce phase folds one
// bucket per worker, so both sides of the shuffle scale with the
// host's cores. (A staged hand-over variant that batched per-bucket
// groups was measured slower: the staging allocations cost more than
// the fine-grained locking they avoided.)

// shufflePartition is one reducer's bucket of grouped intermediate
// pairs. The padding keeps neighbouring buckets' locks off the same
// cache line.
type shufflePartition struct {
	mu  sync.Mutex
	kvs map[string][]string
	_   [48]byte // mutex+map are 16 bytes; pad the struct to 64
}

// partitionedShuffle fans mapper output into len(parts) buckets keyed
// by a hash of the intermediate key.
type partitionedShuffle struct {
	parts []shufflePartition
}

// newPartitionedShuffle builds a shuffle with nPart buckets.
func newPartitionedShuffle(nPart int) *partitionedShuffle {
	if nPart < 1 {
		nPart = 1
	}
	s := &partitionedShuffle{parts: make([]shufflePartition, nPart)}
	for i := range s.parts {
		s.parts[i].kvs = make(map[string][]string)
	}
	return s
}

// partitionOf maps a key to its bucket — the shared shuffle hash
// (kernels.PartitionIndexString), so the in-process and distributed
// shuffles route keys identically.
func (s *partitionedShuffle) partitionOf(key string) int {
	return kernels.PartitionIndexString(key, len(s.parts))
}

// insert merges one mapper's locally-grouped output into the buckets.
// Each key is merged under its own bucket's lock, so mappers touching
// different buckets proceed fully in parallel and the single global
// merge lock of the serial shuffle disappears.
func (s *partitionedShuffle) insert(local map[string][]string) {
	for k, vs := range local {
		part := &s.parts[s.partitionOf(k)]
		part.mu.Lock()
		part.kvs[k] = append(part.kvs[k], vs...)
		part.mu.Unlock()
	}
}

// reduceAll folds every bucket — one worker per non-empty bucket, so
// reduce parallelism is bounded by the partition count — and returns
// the results sorted by key.
func (s *partitionedShuffle) reduceAll(
	reduce func(key string, values []string) (string, error)) ([]KVResult, error) {
	perPart := make([][]KVResult, len(s.parts))
	errCh := make(chan error, len(s.parts))
	var wg sync.WaitGroup
	for p := range s.parts {
		part := &s.parts[p]
		if len(part.kvs) == 0 {
			continue
		}
		wg.Add(1)
		go func(p int, part *shufflePartition) {
			defer wg.Done()
			// No lock is needed: insert has completed before
			// reduceAll runs.
			keys := make([]string, 0, len(part.kvs))
			for k := range part.kvs {
				keys = append(keys, k)
			}
			sort.Strings(keys)
			out := make([]KVResult, 0, len(keys))
			for _, k := range keys {
				v, err := reduce(k, part.kvs[k])
				if err != nil {
					errCh <- fmt.Errorf("core: reduce key %q: %w", k, err)
					return
				}
				out = append(out, KVResult{Key: k, Value: v})
			}
			perPart[p] = out
		}(p, part)
	}
	wg.Wait()
	select {
	case err := <-errCh:
		return nil, err
	default:
	}
	total := 0
	for _, rs := range perPart {
		total += len(rs)
	}
	results := make([]KVResult, 0, total)
	for _, rs := range perPart {
		results = append(results, rs...)
	}
	// Buckets are key-disjoint and individually sorted; a final sort
	// yields the global key order.
	sort.Slice(results, func(i, j int) bool { return results[i].Key < results[j].Key })
	return results, nil
}

// combineLocal applies a combiner to one mapper's local output,
// replacing each key's value list with the single combined value —
// Hadoop's map-side combine, which shrinks the shuffle volume before
// anything is staged.
func combineLocal(local map[string][]string,
	combine func(key string, values []string) (string, error)) error {
	for k, vs := range local {
		if len(vs) < 2 {
			continue
		}
		v, err := combine(k, vs)
		if err != nil {
			return fmt.Errorf("core: combine key %q: %w", k, err)
		}
		local[k] = append(vs[:0], v)
	}
	return nil
}
