package core

import (
	"fmt"
	"runtime"
	"sort"
	"strconv"
	"sync"
	"testing"
)

// The benchmarks compare the partitioned parallel shuffle against the
// serial shuffle it replaced (every mapper merging into one global
// table under a single lock, reduce striding over globally sorted
// keys). Run with:
//
//	go test -bench=Shuffle -benchtime=5x ./internal/core
//
// On a multi-core host the parallel variant is expected to finish the
// same merge+reduce work at least 1.5x faster: the serial variant
// performs every merge single-threaded under the global lock no matter
// how many cores exist, while the partitioned variant spreads insert
// and reduce work across buckets with independent locks. On a
// single-core host there is no parallelism to exploit and the
// partitioned variant instead shows its bounded overhead (per-key
// hashing plus fine-grained locking, ~10%).

const (
	benchMappers     = 64
	benchKeysPerMap  = 2000
	benchEmitsPerKey = 12
)

// benchLocals builds the per-mapper outputs once per benchmark run:
// benchMappers mappers emitting benchKeysPerMap keys each from a
// shared key space, benchEmitsPerKey values per key.
func benchLocals() []map[string][]string {
	locals := make([]map[string][]string, benchMappers)
	for m := range locals {
		local := make(map[string][]string, benchKeysPerMap)
		for k := 0; k < benchKeysPerMap; k++ {
			key := fmt.Sprintf("key-%05d", (m*577+k)%(benchKeysPerMap*2))
			vals := make([]string, benchEmitsPerKey)
			for v := range vals {
				vals[v] = "1"
			}
			local[key] = vals
		}
		locals[m] = local
	}
	return locals
}

// runMappers feeds every local map to insert from concurrent mapper
// goroutines, mirroring forEachBlock's concurrency.
func runMappers(locals []map[string][]string, insert func(map[string][]string)) {
	var wg sync.WaitGroup
	for _, local := range locals {
		local := local
		wg.Add(1)
		go func() {
			defer wg.Done()
			insert(local)
		}()
	}
	wg.Wait()
}

func benchReduce(_ string, values []string) (string, error) {
	total := 0
	for _, v := range values {
		n, _ := strconv.Atoi(v)
		total += n
	}
	return strconv.Itoa(total), nil
}

func BenchmarkShuffleSerial(b *testing.B) {
	locals := benchLocals()
	nWorkers := runtime.GOMAXPROCS(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// The pre-partitioned shuffle: every mapper merges into one
		// global table under a single lock. (The reduce phase strides
		// over the sorted keys in parallel, exactly as the old RunKV
		// did — only the shuffle itself was serial.)
		intermediate := make(map[string][]string)
		var mu sync.Mutex
		runMappers(locals, func(local map[string][]string) {
			mu.Lock()
			for k, vs := range local {
				intermediate[k] = append(intermediate[k], vs...)
			}
			mu.Unlock()
		})
		keys := make([]string, 0, len(intermediate))
		for k := range intermediate {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		results := make([]KVResult, len(keys))
		var wg sync.WaitGroup
		for p := 0; p < nWorkers; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for j := p; j < len(keys); j += nWorkers {
					k := keys[j]
					v, err := benchReduce(k, intermediate[k])
					if err != nil {
						b.Error(err)
						return
					}
					results[j] = KVResult{Key: k, Value: v}
				}
			}(p)
		}
		wg.Wait()
		if len(results) != benchKeysPerMap*2 {
			b.Fatalf("got %d keys", len(results))
		}
	}
}

func BenchmarkShuffleParallel(b *testing.B) {
	locals := benchLocals()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := newPartitionedShuffle(32)
		runMappers(locals, s.insert)
		results, err := s.reduceAll(benchReduce)
		if err != nil {
			b.Fatal(err)
		}
		if len(results) != benchKeysPerMap*2 {
			b.Fatalf("got %d keys", len(results))
		}
	}
}
