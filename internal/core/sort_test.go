package core

import (
	"errors"
	"testing"

	"hetmr/internal/kernels"
)

func TestRunSortEndToEnd(t *testing.T) {
	clus, err := NewLiveCluster(3, WithBlockSize(5000)) // 50 records/block
	if err != nil {
		t.Fatal(err)
	}
	data := kernels.GenerateSortRecords(11, 1000)
	if err := clus.FS.WriteFile("/in", data, ""); err != nil {
		t.Fatal(err)
	}
	if err := clus.RunSort("/in", "/out"); err != nil {
		t.Fatal(err)
	}
	out, err := clus.FS.ReadFile("/out")
	if err != nil {
		t.Fatal(err)
	}
	if len(out) != len(data) {
		t.Fatalf("output %d bytes, want %d", len(out), len(data))
	}
	sorted, err := kernels.RecordsSorted(out)
	if err != nil {
		t.Fatal(err)
	}
	if !sorted {
		t.Fatal("output not sorted")
	}
}

func TestRunSortValidation(t *testing.T) {
	clus, _ := NewLiveCluster(1, WithBlockSize(5000))
	clus.FS.WriteFile("/in", kernels.GenerateSortRecords(1, 10), "")
	if err := clus.RunSort("/in", ""); err == nil {
		t.Error("empty output should fail")
	}
	if err := clus.RunSort("/missing", "/out"); !errors.Is(err, ErrNoInput) {
		t.Errorf("missing input: %v", err)
	}
	// Block size not a record multiple.
	bad, _ := NewLiveCluster(1, WithBlockSize(4096))
	bad.FS.WriteFile("/in", kernels.GenerateSortRecords(1, 10), "")
	if err := bad.RunSort("/in", "/out"); err == nil {
		t.Error("non-multiple block size should fail")
	}
}

func TestRunSortSingleBlock(t *testing.T) {
	clus, _ := NewLiveCluster(2, WithBlockSize(100_000))
	data := kernels.GenerateSortRecords(5, 100) // fits one block
	clus.FS.WriteFile("/in", data, "")
	if err := clus.RunSort("/in", "/out"); err != nil {
		t.Fatal(err)
	}
	out, _ := clus.FS.ReadFile("/out")
	sorted, _ := kernels.RecordsSorted(out)
	if !sorted {
		t.Fatal("single-block sort failed")
	}
}
