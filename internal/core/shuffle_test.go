package core

import (
	"fmt"
	"strconv"
	"sync"
	"testing"
)

// sumReduce folds decimal values by addition.
func sumReduce(_ string, values []string) (string, error) {
	total := 0
	for _, v := range values {
		n, err := strconv.Atoi(v)
		if err != nil {
			return "", err
		}
		total += n
	}
	return strconv.Itoa(total), nil
}

func TestPartitionedShuffleGroupsAndSorts(t *testing.T) {
	s := newPartitionedShuffle(8)
	// Three "mappers" emitting overlapping key sets, inserted
	// concurrently.
	var wg sync.WaitGroup
	for m := 0; m < 3; m++ {
		wg.Add(1)
		go func(m int) {
			defer wg.Done()
			local := make(map[string][]string)
			for k := 0; k < 50; k++ {
				key := fmt.Sprintf("key-%02d", k)
				local[key] = append(local[key], "1", "1")
			}
			s.insert(local)
		}(m)
	}
	wg.Wait()
	results, err := s.reduceAll(sumReduce)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 50 {
		t.Fatalf("got %d keys, want 50", len(results))
	}
	for i, kv := range results {
		want := fmt.Sprintf("key-%02d", i)
		if kv.Key != want {
			t.Fatalf("result %d: key %q, want %q (global sort order)", i, kv.Key, want)
		}
		if kv.Value != "6" {
			t.Fatalf("key %q: value %s, want 6 (3 mappers x 2 emits)", kv.Key, kv.Value)
		}
	}
}

func TestPartitionedShuffleSinglePartition(t *testing.T) {
	s := newPartitionedShuffle(0) // clamps to 1
	s.insert(map[string][]string{"a": {"1"}, "b": {"2", "3"}})
	results, err := s.reduceAll(sumReduce)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 2 || results[0].Key != "a" || results[1].Value != "5" {
		t.Fatalf("unexpected results %+v", results)
	}
}

func TestPartitionedShuffleReduceError(t *testing.T) {
	s := newPartitionedShuffle(4)
	s.insert(map[string][]string{"bad": {"x"}})
	if _, err := s.reduceAll(sumReduce); err == nil {
		t.Fatal("want reduce error for non-numeric value")
	}
}

func TestCombineLocal(t *testing.T) {
	local := map[string][]string{
		"a": {"1", "2", "3"},
		"b": {"4"},
	}
	if err := combineLocal(local, sumReduce); err != nil {
		t.Fatal(err)
	}
	if len(local["a"]) != 1 || local["a"][0] != "6" {
		t.Fatalf("combine left %v for key a, want [6]", local["a"])
	}
	if len(local["b"]) != 1 || local["b"][0] != "4" {
		t.Fatalf("single-value key b changed: %v", local["b"])
	}
}

func TestRunKVWithCombiner(t *testing.T) {
	clus, err := NewLiveCluster(3, WithBlockSize(64))
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("alpha beta alpha gamma beta alpha delta gamma alpha beta ")
	if err := clus.FS.WriteFile("/in.txt", data, ""); err != nil {
		t.Fatal(err)
	}
	job := &KVJob{
		Name:  "wc",
		Input: "/in.txt",
		Map: func(record []byte, _ int64, emit func(k, v string)) error {
			for _, w := range splitWords(record) {
				emit(w, "1")
			}
			return nil
		},
		Reduce:   sumReduce,
		Combine:  sumReduce,
		Reducers: 4,
	}
	got, err := clus.RunKV(job)
	if err != nil {
		t.Fatal(err)
	}
	// The same job without a combiner must agree.
	job2 := *job
	job2.Combine = nil
	job2.Reducers = 1
	want, err := clus.RunKV(&job2)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(want) {
		t.Fatalf("combiner changed key count: %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("result %d: combined %+v vs plain %+v", i, got[i], want[i])
		}
	}
}

// splitWords is a minimal space splitter for the test corpus.
func splitWords(b []byte) []string {
	var out []string
	start := -1
	for i, c := range b {
		if c == ' ' || c == '\n' {
			if start >= 0 {
				out = append(out, string(b[start:i]))
				start = -1
			}
			continue
		}
		if start < 0 {
			start = i
		}
	}
	if start >= 0 {
		out = append(out, string(b[start:]))
	}
	return out
}
