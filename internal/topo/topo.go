// Package topo is the cluster's shared topology model: which rack
// each node lives in, HDFS-style /rack/node paths, and the network
// distance between nodes. It is the single place rack knowledge lives
// — the DFS layers (internal/hdfs, the netmr NameNode) consult it for
// rack-aware replica placement, the scheduler (internal/sched) for the
// node-local → rack-local → remote grant order, and the runtimes for
// fetch ordering — so every plane agrees on what "near" means.
//
// Distances follow the Hadoop convention the paper's testbed inherits:
// 0 between a node and itself, 2 between nodes sharing a rack, 4
// across racks. A node nobody assigned a rack to lands in DefaultRack,
// which reproduces the flat pre-rack topology: every node shares one
// rack, so rack-locality degenerates to "anywhere", exactly the old
// behaviour.
package topo

import (
	"fmt"
	"sort"
	"sync"
)

// DefaultRack is the rack of nodes never assigned one. A flat cluster
// keeps every node here, making all pairs rack-local.
const DefaultRack = "rack00"

// Distance values between two nodes, Hadoop-style: hops up and down
// the /rack/node tree.
const (
	// DistanceLocal is a node to itself.
	DistanceLocal = 0
	// DistanceRack is two distinct nodes sharing a rack.
	DistanceRack = 2
	// DistanceRemote is two nodes on different racks.
	DistanceRemote = 4
)

// RackName returns the canonical name of rack i ("rack00", "rack01",
// ...), the scheme RoundRobin and the cluster bootstrappers use.
func RackName(i int) string { return fmt.Sprintf("rack%02d", i) }

// RoundRobin deals n nodes across racks round-robin (node i on rack
// i%racks) and returns each node's rack name. racks < 2 puts everyone
// in DefaultRack — the flat topology.
func RoundRobin(n, racks int) []string {
	out := make([]string, n)
	for i := range out {
		if racks < 2 {
			out[i] = DefaultRack
		} else {
			out[i] = RackName(i % racks)
		}
	}
	return out
}

// Topology is a mutable node → rack map, safe for concurrent use. The
// zero value is not ready; build one with New.
type Topology struct {
	mu     sync.RWMutex
	rackOf map[string]string
}

// New returns an empty topology.
func New() *Topology {
	return &Topology{rackOf: make(map[string]string)}
}

// Add places node on rack (an empty rack selects DefaultRack),
// overwriting any previous assignment — re-registration after a crash
// may legitimately move a node.
func (t *Topology) Add(node, rack string) {
	if rack == "" {
		rack = DefaultRack
	}
	t.mu.Lock()
	t.rackOf[node] = rack
	t.mu.Unlock()
}

// Remove forgets node (decommission). Unknown nodes are a no-op.
func (t *Topology) Remove(node string) {
	t.mu.Lock()
	delete(t.rackOf, node)
	t.mu.Unlock()
}

// RackOf reports node's rack; nodes never added resolve to
// DefaultRack, so an unracked cluster behaves as one flat rack.
func (t *Topology) RackOf(node string) string {
	t.mu.RLock()
	rack, ok := t.rackOf[node]
	t.mu.RUnlock()
	if !ok {
		return DefaultRack
	}
	return rack
}

// Path renders node's HDFS-style topology path, "/rack/node".
func (t *Topology) Path(node string) string {
	return "/" + t.RackOf(node) + "/" + node
}

// Distance reports the network distance between two nodes: 0 for the
// same node, 2 within a rack, 4 across racks.
func (t *Topology) Distance(a, b string) int {
	if a == b {
		return DistanceLocal
	}
	if t.RackOf(a) == t.RackOf(b) {
		return DistanceRack
	}
	return DistanceRemote
}

// SameRack reports whether two nodes share a rack (true for a node and
// itself).
func (t *Topology) SameRack(a, b string) bool {
	return t.RackOf(a) == t.RackOf(b)
}

// Racks lists the distinct racks holding at least one node, sorted.
func (t *Topology) Racks() []string {
	t.mu.RLock()
	seen := make(map[string]bool)
	for _, r := range t.rackOf {
		seen[r] = true
	}
	t.mu.RUnlock()
	out := make([]string, 0, len(seen))
	for r := range seen {
		out = append(out, r)
	}
	sort.Strings(out)
	return out
}

// NodesIn lists the nodes assigned to rack, sorted.
func (t *Topology) NodesIn(rack string) []string {
	t.mu.RLock()
	var out []string
	for n, r := range t.rackOf {
		if r == rack {
			out = append(out, n)
		}
	}
	t.mu.RUnlock()
	sort.Strings(out)
	return out
}

// Len reports how many nodes the topology knows.
func (t *Topology) Len() int {
	t.mu.RLock()
	defer t.mu.RUnlock()
	return len(t.rackOf)
}
