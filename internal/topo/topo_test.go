package topo

import (
	"reflect"
	"testing"
)

func TestDistanceConvention(t *testing.T) {
	tp := New()
	tp.Add("a", "rack00")
	tp.Add("b", "rack00")
	tp.Add("c", "rack01")
	if d := tp.Distance("a", "a"); d != DistanceLocal {
		t.Errorf("self distance = %d, want %d", d, DistanceLocal)
	}
	if d := tp.Distance("a", "b"); d != DistanceRack {
		t.Errorf("same-rack distance = %d, want %d", d, DistanceRack)
	}
	if d := tp.Distance("a", "c"); d != DistanceRemote {
		t.Errorf("cross-rack distance = %d, want %d", d, DistanceRemote)
	}
	if !tp.SameRack("a", "b") || tp.SameRack("a", "c") {
		t.Errorf("SameRack disagrees with Distance")
	}
}

func TestUnknownNodesAreFlat(t *testing.T) {
	tp := New()
	if r := tp.RackOf("ghost"); r != DefaultRack {
		t.Errorf("unknown node rack = %q, want %q", r, DefaultRack)
	}
	// Two unknown nodes are rack-local: the flat pre-rack topology.
	if d := tp.Distance("ghost1", "ghost2"); d != DistanceRack {
		t.Errorf("unknown-pair distance = %d, want %d", d, DistanceRack)
	}
}

func TestPath(t *testing.T) {
	tp := New()
	tp.Add("node03", "rack01")
	if p := tp.Path("node03"); p != "/rack01/node03" {
		t.Errorf("Path = %q, want /rack01/node03", p)
	}
}

func TestAddRemoveOverwrite(t *testing.T) {
	tp := New()
	tp.Add("n", "rack01")
	if r := tp.RackOf("n"); r != "rack01" {
		t.Fatalf("rack = %q, want rack01", r)
	}
	tp.Add("n", "rack02") // rejoin on a different rack
	if r := tp.RackOf("n"); r != "rack02" {
		t.Errorf("rack after move = %q, want rack02", r)
	}
	tp.Add("m", "") // empty rack falls back to the default
	if r := tp.RackOf("m"); r != DefaultRack {
		t.Errorf("empty-rack add = %q, want %q", r, DefaultRack)
	}
	tp.Remove("n")
	if r := tp.RackOf("n"); r != DefaultRack {
		t.Errorf("rack after remove = %q, want %q", r, DefaultRack)
	}
	if n := tp.Len(); n != 1 {
		t.Errorf("Len = %d, want 1", n)
	}
}

func TestRacksAndNodesIn(t *testing.T) {
	tp := New()
	tp.Add("b", "rack01")
	tp.Add("a", "rack01")
	tp.Add("c", "rack00")
	if got, want := tp.Racks(), []string{"rack00", "rack01"}; !reflect.DeepEqual(got, want) {
		t.Errorf("Racks = %v, want %v", got, want)
	}
	if got, want := tp.NodesIn("rack01"), []string{"a", "b"}; !reflect.DeepEqual(got, want) {
		t.Errorf("NodesIn = %v, want %v", got, want)
	}
}

func TestRoundRobin(t *testing.T) {
	if got, want := RoundRobin(4, 2), []string{"rack00", "rack01", "rack00", "rack01"}; !reflect.DeepEqual(got, want) {
		t.Errorf("RoundRobin(4,2) = %v, want %v", got, want)
	}
	for _, racks := range []int{0, 1} {
		for _, r := range RoundRobin(3, racks) {
			if r != DefaultRack {
				t.Errorf("RoundRobin(3,%d) placed a node on %q, want %q", racks, r, DefaultRack)
			}
		}
	}
	if got := RackName(7); got != "rack07" {
		t.Errorf("RackName(7) = %q", got)
	}
}
