package netmr

import (
	"fmt"
	"sort"

	"hetmr/internal/kernels"
	"hetmr/internal/rpcnet"
)

// MapKernel is a named, registered computation the TaskTrackers can
// run. Map consumes one task's input (block data, or samples for
// compute kernels) and returns a gob-encoded partial result; Reduce
// folds the partials, ordered by task ID, into the job result.
type MapKernel struct {
	// Map runs on the TaskTracker. data is nil for compute tasks.
	Map func(task Task, data []byte) ([]byte, error)
	// Reduce runs on the JobTracker when all tasks are done.
	Reduce func(partials [][]byte) ([]byte, error)
}

// kernelRegistry holds the built-in kernels; RegisterKernel extends it
// (must happen before daemons start — the registry is read-only at
// runtime).
var kernelRegistry = map[string]MapKernel{}

// RegisterKernel adds a kernel under a unique name.
func RegisterKernel(name string, k MapKernel) {
	if _, dup := kernelRegistry[name]; dup {
		panic(fmt.Sprintf("netmr: kernel %q already registered", name))
	}
	kernelRegistry[name] = k
}

// lookupKernel fetches a registered kernel.
func lookupKernel(name string) (MapKernel, error) {
	k, ok := kernelRegistry[name]
	if !ok {
		return MapKernel{}, fmt.Errorf("netmr: unknown kernel %q", name)
	}
	return k, nil
}

// AESArgs parameterizes the aes-ctr kernel.
type AESArgs struct {
	Key []byte
	IV  []byte
	// Offset of each task's block is derived from task ID x block
	// size; BlockBytes carries that size.
	BlockBytes int64
}

// wordCountPartial is the wordcount kernel's map output.
type wordCountPartial struct {
	Counts map[string]int64
}

// piPartial is the pi kernel's map output.
type piPartial struct {
	Inside int64
	Total  int64
}

// PiResult is the pi kernel's reduced output.
type PiResult struct {
	Inside int64
	Total  int64
	Pi     float64
}

func init() {
	RegisterKernel("wordcount", MapKernel{
		Map: func(_ Task, data []byte) ([]byte, error) {
			return rpcnet.Marshal(wordCountPartial{Counts: kernels.WordCount(data)})
		},
		Reduce: func(partials [][]byte) ([]byte, error) {
			total := make(map[string]int64)
			for _, p := range partials {
				var part wordCountPartial
				if err := rpcnet.Unmarshal(p, &part); err != nil {
					return nil, err
				}
				for w, n := range part.Counts {
					total[w] += n
				}
			}
			return rpcnet.Marshal(total)
		},
	})

	RegisterKernel("aes-ctr", MapKernel{
		Map: func(task Task, data []byte) ([]byte, error) {
			var args AESArgs
			if err := rpcnet.Unmarshal(task.Args, &args); err != nil {
				return nil, err
			}
			c, err := kernels.NewCipher(args.Key)
			if err != nil {
				return nil, err
			}
			out := make([]byte, len(data))
			offset := int64(task.TaskID) * args.BlockBytes
			kernels.CTRStream(c, args.IV, offset, out, data)
			return rpcnet.Marshal(out)
		},
		Reduce: func(partials [][]byte) ([]byte, error) {
			// Partials arrive in task order: concatenate into the
			// whole ciphertext.
			var whole []byte
			for _, p := range partials {
				var chunk []byte
				if err := rpcnet.Unmarshal(p, &chunk); err != nil {
					return nil, err
				}
				whole = append(whole, chunk...)
			}
			return rpcnet.Marshal(whole)
		},
	})

	RegisterKernel("pi", MapKernel{
		Map: func(task Task, _ []byte) ([]byte, error) {
			inside := kernels.CountInside(task.Seed, task.Samples)
			return rpcnet.Marshal(piPartial{Inside: inside, Total: task.Samples})
		},
		Reduce: func(partials [][]byte) ([]byte, error) {
			var inside, total int64
			for _, p := range partials {
				var part piPartial
				if err := rpcnet.Unmarshal(p, &part); err != nil {
					return nil, err
				}
				inside += part.Inside
				total += part.Total
			}
			return rpcnet.Marshal(PiResult{
				Inside: inside,
				Total:  total,
				Pi:     kernels.EstimatePi(inside, total),
			})
		},
	})

	RegisterKernel("sort", MapKernel{
		// TeraSort shape: sort each block's 100-byte records where
		// they live, merge the sorted runs at the JobTracker. The
		// submitter must pick a DFS block size that is a multiple of
		// the record size.
		Map: func(_ Task, data []byte) ([]byte, error) {
			run := append([]byte(nil), data...)
			if err := kernels.SortRecords(run); err != nil {
				return nil, err
			}
			return rpcnet.Marshal(run)
		},
		Reduce: func(partials [][]byte) ([]byte, error) {
			runs := make([][]byte, len(partials))
			for i, p := range partials {
				if err := rpcnet.Unmarshal(p, &runs[i]); err != nil {
					return nil, err
				}
			}
			merged, err := kernels.MergeSortedRuns(runs)
			if err != nil {
				return nil, err
			}
			return rpcnet.Marshal(merged)
		},
	})

	RegisterKernel("grep", MapKernel{
		Map: func(task Task, data []byte) ([]byte, error) {
			var pattern []byte
			if err := rpcnet.Unmarshal(task.Args, &pattern); err != nil {
				return nil, err
			}
			var matches []string
			kernels.GrepLines(data, pattern, func(_ int, line []byte) {
				matches = append(matches, string(line))
			})
			return rpcnet.Marshal(matches)
		},
		Reduce: func(partials [][]byte) ([]byte, error) {
			var all []string
			for _, p := range partials {
				var m []string
				if err := rpcnet.Unmarshal(p, &m); err != nil {
					return nil, err
				}
				all = append(all, m...)
			}
			sort.Strings(all)
			return rpcnet.Marshal(all)
		},
	})
}
