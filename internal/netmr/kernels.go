package netmr

import (
	"fmt"
	"sort"

	"hetmr/internal/kernels"
	"hetmr/internal/rpcnet"
)

// MapKernel is a named, registered computation the TaskTrackers can
// run. Map consumes one task's input (block data, or samples for
// compute kernels) and returns a gob-encoded partial result; Reduce
// folds the partials, ordered by task ID, into the job result.
//
// Kernels with large intermediate output additionally implement the
// distributed shuffle pair: Partition runs map-side and splits the
// task's output into R key-hashed partitions held in the tracker's
// shuffle store; Merge runs as a reduce task and folds the per-mapper
// pieces of one partition (ordered by map task ID) into that
// partition's output, which must itself be a valid Reduce partial.
// With both set and JobSpec.NumReducers > 0, map output bytes never
// cross the JobTracker — only the R merged reduce outputs do.
type MapKernel struct {
	// Map runs on the TaskTracker. data is nil for compute tasks.
	Map func(task Task, data []byte) ([]byte, error)
	// Reduce runs on the JobTracker when all tasks are done: over the
	// map outputs on the centralized path, over the reduce-task
	// outputs (ordered by partition) on the shuffle path.
	Reduce func(partials [][]byte) ([]byte, error)
	// Partition runs on the TaskTracker instead of Map when the
	// distributed shuffle is on: it returns exactly parts payloads,
	// one per partition (empty partitions included).
	Partition func(task Task, data []byte, parts int) ([][]byte, error)
	// Merge runs on the reducing TaskTracker: fold one partition's
	// per-mapper pieces into the partition's reduce output.
	Merge func(pieces [][]byte) ([]byte, error)
	// AccelMap, when set, is Map's accelerated variant: it offloads
	// the map work to the tracker's device and MUST produce bytes
	// bit-identical to Map's. It runs only on accelerator-equipped
	// trackers for tasks whose Mapper is MapperCell; returning
	// errAccelFallback hands the task back to the host path.
	AccelMap func(dev *AccelDevice, task Task, data []byte) ([]byte, error)
	// AccelPartition is Partition's accelerated variant under the same
	// contract.
	AccelPartition func(dev *AccelDevice, task Task, data []byte, parts int) ([][]byte, error)
	// RawOutput, when set, unwraps a final-phase task's encoded output
	// into the raw result bytes before it is parked in the shuffle
	// store (StreamOutput tasks only). Stored raw, a streamed piece
	// can be fetched in bounded chunks and written straight to the
	// client's sink — the flat-heap output path; without the hook the
	// client falls back to whole-piece fetch plus its decode step.
	RawOutput func(encoded []byte) ([]byte, error)
}

// kernelRegistry holds the built-in kernels; RegisterKernel extends it
// (must happen before daemons start — the registry is read-only at
// runtime).
var kernelRegistry = map[string]MapKernel{}

// RegisterKernel adds a kernel under a unique name.
func RegisterKernel(name string, k MapKernel) {
	if _, dup := kernelRegistry[name]; dup {
		panic(fmt.Sprintf("netmr: kernel %q already registered", name))
	}
	kernelRegistry[name] = k
}

// lookupKernel fetches a registered kernel.
func lookupKernel(name string) (MapKernel, error) {
	k, ok := kernelRegistry[name]
	if !ok {
		return MapKernel{}, fmt.Errorf("netmr: unknown kernel %q", name)
	}
	return k, nil
}

// AESArgs parameterizes the aes-ctr kernel.
type AESArgs struct {
	Key []byte
	IV  []byte
	// Offset of each task's block is derived from task ID x block
	// size; BlockBytes carries that size.
	BlockBytes int64
}

// wordCountPartial is the wordcount kernel's map output.
type wordCountPartial struct {
	Counts map[string]int64
}

// piPartial is the pi kernel's map output.
type piPartial struct {
	Inside int64
	Total  int64
}

// PiResult is the pi kernel's reduced output.
type PiResult struct {
	Inside int64
	Total  int64
	Pi     float64
}

func init() {
	// unwrapRaw is the RawOutput hook for kernels whose task encoding
	// is one gob byte slice: aes-ctr map outputs and sort reduce
	// outputs unwrap to the raw result bytes before being parked, so
	// the client can stream them chunk by chunk.
	unwrapRaw := func(encoded []byte) ([]byte, error) {
		var raw []byte
		if err := rpcnet.Unmarshal(encoded, &raw); err != nil {
			return nil, err
		}
		return raw, nil
	}

	// mergeWordCounts folds wordCountPartial payloads into one table.
	mergeWordCounts := func(pieces [][]byte) (map[string]int64, error) {
		total := make(map[string]int64)
		for _, p := range pieces {
			var part wordCountPartial
			if err := rpcnet.Unmarshal(p, &part); err != nil {
				return nil, err
			}
			for w, n := range part.Counts {
				total[w] += n
			}
		}
		return total, nil
	}

	// splitWordCounts routes each word's count to the partition its
	// hash selects, so a reduce task owns a disjoint key range. Shared
	// by the host and accelerated Partition variants — only how the
	// per-block table is produced differs.
	splitWordCounts := func(counts map[string]int64, parts int) ([][]byte, error) {
		split := make([]map[string]int64, parts)
		for p := range split {
			split[p] = make(map[string]int64)
		}
		for w, n := range counts {
			split[kernels.PartitionIndexString(w, parts)][w] = n
		}
		out := make([][]byte, parts)
		for p := range split {
			payload, err := rpcnet.Marshal(wordCountPartial{Counts: split[p]})
			if err != nil {
				return nil, err
			}
			out[p] = payload
		}
		return out, nil
	}

	RegisterKernel("wordcount", MapKernel{
		Map: func(_ Task, data []byte) ([]byte, error) {
			return rpcnet.Marshal(wordCountPartial{Counts: kernels.WordCount(data)})
		},
		Reduce: func(partials [][]byte) ([]byte, error) {
			total, err := mergeWordCounts(partials)
			if err != nil {
				return nil, err
			}
			return rpcnet.Marshal(total)
		},
		Partition: func(_ Task, data []byte, parts int) ([][]byte, error) {
			return splitWordCounts(kernels.WordCount(data), parts)
		},
		Merge: func(pieces [][]byte) ([]byte, error) {
			total, err := mergeWordCounts(pieces)
			if err != nil {
				return nil, err
			}
			return rpcnet.Marshal(wordCountPartial{Counts: total})
		},
		// Accelerated variants: the block's table comes off the SPEs
		// (separator-aligned sub-blocks, commutative merge), then the
		// same marshalling as the host path — bit-identical results.
		AccelMap: func(dev *AccelDevice, _ Task, data []byte) ([]byte, error) {
			counts, err := dev.WordCount(data)
			if err != nil {
				return nil, err
			}
			return rpcnet.Marshal(wordCountPartial{Counts: counts})
		},
		AccelPartition: func(dev *AccelDevice, _ Task, data []byte, parts int) ([][]byte, error) {
			counts, err := dev.WordCount(data)
			if err != nil {
				return nil, err
			}
			return splitWordCounts(counts, parts)
		},
	})

	RegisterKernel("aes-ctr", MapKernel{
		Map: func(task Task, data []byte) ([]byte, error) {
			var args AESArgs
			if err := rpcnet.Unmarshal(task.Args, &args); err != nil {
				return nil, err
			}
			c, err := kernels.NewCipher(args.Key)
			if err != nil {
				return nil, err
			}
			out := make([]byte, len(data))
			offset := int64(task.TaskID) * args.BlockBytes
			kernels.CTRStreamFast(c, args.IV, offset, out, data)
			return rpcnet.Marshal(out)
		},
		// Accelerated variant: the same seekable CTR stream, 4 KB
		// blocks double-buffered through the SPE local stores.
		AccelMap: func(dev *AccelDevice, task Task, data []byte) ([]byte, error) {
			var args AESArgs
			if err := rpcnet.Unmarshal(task.Args, &args); err != nil {
				return nil, err
			}
			c, err := kernels.NewCipher(args.Key)
			if err != nil {
				return nil, err
			}
			out, err := dev.CTRStream(c, args.IV, int64(task.TaskID)*args.BlockBytes, data)
			if err != nil {
				return nil, err
			}
			return rpcnet.Marshal(out)
		},
		Reduce: func(partials [][]byte) ([]byte, error) {
			// Partials arrive in task order: concatenate into the
			// whole ciphertext.
			var whole []byte
			for _, p := range partials {
				var chunk []byte
				if err := rpcnet.Unmarshal(p, &chunk); err != nil {
					return nil, err
				}
				whole = append(whole, chunk...)
			}
			return rpcnet.Marshal(whole)
		},
		RawOutput: unwrapRaw,
	})

	RegisterKernel("pi", MapKernel{
		Map: func(task Task, _ []byte) ([]byte, error) {
			inside := kernels.CountInside(task.Seed, task.Samples)
			return rpcnet.Marshal(piPartial{Inside: inside, Total: task.Samples})
		},
		// Accelerated variant: the task's sample range fans out over
		// the SPEs, each seeking into the exact splitmix64 stream —
		// the summed tally equals the host kernel's single pass.
		AccelMap: func(dev *AccelDevice, task Task, _ []byte) ([]byte, error) {
			inside, err := dev.CountInside(task.Seed, task.Samples)
			if err != nil {
				return nil, err
			}
			return rpcnet.Marshal(piPartial{Inside: inside, Total: task.Samples})
		},
		Reduce: func(partials [][]byte) ([]byte, error) {
			var inside, total int64
			for _, p := range partials {
				var part piPartial
				if err := rpcnet.Unmarshal(p, &part); err != nil {
					return nil, err
				}
				inside += part.Inside
				total += part.Total
			}
			return rpcnet.Marshal(PiResult{
				Inside: inside,
				Total:  total,
				Pi:     kernels.EstimatePi(inside, total),
			})
		},
	})

	// mergeSortRuns folds gob-encoded sorted runs into one sorted run.
	mergeSortRuns := func(pieces [][]byte) ([]byte, error) {
		runs := make([][]byte, len(pieces))
		for i, p := range pieces {
			if err := rpcnet.Unmarshal(p, &runs[i]); err != nil {
				return nil, err
			}
		}
		return kernels.MergeSortedRuns(runs)
	}

	RegisterKernel("sort", MapKernel{
		// TeraSort shape: sort each block's 100-byte records where
		// they live, merge the sorted runs at the JobTracker. The
		// submitter must pick a DFS block size that is a multiple of
		// the record size.
		Map: func(_ Task, data []byte) ([]byte, error) {
			run := append([]byte(nil), data...)
			if err := kernels.SortRecords(run); err != nil {
				return nil, err
			}
			return rpcnet.Marshal(run)
		},
		Reduce: func(partials [][]byte) ([]byte, error) {
			merged, err := mergeSortRuns(partials)
			if err != nil {
				return nil, err
			}
			return rpcnet.Marshal(merged)
		},
		// Shuffle path: records route to partitions by key hash — or,
		// when the task carries SplitKeys, by range
		// (kernels.RangePartitioner). Either way equal keys meet in
		// one reduce task, so both routes reproduce the centralized
		// order bit for bit; the range route additionally makes the
		// partitions themselves key-ordered, so a StreamOutput job's
		// pieces concatenate globally sorted with no final merge.
		Partition: func(task Task, data []byte, parts int) ([][]byte, error) {
			run := append([]byte(nil), data...)
			if err := kernels.SortRecords(run); err != nil {
				return nil, err
			}
			index := func(key []byte) int { return kernels.PartitionIndex(key, parts) }
			if len(task.SplitKeys) > 0 {
				rp := kernels.NewRangePartitioner(task.SplitKeys)
				if rp.Parts() != parts {
					return nil, fmt.Errorf("netmr: %d split keys for %d partitions", len(task.SplitKeys), parts)
				}
				index = rp.Index
			}
			split := make([][]byte, parts)
			for p := range split {
				split[p] = []byte{} // empty partitions still ship a run
			}
			for off := 0; off < len(run); off += kernels.SortRecordBytes {
				rec := run[off : off+kernels.SortRecordBytes]
				p := index(rec[:kernels.SortKeyBytes])
				split[p] = append(split[p], rec...)
			}
			out := make([][]byte, parts)
			for p := range split {
				payload, err := rpcnet.Marshal(split[p])
				if err != nil {
					return nil, err
				}
				out[p] = payload
			}
			return out, nil
		},
		Merge: func(pieces [][]byte) ([]byte, error) {
			merged, err := mergeSortRuns(pieces)
			if err != nil {
				return nil, err
			}
			return rpcnet.Marshal(merged)
		},
		RawOutput: unwrapRaw,
	})

	RegisterKernel("grep", MapKernel{
		Map: func(task Task, data []byte) ([]byte, error) {
			var pattern []byte
			if err := rpcnet.Unmarshal(task.Args, &pattern); err != nil {
				return nil, err
			}
			var matches []string
			kernels.GrepLines(data, pattern, func(_ int, line []byte) {
				matches = append(matches, string(line))
			})
			return rpcnet.Marshal(matches)
		},
		Reduce: func(partials [][]byte) ([]byte, error) {
			var all []string
			for _, p := range partials {
				var m []string
				if err := rpcnet.Unmarshal(p, &m); err != nil {
					return nil, err
				}
				all = append(all, m...)
			}
			sort.Strings(all)
			return rpcnet.Marshal(all)
		},
	})
}
