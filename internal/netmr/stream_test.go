package netmr

import (
	"bytes"
	"io"
	"testing"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/rpcnet"
	"hetmr/internal/spill"
)

func streamCorpus(n int) []byte {
	data := make([]byte, n)
	for i := range data {
		data[i] = byte(i*131 + i>>10)
	}
	return data
}

// TestWriteFromStreams pins the streaming ingest path: WriteFrom from
// an io.Reader must lay out the same blocks WriteFile does.
func TestWriteFromStreams(t *testing.T) {
	c, err := StartCluster(2, 2, 1_000, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	data := streamCorpus(10_500) // 11 blocks, last partial
	n, err := c.Client.WriteFrom("/streamed", bytes.NewReader(data), "")
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(data)) {
		t.Fatalf("WriteFrom wrote %d bytes, want %d", n, len(data))
	}
	got, err := c.Client.ReadFile("/streamed")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("WriteFrom round-trip differs")
	}
}

// TestStreamOutputEncrypt runs the same AES job with the result inline
// and streamed, and checks (a) bit-identical ciphertext, (b) the
// streamed run kept output bytes off the JobTracker's heartbeat
// channel, and (c) the stores free the pieces after the client's
// release.
func TestStreamOutputEncrypt(t *testing.T) {
	const blockSize = 1_000
	c, err := StartCluster(3, 2, blockSize, 10*time.Millisecond,
		WithSpill(t.TempDir(), 2_000, spill.Flate()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	data := streamCorpus(20_000)
	if err := c.Client.WriteFile("/plain", data, ""); err != nil {
		t.Fatal(err)
	}
	args, err := rpcnet.Marshal(AESArgs{
		Key: []byte("stream-test-key!"), IV: make([]byte, 16), BlockBytes: blockSize,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Reference: inline result.
	raw, err := c.Client.SubmitAndWait(JobSpec{
		Name: "enc-inline", Kernel: "aes-ctr", Input: "/plain", Args: args,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	if err := rpcnet.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	inlineBytes := c.JT.DataPlaneBytes()

	// Streamed result.
	id, err := c.Client.Submit(JobSpec{
		Name: "enc-stream", Kernel: "aes-ctr", Input: "/plain", Args: args,
		StreamOutput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	n, err := c.Client.WaitOutput(id, 30*time.Second, &got, DecodeRawBytes)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) {
		t.Fatalf("streamed %d bytes, want %d", n, len(want))
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("streamed ciphertext differs from the inline result")
	}
	streamBytes := c.JT.DataPlaneBytes() - inlineBytes
	if streamBytes != 0 {
		t.Fatalf("streamed run moved %d output bytes over the heartbeat channel, want 0", streamBytes)
	}
	// The release negotiated over heartbeats frees every store.
	deadline := time.Now().Add(5 * time.Second)
	for {
		held := 0
		for _, tt := range c.TTs {
			ids, _ := tt.store.held()
			held += len(ids)
		}
		if held == 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d stores still hold streamed outputs after release", held)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestStreamOutputSortShufflePath streams a distributed-shuffle sort's
// reduce outputs and checks the concatenated partitions match the
// inline shuffle result bit for bit.
func TestStreamOutputSortShufflePath(t *testing.T) {
	c, err := StartCluster(3, 2, 1_000, 10*time.Millisecond,
		WithSpill(t.TempDir(), 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	data := sortableRecords(t, 200) // 20 KB
	if err := c.Client.WriteFile("/records", data, ""); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Client.SubmitAndWait(JobSpec{
		Name: "sort-inline", Kernel: "sort", Input: "/records", NumReducers: 3,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	if err := rpcnet.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	id, err := c.Client.Submit(JobSpec{
		Name: "sort-stream", Kernel: "sort", Input: "/records", NumReducers: 3,
		StreamOutput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	// The inline path's final Reduce merges the partition runs; the
	// streamed path hands the client the partitions in order. The
	// shuffle hash-routes keys, so byte equality only holds after
	// re-merging the streamed pieces — fetched here directly from the
	// stores (they are raw record runs now, no gob framing) before
	// WaitOutput streams and releases them.
	if _, err := c.Client.Wait(id, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	st, err := c.Client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	var pieces [][]byte
	for _, ref := range st.Outputs {
		if !ref.Raw {
			t.Fatalf("sort output piece (%d,%d) not marked raw", ref.MapTask, ref.Part)
		}
		cc, err := c.Client.wire.get(ref.Addr)
		if err != nil {
			t.Fatal(err)
		}
		var rep FetchPartitionReply
		if err := cc.CallTimeout("FetchPartition", FetchPartitionArgs{
			JobID: id, MapTask: ref.MapTask, Part: ref.Part,
		}, &rep, dataCallTimeout); err != nil {
			t.Fatal(err)
		}
		pieces = append(pieces, rep.Data)
	}
	var got bytes.Buffer
	if _, err := c.Client.WaitOutput(id, 30*time.Second, &got, nil); err != nil {
		t.Fatal(err)
	}
	if got.Len() != len(want) {
		t.Fatalf("streamed %d bytes, inline produced %d", got.Len(), len(want))
	}
	merged, err := kernels.MergeSortedRuns(pieces)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(merged, want) {
		t.Fatal("re-merged streamed partitions differ from the inline sort")
	}
	spilledAnywhere := false
	for _, tt := range c.TTs {
		if tt.SpilledBytes() > 0 {
			spilledAnywhere = true
		}
	}
	if !spilledAnywhere {
		t.Fatal("SpillAll watermark but no tracker spilled shuffle payloads")
	}
}

// sortableRecords builds n 100-byte records.
func sortableRecords(t *testing.T, n int) []byte {
	t.Helper()
	data := streamCorpus(n * 100)
	return data
}

// TestDataNodeSpillServesBlocks pins the DataNode's disk-backed path:
// blocks spilled under the watermark still serve reads and jobs.
func TestDataNodeSpillServesBlocks(t *testing.T) {
	c, err := StartCluster(2, 2, 1_000, 10*time.Millisecond,
		WithSpill(t.TempDir(), 0, spill.Flate()))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	data := streamCorpus(8_000)
	if err := c.Client.WriteFile("/spilled", data, ""); err != nil {
		t.Fatal(err)
	}
	spilled := int64(0)
	for _, dn := range c.DNs {
		spilled += dn.SpilledBytes()
	}
	if spilled == 0 {
		t.Fatal("SpillAll watermark but no DataNode spilled blocks")
	}
	got, err := c.Client.ReadFile("/spilled")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("spilled blocks did not read back identically")
	}
}

// TestWaitOutputRejectsInlineJob pins the misuse path: WaitOutput on a
// job submitted without StreamOutput errors instead of hanging or
// returning nothing.
func TestWaitOutputRejectsInlineJob(t *testing.T) {
	c, err := StartCluster(2, 2, 1_000, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Client.WriteFile("/in", streamCorpus(2_000), ""); err != nil {
		t.Fatal(err)
	}
	args, err := rpcnet.Marshal(AESArgs{
		Key: []byte("stream-test-key!"), IV: make([]byte, 16), BlockBytes: 1_000,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := c.Client.Submit(JobSpec{
		Name: "enc", Kernel: "aes-ctr", Input: "/in", Args: args,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.WaitOutput(id, 30*time.Second, io.Discard, DecodeRawBytes); err == nil {
		t.Fatal("WaitOutput on an inline job succeeded")
	}
}
