package netmr

import (
	"bytes"
	"testing"
	"time"

	"hetmr/internal/metrics"
)

// TestWireCodecCompressesDataPlane proves the negotiated wire codec
// actually engages on the DFS block path: a compressible file written
// and read through a WithWireCodec cluster must move fewer bytes on
// the wire than its raw payload size, and round-trip bit-identically.
func TestWireCodecCompressesDataPlane(t *testing.T) {
	cluster, err := StartCluster(2, 2, 8_000, 20*time.Millisecond, WithWireCodec("snap"))
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()

	data := bytes.Repeat([]byte("hetmr wire compression block payload "), 2_000)
	metrics.WireBytesRaw.Reset()
	metrics.WireBytesOnWire.Reset()
	if err := cluster.Client.WriteFile("/wire/compressible", data, ""); err != nil {
		t.Fatal(err)
	}
	got, err := cluster.Client.ReadFile("/wire/compressible")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatalf("compressed wire corrupted the file: %d bytes back, want %d", len(got), len(data))
	}
	raw, wire := metrics.WireBytesRaw.Load(), metrics.WireBytesOnWire.Load()
	if raw == 0 {
		t.Fatal("wire meters never moved")
	}
	// The payload crosses the wire twice (Put and Get) and is highly
	// repetitive; anything close to raw means compression never
	// engaged.
	if wire >= raw {
		t.Fatalf("wire bytes %d not below raw %d with snap negotiated", wire, raw)
	}
	if wire > raw/2 {
		t.Fatalf("wire bytes %d saved too little of raw %d for a repetitive payload", wire, raw)
	}
}

// TestWireCodecOffMovesRawBytes pins the default: no codec, wire
// bytes equal raw bytes.
func TestWireCodecOffMovesRawBytes(t *testing.T) {
	cluster, err := StartCluster(1, 2, 8_000, 20*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer cluster.Shutdown()
	data := bytes.Repeat([]byte("plain "), 4_000)
	metrics.WireBytesRaw.Reset()
	metrics.WireBytesOnWire.Reset()
	if err := cluster.Client.WriteFile("/wire/plain", data, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Client.ReadFile("/wire/plain"); err != nil {
		t.Fatal(err)
	}
	if raw, wire := metrics.WireBytesRaw.Load(), metrics.WireBytesOnWire.Load(); raw != wire {
		t.Fatalf("no codec negotiated but wire bytes %d differ from raw %d", wire, raw)
	}
}

// TestUnknownWireCodecRejected pins fail-fast validation at both
// construction sites.
func TestUnknownWireCodecRejected(t *testing.T) {
	if _, err := NewClient("127.0.0.1:1", "127.0.0.1:1", 1024, WithClientWireCodec("nope")); err == nil {
		t.Error("NewClient accepted an unknown wire codec")
	}
	if _, err := StartTaskTracker("t", "127.0.0.1:1", "", 1, time.Second, WithTrackerWireCodec("nope")); err == nil {
		t.Error("StartTaskTracker accepted an unknown wire codec")
	}
}
