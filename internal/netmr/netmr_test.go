package netmr

import (
	"bytes"
	"math"
	"strings"
	"testing"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/rpcnet"
)

// startTestCluster boots a small cluster with fast heartbeats.
func startTestCluster(t *testing.T, workers int, blockSize int64) *Cluster {
	t.Helper()
	c, err := StartCluster(workers, 2, blockSize, 30*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.Shutdown)
	return c
}

func TestDFSWriteReadOverTCP(t *testing.T) {
	c := startTestCluster(t, 3, 1024)
	data := make([]byte, 5000)
	for i := range data {
		data[i] = byte(i * 11)
	}
	if err := c.Client.WriteFile("/f", data, ""); err != nil {
		t.Fatal(err)
	}
	got, err := c.Client.ReadFile("/f")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("roundtrip over TCP corrupted data")
	}
	// Blocks were spread across DataNodes (least-loaded placement).
	spread := 0
	for _, dn := range c.DNs {
		if dn.BlockCount() > 0 {
			spread++
		}
	}
	if spread < 2 {
		t.Errorf("blocks landed on %d datanodes, expected spread", spread)
	}
	files, err := c.Client.ListFiles()
	if err != nil || len(files) != 1 || files[0] != "/f" {
		t.Errorf("ListFiles = %v, %v", files, err)
	}
}

func TestDFSPreferredPlacement(t *testing.T) {
	c := startTestCluster(t, 3, 512)
	preferred := c.DNs[1].Addr()
	if err := c.Client.WriteFile("/pin", make([]byte, 2048), preferred); err != nil {
		t.Fatal(err)
	}
	if got := c.DNs[1].BlockCount(); got != 4 {
		t.Errorf("preferred datanode holds %d blocks, want 4", got)
	}
}

func TestDFSMissingFile(t *testing.T) {
	c := startTestCluster(t, 1, 512)
	if _, err := c.Client.ReadFile("/nope"); err == nil {
		t.Error("read of missing file should fail")
	}
}

func TestWordCountJobOverTCP(t *testing.T) {
	c := startTestCluster(t, 3, 64)
	// 4-byte words so blocks never split words.
	var sb strings.Builder
	for i := 0; i < 400; i++ {
		sb.WriteString([]string{"aaa ", "bbb ", "ccc ", "ddd "}[i%4])
	}
	text := sb.String()
	if err := c.Client.WriteFile("/corpus", []byte(text), ""); err != nil {
		t.Fatal(err)
	}
	result, err := c.Client.SubmitAndWait(JobSpec{
		Name: "wc", Kernel: "wordcount", Input: "/corpus",
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var counts map[string]int64
	if err := rpcnet.Unmarshal(result, &counts); err != nil {
		t.Fatal(err)
	}
	want := kernels.WordCount([]byte(text))
	if len(counts) != len(want) {
		t.Fatalf("got %d words, want %d", len(counts), len(want))
	}
	for w, n := range want {
		if counts[w] != n {
			t.Errorf("count[%s] = %d, want %d", w, counts[w], n)
		}
	}
}

func TestAESJobOverTCP(t *testing.T) {
	const blockSize = 4096
	c := startTestCluster(t, 2, blockSize)
	plain := make([]byte, 3*blockSize+100)
	for i := range plain {
		plain[i] = byte(i * 7)
	}
	if err := c.Client.WriteFile("/plain", plain, ""); err != nil {
		t.Fatal(err)
	}
	key := []byte("0123456789abcdef")
	iv := []byte("fedcba9876543210")
	args, err := rpcnet.Marshal(AESArgs{Key: key, IV: iv, BlockBytes: blockSize})
	if err != nil {
		t.Fatal(err)
	}
	result, err := c.Client.SubmitAndWait(JobSpec{
		Name: "enc", Kernel: "aes-ctr", Input: "/plain", Args: args,
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var cipherText []byte
	if err := rpcnet.Unmarshal(result, &cipherText); err != nil {
		t.Fatal(err)
	}
	cip, _ := kernels.NewCipher(key)
	want := make([]byte, len(plain))
	kernels.CTRStream(cip, iv, 0, want, plain)
	if !bytes.Equal(cipherText, want) {
		t.Fatal("distributed TCP encryption differs from sequential reference")
	}
}

func TestPiJobOverTCP(t *testing.T) {
	c := startTestCluster(t, 2, 1024)
	result, err := c.Client.SubmitAndWait(JobSpec{
		Name: "pi", Kernel: "pi", Samples: 400000, NumTasks: 8,
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var pi PiResult
	if err := rpcnet.Unmarshal(result, &pi); err != nil {
		t.Fatal(err)
	}
	if pi.Total != 400000 {
		t.Errorf("total = %d", pi.Total)
	}
	if math.Abs(pi.Pi-math.Pi) > 0.05 {
		t.Errorf("pi = %g", pi.Pi)
	}
}

func TestGrepJobOverTCP(t *testing.T) {
	c := startTestCluster(t, 2, 32)
	text := "alpha\nneedle one\nbeta\nneedle two\n"
	if err := c.Client.WriteFile("/logs", []byte(text), ""); err != nil {
		t.Fatal(err)
	}
	args, _ := rpcnet.Marshal([]byte("needle"))
	result, err := c.Client.SubmitAndWait(JobSpec{
		Name: "grep", Kernel: "grep", Input: "/logs", Args: args,
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var matches []string
	if err := rpcnet.Unmarshal(result, &matches); err != nil {
		t.Fatal(err)
	}
	// Blocks are 32 bytes, lines may straddle blocks; at minimum the
	// two needle lines' fragments containing "needle" match.
	found := 0
	for _, m := range matches {
		if strings.Contains(m, "needle") {
			found++
		}
	}
	if found == 0 {
		t.Errorf("matches = %v", matches)
	}
}

func TestTrackerFailureReassignsOverTCP(t *testing.T) {
	c := startTestCluster(t, 2, 1024)
	c.JT.TaskLease = 300 * time.Millisecond
	// Kill one tracker immediately: its assigned tasks must migrate.
	c.TTs[0].Kill()
	result, err := c.Client.SubmitAndWait(JobSpec{
		Name: "pi-failover", Kernel: "pi", Samples: 100000, NumTasks: 6,
	}, 15*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var pi PiResult
	if err := rpcnet.Unmarshal(result, &pi); err != nil {
		t.Fatal(err)
	}
	if pi.Total != 100000 {
		t.Errorf("total = %d after failover", pi.Total)
	}
}

func TestSubmitValidation(t *testing.T) {
	c := startTestCluster(t, 1, 1024)
	if _, err := c.Client.Submit(JobSpec{Name: "bad", Kernel: "no-such-kernel", Samples: 1}); err == nil {
		t.Error("unknown kernel accepted")
	}
	if _, err := c.Client.Submit(JobSpec{Name: "bad", Kernel: "pi"}); err == nil {
		t.Error("job with neither input nor samples accepted")
	}
	if _, err := c.Client.Submit(JobSpec{Name: "bad", Kernel: "wordcount", Input: "/missing"}); err == nil {
		t.Error("missing input accepted")
	}
}

func TestWaitTimeout(t *testing.T) {
	// A cluster with zero live trackers never finishes the job.
	nn, err := StartNameNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nn.Close()
	jt, err := StartJobTracker("127.0.0.1:0", nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer jt.Close()
	client, _ := NewClient(nn.Addr(), jt.Addr(), 1024)
	id, err := client.Submit(JobSpec{Name: "stuck", Kernel: "pi", Samples: 10, NumTasks: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := client.Wait(id, 200*time.Millisecond); err == nil {
		t.Error("Wait should time out with no trackers")
	}
	if _, err := client.Wait(999, 50*time.Millisecond); err == nil {
		t.Error("Wait on unknown job should fail")
	}
}

func TestClientValidation(t *testing.T) {
	if _, err := NewClient("x", "y", 0); err == nil {
		t.Error("zero block size accepted")
	}
	if _, err := StartCluster(0, 1, 1024, time.Millisecond); err == nil {
		t.Error("zero workers accepted")
	}
}

func TestEmptyFileWrite(t *testing.T) {
	c := startTestCluster(t, 1, 1024)
	if err := c.Client.WriteFile("/empty", nil, ""); err != nil {
		t.Fatal(err)
	}
	got, err := c.Client.ReadFile("/empty")
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Errorf("empty file read %d bytes", len(got))
	}
}

func TestRegisterKernelDuplicatePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("duplicate kernel registration should panic")
		}
	}()
	RegisterKernel("pi", MapKernel{})
}
