package netmr

import (
	"fmt"
	"sync"

	"hetmr/internal/rpcnet"
)

// connCache keeps one pooled rpcnet client per remote address, so the
// data plane reuses multiplexed connections instead of dialing per
// call (protocol v1's pattern, which put a TCP handshake and a gob
// envelope on every block). The rpcnet client self-heals — a dead
// connection redials on the next call — so entries never need
// eviction; an unreachable peer just keeps failing its calls.
type connCache struct {
	codec string // wire codec name proposed at dial ("" for none)

	mu     sync.Mutex
	conns  map[string]*rpcnet.Client
	closed bool
}

func newConnCache(codec string) *connCache {
	return &connCache{codec: codec, conns: make(map[string]*rpcnet.Client)}
}

// get returns the cached client for addr, dialing one on first use.
func (cc *connCache) get(addr string) (*rpcnet.Client, error) {
	cc.mu.Lock()
	defer cc.mu.Unlock()
	if cc.closed {
		return nil, fmt.Errorf("netmr: connection cache closed")
	}
	if c, ok := cc.conns[addr]; ok {
		return c, nil
	}
	var opts []rpcnet.Option
	if cc.codec != "" {
		opts = append(opts, rpcnet.WithCodec(cc.codec))
	}
	c, err := rpcnet.Dial(addr, opts...)
	if err != nil {
		return nil, err
	}
	cc.conns[addr] = c
	return c, nil
}

// close tears down every cached client. Idempotent.
func (cc *connCache) close() {
	cc.mu.Lock()
	conns := cc.conns
	cc.conns = nil
	cc.closed = true
	cc.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
