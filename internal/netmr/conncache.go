package netmr

import (
	"fmt"
	"sync"

	"hetmr/internal/rpcnet"
)

// connCache keeps one pooled rpcnet client per remote address, so the
// data plane reuses multiplexed connections instead of dialing per
// call (protocol v1's pattern, which put a TCP handshake and a gob
// envelope on every block). The rpcnet client self-heals — a dead
// connection redials on the next call — so entries never need
// eviction; an unreachable peer just keeps failing its calls.
type connCache struct {
	codec string // wire codec name proposed at dial ("" for none)

	mu     sync.Mutex
	conns  map[string]*rpcnet.Client
	closed bool
}

func newConnCache(codec string) *connCache {
	return &connCache{codec: codec, conns: make(map[string]*rpcnet.Client)}
}

// get returns the cached client for addr, dialing one on first use.
// The dial happens outside cc.mu: one unreachable peer must not block
// the whole data plane's cache behind its TCP handshake (hetlint:
// lockheldcall).
func (cc *connCache) get(addr string) (*rpcnet.Client, error) {
	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		return nil, fmt.Errorf("netmr: connection cache closed")
	}
	if c, ok := cc.conns[addr]; ok {
		cc.mu.Unlock()
		return c, nil
	}
	cc.mu.Unlock()

	var opts []rpcnet.Option
	if cc.codec != "" {
		opts = append(opts, rpcnet.WithCodec(cc.codec))
	}
	c, err := rpcnet.Dial(addr, opts...)
	if err != nil {
		return nil, err
	}

	cc.mu.Lock()
	if cc.closed {
		cc.mu.Unlock()
		c.Close()
		return nil, fmt.Errorf("netmr: connection cache closed")
	}
	if cur, ok := cc.conns[addr]; ok {
		// Lost the dial race: keep the cached winner, retire ours.
		cc.mu.Unlock()
		c.Close()
		return cur, nil
	}
	cc.conns[addr] = c
	cc.mu.Unlock()
	return c, nil
}

// close tears down every cached client. Idempotent.
func (cc *connCache) close() {
	cc.mu.Lock()
	conns := cc.conns
	cc.conns = nil
	cc.closed = true
	cc.mu.Unlock()
	for _, c := range conns {
		c.Close()
	}
}
