package netmr

import (
	"fmt"
	"slices"
	"sort"
	"sync"

	"hetmr/internal/rpcnet"
)

// DefaultReplication is the block replica count when
// NameNode.Replication is zero: enough to survive one DataNode death
// without burning the small clusters the tests boot.
const DefaultReplication = 2

// NameNode is the TCP metadata master: namespace and block placement.
type NameNode struct {
	srv *rpcnet.Server

	// Replication is the desired replica count per block, capped by
	// the number of registered DataNodes. Set it before the first
	// write; the zero value selects DefaultReplication.
	Replication int

	mu        sync.Mutex
	nextBlock int64
	files     map[string][]BlockInfo
	dataNodes []string       // registration order
	loadByDN  map[string]int // block replicas placed per datanode
}

// StartNameNode launches the NameNode on addr ("127.0.0.1:0" for an
// ephemeral port).
func StartNameNode(addr string) (*NameNode, error) {
	srv, err := rpcnet.NewServer(addr)
	if err != nil {
		return nil, err
	}
	nn := &NameNode{
		srv:      srv,
		files:    make(map[string][]BlockInfo),
		loadByDN: make(map[string]int),
	}
	srv.Handle("Register", nn.handleRegister)
	srv.Handle("Allocate", nn.handleAllocate)
	srv.Handle("Confirm", nn.handleConfirm)
	srv.Handle("Lookup", nn.handleLookup)
	srv.Handle("List", nn.handleList)
	srv.Handle("Delete", nn.handleDelete)
	return nn, nil
}

// Addr returns the NameNode's RPC address.
func (nn *NameNode) Addr() string { return nn.srv.Addr() }

// Close stops the server.
func (nn *NameNode) Close() error { return nn.srv.Close() }

func (nn *NameNode) handleRegister(body []byte) (any, error) {
	var args RegisterArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	for _, d := range nn.dataNodes {
		if d == args.Addr {
			return RegisterReply{}, nil // idempotent
		}
	}
	nn.dataNodes = append(nn.dataNodes, args.Addr)
	return RegisterReply{}, nil
}

func (nn *NameNode) handleAllocate(body []byte) (any, error) {
	var args AllocateArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if len(nn.dataNodes) == 0 {
		return nil, fmt.Errorf("netmr: no datanodes registered")
	}
	// Primary placement: writer locality first, then least-loaded.
	target := ""
	if args.Preferred != "" {
		for _, d := range nn.dataNodes {
			if d == args.Preferred {
				target = d
				break
			}
		}
	}
	if target == "" {
		target = nn.leastLoaded(nil)
	}
	// Secondary replicas go to the least-loaded remaining DataNodes,
	// so a dead node never takes the only copy of a block with it.
	replicas := []string{target}
	want := nn.Replication
	if want <= 0 {
		want = DefaultReplication
	}
	if want > len(nn.dataNodes) {
		want = len(nn.dataNodes)
	}
	for len(replicas) < want {
		replicas = append(replicas, nn.leastLoaded(replicas))
	}
	blk := BlockInfo{ID: nn.nextBlock, Size: args.Size, Addr: target, Replicas: replicas}
	nn.nextBlock++
	for _, d := range replicas {
		nn.loadByDN[d]++
	}
	nn.files[args.File] = append(nn.files[args.File], blk)
	return AllocateReply{Block: blk}, nil
}

// leastLoaded picks the DataNode with the fewest placed replicas,
// skipping exclude. Callers hold nn.mu and guarantee a candidate
// exists.
func (nn *NameNode) leastLoaded(exclude []string) string {
	target, best := "", -1
	for _, d := range nn.dataNodes {
		if slices.Contains(exclude, d) {
			continue
		}
		if best < 0 || nn.loadByDN[d] < best {
			best = nn.loadByDN[d]
			target = d
		}
	}
	return target
}

// handleConfirm records which replicas of a freshly allocated block
// the writer actually stored: placement targets that were down at
// write time are pruned, so readers never chase a replica that was
// never written.
func (nn *NameNode) handleConfirm(body []byte) (any, error) {
	var args ConfirmArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	if len(args.Replicas) == 0 {
		return nil, fmt.Errorf("netmr: confirm of block %d with no replicas", args.BlockID)
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	blocks := nn.files[args.File]
	for i := range blocks {
		if blocks[i].ID != args.BlockID {
			continue
		}
		for _, d := range blocks[i].ReplicaAddrs() {
			if !slices.Contains(args.Replicas, d) {
				nn.loadByDN[d]--
			}
		}
		blocks[i].Replicas = append([]string(nil), args.Replicas...)
		blocks[i].Addr = args.Replicas[0]
		return ConfirmReply{}, nil
	}
	return nil, fmt.Errorf("netmr: confirm of unknown block %d in %q", args.BlockID, args.File)
}

func (nn *NameNode) handleLookup(body []byte) (any, error) {
	var args LookupArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	blocks, ok := nn.files[args.File]
	if !ok {
		return nil, fmt.Errorf("netmr: file %q not found", args.File)
	}
	out := make([]BlockInfo, len(blocks))
	copy(out, blocks)
	return LookupReply{Blocks: out}, nil
}

func (nn *NameNode) handleList(body []byte) (any, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var names []string
	for f := range nn.files {
		names = append(names, f)
	}
	sort.Strings(names)
	return ListReply{Files: names}, nil
}

func (nn *NameNode) handleDelete(body []byte) (any, error) {
	var args DeleteArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, ok := nn.files[args.File]; !ok {
		return nil, fmt.Errorf("netmr: file %q not found", args.File)
	}
	for _, blk := range nn.files[args.File] {
		for _, d := range blk.ReplicaAddrs() {
			nn.loadByDN[d]--
		}
	}
	delete(nn.files, args.File)
	return DeleteReply{}, nil
}
