package netmr

import (
	"fmt"
	"sort"
	"sync"

	"hetmr/internal/rpcnet"
)

// NameNode is the TCP metadata master: namespace and block placement.
type NameNode struct {
	srv *rpcnet.Server

	mu        sync.Mutex
	nextBlock int64
	files     map[string][]BlockInfo
	dataNodes []string       // registration order
	loadByDN  map[string]int // blocks placed per datanode
}

// StartNameNode launches the NameNode on addr ("127.0.0.1:0" for an
// ephemeral port).
func StartNameNode(addr string) (*NameNode, error) {
	srv, err := rpcnet.NewServer(addr)
	if err != nil {
		return nil, err
	}
	nn := &NameNode{
		srv:      srv,
		files:    make(map[string][]BlockInfo),
		loadByDN: make(map[string]int),
	}
	srv.Handle("Register", nn.handleRegister)
	srv.Handle("Allocate", nn.handleAllocate)
	srv.Handle("Lookup", nn.handleLookup)
	srv.Handle("List", nn.handleList)
	srv.Handle("Delete", nn.handleDelete)
	return nn, nil
}

// Addr returns the NameNode's RPC address.
func (nn *NameNode) Addr() string { return nn.srv.Addr() }

// Close stops the server.
func (nn *NameNode) Close() error { return nn.srv.Close() }

func (nn *NameNode) handleRegister(body []byte) (any, error) {
	var args RegisterArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	for _, d := range nn.dataNodes {
		if d == args.Addr {
			return RegisterReply{}, nil // idempotent
		}
	}
	nn.dataNodes = append(nn.dataNodes, args.Addr)
	return RegisterReply{}, nil
}

func (nn *NameNode) handleAllocate(body []byte) (any, error) {
	var args AllocateArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if len(nn.dataNodes) == 0 {
		return nil, fmt.Errorf("netmr: no datanodes registered")
	}
	// Writer locality first, then least-loaded.
	target := ""
	if args.Preferred != "" {
		for _, d := range nn.dataNodes {
			if d == args.Preferred {
				target = d
				break
			}
		}
	}
	if target == "" {
		best := -1
		for _, d := range nn.dataNodes {
			if best < 0 || nn.loadByDN[d] < best {
				best = nn.loadByDN[d]
				target = d
			}
		}
	}
	blk := BlockInfo{ID: nn.nextBlock, Size: args.Size, Addr: target}
	nn.nextBlock++
	nn.loadByDN[target]++
	nn.files[args.File] = append(nn.files[args.File], blk)
	return AllocateReply{Block: blk}, nil
}

func (nn *NameNode) handleLookup(body []byte) (any, error) {
	var args LookupArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	blocks, ok := nn.files[args.File]
	if !ok {
		return nil, fmt.Errorf("netmr: file %q not found", args.File)
	}
	out := make([]BlockInfo, len(blocks))
	copy(out, blocks)
	return LookupReply{Blocks: out}, nil
}

func (nn *NameNode) handleList(body []byte) (any, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var names []string
	for f := range nn.files {
		names = append(names, f)
	}
	sort.Strings(names)
	return ListReply{Files: names}, nil
}

func (nn *NameNode) handleDelete(body []byte) (any, error) {
	var args DeleteArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, ok := nn.files[args.File]; !ok {
		return nil, fmt.Errorf("netmr: file %q not found", args.File)
	}
	for _, blk := range nn.files[args.File] {
		nn.loadByDN[blk.Addr]--
	}
	delete(nn.files, args.File)
	return DeleteReply{}, nil
}
