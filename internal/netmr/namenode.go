package netmr

import (
	"fmt"
	"slices"
	"sort"
	"sync"
	"time"

	"hetmr/internal/rpcnet"
	"hetmr/internal/topo"
)

// DefaultReplication is the block replica count when
// NameNode.Replication is zero: enough to survive one DataNode death
// without burning the small clusters the tests boot.
const DefaultReplication = 2

// Node lifecycle states, shared by the NameNode's DataNode view and
// the JobTracker's tracker view.
const (
	// NodeAlive is a member heartbeating normally.
	NodeAlive = "alive"
	// NodeDraining is a member being decommissioned: it keeps serving
	// but receives no new placements or tasks.
	NodeDraining = "draining"
	// NodeDead is a member that missed its liveness deadline; it
	// rejoins as alive on its next heartbeat.
	NodeDead = "dead"
)

// dnState is one DataNode's row in the NameNode's membership view.
type dnState struct {
	addr     string
	rack     string
	load     int // block replicas placed here
	lastSeen time.Time
	draining bool
	dead     bool
}

func (d *dnState) state() string {
	switch {
	case d.dead:
		return NodeDead
	case d.draining:
		return NodeDraining
	default:
		return NodeAlive
	}
}

// placeable reports whether new replicas may land on the node.
func (d *dnState) placeable() bool { return !d.dead && !d.draining }

// NameNode is the TCP metadata master: namespace, block placement, and
// the authoritative DataNode membership view. DataNodes join over
// their first Register heartbeat and stay alive by repeating it; a
// node that misses DeadAfter is declared dead, its replicas are
// pruned, and its blocks are re-replicated onto the survivors. Replica
// placement and repair spread copies across racks, so losing a whole
// rack cannot take every copy of a block with it.
type NameNode struct {
	srv *rpcnet.Server

	// Replication is the desired replica count per block, capped by
	// the number of placeable DataNodes. Set it before the first
	// write; the zero value selects DefaultReplication.
	Replication int

	// DeadAfter is how long a DataNode may stay silent before the
	// liveness sweep declares it dead and re-replicates its blocks.
	// Zero disables dead-node detection (the pre-membership
	// behaviour: readers fail over, nothing repairs). Set before
	// DataNodes register.
	DeadAfter time.Duration

	mu        sync.Mutex
	nextBlock int64
	files     map[string][]BlockInfo
	nodes     map[string]*dnState
	order     []string // registration order, for deterministic placement
	repairing bool     // one repair pass at a time

	stop chan struct{}
	done chan struct{}
}

// StartNameNode launches the NameNode on addr ("127.0.0.1:0" for an
// ephemeral port).
func StartNameNode(addr string) (*NameNode, error) {
	srv, err := rpcnet.NewServer(addr)
	if err != nil {
		return nil, err
	}
	nn := &NameNode{
		srv:   srv,
		files: make(map[string][]BlockInfo),
		nodes: make(map[string]*dnState),
		stop:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	srv.Handle("Register", nn.handleRegister)
	srv.Handle("Allocate", nn.handleAllocate)
	srv.Handle("Confirm", nn.handleConfirm)
	srv.Handle("Lookup", nn.handleLookup)
	srv.Handle("List", nn.handleList)
	srv.Handle("Delete", nn.handleDelete)
	srv.Handle("DecommissionDN", nn.handleDecommissionDN)
	srv.Handle("ListDataNodes", nn.handleListDataNodes)
	go nn.sweep()
	return nn, nil
}

// Addr returns the NameNode's RPC address.
func (nn *NameNode) Addr() string { return nn.srv.Addr() }

// Close stops the liveness sweep and the server.
func (nn *NameNode) Close() error {
	nn.mu.Lock()
	select {
	case <-nn.stop:
	default:
		close(nn.stop)
	}
	nn.mu.Unlock()
	<-nn.done
	return nn.srv.Close()
}

// want is the effective replication target. Callers hold nn.mu.
func (nn *NameNode) want() int {
	if nn.Replication > 0 {
		return nn.Replication
	}
	return DefaultReplication
}

// sweepInterval paces the liveness sweep; fine-grained enough for the
// millisecond heartbeats tests run, cheap enough to always tick.
const sweepInterval = 20 * time.Millisecond

// sweep is the liveness loop: every tick it declares DataNodes that
// missed DeadAfter dead, prunes their replicas, and re-replicates any
// block left under target. All RPC work happens outside nn.mu.
func (nn *NameNode) sweep() {
	defer close(nn.done)
	ticker := time.NewTicker(sweepInterval)
	defer ticker.Stop()
	for {
		select {
		case <-nn.stop:
			return
		case <-ticker.C:
		}
		nn.mu.Lock()
		changed := false
		if nn.DeadAfter > 0 {
			now := time.Now()
			for _, d := range nn.nodes {
				if !d.dead && now.Sub(d.lastSeen) > nn.DeadAfter {
					d.dead = true
					changed = true
				}
			}
		}
		if changed {
			nn.pruneUnservedLocked()
		}
		nn.mu.Unlock()
		if changed {
			nn.Repair()
		}
	}
}

// pruneUnservedLocked drops dead nodes from every replica list (a dead
// replica is never the only one pruned away: a block whose every home
// is dead keeps its list so a rejoin can resurrect it). Callers hold
// nn.mu.
func (nn *NameNode) pruneUnservedLocked() {
	for _, blocks := range nn.files {
		for i := range blocks {
			nn.pruneBlockLocked(&blocks[i], func(d *dnState) bool { return d.dead })
		}
	}
}

// pruneBlockLocked removes replicas matching gone from blk, keeping at
// least one replica, and keeps Addr/Racks consistent. Callers hold
// nn.mu.
func (nn *NameNode) pruneBlockLocked(blk *BlockInfo, gone func(*dnState) bool) {
	addrs := blk.ReplicaAddrs()
	keptA := make([]string, 0, len(addrs))
	keptR := make([]string, 0, len(addrs))
	var dropped []*dnState
	for i, addr := range addrs {
		d := nn.nodes[addr]
		if d != nil && gone(d) {
			dropped = append(dropped, d)
			continue
		}
		keptA = append(keptA, addr)
		keptR = append(keptR, nn.rackOfLocked(addr, blk.RackOfReplica(i)))
	}
	if len(keptA) == 0 {
		return // every home is gone: keep the list for a rejoin
	}
	for _, d := range dropped {
		d.load--
	}
	blk.Replicas, blk.Racks, blk.Addr = keptA, keptR, keptA[0]
}

// rackOfLocked resolves addr's current rack, falling back to the
// recorded one for nodes no longer known. Callers hold nn.mu.
func (nn *NameNode) rackOfLocked(addr, recorded string) string {
	if d := nn.nodes[addr]; d != nil {
		return d.rack
	}
	if recorded != "" {
		return recorded
	}
	return topo.DefaultRack
}

func (nn *NameNode) handleRegister(body []byte) (any, error) {
	var args RegisterArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	rack := args.Rack
	if rack == "" {
		rack = topo.DefaultRack
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	d := nn.nodes[args.Addr]
	if d == nil {
		d = &dnState{addr: args.Addr, rack: rack}
		nn.nodes[args.Addr] = d
		nn.order = append(nn.order, args.Addr)
	}
	// Heartbeat refresh: a dead node re-registering rejoins cleanly
	// with its stored blocks counted again once re-confirmed; rack
	// moves (a re-racked rejoin) are honoured.
	d.rack = rack
	d.lastSeen = time.Now()
	d.dead = false
	return RegisterReply{Draining: d.draining}, nil
}

// placeableNodes lists nodes new replicas may land on, in registration
// order. Callers hold nn.mu.
func (nn *NameNode) placeableNodes() []*dnState {
	out := make([]*dnState, 0, len(nn.order))
	for _, addr := range nn.order {
		if d := nn.nodes[addr]; d != nil && d.placeable() {
			out = append(out, d)
		}
	}
	return out
}

// pickTarget chooses the next replica home among candidates not in
// have: first the least-loaded node on a rack the replica set misses
// (the HDFS rack-spread rule), then the least-loaded anywhere. Returns
// nil when every candidate already holds a copy. Callers hold nn.mu.
func pickTarget(candidates []*dnState, have []string, haveRacks map[string]bool) *dnState {
	var best *dnState
	bestOffRack := false
	for _, d := range candidates {
		if slices.Contains(have, d.addr) {
			continue
		}
		offRack := !haveRacks[d.rack]
		switch {
		case best == nil,
			offRack && !bestOffRack,
			offRack == bestOffRack && d.load < best.load:
			best, bestOffRack = d, offRack
		}
	}
	return best
}

func (nn *NameNode) handleAllocate(body []byte) (any, error) {
	var args AllocateArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	candidates := nn.placeableNodes()
	if len(candidates) == 0 {
		return nil, fmt.Errorf("netmr: no datanodes registered")
	}
	// Primary placement: writer locality first, then least-loaded.
	var primary *dnState
	if args.Preferred != "" {
		for _, d := range candidates {
			if d.addr == args.Preferred {
				primary = d
				break
			}
		}
	}
	if primary == nil {
		primary = pickTarget(candidates, nil, map[string]bool{})
	}
	// Secondary replicas spread across racks: each pick prefers a rack
	// the replica set does not cover yet, so a dead node — or a dead
	// rack — never takes the only copy of a block with it.
	replicas := []string{primary.addr}
	racks := []string{primary.rack}
	haveRacks := map[string]bool{primary.rack: true}
	want := nn.want()
	if want > len(candidates) {
		want = len(candidates)
	}
	for len(replicas) < want {
		d := pickTarget(candidates, replicas, haveRacks)
		if d == nil {
			break
		}
		replicas = append(replicas, d.addr)
		racks = append(racks, d.rack)
		haveRacks[d.rack] = true
	}
	blk := BlockInfo{ID: nn.nextBlock, Size: args.Size, Addr: primary.addr,
		Replicas: replicas, Racks: racks}
	nn.nextBlock++
	for _, addr := range replicas {
		nn.nodes[addr].load++
	}
	nn.files[args.File] = append(nn.files[args.File], blk)
	return AllocateReply{Block: blk}, nil
}

// handleConfirm records which replicas of a freshly allocated block
// the writer actually stored: placement targets that were down at
// write time are pruned, so readers never chase a replica that was
// never written. The liveness sweep's repair pass restores the lost
// copies later.
func (nn *NameNode) handleConfirm(body []byte) (any, error) {
	var args ConfirmArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	if len(args.Replicas) == 0 {
		return nil, fmt.Errorf("netmr: confirm of block %d with no replicas", args.BlockID)
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	blocks := nn.files[args.File]
	for i := range blocks {
		if blocks[i].ID != args.BlockID {
			continue
		}
		for _, addr := range blocks[i].ReplicaAddrs() {
			if !slices.Contains(args.Replicas, addr) {
				if d := nn.nodes[addr]; d != nil {
					d.load--
				}
			}
		}
		blocks[i].Replicas = append([]string(nil), args.Replicas...)
		blocks[i].Racks = make([]string, len(args.Replicas))
		for j, addr := range args.Replicas {
			blocks[i].Racks[j] = nn.rackOfLocked(addr, "")
		}
		blocks[i].Addr = args.Replicas[0]
		return ConfirmReply{}, nil
	}
	return nil, fmt.Errorf("netmr: confirm of unknown block %d in %q", args.BlockID, args.File)
}

// repairOp is one planned re-replication: src pushes block id of file
// to dst.
type repairOp struct {
	file string
	id   int64
	src  string
	dst  string
}

// Repair runs one re-replication pass: every block whose serving
// replica count sits below the replication target gains copies on the
// least-loaded placeable nodes, racks the replica set misses first.
// The plan is computed under nn.mu; the block transfers are DataNode→
// DataNode Replicate RPCs issued with the lock released, and each
// success commits back under the lock. It returns the number of
// replicas restored and is safe to call concurrently (one pass runs at
// a time; extra calls return immediately).
func (nn *NameNode) Repair() int {
	nn.mu.Lock()
	if nn.repairing {
		nn.mu.Unlock()
		return 0
	}
	nn.repairing = true
	ops := nn.planRepairsLocked()
	nn.mu.Unlock()

	restored := 0
	for _, op := range ops {
		if nn.replicate(op) {
			restored++
		}
	}
	nn.mu.Lock()
	nn.repairing = false
	nn.mu.Unlock()
	return restored
}

// planRepairsLocked builds the re-replication plan: one op per missing
// replica. Sources may be draining nodes (they still serve); targets
// are placeable only. Callers hold nn.mu.
func (nn *NameNode) planRepairsLocked() []repairOp {
	candidates := nn.placeableNodes()
	if len(candidates) == 0 {
		return nil
	}
	var ops []repairOp
	files := make([]string, 0, len(nn.files))
	for f := range nn.files {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, blk := range nn.files[f] {
			served := ""
			have := append([]string(nil), blk.ReplicaAddrs()...)
			haveRacks := make(map[string]bool)
			healthy := 0
			for i, addr := range blk.ReplicaAddrs() {
				d := nn.nodes[addr]
				if d == nil || d.dead {
					continue
				}
				if served == "" {
					served = addr
				}
				if d.placeable() {
					healthy++
					haveRacks[nn.rackOfLocked(addr, blk.RackOfReplica(i))] = true
				}
			}
			if served == "" {
				continue // no live source: nothing to copy from
			}
			want := nn.want()
			if want > len(candidates) {
				want = len(candidates)
			}
			for healthy < want {
				d := pickTarget(candidates, have, haveRacks)
				if d == nil {
					break
				}
				ops = append(ops, repairOp{file: f, id: blk.ID, src: served, dst: d.addr})
				have = append(have, d.addr)
				haveRacks[d.rack] = true
				healthy++
			}
		}
	}
	return ops
}

// replicate executes one planned transfer — dial the source, have it
// push the block — and commits the new replica to the block's metadata
// on success. Runs without nn.mu held; the commit step re-validates
// against concurrent deletes.
func (nn *NameNode) replicate(op repairOp) bool {
	src, err := rpcnet.Dial(op.src)
	if err != nil {
		return false
	}
	defer src.Close()
	err = src.CallTimeout("Replicate", ReplicateArgs{ID: op.id, Target: op.dst}, nil, dataCallTimeout)
	if err != nil {
		return false
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	blocks := nn.files[op.file]
	for i := range blocks {
		if blocks[i].ID != op.id {
			continue
		}
		if slices.Contains(blocks[i].ReplicaAddrs(), op.dst) {
			return false // raced with another pass
		}
		// Normalize legacy single-addr records before appending.
		blocks[i].Replicas = blocks[i].ReplicaAddrs()
		for len(blocks[i].Racks) < len(blocks[i].Replicas) {
			blocks[i].Racks = append(blocks[i].Racks,
				nn.rackOfLocked(blocks[i].Replicas[len(blocks[i].Racks)], ""))
		}
		blocks[i].Replicas = append(blocks[i].Replicas, op.dst)
		blocks[i].Racks = append(blocks[i].Racks, nn.rackOfLocked(op.dst, ""))
		if d := nn.nodes[op.dst]; d != nil {
			d.load++
		}
		return true
	}
	return false
}

// handleDecommissionDN gracefully retires a DataNode: it is marked
// draining (no new placements), every block it serves is re-replicated
// until the survivors alone meet the replication target, and only then
// is it dropped from the replica lists and the membership view. The
// node keeps serving reads throughout, so the cluster never dips below
// its pre-decommission redundancy.
func (nn *NameNode) handleDecommissionDN(body []byte) (any, error) {
	var args DecommissionDNArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	if err := nn.DecommissionDataNode(args.Addr); err != nil {
		return nil, err
	}
	return DecommissionDNReply{}, nil
}

// DecommissionDataNode is the in-process form of the DecommissionDN
// RPC. It blocks until the node's blocks are re-replicated and the
// node is removed from the membership view.
func (nn *NameNode) DecommissionDataNode(addr string) error {
	nn.mu.Lock()
	d := nn.nodes[addr]
	if d == nil {
		nn.mu.Unlock()
		return fmt.Errorf("netmr: unknown datanode %q", addr)
	}
	d.draining = true
	nn.mu.Unlock()

	// Restore the replication target without the draining node: its
	// copies no longer count as healthy, so every block it holds gains
	// a home elsewhere (racks the set misses first).
	nn.Repair()

	nn.mu.Lock()
	defer nn.mu.Unlock()
	for _, blocks := range nn.files {
		for i := range blocks {
			nn.pruneBlockLocked(&blocks[i], func(n *dnState) bool { return n.addr == addr })
		}
	}
	delete(nn.nodes, addr)
	nn.order = slices.DeleteFunc(nn.order, func(a string) bool { return a == addr })
	return nil
}

// handleListDataNodes reports the membership view.
func (nn *NameNode) handleListDataNodes(body []byte) (any, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var reply ListDataNodesReply
	for _, addr := range nn.order {
		d := nn.nodes[addr]
		if d == nil {
			continue
		}
		reply.Nodes = append(reply.Nodes, DataNodeInfo{
			Addr: d.addr, Rack: d.rack, State: d.state(), Blocks: d.load,
		})
	}
	return reply, nil
}

func (nn *NameNode) handleLookup(body []byte) (any, error) {
	var args LookupArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	blocks, ok := nn.files[args.File]
	if !ok {
		return nil, fmt.Errorf("netmr: file %q not found", args.File)
	}
	out := make([]BlockInfo, len(blocks))
	copy(out, blocks)
	return LookupReply{Blocks: out}, nil
}

func (nn *NameNode) handleList(body []byte) (any, error) {
	nn.mu.Lock()
	defer nn.mu.Unlock()
	var names []string
	for f := range nn.files {
		names = append(names, f)
	}
	sort.Strings(names)
	return ListReply{Files: names}, nil
}

func (nn *NameNode) handleDelete(body []byte) (any, error) {
	var args DeleteArgs
	if err := rpcnet.Unmarshal(body, &args); err != nil {
		return nil, err
	}
	nn.mu.Lock()
	defer nn.mu.Unlock()
	if _, ok := nn.files[args.File]; !ok {
		return nil, fmt.Errorf("netmr: file %q not found", args.File)
	}
	for _, blk := range nn.files[args.File] {
		for _, addr := range blk.ReplicaAddrs() {
			if d := nn.nodes[addr]; d != nil {
				d.load--
			}
		}
	}
	delete(nn.files, args.File)
	return DeleteReply{}, nil
}
