package netmr

import (
	"bytes"
	"testing"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/rpcnet"
)

// splitKeysFor samples every key in data and cuts parts-1 quantile
// split keys — the test-side stand-in for the engine's reservoir
// sampling pass.
func splitKeysFor(t *testing.T, data []byte, parts int) [][]byte {
	t.Helper()
	var sample [][]byte
	for off := 0; off+kernels.SortRecordBytes <= len(data); off += kernels.SortRecordBytes {
		sample = append(sample, data[off:off+kernels.SortKeyBytes])
	}
	keys := kernels.SplitKeysFromSample(sample, parts)
	if len(keys) != parts-1 {
		t.Fatalf("got %d split keys for %d parts", len(keys), parts)
	}
	return keys
}

// TestRangePartitionedSortStreamsInOrder pins the tentpole invariant:
// with range partitioning, reduce r's streamed output strictly
// precedes reduce r+1's, so the plain WaitOutput concatenation is the
// globally sorted file — bit-identical to the hash-partitioned inline
// sort, with zero post-reduce merge.
func TestRangePartitionedSortStreamsInOrder(t *testing.T) {
	c, err := StartCluster(3, 2, 2_000, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	data := sortableRecords(t, 300) // 30 KB
	if err := c.Client.WriteFile("/records", data, ""); err != nil {
		t.Fatal(err)
	}
	// Hash-partitioned inline job: the reference output (merged by the
	// JobTracker's final Reduce).
	raw, err := c.Client.SubmitAndWait(JobSpec{
		Name: "sort-hash", Kernel: "sort", Input: "/records", NumReducers: 4,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var want []byte
	if err := rpcnet.Unmarshal(raw, &want); err != nil {
		t.Fatal(err)
	}
	id, err := c.Client.Submit(JobSpec{
		Name: "sort-range", Kernel: "sort", Input: "/records", NumReducers: 4,
		SplitKeys: splitKeysFor(t, data, 4), StreamOutput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	var got bytes.Buffer
	n, err := c.Client.WaitOutput(id, 30*time.Second, &got, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(len(want)) {
		t.Fatalf("streamed %d bytes, reference has %d", n, len(want))
	}
	if !bytes.Equal(got.Bytes(), want) {
		t.Fatal("range-partitioned concatenation differs from the hash-sorted reference")
	}
}

// TestSubmitRejectsBadSplitKeys pins the API-boundary validation:
// split keys must number exactly NumReducers-1 and be sorted.
func TestSubmitRejectsBadSplitKeys(t *testing.T) {
	c := startTestCluster(t, 1, 2_000)
	data := sortableRecords(t, 10)
	if err := c.Client.WriteFile("/records", data, ""); err != nil {
		t.Fatal(err)
	}
	_, err := c.Client.Submit(JobSpec{
		Name: "bad-count", Kernel: "sort", Input: "/records", NumReducers: 4,
		SplitKeys: [][]byte{{0x10}, {0x20}}, // want 3
	})
	if err == nil {
		t.Error("wrong split key count accepted")
	}
	_, err = c.Client.Submit(JobSpec{
		Name: "bad-order", Kernel: "sort", Input: "/records", NumReducers: 3,
		SplitKeys: [][]byte{{0x20}, {0x10}},
	})
	if err == nil {
		t.Error("unsorted split keys accepted")
	}
}

// TestFetchWindowBoundsOutstanding pins the credit invariant on the
// shuffle plane: with a deliberately tiny fetch window, a sort whose
// reducers pull partitions from remote trackers never holds more
// outstanding fetch bytes than the window grants — the tracker-wide
// peak (which bounds every reducer's share a fortiori) stays at or
// under the limit, provably, under the race detector.
func TestFetchWindowBoundsOutstanding(t *testing.T) {
	const window = 64 << 10
	c, err := StartCluster(3, 2, 2_000, 10*time.Millisecond,
		WithFetchWindow(window), WithSpill(t.TempDir(), 0, nil))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	data := sortableRecords(t, 600) // 60 KB across ~30 blocks
	if err := c.Client.WriteFile("/records", data, ""); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Client.SubmitAndWait(JobSpec{
		Name: "sort-windowed", Kernel: "sort", Input: "/records", NumReducers: 4,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var sorted []byte
	if err := rpcnet.Unmarshal(raw, &sorted); err != nil {
		t.Fatal(err)
	}
	if len(sorted) != len(data) {
		t.Fatalf("sorted %d bytes of %d", len(sorted), len(data))
	}
	credited := false
	for _, tt := range c.TTs {
		if got := tt.FetchWindowLimit(); got != window {
			t.Fatalf("tracker %s fetch window %d, configured %d", tt.ID, got, window)
		}
		peak := tt.FetchWindowPeak()
		if peak > window {
			t.Errorf("tracker %s peak outstanding fetch bytes %d exceed window %d", tt.ID, peak, window)
		}
		if peak > 0 {
			credited = true
		}
	}
	if !credited {
		t.Fatal("no tracker acquired fetch credit — shuffle ran without the window?")
	}
}
