package netmr

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/rpcnet"
)

// The multi-tenant job service: one long-running JobTracker accepting
// concurrent submissions from several tenants, weighted fair-share
// grants across the shared tracker fleet, quota-based admission
// control, and Kill releasing a tenant's state without touching its
// neighbours.

// piSpec builds a deterministic pi job of nTasks tasks.
func piSpec(name string, nTasks int, samplesPerTask int64) JobSpec {
	return JobSpec{
		Name:     name,
		Kernel:   "pi",
		Samples:  samplesPerTask * int64(nTasks),
		NumTasks: nTasks,
		Seed:     7,
	}
}

// TestServiceFairShareAcrossTenants runs four concurrent jobs from two
// tenants with a 3:1 weight ratio against one JobTracker and checks
// (a) cumulative grants track the weights within 25% while both
// tenants have work, and (b) every concurrent result is bit-identical
// to the same job submitted sequentially afterwards.
func TestServiceFairShareAcrossTenants(t *testing.T) {
	svc, err := StartService(2, 2, 64_000, 2*time.Millisecond, WithQuotas(map[string]Quota{
		"alice": {Weight: 1},
		"bob":   {Weight: 3},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	alice, err := svc.ClientFor("alice")
	if err != nil {
		t.Fatal(err)
	}
	bob, err := svc.ClientFor("bob")
	if err != nil {
		t.Fatal(err)
	}

	// Two jobs per tenant, identical work shapes: 100 sub-millisecond
	// tasks each, so grant counts are the workload in both cases.
	const tasksPerJob = 100
	specs := map[string]JobSpec{}
	ids := map[string]int64{}
	for _, sub := range []struct {
		tc   *TenantClient
		name string
	}{
		{alice, "alice-0"}, {bob, "bob-0"}, {alice, "alice-1"}, {bob, "bob-1"},
	} {
		spec := piSpec(sub.name, tasksPerJob, 1000)
		id, err := sub.tc.Submit(spec)
		if err != nil {
			t.Fatalf("submit %s: %v", sub.name, err)
		}
		specs[sub.name], ids[sub.name] = spec, id
	}

	// Sample the grant counters the moment bob's workload is fully
	// granted — before bob drains, the 3:1 weights should have held on
	// every heartbeat, so alice sits near a third of bob's grants.
	const bobTotal = 2 * tasksPerJob
	var aliceAtBobDone int64
	deadline := time.Now().Add(30 * time.Second)
	for {
		stats := svc.TenantStats()
		if stats["bob"].Granted >= bobTotal {
			aliceAtBobDone = stats["alice"].Granted
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("bob never reached %d grants: %+v", bobTotal, stats)
		}
		time.Sleep(500 * time.Microsecond)
	}
	wantAlice := float64(bobTotal) / 3
	if ratio := float64(aliceAtBobDone) / wantAlice; ratio < 0.75 || ratio > 1.25 {
		t.Errorf("fair share: alice got %d grants when bob hit %d, want %.0f ±25%% for weights 1:3",
			aliceAtBobDone, bobTotal, wantAlice)
	}

	// Every concurrent job completes, and bit-identically to the same
	// spec submitted sequentially on the same (now idle) service.
	results := map[string][]byte{}
	for name, id := range ids {
		tc := alice
		if name[0] == 'b' {
			tc = bob
		}
		raw, err := tc.Wait(id, 30*time.Second)
		if err != nil {
			t.Fatalf("wait %s: %v", name, err)
		}
		results[name] = raw
	}
	for name, spec := range specs {
		tc := alice
		if name[0] == 'b' {
			tc = bob
		}
		seq, err := tc.SubmitAndWait(spec, 30*time.Second)
		if err != nil {
			t.Fatalf("sequential %s: %v", name, err)
		}
		if !bytes.Equal(results[name], seq) {
			t.Errorf("%s: concurrent result differs from sequential run", name)
		}
	}
}

// TestServiceQuotaMaxJobs pins the typed admission rejection: a tenant
// at its concurrent-job cap gets ErrQuotaExceeded across the RPC
// boundary, and regains admission once a job finishes.
func TestServiceQuotaMaxJobs(t *testing.T) {
	svc, err := StartService(2, 2, 64_000, 2*time.Millisecond, WithQuotas(map[string]Quota{
		"carol": {MaxJobs: 1},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	carol, err := svc.ClientFor("carol")
	if err != nil {
		t.Fatal(err)
	}
	id, err := carol.Submit(piSpec("carol-0", 50, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := carol.Submit(piSpec("carol-1", 2, 1000)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("second submit at MaxJobs=1: error %v, want ErrQuotaExceeded", err)
	}
	// Other tenants are not throttled by carol's quota.
	dave, err := svc.ClientFor("dave")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dave.SubmitAndWait(piSpec("dave-0", 2, 1000), 30*time.Second); err != nil {
		t.Fatalf("unthrottled tenant rejected: %v", err)
	}
	if _, err := carol.Wait(id, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := carol.SubmitAndWait(piSpec("carol-2", 2, 1000), 30*time.Second); err != nil {
		t.Fatalf("submit after job finished: %v", err)
	}
}

// TestServiceQuotaMaxQueued pins the admission queue: with MaxQueued
// room, an over-cap submission parks instead of being rejected,
// promotes automatically when a running job finishes, and completes —
// while submissions past the queue cap still get the typed rejection.
func TestServiceQuotaMaxQueued(t *testing.T) {
	svc, err := StartService(2, 2, 64_000, 2*time.Millisecond, WithQuotas(map[string]Quota{
		"frank": {MaxJobs: 1, MaxQueued: 1},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	frank, err := svc.ClientFor("frank")
	if err != nil {
		t.Fatal(err)
	}
	running, err := frank.Submit(piSpec("frank-0", 50, 100_000))
	if err != nil {
		t.Fatal(err)
	}
	// Over the job cap, inside the queue cap: accepted, parked.
	queued, err := frank.Submit(piSpec("frank-1", 2, 1000))
	if err != nil {
		t.Fatalf("submit with queue room rejected: %v", err)
	}
	// Queue full too: now the typed rejection fires.
	if _, err := frank.Submit(piSpec("frank-2", 2, 1000)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("submit past MaxQueued: error %v, want ErrQuotaExceeded", err)
	}
	// The queued job promotes once the running one finishes, and both
	// complete.
	if _, err := frank.Wait(running, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	if _, err := frank.Wait(queued, 30*time.Second); err != nil {
		t.Fatalf("queued job never promoted: %v", err)
	}
}

// TestServiceSpillQuotaAndKillRelease drives the byte-budget quota
// end to end: a tenant whose streamed outputs sit unreleased on the
// trackers is refused new work once past its SpillBytes budget, and
// Kill releases the held state, restoring admission.
func TestServiceSpillQuotaAndKillRelease(t *testing.T) {
	svc, err := StartService(2, 2, 1000, 2*time.Millisecond, WithQuotas(map[string]Quota{
		"erin": {SpillBytes: 1},
	}))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	erin, err := svc.ClientFor("erin")
	if err != nil {
		t.Fatal(err)
	}
	plain := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16 KB
	if err := erin.WriteFile("/plain", plain, ""); err != nil {
		t.Fatal(err)
	}
	args, err := rpcnet.Marshal(AESArgs{
		Key: []byte("0123456789abcdef"), IV: make([]byte, 16), BlockBytes: 1000,
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := erin.Submit(JobSpec{
		Name: "enc", Kernel: "aes-ctr", Input: "/plain", Args: args, StreamOutput: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := erin.Wait(id, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// The ciphertext pieces stay on the trackers until released;
	// heartbeats report them and the budget check sees them.
	waitHeld := func(want bool) {
		t.Helper()
		deadline := time.Now().Add(10 * time.Second)
		for {
			held := svc.TenantStats()["erin"].HeldBytes
			if (held > 0) == want {
				return
			}
			if time.Now().After(deadline) {
				t.Fatalf("erin held bytes never became %v (at %d)", want, held)
			}
			time.Sleep(time.Millisecond)
		}
	}
	waitHeld(true)
	if _, err := erin.Submit(piSpec("erin-1", 2, 1000)); !errors.Is(err, ErrQuotaExceeded) {
		t.Fatalf("submit over spill budget: error %v, want ErrQuotaExceeded", err)
	}
	// Kill on a finished streamed job releases its outputs.
	if err := erin.Kill(id); err != nil {
		t.Fatal(err)
	}
	waitHeld(false)
	if _, err := erin.SubmitAndWait(piSpec("erin-2", 2, 1000), 30*time.Second); err != nil {
		t.Fatalf("submit after release: %v", err)
	}
}

// TestServiceKillMidFlightIsolatesTenants kills one tenant's job while
// both tenants run shuffle jobs on the shared fleet: the other
// tenant's job must complete with the exact serial-reference result,
// and the killed job's shuffle state must drain from every tracker.
func TestServiceKillMidFlightIsolatesTenants(t *testing.T) {
	corpus := shuffleCorpus(50_000, 97)
	delays := []time.Duration{5 * time.Millisecond, 5 * time.Millisecond, 5 * time.Millisecond}
	svc, err := StartService(3, 2, 1000, 2*time.Millisecond, WithTrackerDelays(delays))
	if err != nil {
		t.Fatal(err)
	}
	defer svc.Close()
	frank, err := svc.ClientFor("frank")
	if err != nil {
		t.Fatal(err)
	}
	grace, err := svc.ClientFor("grace")
	if err != nil {
		t.Fatal(err)
	}
	if err := frank.WriteFile("/corpus", corpus, ""); err != nil {
		t.Fatal(err)
	}
	wcSpec := func(name string) JobSpec {
		return JobSpec{Name: name, Kernel: "wordcount", Input: "/corpus", NumReducers: 3}
	}
	victimID, err := frank.Submit(wcSpec("victim"))
	if err != nil {
		t.Fatal(err)
	}
	survivorID, err := grace.Submit(wcSpec("survivor"))
	if err != nil {
		t.Fatal(err)
	}
	// Let the victim make real progress (shuffle stores holding its
	// partitions) before the kill.
	deadline := time.Now().Add(20 * time.Second)
	for {
		st, err := frank.Status(victimID)
		if err != nil {
			t.Fatal(err)
		}
		if st.Completed > 0 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("victim job never made progress")
		}
		time.Sleep(time.Millisecond)
	}
	// A tenant cannot kill another tenant's job.
	if err := grace.Kill(victimID); err == nil {
		t.Error("cross-tenant kill succeeded, want refusal")
	}
	if err := frank.Kill(victimID); err != nil {
		t.Fatal(err)
	}
	if _, err := frank.Wait(victimID, 30*time.Second); err == nil {
		t.Error("killed job's Wait returned success, want killed error")
	}
	// The survivor completes bit-identically to the serial reference.
	raw, err := grace.Wait(survivorID, 60*time.Second)
	if err != nil {
		t.Fatalf("survivor after neighbour kill: %v", err)
	}
	var counts map[string]int64
	if err := rpcnet.Unmarshal(raw, &counts); err != nil {
		t.Fatal(err)
	}
	want := kernels.WordCount(corpus)
	if len(counts) != len(want) {
		t.Fatalf("survivor counted %d distinct words, want %d", len(counts), len(want))
	}
	for w, n := range want {
		if counts[w] != n {
			t.Fatalf("survivor count[%s] = %d, want %d", w, counts[w], n)
		}
	}
	// The killed job's shuffle state drains from every tracker (late
	// in-flight attempts may re-store a partition once, then the next
	// heartbeat purges it).
	drained := func() bool {
		for _, tt := range svc.Cluster().TTs {
			if tt.JobHeldBytes(victimID) > 0 {
				return false
			}
		}
		return true
	}
	deadline = time.Now().Add(20 * time.Second)
	for !drained() {
		if time.Now().After(deadline) {
			var report []string
			for _, tt := range svc.Cluster().TTs {
				report = append(report, fmt.Sprintf("%d", tt.JobHeldBytes(victimID)))
			}
			t.Fatalf("killed job still holds store bytes per tracker: %v", report)
		}
		time.Sleep(time.Millisecond)
	}
	// Lifecycle surfaces agree: the victim is terminal with a killed
	// error, the tenant has no active jobs, the survivor shows done.
	jobs, err := frank.ListJobs()
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1 || !jobs[0].Done || jobs[0].Err == "" {
		t.Errorf("frank's job listing = %+v, want one terminal killed job", jobs)
	}
	if stats := svc.TenantStats(); stats["frank"].ActiveJobs != 0 {
		t.Errorf("killed tenant still has %d active jobs", stats["frank"].ActiveJobs)
	}
	all, err := frank.Client.ListJobs("")
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Errorf("unfiltered listing has %d jobs, want 2", len(all))
	}
}
