package netmr

import (
	"bytes"
	"fmt"
	"strings"
	"testing"
	"time"

	"hetmr/internal/kernels"
	"hetmr/internal/rpcnet"
)

// The distributed shuffle/reduce data plane: map outputs stay in the
// mapper trackers' shuffle stores, reducers pull partitions directly,
// and the JobTracker moves metadata — with results bit-identical to
// the centralized reduce, including under a tracker killed mid-job.

// shuffleCorpus builds a word corpus whose 5-byte words never straddle
// the given block size, with vocab distinct words repeating across
// blocks — repetition is what makes the centralized path ship far more
// bytes than the merged reduce outputs.
func shuffleCorpus(byteLen, vocab int) []byte {
	var sb strings.Builder
	for i := 0; sb.Len() < byteLen; i++ {
		fmt.Fprintf(&sb, "w%03d ", i%vocab)
	}
	return []byte(sb.String()[:byteLen])
}

// runWordCount submits one wordcount job with the given reduce-task
// count and returns the decoded result plus the JobTracker's data
// plane byte meter after the run.
func runWordCount(t *testing.T, reducers int, corpus []byte, blockSize int64) (map[string]int64, int64) {
	t.Helper()
	c, err := StartCluster(3, 2, blockSize, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Client.WriteFile("/corpus", corpus, ""); err != nil {
		t.Fatal(err)
	}
	raw, err := c.Client.SubmitAndWait(JobSpec{
		Name: "wc", Kernel: "wordcount", Input: "/corpus", NumReducers: reducers,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var counts map[string]int64
	if err := rpcnet.Unmarshal(raw, &counts); err != nil {
		t.Fatal(err)
	}
	return counts, c.JT.DataPlaneBytes()
}

func TestDistributedShuffleWordCountMatchesCentralized(t *testing.T) {
	// 1000-byte blocks of 5-byte words: words never straddle blocks,
	// so the serial reference needs no block-boundary care.
	corpus := shuffleCorpus(100_000, 97)
	central, centralBytes := runWordCount(t, 0, corpus, 1000)
	dist, distBytes := runWordCount(t, 3, corpus, 1000)

	want := kernels.WordCount(corpus)
	if len(dist) != len(want) || len(central) != len(want) {
		t.Fatalf("distinct words: distributed %d, centralized %d, reference %d",
			len(dist), len(central), len(want))
	}
	for w, n := range want {
		if dist[w] != n || central[w] != n {
			t.Fatalf("count[%s] = %d (distributed) / %d (centralized), want %d",
				w, dist[w], central[w], n)
		}
	}
	// The tentpole claim: the JobTracker no longer transports map
	// output bytes. Centralized heartbeats carry one partial table per
	// block; distributed heartbeats carry only the R merged reduce
	// outputs, bounded by the vocabulary — O(metadata), not O(input).
	if distBytes*4 > centralBytes {
		t.Errorf("heartbeat data plane: distributed %d B vs centralized %d B — shuffle moved no traffic off the JobTracker",
			distBytes, centralBytes)
	}
	t.Logf("heartbeat data plane: centralized %d B, distributed %d B", centralBytes, distBytes)
}

func TestDistributedShuffleHeartbeatStaysMetadataSized(t *testing.T) {
	// Doubling the input must not double the distributed plane's
	// heartbeat bytes: reduce outputs are bounded by the vocabulary.
	_, small := runWordCount(t, 3, shuffleCorpus(50_000, 97), 1000)
	_, large := runWordCount(t, 3, shuffleCorpus(200_000, 97), 1000)
	if large > small*2 {
		t.Errorf("heartbeat bytes grew with input: %d B at 50KB vs %d B at 200KB", small, large)
	}
}

func TestDistributedShuffleSortMatchesCentralized(t *testing.T) {
	input := kernels.GenerateSortRecords(2009, 2000) // 200 KB
	run := func(reducers int) []byte {
		c, err := StartCluster(3, 2, 5000, 10*time.Millisecond)
		if err != nil {
			t.Fatal(err)
		}
		defer c.Shutdown()
		if err := c.Client.WriteFile("/records", input, ""); err != nil {
			t.Fatal(err)
		}
		raw, err := c.Client.SubmitAndWait(JobSpec{
			Name: "sort", Kernel: "sort", Input: "/records", NumReducers: reducers,
		}, 30*time.Second)
		if err != nil {
			t.Fatal(err)
		}
		var out []byte
		if err := rpcnet.Unmarshal(raw, &out); err != nil {
			t.Fatal(err)
		}
		return out
	}
	central := run(0)
	dist := run(3)
	if !bytes.Equal(central, dist) {
		t.Fatal("distributed shuffle changed the sort output")
	}
	if sorted, err := kernels.RecordsSorted(dist); err != nil || !sorted {
		t.Fatalf("sort output not sorted (err=%v)", err)
	}
	if len(dist) != len(input) {
		t.Fatalf("sort output %d bytes, want %d", len(dist), len(input))
	}
}

func TestShuffleRerunAfterTrackerDeath(t *testing.T) {
	// Kill a tracker after its map outputs are in the shuffle store
	// but before the reducers fetched them: the fetch failures must
	// reopen the dead tracker's map tasks and the job must still
	// produce the exact result. Every task sleeps 80ms, so the window
	// between "all maps done" and "reduces fetched" is wide.
	corpus := shuffleCorpus(30_000, 31)
	c, err := StartCluster(3, 2, 1000, 10*time.Millisecond,
		WithTaskLease(400*time.Millisecond),
		WithTrackerDelays([]time.Duration{80 * time.Millisecond, 80 * time.Millisecond, 80 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	if err := c.Client.WriteFile("/corpus", corpus, ""); err != nil {
		t.Fatal(err)
	}
	id, err := c.Client.Submit(JobSpec{
		Name: "wc-rerun", Kernel: "wordcount", Input: "/corpus", NumReducers: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	// Wait for the map phase to complete (30 blocks), then kill the
	// tracker holding the most map outputs.
	mapTasks := 30
	var victim *TaskTracker
	for start := time.Now(); ; {
		st, err := c.Client.Status(id)
		if err != nil {
			t.Fatal(err)
		}
		if st.Done {
			t.Fatal("job finished before the kill window — widen the task delay")
		}
		if st.Completed >= mapTasks {
			best := ""
			for w, n := range st.Counts {
				if best == "" || n > st.Counts[best] {
					best = w
				}
			}
			for i, tt := range c.TTs {
				if fmt.Sprintf("tracker-%d", i) == best {
					victim = tt
				}
			}
			break
		}
		if time.Since(start) > 20*time.Second {
			t.Fatal("map phase never completed")
		}
		time.Sleep(2 * time.Millisecond)
	}
	if victim == nil {
		t.Fatal("no tracker credited with map completions")
	}
	victim.Kill()
	raw, err := c.Client.Wait(id, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var counts map[string]int64
	if err := rpcnet.Unmarshal(raw, &counts); err != nil {
		t.Fatal(err)
	}
	want := kernels.WordCount(corpus)
	if len(counts) != len(want) {
		t.Fatalf("got %d words, want %d", len(counts), len(want))
	}
	for w, n := range want {
		if counts[w] != n {
			t.Fatalf("count[%s] = %d, want %d", w, counts[w], n)
		}
	}
	// The dead tracker's map outputs were recomputed: more attempts
	// than the task count.
	st, err := c.Client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.Attempts <= st.Total {
		t.Errorf("attempts = %d with %d tasks: no shuffle re-run happened", st.Attempts, st.Total)
	}
}

func TestShuffleStoreGCAfterJobDone(t *testing.T) {
	c, err := StartCluster(2, 2, 1000, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	corpus := shuffleCorpus(10_000, 13)
	if err := c.Client.WriteFile("/corpus", corpus, ""); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Client.SubmitAndWait(JobSpec{
		Name: "wc-gc", Kernel: "wordcount", Input: "/corpus", NumReducers: 2,
	}, 30*time.Second); err != nil {
		t.Fatal(err)
	}
	// The next heartbeats negotiate the purge: held jobs the
	// JobTracker reports done are dropped from every shuffle store.
	deadline := time.Now().Add(5 * time.Second)
	for {
		held := 0
		for _, tt := range c.TTs {
			ids, _ := tt.store.held()
			held += len(ids)
		}
		if held == 0 {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%d shuffle stores still hold data for the finished job", held)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
