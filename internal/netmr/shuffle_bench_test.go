package netmr

import (
	"fmt"
	"testing"
	"time"
)

// The data-plane benchmark behind the PR's acceptance claim: with the
// distributed shuffle on, the JobTracker stops transporting map output
// bytes. Each case runs one wordcount over a growing input on a fresh
// loopback cluster and reports, alongside wall time, how many task
// output bytes crossed the JobTracker's heartbeat channel (hb_B/op) —
// O(input) on the centralized path, bounded by vocabulary on the
// distributed one.
func BenchmarkShuffleDataPlane(b *testing.B) {
	for _, kb := range []int{64, 256, 1024} {
		corpus := shuffleBenchCorpus(kb << 10)
		for _, mode := range []struct {
			name     string
			reducers int
		}{
			{"centralized", 0},
			{"distributed", 3},
		} {
			b.Run(fmt.Sprintf("%s/input_kb=%d", mode.name, kb), func(b *testing.B) {
				var hbBytes int64
				b.SetBytes(int64(len(corpus)))
				for i := 0; i < b.N; i++ {
					c, err := StartCluster(3, 2, 4096, 5*time.Millisecond)
					if err != nil {
						b.Fatal(err)
					}
					if err := c.Client.WriteFile("/bench", corpus, ""); err != nil {
						c.Shutdown()
						b.Fatal(err)
					}
					if _, err := c.Client.SubmitAndWait(JobSpec{
						Name: "wc-bench", Kernel: "wordcount", Input: "/bench",
						NumReducers: mode.reducers,
					}, 2*time.Minute); err != nil {
						c.Shutdown()
						b.Fatal(err)
					}
					hbBytes += c.JT.DataPlaneBytes()
					c.Shutdown()
				}
				b.ReportMetric(float64(hbBytes)/float64(b.N), "hb_B/op")
			})
		}
	}
}

// shuffleBenchCorpus builds a 4096-byte-block-aligned word corpus with
// a fixed 512-word vocabulary of 8-byte words.
func shuffleBenchCorpus(n int) []byte {
	out := make([]byte, 0, n)
	for i := 0; len(out) < n; i++ {
		out = append(out, []byte(fmt.Sprintf("word%03x ", i%512))...)
	}
	return out[:n]
}
