package netmr

import (
	"testing"
	"time"

	"hetmr/internal/rpcnet"
)

func TestDFSDeleteAndList(t *testing.T) {
	c := startTestCluster(t, 2, 512)
	for _, f := range []string{"/b", "/a", "/c"} {
		if err := c.Client.WriteFile(f, make([]byte, 1000), ""); err != nil {
			t.Fatal(err)
		}
	}
	files, err := c.Client.ListFiles()
	if err != nil {
		t.Fatal(err)
	}
	if len(files) != 3 || files[0] != "/a" || files[2] != "/c" {
		t.Errorf("List = %v, want sorted [/a /b /c]", files)
	}
	// Delete through the raw RPC (the client has no sugar for it).
	nnc, err := rpcnet.Dial(c.NN.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nnc.Close()
	if err := nnc.Call("Delete", DeleteArgs{File: "/b"}, nil); err != nil {
		t.Fatal(err)
	}
	files, _ = c.Client.ListFiles()
	if len(files) != 2 {
		t.Errorf("after delete: %v", files)
	}
	if err := nnc.Call("Delete", DeleteArgs{File: "/b"}, nil); err == nil {
		t.Error("double delete should fail")
	}
	// Deleted file is gone from lookups.
	if _, err := c.Client.ReadFile("/b"); err == nil {
		t.Error("read of deleted file should fail")
	}
}

func TestComputeJobDefaultTaskCount(t *testing.T) {
	c := startTestCluster(t, 1, 512)
	// NumTasks omitted: defaults to one task.
	result, err := c.Client.SubmitAndWait(JobSpec{
		Name: "one", Kernel: "pi", Samples: 1000,
	}, 10*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var pi PiResult
	if err := rpcnet.Unmarshal(result, &pi); err != nil {
		t.Fatal(err)
	}
	if pi.Total != 1000 {
		t.Errorf("total = %d", pi.Total)
	}
}

func TestDataNodeUnknownBlock(t *testing.T) {
	c := startTestCluster(t, 1, 512)
	dnc, err := rpcnet.Dial(c.DNs[0].Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer dnc.Close()
	var get GetReply
	if err := dnc.Call("Get", GetArgs{ID: 9999}, &get); err == nil {
		t.Error("get of unknown block should fail")
	}
}

func TestRegisterIdempotent(t *testing.T) {
	c := startTestCluster(t, 1, 512)
	nnc, err := rpcnet.Dial(c.NN.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nnc.Close()
	// Re-registering the same DataNode address must not duplicate it.
	addr := c.DNs[0].Addr()
	for i := 0; i < 2; i++ {
		if err := nnc.Call("Register", RegisterArgs{Addr: addr}, nil); err != nil {
			t.Fatal(err)
		}
	}
	// Writes still place on the single datanode without error.
	if err := c.Client.WriteFile("/x", make([]byte, 100), ""); err != nil {
		t.Fatal(err)
	}
}

func TestAllocateWithoutDataNodes(t *testing.T) {
	nn, err := StartNameNode("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer nn.Close()
	nnc, err := rpcnet.Dial(nn.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer nnc.Close()
	var alloc AllocateReply
	if err := nnc.Call("Allocate", AllocateArgs{File: "/f", Size: 10}, &alloc); err == nil {
		t.Error("allocation with no datanodes should fail")
	}
}
