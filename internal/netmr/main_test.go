package netmr

import (
	"testing"

	"hetmr/internal/testutil"
)

// TestMain fails the package if any test leaks a goroutine — tracker
// heartbeat loops, shuffle fetchers and cached connections must all
// stop with their cluster.
func TestMain(m *testing.M) {
	testutil.VerifyTestMain(m)
}
