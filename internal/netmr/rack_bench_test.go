package netmr

import (
	"testing"
	"time"

	"hetmr/internal/rpcnet"
)

// The topology benchmark behind the rack-aware scheduling claim: one
// data job on a two-rack, rack-spread-replicated cluster, with the
// trackers' block-fetch locality counters folded into per-op share
// metrics. The flat baseline case runs the same job with no topology
// so the artifact shows what the rack-local grant pass buys:
// node_local + rack_local shares approach 1 and the remote share
// approaches 0 on the racked cluster.
func BenchmarkRackLocality(b *testing.B) {
	data := make([]byte, 64*512)
	for i := range data {
		data[i] = byte(i * 7)
	}
	args, err := rpcnet.Marshal(AESArgs{
		Key: []byte("0123456789abcdef"), IV: make([]byte, 16), BlockBytes: 512,
	})
	if err != nil {
		b.Fatal(err)
	}
	for _, tc := range []struct {
		name  string
		racks int
	}{
		{"flat", 0},
		{"racks=2", 2},
	} {
		b.Run(tc.name, func(b *testing.B) {
			var local, rack, remote int64
			b.SetBytes(int64(len(data)))
			for i := 0; i < b.N; i++ {
				opts := []ClusterOption{WithReplication(2)}
				if tc.racks > 1 {
					opts = append(opts, WithRacks(tc.racks))
				}
				c, err := StartCluster(4, 2, 512, 5*time.Millisecond, opts...)
				if err != nil {
					b.Fatal(err)
				}
				if err := c.Client.WriteFile("/rack-bench", data, ""); err != nil {
					c.Shutdown()
					b.Fatal(err)
				}
				if _, err := c.Client.SubmitAndWait(JobSpec{
					Name: "rack-bench", Kernel: "aes-ctr", Input: "/rack-bench", Args: args,
				}, 2*time.Minute); err != nil {
					c.Shutdown()
					b.Fatal(err)
				}
				l, rk, r := c.FetchTotals()
				local += l
				rack += rk
				remote += r
				c.Shutdown()
			}
			total := local + rack + remote
			if total == 0 {
				b.Fatal("no block fetches recorded")
			}
			b.ReportMetric(float64(local)/float64(total), "node_local_share")
			b.ReportMetric(float64(rack)/float64(total), "rack_local_share")
			b.ReportMetric(float64(remote)/float64(total), "remote_share")
		})
	}
}
