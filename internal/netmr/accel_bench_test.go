package netmr

import "testing"

// BenchmarkSkewedClusterOffload is the CI bench lane's heterogeneous
// data point: one Pi job on a 50%-accelerated cluster (two trackers
// with a per-node Cell device, two host trackers paced at perfmodel's
// PPE rate gap). accel_tasks/host_tasks report the winning-attempt
// split by device kind — the accelerated half of the cluster should
// complete proportionally more tasks, the paper's heterogeneity win
// reproduced on the distributed runtime.
func BenchmarkSkewedClusterOffload(b *testing.B) {
	for i := 0; i < b.N; i++ {
		accel, host, c := skewedClusterCounts(b, 24, 100_000)
		var offloaded int64
		for _, tt := range c.TTs {
			offloaded += tt.AccelTasks()
		}
		c.Shutdown()
		b.ReportMetric(float64(accel), "accel_tasks")
		b.ReportMetric(float64(host), "host_tasks")
		b.ReportMetric(float64(offloaded), "offloads")
		if accel <= host {
			b.Fatalf("accelerated trackers won %d tasks, host trackers %d", accel, host)
		}
	}
}
