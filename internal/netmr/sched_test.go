package netmr

import (
	"testing"
	"time"

	"hetmr/internal/rpcnet"
)

// Dynamic-scheduler behaviour over real sockets: speculation and
// injected stragglers must not change job results, and the board's
// accounting must surface through Status.

func TestSpeculativeStragglerOverTCP(t *testing.T) {
	// Tracker 0 sleeps 150ms per task — well over 10x the real task
	// cost — while its peers heartbeat every 10ms and speculate.
	c, err := StartCluster(3, 2, 1024, 10*time.Millisecond,
		WithSpeculation(true),
		WithTrackerDelays([]time.Duration{150 * time.Millisecond}))
	if err != nil {
		t.Fatal(err)
	}
	defer c.Shutdown()
	id, err := c.Client.Submit(JobSpec{
		Name: "pi-straggler", Kernel: "pi", Samples: 90_000, NumTasks: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	result, err := c.Client.Wait(id, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var pi PiResult
	if err := rpcnet.Unmarshal(result, &pi); err != nil {
		t.Fatal(err)
	}

	// Same job on a healthy cluster without speculation: bit-identical.
	plain := startTestCluster(t, 3, 1024)
	raw, err := plain.Client.SubmitAndWait(JobSpec{
		Name: "pi-plain", Kernel: "pi", Samples: 90_000, NumTasks: 9,
	}, 30*time.Second)
	if err != nil {
		t.Fatal(err)
	}
	var ref PiResult
	if err := rpcnet.Unmarshal(raw, &ref); err != nil {
		t.Fatal(err)
	}
	if pi.Inside != ref.Inside || pi.Total != ref.Total || pi.Pi != ref.Pi {
		t.Errorf("straggler+speculation changed the result: %+v vs %+v", pi, ref)
	}

	// The board's accounting must be visible: all tasks completed,
	// and the straggler cannot have won them all.
	st, err := c.Client.Status(id)
	if err != nil {
		t.Fatal(err)
	}
	if !st.Done || st.Completed != 9 {
		t.Errorf("status = %+v, want 9 completed", st)
	}
	if st.Attempts < 9 {
		t.Errorf("attempts = %d, want >= 9", st.Attempts)
	}
	sum := 0
	for _, n := range st.Counts {
		sum += n
	}
	if sum != 9 {
		t.Errorf("per-tracker counts %v sum to %d, want 9", st.Counts, sum)
	}
	if st.Counts["tracker-0"] == 9 {
		t.Error("straggler tracker won every task; dynamic scheduling had no effect")
	}
}

func TestStatusUnknownJob(t *testing.T) {
	c := startTestCluster(t, 1, 1024)
	if _, err := c.Client.Status(404); err == nil {
		t.Error("Status on unknown job should fail")
	}
}
