package netmr

import "time"

// Service is the long-running multi-tenant job service: one in-process
// cluster (NameNode, JobTracker, DataNode/TaskTracker fleet) that
// accepts submissions from many tenants over its lifetime instead of
// living for a single job. Tenants get isolated job state (per-job
// boards, job-id-prefixed shuffle namespaces), weighted fair-share
// scheduling across the shared tracker fleet, and quota-based
// admission control; ClientFor hands out tenant-bound handles.
//
// Service wraps Cluster rather than replacing it: tests that want raw
// daemon handles keep using StartCluster, while mrsim -serve and the
// engine's job-service path speak Service.
type Service struct {
	cluster   *Cluster
	blockSize int64
}

// StartService boots a multi-tenant job service with the given worker
// count, slot count per tracker and DFS block size. Pass WithQuotas to
// install tenant weights and limits up front; SetQuota adjusts them
// live.
func StartService(workers, slots int, blockSize int64, heartbeat time.Duration, opts ...ClusterOption) (*Service, error) {
	cluster, err := StartCluster(workers, slots, blockSize, heartbeat, opts...)
	if err != nil {
		return nil, err
	}
	return &Service{cluster: cluster, blockSize: blockSize}, nil
}

// NameNodeAddr returns the service's DFS master address — what an
// external client dials for file I/O.
func (s *Service) NameNodeAddr() string { return s.cluster.NN.Addr() }

// JobTrackerAddr returns the service's job master address — what an
// external client dials for submissions.
func (s *Service) JobTrackerAddr() string { return s.cluster.JT.Addr() }

// SetQuota installs (or replaces) tenant's quota and fair-share weight
// on the running service.
func (s *Service) SetQuota(tenant string, q Quota) { s.cluster.JT.SetQuota(tenant, q) }

// TenantStats reports every tenant's scheduling and accounting state.
func (s *Service) TenantStats() map[string]TenantStat { return s.cluster.JT.TenantStats() }

// ClientFor returns a tenant-bound client for the service, writing
// DFS files at the service's block size.
func (s *Service) ClientFor(tenant string) (*TenantClient, error) {
	return NewTenantClient(s.NameNodeAddr(), s.JobTrackerAddr(), s.blockSize, tenant)
}

// Cluster exposes the underlying daemons for tests and tooling that
// need raw handles (tracker stores, the JobTracker itself).
func (s *Service) Cluster() *Cluster { return s.cluster }

// Close shuts the whole service down.
func (s *Service) Close() { s.cluster.Shutdown() }

// DefaultBlockSize is the DFS block size Service clients use when the
// caller doesn't pick one.
const DefaultBlockSize int64 = 4 << 20

// TenantClient is a Client bound to one tenant: Submit stamps the
// tenant into every spec, Kill and ListJobs scope to the tenant's
// jobs. Build one with Service.ClientFor (in-process) or
// NewTenantClient (dialing a remote service).
type TenantClient struct {
	*Client
	tenant string
}

// NewTenantClient builds a tenant-bound client against a running
// service's NameNode and JobTracker addresses. Options (e.g.
// WithClientWireCodec) pass through to the underlying Client.
func NewTenantClient(nameNodeAddr, jobTrackerAddr string, blockSize int64, tenant string, opts ...ClientOption) (*TenantClient, error) {
	c, err := NewClient(nameNodeAddr, jobTrackerAddr, blockSize, opts...)
	if err != nil {
		return nil, err
	}
	if tenant == "" {
		tenant = DefaultTenant
	}
	return &TenantClient{Client: c, tenant: tenant}, nil
}

// Tenant returns the tenant this client submits as.
func (tc *TenantClient) Tenant() string { return tc.tenant }

// Submit sends a job under this client's tenant and returns its ID.
func (tc *TenantClient) Submit(spec JobSpec) (int64, error) {
	spec.Tenant = tc.tenant
	return tc.Client.Submit(spec)
}

// SubmitAndWait is Submit followed by Wait, under this client's
// tenant.
func (tc *TenantClient) SubmitAndWait(spec JobSpec, timeout time.Duration) ([]byte, error) {
	id, err := tc.Submit(spec)
	if err != nil {
		return nil, err
	}
	return tc.Wait(id, timeout)
}

// Kill terminates one of this tenant's jobs; killing another tenant's
// job is refused by the JobTracker.
func (tc *TenantClient) Kill(jobID int64) error {
	return tc.Client.Kill(jobID, tc.tenant)
}

// ListJobs lists this tenant's jobs in submission order.
func (tc *TenantClient) ListJobs() ([]JobInfo, error) {
	return tc.Client.ListJobs(tc.tenant)
}
