package netmr

import (
	"fmt"
	"sync"
	"time"

	"hetmr/internal/rpcnet"
)

// TaskTracker is the TCP worker daemon: it polls the JobTracker with
// heartbeats, pulls block data from DataNodes over the network (the
// paper's measured delivery hop), runs the kernel, and reports results
// on the next heartbeat.
type TaskTracker struct {
	ID        string
	jtAddr    string
	slots     int
	heartbeat time.Duration
	// LocalDataNode, when set, is the co-located DataNode's address;
	// the JobTracker uses it for data-local assignment, and the
	// tracker counts local vs remote fetches.
	LocalDataNode string

	// delay is an injected per-task slowdown (straggler fault
	// injection for tests and benchmarks); immutable after start.
	delay time.Duration

	mu          sync.Mutex
	completed   []TaskResult
	running     int
	localFetch  int64
	remoteFetch int64

	stop chan struct{}
	done chan struct{}
}

// TrackerOption customizes StartTaskTracker.
type TrackerOption func(*TaskTracker)

// WithTaskDelay makes the tracker sleep d before executing every task
// — the injected-straggler knob the conformance suite uses to prove
// results stay bit-identical when one worker is 10x slower.
func WithTaskDelay(d time.Duration) TrackerOption {
	return func(tt *TaskTracker) { tt.delay = d }
}

// FetchStats reports how many block fetches hit the co-located
// DataNode versus a remote one.
func (tt *TaskTracker) FetchStats() (local, remote int64) {
	tt.mu.Lock()
	defer tt.mu.Unlock()
	return tt.localFetch, tt.remoteFetch
}

// StartTaskTracker launches a tracker with the given slot count and
// heartbeat interval, polling the JobTracker at jtAddr. localDataNode
// is the co-located DataNode's address ("" when the tracker has none).
func StartTaskTracker(id, jtAddr, localDataNode string, slots int, heartbeat time.Duration, opts ...TrackerOption) (*TaskTracker, error) {
	if slots <= 0 {
		return nil, fmt.Errorf("netmr: tracker %q needs at least one slot", id)
	}
	if heartbeat <= 0 {
		heartbeat = 100 * time.Millisecond
	}
	tt := &TaskTracker{
		ID:            id,
		jtAddr:        jtAddr,
		slots:         slots,
		heartbeat:     heartbeat,
		LocalDataNode: localDataNode,
		stop:          make(chan struct{}),
		done:          make(chan struct{}),
	}
	for _, o := range opts {
		o(tt)
	}
	go tt.loop()
	return tt, nil
}

// Stop halts the heartbeat loop (simulating node death: in-flight
// tasks are abandoned and the JobTracker's lease re-issues them).
func (tt *TaskTracker) Stop() {
	select {
	case <-tt.stop:
	default:
		close(tt.stop)
	}
	<-tt.done
}

func (tt *TaskTracker) loop() {
	defer close(tt.done)
	client, err := rpcnet.Dial(tt.jtAddr)
	if err != nil {
		return
	}
	defer client.Close()
	ticker := time.NewTicker(tt.heartbeat)
	defer ticker.Stop()
	for {
		select {
		case <-tt.stop:
			return
		case <-ticker.C:
		}
		tt.mu.Lock()
		reports := tt.completed
		tt.completed = nil
		free := tt.slots - tt.running
		tt.mu.Unlock()
		var reply HeartbeatReply
		err := client.Call("Heartbeat", HeartbeatArgs{
			TrackerID:     tt.ID,
			LocalDataNode: tt.LocalDataNode,
			FreeSlots:     free,
			Completed:     reports,
		}, &reply)
		if err != nil {
			// JobTracker gone: requeue the unsent reports and retry
			// on the next tick.
			tt.mu.Lock()
			tt.completed = append(reports, tt.completed...)
			tt.mu.Unlock()
			continue
		}
		for _, task := range reply.Tasks {
			task := task
			tt.mu.Lock()
			tt.running++
			tt.mu.Unlock()
			go tt.runTask(task)
		}
	}
}

// runTask executes one task: fetch its block (if any), run the kernel,
// queue the result.
func (tt *TaskTracker) runTask(task Task) {
	defer func() {
		tt.mu.Lock()
		tt.running--
		tt.mu.Unlock()
	}()
	kern, err := lookupKernel(task.Kernel)
	if err != nil {
		return // unknown kernel: lease will re-issue elsewhere
	}
	if tt.delay > 0 {
		time.Sleep(tt.delay) // injected straggler slowdown
	}
	var data []byte
	if task.Block.Addr != "" {
		tt.mu.Lock()
		if task.Block.Addr == tt.LocalDataNode {
			tt.localFetch++
		} else {
			tt.remoteFetch++
		}
		tt.mu.Unlock()
		dnc, err := rpcnet.Dial(task.Block.Addr)
		if err != nil {
			return
		}
		var get GetReply
		err = dnc.Call("Get", GetArgs{ID: task.Block.ID}, &get)
		dnc.Close()
		if err != nil {
			return
		}
		data = get.Data
	}
	out, err := kern.Map(task, data)
	if err != nil {
		return
	}
	select {
	case <-tt.stop:
		return // node died before reporting
	default:
	}
	tt.mu.Lock()
	tt.completed = append(tt.completed, TaskResult{
		JobID:  task.JobID,
		TaskID: task.TaskID,
		Output: out,
	})
	tt.mu.Unlock()
}
